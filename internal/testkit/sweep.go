package testkit

import (
	"fmt"
	"time"

	"falcon/internal/core"
	"falcon/internal/falcon/pdl"
	"falcon/internal/falcon/tl"
	"falcon/internal/falcon/wire"
	"falcon/internal/netsim"
	"falcon/internal/sim"
	"falcon/internal/telemetry"
)

// Workload selects the transaction mix a sweep scenario drives.
type Workload int

const (
	// WorkloadPush issues only push transactions (RDMA-Write-like).
	WorkloadPush Workload = iota
	// WorkloadPull issues only pull transactions (RDMA-Read-like).
	WorkloadPull
	// WorkloadMixed alternates pushes and pulls.
	WorkloadMixed
)

func (w Workload) String() string {
	switch w {
	case WorkloadPull:
		return "pull"
	case WorkloadMixed:
		return "mixed"
	}
	return "push"
}

// Scenario is one cell of the fault-sweep matrix: a fixed-size workload
// driven over a two-node Falcon cluster under a combination of fabric and
// endpoint impairments, with the invariant checker and trace hasher
// attached everywhere.
type Scenario struct {
	Name string
	Seed int64

	// Scheduler selects the simulator's pending-event structure. The zero
	// value is the production timing wheel; sim.SchedulerHeap runs the same
	// scenario on the reference binary heap, which must yield the identical
	// trace hash (asserted by TestSweepSchedulerEquivalence).
	Scheduler sim.Scheduler

	// LegacyAlloc runs the fabric with pooling disabled (fresh heap frames
	// and port events, the pre-PR5 behaviour) as a verification oracle; the
	// trace hash must match the pooled run exactly (asserted by
	// TestSweepPoolEquivalence).
	LegacyAlloc bool

	// LegacyHotPath runs the transport with the pre-PR6 hot path — per-PSN
	// scoreboard loops, map-backed RSN tables, heap packets — as the
	// verification oracle for the word-level/dense/pooled implementation;
	// the trace hash must match the optimized run exactly (asserted by
	// TestSweepHotPathEquivalence).
	LegacyHotPath bool

	// EagerTimers re-arms the PDL's RTO/TLP timers on every ACK (the
	// pre-PR6 discipline) instead of lazily batching wakeups. Timer
	// batching moves scheduler wakeups, so only the protocol-only hash is
	// comparable (asserted by TestSweepTimerEquivalence).
	EagerTimers bool

	// Workload shape. Zero values take the defaults noted.
	Workload Workload
	Ops      int // transactions to issue (default 200)
	OpBytes  int // payload / solicited bytes per op (default 4096)
	Window   int // closed-loop issue window (default 16)

	// Connection shape.
	Unordered bool
	NumFlows  int // multipath flows (default 4)

	// Fabric impairments (forward direction: initiator -> target).
	DropPct       float64       // random drop percentage
	ReorderPct    float64       // random reorder percentage
	ReorderDelay  time.Duration // hold time for reordered frames
	Bidirectional bool          // also impair the reverse (ACK) direction
	DegradeGbps   float64       // if > 0, forward link degrades to this rate mid-run

	// Endpoint impairments.
	RNRPct     float64       // target answers RNR with this probability
	RNRDelay   time.Duration // RNR retry hint (default 20us)
	TinyRxPool bool          // shrink the target's RxReq pool (resource-NACK pressure)

	// Link shape.
	Gbps      float64       // default 100
	PropDelay time.Duration // default 1us

	// Shards splits the run into that many simulation partitions (<= 1 is
	// the single event loop). The default merged mode drains partitions
	// through the deterministic group merge and must be byte-identical to
	// the single loop (asserted by TestSweepShardEquivalence).
	Shards int

	// ShardParallel selects the experimental windowed-parallel execution
	// (Shards > 1 only). Parallel runs are self-deterministic — same seed,
	// shard count and topology give the same per-partition streams — but
	// their sequence numbering is per-partition, so their hashes are NOT
	// comparable to single-loop or merged hashes. Run attaches one hasher
	// per partition and skips the shared-state checker and recorder.
	ShardParallel bool

	// MaxSimTime bounds the run in simulated time (default 5s). A healthy
	// scenario drains in well under a millisecond of simulated time per
	// op; hitting this bound means the protocol livelocked, and the
	// harness fails the run with a full state dump rather than spinning.
	MaxSimTime time.Duration

	// Harness self-test knobs (see Checker.StrictOutstanding). FailFunc,
	// when non-nil, replaces the checker's default panic so expected
	// violations can be recorded instead.
	StrictOutstanding int
	FailFunc          func(format string, args ...any)

	// DisableRecorder detaches the telemetry flight recorder that Run
	// normally shadows on every probe. It exists for the determinism
	// suite, which asserts that attaching the recorder leaves the trace
	// hash byte-identical (the recorder schedules no events and draws no
	// randomness).
	DisableRecorder bool
}

// withDefaults fills zero fields.
func (sc Scenario) withDefaults() Scenario {
	if sc.Ops == 0 {
		sc.Ops = 200
	}
	if sc.OpBytes == 0 {
		sc.OpBytes = 4096
	}
	if sc.Window == 0 {
		sc.Window = 16
	}
	if sc.NumFlows == 0 {
		sc.NumFlows = 4
	}
	if sc.RNRDelay == 0 {
		sc.RNRDelay = 20 * time.Microsecond
	}
	if sc.Gbps == 0 {
		sc.Gbps = 100
	}
	if sc.MaxSimTime == 0 {
		sc.MaxSimTime = 5 * time.Second
	}
	if sc.PropDelay == 0 {
		sc.PropDelay = time.Microsecond
	}
	return sc
}

// Result summarizes one scenario run.
type Result struct {
	// TraceHash fingerprints the entire run (see TraceHasher); Records is
	// the number of trace records folded into it. ProtoHash/ProtoRecords
	// cover protocol records only (no scheduler events).
	TraceHash    uint64
	Records      uint64
	ProtoHash    uint64
	ProtoRecords uint64

	Issued    int
	Completed int
	Errored   int
	Served    int // distinct RSNs terminally processed at the target

	// ConnFailed reports the PDL declared the connection dead (RTO budget
	// exhausted) — only expected under impairments harsher than the
	// matrix uses.
	ConnFailed bool

	SimTime     sim.Time
	Retransmits uint64
	RTOs        uint64
	Duplicates  uint64
	NacksRx     uint64
	RNRRetries  uint64
	Checks      uint64
	Violations  uint64 // non-zero only when FailFunc suppresses the panic
}

// sweepTarget is the target-side ULP: it serves every request, answering
// RNR with the configured probability (drawn from the simulation RNG so
// runs stay deterministic).
type sweepTarget struct {
	s        *sim.Simulator
	rnrProb  float64
	rnrDelay time.Duration
}

func (t *sweepTarget) verdict() tl.TargetVerdict {
	if t.rnrProb > 0 && t.s.Rand().Float64() < t.rnrProb {
		return tl.TargetVerdict{Kind: tl.TargetRNR, RetryDelay: t.rnrDelay}
	}
	return tl.TargetVerdict{Kind: tl.TargetOK}
}

func (t *sweepTarget) HandlePush(rsn uint64, p *wire.Packet) tl.TargetVerdict {
	return t.verdict()
}

func (t *sweepTarget) HandlePull(rsn uint64, p *wire.Packet) ([]byte, uint32, tl.TargetVerdict) {
	v := t.verdict()
	if v.Kind != tl.TargetOK {
		return nil, 0, v
	}
	return nil, p.PullLength, v
}

// Run executes one scenario with the full verification harness attached:
// the trace hasher observes the scheduler, both NIC ingress taps, both
// PDL connections and both TLs; the invariant checker rides the same
// probes and panics (with a context dump) on any violation. After the
// run, Run additionally asserts quiescence: no outstanding or queued
// packets and every resource pool drained back to zero.
func Run(sc Scenario) Result {
	sc = sc.withDefaults()
	var s *sim.Simulator
	if sc.Shards > 1 {
		s = sim.NewSharded(sc.Seed, sc.Scheduler, sc.Shards, sc.ShardParallel)
	} else {
		s = sim.NewWithScheduler(sc.Seed, sc.Scheduler)
	}
	parallel := s.Group() != nil && s.Group().Parallel()
	link := netsim.LinkConfig{GbpsRate: sc.Gbps, PropDelay: sc.PropDelay}
	topo, fwd := netsim.PointToPoint(s, link)
	if sc.LegacyAlloc {
		topo.Net.SetLegacyAlloc(true)
	}
	rev := topo.ToRs[0].RouteTo(topo.Hosts[0].ID)[0]

	cl := core.NewCluster(s)
	cl.SetLegacyHotPath(sc.LegacyHotPath)
	cfgA := core.DefaultNodeConfig()
	cfgB := core.DefaultNodeConfig()
	if sc.TinyRxPool {
		// Starve the target's RxReq pool so arriving requests draw
		// resource NACKs and HoL-only admission under load.
		cfgB.Resources.Pools[tl.PoolRxReq] = tl.PoolConfig{Contexts: 8, Bytes: 8 * sc.OpBytes}
	}
	a := cl.AddNode(topo.Hosts[0], cfgA)
	b := cl.AddNode(topo.Hosts[1], cfgB)

	connCfg := core.DefaultConnConfig()
	connCfg.PDL.NumFlows = sc.NumFlows
	connCfg.PDL.EagerTimers = sc.EagerTimers
	connCfg.TL.Ordered = !sc.Unordered
	epA, epB := cl.Connect(a, b, connCfg)

	hasher := NewTraceHasher()
	checker := NewChecker()
	checker.StrictOutstanding = sc.StrictOutstanding
	checker.FailFunc = sc.FailFunc

	// partHashers is the parallel-mode harness: one hasher per partition,
	// each touched only by its partition's goroutine. The shared checker
	// and flight recorder are skipped — they would be written from several
	// partitions at once — so parallel runs verify self-determinism and
	// quiescence, not protocol invariants (the merged mode covers those
	// with the identical event stream).
	var partHashers []*TraceHasher
	if parallel {
		g := s.Group()
		partHashers = make([]*TraceHasher, g.Shards())
		for i := range partHashers {
			partHashers[i] = NewTraceHasher()
			g.Part(i).SetObserver(partHashers[i])
		}
		for _, h := range topo.Hosts {
			ph := partHashers[h.Sim().ShardIndex()]
			h.SetTap(ph.TapFrame)
		}
		hashA := partHashers[epA.Sim().ShardIndex()]
		hashB := partHashers[epB.Sim().ShardIndex()]
		epA.PDL().SetProbe(hashA)
		epB.PDL().SetProbe(hashB)
		epA.TL().SetProbe(hashA)
		epB.TL().SetProbe(hashB)
	} else {
		s.SetObserver(hasher)

		// Flight recorder: a passive ring of the most recent probe records.
		// It schedules no events and draws no randomness, so attaching it
		// leaves the trace hash unchanged; its payoff is at failure time,
		// when any invariant violation dumps the event history leading up to
		// it instead of only the failing assertion.
		tap := hasher.TapFrame
		var pdlExtra pdl.Probe
		var tlExtra tl.Probe
		if !sc.DisableRecorder {
			rec := telemetry.NewRecorder(s, telemetry.DefaultRecorderDepth)
			pdlExtra, tlExtra = rec, rec
			hashTap := hasher.TapFrame
			tap = func(f *netsim.Frame) {
				hashTap(f)
				rec.TapFrame(f)
			}
			inner := sc.FailFunc
			checker.FailFunc = func(format string, args ...any) {
				msg := fmt.Sprintf(format, args...) + "\n" + rec.DumpString()
				if inner != nil {
					inner("%s", msg)
					return
				}
				panic("testkit: invariant violation: " + msg)
			}
		}
		for _, h := range topo.Hosts {
			h.SetTap(tap)
		}
		epA.PDL().SetProbe(PDLProbes(checker, hasher, pdlExtra))
		epB.PDL().SetProbe(PDLProbes(checker, hasher, pdlExtra))
		epA.TL().SetProbe(TLProbes(checker, hasher, tlExtra))
		epB.TL().SetProbe(TLProbes(checker, hasher, tlExtra))
	}

	// The target's RNR verdicts execute on the target's partition, so they
	// draw from its simulator (the shared group stream in merged mode —
	// identical draws to the single loop — and the partition-local stream
	// in parallel mode).
	epB.SetTarget(&sweepTarget{s: epB.Sim(), rnrProb: sc.RNRPct / 100, rnrDelay: sc.RNRDelay})

	// Fabric impairments.
	fwd.SetDropProb(sc.DropPct / 100)
	if sc.ReorderPct > 0 {
		delay := sc.ReorderDelay
		if delay == 0 {
			delay = 20 * time.Microsecond
		}
		fwd.SetReorder(sc.ReorderPct/100, delay)
	}
	if sc.Bidirectional {
		rev.SetDropProb(sc.DropPct / 100)
		if sc.ReorderPct > 0 {
			delay := sc.ReorderDelay
			if delay == 0 {
				delay = 20 * time.Microsecond
			}
			rev.SetReorder(sc.ReorderPct/100, delay)
		}
	}
	if sc.DegradeGbps > 0 {
		// The degrade mutates port state, so its timer runs on the port's
		// partition (identical schedule in single-loop and merged modes:
		// fwd.Sim() is the root simulator, or shares its sequence counter).
		fwd.Sim().After(150*time.Microsecond, func() { fwd.SetRateGbps(sc.DegradeGbps) })
	}

	// Closed-loop workload with transparent retry on backpressure.
	res := Result{}
	inFlight := 0
	var pump func()
	retryArmed := false
	done := func(_ []byte, err error) {
		inFlight--
		res.Completed++
		if err != nil {
			res.Errored++
		}
		pump()
	}
	pump = func() {
		if epA.TL().Dead() != nil {
			return
		}
		for inFlight < sc.Window && res.Issued < sc.Ops {
			var err error
			pull := sc.Workload == WorkloadPull ||
				(sc.Workload == WorkloadMixed && res.Issued%2 == 1)
			if pull {
				_, err = epA.Pull(uint32(sc.OpBytes), done)
			} else {
				_, err = epA.Push(nil, uint32(sc.OpBytes), done)
			}
			if err != nil {
				// Backpressured (Xoff or pool pressure): retry soon;
				// the Xon callback also re-pumps.
				if !retryArmed {
					retryArmed = true
					// The retry re-enters the initiator's TL, so it runs
					// on the initiator's partition.
					epA.Sim().After(20*time.Microsecond, func() {
						retryArmed = false
						pump()
					})
				}
				return
			}
			inFlight++
			res.Issued++
		}
	}
	epA.TL().SetXonCallback(pump)
	pump()
	s.RunUntil(s.Now().Add(sc.MaxSimTime))
	if (res.Completed < res.Issued || res.Issued < sc.Ops) &&
		epA.TL().Dead() == nil && epB.TL().Dead() == nil {
		checker.Failf("scenario %q livelocked: no drain after %v simulated (issued=%d completed=%d)\n"+
			"initiator: %s\n  tl pending=%v\ntarget: %s\n  tl expected=%d buffered=%v",
			sc.Name, sc.MaxSimTime, res.Issued, res.Completed,
			DumpConn(epA.PDL()), epA.TL().PendingRSNs(),
			DumpConn(epB.PDL()), epB.TL().ExpectedRSN(), epB.TL().BufferedRSNs())
	}

	if parallel {
		// Fold the per-partition digests in partition order. The combined
		// value is self-deterministic (same seed, shard count and mode →
		// same fold) but, unlike merged-mode hashes, not comparable to the
		// single loop's stream.
		h, p := uint64(fnvOffset64), uint64(fnvOffset64)
		for _, th := range partHashers {
			h = (h ^ th.Sum64()) * fnvPrime64
			p = (p ^ th.ProtoSum64()) * fnvPrime64
			res.Records += th.Records()
			res.ProtoRecords += th.ProtoRecords()
		}
		res.TraceHash = h
		res.ProtoHash = p
	} else {
		res.TraceHash = hasher.Sum64()
		res.Records = hasher.Records()
		res.ProtoHash = hasher.ProtoSum64()
		res.ProtoRecords = hasher.ProtoRecords()
	}
	res.Served = checker.ServedCount(epB.TL())
	res.ConnFailed = epA.TL().Dead() != nil || epB.TL().Dead() != nil
	res.SimTime = s.Now()
	st := epA.PDL().Stats
	res.Retransmits = st.DataRetransmits + epB.PDL().Stats.DataRetransmits
	res.RTOs = st.RTOs + epB.PDL().Stats.RTOs
	res.Duplicates = epB.PDL().Stats.Duplicates + st.Duplicates
	res.NacksRx = st.NacksReceived
	res.RNRRetries = epA.TL().Stats.RNRRetries
	res.Checks = checker.Checks

	// Post-run quiescence: everything issued completed, nothing is still
	// outstanding, and every reservation was returned.
	if !res.ConnFailed {
		if res.Completed != res.Issued {
			checker.Failf("scenario %q: %d issued but %d completed\n%s",
				sc.Name, res.Issued, res.Completed, DumpConn(epA.PDL()))
		}
		for _, ep := range []*core.Endpoint{epA, epB} {
			if out := ep.PDL().Outstanding(); out != 0 {
				checker.Failf("scenario %q: %d packets still outstanding after drain\n%s",
					sc.Name, out, DumpConn(ep.PDL()))
			}
			if q := ep.PDL().QueuedPackets(); q != 0 {
				checker.Failf("scenario %q: %d packets still queued after drain\n%s",
					sc.Name, q, DumpConn(ep.PDL()))
			}
		}
		for name, node := range map[string]*core.Node{"initiator": a, "target": b} {
			for _, pool := range []tl.PoolKind{tl.PoolTxReq, tl.PoolTxResp, tl.PoolRxReq, tl.PoolRxResp} {
				if occ := node.Resources().Occupancy(pool); occ != 0 {
					checker.Failf("scenario %q: %s %v pool not drained (occupancy %.4f) — resource leak",
						sc.Name, name, pool, occ)
				}
			}
		}
	}
	res.Violations = checker.Violations
	return res
}

// Matrix returns the full fault-sweep matrix: every workload crossed with
// every fault mode the paper's evaluation exercises (loss, reordering,
// link degrade, RNR pressure, resource exhaustion), plus unordered and
// kitchen-sink combinations.
func Matrix() []Scenario {
	type fault struct {
		name  string
		apply func(*Scenario)
	}
	faults := []fault{
		{"clean", func(*Scenario) {}},
		{"drop1", func(sc *Scenario) { sc.DropPct = 1 }},
		{"drop5", func(sc *Scenario) { sc.DropPct = 5 }},
		{"drop20", func(sc *Scenario) { sc.DropPct = 20 }},
		{"reorder", func(sc *Scenario) { sc.ReorderPct = 10; sc.ReorderDelay = 20 * time.Microsecond }},
		{"drop+reorder-bidir", func(sc *Scenario) {
			sc.DropPct = 2
			sc.ReorderPct = 10
			sc.ReorderDelay = 10 * time.Microsecond
			sc.Bidirectional = true
		}},
		{"degrade", func(sc *Scenario) { sc.DegradeGbps = 10 }},
		{"rnr", func(sc *Scenario) { sc.RNRPct = 10 }},
		{"tinyrx", func(sc *Scenario) { sc.TinyRxPool = true }},
		{"sink", func(sc *Scenario) {
			sc.DropPct = 5
			sc.ReorderPct = 5
			sc.ReorderDelay = 15 * time.Microsecond
			sc.RNRPct = 5
			sc.TinyRxPool = true
		}},
	}
	var out []Scenario
	seed := int64(1)
	for _, w := range []Workload{WorkloadPush, WorkloadPull, WorkloadMixed} {
		for _, f := range faults {
			sc := Scenario{
				Name:     fmt.Sprintf("%v/%s", w, f.name),
				Seed:     seed,
				Workload: w,
			}
			f.apply(&sc)
			out = append(out, sc)
			seed++
		}
	}
	// Unordered connections cover the unordered completion path under the
	// harshest faults.
	for _, f := range []string{"clean", "drop5", "sink"} {
		for _, base := range faults {
			if base.name != f {
				continue
			}
			sc := Scenario{
				Name:      fmt.Sprintf("unordered/%s", f),
				Seed:      seed,
				Workload:  WorkloadMixed,
				Unordered: true,
			}
			base.apply(&sc)
			out = append(out, sc)
			seed++
		}
	}
	return out
}
