package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"falcon/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series should report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Count() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("basics wrong: mean=%v min=%v max=%v", s.Mean(), s.Min(), s.Max())
	}
}

func TestPercentiles(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{50: 50, 99: 99, 100: 100, 1: 1}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Errorf("p%v = %v, want %v", p, got, want)
		}
	}
}

func TestPercentileAfterMoreAdds(t *testing.T) {
	var s Series
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(1) // must re-sort
	if got := s.Percentile(50); got != 1 {
		t.Fatalf("p50 after add = %v, want 1", got)
	}
}

func TestDurationHelpers(t *testing.T) {
	var s Series
	s.AddDuration(time.Millisecond)
	s.AddDuration(3 * time.Millisecond)
	if got := s.MeanDuration(); got != 2*time.Millisecond {
		t.Fatalf("mean duration = %v", got)
	}
	if got := s.DurationPercentile(100); got != 3*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
}

func TestJain(t *testing.T) {
	if got := Jain([]float64{10, 10, 10}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("equal allocations Jain = %v", got)
	}
	unfair := Jain([]float64{30, 0, 0})
	if math.Abs(unfair-1.0/3) > 1e-9 {
		t.Fatalf("maximally unfair Jain = %v, want 1/3", unfair)
	}
	if Jain(nil) != 0 {
		t.Fatal("empty Jain should be 0")
	}
	if Jain([]float64{0, 0}) != 1 {
		t.Fatal("all-zero allocations are (vacuously) fair")
	}
}

func TestGbps(t *testing.T) {
	// 125 MB in 10ms = 100 Gbps.
	if got := Gbps(125_000_000, 10*time.Millisecond); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Gbps = %v", got)
	}
	if Gbps(100, 0) != 0 {
		t.Fatal("zero duration should be 0")
	}
}

func TestRateSeries(t *testing.T) {
	r := NewRateSeries(time.Millisecond)
	r.Record(sim.Time(500_000), 125_000)   // bucket 0: 1 Gbps
	r.Record(sim.Time(1_500_000), 250_000) // bucket 1: 2 Gbps
	r.Record(sim.Time(1_600_000), 250_000) // bucket 1: now 4 Gbps
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if got := r.GbpsAt(0); math.Abs(got-1) > 1e-9 {
		t.Fatalf("bucket 0 = %v", got)
	}
	if got := r.GbpsAt(1); math.Abs(got-4) > 1e-9 {
		t.Fatalf("bucket 1 = %v", got)
	}
	if r.GbpsAt(-1) != 0 || r.GbpsAt(99) != 0 {
		t.Fatal("out-of-range buckets should be 0")
	}
	if r.String() == "" {
		t.Fatal("String should render")
	}
}

// Property: percentile is monotonic in p and bounded by min/max.
func TestQuickPercentileMonotonic(t *testing.T) {
	f := func(vals []float64) bool {
		var s Series
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.Count() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 1.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Jain's index is within (0, 1] for any non-empty non-negative
// allocation.
func TestQuickJainBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		j := Jain(vals)
		return j > 0 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
