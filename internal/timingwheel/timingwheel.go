// Package timingwheel implements the Carousel-style timing wheel Falcon
// uses for fine-grained traffic pacing (Saeed et al., SIGCOMM 2017; §3.2 D1
// and Figure 7's standalone TW block).
//
// The wheel quantizes release times into fixed-granularity slots arranged in
// a ring. Items scheduled beyond the horizon are parked in an overflow list
// and re-inserted as the wheel turns. Within a slot, items are released in
// insertion order, which preserves per-connection packet order for equal
// release times.
//
// The wheel is driven by the discrete-event simulator: it arms a single
// sim.Timer for the earliest non-empty slot, so an idle wheel costs nothing.
//
// Relationship to the simulator's own timing wheel: internal/sim also
// schedules with a hashed hierarchical wheel (see internal/sim/wheel.go),
// but the two sit on opposite sides of the clock. This package models a
// hardware block *inside* the simulation — it consumes sim.Timer and its
// slot granularity is a modeled property of the pacer — whereas sim's wheel
// *implements* sim.Timer itself and must reproduce exact (time, seq)
// delivery order. They cannot share code without an import cycle, and they
// shouldn't: one is a model, the other is infrastructure. DESIGN.md §8
// covers the infrastructure wheel's layout and performance.
package timingwheel

import (
	"time"

	"falcon/internal/sim"
)

// Item is a unit of paced work; typically a closure that transmits one
// packet.
type Item func()

type slot struct {
	items []Item
}

// Wheel is a hashed timing wheel bound to a simulator.
type Wheel struct {
	sim         *sim.Simulator
	granularity time.Duration
	numSlots    int

	slots    []slot
	baseTime sim.Time // release time of slots[baseIdx]
	baseIdx  int
	pending  int

	// overflow holds items beyond the horizon, each with its desired
	// release time; re-examined whenever the wheel advances.
	overflow []overflowItem

	timer   sim.Timer
	started bool

	// MaxOccupancy tracks the high-water mark of queued items, a proxy
	// for the hardware wheel's memory requirement.
	MaxOccupancy int
}

type overflowItem struct {
	at   sim.Time
	item Item
}

// New creates a wheel with the given slot granularity and slot count. The
// horizon is granularity*numSlots. Typical Falcon settings: 512ns
// granularity, 4096 slots (~2ms horizon).
func New(s *sim.Simulator, granularity time.Duration, numSlots int) *Wheel {
	if granularity <= 0 {
		panic("timingwheel: granularity must be positive")
	}
	if numSlots < 2 {
		panic("timingwheel: need at least 2 slots")
	}
	return &Wheel{
		sim:         s,
		granularity: granularity,
		numSlots:    numSlots,
		slots:       make([]slot, numSlots),
	}
}

// Horizon returns the furthest future release time the ring can hold.
func (w *Wheel) Horizon() time.Duration {
	return w.granularity * time.Duration(w.numSlots)
}

// Len returns the number of queued items, including overflow.
func (w *Wheel) Len() int { return w.pending + len(w.overflow) }

// Schedule enqueues item for release at time at. Times in the past release
// on the next wheel turn (immediately, via a zero-delay event). Times beyond
// the horizon go to the overflow list.
func (w *Wheel) Schedule(at sim.Time, item Item) {
	now := w.sim.Now()
	if at < now {
		at = now
	}
	if !w.started {
		// Align the ring base to the current time on first use.
		w.baseTime = now
		w.started = true
	}
	w.advanceBase(now)

	// Round up to the next slot boundary so items are never released
	// before their requested time (pacing must not burst early).
	offset := int((at - w.baseTime + sim.Time(w.granularity) - 1) / sim.Time(w.granularity))
	if offset >= w.numSlots {
		w.overflow = append(w.overflow, overflowItem{at: at, item: item})
		if w.Len() > w.MaxOccupancy {
			w.MaxOccupancy = w.Len()
		}
		w.arm()
		return
	}
	idx := (w.baseIdx + offset) % w.numSlots
	w.slots[idx].items = append(w.slots[idx].items, item)
	w.pending++
	if w.Len() > w.MaxOccupancy {
		w.MaxOccupancy = w.Len()
	}
	w.arm()
}

// ScheduleAfter enqueues item for release d from now.
func (w *Wheel) ScheduleAfter(d time.Duration, item Item) {
	w.Schedule(w.sim.Now().Add(d), item)
}

// advanceBase rotates the ring so baseTime covers now. Slots skipped over
// must already be empty (their timers fired) — if not, their items are due
// and get flushed.
func (w *Wheel) advanceBase(now sim.Time) {
	for w.baseTime.Add(w.granularity) <= now {
		// Flush anything still in the base slot (due in the past).
		w.flushSlot(w.baseIdx)
		w.baseIdx = (w.baseIdx + 1) % w.numSlots
		w.baseTime = w.baseTime.Add(w.granularity)
	}
}

func (w *Wheel) flushSlot(idx int) {
	items := w.slots[idx].items
	if len(items) == 0 {
		return
	}
	w.slots[idx].items = nil
	w.pending -= len(items)
	for _, it := range items {
		it()
	}
}

// nextDue returns the release time of the earliest queued item and whether
// one exists.
func (w *Wheel) nextDue() (sim.Time, bool) {
	if w.pending > 0 {
		for i := 0; i < w.numSlots; i++ {
			idx := (w.baseIdx + i) % w.numSlots
			if len(w.slots[idx].items) > 0 {
				return w.baseTime.Add(time.Duration(i) * w.granularity), true
			}
		}
	}
	if len(w.overflow) > 0 {
		min := w.overflow[0].at
		for _, o := range w.overflow[1:] {
			if o.at < min {
				min = o.at
			}
		}
		return min, true
	}
	return 0, false
}

// arm (re)schedules the wheel's driver event for the earliest due slot.
func (w *Wheel) arm() {
	due, ok := w.nextDue()
	if !ok {
		return
	}
	if w.timer.Pending() {
		w.timer.Stop()
	}
	if due < w.sim.Now() {
		due = w.sim.Now()
	}
	w.timer = w.sim.At(due, w.tick)
}

// tick fires due slots and migrates overflow items that now fit the ring.
func (w *Wheel) tick() {
	now := w.sim.Now()
	w.advanceBase(now)
	// The base slot is due if its release time has arrived.
	if w.baseTime <= now {
		w.flushSlot(w.baseIdx)
	}
	// Migrate overflow items that now fit within the ring.
	if len(w.overflow) > 0 {
		keep := w.overflow[:0]
		for _, o := range w.overflow {
			at := o.at
			if at < now {
				at = now
			}
			offset := int((at - w.baseTime + sim.Time(w.granularity) - 1) / sim.Time(w.granularity))
			if offset >= w.numSlots {
				keep = append(keep, o)
				continue
			}
			if offset == 0 && w.baseTime <= now {
				// Due immediately.
				o.item()
				continue
			}
			idx := (w.baseIdx + offset) % w.numSlots
			w.slots[idx].items = append(w.slots[idx].items, o.item)
			w.pending++
		}
		w.overflow = keep
	}
	w.arm()
}
