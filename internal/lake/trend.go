package lake

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// The trend half of the differ: where Diff compares two runs under a
// per-pair tolerance, Trend walks three or more runs in the order given
// (oldest first) and flags metrics that creep monotonically in one
// direction. A perf metric regressing 8% per PR never trips the 25%
// pairwise band, yet four such PRs compound into a 36% loss; a timing
// metric drifting 3% per run hides the same way under the 5% band. The
// cumulative first-to-last drift of a monotonic sequence is the signal
// pairwise diffing structurally cannot see.
//
// Exact-class metrics are deliberately out of scope: any cross-run
// change in an exact cell is already a finding for the pairwise differ,
// so a trend report would only duplicate it.

// TrendOptions configures trend thresholds. The zero value uses
// defaults.
type TrendOptions struct {
	// RelTol flags a monotonic timing-class drift whose cumulative
	// first-to-last relative error exceeds it (default 0.05 — the same
	// band Diff applies per pair, here applied across the whole chain).
	RelTol float64
	// PerfTol flags a monotonic perf-class drift, in the metric's worse
	// direction only, beyond this cumulative fraction (default 0.10 —
	// deliberately tighter than Diff's 0.25 pairwise band: slow
	// regressions are exactly what pairwise tolerance forgives).
	PerfTol float64
}

func (o TrendOptions) withDefaults() TrendOptions {
	if o.RelTol == 0 {
		o.RelTol = 0.05
	}
	if o.PerfTol == 0 {
		o.PerfTol = 0.10
	}
	return o
}

// TrendFinding is one metric drifting monotonically across the run
// sequence.
type TrendFinding struct {
	// Path is the metric path.
	Path string `json:"path"`
	// Class is the determinism class ("timing" or "perf").
	Class string `json:"class"`
	// Direction is "up" or "down" (the sign of every step).
	Direction string `json:"direction"`
	// Values is the metric's value in each run, oldest first.
	Values []float64 `json:"values"`
	// RelErr is the cumulative first-to-last relative error.
	RelErr float64 `json:"rel_err"`
	// MaxStepRelErr is the largest single-step relative error — when it
	// is under the pairwise tolerance, no two-run diff could have
	// flagged this drift.
	MaxStepRelErr float64 `json:"max_step_rel_err"`
}

// TrendReport is the outcome of a trend scan over an ordered run
// sequence.
type TrendReport struct {
	Schema        string         `json:"schema"`
	Runs          []string       `json:"runs"`
	CellsCompared int            `json:"cells_compared"`
	Findings      []TrendFinding `json:"findings"`
}

// Empty reports whether the scan found nothing.
func (r *TrendReport) Empty() bool { return len(r.Findings) == 0 }

// Trend scans the runs in the order given (oldest first) for metrics
// drifting monotonically. Only cells present in every run participate:
// missing cells are the pairwise differ's finding, not a trend. At
// least three runs are required — two runs cannot distinguish a trend
// from a step, and Diff already covers the pair.
func Trend(ix *Index, runs []string, opt TrendOptions) (*TrendReport, error) {
	opt = opt.withDefaults()
	if len(runs) < 3 {
		return nil, fmt.Errorf("lake: trend needs at least 3 runs, got %d", len(runs))
	}
	for _, r := range runs {
		if ix.runIndex(r) < 0 {
			return nil, fmt.Errorf("lake: run %q not in index", r)
		}
	}
	rep := &TrendReport{Schema: "falconlaketrend/v1", Runs: runs}

	// Walk the first run's sorted cells; the chain is only as long as
	// the paths every run shares.
	ix.EachCell(runs[0], func(path string, v0 float64) {
		vals := make([]float64, 0, len(runs))
		vals = append(vals, v0)
		for _, r := range runs[1:] {
			v, ok := ix.Lookup(r, path)
			if !ok {
				return
			}
			vals = append(vals, v)
		}
		rep.CellsCompared++
		if f, flagged := classifyTrend(path, vals, opt); flagged {
			rep.Findings = append(rep.Findings, f)
		}
	})
	return rep, nil
}

// classifyTrend applies the class rule to one complete value chain.
func classifyTrend(path string, vals []float64, opt TrendOptions) (TrendFinding, bool) {
	p := ParsePath(path)
	cls := p.Class()
	if cls == ClassExact {
		return TrendFinding{}, false
	}
	dir, maxStep, ok := monotone(vals)
	if !ok {
		return TrendFinding{}, false
	}
	cum := relErr(vals[0], vals[len(vals)-1])
	switch cls {
	case ClassTiming:
		if cum <= opt.RelTol {
			return TrendFinding{}, false
		}
	case ClassPerf:
		if cum <= opt.PerfTol || !perfWorse(p.Metric, vals[0], vals[len(vals)-1]) {
			return TrendFinding{}, false
		}
	}
	return TrendFinding{
		Path: path, Class: cls.String(), Direction: dir,
		Values: vals, RelErr: cum, MaxStepRelErr: maxStep,
	}, true
}

// monotone reports whether vals move weakly in one direction with at
// least one strict step, returning the direction and the largest
// single-step relative error.
func monotone(vals []float64) (dir string, maxStep float64, ok bool) {
	up, down := true, true
	for i := 1; i < len(vals); i++ {
		a, b := vals[i-1], vals[i]
		if math.IsNaN(a) || math.IsNaN(b) {
			return "", 0, false
		}
		if b > a {
			down = false
		}
		if b < a {
			up = false
		}
		if re := relErr(a, b); re > maxStep {
			maxStep = re
		}
	}
	first, last := vals[0], vals[len(vals)-1]
	switch {
	case up && last > first:
		return "up", maxStep, true
	case down && last < first:
		return "down", maxStep, true
	}
	return "", maxStep, false
}

// WriteText renders the report for humans, findings in deterministic
// (sorted-path) order. An empty report renders a single "no trends"
// line.
func (r *TrendReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trend over %s: %d cells in all %d runs\n",
		strings.Join(r.Runs, " -> "), r.CellsCompared, len(r.Runs)); err != nil {
		return err
	}
	if r.Empty() {
		_, err := fmt.Fprintf(w, "no trends\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "%d monotonic drifts:\n", len(r.Findings)); err != nil {
		return err
	}
	for _, f := range r.Findings {
		parts := make([]string, len(f.Values))
		for i, v := range f.Values {
			parts[i] = fmtVal(v)
		}
		if _, err := fmt.Fprintf(w, "  %-4s [%s] %s: %s (cum %.4f, max step %.4f)\n",
			f.Direction, f.Class, f.Path, strings.Join(parts, " -> "), f.RelErr, f.MaxStepRelErr); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON, byte-deterministic for
// equal reports.
func (r *TrendReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
