package core_test

// End-to-end transport microbenchmarks: a closed-loop window of push or
// pull transactions over a two-node point-to-point cluster, measuring the
// whole PDL/TL/NIC/fabric round trip per operation. These are the paired
// before/after numbers in BENCH_pr6.json's microbench section; run with
// -benchmem to see the steady-state allocation count the zero-alloc work
// targets.

import (
	"testing"

	"falcon/internal/core"
	"falcon/internal/falcon/tl"
	"falcon/internal/falcon/wire"
	"falcon/internal/netsim"
	"falcon/internal/sim"
)

// benchTarget serves every request successfully; pulls are answered with
// the solicited length (simulation mode, no materialized bytes).
type benchTarget struct{}

func (benchTarget) HandlePush(rsn uint64, p *wire.Packet) tl.TargetVerdict {
	return tl.TargetVerdict{Kind: tl.TargetOK}
}

func (benchTarget) HandlePull(rsn uint64, p *wire.Packet) ([]byte, uint32, tl.TargetVerdict) {
	return nil, p.PullLength, tl.TargetVerdict{Kind: tl.TargetOK}
}

// benchTransport drives ops closed-loop transactions (window 16, 4KB)
// through a freshly built two-node cluster and returns only when every
// one of them completed.
func benchTransport(b *testing.B, pull bool) {
	s := sim.New(1)
	topo, _ := netsim.PointToPoint(s, netsim.LinkConfig{GbpsRate: 100, PropDelay: sim.Microsecond})
	cl := core.NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	bn := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	epA, epB := cl.Connect(a, bn, core.DefaultConnConfig())
	epB.SetTarget(benchTarget{})

	const window = 16
	const opBytes = 4096
	issued, completed, inFlight := 0, 0, 0
	var pump func()
	done := func(_ []byte, err error) {
		if err != nil {
			b.Fatalf("transaction error: %v", err)
		}
		inFlight--
		completed++
		pump()
	}
	pump = func() {
		for inFlight < window && issued < b.N {
			var err error
			if pull {
				_, err = epA.Pull(opBytes, done)
			} else {
				_, err = epA.Push(nil, opBytes, done)
			}
			if err != nil {
				return // backpressure: the Xon callback re-pumps
			}
			inFlight++
			issued++
		}
	}
	epA.TL().SetXonCallback(pump)

	b.ReportAllocs()
	b.ResetTimer()
	pump()
	s.RunUntil(s.Now().Add(3600 * sim.Second))
	b.StopTimer()
	if completed != b.N {
		b.Fatalf("completed %d of %d ops", completed, b.N)
	}
}

func BenchmarkTransportPush(b *testing.B) { benchTransport(b, false) }

func BenchmarkTransportPull(b *testing.B) { benchTransport(b, true) }
