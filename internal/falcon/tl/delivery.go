package tl

import (
	"slices"
	"time"

	"falcon/internal/falcon/pdl"
	"falcon/internal/falcon/wire"
)

// Deliver is the PDL's upcall for arriving data packets. The TL performs
// resource admission here; ULP processing happens in RSN order (ordered
// connections) via the reorder buffer.
func (c *Conn) Deliver(p *wire.Packet) pdl.DeliverVerdict {
	if p.Space == wire.SpaceResponse {
		c.deliverResponse(p)
		return pdl.DeliverVerdict{Kind: pdl.DeliverAccept}
	}
	return c.deliverRequest(p)
}

// deliverRequest is the target-side request path: admission, ordering,
// ULP handling.
func (c *Conn) deliverRequest(p *wire.Packet) pdl.DeliverVerdict {
	// Stale or duplicate RSNs (e.g. an RNR retry racing a completion)
	// are accepted idempotently: the completion horizon informs the
	// initiator.
	if p.RSN < c.expectedRSN && c.cfg.Ordered {
		return pdl.DeliverVerdict{Kind: pdl.DeliverAccept}
	}
	if c.reorderBuf.has(p.RSN) {
		return pdl.DeliverVerdict{Kind: pdl.DeliverAccept}
	}

	bytes := int(p.Length)
	hol := !c.cfg.Ordered || p.RSN == c.expectedRSN
	if err := c.res.AdmitRxRequest(c.id, bytes, hol); err != nil {
		return pdl.DeliverVerdict{Kind: pdl.DeliverNoResources}
	}

	// Snapshot the packet: the inbound wire packet belongs to the
	// receive path and may be recycled as soon as this upcall returns,
	// so the reorder buffer cannot retain the pointer (Data aliasing is
	// fine — payload slices are never pooled).
	pr := pendingReq{bytes: bytes}
	pr.pkt.CopyFrom(p)
	c.reorderBuf.put(p.RSN, pr)
	if c.cfg.Ordered {
		c.drainTargetOrdered()
	} else {
		c.processRequest(p.RSN)
	}
	return pdl.DeliverVerdict{Kind: pdl.DeliverAccept}
}

// drainTargetOrdered processes buffered requests in RSN order until a gap
// (or an RNR pause) stops it.
func (c *Conn) drainTargetOrdered() {
	for {
		if !c.reorderBuf.has(c.expectedRSN) {
			return
		}
		rsn := c.expectedRSN
		if !c.processRequest(rsn) {
			return // RNR: expectedRSN unchanged, retry will resume
		}
	}
}

// serveAdvance records terminal processing of an RSN at the target: it
// will never run again, and on ordered connections the in-order horizon
// moves past it.
func (c *Conn) serveAdvance(rsn uint64) {
	if c.probe != nil {
		c.probe.OnRequestServed(c, rsn)
	}
	if c.cfg.Ordered {
		c.expectedRSN = rsn + 1
		c.completedRSN = c.expectedRSN
	}
}

// processRequest runs the ULP handler for a buffered request. It returns
// false when the request hit RNR and must be retried by the initiator.
func (c *Conn) processRequest(rsn uint64) bool {
	// The dequeued request lands in a per-connection scratch slot rather
	// than a local: handlers receive &req.pkt, and a local would escape to
	// the heap on every delivery. The scratch is only live across the
	// synchronous handler call below — nothing in that call graph can
	// re-enter processRequest on this connection (requests only arrive
	// via scheduled HandlePacket events).
	c.reqScratch, _ = c.reorderBuf.del(rsn)
	req := &c.reqScratch
	p := &req.pkt
	defer c.res.Release(PoolRxReq, c.id, req.bytes)

	if c.target == nil {
		// No ULP attached: treat as a sink (pure delivery benchmark).
		c.Stats.RequestsServed++
		c.serveAdvance(rsn)
		return true
	}

	switch p.Type {
	case wire.TypePushData:
		v := c.target.HandlePush(rsn, p)
		switch v.Kind {
		case TargetRNR:
			c.ctrl.SendExceptionNack(p.Space, p.PSN, rsn, wire.NackRNR, v.RetryDelay)
			return false
		case TargetError:
			c.ctrl.SendExceptionNack(p.Space, p.PSN, rsn, wire.NackCIE, 0)
			c.serveAdvance(rsn)
			return true
		default:
			c.Stats.RequestsServed++
			c.serveAdvance(rsn)
			return true
		}
	case wire.TypePullRequest:
		data, length, v := c.target.HandlePull(rsn, p)
		switch v.Kind {
		case TargetRNR:
			c.ctrl.SendExceptionNack(p.Space, p.PSN, rsn, wire.NackRNR, v.RetryDelay)
			return false
		case TargetError:
			c.ctrl.SendExceptionNack(p.Space, p.PSN, rsn, wire.NackCIE, 0)
			c.serveAdvance(rsn)
			return true
		case TargetAsync:
			// Response produced later via CompletePull.
			c.Stats.RequestsServed++
			c.serveAdvance(rsn)
			return true
		default:
			c.Stats.RequestsServed++
			c.serveAdvance(rsn)
			c.sendPullResponse(rsn, data, length)
			return true
		}
	default:
		c.serveAdvance(rsn)
		return true
	}
}

// sendPullResponse transmits (or defers, under TxResp pressure) the
// response carrying the pulled data.
func (c *Conn) sendPullResponse(rsn uint64, data []byte, length uint32) {
	resp := c.pool.Acquire()
	resp.Type = wire.TypePullResponse
	resp.RSN = rsn
	resp.Length = length
	resp.Data = data
	if err := c.res.Reserve(PoolTxResp, c.id, int(length)); err != nil {
		// Defer until resources free up; the initiator's RTO/TLP keeps
		// the transaction alive meanwhile.
		c.pendingResponses.push(resp)
		c.updateNeedy()
		return
	}
	c.sentRespBytes.put(rsn, int(length))
	c.ctrl.SendPacket(resp)
}

func (c *Conn) drainPendingResponses() {
	for c.pendingResponses.len() > 0 {
		resp := c.pendingResponses.peek()
		if err := c.res.Reserve(PoolTxResp, c.id, int(resp.Length)); err != nil {
			return
		}
		c.pendingResponses.pop()
		c.updateNeedy()
		c.sentRespBytes.put(resp.RSN, int(resp.Length))
		c.ctrl.SendPacket(resp)
	}
}

// CompletePull sends the deferred response for a pull the target handler
// answered with TargetAsync.
func (c *Conn) CompletePull(rsn uint64, data []byte, length uint32) {
	c.sendPullResponse(rsn, data, length)
}

// deliverResponse is the initiator-side pull-response path.
func (c *Conn) deliverResponse(p *wire.Packet) {
	t, ok := c.txns.get(p.RSN)
	if !ok || t.kind != txnPull || t.finished {
		return // duplicate or stale
	}
	t.finished = true
	t.respData = p.Data
	c.tryRelease()
}

// PacketAcked is the PDL's upcall when a transmitted packet is
// acknowledged: TX resources are released (§4.5) and unordered pushes
// complete.
func (c *Conn) PacketAcked(space wire.Space, psn uint32, rsn uint64, typ wire.Type) {
	if space == wire.SpaceResponse {
		// A pull response we sent as target was delivered.
		if bytes, ok := c.sentRespBytes.del(rsn); ok {
			c.res.Release(PoolTxResp, c.id, bytes)
		}
		return
	}
	// Release the request's TX reservation regardless of transaction
	// state: the completion horizon can finish a transaction before its
	// per-packet ACK lands.
	if bytes, ok := c.reqReservations.del(rsn); ok {
		c.res.Release(PoolTxReq, c.id, bytes)
	}
	t, ok := c.txns.get(rsn)
	if !ok || t.pktAcked {
		return
	}
	t.pktAcked = true
	if t.kind == txnPush && !c.cfg.Ordered && !t.finished && !t.retrying {
		// Unordered push: responsibility transferred on ack. RNR-retrying
		// transactions are excluded — their "ack" only freed the refused
		// packet's context; the retry carries the responsibility.
		t.finished = true
	}
	c.tryRelease()
}

// Completed is the PDL's upcall for the ACK-carried completion horizon:
// all request RSNs below completedRSN are done at the target (ordered
// connections, Figure 5).
func (c *Conn) Completed(completedRSN uint64) {
	if !c.cfg.Ordered {
		return
	}
	if c.cfg.LegacyHotPath {
		c.completedScanLegacy(completedRSN)
		c.tryRelease()
		return
	}
	// Bounded horizon walk: everything below completedApplied was
	// flagged by an earlier call (new transactions always receive RSNs
	// at or above any applied horizon), everything below releaseRSN has
	// left the table, and nothing at or above nextRSN exists yet. The
	// legacy scan ranges the whole map instead; both are pure flag
	// stores, so iteration order cannot diverge the trace.
	hi := completedRSN
	if c.nextRSN < hi {
		hi = c.nextRSN
	}
	lo := c.completedApplied
	if c.releaseRSN > lo {
		lo = c.releaseRSN
	}
	for rsn := lo; rsn < hi; rsn++ {
		if t, ok := c.txns.get(rsn); ok && t.kind == txnPush && !t.finished {
			t.finished = true
		}
	}
	if hi > c.completedApplied {
		c.completedApplied = hi
	}
	c.tryRelease()
}

// rnrRetryEvent retries a transaction after an RNR delay (or a local
// reserve failure). It re-looks the transaction up by RSN at fire time:
// RSNs are never reused, so a lookup miss means the transaction was
// released meanwhile — exactly the case the released guard in
// retryTransaction covered when the event captured the pointer directly
// (and a pointer capture would now be unsound anyway: released contexts
// recycle through the free list under fresh RSNs). Fired events recycle
// through the connection's free list too.
type rnrRetryEvent struct {
	c    *Conn
	rsn  uint64
	next *rnrRetryEvent
}

func (e *rnrRetryEvent) RunAction() {
	c, rsn := e.c, e.rsn
	e.c = nil
	e.next = c.rnrEvents
	c.rnrEvents = e
	if t, ok := c.txns.get(rsn); ok {
		c.retryTransaction(t)
	}
}

// scheduleRetry arms a pooled retry event for rsn after d.
func (c *Conn) scheduleRetry(rsn uint64, d time.Duration) {
	e := c.rnrEvents
	if e == nil {
		e = &rnrRetryEvent{}
	} else {
		c.rnrEvents = e.next
	}
	e.c, e.rsn, e.next = c, rsn, nil
	c.sim.AtAction(c.sim.Now().Add(d), e)
}

// NackReceived is the PDL's upcall for RNR/CIE exception NACKs.
func (c *Conn) NackReceived(p *wire.Packet) {
	t, ok := c.txns.get(p.RSN)
	if !ok || t.finished {
		return
	}
	switch p.NackCode {
	case wire.NackRNR:
		// Transparent retry after the target-specified delay (§4.4). The
		// retrying flag keeps the refused packet's PDL-level ack from
		// completing the transaction (unordered pushes complete on ack).
		t.retrying = true
		c.Stats.RNRRetries++
		c.scheduleRetry(t.rsn, time.Duration(p.RetryDelayNs))
	case wire.NackCIE:
		t.finished = true
		t.err = ErrCIE
		c.tryRelease()
	}
}

// retryTransaction re-reserves TX resources and resends a transaction
// (same RSN, fresh packet) after an RNR.
func (c *Conn) retryTransaction(t *txn) {
	if c.dead != nil || t.finished || t.released {
		return
	}
	bytes := len(t.data)
	if t.kind == txnPush {
		bytes = int(t.length)
	}
	if err := c.res.Reserve(PoolTxReq, c.id, bytes); err != nil {
		// Pool pressure: retry again shortly rather than dropping the
		// transaction.
		c.scheduleRetry(t.rsn, 50*time.Microsecond)
		return
	}
	t.pktAcked = false
	t.retrying = false
	c.sendRequest(t)
}

// Fail is the PDL's terminal-failure upcall: every pending transaction
// completes with err, every held resource is returned, and subsequent
// initiations are refused with ErrConnDead.
func (c *Conn) Fail(err error) {
	if c.dead != nil {
		return
	}
	if err == nil {
		err = ErrConnDead
	}
	c.dead = err
	c.updateNeedy()
	// Error all initiator-side transactions, bypassing ordered release.
	// Sorted so error completions reach the ULP in RSN order rather than
	// map-iteration order (determinism).
	for _, rsn := range c.txns.sorted() {
		t, ok := c.txns.get(rsn)
		if !ok || t.released {
			continue
		}
		t.finished = true
		if t.err == nil {
			t.err = err
		}
		c.release(t)
	}
	// Return TX reservations whose ACKs will never arrive. Release fires
	// Xon subscribers, so these loops also run in sorted RSN order.
	for _, rsn := range c.reqReservations.sorted() {
		bytes, _ := c.reqReservations.del(rsn)
		c.res.Release(PoolTxReq, c.id, bytes)
	}
	for _, rsn := range c.sentRespBytes.sorted() {
		bytes, _ := c.sentRespBytes.del(rsn)
		c.res.Release(PoolTxResp, c.id, bytes)
	}
	// Drop target-side reorder buffers (their RxReq reservations).
	for _, rsn := range c.reorderBuf.sorted() {
		pr, _ := c.reorderBuf.del(rsn)
		c.res.Release(PoolRxReq, c.id, pr.bytes)
	}
	// Deferred responses will never send; their packets go back to the
	// pool.
	for c.pendingResponses.len() > 0 {
		c.pool.Release(c.pendingResponses.pop())
	}
}

// sortRSNs orders an RSN slice ascending (the legacy collection pass).
func sortRSNs(rsns []uint64) { slices.Sort(rsns) }

// Dead returns the terminal error, or nil while the connection is live.
func (c *Conn) Dead() error { return c.dead }

// tryRelease delivers finished transactions' completions to the ULP — in
// RSN order on ordered connections, immediately otherwise.
func (c *Conn) tryRelease() {
	if c.cfg.Ordered {
		for {
			t, ok := c.txns.get(c.releaseRSN)
			if !ok || !t.finished {
				return
			}
			c.release(t)
			c.releaseRSN++
		}
	}
	// Unordered completions are "immediate" but must still fire in a
	// deterministic order, fixed by a collection pass before any ULP
	// callback runs (completions can start new transactions mid-loop).
	// The scratch is detached while in use so a reentrant call cannot
	// clobber the list being walked.
	ready := c.readyScratch
	c.readyScratch = nil
	ready = ready[:0]
	if c.cfg.LegacyHotPath {
		ready = c.collectReadyLegacy(ready)
	} else {
		for rsn := c.txns.lowBound(); rsn < c.txns.high; rsn++ {
			if t, ok := c.txns.get(rsn); ok && t.finished && !t.released {
				ready = append(ready, rsn)
			}
		}
	}
	for _, rsn := range ready {
		if t, ok := c.txns.get(rsn); ok && !t.released {
			c.release(t)
		}
	}
	c.readyScratch = ready[:0]
}

func (c *Conn) release(t *txn) {
	if t.released {
		return
	}
	t.released = true
	respBytes := 0
	if t.kind == txnPull {
		respBytes = int(t.length)
	}
	c.res.Release(PoolRxResp, c.id, respBytes)
	c.txns.del(t.rsn)
	// The context recycles as soon as the table forgets it; the
	// completion fires from locals so a reentrant initiation inside the
	// ULP callback can reuse it safely.
	rsn, respData, terr, done := t.rsn, t.respData, t.err, t.done
	if terr != nil {
		c.Stats.CompletedError++
	} else {
		c.Stats.CompletedOK++
	}
	c.freeTxn(t)
	if c.probe != nil {
		c.probe.OnCompletion(c, rsn, terr)
	}
	if done != nil {
		done(respData, terr)
	}
}
