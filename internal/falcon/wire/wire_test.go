package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Type:           TypeAck,
		Flags:          FlagAckReq | FlagOrdered,
		NackCode:       NackNone,
		ConnID:         0xdeadbeef,
		FlowLabel:      MakeFlowLabel(0x1234, 2),
		PSN:            42,
		Space:          SpaceResponse,
		RSN:            1 << 40,
		T1:             123456789,
		T1Echo:         987654321,
		T2:             111,
		T3:             222,
		Req:            AckInfo{Base: 100, Bitmap: Bitmap{0x5, 0x80}},
		Resp:           AckInfo{Base: 7, Bitmap: Bitmap{1, 0}},
		RxBufOccupancy: 4096,
		AckFlowIndex:   3,
		Length:         0,
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := samplePacket()
	buf := p.Marshal(nil)
	if len(buf) != HeaderLen() {
		t.Fatalf("marshaled length = %d, want %d", len(buf), HeaderLen())
	}
	var q Packet
	n, err := q.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != HeaderLen() {
		t.Fatalf("consumed %d, want %d", n, HeaderLen())
	}
	if !reflect.DeepEqual(*p, q) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, *p)
	}
}

func TestMarshalRoundTripWithPayload(t *testing.T) {
	p := samplePacket()
	p.Type = TypePushData
	p.Data = []byte("hello falcon payload")
	p.Length = uint32(len(p.Data))
	buf := p.Marshal(nil)
	if len(buf) != HeaderLen()+len(p.Data) {
		t.Fatalf("marshaled length = %d", len(buf))
	}
	var q Packet
	n, err := q.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d, want %d", n, len(buf))
	}
	if !bytes.Equal(q.Data, p.Data) {
		t.Fatalf("payload mismatch: %q", q.Data)
	}
}

func TestMarshalHeaderOnlyPayloadLength(t *testing.T) {
	// Simulation mode: Length set but no Data bytes on the wire.
	p := samplePacket()
	p.Type = TypePushData
	p.Length = 4096
	buf := p.Marshal(nil)
	var q Packet
	n, err := q.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != HeaderLen() {
		t.Fatalf("consumed %d, want header only", n)
	}
	if q.Length != 4096 || q.Data != nil {
		t.Fatalf("Length = %d, Data = %v", q.Length, q.Data)
	}
}

func TestMarshalAppendsToDst(t *testing.T) {
	prefix := []byte{1, 2, 3}
	p := samplePacket()
	buf := p.Marshal(prefix)
	if !bytes.Equal(buf[:3], prefix) {
		t.Fatal("Marshal clobbered prefix")
	}
	var q Packet
	if _, err := q.Unmarshal(buf[3:]); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var p Packet
	if _, err := p.Unmarshal(make([]byte, HeaderLen()-1)); err != ErrShortBuffer {
		t.Fatalf("short buffer error = %v", err)
	}
	buf := make([]byte, HeaderLen())
	buf[0] = 0 // TypeInvalid
	if _, err := p.Unmarshal(buf); err == nil {
		t.Fatal("expected error for invalid type")
	}
	buf[0] = 200
	if _, err := p.Unmarshal(buf); err == nil {
		t.Fatal("expected error for unknown type")
	}
}

func TestFlowLabel(t *testing.T) {
	l := MakeFlowLabel(0xABC, 3)
	if l.FlowIndex() != 3 {
		t.Fatalf("FlowIndex = %d", l.FlowIndex())
	}
	if l.Path() != 0xABC {
		t.Fatalf("Path = %#x", l.Path())
	}
	l2 := l.WithPath(0x55)
	if l2.FlowIndex() != 3 || l2.Path() != 0x55 {
		t.Fatalf("WithPath = idx %d path %#x", l2.FlowIndex(), l2.Path())
	}
	// Flow index wraps into MaxFlows.
	if MakeFlowLabel(0, MaxFlows+1).FlowIndex() != 1 {
		t.Fatal("flow index should mask to FlowIndexBits")
	}
}

func TestSpaceOf(t *testing.T) {
	if SpaceOf(TypePushData) != SpaceRequest {
		t.Fatal("PushData should be request space")
	}
	if SpaceOf(TypePullRequest) != SpaceRequest {
		t.Fatal("PullRequest should be request space")
	}
	if SpaceOf(TypePullResponse) != SpaceResponse {
		t.Fatal("PullResponse should be response space")
	}
}

func TestTypePredicates(t *testing.T) {
	for _, tt := range []Type{TypePushData, TypePullRequest, TypePullResponse, TypeResync} {
		if !tt.IsData() {
			t.Errorf("%v should be data", tt)
		}
	}
	for _, tt := range []Type{TypeAck, TypeNack} {
		if tt.IsData() {
			t.Errorf("%v should not be data", tt)
		}
	}
}

func TestStringsDoNotPanic(t *testing.T) {
	for ty := TypeInvalid; ty <= TypeResync+1; ty++ {
		_ = ty.String()
	}
	for c := NackNone; c <= NackXoff+1; c++ {
		_ = c.String()
	}
	p := samplePacket()
	_ = p.String()
	p.Type = TypeNack
	_ = p.String()
	p.Type = TypePushData
	_ = p.String()
	_ = SpaceRequest.String()
	_ = SpaceResponse.String()
	_ = Space(9).String()
}

// Property: Marshal/Unmarshal is the identity on arbitrary valid packets.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(ty uint8, flags uint8, nack uint8, conn uint32, label uint32,
		psn uint32, space bool, rsn uint64, t1, t2 int64, reqBase uint32,
		rb0, rb1 uint64, occ uint16, flowIdx uint8) bool {
		p := Packet{
			Type:           Type(ty%6 + 1), // valid types only
			Flags:          flags,
			NackCode:       NackCode(nack % 5),
			ConnID:         conn,
			FlowLabel:      FlowLabel(label),
			PSN:            psn,
			RSN:            rsn,
			T1:             t1,
			T2:             t2,
			Req:            AckInfo{Base: reqBase, Bitmap: Bitmap{rb0, rb1}},
			RxBufOccupancy: occ,
			AckFlowIndex:   flowIdx,
		}
		if space {
			p.Space = SpaceResponse
		}
		buf := p.Marshal(nil)
		var q Packet
		if _, err := q.Unmarshal(buf); err != nil {
			return false
		}
		return reflect.DeepEqual(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Marshal(buf[:0])
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	buf := samplePacket().Marshal(nil)
	var q Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
