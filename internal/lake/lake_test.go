package lake

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the package directory to the module root, so
// the tests can reach the committed BENCH artifacts regardless of
// where `go test` runs.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// ingestCommitted builds an index over the committed PR 3/5/6
// artifacts — the same set `make lakecheck` gates on.
func ingestCommitted(t *testing.T) *Index {
	t.Helper()
	root := repoRoot(t)
	b := NewBuilder()
	for run, rel := range map[string][]string{
		"pr3": {"BENCH_pr3_metrics.json", "BENCH_pr3_series"},
		"pr5": {"BENCH_pr5.json"},
		"pr6": {"BENCH_pr6.json"},
	} {
		for _, r := range rel {
			if err := b.IngestFile(run, filepath.Join(root, r)); err != nil {
				t.Fatalf("ingest %s: %v", r, err)
			}
		}
	}
	ix, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func encode(t *testing.T, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLakeIngestDeterminism is the golden determinism property: two
// independent ingests of the same artifacts encode byte-identically,
// and decode→re-encode round-trips to the same bytes.
func TestLakeIngestDeterminism(t *testing.T) {
	b1 := encode(t, ingestCommitted(t))
	b2 := encode(t, ingestCommitted(t))
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two ingests of the same artifacts differ: %d vs %d bytes", len(b1), len(b2))
	}

	dec, err := Decode(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	b3 := encode(t, dec)
	if !bytes.Equal(b1, b3) {
		t.Fatal("decode→re-encode is not byte-identical")
	}
}

// TestLakeSelfDiffEmpty asserts the committed corpus self-diffs clean:
// diffing any run against itself reports zero findings.
func TestLakeSelfDiffEmpty(t *testing.T) {
	ix := ingestCommitted(t)
	for _, run := range []string{"pr3", "pr5", "pr6"} {
		rep, err := Diff(ix, run, run, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Empty() {
			var buf bytes.Buffer
			rep.WriteText(&buf)
			t.Fatalf("self-diff of %s not empty:\n%s", run, buf.String())
		}
		if rep.CellsCompared == 0 {
			t.Fatalf("self-diff of %s compared no cells", run)
		}
	}
}

// TestLakeCommittedValues spot-checks that ingested cells carry the
// exact values written in the artifacts.
func TestLakeCommittedValues(t *testing.T) {
	ix := ingestCommitted(t)
	for _, c := range []struct {
		run, path string
		want      float64
	}{
		{"pr3", "fig10/ReadReq/drop0.0/port/down_drops", -1}, // wrong path: prefixed by fwd
		{"pr3", "fig10/ReadReq/drop0.0/fwd/port/tx_bytes", 4436608},
		{"pr3", "fig10/ReadReq/drop0.0/pdl/acks_immediate", 17289},
	} {
		v, ok := ix.Lookup(c.run, c.path)
		if c.want < 0 {
			if ok {
				t.Errorf("Lookup(%s, %s) unexpectedly found %v", c.run, c.path, v)
			}
			continue
		}
		if !ok || v != c.want {
			t.Errorf("Lookup(%s, %s) = %v, %v; want %v", c.run, c.path, v, ok, c.want)
		}
	}

	// The series CSVs are ingested with full fidelity: row counts and
	// first rows match the files.
	sv, ok := ix.FindSeries("pr3", "fig10_write_drop1")
	if !ok {
		t.Fatal("series fig10_write_drop1 missing")
	}
	if sv.Rows() == 0 || sv.Times()[0] != 0 {
		t.Fatalf("series shape wrong: %d rows, t0=%v", sv.Rows(), sv.Times())
	}
	if got := sv.Column("conn/fcwnd"); got == nil || got[0] != 16 {
		t.Fatalf("conn/fcwnd column wrong: %v", got)
	}
}

// TestLakeDecodeRejectsCorruption flips one byte and expects a loud
// checksum failure rather than a silent misparse.
func TestLakeDecodeRejectsCorruption(t *testing.T) {
	raw := encode(t, ingestCommitted(t))
	if _, err := Decode(bytes.NewReader(raw)); err != nil {
		t.Fatalf("clean decode failed: %v", err)
	}
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x40
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted lake file decoded without error")
	}
	if _, err := Decode(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated lake file decoded without error")
	}
	if _, err := Decode(bytes.NewReader([]byte("not a lake file"))); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

// TestLakeBuilderErrors covers ingest-time validation: duplicate
// metrics, duplicate series, unknown schemas, empty builders.
func TestLakeBuilderErrors(t *testing.T) {
	root := repoRoot(t)
	b := NewBuilder()
	path := filepath.Join(root, "BENCH_pr3_metrics.json")
	if err := b.IngestFile("r", path); err != nil {
		t.Fatal(err)
	}
	if err := b.IngestFile("r", path); err == nil {
		t.Fatal("re-ingesting the same metrics into one run should fail (duplicate cells)")
	}
	csv := filepath.Join(root, "BENCH_pr3_series", "fig10_write_drop1.csv")
	b2 := NewBuilder()
	if err := b2.IngestFile("r", csv); err != nil {
		t.Fatal(err)
	}
	if err := b2.IngestFile("r", csv); err == nil {
		t.Fatal("re-ingesting the same series should fail")
	}
	if _, err := NewBuilder().Seal(); err == nil {
		t.Fatal("sealing an empty builder should fail")
	}
	if err := NewBuilder().IngestMetricsJSON("r", bytes.NewReader([]byte(`{"schema":"bogus/v9"}`)), "x"); err == nil {
		t.Fatal("unknown schema should fail")
	}
}

func TestDeriveRunName(t *testing.T) {
	cases := map[string]string{
		"BENCH_pr3_metrics.json": "pr3",
		"BENCH_pr3_series":       "pr3",
		"BENCH_pr3_series/":      "pr3",
		"BENCH_pr6.json":         "pr6",
		"/x/y/BENCH_pr5.json":    "pr5",
		"mylake.json":            "mylake",
		"fig10_write_drop1.csv":  "fig10_write_drop1",
	}
	for in, want := range cases {
		if got := DeriveRunName(in); got != want {
			t.Errorf("DeriveRunName(%q) = %q, want %q", in, got, want)
		}
	}
}
