package lake

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The indexer half of the lake: Builder accumulates artifacts run by
// run, then Seal freezes them into the columnar Index. Ingest order
// never affects the sealed index — everything is sorted at seal time —
// which is what makes double-ingest byte-equality a meaningful test.

// Builder accumulates artifact ingests before sealing an Index.
type Builder struct {
	runs map[string]*runDraft
}

type runDraft struct {
	quick   bool
	schemas map[string]bool
	sources map[string]bool
	cells   map[string]float64
	series  map[string]*seriesDraft
}

type seriesDraft struct {
	cols  []string
	times []int64
	vals  [][]float64 // [column][row]
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{runs: make(map[string]*runDraft)}
}

func (b *Builder) run(name string) *runDraft {
	if d, ok := b.runs[name]; ok {
		return d
	}
	d := &runDraft{
		schemas: make(map[string]bool),
		sources: make(map[string]bool),
		cells:   make(map[string]float64),
		series:  make(map[string]*seriesDraft),
	}
	b.runs[name] = d
	return d
}

// metricsFile mirrors the falconmetrics/v1 payload of falconbench
// -metrics (internal/experiments.MetricsReport). The lake parses the
// serialized artifact rather than importing the in-memory type: the
// whole point is consuming accumulated files across runs and PRs.
type metricsFile struct {
	Schema  string `json:"schema"`
	Quick   bool   `json:"quick"`
	Figures []struct {
		Name    string `json:"name"`
		Metrics struct {
			AtNs    int64 `json:"at_ns"`
			Metrics []struct {
				Name  string  `json:"name"`
				Value float64 `json:"value"`
			} `json:"metrics"`
		} `json:"metrics"`
	} `json:"figures"`
}

// benchFile mirrors the falconbench/v1 perf report
// (internal/experiments.BenchReport) — the non-deterministic,
// wall-clock half of a benchmark run.
type benchFile struct {
	Schema  string `json:"schema"`
	Quick   bool   `json:"quick"`
	Figures []struct {
		Name           string  `json:"name"`
		WallMS         float64 `json:"wall_ms"`
		Events         uint64  `json:"events"`
		EventsPerSec   float64 `json:"events_per_sec"`
		NsPerEvent     float64 `json:"ns_per_event"`
		AllocsPerEvent float64 `json:"allocs_per_event"`
	} `json:"figures"`
}

// SchemaMetrics, SchemaBench and SchemaSeries are the artifact schemas
// the indexer understands. Series CSVs carry no embedded schema tag,
// so the indexer stamps them SchemaSeries on ingest.
const (
	SchemaMetrics = "falconmetrics/v1"
	SchemaBench   = "falconbench/v1"
	SchemaSeries  = "falconseries/v1"
)

// IngestMetricsJSON ingests one falconmetrics/v1 snapshot payload into
// the named run. Every figure metric becomes one cell keyed by its
// full metric path. Duplicate paths within a run are an error: they
// would silently shadow each other across artifacts.
func (b *Builder) IngestMetricsJSON(run string, r io.Reader, source string) error {
	var mf metricsFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return fmt.Errorf("lake: %s: %w", source, err)
	}
	if mf.Schema != SchemaMetrics {
		return fmt.Errorf("lake: %s: schema %q, want %q", source, mf.Schema, SchemaMetrics)
	}
	d := b.run(run)
	for _, fig := range mf.Figures {
		for _, m := range fig.Metrics.Metrics {
			if _, dup := d.cells[m.Name]; dup {
				return fmt.Errorf("lake: %s: duplicate metric %q in run %q", source, m.Name, run)
			}
			d.cells[m.Name] = m.Value
		}
	}
	d.quick = d.quick || mf.Quick
	d.schemas[SchemaMetrics] = true
	d.sources[source] = true
	return nil
}

// IngestBenchJSON ingests one falconbench/v1 performance report. Each
// figure contributes cells under the synthetic perf layer
// ("fig10/perf/events_per_sec"), which the differ treats with loose,
// direction-aware tolerances (ClassPerf).
func (b *Builder) IngestBenchJSON(run string, r io.Reader, source string) error {
	var bf benchFile
	if err := json.NewDecoder(r).Decode(&bf); err != nil {
		return fmt.Errorf("lake: %s: %w", source, err)
	}
	if bf.Schema != SchemaBench {
		return fmt.Errorf("lake: %s: schema %q, want %q", source, bf.Schema, SchemaBench)
	}
	d := b.run(run)
	for _, fig := range bf.Figures {
		cells := []struct {
			metric string
			v      float64
		}{
			{"wall_ms", fig.WallMS},
			{"events", float64(fig.Events)},
			{"events_per_sec", fig.EventsPerSec},
			{"ns_per_event", fig.NsPerEvent},
			{"allocs_per_event", fig.AllocsPerEvent},
		}
		for _, c := range cells {
			name := fig.Name + "/perf/" + c.metric
			if _, dup := d.cells[name]; dup {
				return fmt.Errorf("lake: %s: duplicate metric %q in run %q", source, name, run)
			}
			d.cells[name] = c.v
		}
	}
	d.quick = d.quick || bf.Quick
	d.schemas[SchemaBench] = true
	d.sources[source] = true
	return nil
}

// IngestSeriesCSV ingests one -series CSV (header "t_ns,col..." then
// one row per sampler tick) as the named series of the named run.
func (b *Builder) IngestSeriesCSV(run, name string, r io.Reader, source string) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("lake: %s: %w", source, err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		return fmt.Errorf("lake: %s: empty series", source)
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "t_ns" {
		return fmt.Errorf("lake: %s: first column %q, want t_ns", source, header[0])
	}
	cols := header[1:]
	sd := &seriesDraft{cols: cols, vals: make([][]float64, len(cols))}
	for ln, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return fmt.Errorf("lake: %s:%d: %d fields, want %d", source, ln+2, len(fields), len(header))
		}
		t, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("lake: %s:%d: t_ns: %w", source, ln+2, err)
		}
		sd.times = append(sd.times, t)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return fmt.Errorf("lake: %s:%d: %s: %w", source, ln+2, cols[i], err)
			}
			sd.vals[i] = append(sd.vals[i], v)
		}
	}
	d := b.run(run)
	if _, dup := d.series[name]; dup {
		return fmt.Errorf("lake: %s: duplicate series %q in run %q", source, name, run)
	}
	d.series[name] = sd
	d.schemas[SchemaSeries] = true
	d.sources[source] = true
	return nil
}

// IngestFile ingests one artifact path into the named run,
// dispatching on shape: a directory ingests every *.csv inside as
// series (named by file stem), a .csv file ingests as one series, and
// a .json file is sniffed for its schema tag.
func (b *Builder) IngestFile(run, path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("lake: %w", err)
	}
	if fi.IsDir() {
		ents, err := os.ReadDir(path)
		if err != nil {
			return fmt.Errorf("lake: %w", err)
		}
		n := 0
		for _, ent := range ents {
			if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".csv") {
				continue
			}
			if err := b.IngestFile(run, filepath.Join(path, ent.Name())); err != nil {
				return err
			}
			n++
		}
		if n == 0 {
			return fmt.Errorf("lake: %s: no *.csv series in directory", path)
		}
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("lake: %w", err)
	}
	base := filepath.Base(path)
	switch {
	case strings.HasSuffix(base, ".csv"):
		return b.IngestSeriesCSV(run, strings.TrimSuffix(base, ".csv"), bytes.NewReader(data), base)
	case strings.HasSuffix(base, ".json"):
		var probe struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(data, &probe); err != nil {
			return fmt.Errorf("lake: %s: %w", base, err)
		}
		switch probe.Schema {
		case SchemaMetrics:
			return b.IngestMetricsJSON(run, bytes.NewReader(data), base)
		case SchemaBench:
			return b.IngestBenchJSON(run, bytes.NewReader(data), base)
		default:
			return fmt.Errorf("lake: %s: unknown schema %q", base, probe.Schema)
		}
	default:
		return fmt.Errorf("lake: %s: not a .json, .csv or series directory", path)
	}
}

// DeriveRunName guesses a run key from an artifact file name:
// "BENCH_pr3_metrics.json" and "BENCH_pr3_series" both become "pr3".
func DeriveRunName(path string) string {
	name := filepath.Base(filepath.Clean(path))
	name = strings.TrimSuffix(name, ".json")
	name = strings.TrimSuffix(name, ".csv")
	name = strings.TrimPrefix(name, "BENCH_")
	name = strings.TrimSuffix(name, "_metrics")
	name = strings.TrimSuffix(name, "_series")
	if name == "" {
		return "run"
	}
	return name
}

// Seal freezes the builder into an immutable Index. Sealing sorts
// everything — dictionary, runs, cells, series — so the result is
// independent of ingest order, and two seals over the same artifacts
// are deeply (and, encoded, byte-) identical.
func (b *Builder) Seal() (*Index, error) {
	if len(b.runs) == 0 {
		return nil, fmt.Errorf("lake: no runs ingested")
	}
	ix := &Index{}

	runNames := make([]string, 0, len(b.runs))
	for name := range b.runs {
		runNames = append(runNames, name)
	}
	sort.Strings(runNames)

	// Dictionary: every cell path, series name and series column.
	dict := make(map[string]bool)
	for _, rn := range runNames {
		d := b.runs[rn]
		for path := range d.cells {
			dict[path] = true
		}
		for name, sd := range d.series {
			dict[name] = true
			for _, c := range sd.cols {
				dict[c] = true
			}
		}
	}
	ix.strs = make([]string, 0, len(dict))
	for s := range dict {
		ix.strs = append(ix.strs, s)
	}
	sort.Strings(ix.strs)

	ix.runCellOff = append(ix.runCellOff, 0)
	for ri, rn := range runNames {
		d := b.runs[rn]
		ix.runs = append(ix.runs, Run{
			Name:    rn,
			Quick:   d.quick,
			Schemas: sortedKeys(d.schemas),
			Sources: sortedKeys(d.sources),
		})

		paths := make([]string, 0, len(d.cells))
		for p := range d.cells {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			id, err := ix.intern(p)
			if err != nil {
				return nil, err
			}
			ix.cellRun = append(ix.cellRun, uint32(ri))
			ix.cellPath = append(ix.cellPath, id)
			ix.cellVal = append(ix.cellVal, d.cells[p])
		}
		ix.runCellOff = append(ix.runCellOff, uint32(len(ix.cellVal)))

		for _, sn := range sortedKeys(d.series) {
			sd := d.series[sn]
			nameID, err := ix.intern(sn)
			if err != nil {
				return nil, err
			}
			s := Series{run: uint32(ri), name: nameID, times: sd.times, vals: sd.vals}
			for _, c := range sd.cols {
				cid, err := ix.intern(c)
				if err != nil {
					return nil, err
				}
				s.cols = append(s.cols, cid)
			}
			ix.series = append(ix.series, s)
		}
	}
	return ix, nil
}

// sortedKeys returns the keys of a string-keyed map, sorted.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
