package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"falcon/internal/chaos"
	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/roce"
	"falcon/internal/routing"
	"falcon/internal/sim"
	"falcon/internal/telemetry"
	"falcon/internal/workload"
)

// Storm campaigns (DESIGN.md §14): figStorm races Falcon and RoCE under
// byte-identical seeded fault storms on the same rack-pair fabric and
// measures each transport's recovery envelope; figEndpointFault isolates
// one endpoint fault class per row (pause, crash with surviving or torn
// connection state, NIC blackhole, packet corruption, RNR stall) on a
// point-to-point Falcon link. Every row closes the frame-conservation
// ledger, and the whole chaos layer is exact-class: same seed, same
// bytes.

// stormSeedOverride, when non-zero, replaces the default storm seed set —
// the `falconbench -storm <seed>` knob, process-wide like the scheduler
// and routing-policy defaults.
var stormSeedOverride atomic.Int64

// SetStormSeed overrides the storm campaign seed set with a single seed
// (0 restores the default set).
func SetStormSeed(seed int64) { stormSeedOverride.Store(seed) }

// stormSeeds returns the campaign's seeds: the override when set, else
// the committed default trio.
func stormSeeds() []int64 {
	if s := stormSeedOverride.Load(); s != 0 {
		return []int64{s}
	}
	return []int64{71, 72, 73}
}

// stormRecoveryPct is the envelope's recovery band: trailing-median
// goodput back above this percentage of the pre-fault baseline.
const stormRecoveryPct = 70

// envBuckets is the number of envelope sampling buckets per run window.
const envBuckets = 16

// stormOpBytes is the per-op transfer size of storm workloads.
const stormOpBytes = 64 << 10

// stormSpec bounds figStorm's generated plans: fault windows inside the
// middle half of the run, so the envelope has a clean pre-fault baseline
// and a guaranteed fault-free tail. Crashers and stallers are zero — the
// plan must stay transport-agnostic so the identical storm can hit RoCE.
func stormSpec(runFor time.Duration, hostsPerRack, spines int) chaos.Spec {
	return chaos.Spec{
		Events:      6,
		Start:       sim.Time(runFor / 4),
		End:         sim.Time(3 * runFor / 4),
		Uplinks:     spines,
		HostPorts:   hostsPerRack,
		Hosts:       2 * hostsPerRack,
		RestoreGbps: 200,
	}
}

// stormTargets binds a plan's indices to one rack-pair fabric: fabric
// faults hit ToR-0's uplink group, blackholes hit the rack-0 (client)
// access links, pauses can hit any host.
func stormTargets(topo *netsim.Topology, hostsPerRack int) (chaos.Targets, []*netsim.Port) {
	uplinks := topo.ToRs[0].RouteTo(topo.Hosts[hostsPerRack].ID)
	var t chaos.Targets
	for _, p := range uplinks {
		t.Uplinks = append(t.Uplinks, p)
	}
	for i := 0; i < hostsPerRack; i++ {
		t.HostPorts = append(t.HostPorts, topo.Hosts[i].Uplink())
	}
	for _, h := range topo.Hosts {
		t.Hosts = append(t.Hosts, h)
	}
	return t, uplinks
}

// stormOps computes the per-pair Poisson op budget: arrivals cover the
// sampled window plus a quarter of slack, then issuance stops so the
// simulator can drain for the ledger audit.
func stormOps(opsPerSec float64, runFor time.Duration) int {
	return int(opsPerSec * (float64(runFor.Nanoseconds()) / 1e9) * 5 / 4)
}

// finishReport fills the envelope and ledger of a drained storm run.
func finishReport(rep *chaos.Report, env *chaos.Envelope, n *netsim.Network, plan chaos.Plan) {
	rep.Events = uint64(len(plan.Events))
	if len(plan.Events) > 0 {
		rep.Envelope = env.Finish(plan.FaultStart(), plan.FaultClear(), stormRecoveryPct)
	}
	rep.Ledger = chaos.Audit(n)
}

// stormFalconRun drives the rack-pair Falcon workload (8 cross-rack
// pairs, 60% offered load) under the storm plan and returns the filled
// report. An empty plan is the fault-free twin used for the retransmit
// amplification baseline.
func stormFalconRun(seed int64, plan chaos.Plan, runFor time.Duration) chaos.Report {
	const hostsPerRack = 8
	const spines = 4
	fabricGbps := float64(spines) * 200
	s, topo, cl := rackPair(seed, hostsPerRack, spines)
	var nodes []*core.Node
	for _, h := range topo.Hosts {
		nodes = append(nodes, cl.AddNode(h, core.DefaultNodeConfig()))
	}
	targets, _ := stormTargets(topo, hostsPerRack)
	inj := routing.NewInjector(s)
	chaos.Apply(s, inj, targets, plan)

	var rep chaos.Report
	var delivered uint64
	var eps []*core.Endpoint
	perPairRate := 0.6 * fabricGbps / float64(hostsPerRack)
	opsPerSec := perPairRate * 1e9 / 8 / stormOpBytes
	for i := 0; i < hostsPerRack; i++ {
		epA, epB := cl.Connect(nodes[i], nodes[hostsPerRack+i], multipathConn())
		qa := rdma.NewQP(epA, rdma.Config{})
		rdma.NewQP(epB, rdma.Config{}).RegisterMemoryLen(1 << 40)
		eps = append(eps, epA, epB)
		gen := workload.NewPoisson(s, s.Rand(), opsPerSec, stormOps(opsPerSec, runFor), func() {
			qa.Write(0, 0, nil, stormOpBytes, func(c rdma.Completion) {
				if c.Err == nil {
					delivered += stormOpBytes
					rep.Completed++
				}
			})
		})
		gen.Start()
	}
	env := chaos.NewEnvelope(s, &delivered, runFor/envBuckets, sim.Time(runFor))
	s.Run()

	for _, ep := range eps {
		st := ep.PDL().Stats
		rep.Retransmits += st.DataRetransmits
		if st.MaxConsecRTOs > rep.RTODepth {
			rep.RTODepth = st.MaxConsecRTOs
		}
		rep.ConnsTotal++
		if ep.PDL().Failed() {
			rep.ConnsFailed++
		} else {
			rep.ConnsSurvived++
		}
	}
	finishReport(&rep, env, topo.Net, plan)
	return rep
}

// stormRoceRun is stormFalconRun's RoCE twin: the identical fabric shape,
// workload rate and storm plan, with RoCE RC QPs instead of Falcon
// endpoints. RoCE has no connection-death budget, so its connections
// always read as survived; the envelope and retransmit counters carry the
// comparison.
func stormRoceRun(seed int64, plan chaos.Plan, runFor time.Duration) chaos.Report {
	const hostsPerRack = 8
	const spines = 4
	fabricGbps := float64(spines) * 200
	s := sim.New(seed)
	host := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
	fabric := netsim.LinkConfig{GbpsRate: 200, PropDelay: 2 * time.Microsecond}
	topo := netsim.TwoRack(s, hostsPerRack, spines, host, fabric)
	targets, _ := stormTargets(topo, hostsPerRack)
	inj := routing.NewInjector(s)
	chaos.Apply(s, inj, targets, plan)

	var rep chaos.Report
	var delivered uint64
	var qps []*roce.QP
	perPairRate := 0.6 * fabricGbps / float64(hostsPerRack)
	opsPerSec := perPairRate * 1e9 / 8 / stormOpBytes
	for i := 0; i < hostsPerRack; i++ {
		client := roce.NewNode(s, topo.Hosts[i], nil)
		server := roce.NewNode(s, topo.Hosts[hostsPerRack+i], nil)
		qp, _ := roce.Connect(client, server, uint32(i+1), roce.DefaultConfig())
		qps = append(qps, qp)
		gen := workload.NewPoisson(s, s.Rand(), opsPerSec, stormOps(opsPerSec, runFor), func() {
			qp.Write(stormOpBytes, func() {
				delivered += stormOpBytes
				rep.Completed++
			})
		})
		gen.Start()
	}
	env := chaos.NewEnvelope(s, &delivered, runFor/envBuckets, sim.Time(runFor))
	s.Run()

	for _, qp := range qps {
		rep.Retransmits += qp.Stats.Retransmits
		rep.ConnsTotal++
		rep.ConnsSurvived++
	}
	finishReport(&rep, env, topo.Net, plan)
	return rep
}

// stormRow renders one transport's report as a table row.
func stormRow(seed int64, transport string, rep chaos.Report) []string {
	return []string{
		fmt.Sprintf("%d", seed), transport,
		fmt.Sprintf("%d", rep.Events),
		fmt.Sprintf("%d", rep.Envelope.BaselineMbps),
		fmt.Sprintf("%d", rep.Envelope.StormMbps),
		fmt.Sprintf("%d", rep.Envelope.TailMbps),
		boolCell(rep.Envelope.Recovered),
		dur(time.Duration(rep.Envelope.RecoveryNs)),
		fmt.Sprintf("%d", rep.Retransmits),
		fmt.Sprintf("%d", rep.BaselineRetransmits),
		boolCell(rep.Ledger.Balanced()),
	}
}

func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// FigStorm races Falcon against RoCE under identical seeded fault storms
// (six fabric+endpoint faults inside the middle half of the run) and
// reports each transport's recovery envelope, retransmit amplification
// and frame-conservation verdict.
func FigStorm(runFor time.Duration) *Table { return figStorm(runFor, nil) }

// FigStormTel is the instrumented FigStorm, exporting each run's chaos
// report under figStorm/seed<N>/<transport>.
func FigStormTel(runFor time.Duration, tel *telemetry.Suite) *Table {
	return figStorm(runFor, tel)
}

func figStorm(runFor time.Duration, tel *telemetry.Suite) *Table {
	t := &Table{
		Title: "Storm campaigns: Falcon vs RoCE under identical seeded fault storms, 60% load",
		Columns: []string{"seed", "transport", "events", "base Mbps", "storm Mbps",
			"tail Mbps", "recovered", "gap", "retx", "retx base", "ledger"},
	}
	for _, seed := range stormSeeds() {
		plan := chaos.Generate(seed, stormSpec(runFor, 8, 4))
		falcon := stormFalconRun(seed, plan, runFor)
		falcon.BaselineRetransmits = stormFalconRun(seed, chaos.Plan{}, runFor).Retransmits
		rocer := stormRoceRun(seed, plan, runFor)
		rocer.BaselineRetransmits = stormRoceRun(seed, chaos.Plan{}, runFor).Retransmits
		if tel != nil {
			reg := tel.Registry()
			fr, rr := falcon, rocer
			telemetry.CollectChaos(reg, fmt.Sprintf("figStorm/seed%d/falcon", seed), &fr)
			telemetry.CollectChaos(reg, fmt.Sprintf("figStorm/seed%d/roce", seed), &rr)
		}
		t.Rows = append(t.Rows, stormRow(seed, "falcon", falcon))
		t.Rows = append(t.Rows, stormRow(seed, "roce", rocer))
	}
	return t
}

// endpointScenario is one figEndpointFault row: a single fault event on a
// point-to-point Falcon link.
type endpointScenario struct {
	name  string
	event func(at sim.Time, d time.Duration) chaos.Event
}

// FigEndpointFault isolates each endpoint fault class on a point-to-point
// Falcon connection: host pause, crash with surviving connection state,
// crash with teardown (the peer discovers the death through its RTO
// budget), NIC blackhole, packet corruption and a receiver-not-ready
// stall. Each row reports the recovery envelope, RTO escalation depth,
// connection survival and the ledger verdict.
func FigEndpointFault(runFor time.Duration) *Table { return figEndpointFault(runFor, nil) }

// FigEndpointFaultTel is the instrumented FigEndpointFault, exporting
// each scenario's chaos report under figEndpointFault/<scenario>.
func FigEndpointFaultTel(runFor time.Duration, tel *telemetry.Suite) *Table {
	return figEndpointFault(runFor, tel)
}

func figEndpointFault(runFor time.Duration, tel *telemetry.Suite) *Table {
	t := &Table{
		Title: "Endpoint faults on a point-to-point Falcon link: recovery envelope per fault class",
		Columns: []string{"fault", "base Mbps", "storm Mbps", "tail Mbps", "recovered",
			"gap", "retx", "rto depth", "conns ok", "conns dead", "ledger"},
	}
	scenarios := []endpointScenario{
		{"pause", func(at sim.Time, d time.Duration) chaos.Event {
			return chaos.Event{Kind: chaos.KindPause, Target: 1, At: at, For: d}
		}},
		{"crash_survive", func(at sim.Time, d time.Duration) chaos.Event {
			return chaos.Event{Kind: chaos.KindCrash, Target: 1, At: at, For: d}
		}},
		{"crash_teardown", func(at sim.Time, d time.Duration) chaos.Event {
			return chaos.Event{Kind: chaos.KindCrash, Target: 1, At: at, For: d, Teardown: true}
		}},
		{"blackhole", func(at sim.Time, d time.Duration) chaos.Event {
			return chaos.Event{Kind: chaos.KindBlackhole, Target: 0, At: at, For: d}
		}},
		{"corrupt", func(at sim.Time, d time.Duration) chaos.Event {
			return chaos.Event{Kind: chaos.KindCorrupt, Target: 0, At: at, For: d, Prob: 0.25}
		}},
		{"rnr_stall", func(at sim.Time, d time.Duration) chaos.Event {
			return chaos.Event{Kind: chaos.KindRNRStall, Target: 0, At: at, For: d}
		}},
	}
	for _, sc := range scenarios {
		ev := sc.event(sim.Time(runFor/4), runFor/4)
		rep := endpointFaultRun(91, ev, runFor)
		if tel != nil {
			r := rep
			telemetry.CollectChaos(tel.Registry(), "figEndpointFault/"+sc.name, &r)
		}
		t.Rows = append(t.Rows, []string{
			sc.name,
			fmt.Sprintf("%d", rep.Envelope.BaselineMbps),
			fmt.Sprintf("%d", rep.Envelope.StormMbps),
			fmt.Sprintf("%d", rep.Envelope.TailMbps),
			boolCell(rep.Envelope.Recovered),
			dur(time.Duration(rep.Envelope.RecoveryNs)),
			fmt.Sprintf("%d", rep.Retransmits),
			fmt.Sprintf("%d", rep.RTODepth),
			fmt.Sprintf("%d", rep.ConnsSurvived),
			fmt.Sprintf("%d", rep.ConnsFailed),
			boolCell(rep.Ledger.Balanced()),
		})
	}
	return t
}

// endpointFaultRun drives one client->server Falcon connection over a
// point-to-point link at ~30% load through a single fault event. Host 0
// is the client (initiator), host 1 the server; faults index Hosts and
// HostPorts by host, and the RNR valve wraps the server's target.
func endpointFaultRun(seed int64, ev chaos.Event, runFor time.Duration) chaos.Report {
	const opBytes = 8 << 10
	s := sim.New(seed)
	topo, _ := netsim.PointToPoint(s, netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond})
	cl := core.NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	epA, epB := cl.Connect(a, b, multipathConn())
	qa := rdma.NewQP(epA, rdma.Config{})
	qb := rdma.NewQP(epB, rdma.Config{})
	qb.RegisterMemoryLen(1 << 40)
	valve := chaos.NewRNRValve(qb.Target(), 50*time.Microsecond)
	epB.SetTarget(valve)

	plan := chaos.Plan{Seed: seed, RestoreGbps: 200, Events: []chaos.Event{ev}}
	inj := routing.NewInjector(s)
	chaos.Apply(s, inj, chaos.Targets{
		Uplinks:   []chaos.FabricPort{topo.Hosts[0].Uplink(), topo.Hosts[1].Uplink()},
		HostPorts: []chaos.FabricPort{topo.Hosts[0].Uplink(), topo.Hosts[1].Uplink()},
		Hosts:     []chaos.Host{topo.Hosts[0], topo.Hosts[1]},
		Crashers:  []chaos.Crasher{a, b},
		Stallers:  []chaos.Staller{valve},
	}, plan)

	var rep chaos.Report
	var delivered uint64
	opsPerSec := 0.3 * 200e9 / 8 / opBytes
	gen := workload.NewPoisson(s, s.Rand(), opsPerSec, stormOps(opsPerSec, runFor), func() {
		qa.Write(0, 0, nil, opBytes, func(c rdma.Completion) {
			if c.Err == nil {
				delivered += opBytes
				rep.Completed++
			}
		})
	})
	gen.Start()
	env := chaos.NewEnvelope(s, &delivered, runFor/envBuckets, sim.Time(runFor))
	s.Run()

	for _, ep := range []*core.Endpoint{epA, epB} {
		st := ep.PDL().Stats
		rep.Retransmits += st.DataRetransmits
		if st.MaxConsecRTOs > rep.RTODepth {
			rep.RTODepth = st.MaxConsecRTOs
		}
		rep.ConnsTotal++
		if ep.PDL().Failed() {
			rep.ConnsFailed++
		} else {
			rep.ConnsSurvived++
		}
	}
	finishReport(&rep, env, topo.Net, plan)
	return rep
}

// stormPlanForTest exposes plan generation at the campaign's spec shape
// for the chaoscheck sweep (internal tests only).
func stormPlanForTest(seed int64, runFor time.Duration) chaos.Plan {
	return chaos.Generate(seed, stormSpec(runFor, 8, 4))
}
