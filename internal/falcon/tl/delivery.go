package tl

import (
	"slices"
	"time"

	"falcon/internal/falcon/pdl"
	"falcon/internal/falcon/wire"
)

// Deliver is the PDL's upcall for arriving data packets. The TL performs
// resource admission here; ULP processing happens in RSN order (ordered
// connections) via the reorder buffer.
func (c *Conn) Deliver(p *wire.Packet) pdl.DeliverVerdict {
	if p.Space == wire.SpaceResponse {
		c.deliverResponse(p)
		return pdl.DeliverVerdict{Kind: pdl.DeliverAccept}
	}
	return c.deliverRequest(p)
}

// deliverRequest is the target-side request path: admission, ordering,
// ULP handling.
func (c *Conn) deliverRequest(p *wire.Packet) pdl.DeliverVerdict {
	// Stale or duplicate RSNs (e.g. an RNR retry racing a completion)
	// are accepted idempotently: the completion horizon informs the
	// initiator.
	if p.RSN < c.expectedRSN && c.cfg.Ordered {
		return pdl.DeliverVerdict{Kind: pdl.DeliverAccept}
	}
	if _, dup := c.reorderBuf[p.RSN]; dup {
		return pdl.DeliverVerdict{Kind: pdl.DeliverAccept}
	}

	bytes := int(p.Length)
	hol := !c.cfg.Ordered || p.RSN == c.expectedRSN
	if err := c.res.AdmitRxRequest(c.id, bytes, hol); err != nil {
		return pdl.DeliverVerdict{Kind: pdl.DeliverNoResources}
	}

	c.reorderBuf[p.RSN] = &pendingReq{pkt: p, bytes: bytes}
	if c.cfg.Ordered {
		c.drainTargetOrdered()
	} else {
		c.processRequest(p.RSN)
	}
	return pdl.DeliverVerdict{Kind: pdl.DeliverAccept}
}

// drainTargetOrdered processes buffered requests in RSN order until a gap
// (or an RNR pause) stops it.
func (c *Conn) drainTargetOrdered() {
	for {
		if _, ok := c.reorderBuf[c.expectedRSN]; !ok {
			return
		}
		rsn := c.expectedRSN
		if !c.processRequest(rsn) {
			return // RNR: expectedRSN unchanged, retry will resume
		}
	}
}

// processRequest runs the ULP handler for a buffered request. It returns
// false when the request hit RNR and must be retried by the initiator.
func (c *Conn) processRequest(rsn uint64) bool {
	req := c.reorderBuf[rsn]
	p := req.pkt
	delete(c.reorderBuf, rsn)
	defer c.res.Release(PoolRxReq, c.id, req.bytes)

	advance := func() {
		// Terminal processing of this RSN: it will never run again.
		if c.probe != nil {
			c.probe.OnRequestServed(c, rsn)
		}
		if c.cfg.Ordered {
			c.expectedRSN = rsn + 1
			c.completedRSN = c.expectedRSN
		}
	}

	if c.target == nil {
		// No ULP attached: treat as a sink (pure delivery benchmark).
		c.Stats.RequestsServed++
		advance()
		return true
	}

	switch p.Type {
	case wire.TypePushData:
		v := c.target.HandlePush(rsn, p)
		switch v.Kind {
		case TargetRNR:
			c.ctrl.SendExceptionNack(p.Space, p.PSN, rsn, wire.NackRNR, v.RetryDelay)
			return false
		case TargetError:
			c.ctrl.SendExceptionNack(p.Space, p.PSN, rsn, wire.NackCIE, 0)
			advance()
			return true
		default:
			c.Stats.RequestsServed++
			advance()
			return true
		}
	case wire.TypePullRequest:
		data, length, v := c.target.HandlePull(rsn, p)
		switch v.Kind {
		case TargetRNR:
			c.ctrl.SendExceptionNack(p.Space, p.PSN, rsn, wire.NackRNR, v.RetryDelay)
			return false
		case TargetError:
			c.ctrl.SendExceptionNack(p.Space, p.PSN, rsn, wire.NackCIE, 0)
			advance()
			return true
		case TargetAsync:
			// Response produced later via CompletePull.
			c.Stats.RequestsServed++
			advance()
			return true
		default:
			c.Stats.RequestsServed++
			advance()
			c.sendPullResponse(rsn, data, length)
			return true
		}
	default:
		advance()
		return true
	}
}

// sendPullResponse transmits (or defers, under TxResp pressure) the
// response carrying the pulled data.
func (c *Conn) sendPullResponse(rsn uint64, data []byte, length uint32) {
	resp := &wire.Packet{
		Type:   wire.TypePullResponse,
		RSN:    rsn,
		Length: length,
		Data:   data,
	}
	if err := c.res.Reserve(PoolTxResp, c.id, int(length)); err != nil {
		// Defer until resources free up; the initiator's RTO/TLP keeps
		// the transaction alive meanwhile.
		c.pendingResponses = append(c.pendingResponses, resp)
		return
	}
	c.sentRespBytes[rsn] = int(length)
	c.ctrl.SendPacket(resp)
}

func (c *Conn) drainPendingResponses() {
	for len(c.pendingResponses) > 0 {
		resp := c.pendingResponses[0]
		if err := c.res.Reserve(PoolTxResp, c.id, int(resp.Length)); err != nil {
			return
		}
		c.pendingResponses = c.pendingResponses[1:]
		c.sentRespBytes[resp.RSN] = int(resp.Length)
		c.ctrl.SendPacket(resp)
	}
}

// CompletePull sends the deferred response for a pull the target handler
// answered with TargetAsync.
func (c *Conn) CompletePull(rsn uint64, data []byte, length uint32) {
	c.sendPullResponse(rsn, data, length)
}

// deliverResponse is the initiator-side pull-response path.
func (c *Conn) deliverResponse(p *wire.Packet) {
	t, ok := c.txns[p.RSN]
	if !ok || t.kind != txnPull || t.finished {
		return // duplicate or stale
	}
	t.finished = true
	t.respData = p.Data
	c.tryRelease()
}

// PacketAcked is the PDL's upcall when a transmitted packet is
// acknowledged: TX resources are released (§4.5) and unordered pushes
// complete.
func (c *Conn) PacketAcked(space wire.Space, psn uint32, rsn uint64, typ wire.Type) {
	if space == wire.SpaceResponse {
		// A pull response we sent as target was delivered.
		if bytes, ok := c.sentRespBytes[rsn]; ok {
			delete(c.sentRespBytes, rsn)
			c.res.Release(PoolTxResp, c.id, bytes)
		}
		return
	}
	// Release the request's TX reservation regardless of transaction
	// state: the completion horizon can finish a transaction before its
	// per-packet ACK lands.
	if bytes, ok := c.reqReservations[rsn]; ok {
		delete(c.reqReservations, rsn)
		c.res.Release(PoolTxReq, c.id, bytes)
	}
	t, ok := c.txns[rsn]
	if !ok || t.pktAcked {
		return
	}
	t.pktAcked = true
	if t.kind == txnPush && !c.cfg.Ordered && !t.finished && !t.retrying {
		// Unordered push: responsibility transferred on ack. RNR-retrying
		// transactions are excluded — their "ack" only freed the refused
		// packet's context; the retry carries the responsibility.
		t.finished = true
	}
	c.tryRelease()
}

// Completed is the PDL's upcall for the ACK-carried completion horizon:
// all request RSNs below completedRSN are done at the target (ordered
// connections, Figure 5).
func (c *Conn) Completed(completedRSN uint64) {
	if !c.cfg.Ordered {
		return
	}
	for rsn, t := range c.txns {
		if rsn < completedRSN && t.kind == txnPush && !t.finished {
			t.finished = true
		}
	}
	c.tryRelease()
}

// NackReceived is the PDL's upcall for RNR/CIE exception NACKs.
func (c *Conn) NackReceived(p *wire.Packet) {
	t, ok := c.txns[p.RSN]
	if !ok || t.finished {
		return
	}
	switch p.NackCode {
	case wire.NackRNR:
		// Transparent retry after the target-specified delay (§4.4). The
		// retrying flag keeps the refused packet's PDL-level ack from
		// completing the transaction (unordered pushes complete on ack).
		t.retrying = true
		c.Stats.RNRRetries++
		c.sim.After(time.Duration(p.RetryDelayNs), func() { c.retryTransaction(t) })
	case wire.NackCIE:
		t.finished = true
		t.err = ErrCIE
		c.tryRelease()
	}
}

// retryTransaction re-reserves TX resources and resends a transaction
// (same RSN, fresh packet) after an RNR.
func (c *Conn) retryTransaction(t *txn) {
	if c.dead != nil || t.finished || t.released {
		return
	}
	bytes := len(t.data)
	if t.kind == txnPush {
		bytes = int(t.length)
	}
	if err := c.res.Reserve(PoolTxReq, c.id, bytes); err != nil {
		// Pool pressure: retry again shortly rather than dropping the
		// transaction.
		c.sim.After(50*time.Microsecond, func() { c.retryTransaction(t) })
		return
	}
	t.pktAcked = false
	t.retrying = false
	c.sendRequest(t)
}

// Fail is the PDL's terminal-failure upcall: every pending transaction
// completes with err, every held resource is returned, and subsequent
// initiations are refused with ErrConnDead.
func (c *Conn) Fail(err error) {
	if c.dead != nil {
		return
	}
	if err == nil {
		err = ErrConnDead
	}
	c.dead = err
	// Error all initiator-side transactions, bypassing ordered release.
	// Sorted so error completions reach the ULP in RSN order rather than
	// map-iteration order (determinism).
	rsns := make([]uint64, 0, len(c.txns))
	for rsn := range c.txns {
		rsns = append(rsns, rsn)
	}
	slices.Sort(rsns)
	for _, rsn := range rsns {
		t := c.txns[rsn]
		if t == nil || t.released {
			continue
		}
		t.finished = true
		if t.err == nil {
			t.err = err
		}
		c.release(t)
	}
	// Return TX reservations whose ACKs will never arrive. Release fires
	// Xon subscribers, so these loops also run in sorted RSN order.
	for _, rsn := range sortedKeys(c.reqReservations) {
		c.res.Release(PoolTxReq, c.id, c.reqReservations[rsn])
		delete(c.reqReservations, rsn)
	}
	for _, rsn := range sortedKeys(c.sentRespBytes) {
		c.res.Release(PoolTxResp, c.id, c.sentRespBytes[rsn])
		delete(c.sentRespBytes, rsn)
	}
	// Drop target-side reorder buffers (their RxReq reservations).
	for _, rsn := range sortedKeys(c.reorderBuf) {
		c.res.Release(PoolRxReq, c.id, c.reorderBuf[rsn].bytes)
		delete(c.reorderBuf, rsn)
	}
	c.pendingResponses = nil
}

// sortedKeys returns the map's keys in ascending order, for deterministic
// iteration where side effects (callbacks) escape the loop.
func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Dead returns the terminal error, or nil while the connection is live.
func (c *Conn) Dead() error { return c.dead }

// tryRelease delivers finished transactions' completions to the ULP — in
// RSN order on ordered connections, immediately otherwise.
func (c *Conn) tryRelease() {
	if c.cfg.Ordered {
		for {
			t, ok := c.txns[c.releaseRSN]
			if !ok || !t.finished {
				return
			}
			c.release(t)
			c.releaseRSN++
		}
	}
	// Unordered completions are "immediate" but must still fire in a
	// deterministic order: ranging over the map directly would invoke ULP
	// callbacks in Go's randomized iteration order, so two runs with the
	// same seed could schedule follow-on work differently.
	var ready []uint64
	for rsn, t := range c.txns {
		if t.finished && !t.released {
			ready = append(ready, rsn)
		}
	}
	slices.Sort(ready)
	for _, rsn := range ready {
		if t, ok := c.txns[rsn]; ok && !t.released {
			c.release(t)
		}
	}
}

func (c *Conn) release(t *txn) {
	if t.released {
		return
	}
	t.released = true
	respBytes := 0
	if t.kind == txnPull {
		respBytes = int(t.length)
	}
	c.res.Release(PoolRxResp, c.id, respBytes)
	delete(c.txns, t.rsn)
	if t.err != nil {
		c.Stats.CompletedError++
	} else {
		c.Stats.CompletedOK++
	}
	if c.probe != nil {
		c.probe.OnCompletion(c, t.rsn, t.err)
	}
	if t.done != nil {
		t.done(t.respData, t.err)
	}
}
