package workload

import (
	"time"

	"falcon/internal/sim"
)

// Pipe abstracts the transport a live migration runs over: bulk transfers
// (pre-copy, post-copy background) and latency-sensitive single-page
// fetches (post-copy on-demand faults). Implemented over Falcon RDMA and
// the Pony Express model for Figure 29.
type Pipe interface {
	// Transfer moves n bytes of guest memory; done at completion.
	Transfer(n int, done func())
	// Fetch performs one on-demand page fetch (round trip).
	Fetch(n int, done func())
}

// MigrationConfig describes the guest and its workload (Figure 29: "the
// guest VM continuously accesses and dirties its memory throughout").
type MigrationConfig struct {
	// MemoryBytes is the guest memory size.
	MemoryBytes int64
	// PageBytes is the page size.
	PageBytes int
	// DirtyRatePagesPerSec is how fast the running guest dirties pages.
	DirtyRatePagesPerSec float64
	// AccessRatePagesPerSec is how fast the guest tries to touch pages
	// (post-copy demand).
	AccessRatePagesPerSec float64
	// PreCopyRounds caps pre-copy iterations before the blackout.
	PreCopyRounds int
	// Quantum is the model's simulation step.
	Quantum time.Duration
}

// DefaultMigration returns a 16 GiB guest under the paper's stress
// pattern: the guest "continuously accesses and dirties its memory
// throughout the migration" — fast enough that pre-copy cannot fully
// converge and the post-copy phase does real work.
func DefaultMigration() MigrationConfig {
	return MigrationConfig{
		MemoryBytes:           16 << 30,
		PageBytes:             4096,
		DirtyRatePagesPerSec:  1_500_000,
		AccessRatePagesPerSec: 1_000_000,
		PreCopyRounds:         3,
		Quantum:               time.Millisecond,
	}
}

// MigrationResult reports the Figure 29 metrics.
type MigrationResult struct {
	PreCopy  time.Duration
	Blackout time.Duration
	PostCopy time.Duration
	// GuestAccessRate is the achieved post-copy access rate (pages/s).
	GuestAccessRate float64
	// VCPUWait is the total time vCPUs stalled on on-demand fetches.
	VCPUWait time.Duration
}

// RunMigration executes the two-phase migration model over the pipe and
// returns the phase timings. It runs the simulator to completion.
func RunMigration(s *sim.Simulator, p Pipe, cfg MigrationConfig) MigrationResult {
	var res MigrationResult
	totalPages := cfg.MemoryBytes / int64(cfg.PageBytes)

	// --- Pre-copy: transfer the dirty set while the guest keeps
	// dirtying. Each round transfers the current dirty set in
	// quantum-size chunks; dirtying continues during the transfer.
	dirty := totalPages
	preStart := s.Now()
	round := 0

	var blackout func()
	var preRound func()
	preRound = func() {
		toSend := dirty
		dirty = 0
		var pump func(remaining int64)
		pump = func(remaining int64) {
			if remaining <= 0 {
				round++
				// Converged enough, or out of rounds?
				if round >= cfg.PreCopyRounds || dirty < totalPages/100 {
					blackout()
					return
				}
				preRound()
				return
			}
			// Send a bounded chunk per Transfer so dirtying
			// interleaves with transfer progress.
			pages := remaining
			if pages > 4096 {
				pages = 4096
			}
			bytes := pages * int64(cfg.PageBytes)
			tStart := s.Now()
			p.Transfer(int(bytes), func() {
				elapsed := s.Now().Sub(tStart).Seconds()
				newlyDirty := int64(cfg.DirtyRatePagesPerSec * elapsed)
				if newlyDirty > totalPages {
					newlyDirty = totalPages
				}
				dirty += newlyDirty
				if dirty > totalPages {
					dirty = totalPages
				}
				pump(remaining - pages)
			})
		}
		pump(toSend)
	}

	// --- Blackout and post-copy.
	blackout = func() {
		res.PreCopy = s.Now().Sub(preStart)
		// Fixed brief blackout: vCPU state + device state.
		const blackoutTime = 50 * time.Millisecond
		res.Blackout = blackoutTime
		s.After(blackoutTime, func() {
			postStart := s.Now()
			remaining := dirty // pages not yet at the target
			missingFrac := func() float64 {
				return float64(remaining) / float64(totalPages)
			}
			accessesDone := 0.0
			var postIter func()
			postIter = func() {
				if remaining <= 0 {
					res.PostCopy = s.Now().Sub(postStart)
					if res.PostCopy > 0 {
						res.GuestAccessRate = accessesDone / res.PostCopy.Seconds()
					}
					return
				}
				// Background fetch: one bounded bulk transfer per
				// iteration; accesses and faults are accounted
				// against the iteration's actual elapsed time.
				pages := remaining
				if pages > 2048 {
					pages = 2048
				}
				bgBytes := pages * int64(cfg.PageBytes)
				miss := missingFrac()
				iterStart := s.Now()
				// Sample one representative on-demand fetch; its
				// round trip scales to the iteration's expected
				// fault count (known once elapsed time is known).
				var fetchLat time.Duration
				p.Fetch(cfg.PageBytes, func() { fetchLat = s.Now().Sub(iterStart) })
				p.Transfer(int(bgBytes), func() {
					elapsed := s.Now().Sub(iterStart).Seconds()
					faults := cfg.AccessRatePagesPerSec * elapsed * miss
					res.VCPUWait += time.Duration(float64(fetchLat) * faults)
					// Hits proceed at full rate; faulting
					// accesses are stalled for the iteration.
					accessesDone += cfg.AccessRatePagesPerSec * elapsed * (1 - miss*0.9)
					remaining -= pages
					s.After(0, postIter)
				})
			}
			postIter()
		})
	}

	preRound()
	s.Run()
	return res
}
