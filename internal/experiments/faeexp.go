package experiments

import (
	"fmt"
	"time"

	"falcon/internal/core"
	"falcon/internal/falcon/fae"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

// Fig22a reproduces "FAE event rate vs connection count" for the three
// state-management designs of §5.3: stateless (state embedded in events),
// naive stateful (state fetched per event), and stateful with event-queue
// prefetching.
func Fig22a() *Table {
	t := &Table{
		Title:   "Figure 22a: FAE event rate (M events/s) vs connections, 64B state",
		Columns: []string{"connections", "stateless", "stateful", "stateful+prefetch"},
	}
	m := fae.DefaultCacheModel()
	for _, conns := range []int{1000, 10_000, 100_000, 128_000, 500_000, 1_000_000} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", conns),
			f1(m.EventRate(fae.Stateless, conns, 64) / 1e6),
			f1(m.EventRate(fae.Stateful, conns, 64) / 1e6),
			f1(m.EventRate(fae.StatefulPrefetch, conns, 64) / 1e6),
		})
	}
	return t
}

// Fig23 reproduces "FAE state sensitivity": event rate at 128K connections
// as the per-connection algorithm state grows from 64B to 512B.
func Fig23() *Table {
	t := &Table{
		Title:   "Figure 23: FAE event rate (M events/s) vs state size, 128K connections",
		Columns: []string{"state bytes", "stateful+prefetch", "stateful"},
	}
	m := fae.DefaultCacheModel()
	for _, bytes := range []int{64, 128, 256, 512} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", bytes),
			f1(m.EventRate(fae.StatefulPrefetch, 128_000, bytes) / 1e6),
			f1(m.EventRate(fae.Stateful, 128_000, bytes) / 1e6),
		})
	}
	return t
}

// Fig22b reproduces "impact of slow FAE": an incast (2 senders x 20 QPs of
// 1MB writes) with artificial FAE event-turnaround delays. Falcon tolerates
// moderate FAE lag; fabric delay only inflates once responses lag by tens
// of microseconds.
//
// Scaled down from the paper's 2x100 QPs.
func Fig22b(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Figure 22b: fabric RTT vs FAE response delay (2x20 QP incast, 1MB writes)",
		Columns: []string{"FAE delay us", "p50 RTT", "p99 RTT", "p99/baseline"},
	}
	run := func(delay time.Duration) (time.Duration, time.Duration) {
		s := sim.New(22)
		link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
		topo := netsim.Star(s, 3, link)
		cl := core.NewCluster(s)
		ncfg := core.DefaultNodeConfig()
		ncfg.FAE.ResponseDelay = delay
		server := cl.AddNode(topo.Hosts[0], ncfg)
		for h := 1; h <= 2; h++ {
			client := cl.AddNode(topo.Hosts[h], ncfg)
			for q := 0; q < 20; q++ {
				epC, epS := cl.Connect(client, server, multipathConn())
				qa := rdma.NewQP(epC, rdma.Config{})
				rdma.NewQP(epS, rdma.Config{}).RegisterMemoryLen(1 << 40)
				// Bursty on-off traffic: incast onsets are where
				// congestion control must adapt, so FAE lag shows
				// up as queue overshoot.
				gen := workload.NewPoisson(s, s.Rand(), 1200, 1<<30, func() {
					qa.Write(0, 0, nil, 1<<20, nil)
				})
				gen.Start()
			}
		}
		// Sample every connection's smoothed RTT periodically; the
		// distribution over time is the fabric-RTT proxy the paper
		// plots.
		var lat stats.Series
		var sample func()
		sample = func() {
			sampleSRTT(cl, &lat)
			s.After(100*time.Microsecond, sample)
		}
		s.After(200*time.Microsecond, sample)
		s.RunUntil(sim.Time(runFor))
		return lat.DurationPercentile(50), lat.DurationPercentile(99)
	}
	_, base99 := run(0)
	for _, d := range []time.Duration{0, 8 * time.Microsecond, 16 * time.Microsecond, 32 * time.Microsecond, 64 * time.Microsecond, 128 * time.Microsecond, 256 * time.Microsecond} {
		p50, p99 := run(d)
		t.Rows = append(t.Rows, []string{
			f1(d.Seconds() * 1e6), dur(p50), dur(p99), f2(float64(p99) / float64(base99)),
		})
	}
	return t
}

// sampleSRTT gathers the SRTT of every connection in the cluster.
func sampleSRTT(cl *core.Cluster, lat *stats.Series) {
	for _, ep := range cl.Endpoints() {
		if srtt := ep.PDL().SRTT(); srtt > 0 {
			lat.AddDuration(srtt)
		}
	}
}
