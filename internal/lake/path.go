package lake

import "strings"

// Metric-path dimension grammar. Every cell in the lake is keyed by a
// slash-separated hierarchical name; METRICS.md is the authoritative
// reference. The shape, as emitted by the telemetry collectors
// (internal/telemetry/sinks.go) and the falconbench harness, is
//
//	[figure] [dim...] [entity] layer metric [stat]
//
// e.g. "fig10/ReadReq/drop0.0/fwd/port/down_drops" parses as figure
// fig10, dims {ReadReq, drop0.0, fwd}, layer port, metric down_drops.
// The layer is the first segment (scanning left to right) matching a
// known layer token — pdl, tl, nic, port, fae, routing, or the
// synthetic perf layer the indexer gives falconbench/v1 reports. Histogram-backed
// metrics carry one of the fixed stat suffixes (count, mean, p50, p99,
// max) the registry expands histograms into. Time-series column names
// ("conn0/srtt_ns") have no layer token: their leading segments are
// entity dims and the final segment is the metric.
type Path struct {
	// Raw is the unparsed metric path.
	Raw string
	// Figure is the leading experiment dimension ("fig10", "table4")
	// when present, else "".
	Figure string
	// Dims are the experiment dimensions between figure and layer:
	// sub-experiment, swept parameter, entity (port or connection
	// name).
	Dims []string
	// Layer is the emitting layer: "pdl", "tl", "nic", "port", "fae",
	// "perf", or "" for layer-less paths (series columns).
	Layer string
	// Metric is the base metric name ("down_drops", "fabric_delay_ns").
	Metric string
	// Stat is the histogram expansion suffix ("count", "mean", "p50",
	// "p99", "max") or "".
	Stat string
}

// layerTokens are the layer tags collectors insert before the metric
// name, plus the synthetic "perf" layer of ingested falconbench/v1
// performance reports.
var layerTokens = map[string]bool{
	"pdl":     true,
	"tl":      true,
	"nic":     true,
	"port":    true,
	"fae":     true,
	"routing": true,
	"perf":    true,
	"chaos":   true,
	"shard":   true,
}

// statSuffixes are the names Registry.Snapshot expands each histogram
// into (internal/telemetry).
var statSuffixes = map[string]bool{
	"count": true,
	"mean":  true,
	"p50":   true,
	"p99":   true,
	"max":   true,
}

// ParsePath parses a metric path into its typed dimensions. Parsing
// never fails: unrecognized shapes degrade to Dims + Metric with an
// empty Layer.
func ParsePath(raw string) Path {
	p := Path{Raw: raw}
	segs := strings.Split(raw, "/")
	if len(segs) == 1 {
		p.Metric = segs[0]
		return p
	}

	// Locate the layer token. Everything before it is dimensions,
	// everything after is metric (+ optional stat suffix).
	layerAt := -1
	for i, s := range segs[:len(segs)-1] { // the metric can't be the layer
		if layerTokens[s] {
			layerAt = i
			break
		}
	}

	head := segs
	if layerAt >= 0 {
		p.Layer = segs[layerAt]
		head = segs[:layerAt]
		tail := segs[layerAt+1:]
		if len(tail) >= 2 && statSuffixes[tail[len(tail)-1]] {
			p.Stat = tail[len(tail)-1]
			tail = tail[:len(tail)-1]
		}
		p.Metric = strings.Join(tail, "/")
	} else {
		p.Metric = segs[len(segs)-1]
		head = segs[:len(segs)-1]
	}

	if len(head) > 0 && (strings.HasPrefix(head[0], "fig") || strings.HasPrefix(head[0], "table")) {
		p.Figure = head[0]
		head = head[1:]
	}
	if len(head) > 0 {
		p.Dims = head
	}
	return p
}

// Class is the determinism class of a metric, which sets how the
// differ compares it across runs (METRICS.md "Determinism classes").
type Class int

const (
	// ClassExact metrics are covered by the determinism contract:
	// event counts, byte counts, occupancy integers. Any cross-run
	// difference is a behavior change and is flagged exactly.
	ClassExact Class = iota
	// ClassTiming metrics are derived from virtual-clock timing or
	// fractional controller state (ns values, cwnds, histogram
	// means/percentiles). They are deterministic per seed but drift
	// legitimately under intentional behavior changes, so the differ
	// applies a relative-error tolerance band.
	ClassTiming
	// ClassPerf metrics come from falconbench/v1 performance reports
	// (wall time, events/sec, allocs/event). They vary run to run on
	// real hardware; the differ flags only regressions beyond a loose
	// tolerance, in the metric's "worse" direction.
	ClassPerf
)

// String names the class as METRICS.md spells it.
func (c Class) String() string {
	switch c {
	case ClassTiming:
		return "timing"
	case ClassPerf:
		return "perf"
	default:
		return "exact"
	}
}

// timingMetrics are the non-suffix-marked metrics carrying fractional
// or timing-derived values (congestion-controller state and histogram
// means). Everything else timing-classed is caught by the _ns/_ms
// unit suffix or the mean stat.
var timingMetrics = map[string]bool{
	"fcwnd": true,
	"ncwnd": true,
	"alpha": true,
}

// Class returns the determinism class of the parsed metric.
func (p Path) Class() Class {
	if p.Layer == "perf" {
		return ClassPerf
	}
	// The chaos layer is exact by construction — every value, including
	// recovery_gap_ns, is an integer derived from virtual-clock samples
	// under the same-seed storm determinism contract — so the suffix
	// rules below must not soften it to timing class.
	if p.Layer == "chaos" {
		return ClassExact
	}
	// The shard layer is likewise exact: partition delivery and
	// cross-boundary counts are determined by the event stream, and
	// lookahead_ns is a topology constant, not a measured duration — the
	// _ns suffix rule must not soften it.
	if p.Layer == "shard" {
		return ClassExact
	}
	if strings.HasSuffix(p.Metric, "_ns") || strings.HasSuffix(p.Metric, "_ms") {
		return ClassTiming
	}
	if timingMetrics[p.Metric] || p.Stat == "mean" {
		return ClassTiming
	}
	return ClassExact
}
