// Package sim provides the deterministic discrete-event simulation engine
// that drives every Falcon experiment in this repository.
//
// All protocol code in internal/falcon, internal/roce and internal/netsim is
// written as synchronous state machines that react to three kinds of events
// (ULP operations, packet arrivals, and timers). The engine delivers those
// events in strict virtual-time order, breaking ties by scheduling order, so
// a run with a fixed seed is bit-for-bit reproducible.
//
// Virtual time is an int64 nanosecond count (type Time). Nothing in the
// repository reads the wall clock; components take a *Simulator (or the
// narrower Clock interface) and schedule continuations on it.
//
// # Scheduler implementations
//
// Two interchangeable data structures back the pending-event set (see
// DESIGN.md §8 for the performance model):
//
//   - SchedulerWheel (the default) places short-horizon timers in a
//     two-level hashed timing wheel and parks far-future timers in a binary
//     heap, cascading them inward as the clock advances. Steady-state
//     scheduling is O(1) and — together with the event free list —
//     allocation-free.
//   - SchedulerHeap keeps every pending event in a binary heap. It is the
//     straightforward reference implementation the wheel is verified
//     against: both must deliver any schedule in the identical (time, seq)
//     order, a property the equivalence suite in equiv_test.go and the
//     testkit trace hashes enforce.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, mirroring time.Duration conversions for readability at
// call sites (sim.Microsecond etc. are Durations, not Times).
const (
	Nanosecond  = time.Duration(1)
	Microsecond = 1000 * Nanosecond
	Millisecond = 1000 * Microsecond
	Second      = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts a virtual timestamp to a duration since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string { return time.Duration(t).String() }

// Clock is the read-only view of the simulation clock. Protocol components
// that only need the current time take a Clock so they can be reused outside
// the simulator.
type Clock interface {
	Now() Time
}

// event is a scheduled callback. Events are pooled: once delivered (or once
// a cancelled event surfaces), the object returns to the simulator's free
// list and its generation counter advances, which invalidates any stale
// Timer handle still pointing at it.
//
// An event carries either fn (closure scheduling via At/After) or act
// (typed-action scheduling via AtAction); exactly one is set. Storing the
// Action interface inline reuses the same pooled object, so an AtAction
// schedule allocates nothing when the action value is a pointer.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among events at the same instant
	fn   func()
	act  Action
	gen  uint32
	dead bool
}

// eventLess is the global delivery order: (time, seq) ascending. seq values
// are unique within a simulator, so this is a total order.
func eventLess(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// eventHeap is a binary min-heap over (time, seq). Cancelled events are
// removed lazily when they surface at the root.
type eventHeap []*event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler selects the data structure backing a simulator's pending-event
// set. Both implementations deliver every schedule in the identical
// (time, seq) order; they differ only in cost.
type Scheduler int

const (
	// SchedulerWheel is the default: a two-level hashed timing wheel for
	// short-horizon timers with a heap fallback for far-future ones.
	SchedulerWheel Scheduler = iota
	// SchedulerHeap keeps all events in a binary heap — the reference
	// implementation the wheel is checked against.
	SchedulerHeap
)

func (k Scheduler) String() string {
	if k == SchedulerHeap {
		return "heap"
	}
	return "wheel"
}

// defaultScheduler is what New uses; cmd/falconbench overrides it to A/B
// the implementations. Atomic because parallel experiment runners build
// simulators from several goroutines.
var defaultScheduler atomic.Int32

// SetDefaultScheduler selects the scheduler New gives to simulators built
// after the call (existing simulators are unaffected). Tests that need a
// specific implementation should use NewWithScheduler instead of mutating
// the process-wide default.
func SetDefaultScheduler(k Scheduler) { defaultScheduler.Store(int32(k)) }

// DefaultScheduler reports the scheduler New currently uses.
func DefaultScheduler() Scheduler { return Scheduler(defaultScheduler.Load()) }

// totalDelivered counts events delivered process-wide, accumulated from
// per-simulator counters when Run/RunUntil return. cmd/falconbench divides
// it by wall time for the events/sec figures in BENCH_*.json.
var totalDelivered atomic.Uint64

// TotalDelivered reports the number of events delivered by all simulators
// in the process so far. The counter is folded in when Run or RunUntil
// returns (not per event), so it is cheap and safe under the parallel
// experiment runner.
func TotalDelivered() uint64 { return totalDelivered.Load() }

// Observer receives a callback for every event the simulator delivers.
// The (time, sequence) pair identifies one event uniquely within a run, so
// an observer that folds the stream into a digest fingerprints the entire
// schedule: two runs with the same seed and setup must produce identical
// streams (see internal/testkit.TraceHasher).
type Observer interface {
	OnEvent(at Time, seq uint64)
}

// Simulator is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; experiments that want parallelism run independent
// simulators in separate goroutines (see falconbench -parallel).
type Simulator struct {
	now   Time
	seq   uint64
	rng   *rand.Rand
	obs   Observer
	sched Scheduler

	// nowp and seqp are where this simulator reads its clock and draws
	// sequence numbers. Standalone simulators point them at their own now
	// and seq fields; partitions of a merged sharded group share the
	// group-wide clock and counter, which is what makes a merged run
	// byte-identical to the single loop (see shard.go). Parallel-mode
	// partitions point back at their own fields.
	nowp *Time
	seqp *uint64

	// group links a partition to its sharded coordinator (nil for
	// single-loop simulators); shard is its partition index. held is the
	// popped-but-undelivered head the group merge compares across
	// partitions.
	group *Sharded
	shard int
	held  *event

	// far holds events beyond the wheel horizon — every event, in heap
	// mode.
	far eventHeap

	// wheel is the two-level timing wheel state (wheel mode only).
	wheel wheelState

	// free is the event free list; alloc draws from it in blocks so
	// steady-state scheduling performs no allocations.
	free []*event

	// live counts scheduled-and-not-yet-fired-or-cancelled events.
	live int

	// processed counts delivered events; synced is the prefix already
	// folded into the process-wide totalDelivered counter.
	processed uint64
	synced    uint64
}

// New returns a simulator using the default scheduler, whose clock reads
// zero and whose random stream is seeded with seed. Two simulators built
// with the same seed and fed the same schedule produce identical runs.
// When SetDefaultShards has raised the process-wide partition count above
// one, New returns the root partition of a sharded group instead; merged
// sharded runs remain byte-identical to the single loop.
func New(seed int64) *Simulator {
	if n := DefaultShards(); n > 1 {
		return NewSharded(seed, DefaultScheduler(), n, DefaultShardParallel())
	}
	return NewWithScheduler(seed, DefaultScheduler())
}

// NewWithScheduler returns a single-loop simulator backed by the given
// scheduler implementation. The choice affects only speed, never delivery
// order.
func NewWithScheduler(seed int64, k Scheduler) *Simulator {
	s := &Simulator{rng: rand.New(rand.NewSource(seed)), sched: k}
	s.nowp = &s.now
	s.seqp = &s.seq
	return s
}

// Now returns the current virtual time: the simulator's own clock, or the
// group-wide clock when this simulator is a partition of a merged sharded
// group (so a root handle captured by an experiment always reads global
// time, whichever partition is executing).
func (s *Simulator) Now() Time { return *s.nowp }

// Rand returns the simulation-owned random stream. All randomness in a run
// (drop decisions, jitter, workload arrivals) must come from here or from
// streams derived from it, never from the global rand.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have been delivered so far —
// group-wide on a sharded simulator.
func (s *Simulator) Processed() uint64 {
	if g := s.group; g != nil {
		return g.processed()
	}
	return s.processed
}

// SetObserver attaches an event observer (nil detaches). The hook costs one
// nil check per delivered event when unset, so it stays compiled in without
// affecting benchmark runs. On a partition of a merged sharded group the
// observer is installed group-wide: the merge delivers events in exact
// global order, so one observer sees the identical stream the single loop
// would produce. Parallel-mode partitions keep per-partition observers
// (they deliver concurrently); attach one per partition instead.
func (s *Simulator) SetObserver(o Observer) {
	if g := s.group; g != nil && !g.parallel {
		for _, p := range g.parts {
			p.obs = o
		}
		return
	}
	s.obs = o
}

// alloc takes an event from the free list, refilling it a block at a time
// so long runs amortize to zero allocations per scheduled event.
func (s *Simulator) alloc() *event {
	n := len(s.free)
	if n == 0 {
		blk := make([]event, 256)
		for i := range blk {
			s.free = append(s.free, &blk[i])
		}
		n = len(s.free)
	}
	e := s.free[n-1]
	s.free = s.free[:n-1]
	return e
}

// recycle returns a fired or cancelled event to the free list. Bumping the
// generation invalidates outstanding Timer handles to it.
func (s *Simulator) recycle(e *event) {
	e.fn = nil
	e.act = nil
	e.gen++
	s.free = append(s.free, e)
}

// Timer is a handle to a scheduled event. The zero Timer is invalid; timers
// are obtained from At/After.
type Timer struct {
	s   *Simulator
	e   *event
	gen uint32
}

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the event from firing. Cancellation is lazy: the event object
// is reclaimed when it surfaces in the schedule.
func (t Timer) Stop() bool {
	if t.e == nil || t.e.gen != t.gen || t.e.dead {
		return false
	}
	t.e.dead = true
	t.s.live--
	return true
}

// Pending reports whether the timer is still scheduled.
func (t Timer) Pending() bool { return t.e != nil && t.e.gen == t.gen && !t.e.dead }

// At schedules fn to run at time at. Scheduling in the past (before Now) is
// a programming error and panics: silently reordering time would invalidate
// experiment results.
func (s *Simulator) At(at Time, fn func()) Timer {
	e := s.schedule(at)
	e.fn = fn
	return Timer{s: s, e: e, gen: e.gen}
}

// Action is a typed event callback: the allocation-free alternative to a
// closure for hot paths that schedule per-packet work. A closure passed to
// At captures its state on the heap at every call site; an Action carries
// its state in the concrete value itself, and because the pooled event
// stores the interface inline, scheduling a pointer-backed Action performs
// no allocation at all. Delivery order is identical to At: an AtAction and
// an At issued back-to-back get consecutive sequence numbers, so swapping
// one form for the other never perturbs the (time, seq) event stream.
type Action interface {
	// RunAction is invoked when the event fires, exactly like a scheduled
	// closure body.
	RunAction()
}

// AtAction schedules a typed action to run at time at. Semantics match At
// in every respect (ordering, panics, Timer cancellation); only the
// callback representation differs.
func (s *Simulator) AtAction(at Time, a Action) Timer {
	e := s.schedule(at)
	e.act = a
	return Timer{s: s, e: e, gen: e.gen}
}

// schedule allocates and enqueues a bare event at time at; the caller fills
// in the callback (fn or act).
func (s *Simulator) schedule(at Time) *event {
	if at < *s.nowp {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, *s.nowp))
	}
	e := s.alloc()
	e.at = at
	e.seq = *s.seqp
	e.dead = false
	*s.seqp++
	s.live++
	if s.sched == SchedulerWheel {
		s.wheelInsert(e)
	} else {
		heap.Push(&s.far, e)
	}
	// A merged sharded group holds each partition's popped head outside
	// the wheel; an insert that sorts before the held head must push the
	// head back so the group merge still sees this partition's true
	// minimum.
	if h := s.held; h != nil && eventLess(e, h) {
		s.held = nil
		s.reinsert(h)
	}
	return e
}

// reinsert returns a popped-but-undelivered event to the pending set. A
// held head always came out of the wheel's sorted drain buffer, so its
// timestamp is below curEnd and wheelInsert merges it back in order.
func (s *Simulator) reinsert(e *event) {
	if s.sched == SchedulerWheel {
		s.wheelInsert(e)
	} else {
		heap.Push(&s.far, e)
	}
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Simulator) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At((*s.nowp).Add(d), fn)
}

// pop removes and returns the live event with the smallest (time, seq), or
// nil when none remain.
func (s *Simulator) pop() *event {
	if s.sched == SchedulerWheel {
		return s.wheelPop()
	}
	for len(s.far) > 0 {
		e := heap.Pop(&s.far).(*event)
		if e.dead {
			s.recycle(e)
			continue
		}
		return e
	}
	return nil
}

// peek reports the timestamp of the next live event without delivering it.
// It may clean up cancelled events along the way but never reorders live
// ones.
func (s *Simulator) peek() (Time, bool) {
	if s.sched == SchedulerWheel {
		return s.wheelPeek()
	}
	for len(s.far) > 0 {
		e := s.far[0]
		if !e.dead {
			return e.at, true
		}
		heap.Pop(&s.far)
		s.recycle(e)
	}
	return 0, false
}

// step delivers the next event. It reports false when no events remain.
func (s *Simulator) step() bool {
	e := s.pop()
	if e == nil {
		return false
	}
	s.deliver(e)
	return true
}

// deliver executes one popped live event: advance the clock (the group
// clock too, for merged partitions), fire the observer, recycle the event
// object, run the callback.
func (s *Simulator) deliver(e *event) {
	s.now = e.at
	*s.nowp = e.at
	s.processed++
	s.live--
	if s.obs != nil {
		s.obs.OnEvent(e.at, e.seq)
	}
	fn := e.fn
	act := e.act
	s.recycle(e)
	if act != nil {
		act.RunAction()
	} else {
		fn()
	}
}

// syncTotal folds newly delivered events into the process-wide counter.
func (s *Simulator) syncTotal() {
	if d := s.processed - s.synced; d != 0 {
		totalDelivered.Add(d)
		s.synced = s.processed
	}
}

// Run delivers events until none remain. On a sharded simulator (any
// partition handle) it drives the whole group.
func (s *Simulator) Run() {
	if g := s.group; g != nil {
		g.run(0, false)
		return
	}
	for s.step() {
	}
	s.syncTotal()
}

// RunUntil delivers events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain pending. On a sharded simulator it
// drives the whole group.
func (s *Simulator) RunUntil(t Time) {
	if g := s.group; g != nil {
		g.run(t, true)
		return
	}
	for {
		at, ok := s.peek()
		if !ok || at > t {
			break
		}
		s.step()
	}
	if s.now < t {
		s.now = t
	}
	s.syncTotal()
}

// RunFor advances the simulation by d.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil((*s.nowp).Add(d)) }

// Pending reports the number of live scheduled events — group-wide on a
// sharded simulator.
func (s *Simulator) Pending() int {
	if g := s.group; g != nil {
		return g.pending()
	}
	return s.live
}
