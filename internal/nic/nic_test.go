package nic

import (
	"testing"
	"time"

	"falcon/internal/sim"
)

func TestPerConnSerialization(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.PerConnPacketInterval = 50 * time.Nanosecond
	cfg.GlobalPacketInterval = time.Nanosecond
	cfg.HitCost = 0
	cfg.MissCost = 0
	cfg.L2HitCost = 0
	n := New(s, cfg)
	var times []sim.Time
	for i := 0; i < 10; i++ {
		n.Process(1, func() { times = append(times, s.Now()) })
	}
	s.Run()
	if len(times) != 10 {
		t.Fatalf("processed %d", len(times))
	}
	// Back-to-back packets on one conn are spaced by the per-conn
	// interval.
	for i := 1; i < len(times); i++ {
		if gap := times[i] - times[i-1]; gap < 50 {
			t.Fatalf("per-conn gap %dns < 50ns", gap)
		}
	}
}

func TestGlobalPipelineAggregates(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.PerConnPacketInterval = 50 * time.Nanosecond
	cfg.GlobalPacketInterval = 10 * time.Nanosecond
	cfg.HitCost = 0
	cfg.MissCost = 0
	cfg.L2HitCost = 0
	n := New(s, cfg)
	done := 0
	// 10 connections, one packet each: global interval binds (10ns
	// apart), not the per-conn 50ns.
	for i := 0; i < 10; i++ {
		n.Process(uint32(i), func() { done++ })
	}
	s.Run()
	if done != 10 {
		t.Fatalf("processed %d", done)
	}
	// Last start at 9*10ns.
	if s.Now() > 200 {
		t.Fatalf("took %v; global pipeline not aggregating", s.Now())
	}
}

func TestCacheHitsAndMisses(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.CacheSize = 4
	cfg.L2CacheSize = 0
	n := New(s, cfg)
	// 4 conns fit; repeated access hits.
	for round := 0; round < 3; round++ {
		for c := uint32(0); c < 4; c++ {
			n.Process(c, func() {})
		}
	}
	s.Run()
	if n.Stats.CacheMisses != 4 {
		t.Fatalf("misses = %d, want 4 (compulsory)", n.Stats.CacheMisses)
	}
	if n.Stats.CacheHits != 8 {
		t.Fatalf("hits = %d, want 8", n.Stats.CacheHits)
	}
}

func TestCacheThrashingAtScale(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.CacheSize = 8
	cfg.L2CacheSize = 0
	n := New(s, cfg)
	// Cycle 100 conns LRU-adversarially: every access misses after warmup.
	for round := 0; round < 3; round++ {
		for c := uint32(0); c < 100; c++ {
			n.Process(c, func() {})
		}
	}
	s.Run()
	if n.Stats.CacheHits != 0 {
		t.Fatalf("hits = %d in an LRU-adversarial cycle", n.Stats.CacheHits)
	}
}

func TestL2CacheCatchesL1Evictions(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.CacheSize = 4
	cfg.L2CacheSize = 1024
	n := New(s, cfg)
	for round := 0; round < 2; round++ {
		for c := uint32(0); c < 100; c++ {
			n.Process(c, func() {})
		}
	}
	s.Run()
	if n.Stats.L2Hits == 0 {
		t.Fatal("L2 never hit")
	}
	if n.Stats.CacheMisses != 100 {
		t.Fatalf("misses = %d, want 100 compulsory only", n.Stats.CacheMisses)
	}
}

func TestMissCostSlowsProcessing(t *testing.T) {
	mkRun := func(cacheSize int) sim.Time {
		s := sim.New(1)
		cfg := DefaultConfig()
		cfg.CacheSize = cacheSize
		cfg.L2CacheSize = 0
		cfg.PerConnPacketInterval = time.Nanosecond
		cfg.GlobalPacketInterval = time.Nanosecond
		n := New(s, cfg)
		var last sim.Time
		for round := 0; round < 5; round++ {
			for c := uint32(0); c < 64; c++ {
				n.Process(c, func() { last = s.Now() })
			}
		}
		s.Run()
		return last
	}
	hot := mkRun(128) // all hits after warmup
	cold := mkRun(8)  // all misses
	if cold <= hot {
		t.Fatalf("cold cache (%v) should be slower than hot (%v)", cold, hot)
	}
}

func TestHostDeliveryBandwidth(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.HostGbps = 100
	n := New(s, cfg)
	var doneAt sim.Time
	n.DeliverToHost(125000, func() { doneAt = s.Now() }) // 1Mbit at 100Gbps = 10us
	s.Run()
	if doneAt != sim.Time(10*time.Microsecond) {
		t.Fatalf("drained at %v, want 10us", doneAt)
	}
}

func TestHostBackpressureRaisesOccupancy(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.HostGbps = 1 // very slow host
	cfg.RxBufferBytes = 100_000
	n := New(s, cfg)
	for i := 0; i < 10; i++ {
		n.DeliverToHost(10_000, nil)
	}
	if occ := n.RxOccupancy(); occ < 0.99 {
		t.Fatalf("occupancy %v with full backlog", occ)
	}
	s.Run()
	if occ := n.RxOccupancy(); occ != 0 {
		t.Fatalf("occupancy %v after drain", occ)
	}
}

func TestSpillToDRAMNeverDrops(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.HostGbps = 1
	cfg.RxBufferBytes = 10_000
	n := New(s, cfg)
	delivered := 0
	for i := 0; i < 10; i++ {
		n.DeliverToHost(5_000, func() { delivered++ })
	}
	s.Run()
	if delivered != 10 {
		t.Fatalf("delivered %d of 10 despite spill", delivered)
	}
	if n.Stats.SpilledBytes == 0 {
		t.Fatal("expected DRAM spill")
	}
}

func TestSetHostGbps(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultConfig())
	n.SetHostGbps(100)
	if n.HostGbps() != 100 {
		t.Fatal("SetHostGbps did not apply")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive bandwidth")
		}
	}()
	n.SetHostGbps(0)
}

func TestZeroByteHostDelivery(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultConfig())
	called := false
	n.DeliverToHost(0, func() { called = true })
	if !called {
		t.Fatal("zero-byte delivery should complete immediately")
	}
	_ = s
}

func TestCX7ConfigMissesCostMore(t *testing.T) {
	f := DefaultConfig()
	c := CX7LikeConfig()
	if c.MissCost <= f.MissCost {
		t.Fatal("CX-7 host-memory miss should cost more than Falcon on-NIC DRAM")
	}
	if c.L2CacheSize != 0 {
		t.Fatal("CX-7 model has no shared second-level cache")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newConnCache(2)
	c.insert(1)
	c.insert(2)
	c.insert(3) // evicts 1
	if c.touch(1) {
		t.Fatal("1 should be evicted")
	}
	if !c.touch(2) || !c.touch(3) {
		t.Fatal("2 and 3 should be cached")
	}
	c.insert(4) // after touching 2 then 3, LRU is 2
	if c.touch(2) {
		t.Fatal("2 should be evicted")
	}
}
