package sim

import (
	"hash/fnv"
	"testing"
	"time"
)

// shardRec records delivered (time, seq) pairs — the same stream the
// testkit trace hasher fingerprints.
type shardRec struct {
	ats  []Time
	seqs []uint64
}

func (r *shardRec) OnEvent(at Time, seq uint64) {
	r.ats = append(r.ats, at)
	r.seqs = append(r.seqs, seq)
}

// shardProg is a deterministic self-replicating workload: each fired event
// schedules up to two successors, alternating between its own partition
// and a peer, with times derived from a splitmix of its id, terminating at
// a fixed replication depth (depth is event-local state, so the program is
// identical across single-loop, merged and parallel execution and safe to
// run concurrently). Run on a single-loop simulator the "partitions" all
// alias the root, so the exact schedule-call sequence is identical — which
// is what makes the merged sharded run comparable byte for byte.
type shardProg struct {
	sims     []*Simulator
	maxDepth int
}

type shardProgEvent struct {
	p     *shardProg
	id    uint64
	home  int
	depth int
}

func (e *shardProgEvent) RunAction() {
	p := e.p
	if e.depth >= p.maxDepth {
		return
	}
	src := p.sims[e.home]
	now := src.Now()
	h1 := splitmix64(e.id*2 + 1)
	h2 := splitmix64(e.id*2 + 2)
	// Successor on the home partition, near future.
	src.AtAction(now.Add(time.Duration(1+h1%5000)),
		&shardProgEvent{p: p, id: h1, home: e.home, depth: e.depth + 1})
	if h2%3 == 0 {
		// Successor on a peer partition, beyond the 1us boundary latency.
		peer := int(h2/3) % len(p.sims)
		src.CrossAction(p.sims[peer], now.Add(time.Duration(1000+h2%50000)),
			&shardProgEvent{p: p, id: h2, home: peer, depth: e.depth + 1})
	}
}

func runShardProg(root *Simulator, shards, maxDepth int) *shardRec {
	// The program always uses `shards` logical homes; with fewer real
	// partitions (or a single loop) homes fold onto them round-robin, so
	// the schedule-call sequence is identical across configurations.
	sims := make([]*Simulator, shards)
	if g := root.Group(); g != nil {
		for i := range sims {
			sims[i] = g.Part(i % g.Shards())
		}
	} else {
		for i := range sims {
			sims[i] = root
		}
	}
	rec := &shardRec{}
	root.SetObserver(rec)
	p := &shardProg{sims: sims, maxDepth: maxDepth}
	for i := 0; i < shards; i++ {
		sims[i].AtAction(Time(10*(i+1)), &shardProgEvent{p: p, id: uint64(i + 1), home: i})
	}
	root.Run()
	return rec
}

// TestShardMergedByteIdentical drives the same deterministic workload on a
// single-loop simulator and on merged sharded groups of 2, 3 and 4
// partitions (wheel and heap), and requires the delivered (time, seq)
// stream — the basis of every trace hash — to be identical element for
// element.
func TestShardMergedByteIdentical(t *testing.T) {
	const depth = 28
	for _, k := range []Scheduler{SchedulerWheel, SchedulerHeap} {
		base := runShardProg(NewWithScheduler(7, k), 4, depth)
		if len(base.ats) < 5000 {
			t.Fatalf("%v: baseline delivered only %d events", k, len(base.ats))
		}
		for _, n := range []int{2, 3, 4} {
			got := runShardProg(NewSharded(7, k, n, false), 4, depth)
			if len(got.ats) != len(base.ats) {
				t.Fatalf("%v shards=%d: delivered %d events, want %d", k, n, len(got.ats), len(base.ats))
			}
			for i := range base.ats {
				if got.ats[i] != base.ats[i] || got.seqs[i] != base.seqs[i] {
					t.Fatalf("%v shards=%d: event %d = (%v, %d), single loop has (%v, %d)",
						k, n, i, got.ats[i], got.seqs[i], base.ats[i], base.seqs[i])
				}
			}
		}
	}
}

// TestShardMergedRunUntil checks bounded runs: the merge must stop at the
// bound with pending work intact and the group clock advanced to exactly
// the bound on every partition handle.
func TestShardMergedRunUntil(t *testing.T) {
	root := NewSharded(3, SchedulerWheel, 3, false)
	g := root.Group()
	fired := make([]int, 3)
	for i := 0; i < 3; i++ {
		p := g.Part(i)
		i := i
		for j := 1; j <= 5; j++ {
			p.At(Time(j*1000), func() { fired[i]++ })
		}
	}
	root.RunUntil(3000)
	for i, n := range fired {
		if n != 3 {
			t.Fatalf("partition %d fired %d events by t=3000, want 3", i, n)
		}
	}
	for i := 0; i < 3; i++ {
		if got := g.Part(i).Now(); got != 3000 {
			t.Fatalf("partition %d clock %v after RunUntil(3000)", i, got)
		}
	}
	if root.Pending() != 6 {
		t.Fatalf("pending %d after bounded run, want 6", root.Pending())
	}
	root.Run()
	for i, n := range fired {
		if n != 5 {
			t.Fatalf("partition %d fired %d events total, want 5", i, n)
		}
	}
}

// TestShardHeldHeadInvalidation covers the two merge edge cases around the
// held head: (1) an event scheduled into a partition earlier than its held
// head must be delivered first, and (2) a held head whose timer is stopped
// from another partition's event must be skipped, not delivered.
func TestShardHeldHeadInvalidation(t *testing.T) {
	root := NewSharded(1234, SchedulerWheel, 2, false)
	g := root.Group()
	p0, p1 := g.Part(0), g.Part(1)

	var order []string
	// p1's first event sits at t=500; p0's earlier event at t=100
	// schedules a *new* p1 event at t=200 — by then the merge has already
	// held p1's t=500 head, so the insert must push it back.
	p1.At(500, func() { order = append(order, "p1@500") })
	p0.At(100, func() {
		order = append(order, "p0@100")
		p0.CrossAction(p1, 200, actionFunc(func() { order = append(order, "p1@200") }))
	})
	root.Run()
	want := []string{"p0@100", "p1@200", "p1@500"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("merged order %v, want %v", order, want)
		}
	}

	// A held head stopped cross-partition must never fire.
	root2 := NewSharded(99, SchedulerWheel, 2, false)
	g2 := root2.Group()
	q0, q1 := g2.Part(0), g2.Part(1)
	fired := false
	tm := q1.At(700, func() { fired = true })
	q0.At(300, func() {
		if !tm.Stop() {
			t.Fatal("Stop() of a pending held head returned false")
		}
	})
	root2.Run()
	if fired {
		t.Fatal("stopped held head fired")
	}
	if root2.Pending() != 0 {
		t.Fatalf("pending %d after drain, want 0", root2.Pending())
	}
}

// actionFunc adapts a func to Action for tests.
type actionFunc func()

func (f actionFunc) RunAction() { f() }

// TestShardParallelDeterministic runs the same cross-partition workload
// twice in the experimental parallel mode and requires identical
// per-partition delivery streams — the self-determinism contract parallel
// mode keeps even though its sequence numbering differs from the single
// loop. It also checks the per-partition stats surface.
func TestShardParallelDeterministic(t *testing.T) {
	run := func() ([4]uint64, []ShardStats) {
		root := NewSharded(11, SchedulerWheel, 4, true)
		g := root.Group()
		g.DeclareBoundary(time.Microsecond)
		var sums [4]uint64
		hashers := make([]*fnvObs, 4)
		sims := make([]*Simulator, 4)
		for i := range sims {
			sims[i] = g.Part(i)
			hashers[i] = newFnvObs()
			sims[i].SetObserver(hashers[i])
		}
		p := &shardProg{sims: sims, maxDepth: 28}
		for i := range sims {
			sims[i].AtAction(Time(10*(i+1)), &shardProgEvent{p: p, id: uint64(i + 1), home: i})
		}
		root.Run()
		for i := range sims {
			sums[i] = hashers[i].sum()
		}
		return sums, g.Stats()
	}
	a, statsA := run()
	b, statsB := run()
	if a != b {
		t.Fatalf("parallel same-seed runs diverged: %x vs %x", a, b)
	}
	var windows, delivered uint64
	for i := range statsA {
		if statsA[i] != statsB[i] {
			t.Fatalf("partition %d stats diverged: %+v vs %+v", i, statsA[i], statsB[i])
		}
		windows += statsA[i].Windows
		delivered += statsA[i].Delivered
	}
	if delivered == 0 || windows == 0 {
		t.Fatalf("parallel run recorded no work: delivered=%d windows=%d", delivered, windows)
	}
}

type fnvObs struct{ h uint64 }

func newFnvObs() *fnvObs { return &fnvObs{h: 14695981039346656037} }

func (o *fnvObs) OnEvent(at Time, seq uint64) {
	for _, v := range [2]uint64{uint64(at), seq} {
		for i := 0; i < 8; i++ {
			o.h ^= (v >> (8 * i)) & 0xff
			o.h *= 1099511628211
		}
	}
}

func (o *fnvObs) sum() uint64 { return o.h }

// TestShardZeroLatencyBoundaryRejected pins the contract that a
// cross-partition link with no latency cannot be declared: it admits no
// safe lookahead window, so topology builders must co-locate its
// endpoints instead.
func TestShardZeroLatencyBoundaryRejected(t *testing.T) {
	root := NewSharded(1, SchedulerWheel, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("DeclareBoundary(0) did not panic")
		}
	}()
	root.Group().DeclareBoundary(0)
}

// TestShardLookaheadMin checks the window is the minimum declared latency.
func TestShardLookaheadMin(t *testing.T) {
	root := NewSharded(1, SchedulerWheel, 2, true)
	g := root.Group()
	g.DeclareBoundary(5 * time.Microsecond)
	g.DeclareBoundary(2 * time.Microsecond)
	g.DeclareBoundary(9 * time.Microsecond)
	if g.Lookahead() != 2*time.Microsecond {
		t.Fatalf("lookahead %v, want 2us", g.Lookahead())
	}
	_ = fnv.New64a // keep fnv import honest if the manual fold changes
}

// TestShardSingleCollapses pins that shard counts <= 1 return a plain
// single-loop simulator with no group attached.
func TestShardSingleCollapses(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		s := NewSharded(5, SchedulerWheel, n, false)
		if s.Group() != nil {
			t.Fatalf("NewSharded(n=%d) returned a grouped simulator", n)
		}
	}
	SetDefaultShards(3)
	defer SetDefaultShards(1)
	s := New(5)
	if s.Group() == nil || s.Group().Shards() != 3 {
		t.Fatal("New did not honor SetDefaultShards(3)")
	}
}
