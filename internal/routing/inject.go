package routing

// Gray-failure injection: scheduled fabric impairments that are harder
// than clean link-down — flapping links, slow-but-up ports, correlated
// rack outages. Every schedule is driven off the simulation clock with
// typed actions (no capture closures, matching the netsim fast-path
// discipline), so an injected failure is part of the same deterministic
// event stream as the traffic it disturbs: two same-seed runs flap, slow
// and recover at identical (time, seq) points and produce byte-identical
// traces.
//
// The injector manipulates ports only through the narrow FailPort
// control surface, which netsim.Port satisfies; routing therefore stays
// import-free of netsim and the two packages compose without a cycle.

import (
	"time"

	"falcon/internal/sim"
)

// FailPort is the control surface the injector drives. netsim.Port
// implements it: SetDown drops every frame while down (counted in the
// port's DownDrops, never in RandomDrops), and SetRateGbps re-rates the
// link for frames enqueued after the change without re-timing committed
// bytes.
type FailPort interface {
	SetDown(down bool)
	SetRateGbps(gbps float64)
}

// Injector schedules gray failures on fabric ports of one simulator.
// All methods may be called before or during a run; schedules in the
// past panic (the simulator refuses to rewrite history).
type Injector struct {
	s *sim.Simulator
}

// NewInjector returns an injector scheduling on s.
func NewInjector(s *sim.Simulator) *Injector { return &Injector{s: s} }

// flapEvent is the typed action behind Flap: each firing toggles the
// port and re-arms itself until the configured down/up cycles are spent.
type flapEvent struct {
	s       *sim.Simulator
	p       FailPort
	downFor time.Duration
	upFor   time.Duration
	cycles  int  // down/up pairs still to run, including the current one
	down    bool // true while the port is held down
}

// RunAction implements sim.Action.
func (e *flapEvent) RunAction() {
	if !e.down {
		e.p.SetDown(true)
		e.down = true
		e.s.AtAction(e.s.Now().Add(e.downFor), e)
		return
	}
	e.p.SetDown(false)
	e.down = false
	e.cycles--
	if e.cycles > 0 {
		e.s.AtAction(e.s.Now().Add(e.upFor), e)
	}
}

// Flap schedules cycles down/up cycles on p: starting at start the port
// goes down for downFor, comes back up for upFor, and repeats. The port
// is guaranteed up again after the last cycle. cycles <= 0 is a no-op.
func (in *Injector) Flap(p FailPort, start sim.Time, downFor, upFor time.Duration, cycles int) {
	if cycles <= 0 {
		return
	}
	in.s.AtAction(start, &flapEvent{s: in.s, p: p, downFor: downFor, upFor: upFor, cycles: cycles})
}

// rateEvent is the typed action behind Slow: one firing applies one
// rate.
type rateEvent struct {
	p    FailPort
	gbps float64
}

// RunAction implements sim.Action.
func (e *rateEvent) RunAction() { e.p.SetRateGbps(e.gbps) }

// Slow degrades p to slowGbps at time at without downing it — the
// classic gray failure: the link stays "healthy" (no down_drops) while
// serialization stretches and its queue backs up. If recoverAfter > 0
// the port is restored to restoreGbps that long after the degrade.
func (in *Injector) Slow(p FailPort, at sim.Time, slowGbps float64, recoverAfter time.Duration, restoreGbps float64) {
	in.s.AtAction(at, &rateEvent{p: p, gbps: slowGbps})
	if recoverAfter > 0 {
		in.s.AtAction(at.Add(recoverAfter), &rateEvent{p: p, gbps: restoreGbps})
	}
}

// outageEvent is the typed action behind RackOutage: one firing moves
// every port of the group to one administrative state.
type outageEvent struct {
	ports []FailPort
	down  bool
}

// RunAction implements sim.Action.
func (e *outageEvent) RunAction() {
	for _, p := range e.ports {
		p.SetDown(e.down)
	}
}

// RackOutage downs every port in the group at time at and restores all
// of them outageFor later — the correlated failure a ToR power event
// causes, as opposed to the independent single-link failures Flap
// models. Both transitions happen at a single instant each, so every
// port in the group fails (and recovers) atomically in virtual time.
func (in *Injector) RackOutage(ports []FailPort, at sim.Time, outageFor time.Duration) {
	if len(ports) == 0 {
		return
	}
	in.s.AtAction(at, &outageEvent{ports: ports, down: true})
	in.s.AtAction(at.Add(outageFor), &outageEvent{ports: ports, down: false})
}
