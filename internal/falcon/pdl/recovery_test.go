package pdl

import (
	"testing"
	"time"

	"falcon/internal/falcon/wire"
)

// TestTLPSingleOutstandingPacket covers the degenerate RACK-TLP case: with
// exactly one packet outstanding there is no "later delivery" for RACK to
// reason from, so a lost sole packet is recoverable only by the tail probe.
func TestTLPSingleOutstandingPacket(t *testing.T) {
	p := newPair(t, DefaultConfig())
	dropped := false
	p.dropAB = func(pkt *wire.Packet) bool {
		if pkt.Type.IsData() && !dropped {
			dropped = true
			return true
		}
		return false
	}
	p.a.SendPacket(dataPacket(0, wire.TypePushData, 4096))
	p.s.Run()
	if len(p.deliveredAtB) != 1 {
		t.Fatalf("delivered %d of 1", len(p.deliveredAtB))
	}
	if p.a.Stats.TLPProbes == 0 {
		t.Fatal("sole-packet loss should be recovered by the tail probe")
	}
	if p.a.Stats.RTOs != 0 {
		t.Fatalf("fell back to RTO (%d) with TLP armed", p.a.Stats.RTOs)
	}
	if p.a.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", p.a.Outstanding())
	}
}

// TestPSNWindowWrapAround starts both sequence-space counters a few PSNs
// below the uint32 wrap and drives traffic (with a mid-wrap loss) across
// the boundary: window arithmetic, the scoreboard ring, RACK and the RTO
// scan must all use serial arithmetic, never absolute comparisons.
func TestPSNWindowWrapAround(t *testing.T) {
	start := ^uint32(0) - 5 // 6 PSNs before wrap
	cfg := DefaultConfig()
	p := newPair(t, cfg)
	for _, space := range []wire.Space{wire.SpaceRequest, wire.SpaceResponse} {
		p.a.tx[space].base, p.a.tx[space].next = start, start
		p.b.rx[space].base = start
	}
	dropped := false
	p.dropAB = func(pkt *wire.Packet) bool {
		// Drop the first transmission of the PSN just past the wrap.
		if pkt.Type.IsData() && pkt.PSN == 1 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	const n = 20
	for i := 0; i < n; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(p.deliveredAtB) != n {
		t.Fatalf("delivered %d of %d across PSN wrap", len(p.deliveredAtB), n)
	}
	seen := map[uint64]int{}
	for _, pkt := range p.deliveredAtB {
		seen[pkt.RSN]++
	}
	for rsn, c := range seen {
		if c != 1 {
			t.Fatalf("RSN %d delivered %d times across wrap", rsn, c)
		}
	}
	if p.a.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain", p.a.Outstanding())
	}
	if base := p.a.tx[wire.SpaceRequest].base; base != start+n {
		t.Fatalf("tx base = %d, want %d (wrapped)", base, start+n)
	}
	if base := p.b.rx[wire.SpaceRequest].base; base != start+n {
		t.Fatalf("rx base = %d, want %d (wrapped)", base, start+n)
	}
}

// TestOriginalAndRetransmissionBothLost drops the first several
// transmissions of one packet — the original AND its recovery
// retransmissions — and requires the sender to keep escalating (TLP, then
// backed-off RTOs) until a copy lands.
func TestOriginalAndRetransmissionBothLost(t *testing.T) {
	p := newPair(t, DefaultConfig())
	drops := 0
	p.dropAB = func(pkt *wire.Packet) bool {
		if pkt.Type.IsData() && pkt.RSN == 5 && drops < 4 {
			drops++
			return true
		}
		return false
	}
	const n = 10
	for i := 0; i < n; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(p.deliveredAtB) != n {
		t.Fatalf("delivered %d of %d", len(p.deliveredAtB), n)
	}
	if drops != 4 {
		t.Fatalf("channel dropped %d copies, want 4 (original + 3 retransmissions)", drops)
	}
	if p.a.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", p.a.Outstanding())
	}
	if p.a.Failed() {
		t.Fatal("connection failed despite eventual delivery")
	}
}

// TestTLPProbesTailNotHead reproduces the head-of-line livelock the fault
// sweeps exposed: the receiver refuses the head packet (resource pressure)
// until it has seen the tail, and the tail's first transmission is lost.
// Probing the head would spin forever; the TLP must probe the tail, whose
// delivery then unblocks the head.
func TestTLPProbesTailNotHead(t *testing.T) {
	p := newPair(t, DefaultConfig())
	tailDropped := false
	p.dropAB = func(pkt *wire.Packet) bool {
		if pkt.Type.IsData() && pkt.RSN == 1 && !tailDropped {
			tailDropped = true
			return true
		}
		return false
	}
	tailSeen := false
	p.verdictAtB = func(pkt *wire.Packet) DeliverVerdict {
		if pkt.RSN == 1 {
			tailSeen = true
		}
		if pkt.RSN == 0 && !tailSeen {
			return DeliverVerdict{Kind: DeliverNoResources}
		}
		return DeliverVerdict{Kind: DeliverAccept}
	}
	p.a.SendPacket(dataPacket(0, wire.TypePushData, 4096))
	p.a.SendPacket(dataPacket(1, wire.TypePushData, 4096))
	p.s.RunUntil(p.s.Now().Add(50 * time.Millisecond))
	if len(p.deliveredAtB) != 2 {
		t.Fatalf("delivered %d of 2 (tail never probed?)", len(p.deliveredAtB))
	}
	if p.a.Failed() {
		t.Fatal("connection failed: recovery never reached the tail packet")
	}
	if p.a.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", p.a.Outstanding())
	}
}

// TestRTORetransmitsAllUnacked verifies the RTO performs a full
// retransmission scan: against a black-holed channel, the first RTO must
// re-send every unacked packet, not just the head of each space. (A lost
// middle packet can otherwise starve: RACK needs a later same-flow
// delivery, the TLP probes only the tail, and NACK backoff only re-sends
// packets the receiver has refused — see the fault-sweep livelock.)
func TestRTORetransmitsAllUnacked(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConsecutiveRTOs = 0 // never declare the connection dead
	p := newPair(t, cfg)
	p.dropAB = func(pkt *wire.Packet) bool { return true } // black hole
	const n = 5
	for i := 0; i < n; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	// Run past the first RTO (initial RTO 200us, TLP may fire first).
	p.s.RunUntil(p.s.Now().Add(2 * time.Millisecond))
	if p.a.Stats.RTOs == 0 {
		t.Fatal("RTO never fired against a black hole")
	}
	ts := p.a.tx[wire.SpaceRequest]
	for psn := ts.base; psn != ts.next; psn++ {
		tp := ts.slot(psn)
		if tp == nil || tp.acked {
			continue
		}
		if tp.retx == 0 {
			t.Fatalf("PSN %d never retransmitted after %d RTOs (scan must cover the whole window)",
				psn, p.a.Stats.RTOs)
		}
	}
}

// TestParkedPacketsDoNotConsumeWindow reproduces the resource-NACK window
// deadlock: with a one-packet congestion window occupied by a packet the
// receiver keeps refusing, a queued second packet must still transmit —
// the refused packet is parked (known off the network) and must not count
// against the window. Without parking, RSN 1 would never reach the wire.
func TestParkedPacketsDoNotConsumeWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumFlows = 1
	cfg.MaxConsecutiveRTOs = 0
	p := newPair(t, cfg)
	p.verdictAtB = func(pkt *wire.Packet) DeliverVerdict {
		if pkt.RSN == 0 {
			return DeliverVerdict{Kind: DeliverNoResources} // refuse forever
		}
		return DeliverVerdict{Kind: DeliverAccept}
	}
	// Pin the congestion window to a single packet.
	p.a.flows[0].fcwnd = 1
	p.a.ncwnd = 1
	p.a.SendPacket(dataPacket(0, wire.TypePushData, 4096))
	p.a.SendPacket(dataPacket(1, wire.TypePushData, 4096))
	// Bounded run: RSN 0's refuse/backoff cycle never terminates.
	p.s.RunUntil(p.s.Now().Add(5 * time.Millisecond))
	delivered := map[uint64]bool{}
	for _, pkt := range p.deliveredAtB {
		delivered[pkt.RSN] = true
	}
	if !delivered[1] {
		t.Fatal("RSN 1 never transmitted: refused packet still consumes congestion window")
	}
}

// TestNoRetransmitsAfterFailure: once the connection is declared dead, the
// NACK-backoff and TLP timer loops must stop — a failed connection keeping
// the wire busy forever is both wrong and breaks run-to-completion sweeps.
func TestNoRetransmitsAfterFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConsecutiveRTOs = 3
	p := newPair(t, cfg)
	p.dropAB = func(pkt *wire.Packet) bool { return true } // black hole
	p.a.SendPacket(dataPacket(0, wire.TypePushData, 4096))
	p.s.Run() // terminates only because post-failure loops stop
	if !p.a.Failed() {
		t.Fatal("connection should have failed")
	}
	retxAtDeath := p.a.Stats.DataRetransmits
	p.s.RunUntil(p.s.Now().Add(100 * time.Millisecond))
	if p.a.Stats.DataRetransmits != retxAtDeath {
		t.Fatalf("zombie retransmissions after failure: %d -> %d",
			retxAtDeath, p.a.Stats.DataRetransmits)
	}
}
