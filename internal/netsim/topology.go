package netsim

import (
	"falcon/internal/routing"
	"falcon/internal/sim"
)

// Topology bundles a built network with handles experiments need.
type Topology struct {
	Net    *Network
	Hosts  []*Host
	ToRs   []*Switch
	Spines []*Switch
}

// SetRoutingPolicy installs p on every switch of the topology (and any
// added later); see Network.SetRoutingPolicy. Experiments call this
// right after building a topology to pit the transport against spray or
// adaptive fabrics instead of the default flow-label ECMP.
func (t *Topology) SetRoutingPolicy(p routing.Policy) { t.Net.SetRoutingPolicy(p) }

// PointToPoint builds the paper's 1:1 experiment: two hosts joined by a
// single switch. The returned forward port (switch -> host 1) is where loss
// and reordering are injected "in the forward direction" (§6.1.1).
func PointToPoint(s *sim.Simulator, link LinkConfig) (topo *Topology, forward *Port) {
	n := New(s)
	sw := n.AddSwitch()
	h0 := n.AddHost()
	h1 := n.AddHost()
	n.AttachHost(h0, sw, link)
	fwd := n.AttachHost(h1, sw, link)
	return &Topology{Net: n, Hosts: []*Host{h0, h1}, ToRs: []*Switch{sw}}, fwd
}

// Star builds nHosts hosts on one switch — the incast topology (§6.1.2):
// many clients, one server, bottleneck at the server's downlink.
func Star(s *sim.Simulator, nHosts int, link LinkConfig) *Topology {
	n := New(s)
	sw := n.AddSwitch()
	t := &Topology{Net: n, ToRs: []*Switch{sw}}
	for i := 0; i < nHosts; i++ {
		h := n.AddHost()
		n.AttachHost(h, sw, link)
		t.Hosts = append(t.Hosts, h)
	}
	return t
}

// Clos builds a 3-stage topology: racks ToRs, each with hostsPerRack hosts,
// fully meshed to spines spine switches. Inter-rack traffic takes
// host -> ToR -> spine -> ToR -> host with the spine chosen by the routing
// policy (default: ECMP hash of the frame's FlowHash, giving `spines`
// distinct paths per flow label — the path diversity multipath load
// balancing exploits, §6.1.3; see SetRoutingPolicy for spray/adaptive).
//
// hostLink configures access links, fabricLink the ToR<->spine links. With
// fabricLink.GbpsRate*spines < hostLink.GbpsRate*hostsPerRack the fabric is
// oversubscribed.
func Clos(s *sim.Simulator, racks, hostsPerRack, spines int, hostLink, fabricLink LinkConfig) *Topology {
	n := New(s)
	t := &Topology{Net: n}
	// Partition assignment (sharded runs): spine i on partition i, rack r
	// — its ToR and all its hosts together — on partition r (both mod the
	// partition count). Keeping each rack intact means the short host<->ToR
	// links never cross a partition boundary, so only the longer ToR<->spine
	// propagation delay bounds the group's conservative lookahead.
	for i := 0; i < spines; i++ {
		t.Spines = append(t.Spines, n.AddSwitchOn(i))
	}
	torUplinks := make(map[*Switch][]*Port, racks)
	for r := 0; r < racks; r++ {
		tor := n.AddSwitchOn(r)
		t.ToRs = append(t.ToRs, tor)
		var rackHosts []*Host
		for hIdx := 0; hIdx < hostsPerRack; hIdx++ {
			h := n.AddHostOn(r)
			n.AttachHost(h, tor, hostLink)
			rackHosts = append(rackHosts, h)
			t.Hosts = append(t.Hosts, h)
		}
		// Wire this ToR to every spine; each spine learns routes to
		// this rack's hosts via its downlink to the ToR.
		for _, spine := range t.Spines {
			up, down := n.ConnectSwitches(tor, spine, fabricLink)
			torUplinks[tor] = append(torUplinks[tor], up)
			for _, h := range rackHosts {
				spine.addRoute(h.ID, down)
			}
		}
	}
	// Install default routes: each ToR reaches every non-local host via
	// ECMP over its spine uplinks.
	for _, tor := range t.ToRs {
		for _, h := range t.Hosts {
			if len(tor.RouteTo(h.ID)) == 0 {
				tor.addRoute(h.ID, torUplinks[tor]...)
			}
		}
	}
	return t
}

// TwoRack is the rack-level multipath setup of §6.1.3: two racks of
// hostsPerRack hosts with `spines` paths between them.
func TwoRack(s *sim.Simulator, hostsPerRack, spines int, hostLink, fabricLink LinkConfig) *Topology {
	return Clos(s, 2, hostsPerRack, spines, hostLink, fabricLink)
}
