package tl

import (
	"errors"
	"testing"
	"time"

	"falcon/internal/falcon/pdl"
	"falcon/internal/falcon/wire"
	"falcon/internal/sim"
)

// fakeCtrl emulates the PDL beneath a TL connection: it assigns PSNs,
// forwards packets to the peer TL after a delay, acks accepted packets back
// to the sender, and relays the completion horizon — the PDL contract
// without loss or reordering (unless the test injects it).
type fakeCtrl struct {
	s     *sim.Simulator
	self  **Conn // set after construction
	peer  **Conn
	delay time.Duration
	psn   [wire.NumSpaces]uint32

	// holdRequests, when set, queues outgoing data packets instead of
	// delivering (for out-of-order injection).
	holdRequests bool
	held         []*wire.Packet

	// retryNoResources re-sends packets rejected with NoResources.
	retryDelay time.Duration
}

func (f *fakeCtrl) SendPacket(p *wire.Packet) {
	p.Space = wire.SpaceOf(p.Type)
	p.PSN = f.psn[p.Space]
	f.psn[p.Space]++
	if f.holdRequests {
		f.held = append(f.held, p)
		return
	}
	f.dispatch(p)
}

func (f *fakeCtrl) dispatch(p *wire.Packet) {
	f.s.After(f.delay, func() { f.deliver(p) })
}

func (f *fakeCtrl) deliver(p *wire.Packet) {
	v := (*f.peer).Deliver(p)
	switch v.Kind {
	case pdl.DeliverAccept:
		// ACK back to the sender after the return delay.
		f.s.After(f.delay, func() {
			(*f.self).PacketAcked(p.Space, p.PSN, p.RSN, p.Type)
			(*f.self).Completed((*f.peer).CompletedRSN())
		})
	case pdl.DeliverNoResources:
		d := f.retryDelay
		if d == 0 {
			d = 20 * time.Microsecond
		}
		f.s.After(d, func() { f.deliver(p) })
	}
}

// releaseHeld dispatches held packets in the given order (indices into
// held).
func (f *fakeCtrl) releaseHeld(order ...int) {
	for _, i := range order {
		f.dispatch(f.held[i])
	}
	f.held = nil
}

func (f *fakeCtrl) SendExceptionNack(space wire.Space, psn uint32, rsn uint64, code wire.NackCode, retry time.Duration) {
	n := &wire.Packet{Type: wire.TypeNack, NackCode: code, Space: space, PSN: psn, RSN: rsn, RetryDelayNs: uint32(retry.Nanoseconds())}
	f.s.After(f.delay, func() { (*f.peer).NackReceived(n) })
}

// env is a two-node TL testbed.
type env struct {
	s          *sim.Simulator
	resA, resB *Resources
	a, b       *Conn
	ctrlA      *fakeCtrl
	ctrlB      *fakeCtrl
	handlerB   *recordingHandler
}

type recordingHandler struct {
	pushes  []uint64
	pulls   []uint64
	verdict func(rsn uint64) TargetVerdict
}

func (h *recordingHandler) HandlePush(rsn uint64, p *wire.Packet) TargetVerdict {
	if h.verdict != nil {
		if v := h.verdict(rsn); v.Kind != TargetOK {
			return v
		}
	}
	h.pushes = append(h.pushes, rsn)
	return TargetVerdict{}
}

func (h *recordingHandler) HandlePull(rsn uint64, p *wire.Packet) ([]byte, uint32, TargetVerdict) {
	if h.verdict != nil {
		if v := h.verdict(rsn); v.Kind != TargetOK {
			return nil, 0, v
		}
	}
	h.pulls = append(h.pulls, rsn)
	return []byte("pulled"), p.PullLength, TargetVerdict{}
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	e := &env{s: sim.New(3)}
	e.resA = NewResources(DefaultResourceConfig())
	e.resB = NewResources(DefaultResourceConfig())
	e.handlerB = &recordingHandler{}
	e.ctrlA = &fakeCtrl{s: e.s, delay: time.Microsecond}
	e.ctrlB = &fakeCtrl{s: e.s, delay: time.Microsecond}
	e.a = NewConn(e.s, 1, cfg, e.resA, e.ctrlA, nil)
	e.b = NewConn(e.s, 1, cfg, e.resB, e.ctrlB, e.handlerB)
	e.ctrlA.self, e.ctrlA.peer = &e.a, &e.b
	e.ctrlB.self, e.ctrlB.peer = &e.b, &e.a
	return e
}

func TestPushCompletesInOrder(t *testing.T) {
	e := newEnv(t, DefaultConfig())
	var completions []uint64
	for i := 0; i < 5; i++ {
		rsn, err := e.a.Push(nil, 1024, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("push error: %v", err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		completions = append(completions, rsn)
	}
	e.s.Run()
	if len(e.handlerB.pushes) != 5 {
		t.Fatalf("target saw %d pushes", len(e.handlerB.pushes))
	}
	if e.a.Stats.CompletedOK != 5 {
		t.Fatalf("CompletedOK = %d", e.a.Stats.CompletedOK)
	}
	if e.b.CompletedRSN() != 5 {
		t.Fatalf("target CompletedRSN = %d", e.b.CompletedRSN())
	}
}

func TestPullRoundTrip(t *testing.T) {
	e := newEnv(t, DefaultConfig())
	var got []byte
	if _, err := e.a.Pull(2048, func(data []byte, err error) {
		if err != nil {
			t.Errorf("pull error: %v", err)
		}
		got = data
	}); err != nil {
		t.Fatal(err)
	}
	e.s.Run()
	if string(got) != "pulled" {
		t.Fatalf("pull data = %q", got)
	}
	if len(e.handlerB.pulls) != 1 {
		t.Fatalf("target pulls = %d", len(e.handlerB.pulls))
	}
}

func TestOrderedDeliveryDespiteArrivalOrder(t *testing.T) {
	e := newEnv(t, DefaultConfig())
	e.ctrlA.holdRequests = true
	for i := 0; i < 4; i++ {
		if _, err := e.a.Push(nil, 256, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Deliver in scrambled order: 2,0,3,1.
	e.ctrlA.releaseHeld(2, 0, 3, 1)
	e.s.Run()
	if len(e.handlerB.pushes) != 4 {
		t.Fatalf("target saw %d pushes", len(e.handlerB.pushes))
	}
	for i, rsn := range e.handlerB.pushes {
		if rsn != uint64(i) {
			t.Fatalf("delivery order %v violates RSN order", e.handlerB.pushes)
		}
	}
}

func TestUnorderedDeliversImmediately(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ordered = false
	e := newEnv(t, cfg)
	e.ctrlA.holdRequests = true
	for i := 0; i < 3; i++ {
		if _, err := e.a.Push(nil, 256, nil); err != nil {
			t.Fatal(err)
		}
	}
	e.ctrlA.releaseHeld(2, 1, 0)
	e.s.Run()
	if len(e.handlerB.pushes) != 3 {
		t.Fatalf("target saw %d pushes", len(e.handlerB.pushes))
	}
	// Arrival order preserved (2,1,0), not RSN order.
	if e.handlerB.pushes[0] != 2 {
		t.Fatalf("unordered delivery should follow arrival: %v", e.handlerB.pushes)
	}
	if e.a.Stats.CompletedOK != 3 {
		t.Fatalf("CompletedOK = %d", e.a.Stats.CompletedOK)
	}
	if e.b.CompletedRSN() != 0 {
		t.Fatal("unordered connections advertise no completion horizon")
	}
}

func TestResourcesReturnToZero(t *testing.T) {
	e := newEnv(t, DefaultConfig())
	for i := 0; i < 10; i++ {
		if _, err := e.a.Push(nil, 1000, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := e.a.Pull(3000, nil); err != nil {
			t.Fatal(err)
		}
	}
	e.s.Run()
	for _, res := range []*Resources{e.resA, e.resB} {
		for k := PoolKind(0); k < numPools; k++ {
			if occ := res.Occupancy(k); occ != 0 {
				t.Errorf("pool %v occupancy %v after drain", k, occ)
			}
		}
	}
	if u := e.resA.ConnUsage(1); u != 0 {
		t.Errorf("conn usage %d after drain", u)
	}
}

func TestHoLAdmission(t *testing.T) {
	res := NewResources(ResourceConfig{
		Pools: [numPools]PoolConfig{
			PoolRxReq: {Contexts: 10, Bytes: 10000},
		},
		HoLAdmissionThreshold: 0.5,
	})
	// Fill to the threshold with non-HoL requests.
	for i := 0; i < 5; i++ {
		if err := res.AdmitRxRequest(1, 100, false); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	// Beyond the threshold, non-HoL is refused, HoL admitted.
	if err := res.AdmitRxRequest(1, 100, false); err == nil {
		t.Fatal("non-HoL admitted beyond threshold")
	}
	if err := res.AdmitRxRequest(1, 100, true); err != nil {
		t.Fatalf("HoL refused: %v", err)
	}
}

func TestRNRRetryCompletes(t *testing.T) {
	e := newEnv(t, DefaultConfig())
	attempts := 0
	e.handlerB.verdict = func(rsn uint64) TargetVerdict {
		attempts++
		if attempts <= 2 {
			return TargetVerdict{Kind: TargetRNR, RetryDelay: 30 * time.Microsecond}
		}
		return TargetVerdict{}
	}
	var done bool
	if _, err := e.a.Push(nil, 512, func(_ []byte, err error) {
		if err != nil {
			t.Errorf("push failed after RNR retries: %v", err)
		}
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	e.s.Run()
	if !done {
		t.Fatal("push never completed")
	}
	if e.a.Stats.RNRRetries != 2 {
		t.Fatalf("RNRRetries = %d, want 2", e.a.Stats.RNRRetries)
	}
	if attempts != 3 {
		t.Fatalf("target attempts = %d", attempts)
	}
}

func TestCIECompletesInErrorAndContinues(t *testing.T) {
	e := newEnv(t, DefaultConfig())
	e.handlerB.verdict = func(rsn uint64) TargetVerdict {
		if rsn == 0 {
			return TargetVerdict{Kind: TargetError}
		}
		return TargetVerdict{}
	}
	var errs []error
	for i := 0; i < 3; i++ {
		if _, err := e.a.Push(nil, 512, func(_ []byte, err error) {
			errs = append(errs, err)
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.s.Run()
	if len(errs) != 3 {
		t.Fatalf("completions = %d", len(errs))
	}
	if !errors.Is(errs[0], ErrCIE) {
		t.Fatalf("first completion error = %v, want CIE", errs[0])
	}
	if errs[1] != nil || errs[2] != nil {
		t.Fatalf("subsequent transactions should succeed: %v", errs)
	}
	if e.a.Stats.CompletedError != 1 || e.a.Stats.CompletedOK != 2 {
		t.Fatalf("stats: %+v", e.a.Stats)
	}
}

func TestBackpressureStaticThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backpressure = BackpressureStatic
	cfg.StaticAlpha = 0.00005 // threshold below one context
	e := newEnv(t, cfg)
	// The first push holds 2 contexts; with a tiny alpha the second is
	// refused until the first completes.
	if _, err := e.a.Push(nil, 100, nil); err != nil {
		t.Fatal(err)
	}
	_, err := e.a.Push(nil, 100, nil)
	if !errors.Is(err, ErrBackpressured) {
		t.Fatalf("expected backpressure, got %v", err)
	}
	if e.a.Stats.Backpressured == 0 {
		t.Fatal("backpressure not counted")
	}
	// Xon fires once resources drain.
	var xon bool
	e.a.SetXonCallback(func() { xon = true })
	e.s.Run()
	if !xon {
		t.Fatal("Xon callback never fired")
	}
	if _, err := e.a.Push(nil, 100, nil); err != nil {
		t.Fatalf("push after Xon: %v", err)
	}
}

func TestBackpressureNoneNeverRefusesUntilPoolsExhaust(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backpressure = BackpressureNone
	e := newEnv(t, cfg)
	e.ctrlA.holdRequests = true // nothing completes
	n := 0
	for {
		if _, err := e.a.Push(nil, 0, nil); err != nil {
			break
		}
		n++
		if n > 5000 {
			t.Fatal("pool never exhausted")
		}
	}
	// Zero-byte pushes exhaust contexts: the smaller of the TxReq and
	// RxResp context pools bounds admissions.
	want := DefaultResourceConfig().Pools[PoolTxReq].Contexts
	if rx := DefaultResourceConfig().Pools[PoolRxResp].Contexts; rx < want {
		want = rx
	}
	if n != want {
		t.Fatalf("admitted %d pushes before exhaustion, want %d", n, want)
	}
}

func TestMTUViolationRejected(t *testing.T) {
	e := newEnv(t, DefaultConfig())
	if _, err := e.a.Push(nil, 5000, nil); err == nil {
		t.Fatal("push above MTU accepted")
	}
	if _, err := e.a.Pull(5000, nil); err == nil {
		t.Fatal("pull above MTU accepted")
	}
}

func TestPullResponseDeferredUnderTxRespPressure(t *testing.T) {
	cfg := DefaultConfig()
	e := newEnv(t, cfg)
	// Shrink B's TxResp pool to 1 context so concurrent pulls defer.
	e.resB.pools[PoolTxResp].cfg = PoolConfig{Contexts: 1, Bytes: 4096}
	okCount := 0
	for i := 0; i < 4; i++ {
		if _, err := e.a.Pull(1024, func(_ []byte, err error) {
			if err == nil {
				okCount++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.s.Run()
	if okCount != 4 {
		t.Fatalf("completed %d of 4 pulls with deferred responses", okCount)
	}
}

func TestResourcePoolAccounting(t *testing.T) {
	res := NewResources(DefaultResourceConfig())
	if err := res.Reserve(PoolTxReq, 7, 1000); err != nil {
		t.Fatal(err)
	}
	if res.ConnUsage(7) != 1 {
		t.Fatalf("usage = %d", res.ConnUsage(7))
	}
	if res.Occupancy(PoolTxReq) <= 0 {
		t.Fatal("occupancy should be positive")
	}
	res.Release(PoolTxReq, 7, 1000)
	if res.ConnUsage(7) != 0 || res.Occupancy(PoolTxReq) != 0 {
		t.Fatal("release did not restore")
	}
}

func TestOverReleasePanics(t *testing.T) {
	res := NewResources(DefaultResourceConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-release")
		}
	}()
	res.Release(PoolTxReq, 1, 0)
}

func TestRxOccupancySignal(t *testing.T) {
	res := NewResources(DefaultResourceConfig())
	if res.RxOccupancy() != 0 {
		t.Fatal("empty resources should report 0 occupancy")
	}
	cfgBytes := DefaultResourceConfig().Pools[PoolRxReq].Bytes
	if err := res.Reserve(PoolRxReq, 1, cfgBytes/2); err != nil {
		t.Fatal(err)
	}
	if occ := res.RxOccupancy(); occ < 0.49 || occ > 0.51 {
		t.Fatalf("occupancy = %v, want ~0.5", occ)
	}
}

func TestSubscribeNotifiedOnRelease(t *testing.T) {
	res := NewResources(DefaultResourceConfig())
	calls := 0
	res.Subscribe(func() { calls++ })
	if err := res.Reserve(PoolTxReq, 1, 0); err != nil {
		t.Fatal(err)
	}
	res.Release(PoolTxReq, 1, 0)
	if calls != 1 {
		t.Fatalf("subscriber calls = %d", calls)
	}
}

func TestPoolKindStrings(t *testing.T) {
	for k := PoolKind(0); k < numPools; k++ {
		if k.String() == "" {
			t.Fatalf("empty name for pool %d", k)
		}
	}
	_ = PoolKind(99).String()
	_ = BackpressureNone.String()
	_ = BackpressureStatic.String()
	_ = BackpressureDynamic.String()
}

// TestRNRSustainedStallLossless is the RNR liveness property behind the
// chaos rnr_stall scenario: however long the target stalls and whatever
// the retry cadence, a sustained receiver-not-ready window never DROPS a
// transaction — every push eventually completes successfully once the
// target unstalls, and the target still observes them in RSN order (the
// retry path must not leak an op past a younger one). Swept over several
// stall-window / retry-delay combinations rather than a single lucky
// alignment.
func TestRNRSustainedStallLossless(t *testing.T) {
	cases := []struct {
		stallFor   time.Duration
		retryDelay time.Duration
	}{
		{200 * time.Microsecond, 10 * time.Microsecond},
		{500 * time.Microsecond, 35 * time.Microsecond},
		{1 * time.Millisecond, 75 * time.Microsecond},
		{333 * time.Microsecond, 7 * time.Microsecond},
	}
	const ops = 12
	for _, tc := range cases {
		e := newEnv(t, DefaultConfig())
		stalled := true
		e.handlerB.verdict = func(rsn uint64) TargetVerdict {
			if stalled {
				return TargetVerdict{Kind: TargetRNR, RetryDelay: tc.retryDelay}
			}
			return TargetVerdict{}
		}
		e.s.After(tc.stallFor, func() { stalled = false })

		fails := 0
		for i := 0; i < ops; i++ {
			if _, err := e.a.Push(nil, 512, func(_ []byte, err error) {
				if err != nil {
					fails++
				}
			}); err != nil {
				t.Fatalf("stall=%v retry=%v: Push(%d): %v", tc.stallFor, tc.retryDelay, i, err)
			}
		}
		e.s.Run()

		if fails != 0 {
			t.Errorf("stall=%v retry=%v: %d pushes completed in error — RNR dropped transactions",
				tc.stallFor, tc.retryDelay, fails)
		}
		completed := e.handlerB.pushes
		if len(completed) != ops {
			t.Errorf("stall=%v retry=%v: target accepted %d of %d pushes",
				tc.stallFor, tc.retryDelay, len(completed), ops)
		}
		for i, rsn := range completed {
			if rsn != uint64(i) {
				t.Errorf("stall=%v retry=%v: target order %v violates RSN order after unstall",
					tc.stallFor, tc.retryDelay, completed)
				break
			}
		}
		if e.a.Stats.RNRRetries == 0 {
			t.Errorf("stall=%v retry=%v: no RNR retries recorded — stall window missed all traffic",
				tc.stallFor, tc.retryDelay)
		}
		if e.a.Stats.CompletedOK != ops {
			t.Errorf("stall=%v retry=%v: CompletedOK = %d, want %d",
				tc.stallFor, tc.retryDelay, e.a.Stats.CompletedOK, ops)
		}
	}
}
