package chaos

import (
	"reflect"
	"testing"
	"time"

	"falcon/internal/netsim"
	"falcon/internal/routing"
	"falcon/internal/sim"
)

func fullSpec() Spec {
	return Spec{
		Events:      12,
		Start:       sim.Time(1 * time.Millisecond),
		End:         sim.Time(5 * time.Millisecond),
		Uplinks:     4,
		HostPorts:   8,
		Hosts:       8,
		Crashers:    8,
		Stallers:    4,
		Teardown:    true,
		RestoreGbps: 200,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, fullSpec())
	b := Generate(42, fullSpec())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%+v\n%+v", a, b)
	}
	c := Generate(43, fullSpec())
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("different seeds produced identical event lists")
	}
}

func TestGenerateBounds(t *testing.T) {
	sp := fullSpec()
	for seed := int64(1); seed <= 50; seed++ {
		p := Generate(seed, sp)
		if len(p.Events) != sp.Events {
			t.Fatalf("seed %d: got %d events, want %d", seed, len(p.Events), sp.Events)
		}
		for i, ev := range p.Events {
			if ev.At < sp.Start || ev.Clear() > sp.End {
				t.Fatalf("seed %d event %d outside window: at=%v clear=%v", seed, i, ev.At, ev.Clear())
			}
			n := sp.kindTargets(ev.Kind)
			if ev.Target < 0 || ev.Target >= n {
				t.Fatalf("seed %d event %d target %d out of range [0,%d)", seed, i, ev.Target, n)
			}
			if ev.Kind == KindFlap && ev.Cycles < 1 {
				t.Fatalf("flap with %d cycles", ev.Cycles)
			}
			if ev.Kind == KindCorrupt && (ev.Prob <= 0 || ev.Prob >= 1) {
				t.Fatalf("corrupt prob %v out of (0,1)", ev.Prob)
			}
			if ev.Kind == KindSlow && (ev.Gbps <= 0 || ev.Gbps >= sp.RestoreGbps) {
				t.Fatalf("slow gbps %v not a degradation of %v", ev.Gbps, sp.RestoreGbps)
			}
		}
		if p.FaultStart() < sp.Start || p.FaultClear() > sp.End {
			t.Fatalf("seed %d: fault window [%v,%v] outside spec window", seed, p.FaultStart(), p.FaultClear())
		}
	}
}

func TestGenerateDisabledKinds(t *testing.T) {
	sp := fullSpec()
	sp.Crashers = 0
	sp.Stallers = 0
	sp.Events = 200
	p := Generate(7, sp)
	for _, ev := range p.Events {
		if ev.Kind == KindCrash || ev.Kind == KindRNRStall {
			t.Fatalf("disabled kind %v generated", ev.Kind)
		}
	}
	if Generate(7, Spec{Events: 5}).Events != nil {
		t.Fatalf("spec with no targets should yield empty plan")
	}
}

// TestKindStrings pins the names experiment tables print.
func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindFlap: "flap", KindSlow: "slow", KindOutage: "outage",
		KindBlackhole: "blackhole", KindCorrupt: "corrupt",
		KindPause: "pause", KindCrash: "crash", KindRNRStall: "rnr_stall",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Fatalf("out-of-range kind should stringify as unknown")
	}
}

// pump drives a steady frame stream h0 -> h1 for envelope/ledger tests.
// Test files are exempt from the typed-action lint, so a closure is fine.
func pump(s *sim.Simulator, src, dst *netsim.Host, every time.Duration, until sim.Time, delivered *uint64) {
	var tick func()
	tick = func() {
		f := src.NewFrame()
		f.Dst = dst.ID
		f.Size = 1000
		src.Send(f)
		if s.Now().Add(every) <= until {
			s.After(every, tick)
		}
	}
	dst.SetHandler(netsim.HandlerFunc(func(f *netsim.Frame) {
		*delivered += uint64(f.Size)
	}))
	s.After(every, tick)
}

func TestEnvelopeRecovery(t *testing.T) {
	s := sim.New(1)
	topo, _ := netsim.PointToPoint(s, netsim.LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond})
	h0, h1 := topo.Hosts[0], topo.Hosts[1]
	end := sim.Time(10 * time.Millisecond)

	var delivered uint64
	pump(s, h0, h1, 10*time.Microsecond, end, &delivered)
	env := NewEnvelope(s, &delivered, 500*time.Microsecond, end)

	// Pause the receiver for [3ms, 5ms): goodput drops to zero, then
	// returns to baseline the moment the pause lifts.
	faultStart := sim.Time(3 * time.Millisecond)
	faultClear := sim.Time(5 * time.Millisecond)
	s.At(faultStart, func() { h1.SetPaused(true) })
	s.At(faultClear, func() { h1.SetPaused(false) })

	s.Run()
	r := env.Finish(faultStart, faultClear, 80)
	if r.BaselineMbps == 0 {
		t.Fatalf("no baseline goodput measured: %+v", r)
	}
	if r.StormMbps >= r.BaselineMbps {
		t.Fatalf("storm goodput %d did not dip below baseline %d", r.StormMbps, r.BaselineMbps)
	}
	if !r.Recovered {
		t.Fatalf("recovery not detected: %+v", r)
	}
	// Recovery uses a 3-bucket trailing median, so the gap is bounded by
	// a few buckets past fault clear.
	if max := int64(4 * 500 * time.Microsecond); r.RecoveryNs > max {
		t.Fatalf("recovery took %dns, want <= %d", r.RecoveryNs, max)
	}
	l := Audit(topo.Net)
	if !l.Balanced() {
		t.Fatalf("ledger unbalanced: %s", l)
	}
	if l.PauseRxDrops == 0 {
		t.Fatalf("pause window counted no PauseRxDrops: %s", l)
	}
}

func TestEnvelopeNoRecovery(t *testing.T) {
	s := sim.New(1)
	topo, _ := netsim.PointToPoint(s, netsim.LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond})
	h0, h1 := topo.Hosts[0], topo.Hosts[1]
	end := sim.Time(6 * time.Millisecond)

	var delivered uint64
	pump(s, h0, h1, 10*time.Microsecond, end, &delivered)
	env := NewEnvelope(s, &delivered, 500*time.Microsecond, end)

	// Fault never clears within the run: pause from 2ms to past the end.
	faultStart := sim.Time(2 * time.Millisecond)
	s.At(faultStart, func() { h1.SetPaused(true) })

	s.Run()
	r := env.Finish(faultStart, end, 80)
	if r.Recovered {
		t.Fatalf("recovery reported for a fault that never cleared: %+v", r)
	}
	if r.TailMbps != 0 {
		t.Fatalf("tail goodput %d for an uncleared fault", r.TailMbps)
	}
}

// TestApplyEndpointFaults drives one storm of every endpoint kind on a
// tiny fabric and checks the drop counters and ledger close.
func TestApplyEndpointFaults(t *testing.T) {
	s := sim.New(1)
	topo, _ := netsim.PointToPoint(s, netsim.LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond})
	h0, h1 := topo.Hosts[0], topo.Hosts[1]
	end := sim.Time(12 * time.Millisecond)

	var delivered uint64
	pump(s, h0, h1, 10*time.Microsecond, end, &delivered)

	ms := func(n int) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }
	plan := Plan{Seed: 1, RestoreGbps: 100, Events: []Event{
		{Kind: KindBlackhole, Target: 0, At: ms(1), For: time.Millisecond},
		{Kind: KindCorrupt, Target: 0, At: ms(3), For: time.Millisecond, Prob: 0.5},
		{Kind: KindPause, Target: 1, At: ms(5), For: time.Millisecond},
		{Kind: KindCrash, Target: 1, At: ms(7), For: time.Millisecond},
	}}
	inj := routing.NewInjector(s)
	Apply(s, inj, Targets{
		Uplinks:   []FabricPort{h0.Uplink()},
		HostPorts: []FabricPort{h0.Uplink(), h1.Uplink()},
		Hosts:     []Host{h0, h1},
		Crashers:  []Crasher{nil, nil},
	}, plan)

	s.Run()
	up := h0.Uplink()
	if up.Stats.DownDrops == 0 {
		t.Fatalf("blackhole window dropped nothing")
	}
	if up.Stats.CorruptDrops == 0 {
		t.Fatalf("corruption window dropped nothing")
	}
	if h1.PauseRxDrops == 0 {
		t.Fatalf("pause/crash windows dropped nothing at the receiver")
	}
	if h1.Paused() || up.Down() {
		t.Fatalf("faults not all restored: paused=%v down=%v", h1.Paused(), up.Down())
	}
	l := Audit(topo.Net)
	if !l.Balanced() {
		t.Fatalf("ledger unbalanced: %s", l)
	}
	if l.Sent != l.Delivered+l.DownDrops+l.CorruptDrops+l.PauseRxDrops {
		t.Fatalf("unexpected drop attribution: %s", l)
	}
}

// TestApplyFabricKindsCompose checks the fabric kinds route through the
// injector and nest with each other (overlapping windows on one port).
func TestApplyFabricKindsCompose(t *testing.T) {
	s := sim.New(1)
	topo, _ := netsim.PointToPoint(s, netsim.LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond})
	h0, h1 := topo.Hosts[0], topo.Hosts[1]
	end := sim.Time(12 * time.Millisecond)

	var delivered uint64
	pump(s, h0, h1, 10*time.Microsecond, end, &delivered)

	ms := func(n int) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }
	// Two overlapping events on the same uplink: a 2-cycle flap inside a
	// wider 2-port outage (the port pair here is the same port twice is
	// not allowed — use two real targets on distinct ports).
	plan := Plan{Seed: 1, RestoreGbps: 100, Events: []Event{
		{Kind: KindOutage, Target: 0, At: ms(2), For: 3 * time.Millisecond},
		{Kind: KindFlap, Target: 0, At: ms(3), For: time.Millisecond, Cycles: 2},
		{Kind: KindSlow, Target: 1, At: ms(6), For: 2 * time.Millisecond, Gbps: 10},
	}}
	inj := routing.NewInjector(s)
	Apply(s, inj, Targets{
		Uplinks: []FabricPort{h0.Uplink(), h1.Uplink()},
	}, plan)

	s.Run()
	if h0.Uplink().Down() || h1.Uplink().Down() {
		t.Fatalf("overlapping fabric faults left a port down")
	}
	if h0.Uplink().Stats.DownDrops == 0 {
		t.Fatalf("outage+flap dropped nothing")
	}
	l := Audit(topo.Net)
	if !l.Balanced() {
		t.Fatalf("ledger unbalanced: %s", l)
	}
}

func TestMedian3(t *testing.T) {
	d := []uint64{5, 1, 9, 3}
	if got := median3(d, 0); got != 5 {
		t.Fatalf("median3 at 0 = %d, want 5", got)
	}
	if got := median3(d, 1); got != 5 { // window {5,1}, upper median
		t.Fatalf("median3 at 1 = %d, want 5", got)
	}
	if got := median3(d, 2); got != 5 { // {5,1,9}
		t.Fatalf("median3 at 2 = %d, want 5", got)
	}
	if got := median3(d, 3); got != 3 { // {1,9,3}
		t.Fatalf("median3 at 3 = %d, want 3", got)
	}
}
