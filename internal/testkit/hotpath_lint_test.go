package testkit

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestHotPathLint enforces the two structural rules the zero-allocation
// hot path depends on, so a regression is caught at review time rather
// than by a benchmark drifting:
//
//  1. No map indexing, map ranging, or delete() in pdl or tl outside
//     tl/table_legacy.go. The steady-state path works on dense rings and
//     bitmap words; maps exist only as the legacy verification oracle,
//     and that backend's operations are confined to table_legacy.go.
//  2. No function literals passed to scheduler entry points (At, After,
//     AtAction, CrossAction, Process, ProcessAction) in pdl or tl.
//     Scheduling a closure allocates per call; the hot path schedules
//     preallocated Action values instead.
//
// The check is typed (go/types over the real package sources), so a map
// hidden behind a named type or a generic type parameter is still caught,
// while slice/array indexing and generic instantiation are not false
// positives.
func TestHotPathLint(t *testing.T) {
	fset := token.NewFileSet()
	pkgs := loadLintPackages(t, fset)

	var violations []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		violations = append(violations, fmt.Sprintf("%s:%d: %s",
			filepath.Base(p.Filename), p.Line, fmt.Sprintf(format, args...)))
	}

	for _, pkg := range pkgs {
		for _, file := range pkg.files {
			fname := filepath.Base(fset.Position(file.Pos()).Filename)
			mapsAllowed := fname == "table_legacy.go"
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IndexExpr:
					if !mapsAllowed && isMapType(pkg.info, n.X) {
						report(n.Pos(), "map indexing on the hot path")
					}
				case *ast.RangeStmt:
					if !mapsAllowed && n.X != nil && isMapType(pkg.info, n.X) {
						report(n.Pos(), "map range on the hot path")
					}
				case *ast.CallExpr:
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && !mapsAllowed {
						if _, builtin := pkg.info.Uses[id].(*types.Builtin); builtin {
							report(n.Pos(), "map delete on the hot path")
						}
					}
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
						switch sel.Sel.Name {
						case "At", "After", "AtAction", "CrossAction", "Process", "ProcessAction":
							for _, arg := range n.Args {
								if _, closure := arg.(*ast.FuncLit); closure {
									report(arg.Pos(), "closure passed to %s: schedule a preallocated Action",
										sel.Sel.Name)
								}
							}
						}
					}
				}
				return true
			})
		}
	}

	sort.Strings(violations)
	for _, v := range violations {
		t.Error(v)
	}
}

// lintPkg is one type-checked package under lint.
type lintPkg struct {
	files []*ast.File
	info  *types.Info
}

// isMapType reports whether the expression's type (through named types
// and type parameters' core types) is a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	typ := tv.Type.Underlying()
	if tp, ok := typ.(*types.TypeParam); ok {
		typ = tp.Underlying()
	}
	_, isMap := typ.(*types.Map)
	return isMap
}

// lintImporter resolves module-local packages from the pre-checked set
// and everything else (the standard library) from source.
type lintImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (i lintImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.local[path]; ok {
		return p, nil
	}
	return i.fallback.Import(path)
}

// loadLintPackages parses and type-checks pdl and tl (plus their
// module-local dependencies, in topological order) and returns the two
// packages under lint.
func loadLintPackages(t *testing.T, fset *token.FileSet) []*lintPkg {
	t.Helper()
	order := []struct {
		path, dir string
		lint      bool
	}{
		{"falcon/internal/sim", "../sim", false},
		{"falcon/internal/falcon/wire", "../falcon/wire", false},
		{"falcon/internal/falcon/cc", "../falcon/cc", false},
		{"falcon/internal/falcon/fae", "../falcon/fae", false},
		{"falcon/internal/falcon/pdl", "../falcon/pdl", true},
		{"falcon/internal/falcon/tl", "../falcon/tl", true},
	}
	local := map[string]*types.Package{}
	imp := lintImporter{local: local, fallback: importer.ForCompiler(fset, "source", nil)}

	var out []*lintPkg
	for _, p := range order {
		entries, err := os.ReadDir(p.dir)
		if err != nil {
			t.Fatalf("reading %s: %v", p.dir, err)
		}
		var files []*ast.File
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(p.dir, name), nil, parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Uses:  map[*ast.Ident]types.Object{},
			Defs:  map[*ast.Ident]types.Object{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(p.path, fset, files, info)
		if err != nil {
			t.Fatalf("type-checking %s: %v", p.path, err)
		}
		local[p.path] = pkg
		if p.lint {
			out = append(out, &lintPkg{files: files, info: info})
		}
	}
	return out
}
