package testkit

import (
	"strings"
	"testing"

	"falcon/internal/falcon/tl"
	"falcon/internal/sim"
)

func recordingChecker() (*Checker, *[]string) {
	var got []string
	k := NewChecker()
	k.FailFunc = func(format string, args ...any) {
		got = append(got, format)
	}
	return k, &got
}

func newTLConn(ordered bool) *tl.Conn {
	cfg := tl.DefaultConfig()
	cfg.Ordered = ordered
	return tl.NewConn(sim.New(1), 1, cfg, tl.NewResources(tl.DefaultResourceConfig()), nil, nil)
}

func TestCheckerDuplicateServe(t *testing.T) {
	k, got := recordingChecker()
	c := newTLConn(true)
	k.OnRequestServed(c, 0)
	k.OnRequestServed(c, 1)
	if len(*got) != 0 {
		t.Fatalf("in-order serves flagged: %v", *got)
	}
	k.OnRequestServed(c, 1)
	if len(*got) != 1 || !strings.Contains((*got)[0], "served RSN %d twice") {
		t.Fatalf("duplicate serve not flagged, got %v", *got)
	}
}

func TestCheckerOutOfOrderServe(t *testing.T) {
	k, got := recordingChecker()
	k.OnRequestServed(newTLConn(true), 3)
	if len(*got) != 1 || !strings.Contains((*got)[0], "out of order") {
		t.Fatalf("out-of-order serve not flagged, got %v", *got)
	}

	// Unordered connections may serve in any order — but never twice.
	k2, got2 := recordingChecker()
	u := newTLConn(false)
	k2.OnRequestServed(u, 3)
	k2.OnRequestServed(u, 0)
	if len(*got2) != 0 {
		t.Fatalf("unordered serves flagged: %v", *got2)
	}
	k2.OnRequestServed(u, 3)
	if len(*got2) != 1 {
		t.Fatalf("duplicate unordered serve not flagged")
	}
}

func TestCheckerDuplicateCompletion(t *testing.T) {
	k, got := recordingChecker()
	c := newTLConn(true)
	k.OnCompletion(c, 0, nil)
	k.OnCompletion(c, 0, nil)
	if len(*got) != 1 || !strings.Contains((*got)[0], "duplicate ULP completion") {
		t.Fatalf("duplicate completion not flagged, got %v", *got)
	}
	if k.Violations != 1 || k.CompletedCount(c) != 1 {
		t.Fatalf("violations=%d completed=%d", k.Violations, k.CompletedCount(c))
	}
}

func TestCheckerDefaultPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("default FailFunc did not panic")
		}
		if !strings.Contains(r.(string), "invariant violation") {
			t.Fatalf("panic message %q", r)
		}
	}()
	k := NewChecker()
	c := newTLConn(true)
	k.OnCompletion(c, 0, nil)
	k.OnCompletion(c, 0, nil)
}

func TestTraceHasherDeterministic(t *testing.T) {
	mk := func() *TraceHasher {
		h := NewTraceHasher()
		h.OnEvent(100, 1)
		h.OnEvent(250, 2)
		return h
	}
	a, b := mk(), mk()
	if a.Sum64() != b.Sum64() || a.Records() != 2 {
		t.Fatalf("identical streams hash differently: %v vs %v", a, b)
	}

	// Order sensitivity: swapping two records must change the digest.
	c := NewTraceHasher()
	c.OnEvent(250, 2)
	c.OnEvent(100, 1)
	if c.Sum64() == a.Sum64() {
		t.Fatal("hash is order-insensitive")
	}

	// Content sensitivity: one changed field must change the digest.
	d := NewTraceHasher()
	d.OnEvent(100, 1)
	d.OnEvent(250, 3)
	if d.Sum64() == a.Sum64() {
		t.Fatal("hash ignores record contents")
	}

	if !strings.HasPrefix(a.String(), "fnv1a:") || !strings.HasSuffix(a.String(), "/2") {
		t.Fatalf("String() = %q", a.String())
	}
}

func TestProbeFanOut(t *testing.T) {
	h1, h2 := NewTraceHasher(), NewTraceHasher()
	c := newTLConn(true)
	p := TLProbes(h1, h2)
	p.OnRequestServed(c, 0)
	p.OnCompletion(c, 0, nil)
	if h1.Records() != 2 || h2.Records() != 2 || h1.Sum64() != h2.Sum64() {
		t.Fatalf("fan-out did not reach both probes: %v %v", h1, h2)
	}
}
