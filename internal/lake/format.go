package lake

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sort"
)

// The lake file format: a deterministic, checksummed binary encoding
// of a sealed Index. Layout, all integers unsigned varints unless
// noted:
//
//	magic "FALCONLAKE1\n"
//	string dictionary: count, then per string len + raw bytes
//	runs: count, then per run nameID, quick byte, schema ids, source ids
//	cells: count, then three contiguous columns — run indices,
//	       path ids, values (fixed 8-byte little-endian float bits)
//	series: count, then per series run, nameID, column ids,
//	       row count, timestamps (varint deltas), per-column values
//	       (fixed 8-byte little-endian float bits)
//	trailer: FNV-64a of everything above, fixed 8-byte little-endian
//
// Because a sealed Index is fully sorted and the encoding walks it in
// storage order with no maps, equal indexes always encode to equal
// bytes — `cmp` of two lake files is a semantic equality check. Decode
// verifies magic, checksum, id ranges and sortedness, so a corrupt or
// hand-edited file fails loudly instead of misreporting a diff.

var lakeMagic = []byte("FALCONLAKE1\n")

// Encode writes the index in the lake file format.
func (ix *Index) Encode(w io.Writer) error {
	var buf bytes.Buffer
	buf.Write(lakeMagic)

	putUvarint(&buf, uint64(len(ix.strs)))
	for _, s := range ix.strs {
		putUvarint(&buf, uint64(len(s)))
		buf.WriteString(s)
	}

	putUvarint(&buf, uint64(len(ix.runs)))
	for _, r := range ix.runs {
		// Run names are not interned (only metric strings are);
		// encode them inline.
		putUvarint(&buf, uint64(len(r.Name)))
		buf.WriteString(r.Name)
		if r.Quick {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		putStringList(&buf, r.Schemas)
		putStringList(&buf, r.Sources)
	}

	putUvarint(&buf, uint64(len(ix.cellVal)))
	for _, r := range ix.cellRun {
		putUvarint(&buf, uint64(r))
	}
	for _, p := range ix.cellPath {
		putUvarint(&buf, uint64(p))
	}
	for _, v := range ix.cellVal {
		putFloat(&buf, v)
	}

	putUvarint(&buf, uint64(len(ix.series)))
	for _, s := range ix.series {
		putUvarint(&buf, uint64(s.run))
		putUvarint(&buf, uint64(s.name))
		putUvarint(&buf, uint64(len(s.cols)))
		for _, c := range s.cols {
			putUvarint(&buf, uint64(c))
		}
		putUvarint(&buf, uint64(len(s.times)))
		prev := int64(0)
		for _, t := range s.times {
			putVarint(&buf, t-prev)
			prev = t
		}
		for _, col := range s.vals {
			for _, v := range col {
				putFloat(&buf, v)
			}
		}
	}

	h := fnv.New64a()
	h.Write(buf.Bytes())
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	buf.Write(sum[:])

	_, err := w.Write(buf.Bytes())
	return err
}

// Decode reads a lake file produced by Encode, verifying checksum and
// structural invariants.
func Decode(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("lake: decode: %w", err)
	}
	if len(data) < len(lakeMagic)+8 || !bytes.Equal(data[:len(lakeMagic)], lakeMagic) {
		return nil, fmt.Errorf("lake: decode: not a lake file (bad magic)")
	}
	body, sum := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != binary.LittleEndian.Uint64(sum) {
		return nil, fmt.Errorf("lake: decode: checksum mismatch (corrupt file)")
	}

	d := &decoder{buf: body[len(lakeMagic):]}
	ix := &Index{}

	nstr := d.uvarint()
	for i := uint64(0); i < nstr && d.err == nil; i++ {
		ix.strs = append(ix.strs, d.str())
	}
	if d.err == nil && !sort.StringsAreSorted(ix.strs) {
		return nil, fmt.Errorf("lake: decode: dictionary not sorted")
	}

	nruns := d.uvarint()
	for i := uint64(0); i < nruns && d.err == nil; i++ {
		var run Run
		run.Name = d.str()
		run.Quick = d.byte() != 0
		run.Schemas = d.strList()
		run.Sources = d.strList()
		ix.runs = append(ix.runs, run)
	}

	ncells := d.uvarint()
	for i := uint64(0); i < ncells && d.err == nil; i++ {
		ix.cellRun = append(ix.cellRun, d.id(uint64(len(ix.runs)), "run"))
	}
	for i := uint64(0); i < ncells && d.err == nil; i++ {
		ix.cellPath = append(ix.cellPath, d.id(uint64(len(ix.strs)), "path"))
	}
	for i := uint64(0); i < ncells && d.err == nil; i++ {
		ix.cellVal = append(ix.cellVal, d.float())
	}

	nseries := d.uvarint()
	for i := uint64(0); i < nseries && d.err == nil; i++ {
		var s Series
		s.run = d.id(uint64(len(ix.runs)), "run")
		s.name = d.id(uint64(len(ix.strs)), "series name")
		ncols := d.uvarint()
		for c := uint64(0); c < ncols && d.err == nil; c++ {
			s.cols = append(s.cols, d.id(uint64(len(ix.strs)), "column"))
		}
		nrows := d.uvarint()
		prev := int64(0)
		for r := uint64(0); r < nrows && d.err == nil; r++ {
			prev += d.varint()
			s.times = append(s.times, prev)
		}
		s.vals = make([][]float64, ncols)
		for c := uint64(0); c < ncols && d.err == nil; c++ {
			for r := uint64(0); r < nrows && d.err == nil; r++ {
				s.vals[c] = append(s.vals[c], d.float())
			}
		}
		ix.series = append(ix.series, s)
	}
	if d.err != nil {
		return nil, fmt.Errorf("lake: decode: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("lake: decode: %d trailing bytes", len(d.buf))
	}

	// Rebuild per-run cell offsets and verify cell ordering.
	ix.runCellOff = make([]uint32, 1, len(ix.runs)+1)
	for i := range ix.cellRun {
		if i > 0 {
			a, b := ix.cellRun[i-1], ix.cellRun[i]
			if a > b || (a == b && ix.strs[ix.cellPath[i-1]] >= ix.strs[ix.cellPath[i]]) {
				return nil, fmt.Errorf("lake: decode: cells not sorted at %d", i)
			}
		}
		for uint32(len(ix.runCellOff))-1 < ix.cellRun[i] {
			ix.runCellOff = append(ix.runCellOff, uint32(i))
		}
	}
	for len(ix.runCellOff) < len(ix.runs)+1 {
		ix.runCellOff = append(ix.runCellOff, uint32(len(ix.cellVal)))
	}
	for i := 1; i < len(ix.runs); i++ {
		if ix.runs[i-1].Name >= ix.runs[i].Name {
			return nil, fmt.Errorf("lake: decode: runs not sorted")
		}
	}
	return ix, nil
}

// ReadFile decodes the lake file at path.
func ReadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lake: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func putVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutVarint(tmp[:], v)])
}

func putFloat(buf *bytes.Buffer, v float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	buf.Write(tmp[:])
}

func putStringList(buf *bytes.Buffer, ss []string) {
	putUvarint(buf, uint64(len(ss)))
	for _, s := range ss {
		putUvarint(buf, uint64(len(s)))
		buf.WriteString(s)
	}
}

// decoder is a cursor over the file body with sticky error handling.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail("truncated byte")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.fail("truncated string")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) strList() []string {
	n := d.uvarint()
	var out []string
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *decoder) id(limit uint64, what string) uint32 {
	v := d.uvarint()
	if d.err == nil && v >= limit {
		d.fail("%s id %d out of range (%d)", what, v, limit)
	}
	return uint32(v)
}
