// Package cc implements Falcon's congestion-control algorithms: a variant
// of Swift (Kumar et al., SIGCOMM 2020) adapted per §4.2 to drive two
// windows — fcwnd (fabric congestion window, per multipath flow, from
// fabric delay) and ncwnd (NIC congestion window, per connection, from the
// receiver's RX packet-buffer occupancy). The effective send window is
// min(sum of flow fcwnds, ncwnd).
//
// The algorithms here are pure state machines over explicit samples; the
// FAE (internal/falcon/fae) owns instances of them and the PDL feeds them
// measurements, mirroring the paper's mechanism/management split (Table 3).
package cc

import (
	"math"
	"time"

	"falcon/internal/sim"
)

// SwiftConfig parameterizes the fabric-delay AIMD loop. Defaults follow the
// published Swift constants scaled to intra-cluster RTTs.
type SwiftConfig struct {
	// BaseTargetDelay is the fabric target delay for a 0-hop path.
	BaseTargetDelay time.Duration
	// PerHopDelay scales the target with topology depth.
	PerHopDelay time.Duration
	// AI is the additive increase in packets per RTT of acked traffic.
	AI float64
	// Beta is the multiplicative-decrease gain.
	Beta float64
	// MaxMDF caps a single multiplicative decrease (fraction of cwnd).
	MaxMDF float64
	// MinCwnd and MaxCwnd bound the window, in packets. MinCwnd may be
	// fractional: below 1.0 the sender paces packets with inter-packet
	// gaps instead of sending a full packet per RTT.
	MinCwnd, MaxCwnd float64
	// RTOCwnd is the window after a retransmission timeout.
	RTOCwnd float64
}

// DefaultSwiftConfig returns the configuration used across the evaluation:
// 25us base fabric target (Swift's intra-cluster setting), gentle AI and
// decisive MD.
func DefaultSwiftConfig() SwiftConfig {
	return SwiftConfig{
		BaseTargetDelay: 25 * time.Microsecond,
		PerHopDelay:     1 * time.Microsecond,
		AI:              1.0,
		Beta:            0.8,
		MaxMDF:          0.5,
		MinCwnd:         0.01,
		MaxCwnd:         256,
		RTOCwnd:         1,
	}
}

// Swift is one fabric congestion-control instance (one per multipath flow).
type Swift struct {
	cfg       SwiftConfig
	cwnd      float64
	tLast     sim.Time // time of last multiplicative decrease
	decreased bool     // whether any decrease has happened yet
	// srtt is a smoothed RTT estimate used to space decreases one RTT
	// apart and to derive pacing delays.
	srtt time.Duration
}

// NewSwift creates a Swift instance with the given initial window.
func NewSwift(cfg SwiftConfig, initialCwnd float64) *Swift {
	if initialCwnd <= 0 {
		initialCwnd = cfg.MaxCwnd / 4
	}
	return &Swift{cfg: cfg, cwnd: clamp(initialCwnd, cfg.MinCwnd, cfg.MaxCwnd)}
}

// Cwnd returns the current fabric congestion window in packets.
func (s *Swift) Cwnd() float64 { return s.cwnd }

// SRTT returns the smoothed round-trip estimate (zero until first sample).
func (s *Swift) SRTT() time.Duration { return s.srtt }

// TargetDelay returns the delay target for a path with the given hop count.
func (s *Swift) TargetDelay(hops int) time.Duration {
	return s.cfg.BaseTargetDelay + time.Duration(hops)*s.cfg.PerHopDelay
}

// Sample is one congestion signal delivered with an ACK.
type Sample struct {
	// FabricDelay is (t4-t1)-(t3-t2): wire-to-wire delay minus receiver
	// residence time.
	FabricDelay time.Duration
	// RTT is the full round trip (t4-t1), used for SRTT.
	RTT time.Duration
	// AckedPackets is how many packets this ACK newly acknowledged for
	// the flow.
	AckedPackets int
	// Hops is the path hop count, scaling the delay target.
	Hops int
	// Now is the local time of the ACK arrival.
	Now sim.Time
}

// OnAck folds one delay sample into the window and returns the new fcwnd.
//
// Below target: additive increase of AI/cwnd per acked packet (≈ AI per
// RTT). Above target: multiplicative decrease proportional to the overshoot
// fraction, capped by MaxMDF and applied at most once per SRTT.
func (s *Swift) OnAck(sm Sample) float64 {
	if sm.RTT > 0 {
		if s.srtt == 0 {
			s.srtt = sm.RTT
		} else {
			s.srtt = (7*s.srtt + sm.RTT) / 8
		}
	}
	target := s.TargetDelay(sm.Hops)
	acked := sm.AckedPackets
	if acked <= 0 {
		acked = 1
	}
	if sm.FabricDelay <= target {
		if s.cwnd >= 1 {
			s.cwnd += s.cfg.AI * float64(acked) / s.cwnd
		} else {
			s.cwnd += s.cfg.AI * float64(acked) * s.cwnd
		}
	} else if s.canDecrease(sm.Now) {
		over := float64(sm.FabricDelay-target) / float64(sm.FabricDelay)
		factor := 1 - s.cfg.Beta*over
		if factor < 1-s.cfg.MaxMDF {
			factor = 1 - s.cfg.MaxMDF
		}
		s.cwnd *= factor
		s.tLast = sm.Now
		s.decreased = true
	}
	s.cwnd = clamp(s.cwnd, s.cfg.MinCwnd, s.cfg.MaxCwnd)
	return s.cwnd
}

// OnRetransmitTimeout collapses the window after an RTO.
func (s *Swift) OnRetransmitTimeout() float64 {
	s.cwnd = clamp(s.cfg.RTOCwnd, s.cfg.MinCwnd, s.cfg.MaxCwnd)
	return s.cwnd
}

// OnECN applies a gentle multiplicative decrease for an ECN echo (a
// supplementary congestion signal: milder than a delay overshoot, gated
// once per RTT like every decrease).
func (s *Swift) OnECN(now sim.Time) float64 {
	if s.canDecrease(now) {
		s.cwnd = clamp(s.cwnd*(1-s.cfg.MaxMDF/2), s.cfg.MinCwnd, s.cfg.MaxCwnd)
		s.tLast = now
		s.decreased = true
	}
	return s.cwnd
}

// OnFastRetransmit applies a single multiplicative decrease when loss is
// detected by SACK/RACK rather than timeout.
func (s *Swift) OnFastRetransmit(now sim.Time) float64 {
	if s.canDecrease(now) {
		s.cwnd = clamp(s.cwnd*(1-s.cfg.MaxMDF), s.cfg.MinCwnd, s.cfg.MaxCwnd)
		s.tLast = now
		s.decreased = true
	}
	return s.cwnd
}

func (s *Swift) canDecrease(now sim.Time) bool {
	if !s.decreased || s.srtt == 0 {
		return true
	}
	return now.Sub(s.tLast) >= s.srtt
}

// PacingDelay returns the inter-packet gap implied by a fractional window:
// with cwnd < 1 the sender may emit one packet per srtt/cwnd.
func (s *Swift) PacingDelay() time.Duration {
	if s.cwnd >= 1 || s.srtt == 0 {
		return 0
	}
	return time.Duration(float64(s.srtt) / s.cwnd)
}

// NcwndConfig parameterizes the NIC congestion window loop (§4.2 "Handling
// Rx NIC Congestion"): AIMD on the receiver's RX buffer occupancy so that
// occupancy converges to TargetOccupancy.
type NcwndConfig struct {
	// TargetOccupancy is the desired RX buffer occupancy fraction.
	TargetOccupancy float64
	// AI is the additive increase per acked packet below target.
	AI float64
	// Beta scales decrease with occupancy overshoot.
	Beta float64
	// MaxMDF caps one decrease.
	MaxMDF float64
	// MinCwnd and MaxCwnd bound the window in packets.
	MinCwnd, MaxCwnd float64
}

// DefaultNcwndConfig returns the evaluation's NIC-window settings.
func DefaultNcwndConfig() NcwndConfig {
	return NcwndConfig{
		TargetOccupancy: 0.25,
		AI:              1.0,
		Beta:            0.8,
		MaxMDF:          0.5,
		MinCwnd:         1,
		MaxCwnd:         1024,
	}
}

// Ncwnd is the per-connection NIC congestion window controller.
type Ncwnd struct {
	cfg       NcwndConfig
	cwnd      float64
	tLast     sim.Time
	decreased bool
	srtt      time.Duration
}

// NewNcwnd creates the controller with the given initial window.
func NewNcwnd(cfg NcwndConfig, initial float64) *Ncwnd {
	if initial <= 0 {
		initial = cfg.MaxCwnd / 4
	}
	return &Ncwnd{cfg: cfg, cwnd: clamp(initial, cfg.MinCwnd, cfg.MaxCwnd)}
}

// Cwnd returns the current NIC congestion window in packets.
func (n *Ncwnd) Cwnd() float64 { return n.cwnd }

// OnAck folds one RX-buffer-occupancy sample (0..1) into the window.
func (n *Ncwnd) OnAck(occupancy float64, acked int, rtt time.Duration, now sim.Time) float64 {
	if rtt > 0 {
		if n.srtt == 0 {
			n.srtt = rtt
		} else {
			n.srtt = (7*n.srtt + rtt) / 8
		}
	}
	if acked <= 0 {
		acked = 1
	}
	if occupancy <= n.cfg.TargetOccupancy {
		if n.cwnd >= 1 {
			n.cwnd += n.cfg.AI * float64(acked) / n.cwnd
		} else {
			n.cwnd += n.cfg.AI * float64(acked) * n.cwnd
		}
	} else if !n.decreased || n.srtt == 0 || now.Sub(n.tLast) >= n.srtt {
		over := (occupancy - n.cfg.TargetOccupancy) / math.Max(occupancy, 1e-9)
		factor := 1 - n.cfg.Beta*over
		if factor < 1-n.cfg.MaxMDF {
			factor = 1 - n.cfg.MaxMDF
		}
		n.cwnd *= factor
		n.tLast = now
		n.decreased = true
	}
	n.cwnd = clamp(n.cwnd, n.cfg.MinCwnd, n.cfg.MaxCwnd)
	return n.cwnd
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
