// Package sim provides the deterministic discrete-event simulation engine
// that drives every Falcon experiment in this repository.
//
// All protocol code in internal/falcon, internal/roce and internal/netsim is
// written as synchronous state machines that react to three kinds of events
// (ULP operations, packet arrivals, and timers). The engine delivers those
// events in strict virtual-time order, breaking ties by scheduling order, so
// a run with a fixed seed is bit-for-bit reproducible.
//
// Virtual time is an int64 nanosecond count (type Time). Nothing in the
// repository reads the wall clock; components take a *Simulator (or the
// narrower Clock interface) and schedule continuations on it.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, mirroring time.Duration conversions for readability at
// call sites (sim.Microsecond etc. are Durations, not Times).
const (
	Nanosecond  = time.Duration(1)
	Microsecond = 1000 * Nanosecond
	Millisecond = 1000 * Microsecond
	Second      = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts a virtual timestamp to a duration since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string { return time.Duration(t).String() }

// Clock is the read-only view of the simulation clock. Protocol components
// that only need the current time take a Clock so they can be reused outside
// the simulator.
type Clock interface {
	Now() Time
}

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among events at the same instant
	fn   func()
	idx  int // heap index, -1 once popped or cancelled
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Observer receives a callback for every event the simulator delivers.
// The (time, sequence) pair identifies one event uniquely within a run, so
// an observer that folds the stream into a digest fingerprints the entire
// schedule: two runs with the same seed and setup must produce identical
// streams (see internal/testkit.TraceHasher).
type Observer interface {
	OnEvent(at Time, seq uint64)
}

// Simulator is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; experiments that want parallelism run independent
// simulators in separate goroutines.
type Simulator struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	obs    Observer

	// processed counts delivered events, for runaway detection in tests.
	processed uint64
}

// New returns a simulator whose clock reads zero and whose random stream is
// seeded with seed. Two simulators built with the same seed and fed the same
// schedule produce identical runs.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation-owned random stream. All randomness in a run
// (drop decisions, jitter, workload arrivals) must come from here or from
// streams derived from it, never from the global rand.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have been delivered so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// SetObserver attaches an event observer (nil detaches). The hook costs one
// nil check per delivered event when unset, so it stays compiled in without
// affecting benchmark runs.
func (s *Simulator) SetObserver(o Observer) { s.obs = o }

// Timer is a handle to a scheduled event. The zero Timer is invalid; timers
// are obtained from At/After.
type Timer struct {
	s *Simulator
	e *event
}

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the event from firing.
func (t Timer) Stop() bool {
	if t.e == nil || t.e.dead {
		return false
	}
	t.e.dead = true
	if t.e.idx >= 0 {
		heap.Remove(&t.s.events, t.e.idx)
	}
	return true
}

// Pending reports whether the timer is still scheduled.
func (t Timer) Pending() bool { return t.e != nil && !t.e.dead }

// At schedules fn to run at time at. Scheduling in the past (before Now) is
// a programming error and panics: silently reordering time would invalidate
// experiment results.
func (s *Simulator) At(at Time, fn func()) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	e := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return Timer{s: s, e: e}
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Simulator) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// step delivers the next event. It reports false when no events remain.
func (s *Simulator) step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.dead {
			continue
		}
		e.dead = true
		s.now = e.at
		s.processed++
		if s.obs != nil {
			s.obs.OnEvent(e.at, e.seq)
		}
		e.fn()
		return true
	}
	return false
}

// Run delivers events until none remain.
func (s *Simulator) Run() {
	for s.step() {
	}
}

// RunUntil delivers events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (s *Simulator) RunUntil(t Time) {
	for len(s.events) > 0 {
		// Peek at the root of the heap.
		next := s.events[0]
		if next.dead {
			heap.Pop(&s.events)
			continue
		}
		if next.at > t {
			break
		}
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// Pending reports the number of live scheduled events.
func (s *Simulator) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.dead {
			n++
		}
	}
	return n
}
