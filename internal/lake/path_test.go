package lake

import (
	"reflect"
	"testing"
)

func TestParsePath(t *testing.T) {
	cases := []struct {
		raw  string
		want Path
	}{
		{
			raw: "fig10/ReadReq/drop0.0/fwd/port/down_drops",
			want: Path{
				Figure: "fig10", Dims: []string{"ReadReq", "drop0.0", "fwd"},
				Layer: "port", Metric: "down_drops",
			},
		},
		{
			raw: "fig10/ReadReq/drop0.0/pdl/acks_coalesced",
			want: Path{
				Figure: "fig10", Dims: []string{"ReadReq", "drop0.0"},
				Layer: "pdl", Metric: "acks_coalesced",
			},
		},
		{
			raw: "fig13/qps20/client0/fae/fabric_delay_ns/p99",
			want: Path{
				Figure: "fig13", Dims: []string{"qps20", "client0"},
				Layer: "fae", Metric: "fabric_delay_ns", Stat: "p99",
			},
		},
		{
			// Series column: no layer token.
			raw:  "conn0/srtt_ns",
			want: Path{Dims: []string{"conn0"}, Metric: "srtt_ns"},
		},
		{
			raw:  "server_downlink/queued_bytes",
			want: Path{Dims: []string{"server_downlink"}, Metric: "queued_bytes"},
		},
		{
			// Synthetic perf layer from falconbench/v1 ingest.
			raw:  "table4/perf/allocs_per_event",
			want: Path{Figure: "table4", Layer: "perf", Metric: "allocs_per_event"},
		},
		{
			// max_queue_bytes must not be mistaken for a "max" stat.
			raw: "fig13/qps20/server_downlink/port/max_queue_bytes",
			want: Path{
				Figure: "fig13", Dims: []string{"qps20", "server_downlink"},
				Layer: "port", Metric: "max_queue_bytes",
			},
		},
		{
			// Routing layer: per-uplink spread cells from CollectUplinks.
			raw: "figRouting/spray/tor0/up2/routing/tx_frames",
			want: Path{
				Figure: "figRouting", Dims: []string{"spray", "tor0", "up2"},
				Layer: "routing", Metric: "tx_frames",
			},
		},
		{
			raw:  "bare_metric",
			want: Path{Metric: "bare_metric"},
		},
	}
	for _, c := range cases {
		got := ParsePath(c.raw)
		c.want.Raw = c.raw
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParsePath(%q) = %+v, want %+v", c.raw, got, c.want)
		}
	}
}

func TestPathClass(t *testing.T) {
	cases := []struct {
		raw  string
		want Class
	}{
		{"fig10/Write/drop1.0/pdl/data_retransmits", ClassExact},
		{"fig10/Write/drop1.0/pdl/srtt_ns", ClassTiming},
		{"fig10/Write/drop1.0/pdl/fcwnd", ClassTiming},
		{"fig10/Write/drop1.0/pdl/ncwnd", ClassTiming},
		{"fig15/load60/conn0/tl/alpha", ClassTiming},
		{"fig13/qps20/client0/fae/fabric_delay_ns/p99", ClassTiming},
		{"fig13/qps20/client0/fae/acked_packets", ClassExact},
		{"fig10/Write/drop1.0/fwd/port/tx_bytes", ClassExact},
		{"fig1/perf/events_per_sec", ClassPerf},
		{"fig1/perf/wall_ms", ClassPerf},
		{"conn0/srtt_ns", ClassTiming},
		{"conn0/retransmits", ClassExact},
		{"fwd/queue_delay_ns", ClassTiming},
		{"fwd/queue_drops", ClassExact},
		{"figRouting/adaptive/tor0/routing/spread_pct", ClassExact},
		{"figGrayFailure/ecmp/flap/tor0/routing/down_drops_total", ClassExact},
	}
	for _, c := range cases {
		if got := ParsePath(c.raw).Class(); got != c.want {
			t.Errorf("Class(%q) = %v, want %v", c.raw, got, c.want)
		}
	}
}

func TestMatchSegments(t *testing.T) {
	cases := []struct {
		pat, path string
		want      bool
	}{
		{"fig10/*/drop1.0/pdl/retx_rack", "fig10/Write/drop1.0/pdl/retx_rack", true},
		{"fig10/*/drop1.0/pdl/retx_rack", "fig10/Write/drop0.0/pdl/retx_rack", false},
		{"fig10/**", "fig10/Write/drop1.0/pdl/retx_rack", true},
		{"**/srtt_ns", "fig10/Write/drop1.0/pdl/srtt_ns", true},
		{"**/srtt_ns", "conn0/srtt_ns", true},
		{"**/srtt_ns", "srtt_ns", true},
		{"**", "anything/at/all", true},
		{"fig10/**/port/tx_bytes", "fig10/Write/drop0.0/fwd/port/tx_bytes", true},
		{"fig10/**/port/tx_bytes", "fig10/Write/drop0.0/pdl/tx_unacked_req", false},
		{"a/*", "a", false},
		{"a/**", "a", true},
		{"a", "a/b", false},
	}
	for _, c := range cases {
		got := matchSegments(splitPat(c.pat), splitPat(c.path))
		if got != c.want {
			t.Errorf("match(%q, %q) = %v, want %v", c.pat, c.path, got, c.want)
		}
	}
}

func splitPat(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '/' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
