package testkit

import (
	"fmt"
	"testing"
)

// TestSweepPoolEquivalence runs fault-sweep scenarios with the fabric's
// frame/event pooling on and off and requires byte-identical trace hashes:
// recycling Frames and port events must be invisible to the protocol — same
// (time, seq) event stream, same RNG draw order, same packet contents. This
// is the fabric counterpart of TestSweepSchedulerEquivalence, guarding the
// PR5 fast path the way that test guards the timing wheel.
func TestSweepPoolEquivalence(t *testing.T) {
	scs := shortMatrix()
	if !testing.Short() {
		scs = Matrix()
	}
	seeds := []int64{0, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, sc := range scs {
		for _, extra := range seeds {
			sc := sc
			sc.Seed += extra * 1000
			t.Run(fmt.Sprintf("%s/seed%d", sc.Name, sc.Seed), func(t *testing.T) {
				sc.LegacyAlloc = false
				pooled := Run(sc)
				sc.LegacyAlloc = true
				legacy := Run(sc)
				if pooled.TraceHash != legacy.TraceHash || pooled.Records != legacy.Records {
					t.Fatalf("pooling changes the trace on %q seed %d:\n  pooled %016x (%d records)\n  legacy %016x (%d records)",
						sc.Name, sc.Seed, pooled.TraceHash, pooled.Records, legacy.TraceHash, legacy.Records)
				}
				if pooled.SimTime != legacy.SimTime || pooled.Completed != legacy.Completed {
					t.Fatalf("pooling changes the outcome on %q seed %d: simtime %v vs %v, completed %d vs %d",
						sc.Name, sc.Seed, pooled.SimTime, legacy.SimTime, pooled.Completed, legacy.Completed)
				}
			})
		}
	}
}
