package experiments

import (
	"time"

	"falcon/internal/core"
	"falcon/internal/falcon/tl"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

// Fig24 reproduces "isolation via fine-grained backpressure" (§4.6, §6.2):
// one host runs a fast intra-rack flow alongside N slow flows whose target
// suffers an incast-induced slowdown. Slow flows hold Falcon resources
// longer; without backpressure they starve the fast flow. Reported: the
// fast flow's op-latency slowdown relative to running alone, for no /
// static / dynamic backpressure.
func Fig24(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Figure 24: fast-flow slowdown vs slow-flow count, by backpressure policy",
		Columns: []string{"slow flows", "none", "static DT", "dynamic DT"},
	}
	baseline := fig24Run(0, tl.BackpressureNone, runFor)
	for _, slow := range []int{10, 100, 300} {
		none := fig24Run(slow, tl.BackpressureNone, runFor)
		static := fig24Run(slow, tl.BackpressureStatic, runFor)
		dynamic := fig24Run(slow, tl.BackpressureDynamic, runFor)
		t.Rows = append(t.Rows, []string{
			f1(float64(slow)),
			f1(none.Seconds() / baseline.Seconds()),
			f1(static.Seconds() / baseline.Seconds()),
			f1(dynamic.Seconds() / baseline.Seconds()),
		})
	}
	return t
}

// fig24Run returns the fast flow's p99 op latency with `slow` slow flows
// sharing its host under the given backpressure mode.
func fig24Run(slow int, mode tl.BackpressureMode, runFor time.Duration) time.Duration {
	s := sim.New(24)
	link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
	// Hosts: 0 = the shared source, 1 = fast target (same rack), 2 =
	// slow target whose host interface is crawling (standing in for the
	// paper's periodic cross-rack incast).
	topo := netsim.Star(s, 3, link)
	cl := core.NewCluster(s)
	src := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	fastTgt := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	slowTgt := cl.AddNode(topo.Hosts[2], core.DefaultNodeConfig())
	slowTgt.NIC().SetHostGbps(1) // the slowdown

	mkConn := func(dst *core.Node) *rdma.QP {
		cfg := multipathConn()
		cfg.TL.Backpressure = mode
		cfg.TL.StaticAlpha = 0.02 // static share: ~2% of free resources each
		epA, epB := cl.Connect(src, dst, cfg)
		qa := rdma.NewQP(epA, rdma.Config{})
		rdma.NewQP(epB, rdma.Config{}).RegisterMemoryLen(1 << 40)
		return qa
	}

	// Slow flows: continuous 256KB writes into the crawling target.
	for i := 0; i < slow; i++ {
		qp := mkConn(slowTgt)
		issuer := workload.NewClosedLoop(s, 2, 1<<30, func(opDone func()) bool {
			err := qp.Write(0, 0, nil, 256<<10, func(c rdma.Completion) { opDone() })
			return err == nil
		}, nil)
		issuer.Start()
	}

	// Fast flow: 64KB writes to the healthy target; measure its latency.
	fast := mkConn(fastTgt)
	var lat stats.Series
	issuer := workload.NewClosedLoop(s, 1, 1<<30, func(opDone func()) bool {
		start := s.Now()
		err := fast.Write(0, 0, nil, 64<<10, func(c rdma.Completion) {
			if c.Err == nil {
				lat.AddDuration(s.Now().Sub(start))
			}
			opDone()
		})
		return err == nil
	}, nil)
	issuer.Start()

	s.RunUntil(sim.Time(runFor))
	if lat.Count() == 0 {
		return runFor // fully starved
	}
	return lat.DurationPercentile(99)
}
