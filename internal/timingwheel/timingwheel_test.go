package timingwheel

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"falcon/internal/sim"
)

func TestReleaseAtScheduledSlot(t *testing.T) {
	s := sim.New(1)
	w := New(s, 100*time.Nanosecond, 64)
	var fired sim.Time
	w.Schedule(sim.Time(550), func() { fired = s.Now() })
	s.Run()
	// 550ns rounds into the slot covering [500,600); release at slot time.
	if fired < 500 || fired > 600 {
		t.Fatalf("fired at %v, want within slot of 550ns", fired)
	}
}

func TestFIFOWithinSlot(t *testing.T) {
	s := sim.New(1)
	w := New(s, time.Microsecond, 16)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		w.Schedule(sim.Time(1500), func() { got = append(got, i) })
	}
	s.Run()
	if len(got) != 10 {
		t.Fatalf("released %d items", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("slot order violated: %v", got)
		}
	}
}

func TestPastScheduleFiresImmediately(t *testing.T) {
	s := sim.New(1)
	w := New(s, time.Microsecond, 16)
	s.At(5000, func() {
		w.Schedule(sim.Time(100), func() {
			if s.Now() != 5000 {
				t.Errorf("past item fired at %v, want 5000", s.Now())
			}
		})
	})
	s.Run()
	if w.Len() != 0 {
		t.Fatalf("wheel not drained: %d", w.Len())
	}
}

func TestOverflowBeyondHorizon(t *testing.T) {
	s := sim.New(1)
	w := New(s, time.Microsecond, 8) // 8us horizon
	var fired sim.Time
	w.Schedule(sim.Time(50*1000), func() { fired = s.Now() }) // 50us out
	if len(w.overflow) != 1 {
		t.Fatalf("expected overflow, got %d", len(w.overflow))
	}
	s.Run()
	if fired < 49_000 || fired > 51_000 {
		t.Fatalf("overflow item fired at %v, want ~50us", fired)
	}
}

func TestOrderAcrossSlots(t *testing.T) {
	s := sim.New(1)
	w := New(s, 100*time.Nanosecond, 32)
	var got []sim.Time
	times := []sim.Time{2900, 300, 1500, 700, 2200}
	for _, at := range times {
		w.Schedule(at, func() { got = append(got, s.Now()) })
	}
	s.Run()
	if len(got) != len(times) {
		t.Fatalf("released %d of %d", len(got), len(times))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("release times not sorted: %v", got)
	}
}

func TestIdleWheelCostsNothing(t *testing.T) {
	s := sim.New(1)
	_ = New(s, time.Microsecond, 128)
	if s.Pending() != 0 {
		t.Fatal("fresh wheel armed a timer")
	}
}

func TestContinuousPacing(t *testing.T) {
	// Pace 1000 packets at one per 500ns; all should be released, in
	// order, roughly at the target rate.
	s := sim.New(1)
	w := New(s, 100*time.Nanosecond, 64)
	var releases []sim.Time
	next := sim.Time(0)
	for i := 0; i < 1000; i++ {
		next = next.Add(500 * time.Nanosecond)
		w.Schedule(next, func() { releases = append(releases, s.Now()) })
	}
	s.Run()
	if len(releases) != 1000 {
		t.Fatalf("released %d, want 1000", len(releases))
	}
	total := releases[len(releases)-1] - releases[0]
	if total < sim.Time(400*1000) || total > sim.Time(600*1000) {
		t.Fatalf("1000 releases spread over %v, want ~500us", total.Duration())
	}
	if w.MaxOccupancy < 100 {
		t.Logf("max occupancy %d", w.MaxOccupancy)
	}
}

func TestRandomizedReleaseNeverEarly(t *testing.T) {
	s := sim.New(3)
	w := New(s, 250*time.Nanosecond, 32)
	rng := rand.New(rand.NewSource(9))
	type exp struct {
		at    sim.Time
		fired sim.Time
	}
	var exps []*exp
	for i := 0; i < 500; i++ {
		e := &exp{at: sim.Time(rng.Intn(200_000))}
		exps = append(exps, e)
		w.Schedule(e.at, func() { e.fired = s.Now() })
	}
	s.Run()
	for i, e := range exps {
		if e.fired == 0 && e.at != 0 {
			t.Fatalf("item %d never fired", i)
		}
		// Round-up slot quantization: release must never be early.
		if e.fired < e.at {
			t.Fatalf("item %d released at %v, requested %v", i, e.fired, e.at)
		}
	}
}

func TestHorizonAccessor(t *testing.T) {
	s := sim.New(1)
	w := New(s, 512*time.Nanosecond, 4096)
	if got := w.Horizon(); got != 512*4096*time.Nanosecond {
		t.Fatalf("Horizon = %v", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	s := sim.New(1)
	for _, fn := range []func(){
		func() { New(s, 0, 16) },
		func() { New(s, -time.Microsecond, 16) },
		func() { New(s, time.Microsecond, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
