// falconbench regenerates every table and figure of the paper's evaluation
// (§6 and Appendix B) from the simulator and prints them as tables.
//
// Usage:
//
//	falconbench -list            # show available experiments
//	falconbench -run fig10       # run one experiment
//	falconbench -run 'fig2.*'    # run experiments matching a regex
//	falconbench                  # run everything (several minutes)
//	falconbench -quick           # shorter measurement windows
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"time"

	"falcon/internal/experiments"
)

type entry struct {
	name string
	desc string
	run  func(quick bool) *experiments.Table
}

// windows returns the measurement duration for normal vs quick runs.
func windows(full, quick time.Duration) func(bool) time.Duration {
	return func(q bool) time.Duration {
		if q {
			return quick
		}
		return full
	}
}

var registry = []entry{
	{"fig1", "HW vs SW op rate and tail latency", func(q bool) *experiments.Table {
		return experiments.Fig1(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig3", "transport multipath vs app-level connections", func(q bool) *experiments.Table {
		return experiments.Fig3(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig10", "goodput under losses per op type", func(q bool) *experiments.Table {
		return experiments.Fig10(windows(8*time.Millisecond, 3*time.Millisecond)(q))
	}},
	{"fig11a", "goodput under reordering", func(q bool) *experiments.Table {
		return experiments.Fig11a(windows(8*time.Millisecond, 3*time.Millisecond)(q))
	}},
	{"fig11b", "RACK-TLP vs OOO-distance", func(q bool) *experiments.Table {
		return experiments.Fig11b(windows(10*time.Millisecond, 4*time.Millisecond)(q))
	}},
	{"fig12", "RoCE modes under losses", func(q bool) *experiments.Table {
		return experiments.Fig12(windows(8*time.Millisecond, 3*time.Millisecond)(q))
	}},
	{"fig13", "incast congestion control", func(q bool) *experiments.Table {
		return experiments.Fig13(windows(8*time.Millisecond, 4*time.Millisecond)(q))
	}},
	{"fig14", "end-host congestion (PCIe downgrade)", func(q bool) *experiments.Table {
		return experiments.Fig14(windows(3*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig15", "multipath latency/goodput vs load (fig16 series included)", func(q bool) *experiments.Table {
		return experiments.Fig15(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig17", "path scheduling policy", func(q bool) *experiments.Table {
		return experiments.Fig17(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig18", "ML training comm time (multipath)", func(q bool) *experiments.Table {
		return experiments.Fig18()
	}},
	{"fig19", "message size scaling", func(q bool) *experiments.Table {
		return experiments.Fig19()
	}},
	{"fig20a", "read-incast bandwidth scaling vs SW", func(q bool) *experiments.Table {
		return experiments.Fig20a(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig20b", "op-rate scaling vs QP count", func(q bool) *experiments.Table {
		return experiments.Fig20b(windows(3*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig21", "connection-count RTT cliff", func(q bool) *experiments.Table {
		return experiments.Fig21()
	}},
	{"fig22a", "FAE event rate vs connections", func(q bool) *experiments.Table {
		return experiments.Fig22a()
	}},
	{"fig22b", "impact of slow FAE", func(q bool) *experiments.Table {
		return experiments.Fig22b(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig23", "FAE state-size sensitivity", func(q bool) *experiments.Table {
		return experiments.Fig23()
	}},
	{"fig24", "isolation via backpressure", func(q bool) *experiments.Table {
		return experiments.Fig24(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig25", "MPI AllReduce vs TCP", func(q bool) *experiments.Table {
		return experiments.Fig25()
	}},
	{"fig26", "MPI AllToAll vs TCP", func(q bool) *experiments.Table {
		return experiments.Fig26()
	}},
	{"fig27", "GROMACS-like scaling", func(q bool) *experiments.Table {
		return experiments.Fig27()
	}},
	{"fig28", "WRF-like scaling", func(q bool) *experiments.Table {
		return experiments.Fig28()
	}},
	{"fig29", "VM live migration vs Pony Express", func(q bool) *experiments.Table {
		return experiments.Fig29()
	}},
	{"fig30", "MPI AllGather vs TCP", func(q bool) *experiments.Table {
		return experiments.Fig30()
	}},
	{"fig31", "MPI MultiPingPong vs TCP", func(q bool) *experiments.Table {
		return experiments.Fig31()
	}},
	{"table4", "Near Local Flash vs local SSD", func(q bool) *experiments.Table {
		return experiments.Table4(windows(20*time.Millisecond, 8*time.Millisecond)(q))
	}},
	{"ecn", "ablation: ECN as a supplementary CC signal", func(q bool) *experiments.Table {
		return experiments.AblationECN(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"psp", "ablation: PSP inline-encryption overhead", func(q bool) *experiments.Table {
		return experiments.AblationPSP(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "regex of experiment names to run (default: all)")
	quick := flag.Bool("quick", false, "shorter measurement windows")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}
	var re *regexp.Regexp
	if *run != "" {
		var err error
		re, err = regexp.Compile("^(" + *run + ")$")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -run regex: %v\n", err)
			os.Exit(2)
		}
	}
	matched := false
	for _, e := range registry {
		if re != nil && !re.MatchString(e.name) {
			continue
		}
		matched = true
		start := time.Now()
		e.run(*quick).Fprint(os.Stdout)
		fmt.Printf("(%s in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; try -list\n", *run)
		os.Exit(1)
	}
}
