// Package wire defines the Falcon packet formats exchanged between NICs.
//
// The layout follows §4 of the paper: every packet carries a connection ID,
// a packet sequence number (PSN) scoped to one of two sequence spaces
// (request and response, see §A.1), a request sequence number (RSN) for
// transaction ordering (§A.2), an IPv6-style flow label whose low bits embed
// the multipath flow index (§4.3), and a hardware transmit timestamp t1
// (§4.2). ACKs additionally carry the receiver's 128-bit RX bitmaps for both
// sequence spaces, the timestamp echoes (t1, t2, t3) needed for the
// (t4-t1)-(t3-t2) fabric-delay computation, and the RX-buffer-occupancy NIC
// congestion signal used for ncwnd modulation.
//
// Inside the simulator packets are passed by pointer (zero-copy); Marshal
// and Unmarshal exist so the same structs can ride a real bearer such as UDP
// (see examples/udptunnel) and to keep header overhead accounting honest.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Type enumerates Falcon packet types.
type Type uint8

const (
	// TypeInvalid is the zero value; never valid on the wire.
	TypeInvalid Type = iota
	// TypePushData carries ULP payload from requester to responder
	// (RDMA Write/Send, NVMe Write). Request sequence space.
	TypePushData
	// TypePullRequest solicits data from the responder (RDMA Read,
	// NVMe Read). Request sequence space.
	TypePullRequest
	// TypePullResponse carries the data answering a PullRequest.
	// Response sequence space.
	TypePullResponse
	// TypeAck acknowledges received packets via cumulative base + bitmap.
	TypeAck
	// TypeNack signals an exception (resource exhaustion, RNR, CIE).
	TypeNack
	// TypeResync re-establishes sequence state after an RTO storm. Kept
	// for completeness of the state machine; rarely exercised.
	TypeResync
)

var typeNames = map[Type]string{
	TypeInvalid:      "INVALID",
	TypePushData:     "PUSH_DATA",
	TypePullRequest:  "PULL_REQ",
	TypePullResponse: "PULL_RESP",
	TypeAck:          "ACK",
	TypeNack:         "NACK",
	TypeResync:       "RESYNC",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// IsData reports whether the packet type occupies a sequence-number slot and
// is therefore subject to reliability and congestion control.
func (t Type) IsData() bool {
	return t == TypePushData || t == TypePullRequest || t == TypePullResponse || t == TypeResync
}

// Space identifies which of the two per-direction PSN spaces a packet
// belongs to (§A.1): requests and responses are sequenced independently so
// that finite resources can never deadlock request delivery against
// response delivery.
type Space uint8

const (
	// SpaceRequest sequences PushData and PullRequest packets.
	SpaceRequest Space = iota
	// SpaceResponse sequences PullResponse packets.
	SpaceResponse
	// NumSpaces is the number of sequence spaces per direction.
	NumSpaces = 2
)

func (s Space) String() string {
	switch s {
	case SpaceRequest:
		return "req"
	case SpaceResponse:
		return "resp"
	}
	return fmt.Sprintf("Space(%d)", uint8(s))
}

// SpaceOf returns the sequence space for a data packet type.
func SpaceOf(t Type) Space {
	if t == TypePullResponse {
		return SpaceResponse
	}
	return SpaceRequest
}

// NackCode enumerates the exception classes a Falcon responder can raise
// (§4.4, §4.5).
type NackCode uint8

const (
	// NackNone: not a NACK.
	NackNone NackCode = iota
	// NackResourceExhausted: receiver had no RX resources for the packet;
	// the sender backs off and retransmits later.
	NackResourceExhausted
	// NackRNR: the target ULP is not ready (Receiver Not Ready); the
	// packet must be retried after RetryDelay. Falcon handles the retry
	// transparently to the ULP.
	NackRNR
	// NackCIE: Complete-in-Error-and-Continue; the target ULP failed the
	// transaction (e.g. memory protection error). The initiator completes
	// this transaction with an error and subsequent transactions proceed.
	NackCIE
	// NackXoff: receiver requests the sender pause this connection
	// (per-connection flow control echo).
	NackXoff
)

func (c NackCode) String() string {
	switch c {
	case NackNone:
		return "NONE"
	case NackResourceExhausted:
		return "RESOURCE"
	case NackRNR:
		return "RNR"
	case NackCIE:
		return "CIE"
	case NackXoff:
		return "XOFF"
	}
	return fmt.Sprintf("NackCode(%d)", uint8(c))
}

// Flag bits carried in the header flags byte.
const (
	// FlagAckReq is the AR bit: the receiver should generate an ACK
	// promptly rather than coalescing (§5, Table 3 "Pure ACK Generation").
	FlagAckReq uint8 = 1 << 0
	// FlagRetransmit marks a retransmitted packet (diagnostics only; the
	// receiver path does not branch on it).
	FlagRetransmit uint8 = 1 << 1
	// FlagTLP marks a tail-loss-probe retransmission.
	FlagTLP uint8 = 1 << 2
	// FlagOrdered is set on packets of ordered connections (diagnostics).
	FlagOrdered uint8 = 1 << 3
	// FlagCE is the ECN congestion-experienced mark copied from the
	// fabric onto a data packet at NIC ingress.
	FlagCE uint8 = 1 << 4
	// FlagECE is the receiver's ECN echo on ACKs: at least one CE-marked
	// packet arrived since the previous ACK (Table 3 lists ECN among the
	// congestion-control interface signals).
	FlagECE uint8 = 1 << 5
)

// FlowIndexBits is the number of low bits of the flow label that encode the
// flow index, giving MaxFlows flows per connection (§4.3: "This Flow Label
// also includes the flow's index").
const FlowIndexBits = 2

// MaxFlows is the maximum number of multipath flows per connection.
const MaxFlows = 1 << FlowIndexBits

// FlowLabel is an IPv6-style 20-bit flow label whose low FlowIndexBits bits
// carry the flow index so the receiver can attribute congestion metadata to
// the right flow.
type FlowLabel uint32

// MakeFlowLabel combines a path discriminator with a flow index.
func MakeFlowLabel(path uint32, flowIndex int) FlowLabel {
	return FlowLabel(path<<FlowIndexBits | uint32(flowIndex)&(MaxFlows-1))
}

// FlowIndex extracts the flow index embedded in the label.
func (l FlowLabel) FlowIndex() int { return int(l & (MaxFlows - 1)) }

// Path extracts the path discriminator (everything above the index bits).
func (l FlowLabel) Path() uint32 { return uint32(l) >> FlowIndexBits }

// WithPath returns a label with the same flow index but a new path
// discriminator; this is how PLB/PRR repath a flow.
func (l FlowLabel) WithPath(path uint32) FlowLabel {
	return MakeFlowLabel(path, l.FlowIndex())
}

// AckInfo is the acknowledgment state for one sequence space: a cumulative
// base (all PSNs below Base received) plus a 128-bit bitmap of receipt
// status for PSNs in [Base, Base+128).
type AckInfo struct {
	Base   uint32
	Bitmap Bitmap
}

// Packet is a Falcon wire packet. Payload sizes are modeled by Length; Data
// optionally carries real bytes for end-to-end examples.
type Packet struct {
	Type     Type
	Flags    uint8
	NackCode NackCode
	// RetryDelayNs is meaningful for NackRNR: the delay after which the
	// initiator should retry, in nanoseconds.
	RetryDelayNs uint32

	// ConnID identifies the destination connection on the receiving NIC.
	ConnID uint32
	// FlowLabel selects the network path and embeds the flow index.
	FlowLabel FlowLabel
	// PSN is the packet sequence number within Space.
	PSN uint32
	// Space is the sequence space PSN belongs to.
	Space Space
	// RSN is the request sequence number of the transaction this packet
	// belongs to; responses echo the request's RSN.
	RSN uint64

	// T1 is the sender's wire transmit timestamp (ns). On ACKs, T1Echo,
	// T2 and T3 implement the four-timestamp delay decomposition.
	T1     int64
	T1Echo int64
	T2     int64
	T3     int64

	// Req and Resp carry the receiver's RX window state for the two
	// sequence spaces. Meaningful on ACK (and NACK, best effort).
	Req  AckInfo
	Resp AckInfo

	// CompletedRSN is, on ACKs of ordered connections, one past the
	// highest request sequence number whose transaction the target ULP
	// has completed in order (Figure 5: the ACK that follows Push
	// Completions is what releases initiator-side completions).
	CompletedRSN uint64

	// RxBufOccupancy is the receiver NIC's RX packet-buffer occupancy in
	// 1/65535 units of capacity; the ncwnd congestion signal.
	RxBufOccupancy uint16
	// AckFlowIndex is the flow whose congestion metadata (T-echoes) this
	// ACK carries; a single ACK acknowledges PSNs across all flows but
	// its delay sample belongs to one flow.
	AckFlowIndex uint8

	// Length is the ULP payload length in bytes (0 for pure ACK/NACK).
	Length uint32
	// PullLength is, on PullRequest packets, the number of response
	// bytes the requester solicits (the request itself is header-only).
	PullLength uint32

	// UlpOp and Addr belong to the ULP mapping layer: Falcon treats them
	// as opaque transaction metadata (they ride where a real deployment
	// would put the ULP header inside the payload). UlpOp identifies the
	// ULP operation (RDMA Write/Send/Read/Atomic, NVMe command); Addr is
	// the remote address/offset the operation targets.
	UlpOp uint8
	Addr  uint64
	// Data optionally carries the payload bytes (may be nil even when
	// Length > 0; the simulator models size without materializing bytes).
	Data []byte

	// pooled marks packets obtained from a PacketPool; it is not a wire
	// field (Marshal ignores it, Unmarshal and CopyFrom preserve it) and
	// hand-built packets leave it false so Release ignores them.
	pooled bool
}

// headerLen is the fixed marshaled header size in bytes.
const headerLen = 1 + 1 + 1 + 1 + // type, flags, nackCode, space
	4 + // retryDelay
	4 + 4 + 4 + 1 + // connID, flowLabel, PSN, ackFlowIndex
	8 + // RSN
	8*4 + // t1, t1echo, t2, t3
	(4 + 16) + (4 + 16) + // req ack info, resp ack info
	8 + // completedRSN
	2 + // rxBufOccupancy
	4 + // length
	4 + // pullLength
	1 + 8 // ulpOp, addr

// HeaderLen returns the marshaled Falcon header length in bytes. It is what
// the simulator charges as per-packet header overhead on the wire.
func HeaderLen() int { return headerLen }

// WireSize returns the bytes this packet occupies on the wire (header plus
// modeled payload length).
func (p *Packet) WireSize() int { return headerLen + int(p.Length) }

// ErrShortBuffer is returned by Unmarshal when the input cannot hold a
// Falcon header.
var ErrShortBuffer = errors.New("wire: buffer too short for falcon header")

// ErrBadType is returned by Unmarshal for an unknown packet type.
var ErrBadType = errors.New("wire: unknown packet type")

// ErrBadSpace is returned by Unmarshal for a sequence-space byte outside
// [0, NumSpaces). Validating here matters: the PDL indexes per-space state
// arrays by Space, so an unvalidated corrupt header would panic deep in the
// receive path instead of being dropped at the parser.
var ErrBadSpace = errors.New("wire: invalid sequence space")

// Marshal appends the packet's wire representation to dst and returns the
// extended slice. Payload bytes from Data are appended when present;
// otherwise Length is recorded in the header but no payload bytes follow
// (simulation mode).
func (p *Packet) Marshal(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, headerLen)...)
	b := dst[off:]
	b[0] = byte(p.Type)
	b[1] = p.Flags
	b[2] = byte(p.NackCode)
	b[3] = byte(p.Space)
	be := binary.BigEndian
	be.PutUint32(b[4:], p.RetryDelayNs)
	be.PutUint32(b[8:], p.ConnID)
	be.PutUint32(b[12:], uint32(p.FlowLabel))
	be.PutUint32(b[16:], p.PSN)
	b[20] = p.AckFlowIndex
	be.PutUint64(b[21:], p.RSN)
	be.PutUint64(b[29:], uint64(p.T1))
	be.PutUint64(b[37:], uint64(p.T1Echo))
	be.PutUint64(b[45:], uint64(p.T2))
	be.PutUint64(b[53:], uint64(p.T3))
	be.PutUint32(b[61:], p.Req.Base)
	be.PutUint64(b[65:], p.Req.Bitmap[0])
	be.PutUint64(b[73:], p.Req.Bitmap[1])
	be.PutUint32(b[81:], p.Resp.Base)
	be.PutUint64(b[85:], p.Resp.Bitmap[0])
	be.PutUint64(b[93:], p.Resp.Bitmap[1])
	be.PutUint64(b[101:], p.CompletedRSN)
	be.PutUint16(b[109:], p.RxBufOccupancy)
	be.PutUint32(b[111:], p.Length)
	be.PutUint32(b[115:], p.PullLength)
	b[119] = p.UlpOp
	be.PutUint64(b[120:], p.Addr)
	if p.Data != nil {
		dst = append(dst, p.Data...)
	}
	return dst
}

// Unmarshal parses a packet from b, returning the number of bytes consumed.
// If the header's Length is nonzero and payload bytes are present they are
// copied into Data; a header-only buffer (simulation mode) yields Data nil.
func (p *Packet) Unmarshal(b []byte) (int, error) {
	if len(b) < headerLen {
		return 0, ErrShortBuffer
	}
	t := Type(b[0])
	if t == TypeInvalid || t > TypeResync {
		return 0, fmt.Errorf("%w: %d", ErrBadType, b[0])
	}
	if b[3] >= NumSpaces {
		return 0, fmt.Errorf("%w: %d", ErrBadSpace, b[3])
	}
	be := binary.BigEndian
	p.Type = t
	p.Flags = b[1]
	p.NackCode = NackCode(b[2])
	p.Space = Space(b[3])
	p.RetryDelayNs = be.Uint32(b[4:])
	p.ConnID = be.Uint32(b[8:])
	p.FlowLabel = FlowLabel(be.Uint32(b[12:]))
	p.PSN = be.Uint32(b[16:])
	p.AckFlowIndex = b[20]
	p.RSN = be.Uint64(b[21:])
	p.T1 = int64(be.Uint64(b[29:]))
	p.T1Echo = int64(be.Uint64(b[37:]))
	p.T2 = int64(be.Uint64(b[45:]))
	p.T3 = int64(be.Uint64(b[53:]))
	p.Req.Base = be.Uint32(b[61:])
	p.Req.Bitmap[0] = be.Uint64(b[65:])
	p.Req.Bitmap[1] = be.Uint64(b[73:])
	p.Resp.Base = be.Uint32(b[81:])
	p.Resp.Bitmap[0] = be.Uint64(b[85:])
	p.Resp.Bitmap[1] = be.Uint64(b[93:])
	p.CompletedRSN = be.Uint64(b[101:])
	p.RxBufOccupancy = be.Uint16(b[109:])
	p.Length = be.Uint32(b[111:])
	p.PullLength = be.Uint32(b[115:])
	p.UlpOp = b[119]
	p.Addr = be.Uint64(b[120:])
	n := headerLen
	p.Data = nil
	if p.Length > 0 && len(b) >= headerLen+int(p.Length) {
		p.Data = append([]byte(nil), b[headerLen:headerLen+int(p.Length)]...)
		n += int(p.Length)
	}
	return n, nil
}

func (p *Packet) String() string {
	switch p.Type {
	case TypeAck:
		return fmt.Sprintf("ACK conn=%d flow=%d req=%d/%v resp=%d/%v occ=%d",
			p.ConnID, p.AckFlowIndex, p.Req.Base, p.Req.Bitmap, p.Resp.Base, p.Resp.Bitmap, p.RxBufOccupancy)
	case TypeNack:
		return fmt.Sprintf("NACK(%v) conn=%d psn=%d/%v rsn=%d", p.NackCode, p.ConnID, p.PSN, p.Space, p.RSN)
	default:
		return fmt.Sprintf("%v conn=%d psn=%d/%v rsn=%d len=%d flow=%d",
			p.Type, p.ConnID, p.PSN, p.Space, p.RSN, p.Length, p.FlowLabel.FlowIndex())
	}
}
