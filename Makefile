GO ?= go

.PHONY: all build test short race sweep fuzz vet bench ci

all: build test

build:
	$(GO) build ./...

# Tier-1: full unit + integration suite (sweeps at default breadth).
test:
	$(GO) test ./...

# Quick iteration loop: long simulation sweeps skip or shrink.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Full fault-sweep matrix and determinism checks, verbose.
sweep:
	$(GO) test -v -run 'TestSweep|TestDeterminism|TestExperimentDeterminism' \
		./internal/testkit/ ./internal/experiments/

# Wire-format fuzzing (bounded; remove -fuzztime to run until interrupted).
fuzz:
	$(GO) test -fuzz FuzzUnmarshal -fuzztime 30s ./internal/falcon/wire/

vet:
	$(GO) vet ./...

bench:
	$(GO) run ./cmd/falconbench

ci: vet build test race
