// Package psp implements the PSP-style inline encryption layer Falcon can
// run over (§3.1: "Falcon can utilize protocols such as the PSP Security
// Protocol or IP-SEC for authentication and encryption"; §5.1: the inline
// encryption block also carries the wire timestamp in the IV field).
//
// The model follows the open PSP spec's shape: per-connection (per-SA)
// AES-GCM with a master-key-derived data key, an 8-byte IV carried in the
// PSP header, and authenticated-but-cleartext header fields the fabric
// needs (the crypt-offset region). As in the Falcon hardware, the wire
// transmit timestamp rides in the IV, which is how the NIC timestamps
// packets "close to the Ethernet port" without a separate trailer.
//
// Everything is real crypto from the standard library — an encrypted
// falcon-over-UDP bearer can use this as is.
package psp

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// KeyLen is the AES-256 data-key length.
const KeyLen = 32

// headerLen is the PSP header prepended to each encrypted packet:
// SPI (4) + IV (8) + crypt-offset (2) + reserved (2).
const headerLen = 16

// tagLen is the AES-GCM authentication tag length.
const tagLen = 16

// Overhead is the total per-packet expansion: header plus GCM tag.
const Overhead = headerLen + tagLen

// ErrAuth reports an authentication failure (tampered or corrupt packet).
var ErrAuth = errors.New("psp: authentication failed")

// ErrShort reports a truncated PSP packet.
var ErrShort = errors.New("psp: packet shorter than PSP header+tag")

// ErrReplay reports an IV at or below the anti-replay horizon.
var ErrReplay = errors.New("psp: replayed or stale IV")

// DeriveKey derives a per-SA data key from a device master key and the
// security parameter index, PSP-style (the spec uses a KDF keyed by the
// master key so the device never stores per-connection keys).
func DeriveKey(masterKey []byte, spi uint32) [KeyLen]byte {
	mac := hmac.New(sha256.New, masterKey)
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[:4], spi)
	copy(buf[4:], "PSPv")
	mac.Write(buf[:])
	var out [KeyLen]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// SA is one security association (one direction of one connection).
type SA struct {
	spi  uint32
	aead cipher.AEAD

	// nextIV is the transmit IV counter. PSP IVs are unique per SA; the
	// Falcon integration sets the IV to the wire transmit timestamp,
	// which is strictly monotonic per SA at nanosecond granularity —
	// Seal enforces monotonicity either way.
	nextIV uint64

	// replayHorizon is the receive-side anti-replay floor: IVs must be
	// strictly increasing. (The real spec uses a window; a floor
	// suffices for an in-order bearer and is strict for testing.)
	replayHorizon uint64
	// ReplayWindowDisabled turns off receive-side replay checks for
	// bearers that reorder packets (the Falcon PDL tolerates reordering
	// above this layer).
	ReplayWindowDisabled bool

	// Stats
	Sealed, Opened, AuthFails, Replays uint64
}

// NewSA creates a security association for spi using a key derived from
// masterKey.
func NewSA(masterKey []byte, spi uint32) (*SA, error) {
	key := DeriveKey(masterKey, spi)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("psp: %w", err)
	}
	aead, err := cipher.NewGCMWithNonceSize(block, 12)
	if err != nil {
		return nil, fmt.Errorf("psp: %w", err)
	}
	return &SA{spi: spi, aead: aead, nextIV: 1}, nil
}

// SPI returns the security parameter index.
func (sa *SA) SPI() uint32 { return sa.spi }

// nonce builds the 12-byte GCM nonce from the SPI and IV.
func (sa *SA) nonce(iv uint64) []byte {
	n := make([]byte, 12)
	binary.BigEndian.PutUint32(n, sa.spi)
	binary.BigEndian.PutUint64(n[4:], iv)
	return n
}

// Seal encrypts plaintext into a PSP packet: the first cryptOffset bytes
// remain cleartext (authenticated as associated data — the transport
// header the fabric must read), the rest is encrypted. iv is typically the
// wire transmit timestamp; zero means "allocate the next counter value".
// The result is header || cleartext || ciphertext+tag.
func (sa *SA) Seal(plaintext []byte, cryptOffset int, iv uint64) ([]byte, error) {
	if cryptOffset < 0 || cryptOffset > len(plaintext) {
		return nil, fmt.Errorf("psp: crypt offset %d out of range", cryptOffset)
	}
	if iv == 0 {
		iv = sa.nextIV
	}
	if iv < sa.nextIV {
		return nil, fmt.Errorf("psp: non-monotonic transmit IV %d (next %d)", iv, sa.nextIV)
	}
	sa.nextIV = iv + 1

	hdr := make([]byte, headerLen, headerLen+len(plaintext)+tagLen)
	binary.BigEndian.PutUint32(hdr, sa.spi)
	binary.BigEndian.PutUint64(hdr[4:], iv)
	binary.BigEndian.PutUint16(hdr[12:], uint16(cryptOffset))

	clear := plaintext[:cryptOffset]
	// Associated data: the PSP header plus the cleartext region.
	ad := append(append([]byte{}, hdr...), clear...)
	out := append(hdr, clear...)
	out = sa.aead.Seal(out, sa.nonce(iv), plaintext[cryptOffset:], ad)
	sa.Sealed++
	return out, nil
}

// IV extracts the IV (wire timestamp) from a sealed packet without
// decrypting — what the receive-side timestamping block does.
func IV(packet []byte) (uint64, error) {
	if len(packet) < headerLen {
		return 0, ErrShort
	}
	return binary.BigEndian.Uint64(packet[4:]), nil
}

// SPIOf extracts the security parameter index from a sealed packet.
func SPIOf(packet []byte) (uint32, error) {
	if len(packet) < headerLen {
		return 0, ErrShort
	}
	return binary.BigEndian.Uint32(packet), nil
}

// Open authenticates and decrypts a PSP packet, returning the recovered
// plaintext and the IV (wire timestamp).
func (sa *SA) Open(packet []byte) (plaintext []byte, iv uint64, err error) {
	if len(packet) < headerLen+tagLen {
		return nil, 0, ErrShort
	}
	spi := binary.BigEndian.Uint32(packet)
	if spi != sa.spi {
		return nil, 0, fmt.Errorf("psp: packet SPI %d does not match SA %d", spi, sa.spi)
	}
	iv = binary.BigEndian.Uint64(packet[4:])
	cryptOffset := int(binary.BigEndian.Uint16(packet[12:]))
	if headerLen+cryptOffset+tagLen > len(packet) {
		return nil, 0, ErrShort
	}
	if !sa.ReplayWindowDisabled {
		if iv <= sa.replayHorizon {
			sa.Replays++
			return nil, 0, ErrReplay
		}
	}
	hdr := packet[:headerLen]
	clear := packet[headerLen : headerLen+cryptOffset]
	ct := packet[headerLen+cryptOffset:]
	ad := append(append([]byte{}, hdr...), clear...)
	body, err := sa.aead.Open(nil, sa.nonce(iv), ct, ad)
	if err != nil {
		sa.AuthFails++
		return nil, 0, ErrAuth
	}
	if !sa.ReplayWindowDisabled && iv > sa.replayHorizon {
		sa.replayHorizon = iv
	}
	sa.Opened++
	out := make([]byte, 0, len(clear)+len(body))
	out = append(out, clear...)
	out = append(out, body...)
	return out, iv, nil
}
