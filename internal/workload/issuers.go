package workload

import (
	"math/rand"
	"time"

	"falcon/internal/sim"
)

// ClosedLoop keeps `window` operations outstanding until `total` have been
// issued; done (optional) fires when all complete. issue must invoke its
// callback exactly once per operation and may return false to signal
// temporary backpressure (the loop retries after a pause).
type ClosedLoop struct {
	sim    *sim.Simulator
	window int
	total  int
	issue  func(opDone func()) bool
	done   func()

	issued    int
	inflight  int
	completed int

	// opDoneFn and pumpFn are the bound method values passed to issue and
	// After. Evaluating c.opDone allocates a fresh closure each time; binding
	// once here keeps the steady-state issue path allocation-free.
	opDoneFn func()
	pumpFn   func()
}

// NewClosedLoop builds the issuer; call Start to begin.
func NewClosedLoop(s *sim.Simulator, window, total int, issue func(opDone func()) bool, done func()) *ClosedLoop {
	if window <= 0 {
		window = 1
	}
	c := &ClosedLoop{sim: s, window: window, total: total, issue: issue, done: done}
	c.opDoneFn = c.opDone
	c.pumpFn = c.pump
	return c
}

// Start issues the initial window.
func (c *ClosedLoop) Start() { c.pump() }

// Completed reports finished operations.
func (c *ClosedLoop) Completed() int { return c.completed }

func (c *ClosedLoop) pump() {
	for c.inflight < c.window && c.issued < c.total {
		ok := c.issue(c.opDoneFn)
		if !ok {
			// Backpressured: retry after a pause.
			c.sim.After(20*time.Microsecond, c.pumpFn)
			return
		}
		c.issued++
		c.inflight++
	}
}

func (c *ClosedLoop) opDone() {
	c.inflight--
	c.completed++
	if c.completed == c.total {
		if c.done != nil {
			c.done()
		}
		return
	}
	c.pump()
}

// Poisson issues operations with exponential inter-arrival times at the
// given rate (ops/sec) until `total` have been issued. Operations are
// open-loop: issuance does not wait for completions.
type Poisson struct {
	sim   *sim.Simulator
	rng   *rand.Rand
	rate  float64
	total int
	issue func()

	issued int

	// tick is the arrival body, allocated once instead of per arrival.
	tick func()
}

// NewPoisson builds the issuer; call Start to begin.
func NewPoisson(s *sim.Simulator, rng *rand.Rand, rate float64, total int, issue func()) *Poisson {
	if rate <= 0 {
		panic("workload: poisson rate must be positive")
	}
	p := &Poisson{sim: s, rng: rng, rate: rate, total: total, issue: issue}
	p.tick = func() {
		p.issued++
		p.issue()
		p.next()
	}
	return p
}

// Start schedules the first arrival.
func (p *Poisson) Start() { p.next() }

func (p *Poisson) next() {
	if p.issued >= p.total {
		return
	}
	gap := time.Duration(p.rng.ExpFloat64() / p.rate * 1e9)
	p.sim.After(gap, p.tick)
}
