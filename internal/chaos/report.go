package chaos

// Report is the measured outcome of one storm run — the payload behind the
// exact-class `chaos` telemetry layer. Experiments fill it after the run
// drains; telemetry.CollectChaos turns it into metrics. Every field is an
// integer derived from virtual-clock state, so same-seed runs produce
// byte-identical reports.
type Report struct {
	// Envelope is the recovery envelope (baseline / storm / tail goodput
	// and the fault-clear-to-recovery gap).
	Envelope Result
	// Ledger is the post-drain frame-conservation audit.
	Ledger Ledger
	// Events is the number of fault events the plan scheduled.
	Events uint64
	// Retransmits is the transport's total retransmit count for the run;
	// with BaselineRetransmits from a fault-free twin it yields the
	// storm's retransmit amplification.
	Retransmits uint64
	// BaselineRetransmits is the same counter from the fault-free
	// baseline run (0 when no twin was run).
	BaselineRetransmits uint64
	// RTODepth is the deepest consecutive-RTO escalation any connection
	// reached (pdl Stats.MaxConsecRTOs max'd over connections).
	RTODepth uint64
	// ConnsTotal / ConnsSurvived / ConnsFailed count connections at run
	// end: survived connections quiesced cleanly, failed ones died (crash
	// teardown or RTO budget exhaustion).
	ConnsTotal    uint64
	ConnsSurvived uint64
	ConnsFailed   uint64
	// Completed is the number of workload operations that finished.
	Completed uint64
}
