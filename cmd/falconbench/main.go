// falconbench regenerates every table and figure of the paper's evaluation
// (§6 and Appendix B) from the simulator and prints them as tables.
//
// Usage:
//
//	falconbench -list                  # show available experiments
//	falconbench -run fig10             # run one experiment
//	falconbench -run 'fig2.*'          # run experiments matching a regex
//	falconbench                        # run everything (several minutes)
//	falconbench -quick                 # shorter measurement windows
//	falconbench -quick -parallel 8     # fan experiments across 8 workers
//	falconbench -json BENCH_pr2.json   # also write a machine-readable
//	                                   # performance report (events/sec,
//	                                   # ns/event, allocs/event, wall time
//	                                   # per figure)
//	falconbench -quick -run 'fig10|fig13|fig15' \
//	    -metrics BENCH_pr3_metrics.json \
//	    -series BENCH_pr3_series       # instrumented run: deterministic
//	                                   # per-figure metric snapshots plus
//	                                   # virtual-clock time-series CSVs
//	                                   # (byte-identical across same-seed
//	                                   # runs; forces serial execution)
//	falconbench -sched heap            # A/B the reference heap scheduler;
//	                                   # tables must be identical
//	falconbench -routing spray         # run every fabric under a non-default
//	                                   # uplink policy (ecmp, spray, adaptive);
//	                                   # same-seed reruns stay byte-identical
//	                                   # per policy, but non-ecmp tables
//	                                   # legitimately differ from committed
//	                                   # baselines
//	falconbench -storm 71              # run the storm figures under one
//	                                   # campaign seed; with no -run the
//	                                   # selection defaults to the storm
//	                                   # figures. Two invocations with the
//	                                   # same seed write byte-identical
//	                                   # -metrics JSON (chaoscheck relies
//	                                   # on this)
//	falconbench -legacyhotpath         # A/B the legacy transport hot path
//	                                   # (map tables, heap packets, per-PSN
//	                                   # scans); tables must be identical
//	falconbench -shards 4              # partition every simulator into 4
//	                                   # per-partition event loops with a
//	                                   # deterministic merge; tables must
//	                                   # be identical to -shards 1
//	                                   # (shardcheck relies on this)
//	falconbench -shards 4 -shardpar    # experimental: execute partitions
//	                                   # on concurrent goroutines under
//	                                   # conservative lookahead windows
//	falconbench -cpuprofile cpu.pprof  # pprof profiles of the run
//	falconbench -memprofile mem.pprof
//
// Experiments build independent seeded simulators, so -parallel changes
// wall time but never a table cell; output stays in registry order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"

	"falcon/internal/core"
	"falcon/internal/experiments"
	"falcon/internal/netsim"
	"falcon/internal/routing"
	"falcon/internal/sim"
	"falcon/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "regex of experiment names to run (default: all)")
	quick := flag.Bool("quick", false, "shorter measurement windows")
	parallel := flag.Int("parallel", 1, "worker pool width (independent simulators per goroutine)")
	jsonPath := flag.String("json", "", "write a BENCH_*.json performance report to this file")
	metricsPath := flag.String("metrics", "", "write a deterministic per-figure metrics JSON to this file (forces a serial instrumented run)")
	seriesDir := flag.String("series", "", "write per-figure time-series CSVs into this directory (forces a serial instrumented run)")
	sched := flag.String("sched", "wheel", "event scheduler: wheel (default) or heap (reference)")
	shards := flag.Int("shards", 1, "partition every simulator into N per-partition event loops (deterministic merge; tables must be identical to -shards 1)")
	shardPar := flag.Bool("shardpar", false, "experimental: run partitions on concurrent goroutines under conservative lookahead windows (self-deterministic, but not byte-comparable to the merged mode)")
	routingPolicy := flag.String("routing", "ecmp", "fabric uplink policy for every topology: ecmp (default), spray, or adaptive")
	legacyHotPath := flag.Bool("legacyhotpath", false, "run the transport on the legacy hot path oracle (map tables, heap packets, per-PSN scans)")
	storm := flag.Int64("storm", 0, "override the storm campaign seed for figStorm/figEndpointFault; with no -run, selects just the storm figures")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}
	switch *sched {
	case "wheel":
		sim.SetDefaultScheduler(sim.SchedulerWheel)
	case "heap":
		sim.SetDefaultScheduler(sim.SchedulerHeap)
	default:
		fmt.Fprintf(os.Stderr, "bad -sched %q: want wheel or heap\n", *sched)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "bad -shards %d: want >= 1\n", *shards)
		os.Exit(2)
	}
	sim.SetDefaultShards(*shards)
	sim.SetDefaultShardParallel(*shardPar)
	core.SetDefaultLegacyHotPath(*legacyHotPath)
	pol := routing.ByName(*routingPolicy)
	if pol == nil {
		fmt.Fprintf(os.Stderr, "bad -routing %q: want ecmp, spray or adaptive\n", *routingPolicy)
		os.Exit(2)
	}
	netsim.SetDefaultPolicy(pol)
	if *storm != 0 {
		experiments.SetStormSeed(*storm)
		if *run == "" {
			*run = "figStorm|figEndpointFault"
		}
	}
	if *shardPar {
		// The windowed-parallel mode executes partitions on concurrent
		// goroutines, so only figures built with partition-local
		// accumulation may run under it; the merged mode (-shards without
		// -shardpar) is safe — and byte-identical — for every figure.
		if *run == "" {
			*run = "figScale"
		}
		fmt.Fprintln(os.Stderr, "note: -shardpar is experimental; selection defaults to figScale (partition-local accumulation)")
	}
	var re *regexp.Regexp
	if *run != "" {
		var err error
		re, err = regexp.Compile("^(" + *run + ")$")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -run regex: %v\n", err)
			os.Exit(2)
		}
	}
	var matched []experiments.Entry
	for _, e := range experiments.Registry() {
		if re == nil || re.MatchString(e.Name) {
			matched = append(matched, e)
		}
	}
	if len(matched) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; try -list\n", *run)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var rep experiments.BenchReport
	if *metricsPath != "" || *seriesDir != "" {
		var suites []*telemetry.Suite
		rep, suites = experiments.RunInstrumented(matched, *quick, os.Stdout)
		if *metricsPath != "" {
			m := experiments.NewMetricsReport(rep)
			f, err := os.Create(*metricsPath)
			if err == nil {
				err = m.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
				os.Exit(1)
			}
		}
		if *seriesDir != "" {
			for i, tel := range suites {
				paths, err := tel.WriteSeries(*seriesDir, matched[i].Name)
				if err != nil {
					fmt.Fprintf(os.Stderr, "series: %v\n", err)
					os.Exit(1)
				}
				for _, p := range paths {
					fmt.Printf("wrote %s\n", p)
				}
			}
		}
	} else {
		rep = experiments.Run(matched, *quick, *parallel, os.Stdout)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}
}
