// Package netsim simulates the Ethernet datacenter fabric the Falcon
// evaluation runs on: hosts with access links, output-queued switches,
// ECMP/WCMP next-hop selection hashed on the transport's flow label, and the
// switch-level impairments (random drop, reordering, link failure) the paper
// configures in §6.1.
//
// netsim is transport-agnostic: it moves Frames, which carry an opaque
// Payload. Falcon, RoCE and the software-transport baselines all ride the
// same fabric, so fabric behaviour can never silently favor one transport.
package netsim

import (
	"fmt"
	"time"

	"falcon/internal/sim"
)

// NodeID identifies a host in the network.
type NodeID int

// Frame is one packet on the wire.
type Frame struct {
	Src, Dst NodeID
	// FlowHash is the ECMP hash input. Transports derive it from the
	// 4-tuple plus the IPv6 flow label, so changing the flow label
	// repaths the flow (PLB/PRR).
	FlowHash uint64
	// Size is the frame's wire size in bytes.
	Size int
	// Payload is the transport packet (e.g. *wire.Packet).
	Payload any
	// SentAt is stamped by Host.Send.
	SentAt sim.Time
	// Hops counts switch traversals, exported to transports that use a
	// hop-count congestion signal.
	Hops int
	// CE is the ECN congestion-experienced mark, set by any port whose
	// queue exceeds its marking threshold.
	CE bool
}

// Handler receives frames delivered to a host.
type Handler interface {
	HandleFrame(f *Frame)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(*Frame)

// HandleFrame calls fn(f).
func (fn HandlerFunc) HandleFrame(f *Frame) { fn(f) }

// device is anything a port can deliver to.
type device interface {
	receive(f *Frame)
}

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// GbpsRate is the link speed in gigabits per second.
	GbpsRate float64
	// PropDelay is the one-way propagation delay.
	PropDelay time.Duration
	// QueueBytes is the output queue limit; 0 means a generous default
	// (1 MiB). Frames arriving at a full queue are dropped.
	QueueBytes int
}

// DefaultQueueBytes is the output-queue limit used when LinkConfig leaves
// QueueBytes zero.
const DefaultQueueBytes = 1 << 20

// PortStats counts traffic through one directed port.
type PortStats struct {
	TxFrames      uint64
	TxBytes       uint64
	QueueDrops    uint64
	RandomDrops   uint64
	Reordered     uint64
	ECNMarks      uint64
	MaxQueueBytes int
}

// Port is one directed egress: a serializing output queue feeding a
// propagation-delayed wire toward dst.
type Port struct {
	sim   *sim.Simulator
	name  string
	rate  float64 // bytes per nanosecond
	prop  time.Duration
	limit int
	dst   device

	queuedBytes int
	busyUntil   sim.Time
	down        bool

	// Impairments, adjustable at runtime by experiments.
	dropProb     float64
	reorderProb  float64
	reorderDelay time.Duration

	// ecnThreshold marks frames CE when the queue exceeds this many
	// bytes (0 = ECN marking off).
	ecnThreshold int

	Stats PortStats
}

func newPort(s *sim.Simulator, name string, cfg LinkConfig, dst device) *Port {
	if cfg.GbpsRate <= 0 {
		panic("netsim: link rate must be positive")
	}
	limit := cfg.QueueBytes
	if limit == 0 {
		limit = DefaultQueueBytes
	}
	return &Port{
		sim:   s,
		name:  name,
		rate:  cfg.GbpsRate / 8, // Gbit/s -> bytes/ns
		prop:  cfg.PropDelay,
		limit: limit,
		dst:   dst,
	}
}

// SetDropProb configures random egress drop with probability p, modeling the
// paper's "switch configured to randomly drop packets" experiments.
func (p *Port) SetDropProb(prob float64) { p.dropProb = prob }

// SetReorder configures random reordering: with probability prob a frame is
// held for extraDelay before delivery, so later frames overtake it.
func (p *Port) SetReorder(prob float64, extraDelay time.Duration) {
	p.reorderProb = prob
	p.reorderDelay = extraDelay
}

// SetDown marks the port failed; all frames are dropped (network outage for
// PRR experiments).
func (p *Port) SetDown(down bool) { p.down = down }

// SetECNThreshold enables ECN marking: frames that arrive to a queue
// deeper than bytes are marked congestion-experienced.
func (p *Port) SetECNThreshold(bytes int) { p.ecnThreshold = bytes }

// SetRateGbps changes the port speed at runtime (e.g. link downgrade).
func (p *Port) SetRateGbps(gbps float64) {
	if gbps <= 0 {
		panic("netsim: link rate must be positive")
	}
	p.rate = gbps / 8
}

// QueueDelay returns the current queuing delay a newly arriving frame would
// experience before serialization begins.
func (p *Port) QueueDelay() time.Duration {
	now := p.sim.Now()
	if p.busyUntil <= now {
		return 0
	}
	return p.busyUntil.Sub(now)
}

// QueuedBytes returns the bytes currently awaiting serialization.
func (p *Port) QueuedBytes() int { return p.queuedBytes }

// send enqueues f for transmission.
func (p *Port) send(f *Frame) {
	if p.down {
		p.Stats.RandomDrops++
		return
	}
	if p.dropProb > 0 && p.sim.Rand().Float64() < p.dropProb {
		p.Stats.RandomDrops++
		return
	}
	if p.queuedBytes+f.Size > p.limit {
		p.Stats.QueueDrops++
		return
	}
	p.queuedBytes += f.Size
	if p.queuedBytes > p.Stats.MaxQueueBytes {
		p.Stats.MaxQueueBytes = p.queuedBytes
	}
	if p.ecnThreshold > 0 && p.queuedBytes > p.ecnThreshold {
		f.CE = true
		p.Stats.ECNMarks++
	}
	now := p.sim.Now()
	start := p.busyUntil
	if start < now {
		start = now
	}
	serialization := time.Duration(float64(f.Size) / p.rate)
	departure := start.Add(serialization)
	p.busyUntil = departure
	p.Stats.TxFrames++
	p.Stats.TxBytes += uint64(f.Size)

	arrival := departure.Add(p.prop)
	if p.reorderProb > 0 && p.sim.Rand().Float64() < p.reorderProb {
		arrival = arrival.Add(p.reorderDelay)
		p.Stats.Reordered++
	}
	p.sim.At(departure, func() { p.queuedBytes -= f.Size })
	p.sim.At(arrival, func() { p.dst.receive(f) })
}

// Host is an endpoint with a single access link.
type Host struct {
	ID      NodeID
	net     *Network
	handler Handler
	uplink  *Port
	tap     func(f *Frame)
	// RxFrames counts delivered frames.
	RxFrames uint64
}

// SetHandler installs the frame receiver. Must be called before traffic
// arrives.
func (h *Host) SetHandler(hd Handler) { h.handler = hd }

// SetTap installs a wire-level observer invoked for every frame delivered
// to this host, before the handler runs (nil detaches). Verification
// harnesses use it to fingerprint fabric arrivals; it must not mutate the
// frame.
func (h *Host) SetTap(fn func(f *Frame)) { h.tap = fn }

// Uplink returns the host's egress port (host -> first switch), e.g. to
// impair or re-rate it.
func (h *Host) Uplink() *Port { return h.uplink }

// Send transmits a frame from this host. f.Src is set to the host's ID.
func (h *Host) Send(f *Frame) {
	f.Src = h.ID
	f.SentAt = h.net.sim.Now()
	f.Hops = 0
	if h.uplink == nil {
		panic(fmt.Sprintf("netsim: host %d has no uplink", h.ID))
	}
	h.uplink.send(f)
}

func (h *Host) receive(f *Frame) {
	h.RxFrames++
	if h.tap != nil {
		h.tap(f)
	}
	if h.handler != nil {
		h.handler.HandleFrame(f)
	}
}

// Switch forwards frames by destination with ECMP across equal-cost
// next-hop ports.
type Switch struct {
	id     int
	net    *Network
	salt   uint64
	routes map[NodeID][]*Port
	// RxFrames counts frames entering the switch.
	RxFrames uint64
}

// addRoute registers ports as next hops toward dst.
func (sw *Switch) addRoute(dst NodeID, ports ...*Port) {
	sw.routes[dst] = append(sw.routes[dst], ports...)
}

// RouteTo returns the ECMP port set toward dst (for impairment injection).
func (sw *Switch) RouteTo(dst NodeID) []*Port { return sw.routes[dst] }

func (sw *Switch) receive(f *Frame) {
	sw.RxFrames++
	f.Hops++
	ports := sw.routes[f.Dst]
	switch len(ports) {
	case 0:
		panic(fmt.Sprintf("netsim: switch %d has no route to host %d", sw.id, f.Dst))
	case 1:
		ports[0].send(f)
	default:
		h := mix64(f.FlowHash ^ sw.salt ^ uint64(f.Dst)<<32 ^ uint64(f.Src))
		ports[h%uint64(len(ports))].send(f)
	}
}

// mix64 is a splitmix64 finalizer: a cheap avalanche so per-switch salts
// decorrelate ECMP choices.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Network owns hosts and switches attached to one simulator.
type Network struct {
	sim      *sim.Simulator
	hosts    []*Host
	switches []*Switch
}

// New creates an empty network bound to s.
func New(s *sim.Simulator) *Network {
	return &Network{sim: s}
}

// Sim returns the owning simulator.
func (n *Network) Sim() *sim.Simulator { return n.sim }

// AddHost creates a host. Its handler may be set later.
func (n *Network) AddHost() *Host {
	h := &Host{ID: NodeID(len(n.hosts)), net: n}
	n.hosts = append(n.hosts, h)
	return h
}

// Host returns the host with the given ID.
func (n *Network) Host(id NodeID) *Host { return n.hosts[int(id)] }

// Hosts returns all hosts.
func (n *Network) Hosts() []*Host { return n.hosts }

// AddSwitch creates a switch.
func (n *Network) AddSwitch() *Switch {
	sw := &Switch{
		id:     len(n.switches),
		net:    n,
		salt:   mix64(uint64(len(n.switches))*0x9e3779b97f4a7c15 + 1),
		routes: make(map[NodeID][]*Port),
	}
	n.switches = append(n.switches, sw)
	return sw
}

// AttachHost wires host h to switch sw with symmetric link config, and
// installs the direct route sw -> h. Returns the downlink port (sw -> h) so
// callers can impair the "forward direction" of a path.
func (n *Network) AttachHost(h *Host, sw *Switch, cfg LinkConfig) *Port {
	up := newPort(n.sim, fmt.Sprintf("h%d->sw%d", h.ID, sw.id), cfg, sw)
	down := newPort(n.sim, fmt.Sprintf("sw%d->h%d", sw.id, h.ID), cfg, h)
	h.uplink = up
	sw.addRoute(h.ID, down)
	return down
}

// ConnectSwitches creates a bidirectional inter-switch link and returns the
// two directed ports (a->b, b->a). Routes must be installed by the caller
// (or by a topology builder).
func (n *Network) ConnectSwitches(a, b *Switch, cfg LinkConfig) (ab, ba *Port) {
	ab = newPort(n.sim, fmt.Sprintf("sw%d->sw%d", a.id, b.id), cfg, b)
	ba = newPort(n.sim, fmt.Sprintf("sw%d->sw%d", b.id, a.id), cfg, a)
	return ab, ba
}
