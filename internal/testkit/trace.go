package testkit

import (
	"fmt"

	"falcon/internal/falcon/pdl"
	"falcon/internal/falcon/tl"
	"falcon/internal/falcon/wire"
	"falcon/internal/netsim"
	"falcon/internal/sim"
)

// TraceHasher folds a simulation's observable behaviour into a streaming
// 64-bit FNV-1a digest. It implements every probe interface the repository
// exposes — sim.Observer (scheduler events), pdl.Probe (packet sends and
// receives), tl.Probe (transaction serves and completions) — plus a
// netsim host tap for wire-level frame arrivals, so one instance attached
// everywhere fingerprints an entire run.
//
// The digest is order- and content-sensitive: two runs produce the same
// Sum64 only if they deliver the same records, with the same fields, in
// the same order. A run with a fixed seed is therefore bit-for-bit
// reproducible exactly when its trace hash is stable, which is the
// property the determinism sweeps assert.
//
// Record format (see DESIGN.md §7 "Verification"): each record is a
// one-byte tag followed by the record's fields, each serialized as 8
// little-endian bytes and folded byte-wise into the running FNV-1a state.
type TraceHasher struct {
	h       uint64
	records uint64

	// ph is a second digest over protocol records only — every tag except
	// the scheduler's 'E' events. Two runs that differ in event-queue
	// mechanics (e.g. eager vs lazily-batched timers, which wake at
	// different instants but act identically) diverge on Sum64 while
	// agreeing on ProtoSum64; the timer-equivalence sweep asserts the
	// latter.
	ph           uint64
	protoRecords uint64
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// Record tags, one per probe source.
const (
	tagSimEvent   byte = 'E' // sim.Observer: (time, seq)
	tagSend       byte = 'S' // pdl send: (conn, space, psn, rsn, type|flags, flowlabel)
	tagReceive    byte = 'R' // pdl receive: packet identity + window state
	tagFrame      byte = 'F' // netsim frame delivery
	tagServe      byte = 'U' // tl target serve: (conn, rsn)
	tagCompletion byte = 'C' // tl initiator completion: (conn, rsn, errbit)
)

// NewTraceHasher returns an empty hasher.
func NewTraceHasher() *TraceHasher { return &TraceHasher{h: fnvOffset64, ph: fnvOffset64} }

// write folds one record into the digest.
func (t *TraceHasher) write(tag byte, fields ...uint64) {
	t.records++
	h := t.h ^ uint64(tag)
	h *= fnvPrime64
	for _, f := range fields {
		for i := 0; i < 8; i++ {
			h ^= f & 0xff
			h *= fnvPrime64
			f >>= 8
		}
	}
	t.h = h
	if tag == tagSimEvent {
		return
	}
	t.protoRecords++
	p := t.ph ^ uint64(tag)
	p *= fnvPrime64
	for _, f := range fields {
		for i := 0; i < 8; i++ {
			p ^= f & 0xff
			p *= fnvPrime64
			f >>= 8
		}
	}
	t.ph = p
}

// Sum64 returns the current digest.
func (t *TraceHasher) Sum64() uint64 { return t.h }

// Records returns how many records have been folded in.
func (t *TraceHasher) Records() uint64 { return t.records }

// ProtoSum64 returns the protocol-only digest: every record except
// scheduler 'E' events.
func (t *TraceHasher) ProtoSum64() uint64 { return t.ph }

// ProtoRecords returns how many protocol records ProtoSum64 covers.
func (t *TraceHasher) ProtoRecords() uint64 { return t.protoRecords }

// String renders the digest in the canonical printable form.
func (t *TraceHasher) String() string {
	return fmt.Sprintf("fnv1a:%016x/%d", t.h, t.records)
}

// OnEvent implements sim.Observer: every delivered scheduler event is
// fingerprinted by its (virtual time, sequence number) pair. Any
// divergence in scheduling order between two runs changes the digest.
func (t *TraceHasher) OnEvent(at sim.Time, seq uint64) {
	t.write(tagSimEvent, uint64(at), seq)
}

// OnSend implements the pdl.Probe send hook.
func (t *TraceHasher) OnSend(c *pdl.Conn, p *wire.Packet, retransmit bool) {
	r := uint64(0)
	if retransmit {
		r = 1
	}
	t.write(tagSend,
		uint64(c.ID()), uint64(p.Space), uint64(p.PSN), p.RSN,
		uint64(p.Type)<<32|uint64(p.Flags)<<8|r, uint64(p.FlowLabel))
}

// OnReceive implements the pdl.Probe receive hook. Besides the packet
// identity it folds in the connection's post-event window state, so state
// divergence is caught even when packet streams happen to match.
func (t *TraceHasher) OnReceive(c *pdl.Conn, p *wire.Packet) {
	reqBase, reqBm := c.RxState(wire.SpaceRequest)
	respBase, respBm := c.RxState(wire.SpaceResponse)
	txReqBase, txReqNext, txReqOut := c.TxState(wire.SpaceRequest)
	txRespBase, txRespNext, txRespOut := c.TxState(wire.SpaceResponse)
	t.write(tagReceive,
		uint64(c.ID()), uint64(p.Space), uint64(p.PSN), p.RSN,
		uint64(p.Type)<<32|uint64(p.NackCode)<<8|uint64(p.Flags),
		uint64(reqBase)<<32|uint64(respBase), reqBm[0], reqBm[1], respBm[0], respBm[1],
		uint64(txReqBase)<<32|uint64(txReqNext),
		uint64(txRespBase)<<32|uint64(txRespNext),
		uint64(txReqOut)<<32|uint64(txRespOut),
		p.CompletedRSN)
}

// OnRequestServed implements the tl.Probe target hook.
func (t *TraceHasher) OnRequestServed(c *tl.Conn, rsn uint64) {
	t.write(tagServe, uint64(c.ID()), rsn)
}

// OnCompletion implements the tl.Probe initiator hook.
func (t *TraceHasher) OnCompletion(c *tl.Conn, rsn uint64, err error) {
	e := uint64(0)
	if err != nil {
		e = 1
	}
	t.write(tagCompletion, uint64(c.ID()), rsn, e)
}

// TapFrame is a netsim host tap (install with Host.SetTap) fingerprinting
// wire-level frame deliveries.
func (t *TraceHasher) TapFrame(f *netsim.Frame) {
	t.write(tagFrame,
		uint64(f.Src)<<32|uint64(f.Dst), f.FlowHash,
		uint64(f.Size), uint64(f.SentAt), uint64(f.Hops))
}

// PDLProbes combines several pdl.Probes into one (pdl.Conn.SetProbe takes
// a single probe). It delegates to the layer-owned pdl.MultiProbe so
// testkit and telemetry share one fan-out implementation; the alias is
// kept because sweep wiring reads naturally with it.
func PDLProbes(ps ...pdl.Probe) pdl.Probe { return pdl.MultiProbe(ps...) }

// TLProbes combines several tl.Probes into one (see PDLProbes).
func TLProbes(ps ...tl.Probe) tl.Probe { return tl.MultiProbe(ps...) }
