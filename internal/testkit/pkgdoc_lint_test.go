package testkit

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestPackageDocLint asserts every package under internal/ carries a
// package doc comment: some non-test .go file in the directory must
// have a comment block attached to its package clause. Godoc is the
// entry point for each subsystem (METRICS.md and DESIGN.md link into
// it), so an undocumented package is a structural regression the same
// way a map on the hot path is — caught here at review time.
//
// Directories with no non-test Go files (pure grouping directories
// like internal/falcon) are skipped.
func TestPackageDocLint(t *testing.T) {
	root := repoRootDir(t)
	internal := filepath.Join(root, "internal")

	var undocumented []string
	err := filepath.WalkDir(internal, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		fset := token.NewFileSet()
		hasGo, hasDoc := false, false
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			hasGo = true
			f, err := parser.ParseFile(fset, filepath.Join(path, name), nil,
				parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Errorf("parse %s: %v", filepath.Join(path, name), err)
				continue
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
				break
			}
		}
		if hasGo && !hasDoc {
			rel, _ := filepath.Rel(root, path)
			undocumented = append(undocumented, rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(undocumented)
	if len(undocumented) > 0 {
		t.Fatalf("packages missing a package doc comment:\n  %s",
			strings.Join(undocumented, "\n  "))
	}
}

// repoRootDir walks up from the test's working directory to the module
// root.
func repoRootDir(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
