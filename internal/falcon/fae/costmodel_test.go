package fae

import (
	"testing"
	"time"
)

func TestStatelessFlatAcrossConnCounts(t *testing.T) {
	m := DefaultCacheModel()
	r1 := m.EventRate(Stateless, 1000, 64)
	r2 := m.EventRate(Stateless, 1_000_000, 64)
	if r1 != r2 {
		t.Fatalf("stateless rate varies with conns: %v vs %v", r1, r2)
	}
	if r1 < 15e6 {
		t.Fatalf("stateless rate %v below ~20M events/s regime", r1)
	}
}

func TestStatefulDegradesWithConnCount(t *testing.T) {
	m := DefaultCacheModel()
	small := m.EventRate(Stateful, 1000, 64)
	large := m.EventRate(Stateful, 1_000_000, 64)
	if large >= small {
		t.Fatalf("stateful rate should degrade: %v -> %v", small, large)
	}
	if small/large < 1.5 {
		t.Fatalf("degradation too mild: %v -> %v", small, large)
	}
}

func TestPrefetchRecoversMostOfTheLoss(t *testing.T) {
	m := DefaultCacheModel()
	conns := 128_000
	naive := m.EventRate(Stateful, conns, 64)
	prefetch := m.EventRate(StatefulPrefetch, conns, 64)
	stateless := m.EventRate(Stateless, conns, 64)
	if prefetch <= naive {
		t.Fatalf("prefetch %v not better than naive %v", prefetch, naive)
	}
	// Figure 22a: prefetching maintains ~stateless rate at 128K conns.
	if prefetch < stateless*0.85 {
		t.Fatalf("prefetch %v too far below stateless %v", prefetch, stateless)
	}
}

func TestFig23ShapeStateSizeSensitivity(t *testing.T) {
	// Figure 23: at 128K connections, 64B state ~20M events/s and an
	// 8x larger state (512B) drops only to ~15M.
	m := DefaultCacheModel()
	at64 := m.EventRate(StatefulPrefetch, 128_000, 64)
	at512 := m.EventRate(StatefulPrefetch, 128_000, 512)
	if at64 < 17e6 || at64 > 24e6 {
		t.Fatalf("64B rate = %.1fM, want ~20M", at64/1e6)
	}
	if at512 < 11e6 || at512 > 18e6 {
		t.Fatalf("512B rate = %.1fM, want ~15M", at512/1e6)
	}
	if at512 >= at64 {
		t.Fatal("larger state should not be faster")
	}
}

func TestFetchCostMonotonicInWorkingSet(t *testing.T) {
	m := DefaultCacheModel()
	prev := time.Duration(0)
	for _, conns := range []int{100, 1000, 10_000, 100_000, 1_000_000} {
		c := m.FetchCost(conns, 64)
		if c < prev {
			t.Fatalf("fetch cost decreased at %d conns: %v < %v", conns, c, prev)
		}
		prev = c
	}
}

func TestFetchCostTinyWorkingSetHitsL1(t *testing.T) {
	m := DefaultCacheModel()
	if got := m.FetchCost(10, 64); got != m.L1Cost {
		t.Fatalf("small working set cost = %v, want L1 %v", got, m.L1Cost)
	}
	if got := m.FetchCost(0, 64); got != m.L1Cost {
		t.Fatalf("zero conns cost = %v", got)
	}
}

func TestFetchCostHugeWorkingSetApproachesDRAM(t *testing.T) {
	m := DefaultCacheModel()
	got := m.FetchCost(10_000_000, 512) // 5GB working set
	if got < m.DRAMCost*99/100 {
		t.Fatalf("huge working set cost = %v, want ~DRAM %v", got, m.DRAMCost)
	}
}

func TestStateModeString(t *testing.T) {
	if Stateless.String() != "stateless" ||
		Stateful.String() != "stateful" ||
		StatefulPrefetch.String() != "stateful+prefetch" {
		t.Fatal("StateMode strings wrong")
	}
	if StateMode(42).String() != "unknown" {
		t.Fatal("unknown mode string")
	}
}
