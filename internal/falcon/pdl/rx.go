package pdl

import (
	"math/bits"
	"time"

	"falcon/internal/falcon/fae"
	"falcon/internal/falcon/wire"
	"falcon/internal/sim"
)

// HandlePacket is the connection's ingress from the fabric. hops is the
// path hop count observed by the NIC (a congestion-signal input, Table 3).
func (c *Conn) HandlePacket(p *wire.Packet, hops int) {
	if c.failed {
		return
	}
	c.hops = hops
	switch p.Type {
	case wire.TypeAck:
		c.handleAck(p)
	case wire.TypeNack:
		c.handleNack(p)
	default:
		if p.Type.IsData() {
			c.handleData(p)
		}
	}
	if c.probe != nil {
		c.probe.OnReceive(c, p)
	}
}

// handleData runs the receiver pipeline: RX window bookkeeping, delivery to
// the TL, and ACK generation with per-flow coalescing (§4.1, §4.3).
func (c *Conn) handleData(p *wire.Packet) {
	rs := c.rx[p.Space]
	flowIdx := p.FlowLabel.FlowIndex()
	if flowIdx >= len(c.rxFlow) {
		flowIdx = 0
	}
	rf := &c.rxFlow[flowIdx]
	now := c.sim.Now()

	// Serial arithmetic: PSNs wrap at 2^32, so the offset from base must be
	// computed as a signed 32-bit difference, never an absolute comparison.
	diff := int64(int32(p.PSN - rs.base))
	switch {
	case diff < 0 || (diff < wire.BitmapBits && rs.bitmap.Get(int(diff))):
		// Duplicate (e.g. a retransmission racing a lost ACK). ACK
		// promptly so the sender converges.
		c.Stats.Duplicates++
		rf.t1, rf.t2, rf.valid = p.T1, int64(now), true
		c.Stats.AcksImmediate++
		c.sendAck(flowIdx)
		return
	case diff >= wire.BitmapBits:
		// Outside the representable window. A compliant sender's
		// sequence window prevents this; drop and count.
		c.Stats.RxWindowDrops++
		return
	}

	verdict := c.cb.Deliver(p)
	switch verdict.Kind {
	case DeliverNoResources:
		// Not recorded as received: the sender must retransmit once
		// resources free up.
		c.sendNack(p, wire.NackResourceExhausted, 0)
		return
	case DeliverRNR:
		// Received at the PDL level; the transaction retry is handled
		// end-to-end by the TLs.
		rs.bitmap.Set(int(diff))
		c.sendNack(p, wire.NackRNR, verdict.RetryDelay)
	case DeliverCIE:
		rs.bitmap.Set(int(diff))
		c.sendNack(p, wire.NackCIE, 0)
	default: // DeliverAccept
		rs.bitmap.Set(int(diff))
		c.Stats.DeliveredToTL++
	}

	// Advance the cumulative base over the leading received run.
	if run := rs.bitmap.LeadingRun(); run > 0 && diff < int64(run) {
		rs.bitmap.ShiftRight(run)
		rs.base += uint32(run)
	}

	// Per-flow congestion metadata and ACK coalescing.
	rf.t1, rf.t2, rf.valid = p.T1, int64(now), true
	if p.Flags&wire.FlagCE != 0 {
		rf.ceSeen = true
	}
	rf.pending++
	if p.Flags&wire.FlagAckReq != 0 || rf.pending >= c.cfg.AckCoalesceCount {
		c.Stats.AcksImmediate++
		c.sendAck(flowIdx)
	} else if !rf.ackTimer.Pending() {
		rf.ackTimer = c.sim.AtAction(now.Add(c.cfg.AckCoalesceDelay), rf)
	}
}

// sendAck emits an ACK carrying the RX window bitmaps of both spaces plus
// the congestion metadata of the given flow. The packet comes from the
// connection pool and returns to it as soon as Send has snapshotted it.
func (c *Conn) sendAck(flowIdx int) {
	rf := &c.rxFlow[flowIdx]
	rf.pending = 0
	rf.ackTimer.Stop()
	now := c.sim.Now()
	ack := c.pool.Acquire()
	ack.Type = wire.TypeAck
	ack.ConnID = c.id
	ack.FlowLabel = c.flows[flowIdx%len(c.flows)].label
	ack.AckFlowIndex = uint8(flowIdx)
	ack.T3 = int64(now)
	ack.Req = wire.AckInfo{Base: c.rx[wire.SpaceRequest].base, Bitmap: c.rx[wire.SpaceRequest].bitmap}
	ack.Resp = wire.AckInfo{Base: c.rx[wire.SpaceResponse].base, Bitmap: c.rx[wire.SpaceResponse].bitmap}
	if rf.valid {
		ack.T1Echo, ack.T2 = rf.t1, rf.t2
	}
	if rf.ceSeen {
		ack.Flags |= wire.FlagECE
		rf.ceSeen = false
	}
	if c.cb.RxBufOccupancy != nil {
		ack.RxBufOccupancy = uint16(clamp01(c.cb.RxBufOccupancy()) * 65535)
	}
	if c.cb.CompletedRSN != nil {
		ack.CompletedRSN = c.cb.CompletedRSN()
	}
	c.Stats.AcksSent++
	c.cb.Send(ack)
	c.pool.Release(ack)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// SendExceptionNack lets the transaction layer raise an RNR or CIE NACK
// for a request it had already accepted (ordered connections process
// requests after reordering, so the ULP verdict can arrive later than the
// Deliver call).
func (c *Conn) SendExceptionNack(space wire.Space, psn uint32, rsn uint64, code wire.NackCode, retry time.Duration) {
	c.sendNack(&wire.Packet{PSN: psn, Space: space, RSN: rsn}, code, retry)
}

// sendNack emits an exception NACK for a specific packet.
func (c *Conn) sendNack(p *wire.Packet, code wire.NackCode, retry time.Duration) {
	n := c.pool.Acquire()
	n.Type = wire.TypeNack
	n.NackCode = code
	n.ConnID = c.id
	n.FlowLabel = c.flows[0].label
	n.PSN = p.PSN
	n.Space = p.Space
	n.RSN = p.RSN
	n.RetryDelayNs = uint32(retry.Nanoseconds())
	n.Req = wire.AckInfo{Base: c.rx[wire.SpaceRequest].base, Bitmap: c.rx[wire.SpaceRequest].bitmap}
	n.Resp = wire.AckInfo{Base: c.rx[wire.SpaceResponse].base, Bitmap: c.rx[wire.SpaceResponse].bitmap}
	c.Stats.NacksSent++
	c.cb.Send(n)
	c.pool.Release(n)
}

// handleAck runs the sender pipeline for an arriving ACK: SACK processing
// per space, per-flow accounting, delay measurement, FAE eventing, loss
// recovery and send-window reopening.
func (c *Conn) handleAck(p *wire.Packet) {
	c.Stats.AcksReceived++
	now := c.sim.Now()

	perFlow := c.ackScratch[:len(c.flows)]
	for i := range perFlow {
		perFlow[i] = 0
	}
	progress := c.processAckInfo(c.tx[wire.SpaceRequest], p.Req, perFlow)
	if c.processAckInfo(c.tx[wire.SpaceResponse], p.Resp, perFlow) {
		progress = true
	}

	// Ordered-completion horizon from the target's TL.
	if p.CompletedRSN > 0 && c.cb.Completed != nil {
		c.cb.Completed(p.CompletedRSN)
	}

	if progress {
		c.resetTimersOnProgress()
	}

	// Delay measurement: (t4-t1)-(t3-t2) needs no clock sync (§4.2).
	ackFlow := int(p.AckFlowIndex)
	if ackFlow >= len(c.flows) {
		ackFlow = 0
	}
	if p.T1Echo > 0 && c.cb.PostEvent != nil {
		rtt := now.Sub(sim.Time(p.T1Echo))
		fabric := rtt - time.Duration(p.T3-p.T2)
		if fabric < 0 {
			fabric = 0
		}
		if rtt > 0 {
			if c.srttHint == 0 {
				c.srttHint = rtt
			} else {
				c.srttHint = (7*c.srttHint + rtt) / 8
			}
		}
		acked := perFlow[ackFlow]
		c.cb.PostEvent(fae.Event{
			Kind:           fae.EventAck,
			Conn:           c.id,
			Flow:           ackFlow,
			Now:            now,
			FabricDelay:    fabric,
			RTT:            rtt,
			AckedPackets:   acked,
			Hops:           c.hops,
			RxBufOccupancy: float64(p.RxBufOccupancy) / 65535,
			ECE:            p.Flags&wire.FlagECE != 0,
		})
	}

	// Loss recovery over the updated SACK scoreboard.
	c.runRecovery(now)
	c.trySend()
}

// processAckInfo folds one space's ACK info into the TX scoreboard. It
// reports whether any packet was newly acknowledged.
//
// The word path scans the acked mirror a word at a time instead of walking
// PSNs one by one; it visits exactly the live unacked offsets the legacy
// loops would mark, in the same ascending order (TL completion order
// depends on it), so the two produce byte-identical traces.
func (c *Conn) processAckInfo(ts *txSpace, info wire.AckInfo, perFlow []int) bool {
	if c.cfg.LegacyHotPath {
		return c.processAckInfoLegacy(ts, info, perFlow)
	}
	progress := false
	// Cumulative portion. Serial arithmetic throughout: PSNs wrap at 2^32,
	// so ordering is a signed 32-bit difference, never a widened comparison.
	if int32(info.Base-ts.base) > 0 {
		lim := int32(info.Base - ts.base)
		if n := int32(ts.next - ts.base); n < lim {
			lim = n
		}
		// Every live offset below lim that is not yet acked.
		pend := wire.LowMask(int(lim)).AndNot(ts.acked)
		w := pend[0]
		for w != 0 {
			o := bits.TrailingZeros64(w)
			w &= w - 1
			if c.markAcked(ts, ts.base+uint32(o), perFlow) {
				progress = true
			}
		}
		w = pend[1]
		for w != 0 {
			o := 64 + bits.TrailingZeros64(w)
			w &= w - 1
			if c.markAcked(ts, ts.base+uint32(o), perFlow) {
				progress = true
			}
		}
		if int32(info.Base-ts.next) <= 0 {
			ts.advanceTo(info.Base)
		} else {
			ts.advanceTo(ts.next)
		}
	}
	// Selective portion: visit the set bits of the wire bitmap.
	w := info.Bitmap[0]
	for w != 0 {
		i := bits.TrailingZeros64(w)
		w &= w - 1
		psn := info.Base + uint32(i)
		if int32(psn-ts.base) < 0 || int32(psn-ts.next) >= 0 {
			continue
		}
		if c.markAcked(ts, psn, perFlow) {
			progress = true
		}
	}
	w = info.Bitmap[1]
	for w != 0 {
		i := 64 + bits.TrailingZeros64(w)
		w &= w - 1
		psn := info.Base + uint32(i)
		if int32(psn-ts.base) < 0 || int32(psn-ts.next) >= 0 {
			continue
		}
		if c.markAcked(ts, psn, perFlow) {
			progress = true
		}
	}
	c.slideBase(ts)
	return progress
}

// processAckInfoLegacy is the per-PSN reference implementation (oracle).
func (c *Conn) processAckInfoLegacy(ts *txSpace, info wire.AckInfo, perFlow []int) bool {
	progress := false
	// Cumulative portion.
	if int32(info.Base-ts.base) > 0 {
		for psn := ts.base; psn != info.Base && psn != ts.next; psn++ {
			if c.markAcked(ts, psn, perFlow) {
				progress = true
			}
		}
		if int32(info.Base-ts.next) <= 0 {
			ts.advanceTo(info.Base)
		} else {
			ts.advanceTo(ts.next)
		}
	}
	// Selective portion.
	for i := 0; i < wire.BitmapBits; i++ {
		if !info.Bitmap.Get(i) {
			continue
		}
		psn := info.Base + uint32(i)
		if int32(psn-ts.base) < 0 || int32(psn-ts.next) >= 0 {
			continue
		}
		if c.markAcked(ts, psn, perFlow) {
			progress = true
		}
	}
	c.slideBase(ts)
	return progress
}

// slideBase advances the window base over the leading run of acked
// packets (SACKed contiguously).
func (c *Conn) slideBase(ts *txSpace) {
	if c.cfg.LegacyHotPath {
		for ts.base != ts.next {
			tp := ts.slot(ts.base)
			if !tp.live || !tp.acked {
				break
			}
			ts.advanceTo(ts.base + 1)
		}
		return
	}
	run := ts.acked.LeadingRun()
	if n := int(ts.next - ts.base); run > n {
		run = n
	}
	if run > 0 {
		ts.advanceTo(ts.base + uint32(run))
	}
}

// markAcked marks one PSN acknowledged, returning true if it was newly
// acked. The slot's wire packet returns to the pool once the TL has been
// notified; the slot keeps psn/rsn/typ so later duplicate ACKs and NACKs
// still resolve against it.
func (c *Conn) markAcked(ts *txSpace, psn uint32, perFlow []int) bool {
	tp := ts.slot(psn)
	if !tp.live || tp.acked || tp.psn != psn {
		return false
	}
	tp.acked = true
	off := int(int32(psn - ts.base))
	ts.acked.Set(off)
	ts.outstanding--
	if tp.nacked {
		tp.nacked = false
		ts.nackedB.Clear(off)
		ts.parked--
	}
	f := &c.flows[tp.flow]
	f.outstanding--
	perFlow[tp.flow]++
	// Spurious-retransmission detection: an ACK landing well under an
	// RTT after our retransmission must cover the original transmission,
	// so the reordering window was too small — widen it (RACK reo-window
	// adaptation).
	if tp.retx > 0 && c.srttHint > 0 &&
		c.sim.Now().Sub(tp.txTime) < 3*c.srttHint/4 && c.reoWndMult < 16 {
		c.reoWndMult *= 2
	}
	// Per-flow RACK: remember the most recent transmission time that is
	// known delivered on this flow.
	if tp.txTime > f.rackXmit {
		f.rackXmit = tp.txTime
	}
	if c.cb.PacketAcked != nil {
		c.cb.PacketAcked(ts.space, psn, tp.rsn, tp.typ)
	}
	c.pool.Release(tp.pkt)
	tp.pkt = nil
	return true
}

// handleNack processes an exception NACK at the sender.
func (c *Conn) handleNack(p *wire.Packet) {
	c.Stats.NacksReceived++
	switch p.NackCode {
	case wire.NackRNR:
		c.Stats.NacksRnr++
	case wire.NackResourceExhausted:
		c.Stats.NacksResource++
	case wire.NackCIE:
		c.Stats.NacksCie++
	}
	ts := c.tx[p.Space]
	tp := ts.slot(p.PSN)
	known := tp.live && !tp.acked && tp.psn == p.PSN

	switch p.NackCode {
	case wire.NackResourceExhausted:
		if !known {
			return
		}
		// Back off, then retransmit; also tell the FAE the peer NIC
		// is resource-pressured.
		if c.cb.PostEvent != nil {
			c.cb.PostEvent(fae.Event{
				Kind: fae.EventNack, Conn: c.id, Flow: int(tp.flow), Now: c.sim.Now(),
			})
		}
		if !tp.nacked {
			tp.nacked = true
			ts.nackedB.Set(int(int32(tp.psn - ts.base)))
			ts.parked++
			c.scheduleNackRetry(tp, p.Space, c.rto/4)
			// Parking the packet opened congestion window: the scheduler
			// may now transmit queued packets — in particular a
			// head-of-line RNR retry the receiver is waiting for.
			c.trySend()
		}
	case wire.NackRNR, wire.NackCIE:
		// The transaction-level consequence (retry or complete-in-error)
		// belongs to the TL, and it must learn of it BEFORE the PDL-level
		// ack below: on unordered connections a push completes when its
		// packet is acked, and an RNR means the target explicitly did NOT
		// take responsibility — the TL marks the transaction as retrying
		// so the ack frees the packet context without completing it.
		if c.cb.NackReceived != nil {
			c.cb.NackReceived(p)
		}
		// PDL-level delivery is done: free the packet context.
		if known {
			perFlow := c.ackScratch[:len(c.flows)]
			for i := range perFlow {
				perFlow[i] = 0
			}
			c.markAcked(ts, p.PSN, perFlow)
			c.slideBase(ts)
			c.resetTimersOnProgress()
		}
		c.trySend()
	}
}
