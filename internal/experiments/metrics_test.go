package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"falcon/internal/telemetry"
)

// exportSuite renders a suite the way falconbench -metrics/-series would:
// the registry snapshot as JSON plus every sampler CSV, keyed by file
// name.
func exportSuite(t *testing.T, tel *telemetry.Suite) ([]byte, map[string][]byte) {
	t.Helper()
	var j bytes.Buffer
	snap := tel.Snapshot(0)
	if err := snap.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths, err := tel.WriteSeries(dir, "x")
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[string][]byte, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		series[filepath.Base(p)] = b
	}
	return j.Bytes(), series
}

// TestInstrumentedExportDeterminism is the -metrics/-series acceptance
// check of ISSUE 3: two same-seed instrumented runs of each instrumented
// figure family must export byte-identical metrics JSON and series CSVs,
// and the table must equal the uninstrumented run's — telemetry observes,
// it never perturbs.
func TestInstrumentedExportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	const runFor = 500 * time.Microsecond
	families := []struct {
		name  string
		plain func(time.Duration) *Table
		tel   func(time.Duration, *telemetry.Suite) *Table
	}{
		{"loss/Fig10", Fig10, Fig10Tel},
		{"congestion/Fig13", Fig13, Fig13Tel},
		{"multipath/Fig15", Fig15, Fig15Tel},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			tel1, tel2 := telemetry.NewSuite(), telemetry.NewSuite()
			tbl1 := fam.tel(runFor, tel1)
			tbl2 := fam.tel(runFor, tel2)
			if !reflect.DeepEqual(tbl1, tbl2) {
				t.Fatalf("two same-seed instrumented runs differ:\nfirst: %+v\nsecond: %+v", tbl1, tbl2)
			}
			if plain := fam.plain(runFor); !reflect.DeepEqual(tbl1, plain) {
				t.Fatalf("telemetry perturbed the table:\ninstrumented: %+v\nplain: %+v", tbl1, plain)
			}

			j1, s1 := exportSuite(t, tel1)
			j2, s2 := exportSuite(t, tel2)
			if len(tel1.Snapshot(0).Metrics) == 0 {
				t.Fatal("instrumented run exported no metrics")
			}
			if !bytes.Equal(j1, j2) {
				t.Fatalf("metrics JSON differs between same-seed runs:\n--- first ---\n%s\n--- second ---\n%s", j1, j2)
			}
			if tel1.SamplerCount() == 0 {
				t.Fatal("instrumented run registered no samplers")
			}
			if len(s1) != len(s2) {
				t.Fatalf("series file sets differ: %d vs %d", len(s1), len(s2))
			}
			for name, b1 := range s1 {
				b2, ok := s2[name]
				if !ok {
					t.Fatalf("second run missing series %q", name)
				}
				if !bytes.Equal(b1, b2) {
					t.Fatalf("series %q differs between same-seed runs", name)
				}
				if !bytes.HasPrefix(b1, []byte("t_ns,")) || bytes.Count(b1, []byte("\n")) < 3 {
					t.Fatalf("series %q looks empty or malformed:\n%s", name, b1)
				}
			}
		})
	}
}

// TestRunInstrumentedReport checks the runner-level plumbing: figures
// carry metric snapshots, suites align with entries, and the stripped
// MetricsReport keeps only instrumented figures.
func TestRunInstrumentedReport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	// fig19 is analytic (fast, uninstrumented); fig15's RunTel at quick
	// windows would dominate the suite, so drive the runner with a tiny
	// synthetic instrumented entry instead.
	entries := pickEntries(t, "fig19", "fig21")
	entries = append(entries, Entry{
		Name: "synthetic",
		Desc: "test-only instrumented entry",
		Run:  func(q bool) *Table { return &Table{Title: "synthetic", Columns: []string{"v"}} },
		RunTel: func(q bool, tel *telemetry.Suite) *Table {
			tel.Registry().Counter("synthetic/ran").Inc()
			return &Table{Title: "synthetic", Columns: []string{"v"}}
		},
	})
	var out bytes.Buffer
	rep, suites := RunInstrumented(entries, true, &out)
	if len(suites) != len(entries) {
		t.Fatalf("suites = %d, want %d", len(suites), len(entries))
	}
	for i, fr := range rep.Figures {
		if fr.Name != entries[i].Name {
			t.Fatalf("figure %d = %q, want %q", i, fr.Name, entries[i].Name)
		}
		if fr.Metrics == nil {
			t.Fatalf("figure %q has no metrics snapshot", fr.Name)
		}
	}
	if v, ok := rep.Figures[2].Metrics.Get("synthetic/ran"); !ok || v != 1 {
		t.Fatalf("instrumented entry did not run through RunTel: %v %v", v, ok)
	}
	m := NewMetricsReport(rep)
	if len(m.Figures) != 1 || m.Figures[0].Name != "synthetic" {
		t.Fatalf("metrics report should keep only instrumented figures: %+v", m.Figures)
	}
	var j1, j2 bytes.Buffer
	if err := m.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("MetricsReport JSON not stable")
	}
}
