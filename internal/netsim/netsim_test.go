package netsim

import (
	"testing"
	"time"

	"falcon/internal/sim"
)

var testLink = LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond}

func TestPointToPointDelivery(t *testing.T) {
	s := sim.New(1)
	topo, _ := PointToPoint(s, testLink)
	var got *Frame
	var at sim.Time
	topo.Hosts[1].SetHandler(HandlerFunc(func(f *Frame) {
		got = f
		at = s.Now()
	}))
	topo.Hosts[0].Send(&Frame{Dst: 1, Size: 1500, Payload: "hi"})
	s.Run()
	if got == nil {
		t.Fatal("frame not delivered")
	}
	if got.Src != 0 || got.Payload != "hi" || got.Hops != 1 {
		t.Fatalf("frame = %+v", got)
	}
	// Two serializations (host->sw, sw->host) at 100Gbps: 1500B = 120ns
	// each, plus 2x1us propagation.
	want := sim.Time(2*120 + 2000)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestSerializationQueueing(t *testing.T) {
	// Two frames sent back-to-back: the second must wait for the first's
	// serialization on the shared uplink.
	s := sim.New(1)
	topo, _ := PointToPoint(s, testLink)
	var times []sim.Time
	topo.Hosts[1].SetHandler(HandlerFunc(func(f *Frame) { times = append(times, s.Now()) }))
	topo.Hosts[0].Send(&Frame{Dst: 1, Size: 1500})
	topo.Hosts[0].Send(&Frame{Dst: 1, Size: 1500})
	s.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d frames", len(times))
	}
	if gap := times[1] - times[0]; gap != 120 {
		t.Fatalf("inter-arrival %v, want 120ns (one serialization)", gap)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s := sim.New(1)
	link := LinkConfig{GbpsRate: 1, PropDelay: time.Microsecond, QueueBytes: 3000}
	topo, _ := PointToPoint(s, link)
	delivered := 0
	topo.Hosts[1].SetHandler(HandlerFunc(func(f *Frame) { delivered++ }))
	for i := 0; i < 10; i++ {
		topo.Hosts[0].Send(&Frame{Dst: 1, Size: 1500})
	}
	s.Run()
	up := topo.Hosts[0].Uplink()
	if up.Stats.QueueDrops == 0 {
		t.Fatal("expected queue drops")
	}
	if delivered+int(up.Stats.QueueDrops) != 10 {
		t.Fatalf("delivered %d + drops %d != 10", delivered, up.Stats.QueueDrops)
	}
}

func TestRandomDrop(t *testing.T) {
	s := sim.New(42)
	topo, fwd := PointToPoint(s, testLink)
	fwd.SetDropProb(0.5)
	delivered := 0
	topo.Hosts[1].SetHandler(HandlerFunc(func(f *Frame) { delivered++ }))
	const n = 2000
	for i := 0; i < n; i++ {
		i := i
		s.At(sim.Time(i)*1000, func() {
			topo.Hosts[0].Send(&Frame{Dst: 1, Size: 64})
		})
	}
	s.Run()
	if delivered < n*40/100 || delivered > n*60/100 {
		t.Fatalf("delivered %d of %d with 50%% drop", delivered, n)
	}
	if fwd.Stats.RandomDrops+uint64(delivered) != n {
		t.Fatalf("drops %d + delivered %d != %d", fwd.Stats.RandomDrops, delivered, n)
	}
}

func TestReorderInjection(t *testing.T) {
	s := sim.New(7)
	topo, fwd := PointToPoint(s, testLink)
	fwd.SetReorder(0.3, 20*time.Microsecond)
	var order []int
	topo.Hosts[1].SetHandler(HandlerFunc(func(f *Frame) { order = append(order, f.Payload.(int)) }))
	const n = 200
	for i := 0; i < n; i++ {
		i := i
		s.At(sim.Time(i)*2000, func() {
			topo.Hosts[0].Send(&Frame{Dst: 1, Size: 64, Payload: i})
		})
	}
	s.Run()
	if len(order) != n {
		t.Fatalf("delivered %d", len(order))
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("expected reordering with 30% reorder prob")
	}
}

func TestLinkDown(t *testing.T) {
	s := sim.New(1)
	topo, fwd := PointToPoint(s, testLink)
	fwd.SetDown(true)
	delivered := 0
	topo.Hosts[1].SetHandler(HandlerFunc(func(f *Frame) { delivered++ }))
	topo.Hosts[0].Send(&Frame{Dst: 1, Size: 64})
	s.Run()
	if delivered != 0 {
		t.Fatal("frame delivered over a down link")
	}
	fwd.SetDown(false)
	topo.Hosts[0].Send(&Frame{Dst: 1, Size: 64})
	s.Run()
	if delivered != 1 {
		t.Fatal("frame not delivered after link restore")
	}
}

func TestRateChange(t *testing.T) {
	s := sim.New(1)
	topo, _ := PointToPoint(s, LinkConfig{GbpsRate: 100, PropDelay: 0})
	var at sim.Time
	topo.Hosts[1].SetHandler(HandlerFunc(func(f *Frame) { at = s.Now() }))
	topo.Hosts[0].Uplink().SetRateGbps(10) // 10x slower
	topo.Hosts[0].Send(&Frame{Dst: 1, Size: 1000})
	s.Run()
	// 1000B at 10Gbps = 800ns, then 1000B at 100Gbps = 80ns.
	if at != 880 {
		t.Fatalf("delivered at %v, want 880ns", at)
	}
}

func TestStarIncastConvergesAtBottleneck(t *testing.T) {
	s := sim.New(1)
	topo := Star(s, 5, testLink)
	server := topo.Hosts[0]
	delivered := 0
	server.SetHandler(HandlerFunc(func(f *Frame) { delivered++ }))
	for _, h := range topo.Hosts[1:] {
		for i := 0; i < 10; i++ {
			h.Send(&Frame{Dst: server.ID, Size: 1500})
		}
	}
	s.Run()
	if delivered != 40 {
		t.Fatalf("delivered %d, want 40", delivered)
	}
	// The bottleneck is the switch->server port.
	down := topo.ToRs[0].RouteTo(server.ID)[0]
	if down.Stats.MaxQueueBytes < 1500*10 {
		t.Fatalf("bottleneck queue max %d, expected buildup", down.Stats.MaxQueueBytes)
	}
}

func TestClosECMPSpreadsFlows(t *testing.T) {
	s := sim.New(1)
	fabric := LinkConfig{GbpsRate: 100, PropDelay: 2 * time.Microsecond}
	topo := TwoRack(s, 4, 4, testLink, fabric)
	dst := topo.Hosts[4] // other rack
	delivered := 0
	dst.SetHandler(HandlerFunc(func(f *Frame) { delivered++ }))
	// Send 64 flows with distinct hashes; they should spread over spines.
	for hash := uint64(0); hash < 64; hash++ {
		topo.Hosts[0].Send(&Frame{Dst: dst.ID, Size: 1500, FlowHash: hash})
	}
	s.Run()
	if delivered != 64 {
		t.Fatalf("delivered %d, want 64", delivered)
	}
	used := 0
	for _, spine := range topo.Spines {
		if spine.RxFrames > 0 {
			used++
		}
	}
	if used < 3 {
		t.Fatalf("only %d of 4 spines used; ECMP not spreading", used)
	}
}

func TestClosIntraRackStaysLocal(t *testing.T) {
	s := sim.New(1)
	topo := TwoRack(s, 4, 2, testLink, testLink)
	delivered := false
	topo.Hosts[1].SetHandler(HandlerFunc(func(f *Frame) { delivered = true }))
	topo.Hosts[0].Send(&Frame{Dst: 1, Size: 100})
	s.Run()
	if !delivered {
		t.Fatal("intra-rack frame lost")
	}
	for _, spine := range topo.Spines {
		if spine.RxFrames != 0 {
			t.Fatal("intra-rack traffic traversed a spine")
		}
	}
}

func TestSameHashSamePath(t *testing.T) {
	s := sim.New(1)
	topo := TwoRack(s, 2, 4, testLink, testLink)
	dst := topo.Hosts[2]
	dst.SetHandler(HandlerFunc(func(f *Frame) {}))
	for i := 0; i < 50; i++ {
		topo.Hosts[0].Send(&Frame{Dst: dst.ID, Size: 100, FlowHash: 0xabcdef})
	}
	s.Run()
	used := 0
	for _, spine := range topo.Spines {
		if spine.RxFrames > 0 {
			used++
		}
	}
	if used != 1 {
		t.Fatalf("same-hash flow used %d spines, want 1", used)
	}
}

func TestQueueDelayReflectsBacklog(t *testing.T) {
	s := sim.New(1)
	topo, _ := PointToPoint(s, LinkConfig{GbpsRate: 1, PropDelay: 0})
	up := topo.Hosts[0].Uplink()
	topo.Hosts[1].SetHandler(HandlerFunc(func(f *Frame) {}))
	topo.Hosts[0].Send(&Frame{Dst: 1, Size: 1000}) // 8us serialization at 1Gbps
	if d := up.QueueDelay(); d != 8*time.Microsecond {
		t.Fatalf("QueueDelay = %v, want 8us", d)
	}
	s.Run()
	if d := up.QueueDelay(); d != 0 {
		t.Fatalf("QueueDelay after drain = %v", d)
	}
}

func TestHopCount(t *testing.T) {
	s := sim.New(1)
	topo := TwoRack(s, 2, 2, testLink, testLink)
	var hops int
	topo.Hosts[2].SetHandler(HandlerFunc(func(f *Frame) { hops = f.Hops }))
	topo.Hosts[0].Send(&Frame{Dst: 2, Size: 100})
	s.Run()
	if hops != 3 { // ToR, spine, ToR
		t.Fatalf("hops = %d, want 3", hops)
	}
}

func TestECNMarkingBeyondThreshold(t *testing.T) {
	s := sim.New(1)
	link := LinkConfig{GbpsRate: 1, PropDelay: 0, QueueBytes: 1 << 20}
	topo, _ := PointToPoint(s, link)
	up := topo.Hosts[0].Uplink()
	up.SetECNThreshold(3000)
	var marked, clean int
	topo.Hosts[1].SetHandler(HandlerFunc(func(f *Frame) {
		if f.CE {
			marked++
		} else {
			clean++
		}
	}))
	for i := 0; i < 10; i++ {
		topo.Hosts[0].Send(&Frame{Dst: 1, Size: 1500})
	}
	s.Run()
	if marked == 0 {
		t.Fatal("no frames ECN-marked despite queue buildup")
	}
	if clean == 0 {
		t.Fatal("early frames (below threshold) should not be marked")
	}
	if up.Stats.ECNMarks != uint64(marked) {
		t.Fatalf("ECNMarks stat %d != %d delivered marks", up.Stats.ECNMarks, marked)
	}
}

// TestSetDownDepthNesting pins the hold-count semantics of SetDown: two
// overlapping failure schedules each take a hold, and the port only comes
// back when both release. A stray extra release on an up port must not
// drive the depth negative (which would make the next SetDown(true) a
// no-op and silently un-fail a failed port).
func TestSetDownDepthNesting(t *testing.T) {
	s := sim.New(1)
	_, fwd := PointToPoint(s, testLink)
	fwd.SetDown(true) // schedule A
	fwd.SetDown(true) // schedule B overlaps
	fwd.SetDown(false)
	if !fwd.Down() {
		t.Fatal("port released after one of two holds")
	}
	fwd.SetDown(false)
	if fwd.Down() {
		t.Fatal("port still down after both holds released")
	}
	fwd.SetDown(false) // stray release: must clamp at zero
	fwd.SetDown(true)
	if !fwd.Down() {
		t.Fatal("hold after a stray release had no effect: depth went negative")
	}
	fwd.SetDown(false)
	if fwd.Down() {
		t.Fatal("port stuck down after balanced holds")
	}
}

// TestPauseDepthNesting mirrors TestSetDownDepthNesting for host pauses
// and checks both drop counters: a paused host neither sends (PauseTxDrops)
// nor receives (PauseRxDrops), and traffic resumes cleanly once every
// overlapping hold releases.
func TestPauseDepthNesting(t *testing.T) {
	s := sim.New(1)
	topo, _ := PointToPoint(s, testLink)
	src, dst := topo.Hosts[0], topo.Hosts[1]
	dst.SetHandler(HandlerFunc(func(*Frame) {}))

	dst.SetPaused(true) // crash window...
	dst.SetPaused(true) // ...with a pause inside it
	src.Send(&Frame{Dst: 1, Size: 64})
	s.Run()
	if dst.RxFrames != 0 || dst.PauseRxDrops != 1 {
		t.Fatalf("paused host: rx=%d pause_rx_drops=%d, want 0/1", dst.RxFrames, dst.PauseRxDrops)
	}
	dst.SetPaused(false)
	if !dst.Paused() {
		t.Fatal("host resumed after one of two holds")
	}
	src.Send(&Frame{Dst: 1, Size: 64})
	s.Run()
	if dst.PauseRxDrops != 2 {
		t.Fatalf("inner hold alone did not drop: pause_rx_drops=%d", dst.PauseRxDrops)
	}
	dst.SetPaused(false)
	src.Send(&Frame{Dst: 1, Size: 64})
	s.Run()
	if dst.RxFrames != 1 {
		t.Fatalf("host did not resume receiving: rx=%d", dst.RxFrames)
	}

	src.SetPaused(true)
	src.Send(&Frame{Dst: 1, Size: 64})
	if src.PauseTxDrops != 1 || src.SentFrames != 3 {
		t.Fatalf("paused sender: tx_drops=%d sent=%d, want 1/3 (paused sends not counted as sent)",
			src.PauseTxDrops, src.SentFrames)
	}
	src.SetPaused(false)
}

// TestCorruptWindow pins the packet-corruption injection: inside the
// window every frame is lost and attributed to CorruptDrops (not
// RandomDrops), and clearing the probability restores lossless delivery.
func TestCorruptWindow(t *testing.T) {
	s := sim.New(11)
	topo, fwd := PointToPoint(s, testLink)
	topo.Hosts[1].SetHandler(HandlerFunc(func(*Frame) {}))
	fwd.SetCorruptProb(1)
	for i := 0; i < 5; i++ {
		topo.Hosts[0].Send(&Frame{Dst: 1, Size: 64})
	}
	s.Run()
	if topo.Hosts[1].RxFrames != 0 || fwd.Stats.CorruptDrops != 5 {
		t.Fatalf("full-corruption window: rx=%d corrupt_drops=%d, want 0/5",
			topo.Hosts[1].RxFrames, fwd.Stats.CorruptDrops)
	}
	if fwd.Stats.RandomDrops != 0 {
		t.Fatalf("corruption leaked into RandomDrops: %d", fwd.Stats.RandomDrops)
	}
	fwd.SetCorruptProb(0)
	for i := 0; i < 5; i++ {
		topo.Hosts[0].Send(&Frame{Dst: 1, Size: 64})
	}
	s.Run()
	if topo.Hosts[1].RxFrames != 5 || fwd.Stats.CorruptDrops != 5 {
		t.Fatalf("after window cleared: rx=%d corrupt_drops=%d, want 5/5",
			topo.Hosts[1].RxFrames, fwd.Stats.CorruptDrops)
	}
}
