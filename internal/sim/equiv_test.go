package sim

// Scheduler equivalence suite: SchedulerWheel and SchedulerHeap must
// deliver any schedule in the identical (time, seq) order. Each test here
// drives the same deterministic workload through both implementations and
// compares the full delivery stream, plus targeted edge cases at slot
// boundaries, granule/epoch cascades, cancellations and mid-slot RunUntil
// bounds. internal/testkit's sweep tests extend the same check to full
// protocol runs via trace hashes.

import (
	"reflect"
	"testing"
	"time"
)

// recEvt is one delivered event as seen by the observer hook.
type recEvt struct {
	at  Time
	seq uint64
}

type recorder struct{ recs []recEvt }

func (r *recorder) OnEvent(at Time, seq uint64) { r.recs = append(r.recs, recEvt{at, seq}) }

// randomDelay draws from a mixture covering every scheduler region: the
// current slot, exact slot/granule/epoch boundaries, level-0/level-1 spans
// and the far heap.
func randomDelay(intn func(int) int) time.Duration {
	switch intn(10) {
	case 0:
		return 0
	case 1:
		return time.Duration(intn(1 << l0Shift)) // inside one slot
	case 2:
		return time.Duration(1 << (l0Shift + uint(intn(4)))) // slot boundaries
	case 3:
		return time.Duration(intn(1 << l1Shift)) // level-0 span
	case 4:
		return 1 << l1Shift // exact granule boundary
	case 5:
		return time.Duration(1<<l1Shift + intn(1<<(l1Shift+3))) // level-1 span
	case 6:
		return 1 << l2Shift // exact epoch boundary
	case 7:
		return time.Duration(1<<l2Shift + intn(1<<l2Shift)) // far heap
	default:
		return time.Duration(intn(4096))
	}
}

// runWorkload drives a self-expanding random schedule with cancels and
// reschedules on s, returning the delivery stream. All randomness flows
// from s.Rand(), so two simulators with the same seed see the same
// workload exactly when they deliver events in the same order.
func runWorkload(s *Simulator, ops int) []recEvt {
	rec := &recorder{}
	s.SetObserver(rec)
	rng := s.Rand()
	var timers []Timer
	spawned := 0
	var spawn func()
	spawn = func() {
		for i, k := 0, rng.Intn(3); i < k && spawned < ops; i++ {
			spawned++
			timers = append(timers, s.After(randomDelay(rng.Intn), spawn))
		}
		if len(timers) > 0 && rng.Intn(4) == 0 {
			timers[rng.Intn(len(timers))].Stop()
		}
		if len(timers) > 0 && rng.Intn(8) == 0 {
			// Reschedule: cancel one and re-arm at a region boundary.
			i := rng.Intn(len(timers))
			if timers[i].Stop() {
				timers[i] = s.After(randomDelay(rng.Intn), spawn)
			}
		}
	}
	for i := 0; i < 8; i++ {
		spawned++
		timers = append(timers, s.After(time.Duration(i)*97, spawn))
	}
	// Alternate bounded and unbounded draining so RunUntil's mid-slot
	// peek path is exercised alongside Run's pop-only path.
	for t := Time(77_777); s.Pending() > 0 && t < Time(1)<<30; t = t*2 + 13 {
		s.RunUntil(t)
	}
	s.Run()
	return rec.recs
}

func TestWheelHeapEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		wheel := NewWithScheduler(seed, SchedulerWheel)
		gotW := runWorkload(wheel, 3000)
		hp := NewWithScheduler(seed, SchedulerHeap)
		gotH := runWorkload(hp, 3000)
		if len(gotW) == 0 {
			t.Fatalf("seed %d: workload delivered no events", seed)
		}
		if !reflect.DeepEqual(gotW, gotH) {
			n := len(gotW)
			if len(gotH) < n {
				n = len(gotH)
			}
			for i := 0; i < n; i++ {
				if gotW[i] != gotH[i] {
					t.Fatalf("seed %d: delivery diverges at %d: wheel=%+v heap=%+v",
						seed, i, gotW[i], gotH[i])
				}
			}
			t.Fatalf("seed %d: stream lengths differ: wheel=%d heap=%d", seed, len(gotW), len(gotH))
		}
		if wheel.Now() != hp.Now() || wheel.Processed() != hp.Processed() {
			t.Fatalf("seed %d: final state differs: wheel(now=%v n=%d) heap(now=%v n=%d)",
				seed, wheel.Now(), wheel.Processed(), hp.Now(), hp.Processed())
		}
	}
}

// bothSchedulers runs f against a wheel and a heap simulator and compares
// the delivery streams.
func bothSchedulers(t *testing.T, f func(s *Simulator)) {
	t.Helper()
	run := func(k Scheduler) []recEvt {
		s := NewWithScheduler(1, k)
		rec := &recorder{}
		s.SetObserver(rec)
		f(s)
		return rec.recs
	}
	w, h := run(SchedulerWheel), run(SchedulerHeap)
	if !reflect.DeepEqual(w, h) {
		t.Fatalf("wheel and heap delivery differ:\nwheel: %+v\nheap:  %+v", w, h)
	}
}

func TestBoundaryTimesFireInOrder(t *testing.T) {
	// Events pinned to the exact edges of every wheel region, plus
	// duplicates at equal instants to check FIFO tie-breaking.
	ats := []Time{
		0, 1, (1 << l0Shift) - 1, 1 << l0Shift, (1 << l0Shift) + 1,
		(1 << l1Shift) - 1, 1 << l1Shift, (1 << l1Shift) + 1,
		(1 << l2Shift) - 1, 1 << l2Shift, (1 << l2Shift) + 1,
		3 << l2Shift, 1 << l0Shift, 1 << l1Shift, 1 << l2Shift,
	}
	bothSchedulers(t, func(s *Simulator) {
		var fired []Time
		for _, at := range ats {
			at := at
			s.At(at, func() {
				if s.Now() != at {
					t.Errorf("event for %v fired at %v", at, s.Now())
				}
				fired = append(fired, at)
			})
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("delivery went backwards: %v", fired)
			}
		}
		if len(fired) != len(ats) {
			t.Fatalf("fired %d of %d events", len(fired), len(ats))
		}
	})
}

func TestCancelInEveryRegion(t *testing.T) {
	bothSchedulers(t, func(s *Simulator) {
		fired := map[Time]bool{}
		mk := func(at Time) Timer {
			return s.At(at, func() { fired[at] = true })
		}
		keepSlot, killSlot := mk(100), mk(101)
		keepL0, killL0 := mk(1<<l0Shift+5), mk(1<<l0Shift+6)
		keepL1, killL1 := mk(1<<l1Shift+5), mk(1<<l1Shift+6)
		keepFar, killFar := mk(1<<l2Shift+5), mk(1<<l2Shift+6)
		for _, tm := range []Timer{killSlot, killL0, killL1, killFar} {
			if !tm.Stop() {
				t.Fatal("Stop on pending timer reported false")
			}
		}
		if got := s.Pending(); got != 4 {
			t.Fatalf("Pending after cancels = %d, want 4", got)
		}
		s.Run()
		for _, tm := range []Timer{keepSlot, keepL0, keepL1, keepFar} {
			if tm.Pending() {
				t.Fatal("fired timer still pending")
			}
		}
		if len(fired) != 4 {
			t.Fatalf("fired = %v, want the 4 kept timers", fired)
		}
		for at := range fired {
			if at == 101 || at == 1<<l0Shift+6 || at == 1<<l1Shift+6 || at == 1<<l2Shift+6 {
				t.Fatalf("cancelled timer at %v fired", at)
			}
		}
	})
}

func TestRescheduleAcrossRegions(t *testing.T) {
	bothSchedulers(t, func(s *Simulator) {
		var order []int
		// Timer armed far in the future, pulled back to near term.
		tm := s.At(1<<l2Shift+999, func() { order = append(order, 99) })
		tm.Stop()
		s.At(50, func() { order = append(order, 1) })
		s.At(1<<l0Shift, func() { order = append(order, 2) })
		// Re-arm inside a callback, exactly on the next granule edge.
		s.At(60, func() {
			s.At(1<<l1Shift, func() { order = append(order, 3) })
		})
		s.Run()
		want := []int{1, 2, 3}
		if !reflect.DeepEqual(order, want) {
			t.Fatalf("order = %v, want %v", order, want)
		}
	})
}

func TestZeroDelaySelfScheduleDuringDrain(t *testing.T) {
	// A callback scheduling at the current instant must run after every
	// already-pending event at that instant (FIFO by seq), even while the
	// wheel is mid-way through draining the slot's sorted buffer.
	bothSchedulers(t, func(s *Simulator) {
		var order []int
		s.At(100, func() {
			order = append(order, 0)
			s.After(0, func() { order = append(order, 3) })
		})
		s.At(100, func() { order = append(order, 1) })
		s.At(100, func() { order = append(order, 2) })
		s.Run()
		want := []int{0, 1, 2, 3}
		if !reflect.DeepEqual(order, want) {
			t.Fatalf("order = %v, want %v", order, want)
		}
	})
}

func TestRunUntilMidSlotThenEarlierInsert(t *testing.T) {
	// Stop the clock in the middle of a drained slot, then schedule an
	// event that lands before the slot's remaining events: it must merge
	// into the sorted buffer, not append behind it.
	bothSchedulers(t, func(s *Simulator) {
		var order []Time
		note := func() { order = append(order, s.Now()) }
		s.At(100, note)
		s.At(120, note)
		s.RunUntil(105)
		if s.Now() != 105 {
			t.Fatalf("Now = %v, want 105", s.Now())
		}
		s.At(110, note)
		s.Run()
		want := []Time{100, 110, 120}
		if !reflect.DeepEqual(order, want) {
			t.Fatalf("order = %v, want %v", order, want)
		}
	})
}

func TestRunUntilJumpThenShortTimers(t *testing.T) {
	// Advancing the clock far past the wheel's current granule and epoch
	// leaves stale wheel state; subsequent short timers must still fire in
	// order (the pop path re-derives the wheel position from the heap).
	bothSchedulers(t, func(s *Simulator) {
		s.RunUntil(5<<l2Shift + 12345)
		var order []Time
		note := func() { order = append(order, s.Now()) }
		s.After(10, note)
		s.After(1<<l0Shift, note)
		s.After(1<<l1Shift, note)
		s.After(1<<l2Shift, note)
		s.Run()
		if len(order) != 4 {
			t.Fatalf("fired %d of 4", len(order))
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Fatalf("delivery went backwards: %v", order)
			}
		}
	})
}

func TestCascadeAcrossManyEpochs(t *testing.T) {
	// Events sprinkled over several full level-1 revolutions force
	// repeated far-heap refills; interleave cancellations of far events.
	bothSchedulers(t, func(s *Simulator) {
		var fired int
		var cancelled []Timer
		for i := 0; i < 200; i++ {
			at := Time(i) * ((1 << l2Shift) / 16)
			tm := s.At(at, func() { fired++ })
			if i%5 == 0 {
				cancelled = append(cancelled, tm)
			}
		}
		for _, tm := range cancelled {
			tm.Stop()
		}
		s.Run()
		if want := 200 - len(cancelled); fired != want {
			t.Fatalf("fired = %d, want %d", fired, want)
		}
	})
}

func TestStopAfterRecycleIsInert(t *testing.T) {
	// A Timer whose event has fired and been recycled into a new event
	// must not cancel the new event (generation check).
	s := NewWithScheduler(1, SchedulerWheel)
	stale := s.After(0, func() {})
	s.Run()
	fired := false
	fresh := s.After(10, func() { fired = true })
	if stale.Stop() {
		t.Fatal("stale Stop reported true")
	}
	if !fresh.Pending() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	s.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}
