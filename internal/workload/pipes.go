package workload

import (
	"time"

	"falcon/internal/rdma"
	"falcon/internal/sim"
	"falcon/internal/swtransport"
)

// FalconPipe adapts an RDMA QP to the migration Pipe interface: bulk
// transfers are large writes, fetches are small reads.
type FalconPipe struct {
	sim *sim.Simulator
	qp  *rdma.QP
	// ChunkBytes bounds a single Transfer's write size (segmentation is
	// below in the ULP; this bounds TL resource usage).
	ChunkBytes int
}

// NewFalconPipe wraps a QP whose peer has registered (size-only) memory.
func NewFalconPipe(s *sim.Simulator, qp *rdma.QP) *FalconPipe {
	return &FalconPipe{sim: s, qp: qp, ChunkBytes: 256 << 10}
}

// Transfer implements Pipe via chunked RDMA writes.
func (p *FalconPipe) Transfer(n int, done func()) {
	if n <= 0 {
		done()
		return
	}
	var next func(off int)
	next = func(off int) {
		if off >= n {
			done()
			return
		}
		chunk := n - off
		if chunk > p.ChunkBytes {
			chunk = p.ChunkBytes
		}
		if err := p.qp.Write(0, 0, nil, chunk, func(c rdma.Completion) {
			next(off + chunk)
		}); err != nil {
			p.sim.After(20*time.Microsecond, func() { next(off) })
		}
	}
	next(0)
}

// Fetch implements Pipe via a single RDMA read.
func (p *FalconPipe) Fetch(n int, done func()) {
	if err := p.qp.Read(0, 0, n, func(c rdma.Completion) { done() }); err != nil {
		p.sim.After(20*time.Microsecond, func() { p.Fetch(n, done) })
	}
}

// SWPipe adapts a software-transport connection to the Pipe interface.
type SWPipe struct {
	conn *swtransport.Conn
}

// NewSWPipe wraps a software-transport connection.
func NewSWPipe(c *swtransport.Conn) *SWPipe { return &SWPipe{conn: c} }

// Transfer implements Pipe.
func (p *SWPipe) Transfer(n int, done func()) { p.conn.Send(n, done) }

// Fetch implements Pipe (request/response round trip).
func (p *SWPipe) Fetch(n int, done func()) { p.conn.Call(64, n, done) }
