// Package testkit is the deterministic verification harness for the Falcon
// simulator: protocol invariant checkers, streaming trace hashing, and a
// randomized fault-sweep runner. It exists so that every property the paper
// claims — reliable exactly-once delivery, ordering, bounded windows,
// deterministic replay — is checked continuously by machine rather than
// asserted once in prose.
//
// # Components
//
//   - TraceHasher folds every observable event of a run (scheduler events,
//     wire frames, PDL sends/receives with post-state, TL serves and
//     completions) into one streaming FNV-1a digest. Two runs are
//     behaviourally identical iff their digests match, which turns the
//     repository's "fixed seed → bit-for-bit reproducible" claim into a
//     single comparable integer.
//
//   - Checker re-validates the PDL and TL state machines after every probed
//     event: congestion-window enforcement, TX window bounds and scoreboard
//     consistency, RX bitmap/base coherence, monotone cumulative ACKs, and
//     exactly-once (in-order, for ordered connections) ULP interaction. A
//     violation panics with a full connection dump unless a FailFunc is
//     installed.
//
//   - Run / Matrix execute fault-sweep scenarios: a closed-loop workload
//     over a two-node cluster under combinations of random drop, reordering,
//     link degrade, RNR pressure, and resource exhaustion, with the checker
//     and hasher attached everywhere and post-run quiescence asserted
//     (nothing outstanding, every resource reservation returned).
//
// # Attaching probes
//
// All hooks are nil-checked single slots, costing one predictable branch
// when unattached, so they are compiled into production simulation paths
// without measurable overhead:
//
//	s.SetObserver(hasher)                      // scheduler events
//	host.SetTap(hasher.TapFrame)               // wire frames at NIC ingress
//	conn.SetProbe(testkit.PDLProbes(chk, h))   // pdl.Conn: sends + receives
//	tlc.SetProbe(testkit.TLProbes(chk, h))     // tl.Conn: serves + completions
//
// PDLProbes/TLProbes fan one slot out to several receivers. See DESIGN.md's
// "Verification" section for the invariant catalogue and the trace-record
// format.
package testkit
