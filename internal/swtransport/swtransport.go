// Package swtransport models the software transport baselines the paper
// compares Falcon against: Pony Express (Snap's transport, Figure 1,
// Figure 20a, Figure 29) and the legacy kernel-TCP stack used by the MPI
// baseline (Figures 25–31).
//
// A software transport's defining constraints are CPU-side, not wire-side:
// every operation consumes per-core CPU time (bounding op rate at
// cores/PerOpCost), traverses the stack (fixed latency), and occasionally
// eats a scheduling hiccup (the long tail the paper's Figure 1 shows at
// 10x Falcon's). The wire itself is the same netsim fabric Falcon uses.
// Loss handling is omitted: the experiments that use these baselines run on
// unimpaired paths.
package swtransport

import (
	"time"

	"falcon/internal/netsim"
	"falcon/internal/sim"
)

// Profile characterizes one software stack.
type Profile struct {
	Name string
	// PerOpCost is the CPU time one operation costs on one core.
	PerOpCost time.Duration
	// PerByteCostNs is the additional CPU time per payload byte in
	// nanoseconds (memory copies, checksums): the term that caps a
	// software stack's bandwidth well below the wire.
	PerByteCostNs float64
	// Cores is the number of cores the transport may use.
	Cores int
	// StackLatency is the fixed one-way stack traversal latency.
	StackLatency time.Duration
	// JitterEvery and JitterDelay model scheduling hiccups: every N-th
	// op (per node) is delayed by JitterDelay. This produces the heavy
	// p99 tail software stacks exhibit.
	JitterEvery int
	JitterDelay time.Duration
	// MaxGbps caps per-connection throughput (memory copies, single
	// path).
	MaxGbps float64
	// MTU segments large transfers on the wire.
	MTU int
}

// PonyExpress returns the optimized-userspace-transport profile: ~24 Mops
// aggregate (Figure 1 shows Falcon at ~5x this) with a scheduling tail.
func PonyExpress() Profile {
	return Profile{
		Name:          "pony-express",
		PerOpCost:     330 * time.Nanosecond,
		PerByteCostNs: 0.5,
		Cores:         8,
		StackLatency:  3 * time.Microsecond,
		JitterEvery:   200,
		JitterDelay:   40 * time.Microsecond,
		MaxGbps:       100,
		MTU:           4096,
	}
}

// TCP returns the kernel-stack profile used by the legacy MPI baseline:
// much higher per-message cost (syscalls, interrupts) and deeper stack
// latency.
func TCP() Profile {
	return Profile{
		Name:          "tcp",
		PerOpCost:     2 * time.Microsecond,
		PerByteCostNs: 0.8,
		Cores:         8,
		StackLatency:  12 * time.Microsecond,
		JitterEvery:   100,
		JitterDelay:   80 * time.Microsecond,
		MaxGbps:       60,
		MTU:           4096,
	}
}

// msg is the wire payload. It doubles as the pooled receive-side CPU
// completion (sim.Action): the receiving node stamps itself into rnode,
// schedules the msg at its CPU-admission time, and RunAction delivers and
// recycles it into that node's free list.
type msg struct {
	conn    uint32
	last    bool
	bytes   int // this fragment's payload
	total   int // whole message payload
	deliver func()

	rnode *Node
	next  *msg
}

func (m *msg) RunAction() {
	n := m.rnode
	if m.deliver != nil {
		n.sim.After(n.profile.StackLatency, m.deliver)
	}
	n.freeMsg(m)
}

// msgPoolCap bounds a node's msg free list: with one-way traffic the
// receiver recycles msgs it will never itself send, and an uncapped list
// would grow with total message count.
const msgPoolCap = 1024

// Node is one host's software transport instance.
type Node struct {
	sim     *sim.Simulator
	host    *netsim.Host
	profile Profile

	coreFree []sim.Time
	opCount  uint64

	// Free lists for the per-op objects (wire msgs, send continuations,
	// paced frame emissions); see the type comments.
	msgFree  *msg
	msgPool  int
	xmitFree *xmit
	emitFree *frameSend

	// Stats
	Ops uint64
}

func (n *Node) getMsg() *msg {
	m := n.msgFree
	if m == nil {
		return &msg{}
	}
	n.msgFree = m.next
	n.msgPool--
	m.next = nil
	return m
}

func (n *Node) freeMsg(m *msg) {
	if n.msgPool >= msgPoolCap {
		return
	}
	m.deliver = nil
	m.rnode = nil
	m.next = n.msgFree
	n.msgFree = m
	n.msgPool++
}

// NewNode attaches a software transport to a fabric host.
func NewNode(s *sim.Simulator, host *netsim.Host, p Profile) *Node {
	if p.Cores <= 0 {
		p.Cores = 1
	}
	if p.MTU <= 0 {
		p.MTU = 4096
	}
	n := &Node{sim: s, host: host, profile: p, coreFree: make([]sim.Time, p.Cores)}
	host.SetHandler(n)
	return n
}

// HandleFrame implements netsim.Handler: receiver-side CPU processing.
// There is no loss or duplication in this model, so a msg arrives exactly
// once and can be recycled as soon as it is consumed.
func (n *Node) HandleFrame(f *netsim.Frame) {
	m, ok := f.Payload.(*msg)
	if !ok {
		return
	}
	if !m.last {
		n.freeMsg(m)
		return // only the final fragment pays the op cost & completes
	}
	m.rnode = n
	n.sim.AtAction(n.admit(m.total), m)
}

// admit runs the transport's CPU admission for one op and returns when its
// processing completes: earliest-free core plus the per-op and per-byte
// cost, with periodic scheduling jitter.
func (n *Node) admit(bytes int) sim.Time {
	n.Ops++
	n.opCount++
	best := 0
	for i, f := range n.coreFree {
		if f < n.coreFree[best] {
			best = i
		}
	}
	start := n.sim.Now()
	if n.coreFree[best] > start {
		start = n.coreFree[best]
	}
	cost := n.profile.PerOpCost + time.Duration(float64(bytes)*n.profile.PerByteCostNs)
	if n.profile.JitterEvery > 0 && n.opCount%uint64(n.profile.JitterEvery) == 0 {
		cost += n.profile.JitterDelay
	}
	done := start.Add(cost)
	n.coreFree[best] = done
	return done
}

// cpu schedules fn after CPU admission (non-pooled callers).
func (n *Node) cpu(bytes int, fn func()) {
	n.sim.At(n.admit(bytes), fn)
}

// CPUBacklog returns how far the busiest core is scheduled into the
// future, a load signal for benchmarks.
func (n *Node) CPUBacklog() time.Duration {
	max := sim.Time(0)
	for _, f := range n.coreFree {
		if f > max {
			max = f
		}
	}
	now := n.sim.Now()
	if max <= now {
		return 0
	}
	return max.Sub(now)
}

// Conn is a software-transport connection.
type Conn struct {
	node *Node
	peer *Node
	id   uint32

	nextSend sim.Time
}

// Connect creates a connection between two software-transport nodes.
func Connect(a, b *Node, id uint32) *Conn {
	return &Conn{node: a, peer: b, id: id}
}

// xmit is the pooled sender-side CPU completion of a Send: transmit once
// the CPU has processed the op.
type xmit struct {
	c    *Conn
	n    int
	done func()
	next *xmit
}

func (x *xmit) RunAction() {
	c, n, done := x.c, x.n, x.done
	x.c, x.done = nil, nil
	x.next = c.node.xmitFree
	c.node.xmitFree = x
	c.transmit(n, done)
}

// Send transfers n bytes one way; done fires when the receiver's stack has
// delivered the message to the application.
func (c *Conn) Send(n int, done func()) {
	x := c.node.xmitFree
	if x == nil {
		x = &xmit{}
	} else {
		c.node.xmitFree = x.next
	}
	x.c, x.n, x.done = c, n, done
	c.node.sim.AtAction(c.node.admit(n), x)
}

// Call performs a request-response op: n bytes out, respBytes back; done
// fires when the response lands at the caller.
func (c *Conn) Call(n, respBytes int, done func()) {
	c.Send(n, func() {
		// Response path from the peer.
		reverse := &Conn{node: c.peer, peer: c.node, id: c.id}
		reverse.Send(respBytes, done)
	})
}

// frameSend is the pooled paced emission of one frame onto the wire.
type frameSend struct {
	node  *Node
	frame *netsim.Frame
	next  *frameSend
}

func (fs *frameSend) RunAction() {
	n, f := fs.node, fs.frame
	fs.frame = nil
	fs.next = n.emitFree
	n.emitFree = fs
	n.host.Send(f)
}

// transmit segments and paces a message onto the wire.
func (c *Conn) transmit(n int, done func()) {
	p := c.node.profile
	now := c.node.sim.Now()
	if c.nextSend < now {
		c.nextSend = now
	}
	remaining := n
	for {
		seg := remaining
		if seg > p.MTU {
			seg = p.MTU
		}
		remaining -= seg
		last := remaining <= 0
		m := c.node.getMsg()
		m.conn, m.last, m.bytes, m.total, m.deliver = c.id, last, seg, n, done
		frame := c.node.host.NewFrame()
		frame.Dst = c.peer.host.ID
		frame.FlowHash = uint64(c.id) // single path
		frame.Size = seg + 66         // TCP/IP + Ethernet headers
		frame.Payload = m
		// Pace at the stack's throughput cap.
		gap := time.Duration(float64(seg+66) * 8 / p.MaxGbps)
		at := c.nextSend
		c.nextSend = c.nextSend.Add(gap)
		fs := c.node.emitFree
		if fs == nil {
			fs = &frameSend{node: c.node}
		} else {
			c.node.emitFree = fs.next
		}
		fs.frame = frame
		c.node.sim.AtAction(at.Add(p.StackLatency), fs)
		if last {
			break
		}
	}
}
