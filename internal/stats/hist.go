package stats

import (
	"math"
	"math/bits"
	"time"
)

// Log-linear histogram layout. Values below 2^subBits land in unit-wide
// buckets; above that, each power-of-two octave is split into 2^subBits
// equal sub-buckets, bounding the relative quantile error at 2^-subBits
// (6.25%). This is the HdrHistogram bucketing scheme restricted to integer
// counts, chosen because every operation — recording and quantile
// extraction — is pure integer math with no data-dependent branching, so
// identical sample multisets always produce identical quantiles regardless
// of arrival order.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits // sub-buckets per octave

	// 64-bit values need bits.Len64(v)-histSubBits octaves beyond the
	// linear region; the last octave (shift 59) tops out at index
	// 60*16 + 15 = 975, so 976 buckets cover the full uint64 range.
	histBuckets = (64-histSubBits)*histSubCount + histSubCount
)

// histIndex maps a value to its bucket. Values in [0, 16) get exact
// buckets; larger values share a bucket with at most 1/16 relative spread.
func histIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	shift := bits.Len64(v) - histSubBits - 1
	return int(uint64(shift+1)*histSubCount + (v >> uint(shift)) - histSubCount)
}

// histLow returns the smallest value mapped to bucket i.
func histLow(i int) uint64 {
	if i < histSubCount {
		return uint64(i)
	}
	shift := uint(i/histSubCount - 1)
	off := uint64(i%histSubCount + histSubCount)
	return off << shift
}

// histHigh returns the largest value mapped to bucket i.
func histHigh(i int) uint64 {
	if i < histSubCount {
		return uint64(i)
	}
	shift := uint(i/histSubCount - 1)
	return histLow(i) + (1 << shift) - 1
}

// Histogram is a fixed-size log-linear histogram over non-negative integer
// samples (typically nanosecond latencies or byte counts). The zero value
// is ready to use. Recording touches only the embedded arrays — no
// allocation, ever — which is what lets telemetry leave histograms armed in
// protocol hot paths. Quantiles are bounded-error: the returned value is
// the upper edge of the bucket holding the nearest-rank sample, clamped to
// the exact observed [Min, Max], so it never exceeds the true quantile by
// more than 6.25%.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.counts[histIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// RecordDuration records a duration sample in nanoseconds. Negative
// durations clamp to zero.
func (h *Histogram) RecordDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the p-th percentile (0 < p <= 100) by nearest rank over
// the bucketed samples. The result is the containing bucket's upper edge
// clamped to the observed extremes.
func (h *Histogram) Quantile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(NearestRank(int(h.count), p))
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			v := histHigh(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// QuantileDuration is Quantile for duration-valued histograms.
func (h *Histogram) QuantileDuration(p float64) time.Duration {
	return time.Duration(h.Quantile(p))
}

// Reset clears the histogram for reuse without releasing its storage.
func (h *Histogram) Reset() {
	h.counts = [histBuckets]uint64{}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
}

// NearestRank maps a percentile (0 < p <= 100) over n samples to a
// zero-based index into the sorted sample set, per the nearest-rank
// definition: ceil(p/100*n) - 1, clamped to [0, n-1]. Series.Percentile
// and Histogram.Quantile share this so the two report identical ranks for
// identical sample multisets.
func NearestRank(n int, p float64) int {
	if n <= 0 {
		return 0
	}
	rank := int(math.Ceil(p/100*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return rank
}
