package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"
)

// fuzzSeeds returns marshaled packets covering every type and exception
// path, used both as fuzz corpus seeds and as the base buffers for the
// deterministic corruption sweeps.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	add := func(p *Packet) { seeds = append(seeds, p.Marshal(nil)) }

	add(samplePacket())
	add(&Packet{Type: TypePushData, Space: SpaceRequest, PSN: 1, RSN: 1,
		Length: 9, Data: []byte("payloaded")})
	add(&Packet{Type: TypePullRequest, Space: SpaceRequest, PullLength: 4096,
		UlpOp: 7, Addr: 1 << 47})
	add(&Packet{Type: TypePullResponse, Space: SpaceResponse, RSN: 99, Length: 512})
	add(&Packet{Type: TypeNack, NackCode: NackRNR,
		RetryDelayNs: uint32(20 * time.Microsecond)})
	add(&Packet{Type: TypeNack, NackCode: NackResourceExhausted, PSN: 17})
	add(&Packet{Type: TypeNack, NackCode: NackCIE, RSN: 3})
	add(&Packet{Type: TypeResync, PSN: 1 << 30})
	// Truncated and oversized variants.
	seeds = append(seeds, seeds[0][:HeaderLen()-1], append(append([]byte(nil), seeds[0]...), 0xFF))
	return seeds
}

// FuzzUnmarshal asserts the parser never panics on arbitrary input and that
// every accepted input re-marshals to the exact bytes it consumed (the
// parser and serializer agree on the format).
func FuzzUnmarshal(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		n, err := p.Unmarshal(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v but consumed %d bytes", err, n)
			}
			return
		}
		if n < HeaderLen() || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		out := p.Marshal(nil)
		if !bytes.Equal(out, data[:n]) {
			t.Fatalf("re-marshal disagrees with consumed bytes:\n got %x\nwant %x", out, data[:n])
		}
		var q Packet
		m, err := q.Unmarshal(out)
		if err != nil || m != n {
			t.Fatalf("re-unmarshal: n=%d err=%v", m, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("re-unmarshal mismatch:\n got %+v\nwant %+v", q, p)
		}
	})
}

// TestNackRoundTripExhaustive round-trips every NACK code crossed with both
// sequence spaces and representative retry delays.
func TestNackRoundTripExhaustive(t *testing.T) {
	codes := []NackCode{NackNone, NackResourceExhausted, NackRNR, NackCIE, NackXoff}
	delays := []uint32{0, 1, uint32(20 * time.Microsecond), 1<<32 - 1}
	for _, code := range codes {
		for space := Space(0); space < NumSpaces; space++ {
			for _, d := range delays {
				p := Packet{
					Type:         TypeNack,
					NackCode:     code,
					Space:        space,
					RetryDelayNs: d,
					PSN:          1234,
					RSN:          5678,
				}
				var q Packet
				if _, err := q.Unmarshal(p.Marshal(nil)); err != nil {
					t.Fatalf("%v/%v/%d: %v", code, space, d, err)
				}
				if q.NackCode != code || q.Space != space || q.RetryDelayNs != d {
					t.Fatalf("%v/%v/%d round-tripped as %v/%v/%d",
						code, space, d, q.NackCode, q.Space, q.RetryDelayNs)
				}
			}
		}
	}
}

// TestFlagsRoundTripExhaustive round-trips every combination of the defined
// flag bits (the AR bit in particular drives ACK generation timing, so its
// integrity on the wire matters for protocol behavior).
func TestFlagsRoundTripExhaustive(t *testing.T) {
	all := FlagAckReq | FlagRetransmit | FlagTLP | FlagOrdered | FlagCE | FlagECE
	for flags := 0; flags <= int(all); flags++ {
		p := Packet{Type: TypePushData, Flags: uint8(flags)}
		var q Packet
		if _, err := q.Unmarshal(p.Marshal(nil)); err != nil {
			t.Fatalf("flags %#x: %v", flags, err)
		}
		if q.Flags != uint8(flags) {
			t.Fatalf("flags %#x round-tripped as %#x", flags, q.Flags)
		}
		if (flags&int(FlagAckReq) != 0) != (q.Flags&FlagAckReq != 0) {
			t.Fatalf("AR bit lost at flags %#x", flags)
		}
	}
}

// TestUnmarshalBadSpace verifies a corrupt sequence-space byte is rejected
// at the parser rather than panicking in the PDL's per-space indexing.
func TestUnmarshalBadSpace(t *testing.T) {
	buf := samplePacket().Marshal(nil)
	for _, b3 := range []byte{NumSpaces, NumSpaces + 1, 0x7F, 0xFF} {
		buf[3] = b3
		var p Packet
		if _, err := p.Unmarshal(buf); !errors.Is(err, ErrBadSpace) {
			t.Fatalf("space byte %d: err = %v, want ErrBadSpace", b3, err)
		}
	}
}

// TestUnmarshalCorruptionSweep flips every bit of every header byte of each
// seed packet and asserts the parser either rejects the buffer or parses it
// into a packet that re-marshals consistently — never panics.
func TestUnmarshalCorruptionSweep(t *testing.T) {
	for _, seed := range fuzzSeeds() {
		for i := 0; i < len(seed) && i < HeaderLen(); i++ {
			for bit := 0; bit < 8; bit++ {
				buf := append([]byte(nil), seed...)
				buf[i] ^= 1 << bit
				var p Packet
				n, err := p.Unmarshal(buf)
				if err != nil {
					continue
				}
				if out := p.Marshal(nil); !bytes.Equal(out, buf[:n]) {
					t.Fatalf("byte %d bit %d: accepted parse does not re-marshal", i, bit)
				}
			}
		}
	}
}

// TestUnmarshalTruncationSweep feeds every prefix of a payload-bearing
// packet to the parser: short headers must error, truncated payloads must
// fall back to header-only parsing.
func TestUnmarshalTruncationSweep(t *testing.T) {
	p := samplePacket()
	p.Type = TypePushData
	p.Data = bytes.Repeat([]byte{0xA5}, 64)
	p.Length = uint32(len(p.Data))
	full := p.Marshal(nil)
	for n := 0; n <= len(full); n++ {
		var q Packet
		consumed, err := q.Unmarshal(full[:n])
		switch {
		case n < HeaderLen():
			if !errors.Is(err, ErrShortBuffer) {
				t.Fatalf("prefix %d: err = %v, want ErrShortBuffer", n, err)
			}
		case n < len(full):
			// Header parses; payload incomplete → header-only semantics.
			if err != nil || consumed != HeaderLen() || q.Data != nil {
				t.Fatalf("prefix %d: n=%d data=%v err=%v", n, consumed, q.Data, err)
			}
		default:
			if err != nil || consumed != len(full) || !bytes.Equal(q.Data, p.Data) {
				t.Fatalf("full: n=%d err=%v", consumed, err)
			}
		}
	}
}
