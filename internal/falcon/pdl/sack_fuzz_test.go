package pdl

import (
	"math/bits"
	"testing"

	"falcon/internal/falcon/wire"
)

// FuzzSACKScan differentially tests the word-at-a-time SACK scoreboard
// scan the recovery path uses (LowMask window clamp, AndNot masking,
// TrailingZeros64 set-bit iteration) against the obvious per-PSN loop it
// replaced, across arbitrary bitmap contents, window widths, and TX bases
// including uint32 PSN wrap. The two iterations must visit exactly the
// same PSNs in exactly the same (ascending-offset) order, and the scalar
// bitmap reductions (LeadingRun, HighestSet, OnesCount) must agree with
// their bit-by-bit definitions.
func FuzzSACKScan(f *testing.F) {
	f.Add(uint32(0), uint64(0), uint64(0), uint64(0), uint64(0), uint16(0))
	f.Add(uint32(100), ^uint64(0), ^uint64(0), uint64(0), uint64(0), uint16(128))
	f.Add(uint32(0xffffffff), uint64(0x5555555555555555), uint64(0xaaaaaaaaaaaaaaaa), uint64(0xff), uint64(0), uint16(128))
	f.Add(uint32(0xfffffff0), uint64(1)<<63, uint64(1), uint64(0), uint64(1)<<63, uint16(90))
	f.Add(uint32(0xfffffffe), uint64(0xdeadbeefcafebabe), uint64(0x0123456789abcdef), uint64(0xffff0000ffff0000), uint64(3), uint16(300))
	f.Add(uint32(7), uint64(0), uint64(1)<<63, uint64(0), uint64(0), uint16(127))

	f.Fuzz(func(t *testing.T, base uint32, s0, s1, a0, a1 uint64, winRaw uint16) {
		win := int(winRaw) % (wire.BitmapBits + 16) // exercise the >128 clamp too
		sacked := wire.Bitmap{s0, s1}
		acked := wire.Bitmap{a0, a1}

		// Word path, exactly as recovery.go iterates a scoreboard: clamp
		// the candidate set to the live window, mask out acked PSNs, then
		// walk set bits ascending with TrailingZeros64.
		notWin := wire.LowMask(wire.BitmapBits).AndNot(wire.LowMask(win))
		cand := sacked.AndNot(acked).AndNot(notWin)
		var fast []uint32
		for k := 0; k < 2; k++ {
			hi := 64 * k
			for w := cand[k]; w != 0; w &= w - 1 {
				o := hi + bits.TrailingZeros64(w)
				fast = append(fast, base+uint32(o))
			}
		}

		// Naive path: test every PSN offset in the window one bit at a
		// time.
		var slow []uint32
		for i := 0; i < win && i < wire.BitmapBits; i++ {
			if sacked.Get(i) && !acked.Get(i) {
				slow = append(slow, base+uint32(i))
			}
		}

		if len(fast) != len(slow) {
			t.Fatalf("scan length: word %d naive %d (sacked=%v acked=%v win=%d base=%#x)",
				len(fast), len(slow), sacked, acked, win, base)
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("scan[%d]: word %#x naive %#x (sacked=%v acked=%v win=%d base=%#x)",
					i, fast[i], slow[i], sacked, acked, win, base)
			}
		}

		// Scalar reductions against their definitions.
		run := 0
		for run < wire.BitmapBits && sacked.Get(run) {
			run++
		}
		if got := sacked.LeadingRun(); got != run {
			t.Fatalf("LeadingRun: word %d naive %d (%v)", got, run, sacked)
		}
		highest := -1
		for i := 0; i < wire.BitmapBits; i++ {
			if sacked.Get(i) {
				highest = i
			}
		}
		if got := sacked.HighestSet(); got != highest {
			t.Fatalf("HighestSet: word %d naive %d (%v)", got, highest, sacked)
		}
		ones := 0
		for i := 0; i < wire.BitmapBits; i++ {
			if sacked.Get(i) {
				ones++
			}
		}
		if got := sacked.OnesCount(); got != ones {
			t.Fatalf("OnesCount: word %d naive %d (%v)", got, ones, sacked)
		}

		// ShiftRight (base advance) against a per-bit model.
		shift := win % (wire.BitmapBits + 8)
		shifted := sacked
		shifted.ShiftRight(shift)
		for i := 0; i < wire.BitmapBits; i++ {
			want := sacked.Get(i + shift)
			if shift <= 0 {
				want = sacked.Get(i)
			}
			if shifted.Get(i) != want {
				t.Fatalf("ShiftRight(%d) bit %d: got %v want %v (%v)", shift, i, shifted.Get(i), want, sacked)
			}
		}
	})
}
