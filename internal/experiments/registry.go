package experiments

import "time"

// Entry is one runnable experiment: a paper table or figure plus the
// ablations. cmd/falconbench selects entries by name regex; the runner in
// runner.go executes them serially or across a worker pool.
type Entry struct {
	Name string
	Desc string
	Run  func(quick bool) *Table
}

// windows returns the measurement duration for normal vs quick runs.
func windows(full, quick time.Duration) func(bool) time.Duration {
	return func(q bool) time.Duration {
		if q {
			return quick
		}
		return full
	}
}

// registry lists every experiment in presentation order. Each entry builds
// its simulators from scratch on every call (fresh *sim.Simulator and RNG
// per run), which is what makes the set embarrassingly parallel: entries
// share no mutable state, so the worker pool may run any subset
// concurrently without changing a single table cell.
var registry = []Entry{
	{"fig1", "HW vs SW op rate and tail latency", func(q bool) *Table {
		return Fig1(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig3", "transport multipath vs app-level connections", func(q bool) *Table {
		return Fig3(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig10", "goodput under losses per op type", func(q bool) *Table {
		return Fig10(windows(8*time.Millisecond, 3*time.Millisecond)(q))
	}},
	{"fig11a", "goodput under reordering", func(q bool) *Table {
		return Fig11a(windows(8*time.Millisecond, 3*time.Millisecond)(q))
	}},
	{"fig11b", "RACK-TLP vs OOO-distance", func(q bool) *Table {
		return Fig11b(windows(10*time.Millisecond, 4*time.Millisecond)(q))
	}},
	{"fig12", "RoCE modes under losses", func(q bool) *Table {
		return Fig12(windows(8*time.Millisecond, 3*time.Millisecond)(q))
	}},
	{"fig13", "incast congestion control", func(q bool) *Table {
		return Fig13(windows(8*time.Millisecond, 4*time.Millisecond)(q))
	}},
	{"fig14", "end-host congestion (PCIe downgrade)", func(q bool) *Table {
		return Fig14(windows(3*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig15", "multipath latency/goodput vs load (fig16 series included)", func(q bool) *Table {
		return Fig15(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig17", "path scheduling policy", func(q bool) *Table {
		return Fig17(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig18", "ML training comm time (multipath)", func(q bool) *Table {
		return Fig18()
	}},
	{"fig19", "message size scaling", func(q bool) *Table {
		return Fig19()
	}},
	{"fig20a", "read-incast bandwidth scaling vs SW", func(q bool) *Table {
		return Fig20a(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig20b", "op-rate scaling vs QP count", func(q bool) *Table {
		return Fig20b(windows(3*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig21", "connection-count RTT cliff", func(q bool) *Table {
		return Fig21()
	}},
	{"fig22a", "FAE event rate vs connections", func(q bool) *Table {
		return Fig22a()
	}},
	{"fig22b", "impact of slow FAE", func(q bool) *Table {
		return Fig22b(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig23", "FAE state-size sensitivity", func(q bool) *Table {
		return Fig23()
	}},
	{"fig24", "isolation via backpressure", func(q bool) *Table {
		return Fig24(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"fig25", "MPI AllReduce vs TCP", func(q bool) *Table {
		return Fig25()
	}},
	{"fig26", "MPI AllToAll vs TCP", func(q bool) *Table {
		return Fig26()
	}},
	{"fig27", "GROMACS-like scaling", func(q bool) *Table {
		return Fig27()
	}},
	{"fig28", "WRF-like scaling", func(q bool) *Table {
		return Fig28()
	}},
	{"fig29", "VM live migration vs Pony Express", func(q bool) *Table {
		return Fig29()
	}},
	{"fig30", "MPI AllGather vs TCP", func(q bool) *Table {
		return Fig30()
	}},
	{"fig31", "MPI MultiPingPong vs TCP", func(q bool) *Table {
		return Fig31()
	}},
	{"table4", "Near Local Flash vs local SSD", func(q bool) *Table {
		return Table4(windows(20*time.Millisecond, 8*time.Millisecond)(q))
	}},
	{"ecn", "ablation: ECN as a supplementary CC signal", func(q bool) *Table {
		return AblationECN(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{"psp", "ablation: PSP inline-encryption overhead", func(q bool) *Table {
		return AblationPSP(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
}

// Registry returns every experiment in presentation order.
func Registry() []Entry { return registry }
