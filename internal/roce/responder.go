package roce

import (
	"falcon/internal/netsim"
)

// Responder is the server side of a QP: it enforces the mode's receive
// ordering for the request stream, generates read responses, and serves as
// the retransmission source for the response stream.
type Responder struct {
	node *Node
	cfg  Config
	id   uint32
	dst  netsim.NodeID

	// Request stream receiver state.
	expectedReq uint32
	reqBuf      map[uint32]*packet // SR/AR out-of-order buffer
	nakArmed    bool

	// Response stream sender state.
	nextResp uint32
	respUna  uint32
	respPkts map[uint32]*txPkt
	// respOf maps a read request PSN to the [start, count] of response
	// PSNs it generated, so duplicate requests re-trigger the responses
	// (the only read-recovery path in AR mode).
	respOf map[uint32][2]uint32

	// Stats
	Stats struct {
		DeliveredBytes uint64 // payload placed into host memory
		DroppedOOO     uint64 // packets discarded for arriving out of order
		NaksSent       uint64
		RespSent       uint64
		RespRetx       uint64
	}
}

// handle processes packets arriving at the responder.
func (r *Responder) handle(p *packet) {
	switch p.Type {
	case ptProbe:
		r.node.send(r.dst, &packet{Type: ptProbeResp, QP: r.id, T1: p.T1}, r.hash())
	case ptNak:
		if p.Stream == streamResp {
			r.handleRespNak(p)
		}
	case ptAck:
		// Response-stream cumulative ack from the client (piggybacked
		// model: the client's progress is implicit; responses are
		// garbage-collected when the window recycles).
		r.gcResponses(p.AckPSN)
	case ptWrite, ptSend, ptReadReq:
		r.handleRequest(p)
	}
}

func (r *Responder) hash() uint64 { return uint64(r.id)<<20 | 0xa5a5 }

// handleRequest applies the mode's ordering rules (§2, §6.1.1).
func (r *Responder) handleRequest(p *packet) {
	// Host-interface backpressure: unlike Falcon (whose ncwnd throttles
	// the sender before the buffer fills), a RoCE NIC without PFC drops
	// incoming data once its RX buffer is exhausted by a slow host
	// (Figure 14's contrast).
	if n := r.node.nic; n != nil && (p.Type == ptWrite || p.Type == ptSend) {
		if n.RxOccupancy() >= 1 {
			r.Stats.DroppedOOO++
			return
		}
	}
	switch {
	case p.PSN == r.expectedReq:
		r.accept(p, false)
		r.nakArmed = false
		for {
			nxt, ok := r.reqBuf[r.expectedReq]
			if !ok {
				break
			}
			delete(r.reqBuf, r.expectedReq)
			r.accept(nxt, true)
		}
		r.sendAck()
	case p.PSN < r.expectedReq:
		// Duplicate (e.g. a go-back-N rewind overlap): re-ack, and for
		// read requests re-send their responses — the requester only
		// retransmits a request when responses went missing.
		if p.Type == ptReadReq {
			if span, ok := r.respOf[p.PSN]; ok {
				for i := uint32(0); i < span[1]; i++ {
					if tp, ok := r.respPkts[span[0]+i]; ok {
						r.Stats.RespRetx++
						r.node.send(r.dst, tp.pkt, r.hash())
					}
				}
			}
		}
		r.sendAck()
	default: // out-of-order arrival
		switch r.cfg.Mode {
		case GBN:
			// Drop everything out of order; one NAK per episode.
			r.Stats.DroppedOOO++
			if !r.nakArmed {
				r.nakArmed = true
				r.sendNak()
			}
		case SR:
			if p.Type == ptWrite {
				// Writes are SR-capable: place out of order and
				// NAK each OOO arrival (§6.1.1: "sends a
				// Negative Acknowledgment for each out-of-order
				// packet").
				if _, dup := r.reqBuf[p.PSN]; !dup {
					r.reqBuf[p.PSN] = p
					r.Stats.DeliveredBytes += uint64(p.Size)
				}
				r.sendNak()
			} else {
				// Sends and Read Requests fall back to GBN:
				// "RoCE-SR is not available to these IB Verbs
				// ops".
				r.Stats.DroppedOOO++
				if !r.nakArmed {
					r.nakArmed = true
					r.sendNak()
				}
			}
		case AR:
			// Reorder-tolerant: buffer silently; loss is the
			// sender's RTO problem.
			if _, dup := r.reqBuf[p.PSN]; !dup {
				r.reqBuf[p.PSN] = p
				if p.Type == ptWrite {
					r.Stats.DeliveredBytes += uint64(p.Size)
				}
			}
		}
	}
}

// accept consumes one in-sequence request packet. fromBuffer marks packets
// drained from the out-of-order buffer, whose write payload was already
// placed (and counted) at buffering time in SR/AR modes.
func (r *Responder) accept(p *packet, fromBuffer bool) {
	switch p.Type {
	case ptWrite:
		countedAtBuffer := fromBuffer && r.cfg.Mode != GBN
		if !countedAtBuffer {
			r.Stats.DeliveredBytes += uint64(p.Size)
		}
		if r.node.nic != nil {
			r.node.nic.DeliverToHost(p.Size, nil)
		}
	case ptSend:
		r.Stats.DeliveredBytes += uint64(p.Size)
		if r.node.nic != nil {
			r.node.nic.DeliverToHost(p.Size, nil)
		}
	case ptReadReq:
		r.generateResponses(p)
	}
	r.expectedReq++
}

// generateResponses emits the read-response packets a request solicits.
func (r *Responder) generateResponses(req *packet) {
	r.respOf[req.PSN] = [2]uint32{r.nextResp, req.RespPSNs}
	for i := uint32(0); i < req.RespPSNs; i++ {
		p := &packet{Type: ptReadResp, QP: r.id, PSN: r.nextResp, Size: req.RespBytes, Stream: streamResp}
		r.nextResp++
		r.respPkts[p.PSN] = &txPkt{pkt: p}
		r.Stats.RespSent++
		r.node.send(r.dst, p, r.hash())
	}
}

// handleRespNak retransmits missing response packets per the mode.
func (r *Responder) handleRespNak(p *packet) {
	switch r.cfg.Mode {
	case SR:
		if tp, ok := r.respPkts[p.NakPSN]; ok {
			r.Stats.RespRetx++
			r.node.send(r.dst, tp.pkt, r.hash())
		}
	default:
		// GBN on the response stream: resend everything from the
		// requested PSN.
		for s := p.NakPSN; s != r.nextResp; s++ {
			if tp, ok := r.respPkts[s]; ok {
				r.Stats.RespRetx++
				r.node.send(r.dst, tp.pkt, r.hash())
			}
		}
	}
}

// gcResponses drops response retransmission state below the acked horizon.
func (r *Responder) gcResponses(ackPSN uint32) {
	for r.respUna < ackPSN {
		delete(r.respPkts, r.respUna)
		r.respUna++
	}
}

// sendAck sends the cumulative request-stream acknowledgment.
func (r *Responder) sendAck() {
	r.node.send(r.dst, &packet{Type: ptAck, QP: r.id, AckPSN: r.expectedReq}, r.hash())
}

// sendNak asks for the expected request PSN.
func (r *Responder) sendNak() {
	r.Stats.NaksSent++
	r.node.send(r.dst, &packet{Type: ptNak, QP: r.id, Stream: streamReq, NakPSN: r.expectedReq}, r.hash())
}
