package pdl

import (
	"fmt"
	"time"

	"falcon/internal/falcon/wire"
)

// SendPacket accepts a data packet from the transaction layer and queues it
// for transmission. The TL fills Type, RSN and Length; the PDL assigns the
// PSN, sequence space, flow and timestamps. SendPacket never blocks: the TL
// has already passed resource admission, so the PDL queue is bounded by the
// TL's resource pools. Ownership of the packet transfers to the PDL: it is
// released to the pool when acknowledged or when the connection fails.
func (c *Conn) SendPacket(p *wire.Packet) {
	if !p.Type.IsData() {
		panic(fmt.Sprintf("pdl: SendPacket on non-data packet %v", p.Type))
	}
	if c.failed {
		// The TL has already been told to error everything.
		c.pool.Release(p)
		return
	}
	p.ConnID = c.id
	p.Space = wire.SpaceOf(p.Type)
	if p.Space == wire.SpaceResponse {
		c.respQ.push(p)
	} else {
		c.reqQ.push(p)
	}
	c.trySend()
}

// trySend drains the scheduler queues while congestion and sequence windows
// allow. Responses are scheduled before requests: their resources were
// reserved at the requester, so they can always make forward progress and
// draining them releases resources fastest (§4.5).
func (c *Conn) trySend() {
	for {
		sent := false
		if c.respQ.len() > 0 && c.canSendData(wire.SpaceResponse) {
			if c.transmitNext(&c.respQ, c.tx[wire.SpaceResponse]) {
				sent = true
			}
		} else if c.reqQ.len() > 0 && c.canSendData(wire.SpaceRequest) {
			if c.transmitNext(&c.reqQ, c.tx[wire.SpaceRequest]) {
				sent = true
			}
		}
		if !sent {
			break
		}
	}
	c.maybePace()
}

// canSendData checks the connection-level windows for a packet in the given
// space: requests are gated by min(fcwnd, ncwnd), responses by fcwnd only
// (§4.4: the requester reserved RX resources for responses, so ncwnd does
// not apply).
func (c *Conn) canSendData(space wire.Space) bool {
	ts := c.tx[space]
	// Sequence window: never outrun the receiver's bitmap.
	if int(ts.next-ts.base) >= c.cfg.WindowSize {
		return false
	}
	limit := c.connFcwnd()
	if space == wire.SpaceRequest && c.ncwnd < limit {
		limit = c.ncwnd
	}
	// Congestion window counts in-flight packets only: resource-NACKed
	// packets parked on a backoff are known off the network, and counting
	// them would let a window of refused packets starve the head-of-line
	// packet the receiver is actually waiting for.
	out := float64(c.totalInFlight())
	if limit >= 1 {
		return out < limit
	}
	// Fractional window: at most one in-flight packet, released at the
	// paced instant.
	return out == 0 && c.sim.Now() >= c.nextPaced
}

// pickFlow returns the flow to carry the next packet.
func (c *Conn) pickFlow() int {
	if len(c.flows) == 1 {
		return 0
	}
	if c.cfg.Policy == PolicyRoundRobin {
		i := c.rrNext % len(c.flows)
		c.rrNext++
		return i
	}
	// Congestion-aware: the flow with the largest open window
	// fcwnd - outstanding (§4.3).
	best, bestOpen := 0, -1e18
	for i := range c.flows {
		f := &c.flows[i]
		open := f.fcwnd - float64(f.outstanding)
		if open > bestOpen {
			best, bestOpen = i, open
		}
	}
	return best
}

func (c *Conn) transmitNext(q *pktQueue, ts *txSpace) bool {
	p := q.pop()
	flow := c.pickFlow()
	psn := ts.next
	ts.next++

	tp := ts.slot(psn)
	*tp = txPacket{
		pkt:  p,
		psn:  psn,
		rsn:  p.RSN,
		gen:  tp.gen + 1,
		flow: int32(flow),
		typ:  p.Type,
		live: true,
	}
	ts.outstanding++
	c.flows[flow].outstanding++

	p.PSN = psn
	// Fractional windows pace: the next packet may go one inter-packet
	// gap (srtt/cwnd) later.
	if wnd := c.EffectiveWindow(); wnd < 1 {
		c.nextPaced = c.sim.Now().Add(c.pacingGap(wnd))
	}
	c.stampAndSend(tp, false, false)
	return true
}

// pacingGap returns the inter-packet gap srtt/cwnd for a fractional
// window, clamped to the RTO backoff cap.
func (c *Conn) pacingGap(wnd float64) time.Duration {
	base := c.srttHint
	if base == 0 {
		base = c.tlpTimeout
	}
	gap := time.Duration(float64(base) / maxf(wnd, 0.001))
	if gap > c.cfg.MaxRTOBackoff {
		gap = c.cfg.MaxRTOBackoff
	}
	return gap
}

// stampAndSend (re)transmits a tracked packet: assigns the flow's current
// label, sets T1 and the AR bit, and hands the packet to the NIC.
func (c *Conn) stampAndSend(tp *txPacket, retransmit, tlp bool) {
	p := tp.pkt
	f := &c.flows[tp.flow]
	now := c.sim.Now()
	tp.txTime = now
	if tp.origTx == 0 {
		tp.origTx = now
	}
	p.FlowLabel = f.label
	p.T1 = int64(now)
	p.Flags &^= wire.FlagRetransmit | wire.FlagTLP | wire.FlagAckReq
	f.sent++
	if retransmit {
		p.Flags |= wire.FlagRetransmit
		c.Stats.DataRetransmits++
	} else {
		c.Stats.DataSent++
	}
	if tlp {
		p.Flags |= wire.FlagTLP
	}
	// AR cadence: retransmissions, probes, every ARInterval-th packet of
	// a flow, and queue-draining packets ask for an immediate ACK.
	if retransmit || tlp ||
		(c.cfg.ARInterval > 0 && f.sent%uint64(c.cfg.ARInterval) == 0) ||
		c.reqQ.len()+c.respQ.len() == 0 {
		p.Flags |= wire.FlagAckReq
	}
	c.cb.Send(p)
	if c.probe != nil {
		c.probe.OnSend(c, p, retransmit)
	}
	c.armTimers()
}

// maybePace arms a wakeup at the paced release instant when a fractional
// window blocked transmission (ACK clocking cannot resume an idle
// connection).
func (c *Conn) maybePace() {
	if c.reqQ.len()+c.respQ.len() == 0 {
		return
	}
	if c.totalInFlight() > 0 {
		return // ACK clocking will resume transmission
	}
	if c.EffectiveWindow() >= 1 {
		return
	}
	if c.paceTimer.Pending() {
		return
	}
	at := c.nextPaced
	if at <= c.sim.Now() {
		at = c.sim.Now().Add(c.pacingGap(c.EffectiveWindow()))
	}
	c.paceTimer = c.sim.AtAction(at, &c.paceAct)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// lowestUnacked returns the oldest unacked tracked packet in the space, or
// nil.
func (ts *txSpace) lowestUnacked() *txPacket {
	for psn := ts.base; psn != ts.next; psn++ {
		tp := ts.slot(psn)
		if tp.live && !tp.acked {
			return tp
		}
	}
	return nil
}

// highestUnackedLegacy is the per-PSN reference scan for the TLP probe
// target (LegacyHotPath oracle).
func (ts *txSpace) highestUnackedLegacy() *txPacket {
	for psn := ts.next; psn != ts.base; psn-- {
		tp := ts.slot(psn - 1)
		if tp.live && !tp.acked {
			return tp
		}
	}
	return nil
}

// highestUnacked returns the newest (highest-PSN) unacked tracked packet in
// the space, or nil — the tail packet a TLP must probe. The word path masks
// the acked mirror down to the live window and takes the highest clear bit.
func (ts *txSpace) highestUnacked(legacy bool) *txPacket {
	if legacy {
		return ts.highestUnackedLegacy()
	}
	n := int(ts.next - ts.base)
	h := wire.LowMask(n).AndNot(ts.acked).HighestSet()
	if h < 0 {
		return nil
	}
	return ts.slot(ts.base + uint32(h))
}

// retxCause identifies which recovery mechanism decided to re-send a
// packet. The split matters for diagnosis: RACK/OOO retransmits indicate
// fabric loss or reordering, TLP indicates tail silence, RTO indicates an
// outage or a collapsed window, and NACK backoff indicates receiver
// resource pressure rather than loss.
type retxCause uint8

const (
	retxRACK retxCause = iota
	retxOOO
	retxTLP
	retxRTO
	retxNackBackoff
)

// retransmit re-sends a tracked packet, counting it against its cause and
// flagging it on the wire.
func (c *Conn) retransmit(tp *txPacket, cause retxCause) {
	if c.failed || tp == nil || tp.acked {
		return
	}
	if tp.nacked {
		tp.nacked = false
		ts := c.tx[tp.pkt.Space]
		ts.nackedB.Clear(int(int32(tp.psn - ts.base)))
		ts.parked--
	}
	tp.retx++
	switch cause {
	case retxRACK:
		c.Stats.RetxRACK++
	case retxOOO:
		c.Stats.RetxOOO++
	case retxTLP:
		c.Stats.RetxTLP++
	case retxRTO:
		c.Stats.RetxRTO++
	case retxNackBackoff:
		c.Stats.RetxNackBackoff++
	}
	c.stampAndSend(tp, true, cause == retxTLP)
}
