package telemetry

import (
	"fmt"
	"io"
	"time"

	"falcon/internal/sim"
)

// Sampler records a time series by scheduling periodic snapshot events on
// the simulator. Each tick evaluates every tracked probe function and
// appends one row; ticks are ordinary sim events, so they interleave
// deterministically with protocol activity and two same-seed runs produce
// identical series.
//
// Because ticks occupy (time, seq) slots in the schedule, attaching a
// sampler changes the run's trace hash — unlike counters and the flight
// recorder, which observe passively. That is the telemetry determinism
// contract (DESIGN.md §9): enabled sampling may shift event sequence
// numbers but must not change protocol behaviour, and the exported series
// itself must be byte-reproducible.
type Sampler struct {
	sim      *sim.Simulator
	interval time.Duration

	names  []string
	probes []func() float64

	times []sim.Time
	rows  [][]float64

	timer   sim.Timer
	started bool
}

// NewSampler creates a sampler ticking every interval (minimum 1µs to
// keep a runaway sampler from flooding the schedule).
func NewSampler(s *sim.Simulator, interval time.Duration) *Sampler {
	if interval < time.Microsecond {
		interval = time.Microsecond
	}
	return &Sampler{sim: s, interval: interval}
}

// Track registers a named probe evaluated at every tick. All tracks must
// be registered before Start.
func (sp *Sampler) Track(name string, fn func() float64) {
	sp.names = append(sp.names, name)
	sp.probes = append(sp.probes, fn)
}

// Start samples immediately and then every interval until the virtual
// clock reaches until.
func (sp *Sampler) Start(until sim.Time) {
	if sp.started {
		return
	}
	sp.started = true
	sp.tick(until)
}

func (sp *Sampler) tick(until sim.Time) {
	now := sp.sim.Now()
	sp.times = append(sp.times, now)
	row := make([]float64, len(sp.probes))
	for i, fn := range sp.probes {
		row[i] = fn()
	}
	sp.rows = append(sp.rows, row)
	next := now.Add(sp.interval)
	if next > until {
		return
	}
	sp.timer = sp.sim.At(next, func() { sp.tick(until) })
}

// Stop cancels any pending tick.
func (sp *Sampler) Stop() {
	sp.timer.Stop()
}

// Len returns the number of rows sampled so far.
func (sp *Sampler) Len() int { return len(sp.rows) }

// Names returns the tracked series names in registration order.
func (sp *Sampler) Names() []string { return sp.names }

// Row returns the timestamp and values of row i.
func (sp *Sampler) Row(i int) (sim.Time, []float64) { return sp.times[i], sp.rows[i] }

// WriteCSV writes the series as CSV: a t_ns column followed by one column
// per track, floats in shortest round-trip form. Byte-deterministic for
// identical samples.
func (sp *Sampler) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "t_ns"); err != nil {
		return err
	}
	for _, n := range sp.names {
		if _, err := fmt.Fprintf(w, ",%s", n); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for i, t := range sp.times {
		if _, err := fmt.Fprintf(w, "%d", int64(t)); err != nil {
			return err
		}
		for _, v := range sp.rows[i] {
			if _, err := fmt.Fprintf(w, ",%s", formatFloat(v)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
