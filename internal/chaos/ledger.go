package chaos

import (
	"fmt"

	"falcon/internal/netsim"
)

// Ledger is the frame-conservation audit of one fabric after full drain:
// every frame a host handed to its NIC must either have been delivered to
// a receiving host's handler or be attributed to exactly one named drop
// counter. A storm that leaks frames (a pooled frame released twice, a
// drop path that forgets to count) breaks the balance.
type Ledger struct {
	Sent         uint64 // ΣHost.SentFrames (frames that left a NIC)
	Delivered    uint64 // ΣHost.RxFrames (frames handed to a host handler)
	QueueDrops   uint64 // Σ port tail drops
	RandomDrops  uint64 // Σ port random-loss drops
	DownDrops    uint64 // Σ port down-window drops
	CorruptDrops uint64 // Σ port corruption-window drops
	PauseRxDrops uint64 // Σ frames that arrived at a paused host
}

// Audit sums the ledger over every host and port of the network. Call it
// only after the simulator has drained (s.Run() returned): in-flight
// frames are neither delivered nor dropped and would unbalance the books.
func Audit(n *netsim.Network) Ledger {
	var l Ledger
	for _, h := range n.Hosts() {
		l.Sent += h.SentFrames
		l.Delivered += h.RxFrames
		l.PauseRxDrops += h.PauseRxDrops
	}
	for _, p := range n.Ports() {
		l.QueueDrops += p.Stats.QueueDrops
		l.RandomDrops += p.Stats.RandomDrops
		l.DownDrops += p.Stats.DownDrops
		l.CorruptDrops += p.Stats.CorruptDrops
	}
	return l
}

// Dropped is the sum of every named drop counter.
func (l Ledger) Dropped() uint64 {
	return l.QueueDrops + l.RandomDrops + l.DownDrops + l.CorruptDrops + l.PauseRxDrops
}

// Balanced reports whether sent = delivered + dropped.
func (l Ledger) Balanced() bool {
	return l.Sent == l.Delivered+l.Dropped()
}

// String renders the ledger for failure messages and the chaoscheck gate.
func (l Ledger) String() string {
	return fmt.Sprintf("sent=%d delivered=%d queue=%d random=%d down=%d corrupt=%d pause_rx=%d (balance %+d)",
		l.Sent, l.Delivered, l.QueueDrops, l.RandomDrops, l.DownDrops, l.CorruptDrops, l.PauseRxDrops,
		int64(l.Sent)-int64(l.Delivered+l.Dropped()))
}
