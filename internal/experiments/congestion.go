package experiments

import (
	"fmt"
	"time"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/nic"
	"falcon/internal/rdma"
	"falcon/internal/roce"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/telemetry"
	"falcon/internal/workload"
)

// Fig13 reproduces "Falcon and RoCE behavior under fabric congestion":
// 5 client machines issue 1MB writes per QP to one server, sweeping the
// per-host QP count to stress congestion control. Reported: op latency
// relative to ideal (mean/p50/p99), total goodput and per-QP fairness.
//
// Scaled down: the paper sweeps to 1000 QPs/host (5000:1); the simulator
// sweeps to 100/host (500:1), which already exceeds the
// bandwidth-delay product per flow by orders of magnitude.
func Fig13(runFor time.Duration) *Table { return fig13(runFor, nil) }

// Fig13Tel is the instrumented Fig13: each Falcon incast exports the
// server-downlink port counters (queue extremes, ECN marks, drops), one
// representative connection's PDL/congestion state, the server NIC
// pipeline counters and the server FAE's delay histograms; the 20-QP cell
// additionally records the queue-depth and cwnd time series — the incast
// trace behind the figure. The table is identical to Fig13's.
func Fig13Tel(runFor time.Duration, tel *telemetry.Suite) *Table { return fig13(runFor, tel) }

func fig13(runFor time.Duration, tel *telemetry.Suite) *Table {
	t := &Table{
		Title:   "Figure 13: incast, 5 clients x N QPs of 1MB writes to one server",
		Columns: []string{"transport", "QPs/host", "mean/ideal", "p50/ideal", "p99/ideal", "goodput Gbps", "Jain"},
	}
	const gbps = 200
	const opBytes = 1 << 20
	for _, qps := range []int{1, 4, 20, 100} {
		m, p50, p99, goodput, jain := falconIncast(qps, opBytes, gbps, runFor, tel)
		ideal := idealIncastLatency(qps, opBytes, gbps)
		t.Rows = append(t.Rows, []string{
			"Falcon", f1(float64(qps)),
			f2(m.Seconds() / ideal.Seconds()),
			f2(p50.Seconds() / ideal.Seconds()),
			f2(p99.Seconds() / ideal.Seconds()),
			f1(goodput), f2(jain),
		})
	}
	for _, qps := range []int{1, 4, 20, 100} {
		m, p50, p99, goodput, jain := roceIncast(qps, opBytes, gbps, runFor)
		ideal := idealIncastLatency(qps, opBytes, gbps)
		t.Rows = append(t.Rows, []string{
			"RoCE", f1(float64(qps)),
			f2(m.Seconds() / ideal.Seconds()),
			f2(p50.Seconds() / ideal.Seconds()),
			f2(p99.Seconds() / ideal.Seconds()),
			f1(goodput), f2(jain),
		})
	}
	return t
}

// idealIncastLatency is the fair-share completion time of one 1MB op when
// 5*qps flows share the server link.
func idealIncastLatency(qpsPerHost, opBytes int, gbps float64) time.Duration {
	flows := 5 * qpsPerHost
	perFlowGbps := gbps / float64(flows)
	return time.Duration(float64(opBytes) * 8 / perFlowGbps)
}

func falconIncast(qpsPerHost, opBytes int, gbps float64, runFor time.Duration, tel *telemetry.Suite) (mean, p50, p99 time.Duration, goodput, jain float64) {
	s := sim.New(13)
	link := netsim.LinkConfig{GbpsRate: gbps, PropDelay: time.Microsecond}
	topo := netsim.Star(s, 6, link)
	cl := core.NewCluster(s)
	server := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	var lat stats.Series
	var eps []*core.Endpoint
	for h := 1; h <= 5; h++ {
		client := cl.AddNode(topo.Hosts[h], core.DefaultNodeConfig())
		for q := 0; q < qpsPerHost; q++ {
			epC, epS := cl.Connect(client, server, multipathConn())
			qa := rdma.NewQP(epC, rdma.Config{})
			rdma.NewQP(epS, rdma.Config{}).RegisterMemoryLen(1 << 40)
			eps = append(eps, epC)
			issuer := workload.NewClosedLoop(s, 1, 1<<30, func(opDone func()) bool {
				start := s.Now()
				err := qa.Write(0, 0, nil, opBytes, func(c rdma.Completion) {
					if c.Err == nil {
						lat.AddDuration(s.Now().Sub(start))
					}
					opDone()
				})
				return err == nil
			}, nil)
			issuer.Start()
		}
	}
	if tel != nil {
		// The incast bottleneck is the switch's downlink to the server:
		// its queue is where 5*qps flows collide.
		down := topo.ToRs[0].RouteTo(topo.Hosts[0].ID)[0]
		prefix := fmt.Sprintf("fig13/qps%d", qpsPerHost)
		reg := tel.Registry()
		telemetry.CollectPort(reg, prefix+"/server_downlink", down)
		telemetry.CollectPDL(reg, prefix+"/conn0", eps[0].PDL())
		telemetry.CollectNIC(reg, prefix+"/server", server.NIC())
		// ACK events (RTT / fabric-delay samples) are processed by the
		// initiator's engine, so observe the first client, not the server.
		telemetry.CollectFAE(reg, prefix+"/client0", eps[0].Node().Engine())
		telemetry.ObserveFAE(reg, prefix+"/client0", eps[0].Node().Engine())
		if qpsPerHost == 20 {
			sp := tel.Sampler("qps20", s, 20*time.Microsecond)
			telemetry.TrackPDL(sp, "conn0", eps[0].PDL())
			telemetry.TrackPort(sp, "server_downlink", down)
			sp.Start(sim.Time(runFor))
		}
	}
	s.RunUntil(sim.Time(runFor))
	// Goodput and fairness at transaction (MTU) granularity: whole-op
	// completions undercount flows still mid-op at the window's end.
	var total uint64
	vals := make([]float64, len(eps))
	for i, ep := range eps {
		b := ep.TL().Stats.CompletedOK * 4096
		vals[i] = float64(b)
		total += b
	}
	return lat.MeanDuration(), lat.DurationPercentile(50), lat.DurationPercentile(99),
		stats.Gbps(total, runFor), stats.Jain(vals)
}

func roceIncast(qpsPerHost, opBytes int, gbps float64, runFor time.Duration) (mean, p50, p99 time.Duration, goodput, jain float64) {
	s := sim.New(13)
	link := netsim.LinkConfig{GbpsRate: gbps, PropDelay: time.Microsecond}
	topo := netsim.Star(s, 6, link)
	server := roce.NewNode(s, topo.Hosts[0], nil)
	var lat stats.Series
	var resps []*roce.Responder
	id := uint32(1)
	for h := 1; h <= 5; h++ {
		client := roce.NewNode(s, topo.Hosts[h], nil)
		for q := 0; q < qpsPerHost; q++ {
			cfg := roce.DefaultConfig()
			cfg.LinkGbps = gbps
			qp, resp := roce.Connect(client, server, id, cfg)
			resps = append(resps, resp)
			id++
			issuer := workload.NewClosedLoop(s, 1, 1<<30, func(opDone func()) bool {
				start := s.Now()
				qp.Write(opBytes, func() {
					lat.AddDuration(s.Now().Sub(start))
					opDone()
				})
				return true
			}, nil)
			issuer.Start()
		}
	}
	s.RunUntil(sim.Time(runFor))
	var total uint64
	vals := make([]float64, len(resps))
	for i, r := range resps {
		vals[i] = float64(r.Stats.DeliveredBytes)
		total += r.Stats.DeliveredBytes
	}
	return lat.MeanDuration(), lat.DurationPercentile(50), lat.DurationPercentile(99),
		stats.Gbps(total, runFor), stats.Jain(vals)
}

// Fig14 reproduces "Falcon and RoCE behavior under end-host congestion":
// a client streams 64KB writes while the server's host interface (PCIe) is
// downgraded from 200 to 100 Gbps mid-run and later restored. Reported:
// goodput in each phase and the convergence times, plus Falcon's ncwnd.
func Fig14(phase time.Duration) *Table {
	t := &Table{
		Title:   "Figure 14: end-host congestion (PCIe 200->100->200 Gbps), 64KB writes",
		Columns: []string{"transport", "phase", "goodput Gbps", "converge ms", "ncwnd(end)"},
	}
	// Falcon run.
	{
		s := sim.New(29)
		link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
		topo, _ := netsim.PointToPoint(s, link)
		cl := core.NewCluster(s)
		a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
		b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
		epA, epB := cl.Connect(a, b, multipathConn())
		qa := rdma.NewQP(epA, rdma.Config{})
		rdma.NewQP(epB, rdma.Config{}).RegisterMemoryLen(1 << 40)
		rates := stats.NewRateSeries(phase / 10)
		issuer := workload.NewClosedLoop(s, 16, 1<<30, func(opDone func()) bool {
			err := qa.Write(0, 0, nil, 64<<10, func(c rdma.Completion) {
				if c.Err == nil {
					rates.Record(s.Now(), 64<<10)
				}
				opDone()
			})
			return err == nil
		}, nil)
		issuer.Start()
		s.At(sim.Time(phase), func() { b.NIC().SetHostGbps(100) })
		s.At(sim.Time(2*phase), func() { b.NIC().SetHostGbps(200) })
		s.RunUntil(sim.Time(3 * phase))
		emit := func(name string, from, to int) {
			g, conv := phaseGoodput(rates, from, to, phase/10)
			t.Rows = append(t.Rows, []string{"Falcon", name, f1(g), f1(conv), f1(epA.PDL().Ncwnd())})
		}
		emit("full", 0, 10)
		emit("degraded", 10, 20)
		emit("restored", 20, 30)
	}
	// RoCE run (host interface via the NIC model).
	{
		s := sim.New(29)
		link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
		topo, _ := netsim.PointToPoint(s, link)
		clientNode := roce.NewNode(s, topo.Hosts[0], nil)
		nicCfg := nic.DefaultConfig()
		serverNIC := nic.New(s, nicCfg)
		serverNode := roce.NewNode(s, topo.Hosts[1], serverNIC)
		cfg := roce.DefaultConfig()
		qp, _ := roce.Connect(clientNode, serverNode, 1, cfg)
		rates := stats.NewRateSeries(phase / 10)
		issuer := workload.NewClosedLoop(s, 16, 1<<30, func(opDone func()) bool {
			qp.Write(64<<10, func() {
				rates.Record(s.Now(), 64<<10)
				opDone()
			})
			return true
		}, nil)
		issuer.Start()
		s.At(sim.Time(phase), func() { serverNIC.SetHostGbps(100) })
		s.At(sim.Time(2*phase), func() { serverNIC.SetHostGbps(200) })
		s.RunUntil(sim.Time(3 * phase))
		emit := func(name string, from, to int) {
			g, conv := phaseGoodput(rates, from, to, phase/10)
			t.Rows = append(t.Rows, []string{"RoCE", name, f1(g), f1(conv), "-"})
		}
		emit("full", 0, 10)
		emit("degraded", 10, 20)
		emit("restored", 20, 30)
	}
	return t
}

// phaseGoodput averages the rate over [from,to) buckets and estimates
// convergence time: buckets until the rate is within 15% of the phase's
// final level.
func phaseGoodput(r *stats.RateSeries, from, to int, bucket time.Duration) (gbps float64, convergeMs float64) {
	if to > r.Len() {
		to = r.Len()
	}
	if from >= to {
		return 0, 0
	}
	sum := 0.0
	for i := from; i < to; i++ {
		sum += r.GbpsAt(i)
	}
	final := r.GbpsAt(to - 1)
	conv := 0
	for i := from; i < to; i++ {
		if final > 0 && absf(r.GbpsAt(i)-final)/final < 0.15 {
			conv = i - from
			break
		}
		conv = i - from + 1
	}
	return sum / float64(to-from), float64(conv) * bucket.Seconds() * 1000
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
