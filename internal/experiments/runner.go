package experiments

// The experiment runner: executes registry entries serially or across a
// bounded worker pool, prints their tables in registry order either way,
// and collects the per-figure performance records that cmd/falconbench
// -json writes to BENCH_*.json (the repo's perf trajectory — see DESIGN.md
// §8 and EXPERIMENTS.md's PR2 appendix).
//
// Parallelism is safe because every entry builds its own simulators:
// sim.Simulator is single-threaded by design, so experiments scale by
// running independent seeded simulators on separate goroutines, never by
// sharing one. Each entry's randomness comes from its simulators' seeded
// RNGs (no package-level rand anywhere, enforced by
// internal/testkit's TestNoGlobalRand), so tables are bit-identical
// whatever the pool width.

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"falcon/internal/sim"
	"falcon/internal/telemetry"
)

// FigureReport is one figure's performance record.
//
// Events and the derived rates are attributed per figure only on serial
// runs: the process-wide event counter cannot be split by goroutine, so a
// parallel run reports them as zero and only the aggregate totals in
// BenchReport are meaningful. AllocsPerEvent is likewise a process-wide
// delta (runtime.MemStats.Mallocs) and is reported serially only.
type FigureReport struct {
	Name           string  `json:"name"`
	WallMS         float64 `json:"wall_ms"`
	Events         uint64  `json:"events,omitempty"`
	EventsPerSec   float64 `json:"events_per_sec,omitempty"`
	NsPerEvent     float64 `json:"ns_per_event,omitempty"`
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"`

	// Metrics is the figure's telemetry snapshot, present only on
	// instrumented runs (RunInstrumented / falconbench -metrics).
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
}

// BenchReport is the machine-readable summary of one falconbench run, the
// payload of BENCH_*.json.
type BenchReport struct {
	Schema        string         `json:"schema"`
	GoVersion     string         `json:"go"`
	NumCPU        int            `json:"cpus"`
	Scheduler     string         `json:"scheduler"`
	Quick         bool           `json:"quick"`
	Parallel      int            `json:"parallel"`
	Shards        int            `json:"shards,omitempty"`
	ShardParallel bool           `json:"shard_parallel,omitempty"`
	WallMS        float64        `json:"total_wall_ms"`
	Events        uint64         `json:"total_events"`
	EventsPerSec  float64        `json:"total_events_per_sec"`
	Figures       []FigureReport `json:"figures"`
}

// Run executes the entries and prints their tables to w in entry order,
// returning the run's performance report. parallel is the worker-pool
// width; values <= 1 run serially (and additionally attribute events and
// allocations per figure). Output is identical for any pool width except
// for the wall-time annotations.
func Run(entries []Entry, quick bool, parallel int, w io.Writer) BenchReport {
	rep := BenchReport{
		Schema:    "falconbench/v1",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Scheduler: sim.DefaultScheduler().String(),
		Quick:     quick,
		Parallel:  parallel,
		Figures:   make([]FigureReport, len(entries)),
	}
	if n := sim.DefaultShards(); n > 1 {
		rep.Shards = n
		rep.ShardParallel = sim.DefaultShardParallel()
	}
	start := time.Now()
	events0 := sim.TotalDelivered()
	if parallel <= 1 {
		rep.Parallel = 1
		for i, e := range entries {
			rep.Figures[i] = runOne(e, quick, w, true)
		}
	} else {
		runPool(entries, quick, parallel, w, rep.Figures)
	}
	wall := time.Since(start)
	rep.WallMS = float64(wall.Nanoseconds()) / 1e6
	rep.Events = sim.TotalDelivered() - events0
	if s := wall.Seconds(); s > 0 {
		rep.EventsPerSec = float64(rep.Events) / s
	}
	return rep
}

// runOne executes a single entry, printing its table and timing line to w.
// When measure is set (serial runs only), it attributes delivered events
// and allocations to the figure.
func runOne(e Entry, quick bool, w io.Writer, measure bool) FigureReport {
	return runFigure(e.Name, func() *Table { return e.Run(quick) }, w, measure)
}

// runFigure is the shared body of runOne and the instrumented runner:
// time one table-producing function, print its table, and (optionally)
// attribute events and allocations.
func runFigure(name string, run func() *Table, w io.Writer, measure bool) FigureReport {
	var m0, m1 runtime.MemStats
	var ev0 uint64
	if measure {
		runtime.ReadMemStats(&m0)
		ev0 = sim.TotalDelivered()
	}
	start := time.Now()
	t := run()
	wall := time.Since(start)
	t.Fprint(w)
	fmt.Fprintf(w, "(%s in %v)\n\n", name, wall.Round(time.Millisecond))

	fr := FigureReport{Name: name, WallMS: float64(wall.Nanoseconds()) / 1e6}
	if measure {
		runtime.ReadMemStats(&m1)
		fr.Events = sim.TotalDelivered() - ev0
		if fr.Events > 0 {
			fr.EventsPerSec = float64(fr.Events) / wall.Seconds()
			fr.NsPerEvent = float64(wall.Nanoseconds()) / float64(fr.Events)
			fr.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(fr.Events)
		}
	}
	return fr
}

// runPool fans entries across `parallel` workers. Tables are buffered per
// entry and flushed to w in registry order as soon as each prefix
// completes, so output streams progressively yet deterministically.
func runPool(entries []Entry, quick bool, parallel int, w io.Writer, figures []FigureReport) {
	if parallel > len(entries) {
		parallel = len(entries)
	}
	type slot struct {
		buf  bytes.Buffer
		done chan struct{}
	}
	slots := make([]slot, len(entries))
	for i := range slots {
		slots[i].done = make(chan struct{})
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < parallel; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				figures[i] = runOne(entries[i], quick, &slots[i].buf, false)
				close(slots[i].done)
			}
		}()
	}
	go func() {
		for i := range entries {
			jobs <- i
		}
		close(jobs)
	}()
	for i := range slots {
		<-slots[i].done
		if _, err := slots[i].buf.WriteTo(w); err != nil {
			break
		}
	}
	wg.Wait()
}
