package pdl

import (
	"time"

	"falcon/internal/falcon/wire"
	"falcon/internal/sim"
)

// Timer management. The PDL owns four per-connection timers (RTO, TLP,
// RACK wakeup, pacing release). Under the eager discipline every ACK with
// progress stops and re-arms the RTO and TLP timers — two timing-wheel
// removals plus two insertions per ACK, which profiles as a top-five cost
// on the simulator hot path. The default discipline instead mirrors the
// fire time each timer WOULD have under eager management in a deadline
// field and re-arms lazily:
//
//   - xxxDeadline is the eager fire time (zero = logically stopped). It is
//     updated with plain stores as progress moves it.
//   - At most one wheel event is kept pending per timer, surfacing at
//     xxxFireAt. The invariant is xxxFireAt <= xxxDeadline whenever a
//     deadline is set: moving a deadline EARLIER than the pending event
//     reschedules it; moving it later just updates the field.
//   - When the event surfaces before the current deadline it re-arms at
//     exactly the deadline and does nothing else; when it surfaces at (or
//     after) a live deadline it clears the deadline and runs the body.
//
// The body therefore runs at exactly the eager fire time with identical
// connection state, so the two disciplines are protocol-equivalent (same
// sends, same deliveries, same timestamps); only the raw scheduler event
// stream differs. Config.EagerTimers keeps the eager discipline as the
// oracle, and testkit's timer-equivalence sweep checks protocol traces
// match across the 33-scenario fault matrix.

// timerKind discriminates the four pooled timer callbacks.
type timerKind uint8

const (
	timerRTO timerKind = iota
	timerTLP
	timerRack
	timerPace
)

// timerAction is a pooled sim.Action for one of the connection's timers.
// The four instances live inside Conn, so arming a timer never allocates.
type timerAction struct {
	c    *Conn
	kind timerKind
}

func (a *timerAction) RunAction() {
	c := a.c
	switch a.kind {
	case timerPace:
		c.trySend()
	case timerRTO:
		if c.cfg.EagerTimers {
			c.onRTO()
			return
		}
		d := c.rtoDeadline
		if d == 0 {
			return
		}
		if now := c.sim.Now(); now < d {
			c.rtoTimer = c.sim.AtAction(d, a)
			c.rtoFireAt = d
			return
		}
		c.rtoDeadline = 0
		c.onRTO()
	case timerTLP:
		if c.cfg.EagerTimers {
			c.onTLP()
			return
		}
		d := c.tlpDeadline
		if d == 0 {
			return
		}
		if now := c.sim.Now(); now < d {
			c.tlpTimer = c.sim.AtAction(d, a)
			c.tlpFireAt = d
			return
		}
		c.tlpDeadline = 0
		c.onTLP()
	case timerRack:
		if c.cfg.EagerTimers {
			c.runRack(c.sim.Now())
			return
		}
		d := c.rackDeadline
		if d == 0 {
			return
		}
		if now := c.sim.Now(); now < d {
			c.rackTimer = c.sim.AtAction(d, a)
			c.rackFireAt = d
			return
		}
		c.rackDeadline = 0
		c.runRack(c.sim.Now())
	}
}

// rtoDelay is the current backed-off RTO interval.
func (c *Conn) rtoDelay() time.Duration {
	d := c.rto << uint(c.rtoBackoff)
	if d > c.cfg.MaxRTOBackoff {
		d = c.cfg.MaxRTOBackoff
	}
	return d
}

// setRTODeadline installs a lazy RTO deadline, keeping the pending-event
// invariant (fire-at never later than the deadline).
func (c *Conn) setRTODeadline(t sim.Time) {
	c.rtoDeadline = t
	if c.rtoTimer.Pending() {
		if c.rtoFireAt <= t {
			return
		}
		c.rtoTimer.Stop()
	}
	c.rtoTimer = c.sim.AtAction(t, &c.rtoAct)
	c.rtoFireAt = t
}

// setTLPDeadline installs a lazy TLP deadline.
func (c *Conn) setTLPDeadline(t sim.Time) {
	c.tlpDeadline = t
	if c.tlpTimer.Pending() {
		if c.tlpFireAt <= t {
			return
		}
		c.tlpTimer.Stop()
	}
	c.tlpTimer = c.sim.AtAction(t, &c.tlpAct)
	c.tlpFireAt = t
}

// setRackDeadline installs a lazy RACK-wakeup deadline. Unlike RTO/TLP the
// RACK deadline can move earlier (a new SACK can make an older packet's
// eligibility the soonest), which the fire-at invariant already handles.
func (c *Conn) setRackDeadline(t sim.Time) {
	c.rackDeadline = t
	if c.rackTimer.Pending() {
		if c.rackFireAt <= t {
			return
		}
		c.rackTimer.Stop()
	}
	c.rackTimer = c.sim.AtAction(t, &c.rackAct)
	c.rackFireAt = t
}

// armTimers ensures RTO and TLP supervision while data is outstanding.
func (c *Conn) armTimers() {
	if c.totalOutstanding() == 0 {
		if c.cfg.EagerTimers {
			c.rtoTimer.Stop()
			c.tlpTimer.Stop()
		} else {
			c.rtoDeadline, c.tlpDeadline = 0, 0
		}
		return
	}
	if c.cfg.EagerTimers {
		if !c.rtoTimer.Pending() {
			c.rtoTimer = c.sim.AtAction(c.sim.Now().Add(c.rtoDelay()), &c.rtoAct)
		}
		if c.cfg.Recovery == RecoveryRackTLP && !c.tlpTimer.Pending() {
			c.tlpTimer = c.sim.AtAction(c.sim.Now().Add(c.tlpTimeout), &c.tlpAct)
		}
		return
	}
	if c.rtoDeadline == 0 {
		c.setRTODeadline(c.sim.Now().Add(c.rtoDelay()))
	}
	if c.cfg.Recovery == RecoveryRackTLP && c.tlpDeadline == 0 {
		c.setTLPDeadline(c.sim.Now().Add(c.tlpTimeout))
	}
}

// resetTimersOnProgress is called when an ACK acknowledges new data.
func (c *Conn) resetTimersOnProgress() {
	c.rtoBackoff = 0
	c.consecRTOs = 0
	now := c.sim.Now()
	if c.cfg.EagerTimers {
		c.rtoTimer.Stop()
		c.tlpTimer.Stop()
		c.lastAckProgress = now
		c.armTimers()
		return
	}
	c.lastAckProgress = now
	if c.totalOutstanding() == 0 {
		c.rtoDeadline, c.tlpDeadline = 0, 0
		return
	}
	// Eager stops then re-arms from scratch; mirror its fresh deadlines.
	c.setRTODeadline(now.Add(c.rtoDelay()))
	if c.cfg.Recovery == RecoveryRackTLP {
		c.setTLPDeadline(now.Add(c.tlpTimeout))
	}
}

// nackRetryEvent is the pooled backoff retransmit for a resource-NACKed
// packet. It identifies the packet by (space, psn, generation) rather than
// holding the scoreboard slot, so a slot recycled after the window slides
// past never triggers a stale retransmit.
type nackRetryEvent struct {
	c     *Conn
	space wire.Space
	psn   uint32
	gen   uint32
	next  *nackRetryEvent
}

func (ev *nackRetryEvent) RunAction() {
	c := ev.c
	ts := c.tx[ev.space]
	tp := ts.slot(ev.psn)
	ok := tp.live && tp.psn == ev.psn && tp.gen == ev.gen && !tp.acked
	ev.next = c.nackEvents
	c.nackEvents = ev
	if ok {
		c.retransmit(tp, retxNackBackoff)
	}
}

// scheduleNackRetry arms the backoff retransmit for a parked packet using a
// pooled event.
func (c *Conn) scheduleNackRetry(tp *txPacket, space wire.Space, backoff time.Duration) {
	ev := c.nackEvents
	if ev == nil {
		ev = &nackRetryEvent{c: c}
	} else {
		c.nackEvents = ev.next
	}
	ev.space, ev.psn, ev.gen = space, tp.psn, tp.gen
	c.sim.AtAction(c.sim.Now().Add(backoff), ev)
}
