package main

// The watch subcommand: regenerate a committed falconmetrics/v1
// baseline in-process and diff the fresh run against it. Unlike `diff`,
// which compares two existing artifacts, watch closes the loop for a
// working tree — it derives the figure set and quick flag from the
// baseline itself, reruns exactly those registry entries serially
// instrumented, and flags any cell the edit moved. Exit status 1 on
// findings makes it usable as a local pre-commit gate.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path"

	"falcon/internal/experiments"
	"falcon/internal/lake"
)

func cmdWatch(args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	tol := fs.Float64("tol", 0, "relative tolerance for timing-class metrics (default 0.05)")
	perftol := fs.Float64("perftol", 0, "regression tolerance for perf-class metrics (default 0.25)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	keep := fs.String("keep", "", "also write the regenerated artifact to this path")
	figure := fs.String("figure", "", "glob of baseline figures to regenerate (e.g. 'figStorm' or 'fig1*'); default: all")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "falconlake watch: need exactly one baseline artifact path")
		os.Exit(2)
	}
	baselinePath := fs.Arg(0)

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal(err)
	}
	var baseline experiments.MetricsReport
	if err := json.Unmarshal(data, &baseline); err != nil {
		fatal(fmt.Errorf("%s: %v", baselinePath, err))
	}
	if baseline.Schema != "falconmetrics/v1" {
		fatal(fmt.Errorf("%s: schema %q, watch needs falconmetrics/v1", baselinePath, baseline.Schema))
	}
	if len(baseline.Figures) == 0 {
		fatal(fmt.Errorf("%s: no figures to regenerate", baselinePath))
	}

	// Re-run exactly the baseline's figure set, in registry order, with
	// the baseline's quick flag — the regenerated artifact is then
	// cell-for-cell comparable. -figure narrows the set to a glob, for
	// fast iteration on one figure of a multi-figure artifact; the
	// baseline is filtered to the same subset so the diff stays
	// cell-for-cell.
	want := make(map[string]bool, len(baseline.Figures))
	var kept []experiments.FigureMetrics
	for _, f := range baseline.Figures {
		if *figure != "" {
			ok, err := path.Match(*figure, f.Name)
			if err != nil {
				fatal(fmt.Errorf("bad -figure glob %q: %v", *figure, err))
			}
			if !ok {
				continue
			}
		}
		want[f.Name] = true
		kept = append(kept, f)
	}
	if len(kept) == 0 {
		fatal(fmt.Errorf("%s: no baseline figure matches -figure %q", baselinePath, *figure))
	}
	baseline.Figures = kept
	var entries []experiments.Entry
	for _, e := range experiments.Registry() {
		if want[e.Name] {
			entries = append(entries, e)
			delete(want, e.Name)
		}
	}
	if len(want) > 0 {
		for name := range want {
			fmt.Fprintf(os.Stderr, "falconlake watch: baseline figure %q is not in the experiment registry\n", name)
		}
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "watch: regenerating %d figure(s) (quick=%v) from %s\n",
		len(entries), baseline.Quick, baselinePath)
	rep, _ := experiments.RunInstrumented(entries, baseline.Quick, io.Discard)
	current := experiments.NewMetricsReport(rep)
	if *keep != "" {
		f, err := os.Create(*keep)
		if err != nil {
			fatal(err)
		}
		werr := current.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(werr)
		}
	}

	var buf bytes.Buffer
	if err := current.WriteJSON(&buf); err != nil {
		fatal(err)
	}
	bld := lake.NewBuilder()
	// Ingest the (possibly -figure-filtered) baseline from memory, not the
	// file: a narrowed regeneration must diff against the same subset or
	// every skipped figure reads as a missing metric.
	var base bytes.Buffer
	if err := baseline.WriteJSON(&base); err != nil {
		fatal(err)
	}
	if err := bld.IngestMetricsJSON("baseline", &base, baselinePath); err != nil {
		fatal(err)
	}
	if err := bld.IngestMetricsJSON("current", &buf, "(regenerated)"); err != nil {
		fatal(err)
	}
	ix, err := bld.Seal()
	if err != nil {
		fatal(err)
	}
	drep, err := lake.Diff(ix, "baseline", "current", lake.Options{RelTol: *tol, PerfTol: *perftol})
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		err = drep.WriteJSON(os.Stdout)
	} else {
		err = drep.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	if !drep.Empty() {
		os.Exit(1)
	}
}
