package pdl

import (
	"math/bits"
	"time"

	"falcon/internal/falcon/fae"
	"falcon/internal/falcon/wire"
	"falcon/internal/sim"
)

// runRecovery applies the configured loss-detection heuristic to the TX
// scoreboard after ACK processing.
func (c *Conn) runRecovery(now sim.Time) {
	switch c.cfg.Recovery {
	case RecoveryRackTLP:
		c.runRack(now)
	case RecoveryOOODistance:
		c.runOOODistance()
	}
}

// runRack implements the RACK heuristic of §4.1, per flow (§4.3): a packet
// is deemed lost when (a) a packet transmitted later on the same flow has
// been SACKed (so the path has delivered past it), and (b) at least the
// reordering window has elapsed since its transmission. Packets not yet
// eligible get a timer at their eligibility instant.
//
// The candidate set — live, unacked, not parked — is exactly the clear
// bits of the acked|nacked mirrors inside the live window, so the word
// path visits it via masked trailing-zero iteration in the same ascending
// order as the legacy per-PSN loop.
func (c *Conn) runRack(now sim.Time) {
	reoWnd := c.rackReoWnd * time.Duration(c.reoWndMult)
	if c.srttHint > 0 && reoWnd > 2*c.srttHint {
		reoWnd = 2 * c.srttHint
	}
	lost := c.lostScratch[:0]
	var nextCheck sim.Time
	for _, ts := range c.tx {
		if c.cfg.LegacyHotPath {
			for psn := ts.base; psn != ts.next; psn++ {
				tp := ts.slot(psn)
				if !tp.live || tp.acked || tp.nacked {
					continue
				}
				f := &c.flows[tp.flow]
				if f.rackXmit <= tp.txTime {
					// Nothing sent after it has been delivered:
					// reordering cannot be ruled out yet.
					continue
				}
				eligibleAt := tp.txTime.Add(reoWnd)
				if eligibleAt <= now {
					lost = append(lost, tp)
				} else if nextCheck == 0 || eligibleAt < nextCheck {
					nextCheck = eligibleAt
				}
			}
			continue
		}
		cand := wire.LowMask(int(ts.next - ts.base)).AndNot(ts.acked).AndNot(ts.nackedB)
		for wi, w := range cand {
			hi := wi * 64
			for w != 0 {
				o := hi + bits.TrailingZeros64(w)
				w &= w - 1
				tp := ts.slot(ts.base + uint32(o))
				f := &c.flows[tp.flow]
				if f.rackXmit <= tp.txTime {
					continue
				}
				eligibleAt := tp.txTime.Add(reoWnd)
				if eligibleAt <= now {
					lost = append(lost, tp)
				} else if nextCheck == 0 || eligibleAt < nextCheck {
					nextCheck = eligibleAt
				}
			}
		}
	}
	c.lostScratch = lost[:0] // retain grown capacity for the next scan
	for _, tp := range lost {
		c.retransmit(tp, retxRACK)
	}
	if len(lost) > 0 && c.cb.PostEvent != nil {
		c.cb.PostEvent(fae.Event{
			Kind: fae.EventFastRetransmit,
			Conn: c.id,
			Flow: int(lost[0].flow),
			Now:  now,
		})
	}
	if nextCheck > 0 {
		if c.cfg.EagerTimers {
			if c.rackTimer.Pending() {
				c.rackTimer.Stop()
			}
			c.rackTimer = c.sim.AtAction(nextCheck, &c.rackAct)
		} else {
			c.setRackDeadline(nextCheck)
		}
	}
}

// runOOODistance implements the ablation baseline of Figure 11b: a packet
// is retransmitted when a PSN at least OOODistance above it has been
// SACKed, regardless of time — fast for true losses, spurious under
// reordering.
func (c *Conn) runOOODistance() {
	dist := uint32(c.cfg.OOODistance)
	if dist == 0 {
		dist = 3
	}
	retransmitted := false
	for _, ts := range c.tx {
		if c.cfg.LegacyHotPath {
			// Highest SACKed PSN in this space.
			var highest uint32
			var haveHighest bool
			for psn := ts.base; psn != ts.next; psn++ {
				tp := ts.slot(psn)
				if tp.live && tp.acked {
					highest = psn
					haveHighest = true
				}
			}
			if !haveHighest {
				continue
			}
			for psn := ts.base; psn != ts.next; psn++ {
				// Serial arithmetic: distance below the highest SACK must
				// survive the uint32 PSN wrap.
				if int32(highest-psn) < int32(dist) {
					break
				}
				tp := ts.slot(psn)
				if !tp.live || tp.acked || tp.nacked {
					continue
				}
				c.retransmit(tp, retxOOO)
				retransmitted = true
			}
			continue
		}
		h := ts.acked.HighestSet()
		if h < 0 {
			continue
		}
		// Offsets strictly more than dist-1 below the highest SACK:
		// [0, h-dist+1), minus acked and parked packets.
		lim := h - int(dist) + 1
		if lim <= 0 {
			continue
		}
		cand := wire.LowMask(lim).AndNot(ts.acked).AndNot(ts.nackedB)
		for wi, w := range cand {
			hi := wi * 64
			for w != 0 {
				o := hi + bits.TrailingZeros64(w)
				w &= w - 1
				c.retransmit(ts.slot(ts.base+uint32(o)), retxOOO)
				retransmitted = true
			}
		}
	}
	if retransmitted && c.cb.PostEvent != nil {
		c.cb.PostEvent(fae.Event{
			Kind: fae.EventFastRetransmit,
			Conn: c.id,
			Now:  c.sim.Now(),
		})
	}
}

// onTLP fires the tail loss probe: after tlpTimeout of ACK inactivity, the
// highest unacked PSN — the tail — is retransmitted to elicit a fresh ACK
// whose bitmap lets RACK repair everything before it (§4.1). Probing the
// tail rather than the head matters for liveness: a lost tail packet has
// nothing sent after it, so RACK alone can never declare it lost, and the
// head may be a request a resource-pressured receiver keeps refusing while
// it waits for exactly the RSN the tail carries.
func (c *Conn) onTLP() {
	if c.failed || c.totalOutstanding() == 0 {
		return
	}
	if c.sim.Now().Sub(c.lastAckProgress) < c.tlpTimeout {
		// Progress happened since arming; re-arm for the remainder.
		t := c.sim.Now().Add(c.tlpTimeout)
		if c.cfg.EagerTimers {
			c.tlpTimer = c.sim.AtAction(t, &c.tlpAct)
		} else {
			c.setTLPDeadline(t)
		}
		return
	}
	var probe *txPacket
	for _, ts := range c.tx {
		if tp := ts.highestUnacked(c.cfg.LegacyHotPath); tp != nil && (probe == nil || tp.txTime < probe.txTime) {
			probe = tp
		}
	}
	if probe != nil {
		c.Stats.TLPProbes++
		c.retransmit(probe, retxTLP)
	}
	// The RTO remains armed as the backstop; TLP re-arms on new ACKs.
}

// onRTO is the last-resort timeout: collapse the window via the FAE (which
// also flips the flow label — PRR), run a full retransmission scan of each
// space, and back off exponentially. The scan must cover EVERY unacked
// packet, not just the head: faster recovery paths are selective (RACK
// needs a later delivery on the same flow, TLP probes only the tail, the
// NACK backoff only re-sends packets the peer has seen), so a dropped
// packet in the middle of the window has no other guaranteed path back
// onto the wire — and it may carry the one RSN a resource-pressured
// receiver is waiting for before it can drain its reorder buffer.
func (c *Conn) onRTO() {
	if c.failed || c.totalOutstanding() == 0 {
		return
	}
	c.Stats.RTOs++
	c.consecRTOs++
	if uint64(c.consecRTOs) > c.Stats.MaxConsecRTOs {
		c.Stats.MaxConsecRTOs = uint64(c.consecRTOs)
	}
	if c.cfg.MaxConsecutiveRTOs > 0 && c.consecRTOs >= c.cfg.MaxConsecutiveRTOs {
		c.fail()
		return
	}
	now := c.sim.Now()
	for _, ts := range c.tx {
		if c.cfg.LegacyHotPath {
			scanned := false
			for psn := ts.base; psn != ts.next; psn++ {
				tp := ts.slot(psn)
				if !tp.live || tp.acked {
					continue
				}
				if !scanned {
					scanned = true
					if c.cb.PostEvent != nil {
						c.cb.PostEvent(fae.Event{
							Kind: fae.EventRTO, Conn: c.id, Flow: int(tp.flow), Now: now,
						})
					}
				}
				c.retransmit(tp, retxRTO)
			}
			continue
		}
		// Every unacked live packet, parked ones included (the RTO
		// supersedes their pending backoff). ts.next is re-read after each
		// mask is drained: the first retransmit posts EventRTO, and with a
		// zero FAE response delay the window update re-enters trySend
		// synchronously, so brand-new packets can be stamped while the
		// scan is still running. The per-PSN loop above picks those up by
		// re-reading ts.next every iteration; the word scan must extend
		// its mask the same way or a freshly sent tail packet would
		// escape the RTO retransmission. Growth only ever appends offsets
		// past the previous bound (base and the acked mirror change only
		// on packet receipt, never inside this loop), so extending keeps
		// the visit order identical to the per-PSN scan.
		scanned := false
		for lo := 0; ; {
			hiBound := int(ts.next - ts.base)
			if lo >= hiBound {
				break
			}
			cand := wire.LowMask(hiBound).AndNot(wire.LowMask(lo)).AndNot(ts.acked)
			lo = hiBound
			for wi, w := range cand {
				hi := wi * 64
				for w != 0 {
					o := hi + bits.TrailingZeros64(w)
					w &= w - 1
					tp := ts.slot(ts.base + uint32(o))
					if !scanned {
						scanned = true
						if c.cb.PostEvent != nil {
							c.cb.PostEvent(fae.Event{
								Kind: fae.EventRTO, Conn: c.id, Flow: int(tp.flow), Now: now,
							})
						}
					}
					c.retransmit(tp, retxRTO)
				}
			}
		}
	}
	if c.rtoBackoff < 8 {
		c.rtoBackoff++
	}
	if c.cfg.EagerTimers {
		c.rtoTimer.Stop()
		c.armTimers()
		return
	}
	// Lazy: overwrite the deadline with the backed-off interval (the
	// retransmit path just re-armed it at the pre-backoff value).
	c.setRTODeadline(now.Add(c.rtoDelay()))
}

// fail declares the connection dead: timers stop, queues drop (their
// packets return to the pool, as do the tracked unacked ones), and the TL
// is told to error everything pending (§5.2: exceptions are handled in the
// fast path, not by retrying forever).
func (c *Conn) fail() {
	if c.failed {
		return
	}
	c.failed = true
	c.rtoTimer.Stop()
	c.tlpTimer.Stop()
	c.rackTimer.Stop()
	c.paceTimer.Stop()
	c.rtoDeadline, c.tlpDeadline, c.rackDeadline = 0, 0, 0
	for c.reqQ.len() > 0 {
		c.pool.Release(c.reqQ.pop())
	}
	for c.respQ.len() > 0 {
		c.pool.Release(c.respQ.pop())
	}
	c.reqQ.reset()
	c.respQ.reset()
	for _, ts := range c.tx {
		for psn := ts.base; psn != ts.next; psn++ {
			if tp := ts.slot(psn); tp.live && !tp.acked && tp.pkt != nil {
				c.pool.Release(tp.pkt)
				tp.pkt = nil
			}
		}
	}
	if c.cb.Failed != nil {
		c.cb.Failed(ErrConnectionLost)
	}
}

// Fail declares the connection administratively dead from outside the
// transport — the teardown edge of a crash-without-recovery fault. It runs
// the same path as RTO-budget exhaustion: timers stop, queued and unacked
// packets return to the pool, and the Failed callback errors everything
// the TL still has pending. Idempotent, like the internal failure path.
func (c *Conn) Fail() { c.fail() }
