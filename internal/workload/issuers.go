package workload

import (
	"math/rand"
	"time"

	"falcon/internal/sim"
)

// ClosedLoop keeps `window` operations outstanding until `total` have been
// issued; done (optional) fires when all complete. issue must invoke its
// callback exactly once per operation and may return false to signal
// temporary backpressure (the loop retries after a pause).
type ClosedLoop struct {
	sim    *sim.Simulator
	window int
	total  int
	issue  func(opDone func()) bool
	done   func()

	issued    int
	inflight  int
	completed int
}

// NewClosedLoop builds the issuer; call Start to begin.
func NewClosedLoop(s *sim.Simulator, window, total int, issue func(opDone func()) bool, done func()) *ClosedLoop {
	if window <= 0 {
		window = 1
	}
	return &ClosedLoop{sim: s, window: window, total: total, issue: issue, done: done}
}

// Start issues the initial window.
func (c *ClosedLoop) Start() { c.pump() }

// Completed reports finished operations.
func (c *ClosedLoop) Completed() int { return c.completed }

func (c *ClosedLoop) pump() {
	for c.inflight < c.window && c.issued < c.total {
		ok := c.issue(c.opDone)
		if !ok {
			// Backpressured: retry after a pause.
			c.sim.After(20*time.Microsecond, c.pump)
			return
		}
		c.issued++
		c.inflight++
	}
}

func (c *ClosedLoop) opDone() {
	c.inflight--
	c.completed++
	if c.completed == c.total {
		if c.done != nil {
			c.done()
		}
		return
	}
	c.pump()
}

// Poisson issues operations with exponential inter-arrival times at the
// given rate (ops/sec) until `total` have been issued. Operations are
// open-loop: issuance does not wait for completions.
type Poisson struct {
	sim   *sim.Simulator
	rng   *rand.Rand
	rate  float64
	total int
	issue func()

	issued int
}

// NewPoisson builds the issuer; call Start to begin.
func NewPoisson(s *sim.Simulator, rng *rand.Rand, rate float64, total int, issue func()) *Poisson {
	if rate <= 0 {
		panic("workload: poisson rate must be positive")
	}
	return &Poisson{sim: s, rng: rng, rate: rate, total: total, issue: issue}
}

// Start schedules the first arrival.
func (p *Poisson) Start() { p.next() }

func (p *Poisson) next() {
	if p.issued >= p.total {
		return
	}
	gap := time.Duration(p.rng.ExpFloat64() / p.rate * 1e9)
	p.sim.After(gap, func() {
		p.issued++
		p.issue()
		p.next()
	})
}
