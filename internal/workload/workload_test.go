package workload

import (
	"testing"
	"time"

	"falcon/internal/sim"
	"falcon/internal/swtransport"
)

// fakeMessenger delivers after a fixed latency plus a bandwidth term, and
// records traffic.
type fakeMessenger struct {
	s       *sim.Simulator
	ranks   int
	latency time.Duration
	gbps    float64
	sends   [][3]int
}

func (f *fakeMessenger) Ranks() int { return f.ranks }

func (f *fakeMessenger) Send(from, to, n int, done func()) {
	f.sends = append(f.sends, [3]int{from, to, n})
	d := f.latency + time.Duration(float64(n)*8/f.gbps)
	f.s.After(d, done)
}

func newFake(ranks int) (*sim.Simulator, *fakeMessenger) {
	s := sim.New(1)
	return s, &fakeMessenger{s: s, ranks: ranks, latency: 5 * time.Microsecond, gbps: 100}
}

func TestAllReduceSmallUsesRecursiveDoubling(t *testing.T) {
	s, m := newFake(8)
	done := false
	AllReduce(m, 64, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("allreduce never completed")
	}
	// log2(8)=3 phases x 8 ranks = 24 sends.
	if len(m.sends) != 24 {
		t.Fatalf("sends = %d, want 24", len(m.sends))
	}
}

func TestAllReduceLargeUsesRing(t *testing.T) {
	s, m := newFake(4)
	done := false
	AllReduce(m, 1<<20, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("never completed")
	}
	// 2(p-1)=6 phases x 4 ranks = 24 sends of bytes/p each.
	if len(m.sends) != 24 {
		t.Fatalf("sends = %d, want 24", len(m.sends))
	}
	if m.sends[0][2] != (1<<20)/4 {
		t.Fatalf("chunk = %d", m.sends[0][2])
	}
}

func TestAllReduceSingleRank(t *testing.T) {
	s, m := newFake(1)
	done := false
	AllReduce(m, 100, func() { done = true })
	s.Run()
	if !done || len(m.sends) != 0 {
		t.Fatal("single-rank allreduce should be a no-op")
	}
}

func TestAllToAllSendCount(t *testing.T) {
	s, m := newFake(6)
	done := false
	AllToAll(m, 512, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("never completed")
	}
	// (p-1) phases x p ranks.
	if len(m.sends) != 5*6 {
		t.Fatalf("sends = %d, want 30", len(m.sends))
	}
	// Every rank pair (i != j) covered exactly once.
	seen := map[[2]int]int{}
	for _, snd := range m.sends {
		seen[[2]int{snd[0], snd[1]}]++
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				continue
			}
			if seen[[2]int{i, j}] != 1 {
				t.Fatalf("pair (%d,%d) sent %d times", i, j, seen[[2]int{i, j}])
			}
		}
	}
}

func TestAllGatherPhases(t *testing.T) {
	s, m := newFake(5)
	done := false
	AllGather(m, 1000, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("never completed")
	}
	if len(m.sends) != 4*5 {
		t.Fatalf("sends = %d, want 20", len(m.sends))
	}
}

func TestMultiPingPong(t *testing.T) {
	s, m := newFake(8)
	done := false
	MultiPingPong(m, 64, 10, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("never completed")
	}
	// 4 pairs x 10 iters x 2 directions.
	if len(m.sends) != 80 {
		t.Fatalf("sends = %d, want 80", len(m.sends))
	}
}

func TestLargerCollectiveTakesLonger(t *testing.T) {
	run := func(bytes int) sim.Time {
		s, m := newFake(8)
		AllReduce(m, bytes, func() {})
		s.Run()
		return s.Now()
	}
	if run(1<<20) <= run(64) {
		t.Fatal("1MB allreduce should take longer than 64B")
	}
}

func TestFalconMessengerEndToEnd(t *testing.T) {
	s := sim.New(3)
	m, _ := BuildFalconJob(s, 4, 2, 8)
	done := false
	AllReduce(m, 4096, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("allreduce over Falcon never completed")
	}
}

func TestSWMessengerEndToEnd(t *testing.T) {
	s := sim.New(3)
	m, _ := BuildSWJob(s, 4, 2, 8, swtransport.TCP())
	done := false
	AllReduce(m, 4096, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("allreduce over TCP never completed")
	}
}

func TestFalconBeatsTCPOnSmallAllToAll(t *testing.T) {
	falcon := func() sim.Time {
		s := sim.New(3)
		m, _ := BuildFalconJob(s, 8, 4, 32)
		AllToAll(m, 64, func() {})
		s.Run()
		return s.Now()
	}()
	tcp := func() sim.Time {
		s := sim.New(3)
		m, _ := BuildSWJob(s, 8, 4, 32, swtransport.TCP())
		AllToAll(m, 64, func() {})
		s.Run()
		return s.Now()
	}()
	if falcon >= tcp {
		t.Fatalf("Falcon small AllToAll (%v) should beat TCP (%v)", falcon, tcp)
	}
}

func TestHPCModelScalesWithFastTransport(t *testing.T) {
	perf := func(nodes int) float64 {
		s := sim.New(3)
		m, _ := BuildFalconJob(s, nodes, 1, nodes)
		return RunHPC(s, m, DefaultGromacs(nodes))
	}
	p2, p8 := perf(2), perf(8)
	if p8 <= p2 {
		t.Fatalf("Falcon HPC should scale: %v steps/s at 2 nodes, %v at 8", p2, p8)
	}
}

func TestMigrationRunsAllPhases(t *testing.T) {
	s := sim.New(3)
	// A fast synthetic pipe.
	p := &fakePipe{s: s, gbps: 100, rtt: 20 * time.Microsecond}
	cfg := DefaultMigration()
	cfg.MemoryBytes = 256 << 20 // keep the test fast
	res := RunMigration(s, p, cfg)
	if res.PreCopy <= 0 || res.Blackout <= 0 || res.PostCopy <= 0 {
		t.Fatalf("phases: %+v", res)
	}
	if res.GuestAccessRate <= 0 {
		t.Fatal("guest access rate not measured")
	}
}

type fakePipe struct {
	s    *sim.Simulator
	gbps float64
	rtt  time.Duration
}

func (p *fakePipe) Transfer(n int, done func()) {
	p.s.After(time.Duration(float64(n)*8/p.gbps), done)
}
func (p *fakePipe) Fetch(n int, done func()) { p.s.After(p.rtt, done) }

func TestClosedLoopIssuesAll(t *testing.T) {
	s := sim.New(1)
	issued := 0
	cl := NewClosedLoop(s, 4, 100, func(opDone func()) bool {
		issued++
		s.After(time.Microsecond, opDone)
		return true
	}, nil)
	cl.Start()
	s.Run()
	if cl.Completed() != 100 || issued != 100 {
		t.Fatalf("completed %d issued %d", cl.Completed(), issued)
	}
}

func TestClosedLoopRespectsWindow(t *testing.T) {
	s := sim.New(1)
	inflight, maxInflight := 0, 0
	cl := NewClosedLoop(s, 3, 50, func(opDone func()) bool {
		inflight++
		if inflight > maxInflight {
			maxInflight = inflight
		}
		s.After(time.Microsecond, func() { inflight--; opDone() })
		return true
	}, nil)
	cl.Start()
	s.Run()
	if maxInflight > 3 {
		t.Fatalf("window exceeded: %d", maxInflight)
	}
}

func TestClosedLoopRetriesBackpressure(t *testing.T) {
	s := sim.New(1)
	refusals := 3
	cl := NewClosedLoop(s, 1, 5, func(opDone func()) bool {
		if refusals > 0 {
			refusals--
			return false
		}
		s.After(time.Microsecond, opDone)
		return true
	}, nil)
	cl.Start()
	s.Run()
	if cl.Completed() != 5 {
		t.Fatalf("completed %d of 5 with backpressure", cl.Completed())
	}
}

func TestPoissonIssuesAtRate(t *testing.T) {
	s := sim.New(9)
	count := 0
	p := NewPoisson(s, s.Rand(), 1e6, 1000, func() { count++ })
	p.Start()
	s.Run()
	if count != 1000 {
		t.Fatalf("issued %d", count)
	}
	// 1000 ops at 1M/s ≈ 1ms total (loose bounds).
	if s.Now() < sim.Time(300*time.Microsecond) || s.Now() > sim.Time(3*time.Millisecond) {
		t.Fatalf("1000 arrivals took %v, want ~1ms", s.Now())
	}
}
