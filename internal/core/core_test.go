package core

import (
	"testing"
	"time"

	"falcon/internal/falcon/tl"
	"falcon/internal/falcon/wire"
	"falcon/internal/netsim"
	"falcon/internal/psp"
	"falcon/internal/sim"
)

var testLink = netsim.LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond}

// sink is a target handler that accepts everything.
type sink struct {
	pushes int
	pulls  int
}

func (s *sink) HandlePush(rsn uint64, p *wire.Packet) tl.TargetVerdict {
	s.pushes++
	return tl.TargetVerdict{}
}

func (s *sink) HandlePull(rsn uint64, p *wire.Packet) ([]byte, uint32, tl.TargetVerdict) {
	s.pulls++
	return nil, p.PullLength, tl.TargetVerdict{}
}

func p2pCluster(t *testing.T) (*sim.Simulator, *Cluster, *Endpoint, *Endpoint, *netsim.Port, *sink) {
	t.Helper()
	s := sim.New(11)
	topo, fwd := netsim.PointToPoint(s, testLink)
	cl := NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[1], DefaultNodeConfig())
	epA, epB := cl.Connect(a, b, DefaultConnConfig())
	sk := &sink{}
	epB.SetTarget(sk)
	return s, cl, epA, epB, fwd, sk
}

func TestEndToEndPush(t *testing.T) {
	s, _, epA, epB, _, sk := p2pCluster(t)
	completed := 0
	for i := 0; i < 100; i++ {
		if _, err := epA.Push(nil, 4096, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("push error: %v", err)
			}
			completed++
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if completed != 100 {
		t.Fatalf("completed %d of 100", completed)
	}
	if sk.pushes != 100 {
		t.Fatalf("target saw %d pushes", sk.pushes)
	}
	if epB.PDL().Stats.DeliveredToTL != 100 {
		t.Fatalf("PDL delivered %d", epB.PDL().Stats.DeliveredToTL)
	}
}

func TestEndToEndPull(t *testing.T) {
	s, _, epA, _, _, sk := p2pCluster(t)
	completed := 0
	for i := 0; i < 50; i++ {
		if _, err := epA.Pull(4096, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("pull error: %v", err)
			}
			completed++
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if completed != 50 {
		t.Fatalf("completed %d of 50", completed)
	}
	if sk.pulls != 50 {
		t.Fatalf("target served %d pulls", sk.pulls)
	}
}

func TestLossRecoveredEndToEnd(t *testing.T) {
	s, _, epA, _, fwd, _ := p2pCluster(t)
	fwd.SetDropProb(0.05)
	completed := 0
	for i := 0; i < 200; i++ {
		if _, err := epA.Push(nil, 4096, func(_ []byte, err error) {
			if err == nil {
				completed++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if completed != 200 {
		t.Fatalf("completed %d of 200 under 5%% loss", completed)
	}
	if epA.PDL().Stats.DataRetransmits == 0 {
		t.Fatal("expected retransmissions under loss")
	}
}

func TestReorderingToleratedEndToEnd(t *testing.T) {
	s, _, epA, _, fwd, _ := p2pCluster(t)
	fwd.SetReorder(0.1, 10*time.Microsecond)
	completed := 0
	for i := 0; i < 200; i++ {
		if _, err := epA.Push(nil, 4096, func(_ []byte, err error) {
			if err == nil {
				completed++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if completed != 200 {
		t.Fatalf("completed %d of 200 under reordering", completed)
	}
	// Spurious retransmissions bounded by RACK adaptation.
	if retx := epA.PDL().Stats.DataRetransmits; retx > 20 {
		t.Fatalf("retransmits = %d under pure reordering", retx)
	}
}

func TestSustainedGoodput(t *testing.T) {
	// Stream pushes continuously for 2ms; goodput should approach the
	// 100Gbps link rate (payload/wire overhead aside).
	s, _, epA, _, _, _ := p2pCluster(t)
	var bytes uint64
	var issue func()
	inflight := 0
	issue = func() {
		for inflight < 64 {
			inflight++
			if _, err := epA.Push(nil, 4096, func(_ []byte, err error) {
				inflight--
				bytes += 4096
				issue()
			}); err != nil {
				inflight--
				break
			}
		}
	}
	issue()
	s.RunUntil(sim.Time(2 * time.Millisecond))
	gbps := float64(bytes) * 8 / (2e6) // bits per ns *1e3 => Gbps
	if gbps < 50 {
		t.Fatalf("sustained goodput %.1f Gbps on a 100G link", gbps)
	}
}

func TestMultipathSpreadsAcrossSpines(t *testing.T) {
	s := sim.New(7)
	fabric := netsim.LinkConfig{GbpsRate: 100, PropDelay: 2 * time.Microsecond}
	topo := netsim.TwoRack(s, 2, 4, testLink, fabric)
	cl := NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[2], DefaultNodeConfig()) // other rack
	cfg := DefaultConnConfig()
	cfg.PDL.NumFlows = 4
	epA, epB := cl.Connect(a, b, cfg)
	epB.SetTarget(&sink{})
	done, sent := 0, 0
	var issue func()
	issue = func() {
		for sent-done < 64 && sent < 400 {
			sent++
			if _, err := epA.Push(nil, 4096, func(_ []byte, err error) {
				done++
				issue()
			}); err != nil {
				sent--
				break
			}
		}
	}
	issue()
	s.Run()
	if done != 400 {
		t.Fatalf("completed %d", done)
	}
	if used := spinesUsedToward(topo, topo.Hosts[2].ID); used < 2 {
		t.Fatalf("multipath data used %d spines", used)
	}
}

// spinesUsedToward counts spines that forwarded frames toward dst.
func spinesUsedToward(topo *netsim.Topology, dst netsim.NodeID) int {
	used := 0
	for _, spine := range topo.Spines {
		var tx uint64
		for _, port := range spine.RouteTo(dst) {
			tx += port.Stats.TxFrames
		}
		if tx > 0 {
			used++
		}
	}
	return used
}

func TestSinglePathUsesOneSpine(t *testing.T) {
	s := sim.New(7)
	topo := netsim.TwoRack(s, 2, 4, testLink, testLink)
	cl := NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[2], DefaultNodeConfig())
	cfg := DefaultConnConfig()
	cfg.PDL.NumFlows = 1
	epA, epB := cl.Connect(a, b, cfg)
	epB.SetTarget(&sink{})
	for i := 0; i < 100; i++ {
		if _, err := epA.Push(nil, 4096, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if used := spinesUsedToward(topo, topo.Hosts[2].ID); used != 1 {
		t.Fatalf("single-path data used %d spines", used)
	}
}

func TestIncastManyConnections(t *testing.T) {
	s := sim.New(13)
	topo := netsim.Star(s, 6, testLink)
	cl := NewCluster(s)
	server := cl.AddNode(topo.Hosts[0], DefaultNodeConfig())
	completed := 0
	total := 0
	for i := 1; i < 6; i++ {
		client := cl.AddNode(topo.Hosts[i], DefaultNodeConfig())
		epC, epS := cl.Connect(client, server, DefaultConnConfig())
		epS.SetTarget(&sink{})
		for j := 0; j < 50; j++ {
			total++
			if _, err := epC.Push(nil, 4096, func(_ []byte, err error) {
				if err == nil {
					completed++
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Run()
	if completed != total {
		t.Fatalf("completed %d of %d in incast", completed, total)
	}
}

func TestPCIeDowngradeShrinksNcwnd(t *testing.T) {
	s, _, epA, epB, _, _ := p2pCluster(t)
	// Slow the receiver's host interface drastically.
	epB.Node().NIC().SetHostGbps(2)
	var issue func()
	inflight, sent := 0, 0
	issue = func() {
		for inflight < 32 && sent < 2000 {
			inflight++
			sent++
			if _, err := epA.Push(nil, 4096, func(_ []byte, err error) {
				inflight--
				issue()
			}); err != nil {
				inflight--
				break
			}
		}
	}
	issue()
	s.RunUntil(sim.Time(5 * time.Millisecond))
	if epA.PDL().Ncwnd() >= 64 {
		t.Fatalf("ncwnd = %v; should shrink under host congestion", epA.PDL().Ncwnd())
	}
	if epB.Node().NIC().Stats.MaxRxOccupancy < 0.2 {
		t.Fatalf("rx occupancy %v never built up", epB.Node().NIC().Stats.MaxRxOccupancy)
	}
}

func TestEndpointClose(t *testing.T) {
	s, _, epA, epB, _, _ := p2pCluster(t)
	epA.Close()
	epB.Close()
	// Traffic for the closed connection is dropped without panic.
	epA.Node().HandleFrame(&netsim.Frame{Payload: &wire.Packet{Type: wire.TypeAck, ConnID: epA.ID()}})
	s.Run()
}

func TestConnectSelfPanics(t *testing.T) {
	s := sim.New(1)
	topo, _ := netsim.PointToPoint(s, testLink)
	cl := NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], DefaultNodeConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cl.Connect(a, a, DefaultConnConfig())
}

func TestPRRRecoversFromPathOutage(t *testing.T) {
	// A spine path dies mid-transfer; PRR (flow-label flip on RTO) must
	// move the flows to surviving spines and finish the transfer.
	s := sim.New(99)
	fabric := netsim.LinkConfig{GbpsRate: 100, PropDelay: 2 * time.Microsecond}
	topo := netsim.TwoRack(s, 2, 4, testLink, fabric)
	cl := NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[2], DefaultNodeConfig())
	cfg := DefaultConnConfig()
	cfg.PDL.NumFlows = 4
	epA, epB := cl.Connect(a, b, cfg)
	epB.SetTarget(&sink{})
	completed := 0
	issued := 0
	var issue func()
	issue = func() {
		for issued-completed < 16 && issued < 300 {
			issued++
			if _, err := epA.Push(nil, 4096, func(_ []byte, err error) {
				completed++
				issue()
			}); err != nil {
				issued--
				break
			}
		}
	}
	issue()
	// Kill spine 0's links toward rack 2 shortly into the run.
	s.After(100*time.Microsecond, func() {
		for _, port := range topo.Spines[0].RouteTo(topo.Hosts[2].ID) {
			port.SetDown(true)
		}
	})
	s.Run()
	if completed != 300 {
		t.Fatalf("completed %d of 300 across the outage", completed)
	}
	if epA.Node().Engine().Repaths == 0 {
		t.Fatal("expected PRR/PLB repaths after the outage")
	}
}

func TestMixedReadWriteWorkload(t *testing.T) {
	s, _, epA, epB, fwd, _ := p2pCluster(t)
	fwd.SetDropProb(0.01)
	done := 0
	for i := 0; i < 60; i++ {
		var err error
		if i%3 == 0 {
			_, err = epA.Pull(4096, func(_ []byte, e error) {
				if e == nil {
					done++
				}
			})
		} else {
			_, err = epA.Push(nil, 4096, func(_ []byte, e error) {
				if e == nil {
					done++
				}
			})
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if done != 60 {
		t.Fatalf("completed %d of 60 mixed ops", done)
	}
	if epB.PDL().Stats.DeliveredToTL == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestOrderedCompletionsReleaseInRSNOrder(t *testing.T) {
	// Under loss, packets complete out of order at the PDL, but the
	// ordered TL must release completions to the ULP in RSN order.
	s, _, epA, _, fwd, _ := p2pCluster(t)
	fwd.SetDropProb(0.05)
	var completed []uint64
	for i := 0; i < 160; i++ {
		rsn, err := epA.Push(nil, 4096, nil)
		if err != nil {
			t.Fatal(err)
		}
		r := rsn
		// Re-wrap via a second push with a capture (issue pairs so the
		// callback records RSN order).
		_ = r
	}
	// Issue a second batch whose completions record their RSNs.
	type tagged struct{ rsn uint64 }
	for i := 0; i < 80; i++ {
		var tg tagged
		rsn, err := epA.Push(nil, 4096, func(_ []byte, err error) {
			completed = append(completed, tg.rsn)
		})
		if err != nil {
			t.Fatal(err)
		}
		tg.rsn = rsn
	}
	s.Run()
	if got := epA.TL().Stats.CompletedOK; got != 240 {
		t.Fatalf("completed %d of 240 under loss", got)
	}
	for i := 1; i < len(completed); i++ {
		if completed[i] < completed[i-1] {
			t.Fatalf("ordered completions released out of RSN order: %v", completed)
		}
	}
}

func TestPSPEncryptedConnection(t *testing.T) {
	s := sim.New(77)
	topo, fwd := netsim.PointToPoint(s, testLink)
	cl := NewCluster(s)
	cfgA := DefaultNodeConfig()
	cfgA.PSPMasterKey = []byte("node-a-device-master-key-0123456")
	cfgB := DefaultNodeConfig()
	cfgB.PSPMasterKey = []byte("node-b-device-master-key-6543210")
	a := cl.AddNode(topo.Hosts[0], cfgA)
	b := cl.AddNode(topo.Hosts[1], cfgB)
	epA, epB := cl.Connect(a, b, DefaultConnConfig())
	epB.SetTarget(&sink{})
	fwd.SetDropProb(0.02)
	completed := 0
	payload := []byte("encrypted falcon payload bytes!!")
	var echoed []byte
	for i := 0; i < 100; i++ {
		if _, err := epA.Push(payload, uint32(len(payload)), func(_ []byte, err error) {
			if err == nil {
				completed++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// And a pull to verify ciphertext round-trips data.
	epB2target := &sink{}
	_ = epB2target
	if _, err := epA.Pull(64, func(data []byte, err error) {
		if err == nil {
			echoed = data
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if completed != 100 {
		t.Fatalf("completed %d of 100 encrypted pushes under loss", completed)
	}
	_ = echoed
	if epA.txSA.Sealed == 0 || epB.rxSA.Opened == 0 {
		t.Fatal("no packets sealed/opened")
	}
	// Every delivered frame went through the encrypted path.
	if epB.PDL().Stats.DeliveredToTL == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestPSPKeyMismatchDropsEverything(t *testing.T) {
	// An endpoint decrypting against the wrong device key authenticates
	// nothing: no traffic is delivered, the sender's RTO keeps retrying,
	// and nothing crashes or leaks plaintext.
	s := sim.New(78)
	topo, _ := netsim.PointToPoint(s, testLink)
	cl := NewCluster(s)
	cfgA := DefaultNodeConfig()
	cfgA.PSPMasterKey = []byte("node-a-device-master-key-0123456")
	cfgB := DefaultNodeConfig()
	cfgB.PSPMasterKey = []byte("node-b-device-master-key-6543210")
	a := cl.AddNode(topo.Hosts[0], cfgA)
	b := cl.AddNode(topo.Hosts[1], cfgB)
	epA, epB := cl.Connect(a, b, DefaultConnConfig())
	epB.SetTarget(&sink{})
	// Corrupt B's receive SA: derive it from the wrong master key.
	wrong, err := psp.NewSA([]byte("an-entirely-wrong-master-key-zzz"), epB.ID())
	if err != nil {
		t.Fatal(err)
	}
	wrong.ReplayWindowDisabled = true
	epB.rxSA = wrong
	completed := 0
	if _, err := epA.Push(nil, 1024, func(_ []byte, e error) { completed++ }); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(sim.Time(3 * time.Millisecond))
	if completed != 0 {
		t.Fatal("push completed despite unauthenticated path")
	}
	if epB.PDL().Stats.DeliveredToTL != 0 {
		t.Fatal("data delivered despite auth failures")
	}
	if wrong.AuthFails == 0 {
		t.Fatal("no authentication failures recorded")
	}
	if epA.PDL().Stats.RTOs == 0 {
		t.Fatal("sender should be timing out")
	}
}

func TestPSPRequiresBothKeys(t *testing.T) {
	s := sim.New(79)
	topo, _ := netsim.PointToPoint(s, testLink)
	cl := NewCluster(s)
	cfgA := DefaultNodeConfig()
	cfgA.PSPMasterKey = []byte("node-a-device-master-key-0123456")
	a := cl.AddNode(topo.Hosts[0], cfgA)
	b := cl.AddNode(topo.Hosts[1], DefaultNodeConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for one-sided PSP")
		}
	}()
	cl.Connect(a, b, DefaultConnConfig())
}

func TestDeadConnectionErrorsEverything(t *testing.T) {
	// Sever the fabric entirely mid-run: the connection must declare
	// failure, error every pending transaction, return its resources,
	// and refuse new work.
	s, _, epA, _, fwd, _ := p2pCluster(t)
	var errs []error
	for i := 0; i < 200; i++ {
		if _, err := epA.Push(nil, 4096, func(_ []byte, e error) {
			errs = append(errs, e)
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.After(5*time.Microsecond, func() {
		fwd.SetDown(true)
		epA.Node().Host().Uplink().SetDown(true)
	})
	s.RunUntil(sim.Time(500 * time.Millisecond))
	if len(errs) != 200 {
		t.Fatalf("completions = %d of 200", len(errs))
	}
	failures := 0
	for _, e := range errs {
		if e != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no transaction errored despite a severed fabric")
	}
	if !epA.PDL().Failed() {
		t.Fatal("PDL did not declare failure")
	}
	if epA.TL().Dead() == nil {
		t.Fatal("TL not marked dead")
	}
	// New work is refused.
	if _, err := epA.Push(nil, 64, nil); err == nil {
		t.Fatal("push accepted on a dead connection")
	}
	// Every resource returned.
	res := epA.Node().Resources()
	for k := tl.PoolKind(0); k < 4; k++ {
		if occ := res.Occupancy(k); occ != 0 {
			t.Fatalf("pool %v occupancy %v after failure", k, occ)
		}
	}
}
