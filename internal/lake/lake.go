// Package lake is the telemetry lake: a columnar store and query layer
// over the deterministic benchmark artifacts falconbench emits — the
// per-figure metrics snapshots (`falconmetrics/v1` JSON), the
// virtual-clock time-series CSVs (`-series`), and the performance
// reports (`falconbench/v1` JSON). It turns the determinism contract
// (byte-identical same-seed artifacts, DESIGN.md §9) into a
// regression-detection system: accumulated runs are ingested into one
// compact index, and any two runs can be compared cell-by-cell.
//
// The package splits into four pieces:
//
//   - Indexer (indexer.go): Builder ingests artifact files, parses the
//     hierarchical metric names into typed dimensions (path.go), and
//     Seal()s into an immutable Index — an interned string dictionary
//     plus sorted parallel columns of (run, metric-path, value) cells
//     and column-major time series.
//   - Format (format.go): a deterministic, checksummed binary encoding
//     of the Index. Equal ingests produce equal bytes, so a lake file
//     is itself diffable and cacheable.
//   - Querier (querier.go): point lookups, segment-glob selection over
//     metric paths, percentile summaries (reusing internal/stats
//     histograms), and time-series slices.
//   - Differ (differ.go): cell-by-cell comparison of two runs with
//     per-metric determinism classes — exact match for
//     determinism-contract metrics, relative-error tolerance bands for
//     timing-derived and perf metrics — emitting a deterministic
//     findings report.
//
// METRICS.md is the authoritative reference for every metric name that
// flows into the lake and for the dimension grammar ParsePath applies;
// cmd/falconlake is the CLI over this package, and `make lakecheck`
// gates every build on the committed artifacts ingesting cleanly and
// self-diffing empty.
package lake

import (
	"fmt"
	"sort"
)

// Run is the identity and provenance of one ingested benchmark run.
type Run struct {
	// Name is the run key used in queries and diffs (e.g. "pr3").
	Name string
	// Quick records whether any ingested report was a -quick run.
	Quick bool
	// Schemas lists the artifact schemas ingested into this run,
	// sorted (e.g. "falconbench/v1", "falconmetrics/v1",
	// "falconseries/v1").
	Schemas []string
	// Sources lists the ingested file names (base names), sorted.
	Sources []string
}

// Series is one ingested time series: a shared timestamp column plus
// one value column per tracked probe, stored column-major.
type Series struct {
	run   uint32
	name  uint32
	cols  []uint32
	times []int64
	vals  [][]float64 // [column][row]
}

// Index is the sealed, immutable telemetry lake: an interned string
// dictionary, runs sorted by name, metric cells as parallel columns
// sorted by (run, path), and time series sorted by (run, name).
// Construct one with a Builder or Decode; all accessors are
// read-only and safe for concurrent use.
type Index struct {
	strs []string // sorted, unique
	runs []Run

	// Cell columns, sorted by (run index, path string). Because strs
	// is sorted, comparing path ids orders the same as comparing the
	// path strings themselves.
	cellRun  []uint32
	cellPath []uint32
	cellVal  []float64

	// runCellOff[i]..runCellOff[i+1] is run i's cell range.
	runCellOff []uint32

	series []Series
}

// Runs returns the ingested runs, sorted by name.
func (ix *Index) Runs() []Run { return ix.runs }

// NumCells returns the total number of metric cells across all runs.
func (ix *Index) NumCells() int { return len(ix.cellVal) }

// runIndex returns the position of the named run, or -1.
func (ix *Index) runIndex(run string) int {
	i := sort.Search(len(ix.runs), func(i int) bool { return ix.runs[i].Name >= run })
	if i < len(ix.runs) && ix.runs[i].Name == run {
		return i
	}
	return -1
}

// Lookup returns the value of one metric path in one run.
func (ix *Index) Lookup(run, path string) (float64, bool) {
	r := ix.runIndex(run)
	if r < 0 {
		return 0, false
	}
	lo, hi := int(ix.runCellOff[r]), int(ix.runCellOff[r+1])
	i := lo + sort.Search(hi-lo, func(i int) bool {
		return ix.strs[ix.cellPath[lo+i]] >= path
	})
	if i < hi && ix.strs[ix.cellPath[i]] == path {
		return ix.cellVal[i], true
	}
	return 0, false
}

// EachCell calls fn for every (path, value) cell of the named run in
// sorted path order. It reports whether the run exists.
func (ix *Index) EachCell(run string, fn func(path string, v float64)) bool {
	r := ix.runIndex(run)
	if r < 0 {
		return false
	}
	for i := ix.runCellOff[r]; i < ix.runCellOff[r+1]; i++ {
		fn(ix.strs[ix.cellPath[i]], ix.cellVal[i])
	}
	return true
}

// SeriesNames returns the time-series names of the named run, sorted.
func (ix *Index) SeriesNames(run string) []string {
	r := ix.runIndex(run)
	if r < 0 {
		return nil
	}
	var names []string
	for i := range ix.series {
		if int(ix.series[i].run) == r {
			names = append(names, ix.strs[ix.series[i].name])
		}
	}
	return names
}

// SeriesView is a read-only handle on one ingested time series.
type SeriesView struct {
	ix *Index
	s  *Series
}

// FindSeries returns a view of the named series of the named run.
func (ix *Index) FindSeries(run, name string) (SeriesView, bool) {
	r := ix.runIndex(run)
	if r < 0 {
		return SeriesView{}, false
	}
	for i := range ix.series {
		s := &ix.series[i]
		if int(s.run) == r && ix.strs[s.name] == name {
			return SeriesView{ix: ix, s: s}, true
		}
	}
	return SeriesView{}, false
}

// Columns returns the series' value-column names in CSV order.
func (sv SeriesView) Columns() []string {
	out := make([]string, len(sv.s.cols))
	for i, id := range sv.s.cols {
		out[i] = sv.ix.strs[id]
	}
	return out
}

// Rows returns the number of sampled rows.
func (sv SeriesView) Rows() int { return len(sv.s.times) }

// Times returns the shared timestamp column (virtual nanoseconds).
// The returned slice is owned by the index; callers must not mutate it.
func (sv SeriesView) Times() []int64 { return sv.s.times }

// Column returns the named value column (index-owned; do not mutate),
// or nil when the column does not exist.
func (sv SeriesView) Column(name string) []float64 {
	for i, id := range sv.s.cols {
		if sv.ix.strs[id] == name {
			return sv.s.vals[i]
		}
	}
	return nil
}

// intern returns the dictionary id of s, which must be present.
func (ix *Index) intern(s string) (uint32, error) {
	i := sort.SearchStrings(ix.strs, s)
	if i < len(ix.strs) && ix.strs[i] == s {
		return uint32(i), nil
	}
	return 0, fmt.Errorf("lake: string %q not in dictionary", s)
}
