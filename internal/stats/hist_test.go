package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistIndexContinuity(t *testing.T) {
	// Every value maps into exactly one bucket, buckets are contiguous,
	// and low/high invert the index.
	prev := -1
	for v := uint64(0); v < 1<<20; v++ {
		i := histIndex(v)
		if i < prev {
			t.Fatalf("bucket index decreased at v=%d: %d -> %d", v, prev, i)
		}
		if i != prev && i != prev+1 {
			t.Fatalf("bucket index skipped at v=%d: %d -> %d", v, prev, i)
		}
		if lo, hi := histLow(i), histHigh(i); v < lo || v > hi {
			t.Fatalf("v=%d outside bucket %d range [%d,%d]", v, i, lo, hi)
		}
		prev = i
	}
}

func TestHistIndexExtremes(t *testing.T) {
	for _, v := range []uint64{0, 1, 15, 16, 17, 1 << 32, math.MaxUint64} {
		i := histIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("v=%d index %d out of [0,%d)", v, i, histBuckets)
		}
		if lo, hi := histLow(i), histHigh(i); v < lo || v > hi {
			t.Fatalf("v=%d outside bucket %d range [%d,%d]", v, i, lo, hi)
		}
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(uint64(i % 16)) // all in the exact linear region
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 15 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Quantile(50); got != 7 {
		t.Fatalf("p50 = %d, want 7", got)
	}
	if got := h.Quantile(100); got != 15 {
		t.Fatalf("p100 = %d, want 15", got)
	}
}

func TestHistogramBoundedError(t *testing.T) {
	// Compare against exact nearest-rank on the raw samples: the histogram
	// quantile must be within 1/16 relative error.
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	var s Series
	for i := 0; i < 10000; i++ {
		v := uint64(rng.Int63n(50_000_000)) // up to 50ms in ns
		h.Record(v)
		s.Add(float64(v))
	}
	for _, p := range []float64{1, 25, 50, 90, 99, 99.9, 100} {
		exact := s.Percentile(p)
		approx := float64(h.Quantile(p))
		if exact == 0 {
			continue
		}
		rel := math.Abs(approx-exact) / exact
		if rel > 1.0/histSubCount {
			t.Errorf("p%v: exact=%v approx=%v rel err %.4f > %.4f",
				p, exact, approx, rel, 1.0/histSubCount)
		}
	}
}

func TestHistogramOrderIndependence(t *testing.T) {
	// Identical multisets recorded in different orders must produce
	// identical quantiles — the determinism contract telemetry relies on.
	vals := make([]uint64, 5000)
	rng := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = uint64(rng.Int63n(1 << 30))
	}
	var a, b Histogram
	for _, v := range vals {
		a.Record(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Record(vals[i])
	}
	for p := 1.0; p <= 100; p += 0.5 {
		if a.Quantile(p) != b.Quantile(p) {
			t.Fatalf("p%v differs by record order: %d vs %d", p, a.Quantile(p), b.Quantile(p))
		}
	}
}

func TestHistogramDurationAndReset(t *testing.T) {
	var h Histogram
	h.RecordDuration(-time.Second) // clamps to 0
	h.RecordDuration(time.Millisecond)
	if h.Count() != 2 || h.Min() != 0 {
		t.Fatalf("count=%d min=%d", h.Count(), h.Min())
	}
	if got := h.QuantileDuration(100); got != time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if h.Mean() != float64(time.Millisecond)/2 {
		t.Fatalf("mean = %v", h.Mean())
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(50) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHistogramRecordNoAlloc(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(12345)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestNearestRank(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want int
	}{
		{0, 50, 0}, {1, 50, 0}, {100, 1, 0}, {100, 50, 49},
		{100, 99, 98}, {100, 100, 99}, {3, 200, 2}, {3, -5, 0},
	}
	for _, c := range cases {
		if got := NearestRank(c.n, c.p); got != c.want {
			t.Errorf("NearestRank(%d, %v) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

func TestSortFloatsNaNDeterministic(t *testing.T) {
	nan := math.NaN()
	a := []float64{3, nan, 1, nan, 2}
	b := []float64{nan, 2, nan, 3, 1}
	sortFloats(a)
	sortFloats(b)
	for i := range a {
		an, bn := math.IsNaN(a[i]), math.IsNaN(b[i])
		if an != bn || (!an && a[i] != b[i]) {
			t.Fatalf("NaN sort order differs at %d: %v vs %v", i, a, b)
		}
	}
	if !math.IsNaN(a[0]) || !math.IsNaN(a[1]) || a[2] != 1 {
		t.Fatalf("NaNs should sort first: %v", a)
	}
}

// Property: histogram quantile is monotone in p and within [Min, Max].
func TestQuickHistogramMonotonic(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Record(uint64(v))
		}
		prev := uint64(0)
		for p := 1.0; p <= 100; p += 3 {
			v := h.Quantile(p)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i) * 37)
	}
}
