package rdma

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"falcon/internal/core"
	"falcon/internal/falcon/tl"
	"falcon/internal/netsim"
	"falcon/internal/sim"
)

var testLink = netsim.LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond}

func qpPair(t *testing.T) (*sim.Simulator, *QP, *QP, *netsim.Port) {
	t.Helper()
	s := sim.New(21)
	topo, fwd := netsim.PointToPoint(s, testLink)
	cl := core.NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	epA, epB := cl.Connect(a, b, core.DefaultConnConfig())
	qa := NewQP(epA, Config{})
	qb := NewQP(epB, Config{})
	return s, qa, qb, fwd
}

func TestWriteMovesData(t *testing.T) {
	s, qa, qb, _ := qpPair(t)
	remote := make([]byte, 1<<16)
	qb.RegisterMemory(remote)
	payload := bytes.Repeat([]byte("falcon-write!"), 100) // 1300 bytes
	var comp *Completion
	if err := qa.Write(1, 4096, payload, 0, func(c Completion) { comp = &c }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if comp == nil || comp.Err != nil {
		t.Fatalf("write completion: %+v", comp)
	}
	if !bytes.Equal(remote[4096:4096+len(payload)], payload) {
		t.Fatal("remote memory does not contain written bytes")
	}
}

func TestLargeWriteSegmented(t *testing.T) {
	s, qa, qb, _ := qpPair(t)
	remote := make([]byte, 1<<20)
	qb.RegisterMemory(remote)
	payload := make([]byte, 64<<10) // 16 segments at 4KB MTU
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	done := false
	if err := qa.Write(2, 0, payload, 0, func(c Completion) {
		if c.Err != nil {
			t.Errorf("err: %v", c.Err)
		}
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !done {
		t.Fatal("write never completed")
	}
	if !bytes.Equal(remote[:len(payload)], payload) {
		t.Fatal("segmented write corrupted data")
	}
	// One completion for 16 segments.
	if got := qa.Endpoint().PDL().Stats.DataSent; got < 16 {
		t.Fatalf("sent %d packets, expected >= 16 segments", got)
	}
}

func TestReadReturnsData(t *testing.T) {
	s, qa, qb, _ := qpPair(t)
	remote := make([]byte, 1<<16)
	for i := range remote {
		remote[i] = byte(i)
	}
	qb.RegisterMemory(remote)
	var got []byte
	if err := qa.Read(3, 100, 10000, func(c Completion) {
		if c.Err != nil {
			t.Errorf("read err: %v", c.Err)
		}
		got = c.Data
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !bytes.Equal(got, remote[100:10100]) {
		t.Fatalf("read returned %d bytes, mismatch", len(got))
	}
}

func TestSendRecv(t *testing.T) {
	s, qa, qb, _ := qpPair(t)
	buf := make([]byte, 8192)
	var rn int
	qb.PostRecv(buf, 0, func(n int, err error) { rn = n })
	msg := bytes.Repeat([]byte("x"), 6000) // 2 segments
	ok := false
	if err := qa.Send(4, msg, 0, func(c Completion) { ok = c.Err == nil }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !ok {
		t.Fatal("send did not complete")
	}
	if rn != 6000 {
		t.Fatalf("receive got %d bytes", rn)
	}
	if !bytes.Equal(buf[:6000], msg) {
		t.Fatal("send data corrupted")
	}
}

func TestSendWithoutRecvRetriesViaRNR(t *testing.T) {
	s, qa, qb, _ := qpPair(t)
	ok := false
	if err := qa.Send(5, []byte("late recv"), 0, func(c Completion) { ok = c.Err == nil }); err != nil {
		t.Fatal(err)
	}
	// Post the receive only after the first RNR round trip.
	s.After(200*time.Microsecond, func() {
		qb.PostRecv(make([]byte, 64), 0, nil)
	})
	s.Run()
	if !ok {
		t.Fatal("send never completed after RNR retry")
	}
	if qb.RNRs == 0 {
		t.Fatal("expected RNR at target")
	}
	if qa.Endpoint().TL().Stats.RNRRetries == 0 {
		t.Fatal("expected initiator RNR retries")
	}
}

func TestWriteOutOfBoundsCIE(t *testing.T) {
	s, qa, qb, _ := qpPair(t)
	qb.RegisterMemoryLen(1024)
	var errs []error
	if err := qa.Write(6, 2048, nil, 100, func(c Completion) { errs = append(errs, c.Err) }); err != nil {
		t.Fatal(err)
	}
	// A subsequent in-bounds write continues fine (CIE semantics).
	if err := qa.Write(7, 0, nil, 100, func(c Completion) { errs = append(errs, c.Err) }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(errs) != 2 {
		t.Fatalf("completions = %d", len(errs))
	}
	if !errors.Is(errs[0], tl.ErrCIE) {
		t.Fatalf("out-of-bounds write err = %v, want CIE", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("in-bounds write after CIE failed: %v", errs[1])
	}
}

func TestCompareSwap(t *testing.T) {
	s, qa, qb, _ := qpPair(t)
	remote := make([]byte, 64)
	remote[7] = 42 // big-endian uint64 at 0 = 42
	qb.RegisterMemory(remote)
	var old []byte
	if err := qa.CompareSwap(8, 0, 42, 99, func(c Completion) {
		if c.Err != nil {
			t.Errorf("cas err: %v", c.Err)
		}
		old = c.Data
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(old) != 8 || old[7] != 42 {
		t.Fatalf("CAS old value = %v", old)
	}
	if remote[7] != 99 {
		t.Fatalf("CAS did not swap: %v", remote[:8])
	}
}

func TestFetchAdd(t *testing.T) {
	s, qa, qb, _ := qpPair(t)
	remote := make([]byte, 64)
	remote[7] = 10
	qb.RegisterMemory(remote)
	if err := qa.FetchAdd(9, 0, 5, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if remote[7] != 15 {
		t.Fatalf("FetchAdd result = %d", remote[7])
	}
	comps := qa.PollCQ()
	if len(comps) != 1 || comps[0].Err != nil {
		t.Fatalf("completions: %+v", comps)
	}
	if comps[0].Data[7] != 10 {
		t.Fatalf("FetchAdd old value = %v", comps[0].Data)
	}
}

func TestWriteUnderLoss(t *testing.T) {
	s, qa, qb, fwd := qpPair(t)
	fwd.SetDropProb(0.05)
	remote := make([]byte, 1<<20)
	qb.RegisterMemory(remote)
	payload := make([]byte, 32<<10)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	completed := 0
	for i := 0; i < 10; i++ {
		if err := qa.Write(uint64(i), uint64(i)*uint64(len(payload)), payload, 0, func(c Completion) {
			if c.Err == nil {
				completed++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if completed != 10 {
		t.Fatalf("completed %d of 10 writes under loss", completed)
	}
	for i := 0; i < 10; i++ {
		if !bytes.Equal(remote[i*len(payload):(i+1)*len(payload)], payload) {
			t.Fatalf("write %d corrupted under loss", i)
		}
	}
}

func TestSizeOnlyOps(t *testing.T) {
	// No backing memory anywhere: ops complete with bounds checking
	// only (the benchmark mode).
	s, qa, qb, _ := qpPair(t)
	qb.RegisterMemoryLen(1 << 30)
	completed := 0
	for i := 0; i < 20; i++ {
		if err := qa.Write(uint64(i), 0, nil, 8192, func(c Completion) {
			if c.Err == nil {
				completed++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := qa.Read(100, 0, 8192, func(c Completion) {
		if c.Err == nil {
			completed++
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if completed != 21 {
		t.Fatalf("completed %d of 21 size-only ops", completed)
	}
}

func TestCompletionQueuePolling(t *testing.T) {
	s, qa, qb, _ := qpPair(t)
	qb.RegisterMemoryLen(1 << 20)
	for i := 0; i < 5; i++ {
		if err := qa.Write(uint64(i), 0, nil, 100, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	comps := qa.PollCQ()
	if len(comps) != 5 {
		t.Fatalf("polled %d completions", len(comps))
	}
	if len(qa.PollCQ()) != 0 {
		t.Fatal("PollCQ should drain")
	}
}

func TestWeaklyOrderedCompletions(t *testing.T) {
	// iWARP model (§4.4): unordered Falcon connection (OOO placement)
	// with in-order completions provided by the QP.
	s := sim.New(41)
	topo, fwd := netsim.PointToPoint(s, testLink)
	cl := core.NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	connCfg := core.DefaultConnConfig()
	connCfg.TL.Ordered = false
	epA, epB := cl.Connect(a, b, connCfg)
	qa := NewQP(epA, Config{WeaklyOrdered: true})
	qb := NewQP(epB, Config{})
	qb.RegisterMemoryLen(1 << 30)
	fwd.SetDropProb(0.04) // losses force out-of-order finishes
	var order []uint64
	for i := 0; i < 60; i++ {
		wrid := uint64(i)
		if err := qa.Write(wrid, 0, nil, 8192, func(c Completion) {
			if c.Err != nil {
				t.Errorf("write %d: %v", c.WRID, c.Err)
			}
			order = append(order, c.WRID)
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if len(order) != 60 {
		t.Fatalf("completed %d of 60", len(order))
	}
	for i, w := range order {
		if w != uint64(i) {
			t.Fatalf("weakly-ordered completions out of post order: %v", order)
		}
	}
}

func TestUnorderedWithoutWeakOrderingCanReorder(t *testing.T) {
	// Contrast: the same setup without the QP's completion sequencing
	// may (and under loss, does) complete out of post order.
	s := sim.New(41)
	topo, fwd := netsim.PointToPoint(s, testLink)
	cl := core.NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	connCfg := core.DefaultConnConfig()
	connCfg.TL.Ordered = false
	epA, epB := cl.Connect(a, b, connCfg)
	qa := NewQP(epA, Config{})
	qb := NewQP(epB, Config{})
	qb.RegisterMemoryLen(1 << 30)
	fwd.SetDropProb(0.04)
	var order []uint64
	for i := 0; i < 60; i++ {
		wrid := uint64(i)
		if err := qa.Write(wrid, 0, nil, 8192, func(c Completion) {
			order = append(order, c.WRID)
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if len(order) != 60 {
		t.Fatalf("completed %d of 60", len(order))
	}
	inOrder := true
	for i, w := range order {
		if w != uint64(i) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Skip("no reordering materialized at this seed; invariant vacuous")
	}
}
