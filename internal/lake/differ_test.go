package lake

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// twoRunIndex builds runs "base" and "next" from the given metric and
// series payloads.
func twoRunIndex(t *testing.T, metricsA, metricsB map[string]float64, seriesA, seriesB string) *Index {
	t.Helper()
	b := NewBuilder()
	addMetrics := func(run string, m map[string]float64) {
		var sb strings.Builder
		sb.WriteString(`{"schema":"falconmetrics/v1","figures":[{"name":"f","metrics":{"at_ns":0,"metrics":[`)
		first := true
		for _, k := range sortedKeys(m) {
			if !first {
				sb.WriteString(",")
			}
			first = false
			fmt.Fprintf(&sb, `{"name":"%s","value":%v}`, k, m[k])
		}
		sb.WriteString(`]}}]}`)
		if err := b.IngestMetricsJSON(run, strings.NewReader(sb.String()), run+".json"); err != nil {
			t.Fatal(err)
		}
	}
	addMetrics("base", metricsA)
	addMetrics("next", metricsB)
	if seriesA != "" {
		if err := b.IngestSeriesCSV("base", "s", strings.NewReader(seriesA), "a.csv"); err != nil {
			t.Fatal(err)
		}
	}
	if seriesB != "" {
		if err := b.IngestSeriesCSV("next", "s", strings.NewReader(seriesB), "b.csv"); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func mustDiff(t *testing.T, ix *Index, a, b string, opt Options) *Report {
	t.Helper()
	rep, err := Diff(ix, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func findingKinds(rep *Report) map[string]string {
	out := make(map[string]string)
	for _, f := range rep.Findings {
		out[f.Path] = f.Kind
	}
	return out
}

// TestDiffClasses exercises the three determinism classes: exact
// metrics flag any drift, timing metrics flag only beyond the
// tolerance band, perf metrics flag only regressions.
func TestDiffClasses(t *testing.T) {
	ix := twoRunIndex(t,
		map[string]float64{
			"fig/a/pdl/data_sent":       100,   // exact, drifts by 1
			"fig/a/pdl/acks_sent":       50,    // exact, unchanged
			"fig/a/pdl/srtt_ns":         10000, // timing, +2% (inside 5%)
			"fig/a/pdl/rtt2_ns":         10000, // timing, +10% (outside 5%)
			"fig/a/perf/wall_ms":        100,   // perf, +10% (inside 25%)
			"fig/b/perf/wall_ms":        100,   // perf, +50% (regression)
			"fig/c/perf/events_per_sec": 1000,  // perf, -50% (regression: lower is worse)
			"fig/d/perf/events_per_sec": 1000,  // perf, +50% (improvement: not flagged)
		},
		map[string]float64{
			"fig/a/pdl/data_sent":       101,
			"fig/a/pdl/acks_sent":       50,
			"fig/a/pdl/srtt_ns":         10200,
			"fig/a/pdl/rtt2_ns":         11000,
			"fig/a/perf/wall_ms":        110,
			"fig/b/perf/wall_ms":        150,
			"fig/c/perf/events_per_sec": 500,
			"fig/d/perf/events_per_sec": 1500,
		},
		"", "")
	rep := mustDiff(t, ix, "base", "next", Options{})
	kinds := findingKinds(rep)
	want := map[string]string{
		"fig/a/pdl/data_sent":       FindingDrift,
		"fig/a/pdl/rtt2_ns":         FindingDrift,
		"fig/b/perf/wall_ms":        FindingPerf,
		"fig/c/perf/events_per_sec": FindingPerf,
	}
	for path, kind := range want {
		if kinds[path] != kind {
			t.Errorf("%s: got kind %q, want %q", path, kinds[path], kind)
		}
	}
	for _, absent := range []string{
		"fig/a/pdl/acks_sent", "fig/a/pdl/srtt_ns",
		"fig/a/perf/wall_ms", "fig/d/perf/events_per_sec",
	} {
		if k, flagged := kinds[absent]; flagged {
			t.Errorf("%s: unexpectedly flagged as %q", absent, k)
		}
	}
	if len(rep.Findings) != len(want) {
		t.Errorf("findings = %d, want %d: %+v", len(rep.Findings), len(want), kinds)
	}
	if rep.CellsCompared != 8 {
		t.Errorf("CellsCompared = %d, want 8", rep.CellsCompared)
	}
}

// TestDiffTolerancesConfigurable widens the bands and checks the same
// drifts stop being findings.
func TestDiffTolerancesConfigurable(t *testing.T) {
	ix := twoRunIndex(t,
		map[string]float64{"fig/a/pdl/lat_ns": 100, "fig/a/perf/wall_ms": 100},
		map[string]float64{"fig/a/pdl/lat_ns": 140, "fig/a/perf/wall_ms": 160},
		"", "")
	if rep := mustDiff(t, ix, "base", "next", Options{}); len(rep.Findings) != 2 {
		t.Fatalf("default tolerances: %d findings, want 2", len(rep.Findings))
	}
	if rep := mustDiff(t, ix, "base", "next", Options{RelTol: 0.5, PerfTol: 0.5}); !rep.Empty() {
		t.Fatalf("wide tolerances should pass, got %+v", rep.Findings)
	}
}

// TestDiffMissingExtra checks set differences in both directions.
func TestDiffMissingExtra(t *testing.T) {
	ix := twoRunIndex(t,
		map[string]float64{"fig/a/pdl/only_in_a": 1, "fig/a/pdl/shared": 2},
		map[string]float64{"fig/a/pdl/only_in_b": 3, "fig/a/pdl/shared": 2},
		"", "")
	rep := mustDiff(t, ix, "base", "next", Options{})
	kinds := findingKinds(rep)
	if kinds["fig/a/pdl/only_in_a"] != FindingMissing {
		t.Errorf("only_in_a: %q, want missing", kinds["fig/a/pdl/only_in_a"])
	}
	if kinds["fig/a/pdl/only_in_b"] != FindingExtra {
		t.Errorf("only_in_b: %q, want extra", kinds["fig/a/pdl/only_in_b"])
	}
	if len(rep.Findings) != 2 || rep.CellsCompared != 1 {
		t.Errorf("findings=%d compared=%d", len(rep.Findings), rep.CellsCompared)
	}
}

// TestDiffSeries checks exact series comparison for exact-class
// columns, tolerance for timing-class columns, and shape findings.
func TestDiffSeries(t *testing.T) {
	base := "t_ns,conn/fcwnd,fwd/queue_drops\n0,16,0\n1000,20,2\n2000,24,2\n"
	// fcwnd (timing) +2% at one row: inside band. queue_drops (exact)
	// differs at two rows: flagged with a row count.
	next := "t_ns,conn/fcwnd,fwd/queue_drops\n0,16,1\n1000,20.4,2\n2000,24,3\n"
	ix := twoRunIndex(t, map[string]float64{"fig/x/pdl/v": 1}, map[string]float64{"fig/x/pdl/v": 1}, base, next)
	rep := mustDiff(t, ix, "base", "next", Options{})
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %+v, want exactly the queue_drops drift", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Kind != FindingSeries || f.Path != "series:s/fwd/queue_drops" {
		t.Fatalf("finding = %+v", f)
	}
	if !strings.Contains(f.Detail, "2/3 rows differ") || !strings.Contains(f.Detail, "t_ns=0") {
		t.Fatalf("detail = %q", f.Detail)
	}
	if rep.SeriesCompared != 1 {
		t.Fatalf("SeriesCompared = %d", rep.SeriesCompared)
	}

	// Shape: different row counts.
	ix2 := twoRunIndex(t, map[string]float64{"fig/x/pdl/v": 1}, map[string]float64{"fig/x/pdl/v": 1},
		base, "t_ns,conn/fcwnd,fwd/queue_drops\n0,16,0\n")
	rep2 := mustDiff(t, ix2, "base", "next", Options{})
	if len(rep2.Findings) != 1 || rep2.Findings[0].Kind != FindingShape {
		t.Fatalf("row-count mismatch: %+v", rep2.Findings)
	}

	// Shape: series missing entirely on one side.
	ix3 := twoRunIndex(t, map[string]float64{"fig/x/pdl/v": 1}, map[string]float64{"fig/x/pdl/v": 1}, base, "")
	rep3 := mustDiff(t, ix3, "base", "next", Options{})
	if len(rep3.Findings) != 1 || rep3.Findings[0].Kind != FindingShape {
		t.Fatalf("missing series: %+v", rep3.Findings)
	}
}

// TestDiffReportDeterminism renders the same diff twice and expects
// byte-identical text and JSON.
func TestDiffReportDeterminism(t *testing.T) {
	ix := twoRunIndex(t,
		map[string]float64{"fig/a/pdl/x": 1, "fig/a/pdl/y": 2, "fig/a/pdl/z_ns": 100},
		map[string]float64{"fig/a/pdl/x": 2, "fig/a/pdl/y": 2, "fig/a/pdl/z_ns": 300},
		"", "")
	render := func() (string, string) {
		rep := mustDiff(t, ix, "base", "next", Options{})
		var txt, js bytes.Buffer
		if err := rep.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return txt.String(), js.String()
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 || j1 != j2 {
		t.Fatal("diff report rendering is not deterministic")
	}
	if !strings.Contains(t1, "value-drift") {
		t.Fatalf("text report missing findings:\n%s", t1)
	}
}

// TestDiffUnknownRun checks the error path.
func TestDiffUnknownRun(t *testing.T) {
	ix := twoRunIndex(t, map[string]float64{"fig/a/pdl/x": 1}, map[string]float64{"fig/a/pdl/x": 1}, "", "")
	if _, err := Diff(ix, "base", "nope", Options{}); err == nil {
		t.Fatal("diff against unknown run should fail")
	}
	if _, err := Diff(ix, "nope", "base", Options{}); err == nil {
		t.Fatal("diff from unknown run should fail")
	}
}
