package experiments

import (
	"fmt"
	"time"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/routing"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/telemetry"
	"falcon/internal/workload"
)

// This file is the fabric-side counterpart of fig15/fig17: instead of
// varying the transport's path policy, it swaps the switches' uplink
// selection (ECMP / spray / adaptive, internal/routing) underneath an
// unchanged Falcon multipath+PLB transport, with and without gray
// failures injected into the fabric. figRouting measures the head-to-head
// under a clean and a statically asymmetric fabric; figGrayFailure under
// flapping links and a correlated multi-uplink outage.

// routingCell is one measured (policy, scenario) run.
type routingCell struct {
	p50, p99  time.Duration
	gbps      float64
	spreadPct float64
	downDrops uint64
	repaths   uint64
}

// uplinkSpread summarizes an equal-cost uplink group after a run: the
// frame imbalance (max-min)*100/max and the total down-link drops. It is
// the same arithmetic telemetry.CollectUplinks emits, computed here so
// the table and the metrics artifact can never disagree.
func uplinkSpread(ports []*netsim.Port) (spreadPct float64, downDrops uint64) {
	var minF, maxF uint64
	for i, p := range ports {
		if i == 0 || p.Stats.TxFrames < minF {
			minF = p.Stats.TxFrames
		}
		if p.Stats.TxFrames > maxF {
			maxF = p.Stats.TxFrames
		}
		downDrops += p.Stats.DownDrops
	}
	if maxF > 0 {
		spreadPct = float64(maxF-minF) * 100 / float64(maxF)
	}
	return spreadPct, downDrops
}

// routingRun drives the §6.1.3 rack pair (8<->8 hosts, 4 spines) at the
// offered load with the given fabric routing policy, after letting
// impair schedule gray failures on ToR-0's uplink group. With a non-nil
// suite it exports conn-0's PDL state, node-0's FAE counters, the uplink
// group's routing-layer spread cells and the (possibly degraded)
// uplink-0 port counters under prefix.
func routingRun(seed int64, pol routing.Policy, load float64, runFor time.Duration,
	impair func(inj *routing.Injector, uplinks []*netsim.Port),
	tel *telemetry.Suite, prefix string) routingCell {
	const hostsPerRack = 8
	const spines = 4
	fabricGbps := float64(spines) * 200
	s, topo, cl := rackPair(seed, hostsPerRack, spines)
	topo.SetRoutingPolicy(pol)
	var nodes []*core.Node
	for _, h := range topo.Hosts {
		nodes = append(nodes, cl.AddNode(h, core.DefaultNodeConfig()))
	}
	// ToR-0's spine uplinks: the equal-cost set every cross-rack frame
	// from rack 0 fans over, and the group gray failures target.
	uplinks := topo.ToRs[0].RouteTo(topo.Hosts[hostsPerRack].ID)
	inj := routing.NewInjector(s)
	if impair != nil {
		impair(inj, uplinks)
	}
	const opBytes = 64 << 10
	var lat stats.Series
	var delivered uint64
	var firstEp *core.Endpoint
	perPairRate := load * fabricGbps / float64(hostsPerRack)
	opsPerSec := perPairRate * 1e9 / 8 / opBytes
	for i := 0; i < hostsPerRack; i++ {
		a := nodes[i]
		b := nodes[hostsPerRack+i]
		epA, epB := cl.Connect(a, b, multipathConn())
		qa := rdma.NewQP(epA, rdma.Config{})
		rdma.NewQP(epB, rdma.Config{}).RegisterMemoryLen(1 << 40)
		if firstEp == nil {
			firstEp = epA
		}
		gen := workload.NewPoisson(s, s.Rand(), opsPerSec, 1<<30, func() {
			start := s.Now()
			qa.Write(0, 0, nil, opBytes, func(c rdma.Completion) {
				if c.Err == nil {
					lat.AddDuration(s.Now().Sub(start))
					delivered += opBytes
				}
			})
		})
		gen.Start()
	}
	if tel != nil {
		reg := tel.Registry()
		telemetry.CollectPDL(reg, prefix+"/conn0", firstEp.PDL())
		telemetry.CollectUplinks(reg, prefix+"/tor0", uplinks)
		// Uplink 0 is the impairment target in every scenario; its port
		// counters carry the slow-port queue depth and down-drop detail.
		telemetry.CollectPort(reg, prefix+"/up0", uplinks[0])
		telemetry.CollectFAE(reg, prefix+"/node0", nodes[0].Engine())
		telemetry.ObserveFAE(reg, prefix+"/node0", nodes[0].Engine())
	}
	s.RunUntil(sim.Time(runFor))
	cell := routingCell{
		p50:  lat.DurationPercentile(50),
		p99:  lat.DurationPercentile(99),
		gbps: stats.Gbps(delivered, runFor),
	}
	cell.spreadPct, cell.downDrops = uplinkSpread(uplinks)
	for _, n := range nodes {
		cell.repaths += n.Engine().Repaths
	}
	return cell
}

// FigRouting reproduces the fabric-policy head-to-head: Falcon
// multipath+PLB running over an ECMP, spray and adaptive fabric, on a
// clean symmetric Clos and on one with a statically degraded uplink
// (uplink 0 at 50 of 200 Gbps — a gray failure ECMP cannot see but
// adaptive routes around and PLB repaths away from).
func FigRouting(runFor time.Duration) *Table { return figRouting(runFor, nil) }

// FigRoutingTel is the instrumented FigRouting: every (policy, fabric)
// cell exports conn/FAE metrics plus the ToR-0 uplink-group spread under
// figRouting/<policy>/<sym|asym>. The table is identical to FigRouting's.
func FigRoutingTel(runFor time.Duration, tel *telemetry.Suite) *Table {
	return figRouting(runFor, tel)
}

func figRouting(runFor time.Duration, tel *telemetry.Suite) *Table {
	t := &Table{
		Title: "Routing policies: Falcon multipath+PLB over ECMP/spray/adaptive fabric, 60% load",
		Columns: []string{"policy", "sym p99", "sym Gbps", "sym spread%",
			"asym p99", "asym Gbps", "asym spread%"},
	}
	// Static asymmetry: uplink 0 degraded from t=0 for the whole run.
	asym := func(inj *routing.Injector, uplinks []*netsim.Port) {
		inj.Slow(uplinks[0], 0, 50, 0, 0)
	}
	for _, pol := range routing.Policies() {
		sym := routingRun(41, pol, 0.6, runFor, nil, tel, "figRouting/"+pol.Name()+"/sym")
		deg := routingRun(41, pol, 0.6, runFor, asym, tel, "figRouting/"+pol.Name()+"/asym")
		t.Rows = append(t.Rows, []string{
			pol.Name(), dur(sym.p99), f1(sym.gbps), f1(sym.spreadPct),
			dur(deg.p99), f1(deg.gbps), f1(deg.spreadPct),
		})
	}
	return t
}

// FigGrayFailure measures each fabric policy under injected gray
// failures: a flapping uplink (two down/up cycles) and a correlated
// outage taking half the uplink group down at once. down_drops counts
// frames the fabric ate; repaths counts Falcon's PLB reacting.
func FigGrayFailure(runFor time.Duration) *Table { return figGrayFailure(runFor, nil) }

// FigGrayFailureTel is the instrumented FigGrayFailure, exporting the
// same per-cell metrics as FigRoutingTel under
// figGrayFailure/<policy>/<flap|outage>.
func FigGrayFailureTel(runFor time.Duration, tel *telemetry.Suite) *Table {
	return figGrayFailure(runFor, tel)
}

func figGrayFailure(runFor time.Duration, tel *telemetry.Suite) *Table {
	t := &Table{
		Title:   "Gray failures: flapping uplink and correlated outage per routing policy, 60% load",
		Columns: []string{"policy", "scenario", "p99", "Gbps", "down_drops", "repaths"},
	}
	scenarios := []struct {
		name   string
		impair func(inj *routing.Injector, uplinks []*netsim.Port)
	}{
		{"flap", func(inj *routing.Injector, uplinks []*netsim.Port) {
			// Two down/up cycles on uplink 0 starting a quarter into the
			// run, each phase an eighth of the window: the port is back up
			// for the final quarter.
			inj.Flap(uplinks[0], sim.Time(runFor/4), runFor/8, runFor/8, 2)
		}},
		{"outage", func(inj *routing.Injector, uplinks []*netsim.Port) {
			// Correlated failure: half the uplink group down at once for a
			// quarter of the window.
			inj.RackOutage([]routing.FailPort{uplinks[0], uplinks[1]},
				sim.Time(runFor/4), runFor/4)
		}},
	}
	for _, pol := range routing.Policies() {
		for _, sc := range scenarios {
			cell := routingRun(43, pol, 0.6, runFor, sc.impair, tel,
				"figGrayFailure/"+pol.Name()+"/"+sc.name)
			t.Rows = append(t.Rows, []string{
				pol.Name(), sc.name, dur(cell.p99), f1(cell.gbps),
				fmt.Sprintf("%d", cell.downDrops), fmt.Sprintf("%d", cell.repaths),
			})
		}
	}
	return t
}
