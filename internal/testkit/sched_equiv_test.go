package testkit

import (
	"fmt"
	"testing"

	"falcon/internal/sim"
)

// TestSweepSchedulerEquivalence runs fault-sweep scenarios under both
// event schedulers and requires byte-identical trace hashes: the timing
// wheel must reproduce the reference heap's (time, seq) delivery order
// exactly, packet for packet, across the full protocol stack. This is the
// end-to-end counterpart of internal/sim's TestWheelHeapEquivalence, which
// checks the schedulers in isolation.
func TestSweepSchedulerEquivalence(t *testing.T) {
	scs := shortMatrix()
	if !testing.Short() {
		scs = Matrix()
	}
	seeds := []int64{0, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, sc := range scs {
		for _, extra := range seeds {
			sc := sc
			sc.Seed += extra * 1000
			t.Run(fmt.Sprintf("%s/seed%d", sc.Name, sc.Seed), func(t *testing.T) {
				sc.Scheduler = sim.SchedulerWheel
				wheel := Run(sc)
				sc.Scheduler = sim.SchedulerHeap
				heap := Run(sc)
				if wheel.TraceHash != heap.TraceHash || wheel.Records != heap.Records {
					t.Fatalf("schedulers diverge on %q seed %d:\n  wheel %016x (%d records)\n  heap  %016x (%d records)",
						sc.Name, sc.Seed, wheel.TraceHash, wheel.Records, heap.TraceHash, heap.Records)
				}
				if wheel.SimTime != heap.SimTime || wheel.Completed != heap.Completed {
					t.Fatalf("schedulers diverge on %q seed %d: simtime %v vs %v, completed %d vs %d",
						sc.Name, sc.Seed, wheel.SimTime, heap.SimTime, wheel.Completed, heap.Completed)
				}
			})
		}
	}
}
