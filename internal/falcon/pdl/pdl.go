// Package pdl implements Falcon's Packet Delivery Layer (§4.1–§4.3): the
// per-connection hardware pipeline that provides reliable packet delivery
// over a lossy, reordering, multipath fabric.
//
// Responsibilities, mirroring the paper:
//
//   - Reliability: per-space sliding TX windows, a 128-bit RX bitmap
//     piggybacked on ACKs (SACK), RACK-TLP loss detection per flow, and an
//     RTO fallback. An OOO-distance heuristic is included as the ablation
//     baseline of Figure 11b.
//   - Congestion control enforcement: the PDL measures per-packet delay via
//     the four hardware timestamps, forwards signals to the FAE, and
//     enforces the returned windows — requests against min(fcwnd, ncwnd),
//     Pull Responses against fcwnd only (the requester pre-reserved RX
//     resources, §4.4).
//   - Multipathing: an indexed list of flows per connection; each packet is
//     mapped to the flow with the largest open congestion window and carries
//     that flow's label (§4.3).
//
// The PDL is transport mechanism only: all parameter computation (Swift,
// RACK/TLP timeouts, repathing, α_c) lives in the FAE.
//
// # Hot-path layout (DESIGN.md §11)
//
// The per-packet send/ack path is steady-state allocation-free: tracked
// packets live in by-value scoreboard slots, the acked/parked sets are
// mirrored in 128-bit bitmaps scanned a word at a time, wire packets are
// recycled through a wire.PacketPool, and every timer is a pooled typed
// event (sim.Action). Two verification oracles cover the rebuild:
// Config.LegacyHotPath restores the per-PSN scan loops (byte-identical
// traces required), and Config.EagerTimers restores stop/re-arm timer
// management (protocol-identical traces required; see testkit).
package pdl

import (
	"time"

	"falcon/internal/falcon/fae"
	"falcon/internal/falcon/wire"
	"falcon/internal/sim"
)

// RecoveryMode selects the sender's loss-detection heuristic.
type RecoveryMode int

const (
	// RecoveryRackTLP is production Falcon: time-based RACK with tail
	// loss probes (§4.1).
	RecoveryRackTLP RecoveryMode = iota
	// RecoveryOOODistance is the 200G-Falcon initial scheme: a packet is
	// eligible for retransmission when a packet with PSN at least
	// OOODistance higher has been SACKed (FACK-style; Figure 11b).
	RecoveryOOODistance
)

func (m RecoveryMode) String() string {
	if m == RecoveryOOODistance {
		return "ooo-distance"
	}
	return "rack-tlp"
}

// PathPolicy selects how packets map to multipath flows (Figure 17).
type PathPolicy int

const (
	// PolicyCongestionAware picks the flow with the largest open window.
	PolicyCongestionAware PathPolicy = iota
	// PolicyRoundRobin sprays packets across flows obliviously.
	PolicyRoundRobin
)

func (p PathPolicy) String() string {
	if p == PolicyRoundRobin {
		return "round-robin"
	}
	return "congestion-aware"
}

// Config parameterizes a PDL connection.
type Config struct {
	// WindowSize is the per-space limit on outstanding PSNs; it matches
	// the 128-bit ACK bitmap so the receiver can always describe the
	// sender's outstanding range.
	WindowSize int
	// NumFlows is the number of multipath flows (1 = single path).
	NumFlows int
	// Policy selects the packet-to-flow mapping.
	Policy PathPolicy
	// Recovery selects the loss-detection heuristic.
	Recovery RecoveryMode
	// OOODistance is the FACK threshold for RecoveryOOODistance.
	OOODistance int
	// AckCoalesceCount triggers an ACK after this many data packets
	// arrive for one flow.
	AckCoalesceCount int
	// AckCoalesceDelay bounds ACK latency when the count is not reached.
	AckCoalesceDelay time.Duration
	// ARInterval sets the AckReq bit every N-th data packet of a flow so
	// the sender keeps RTT samples flowing on long transfers.
	ARInterval int

	// InitialRTO seeds timers before the FAE provides measurements.
	InitialRTO time.Duration
	// MaxRTOBackoff caps exponential RTO backoff.
	MaxRTOBackoff time.Duration
	// MaxConsecutiveRTOs is the retry budget: a connection that times
	// out this many times without any ACK progress is declared failed
	// (Callbacks.Failed fires once) rather than retrying forever.
	// Zero disables the budget (retry forever).
	MaxConsecutiveRTOs int

	// LegacyHotPath selects the per-PSN reference scan loops instead of
	// the word-at-a-time bitmap scans. The two paths must produce
	// byte-identical event traces; the legacy path is kept as the test
	// oracle (testkit's hot-path equivalence suite), mirroring the
	// fabric's SetLegacyAlloc.
	LegacyHotPath bool
	// EagerTimers restores stop/re-arm timer management: every ACK with
	// progress cancels and reschedules the RTO and TLP timers. The
	// default (false) mirrors the same fire times through lazily
	// re-armed deadline timers, which keeps per-ACK work off the timing
	// wheel; the eager path is the oracle for protocol-trace
	// equivalence (fire times match, raw event schedules differ).
	EagerTimers bool
}

// DefaultConfig returns the settings used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		WindowSize:         wire.BitmapBits,
		NumFlows:           4,
		Policy:             PolicyCongestionAware,
		Recovery:           RecoveryRackTLP,
		OOODistance:        3,
		AckCoalesceCount:   2,
		AckCoalesceDelay:   5 * time.Microsecond,
		ARInterval:         8,
		InitialRTO:         200 * time.Microsecond,
		MaxRTOBackoff:      20 * time.Millisecond,
		MaxConsecutiveRTOs: 12,
	}
}

// DeliverVerdictKind is the TL's synchronous answer to a delivered packet.
type DeliverVerdictKind int

const (
	// DeliverAccept: packet accepted; it will be ACKed.
	DeliverAccept DeliverVerdictKind = iota
	// DeliverNoResources: TL has no RX resources; the PDL replies with a
	// resource NACK and the packet is not recorded as received.
	DeliverNoResources
	// DeliverRNR: the target ULP is not ready; the PDL replies with an
	// RNR NACK carrying RetryDelay. The packet is recorded as received
	// at the PDL level (the transaction retry is TL business).
	DeliverRNR
	// DeliverCIE: the target ULP failed the transaction; a CIE NACK
	// completes it in error at the initiator. Recorded as received.
	DeliverCIE
)

// DeliverVerdict is returned by Callbacks.Deliver.
type DeliverVerdict struct {
	Kind       DeliverVerdictKind
	RetryDelay time.Duration // RNR retry hint
}

// Callbacks wires a connection's PDL to its NIC, TL and FAE.
type Callbacks struct {
	// Send transmits a packet onto the fabric (via the NIC model). The
	// packet pointer is only valid for the duration of the call: Send
	// implementations must snapshot it synchronously (ACK/NACK packets
	// return to the connection's pool when Send returns).
	Send func(p *wire.Packet)
	// Deliver hands an arriving data packet to the transaction layer.
	Deliver func(p *wire.Packet) DeliverVerdict
	// PacketAcked notifies the TL that a transmitted packet has been
	// acknowledged (TX resource release, unordered completions).
	PacketAcked func(space wire.Space, psn uint32, rsn uint64, typ wire.Type)
	// Completed advances the initiator's ordered completion horizon: all
	// transactions with RSN < completedRSN are done at the target.
	Completed func(completedRSN uint64)
	// NackReceived passes RNR/CIE NACKs up to the TL.
	NackReceived func(p *wire.Packet)
	// Failed reports a terminal connection failure (RTO budget
	// exhausted); the TL errors all pending transactions.
	Failed func(err error)
	// PostEvent posts a congestion/loss event to the FAE.
	PostEvent func(ev fae.Event)
	// RxBufOccupancy samples the NIC RX buffer occupancy (0..1) when
	// building an ACK.
	RxBufOccupancy func() float64
	// CompletedRSN samples the TL's cumulative completed RSN when
	// building an ACK (zero if the connection is unordered).
	CompletedRSN func() uint64
}

// Probe observes a connection's packet-level activity. It is the PDL's
// verification hook: internal/testkit registers invariant checkers and
// trace hashers through it. Both callbacks run synchronously after the
// connection's state has been updated, so a probe sees post-event state.
// The hook is compiled in but costs only a nil check when no probe is
// attached (bench_test.go numbers are unaffected).
type Probe interface {
	// OnSend fires after a tracked data packet is (re)transmitted. p is
	// the live packet; probes must not mutate it.
	OnSend(c *Conn, p *wire.Packet, retransmit bool)
	// OnReceive fires after an arriving packet (data, ACK or NACK) has
	// been fully processed by the connection.
	OnReceive(c *Conn, p *wire.Packet)
}

// SetProbe attaches a verification probe (nil detaches).
func (c *Conn) SetProbe(p Probe) { c.probe = p }

// multiProbe fans the probe callbacks out to several probes in order.
type multiProbe []Probe

func (ps multiProbe) OnSend(c *Conn, p *wire.Packet, retransmit bool) {
	for _, pr := range ps {
		pr.OnSend(c, p, retransmit)
	}
}

func (ps multiProbe) OnReceive(c *Conn, p *wire.Packet) {
	for _, pr := range ps {
		pr.OnReceive(c, p)
	}
}

// MultiProbe combines several probes into one, since SetProbe holds a
// single slot. Probes run in argument order; nil entries are dropped, and
// zero or one survivors collapse to nil or the probe itself so the
// fan-out indirection is only paid when two or more observers (say, an
// invariant checker, a trace hasher and a telemetry flight recorder) are
// actually attached.
func MultiProbe(ps ...Probe) Probe {
	out := make(multiProbe, 0, len(ps))
	for _, p := range ps {
		if p != nil {
			out = append(out, p)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// txPacket tracks one outstanding transmitted packet (the per-packet
// context of §5.2's hardware error handling). Slots are stored by value in
// the scoreboard ring; psn/rsn/typ are copied out of the packet at
// transmit time so the wire packet can return to its pool the moment the
// slot is acknowledged.
type txPacket struct {
	pkt    *wire.Packet
	txTime sim.Time
	origTx sim.Time // first transmission time (for RTT-valid sampling)
	psn    uint32
	rsn    uint64
	gen    uint32 // bumped when the slot is reused (stale-timer guard)
	flow   int32
	retx   int
	typ    wire.Type
	live   bool // slot has been filled at least once for psn
	acked  bool
	nacked bool // resource-NACKed, awaiting scheduled retransmit
}

// txSpace is the sender side of one sequence space. The acked and nacked
// bitmaps mirror the per-slot flags relative to base (bit i describes PSN
// base+i; WindowSize never exceeds wire.BitmapBits), which is what lets
// ACK processing and loss recovery scan the scoreboard a word at a time.
type txSpace struct {
	space wire.Space
	next  uint32 // next PSN to assign
	base  uint32 // lowest unacked PSN
	pkts  []txPacket
	// acked mirrors slot.acked for live slots in [base, next).
	acked wire.Bitmap
	// nackedB mirrors slot.nacked (parked packets) the same way.
	nackedB wire.Bitmap
	// outstanding counts unacked transmitted packets.
	outstanding int
	// parked counts the subset of outstanding packets that are
	// resource-NACKed and waiting for their scheduled backoff retransmit.
	// The peer explicitly refused them, so they are known to have left the
	// network and must not consume congestion window: otherwise a window
	// full of refused packets deadlocks against a receiver that is
	// refusing everything except the one head-of-line RSN still queued
	// behind them (§4.5).
	parked int
}

func (s *txSpace) slot(psn uint32) *txPacket { return &s.pkts[int(psn)%len(s.pkts)] }

// advanceTo slides the window base forward to newBase, shifting the
// bitmap mirrors to keep them base-relative.
func (s *txSpace) advanceTo(newBase uint32) {
	n := int(int32(newBase - s.base))
	if n <= 0 {
		return
	}
	s.acked.ShiftRight(n)
	s.nackedB.ShiftRight(n)
	s.base = newBase
}

// rxSpace is the receiver side of one sequence space.
type rxSpace struct {
	base   uint32
	bitmap wire.Bitmap
}

// rxFlow is per-flow receiver state: the latest timestamp pair for delay
// computation, the ACK coalescing counter, and the pending ECN echo. It is
// its own coalescing-timer callback (sim.Action), so arming the timer
// allocates nothing.
type rxFlow struct {
	c        *Conn
	idx      int
	t1, t2   int64
	pending  int
	ackTimer sim.Timer
	valid    bool
	ceSeen   bool
}

// RunAction flushes the coalesced ACK when the timer fires.
func (rf *rxFlow) RunAction() {
	rf.c.Stats.AcksCoalesced++
	rf.c.sendAck(rf.idx)
}

// flowState is per-flow sender state.
type flowState struct {
	label       wire.FlowLabel
	fcwnd       float64
	outstanding int
	// rackXmit is the latest original-transmission time among packets
	// of this flow that have been SACKed (per-flow RACK, §4.3).
	rackXmit sim.Time
	sent     uint64 // data packets sent on this flow (AR cadence)
}

// pktQueue is a head-indexed FIFO of data packets accepted from the TL.
// Popping advances a cursor instead of reslicing, so a queue that drains
// to empty reuses its buffer forever (the old `q = q[1:]` pattern grew a
// fresh backing array every window).
type pktQueue struct {
	buf  []*wire.Packet
	head int
}

func (q *pktQueue) len() int { return len(q.buf) - q.head }

func (q *pktQueue) push(p *wire.Packet) { q.buf = append(q.buf, p) }

func (q *pktQueue) pop() *wire.Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 >= len(q.buf) {
		q.buf = q.buf[:copy(q.buf, q.buf[q.head:])]
		q.head = 0
	}
	return p
}

func (q *pktQueue) reset() { q.buf, q.head = nil, 0 }

// Stats counts per-connection PDL activity.
type Stats struct {
	DataSent        uint64
	DataRetransmits uint64
	TLPProbes       uint64
	RTOs            uint64
	AcksSent        uint64
	AcksReceived    uint64
	Duplicates      uint64
	NacksSent       uint64
	NacksReceived   uint64
	DeliveredToTL   uint64
	RxWindowDrops   uint64

	// Retransmissions split by detection cause (§4.1's recovery
	// hierarchy); the five sum to DataRetransmits.
	RetxRACK        uint64 // RACK reordering-window expiry
	RetxOOO         uint64 // OOO-distance ablation baseline
	RetxTLP         uint64 // tail loss probes
	RetxRTO         uint64 // timeout full-window scans
	RetxNackBackoff uint64 // resource-NACK backoff re-sends

	// ACK generation split: AcksImmediate were forced by the AR bit, the
	// coalescing count, or a duplicate; AcksCoalesced were flushed by the
	// coalescing timer. The two sum to AcksSent.
	AcksImmediate uint64
	AcksCoalesced uint64

	// Received exception NACKs split by code; the three sum to
	// NacksReceived.
	NacksRnr      uint64
	NacksResource uint64
	NacksCie      uint64

	// MaxConsecRTOs is the deepest RTO-backoff escalation observed: the
	// longest run of timeouts without ACK progress. It measures how close
	// the connection came to its MaxConsecutiveRTOs death budget during a
	// fault — the chaos recovery envelope's escalation-depth metric.
	MaxConsecRTOs uint64
}

// Conn is one Falcon connection's PDL instance (one direction's sender and
// receiver state; a connection is full-duplex so both peers instantiate
// one).
type Conn struct {
	sim  *sim.Simulator
	cfg  Config
	cb   Callbacks
	id   uint32
	hops int // last observed path hop count

	// pool recycles ACK/NACK packets this connection builds and data
	// packets it owns (see wire.PacketPool's ownership contract). A nil
	// pool falls back to heap packets, which directly-constructed test
	// connections rely on.
	pool *wire.PacketPool

	// Sender state.
	tx     [wire.NumSpaces]*txSpace
	flows  []flowState
	ncwnd  float64
	reqQ   pktQueue // queued request-space packets from TL
	respQ  pktQueue // queued response-space packets from TL
	rrNext int      // round-robin cursor for PolicyRoundRobin

	rto        time.Duration
	rackReoWnd time.Duration
	tlpTimeout time.Duration
	rtoBackoff int

	// reoWndMult adapts the RACK reordering window upward when spurious
	// retransmissions are detected (RFC 8985 §7.1 behaviour: reordering
	// past the window means the window was too small).
	reoWndMult int
	// srttHint is a local smoothed RTT used for spuriousness detection
	// and as the adaptive reo-window cap.
	srttHint time.Duration

	rtoTimer  sim.Timer
	tlpTimer  sim.Timer
	rackTimer sim.Timer
	paceTimer sim.Timer
	// nextPaced is the earliest instant a fractional-window connection
	// may transmit its next packet (Carousel-style pacing: one packet
	// per srtt/cwnd).
	nextPaced sim.Time

	// Lazy timer mirrors (EagerTimers false): xxxDeadline is the fire
	// time the eager discipline would have produced (zero = logically
	// stopped); xxxFireAt is when the currently scheduled event will
	// surface, always <= the deadline while one is pending. See
	// timers.go.
	rtoDeadline  sim.Time
	tlpDeadline  sim.Time
	rackDeadline sim.Time
	rtoFireAt    sim.Time
	tlpFireAt    sim.Time
	rackFireAt   sim.Time

	// Typed timer callbacks (pooled events; see timers.go).
	rtoAct  timerAction
	tlpAct  timerAction
	rackAct timerAction
	paceAct timerAction
	// nackEvents is the free list of resource-NACK backoff events.
	nackEvents *nackRetryEvent

	// Receiver state.
	rx     [wire.NumSpaces]*rxSpace
	rxFlow []rxFlow

	// lastAckProgress notes the last time an ACK advanced anything, for
	// TLP's "period of inactivity".
	lastAckProgress sim.Time

	// consecRTOs counts timeouts since the last ACK progress; at the
	// configured budget the connection is declared failed.
	consecRTOs int
	failed     bool

	// probe, when non-nil, observes sends and receives (verification).
	probe Probe

	// Scratch buffers reused across ACK processing and recovery scans.
	ackScratch  [wire.MaxFlows]int
	lostScratch []*txPacket

	Stats Stats
}

// ErrConnectionLost is reported via Callbacks.Failed when the RTO budget
// is exhausted without any acknowledgment progress.
var ErrConnectionLost = errConnectionLost{}

type errConnectionLost struct{}

func (errConnectionLost) Error() string {
	return "pdl: connection lost (retransmission budget exhausted)"
}

// Failed reports whether the connection has been declared dead.
func (c *Conn) Failed() bool { return c.failed }

// NewConn builds a connection PDL. The FAE must be told about the
// connection separately (fae.RegisterConn); labels are installed via
// SetFlowLabels or ApplyResponse.
func NewConn(s *sim.Simulator, id uint32, cfg Config, cb Callbacks) *Conn {
	if cfg.WindowSize <= 0 || cfg.WindowSize > wire.BitmapBits {
		cfg.WindowSize = wire.BitmapBits
	}
	if cfg.NumFlows < 1 {
		cfg.NumFlows = 1
	}
	if cfg.NumFlows > wire.MaxFlows {
		cfg.NumFlows = wire.MaxFlows
	}
	if cfg.AckCoalesceCount < 1 {
		cfg.AckCoalesceCount = 1
	}
	if cfg.InitialRTO <= 0 {
		cfg.InitialRTO = 200 * time.Microsecond
	}
	c := &Conn{
		sim:        s,
		cfg:        cfg,
		cb:         cb,
		id:         id,
		rto:        cfg.InitialRTO,
		rackReoWnd: cfg.InitialRTO / 8,
		tlpTimeout: cfg.InitialRTO / 2,
		reoWndMult: 1,
		ncwnd:      float64(cfg.WindowSize),
	}
	c.rtoAct = timerAction{c: c, kind: timerRTO}
	c.tlpAct = timerAction{c: c, kind: timerTLP}
	c.rackAct = timerAction{c: c, kind: timerRack}
	c.paceAct = timerAction{c: c, kind: timerPace}
	for i := range c.tx {
		c.tx[i] = &txSpace{space: wire.Space(i), pkts: make([]txPacket, cfg.WindowSize)}
		c.rx[i] = &rxSpace{}
	}
	c.flows = make([]flowState, cfg.NumFlows)
	c.rxFlow = make([]rxFlow, cfg.NumFlows)
	for i := 0; i < cfg.NumFlows; i++ {
		c.flows[i] = flowState{
			label: wire.MakeFlowLabel(uint32(id)*wire.MaxFlows+uint32(i)+1, i),
			fcwnd: 16 / float64(cfg.NumFlows),
		}
		c.rxFlow[i] = rxFlow{c: c, idx: i}
	}
	return c
}

// SetPacketPool attaches a packet pool (nil keeps heap packets). Must be
// called before traffic flows; internal/core wires one pool per cluster.
func (c *Conn) SetPacketPool(p *wire.PacketPool) { c.pool = p }

// ID returns the connection ID.
func (c *Conn) ID() uint32 { return c.id }

// Config returns the connection's configuration (after NewConn clamping).
func (c *Conn) Config() Config { return c.cfg }

// TxState exposes one sequence space's sender window for inspection:
// the lowest unacked PSN, the next PSN to assign, and the count of
// transmitted-but-unacked packets.
func (c *Conn) TxState(space wire.Space) (base, next uint32, outstanding int) {
	ts := c.tx[space]
	return ts.base, ts.next, ts.outstanding
}

// TxUnacked recounts the unacked tracked packets in [base, next) by
// scanning the scoreboard. Verification compares it against the
// incrementally maintained outstanding counter.
func (c *Conn) TxUnacked(space wire.Space) int {
	ts := c.tx[space]
	n := 0
	for psn := ts.base; psn != ts.next; psn++ {
		if tp := ts.slot(psn); tp.live && tp.psn == psn && !tp.acked {
			n++
		}
	}
	return n
}

// RxState exposes one sequence space's receiver window: the cumulative
// base (all PSNs below it received) and the SACK bitmap relative to it.
func (c *Conn) RxState(space wire.Space) (base uint32, bitmap wire.Bitmap) {
	rs := c.rx[space]
	return rs.base, rs.bitmap
}

// Fcwnd returns the sum of per-flow congestion windows (the fabric-side
// connection window; responses are gated by it alone, §4.4).
func (c *Conn) Fcwnd() float64 { return c.connFcwnd() }

// FlowLabel returns flow i's current label.
func (c *Conn) FlowLabel(i int) wire.FlowLabel { return c.flows[i].label }

// SetFlowLabels installs initial labels (from fae.RegisterConn).
func (c *Conn) SetFlowLabels(labels []wire.FlowLabel) {
	for i, l := range labels {
		if i < len(c.flows) {
			c.flows[i].label = l
		}
	}
}

// EffectiveWindow returns min(Σ fcwnd, ncwnd) — the connection-level send
// window for request-space packets.
func (c *Conn) EffectiveWindow() float64 {
	f := c.connFcwnd()
	if c.ncwnd < f {
		return c.ncwnd
	}
	return f
}

// Ncwnd returns the connection's NIC congestion window.
func (c *Conn) Ncwnd() float64 { return c.ncwnd }

// SRTT returns the connection's locally smoothed RTT estimate
// (diagnostics).
func (c *Conn) SRTT() time.Duration { return c.srttHint }

func (c *Conn) connFcwnd() float64 {
	sum := 0.0
	for i := range c.flows {
		sum += c.flows[i].fcwnd
	}
	return sum
}

func (c *Conn) totalOutstanding() int {
	return c.tx[0].outstanding + c.tx[1].outstanding
}

// totalInFlight is the congestion-window occupancy: outstanding packets
// minus those parked on a resource-NACK backoff (known off the network).
func (c *Conn) totalInFlight() int {
	n := c.totalOutstanding() - c.tx[0].parked - c.tx[1].parked
	if n < 0 {
		n = 0
	}
	return n
}

// QueuedPackets returns packets accepted from the TL but not yet
// transmitted (scheduler backlog).
func (c *Conn) QueuedPackets() int { return c.reqQ.len() + c.respQ.len() }

// Outstanding returns the number of transmitted-but-unacked packets.
func (c *Conn) Outstanding() int { return c.totalOutstanding() }

// Parked returns the number of outstanding packets currently excluded from
// the congestion window because the peer resource-NACKed them and a backoff
// retransmit is scheduled.
func (c *Conn) Parked() int { return c.tx[0].parked + c.tx[1].parked }

// ApplyResponse installs FAE-computed parameters (the FAE→PDL response ring
// of Figure 9) and reattempts transmission since windows may have opened.
func (c *Conn) ApplyResponse(r fae.Response) {
	if r.Flow >= 0 && r.Flow < len(c.flows) {
		c.flows[r.Flow].fcwnd = r.FlowCwnd
		c.flows[r.Flow].label = r.FlowLabel
	}
	c.ncwnd = r.NCwnd
	if r.RTO > 0 {
		c.rto = r.RTO
	}
	if r.RackReoWnd > 0 {
		c.rackReoWnd = r.RackReoWnd
	}
	if r.TLPTimeout > 0 {
		c.tlpTimeout = r.TLPTimeout
	}
	c.trySend()
}
