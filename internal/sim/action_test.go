package sim

import (
	"testing"
	"time"
)

// recordAction implements Action by appending its tag to a shared log.
type recordAction struct {
	log *[]int
	tag int
}

func (a *recordAction) RunAction() { *a.log = append(*a.log, a.tag) }

// TestAtActionInterleavesWithAt checks that typed actions and closures
// scheduled at the same instant share one FIFO: seq order is assigned at
// scheduling time regardless of which API armed the event.
func TestAtActionInterleavesWithAt(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		if i%2 == 0 {
			s.AtAction(5, &recordAction{log: &got, tag: i})
		} else {
			s.At(5, func() { got = append(got, i) })
		}
	}
	s.Run()
	if len(got) != 100 {
		t.Fatalf("delivered %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed At/AtAction events reordered: got[%d] = %d", i, v)
		}
	}
}

// TestAtActionTimerStop checks Timer semantics carry over to action
// events: a stopped action never runs, and generation checks survive the
// event's recycling.
func TestAtActionTimerStop(t *testing.T) {
	s := New(1)
	var got []int
	tm := s.AtAction(10, &recordAction{log: &got, tag: 1})
	if !tm.Pending() {
		t.Fatal("action timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true on a pending action timer")
	}
	s.AtAction(20, &recordAction{log: &got, tag: 2})
	s.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("log = %v, want [2] (stopped action must not run)", got)
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
}

// TestWheelRunAfterCancelledCascade is a regression test for a wheel
// re-anchoring bug: draining a level-1 slot that held only cancelled
// timers used to advance the wheel's granule anchor past times the clock
// never reached, so a later Run() with fresh events in the skipped range
// panicked (events hashed to level-1 slots behind the scan point). The
// pattern needs multiple Run() calls on one simulator — schedule far,
// cancel, drain, schedule near, drain — which is exactly how the example
// programs drive it.
func TestWheelRunAfterCancelledCascade(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(5, func() { fired++ })
	// Far enough out to land in level 1 (beyond the current 131 µs
	// level-0 granule), then cancelled so the drain cascades a dead-only
	// slot.
	tm := s.At(400_000, func() { t.Fatal("cancelled timer fired") })
	tm.Stop()
	s.Run()
	if fired != 1 {
		t.Fatalf("first run delivered %d events, want 1", fired)
	}
	// Pre-fix this insert landed behind the level-1 scan point and the
	// next Run() panicked with an index out of range.
	s.At(s.Now().Add(time.Microsecond), func() { fired++ })
	s.Run()
	if fired != 2 {
		t.Fatalf("second run delivered %d events, want 2", fired)
	}
	// A third phase crossing into level 1 again must still order
	// correctly against the heap oracle's semantics.
	var order []int
	s.At(s.Now().Add(200*time.Microsecond), func() { order = append(order, 2) })
	s.At(s.Now().Add(time.Microsecond), func() { order = append(order, 1) })
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("third run order = %v, want [1 2]", order)
	}
}

// TestAtActionZeroAlloc asserts scheduling and dispatching a
// pointer-backed action allocates nothing in steady state — the property
// netsim's pooled port events rely on.
func TestAtActionZeroAlloc(t *testing.T) {
	s := New(1)
	var sink []int
	act := &recordAction{log: &sink, tag: 0}
	op := func() {
		s.AtAction(s.Now(), act)
		s.Run()
		sink = sink[:0]
	}
	for i := 0; i < 512; i++ {
		op()
	}
	if a := testing.AllocsPerRun(1000, op); a != 0 {
		t.Fatalf("AtAction dispatch: %.2f allocs/op, want 0", a)
	}
}
