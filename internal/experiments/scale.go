package experiments

import (
	"strconv"
	"time"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/sim"
	"falcon/internal/telemetry"
	"falcon/internal/workload"
)

// FigScale profiles where a single event loop saturates as the fabric
// grows: a k=16-class 3-stage Clos swept across host counts under a fixed
// cross-rack closed-loop write workload. Every table cell is a pure
// function of (seed, topology, workload) — host pairing is deterministic
// (host i writes to its mirror in the opposite half of the fabric, always
// crossing the spine layer) and no runtime RNG feeds a printed value — so
// the table is byte-identical whether the run uses one event loop or N
// merged partitions (-shards). The interesting perf signal, events/sec at
// each scale, is wall-clock dependent and therefore lives in the
// falconbench -json FigureReport, not in a cell: pair a -shards 1 run
// against a -shards N run of this figure to get the head-to-head (see
// EXPERIMENTS.md, PR10 appendix).
func FigScale(runFor time.Duration, quick bool) *Table { return figScale(runFor, quick, nil) }

// FigScaleTel is the instrumented FigScale: when the run is sharded
// (falconbench -shards), each tier exports its partition counters —
// per-partition deliveries, cross-boundary events, window/stall counts —
// under the exact-class "shard" lake layer (METRICS.md §5b). Single-loop
// runs export nothing extra: there is no group to observe.
func FigScaleTel(runFor time.Duration, quick bool, tel *telemetry.Suite) *Table {
	return figScale(runFor, quick, tel)
}

func figScale(runFor time.Duration, quick bool, tel *telemetry.Suite) *Table {
	t := &Table{
		Title:   "figScale: fabric scaling — cross-rack closed-loop writes on a 3-stage Clos",
		Columns: []string{"hosts", "racks", "spines", "conns", "ops", "goodput Gbps", "sim events", "ev/host"},
	}
	type tier struct{ racks, hostsPerRack, spines int }
	tiers := []tier{
		{4, 16, 4},    // 64 hosts
		{8, 32, 8},    // 256 hosts
		{16, 64, 16},  // 1024 hosts: k=16 Clos class
		{16, 128, 16}, // 2048 hosts: widest sweep point
	}
	if quick {
		tiers = tiers[:2]
	}
	const opBytes = 4 << 10
	hostLink := netsim.LinkConfig{GbpsRate: 100, PropDelay: 500 * time.Nanosecond}
	for _, tr := range tiers {
		// Keep the fabric mildly oversubscribed at every tier
		// (hostsPerRack*100 Gbps of access vs spines*200 Gbps of uplink)
		// so the spine layer, not the access links, is the bottleneck the
		// sweep stresses.
		fabricLink := netsim.LinkConfig{GbpsRate: 200, PropDelay: 2 * time.Microsecond}
		s := sim.New(30)
		if tel != nil && s.Group() != nil {
			// Collectors are lazy (read at snapshot time, after the tier
			// has run), so registering before the run costs nothing on
			// the event path.
			telemetry.CollectShards(tel.Registry(), "figScale/hosts"+strconv.Itoa(tr.racks*tr.hostsPerRack), s.Group())
		}
		topo := netsim.Clos(s, tr.racks, tr.hostsPerRack, tr.spines, hostLink, fabricLink)
		cl := core.NewCluster(s)
		nodes := make([]*core.Node, len(topo.Hosts))
		for i, h := range topo.Hosts {
			nodes[i] = cl.AddNode(h, core.DefaultNodeConfig())
		}
		// Deterministic pairing: host i in the first half of the fabric
		// writes to host i + hosts/2. With rack-major host order that is
		// the same slot hosts/(2*hostsPerRack) racks away, so every flow
		// crosses ToR -> spine -> ToR (and, under -shards, a partition
		// boundary: Clos places rack r on partition r).
		//
		// Completions accumulate into a per-rack slot and each closed loop
		// is scheduled on its client endpoint's own simulator handle, so
		// every callback touches only its rack's partition state. That
		// keeps this figure race-free even under the experimental
		// -shardpar mode, where partitions execute on concurrent
		// goroutines (figures that funnel completions into one shared
		// counter are merged-mode only).
		hosts := len(topo.Hosts)
		opsByRack := make([]uint64, tr.racks)
		for i := 0; i < hosts/2; i++ {
			epA, epB := cl.Connect(nodes[i], nodes[i+hosts/2], multipathConn())
			qa := rdma.NewQP(epA, rdma.Config{})
			rdma.NewQP(epB, rdma.Config{}).RegisterMemoryLen(1 << 40)
			rack := i / tr.hostsPerRack
			clientSim := epA.Sim()
			issuer := workload.NewClosedLoop(clientSim, 4, 1<<30, func(opDone func()) bool {
				err := qa.Write(0, 0, nil, opBytes, func(c rdma.Completion) {
					if c.Err == nil {
						opsByRack[rack]++
					}
					opDone()
				})
				return err == nil
			}, nil)
			issuer.Start()
		}
		s.RunUntil(sim.Time(runFor))
		var ops uint64
		for _, n := range opsByRack {
			ops += n
		}
		ev := s.Processed()
		t.Rows = append(t.Rows, []string{
			f1(float64(hosts)), f1(float64(tr.racks)), f1(float64(tr.spines)),
			f1(float64(hosts / 2)),
			f1(float64(ops)),
			f1(float64(ops) * opBytes * 8 / runFor.Seconds() / 1e9),
			f1(float64(ev)),
			f1(float64(ev) / float64(hosts)),
		})
	}
	return t
}
