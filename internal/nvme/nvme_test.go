package nvme

import (
	"testing"
	"time"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/sim"
)

var testLink = netsim.LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond}

func setup(t *testing.T, devCfg DeviceConfig) (*sim.Simulator, *Client, *Controller, *Device) {
	t.Helper()
	s := sim.New(31)
	topo, _ := netsim.PointToPoint(s, testLink)
	cl := core.NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	epA, epB := cl.Connect(a, b, core.DefaultConnConfig())
	dev := NewDevice(s, devCfg)
	ctrl := NewController(epB, dev, 4096)
	client := NewClient(s, epA, 4096)
	return s, client, ctrl, dev
}

func TestReadCompletes(t *testing.T) {
	s, client, _, dev := setup(t, DefaultDeviceConfig())
	var doneAt sim.Time
	if err := client.Read(0, 4096, func(err error) {
		if err != nil {
			t.Errorf("read err: %v", err)
		}
		doneAt = s.Now()
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	// Latency must include the device's 80us read latency.
	if doneAt < sim.Time(80*time.Microsecond) {
		t.Fatalf("read completed at %v, faster than the device", doneAt)
	}
	if dev.Reads != 1 || dev.BytesRead != 4096 {
		t.Fatalf("device saw %d reads, %d bytes", dev.Reads, dev.BytesRead)
	}
}

func TestLargeReadSegments(t *testing.T) {
	s, client, _, dev := setup(t, DefaultDeviceConfig())
	completed := false
	if err := client.Read(0, 16<<10, func(err error) {
		completed = err == nil
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !completed {
		t.Fatal("16KB read never completed")
	}
	// One device command regardless of transport segmentation.
	if dev.Reads != 1 {
		t.Fatalf("device commands = %d, want 1", dev.Reads)
	}
	if dev.BytesRead != 16<<10 {
		t.Fatalf("device bytes = %d", dev.BytesRead)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	s, client, _, dev := setup(t, DefaultDeviceConfig())
	completed := false
	if err := client.Write(0, 1<<20, func(err error) {
		if err != nil {
			t.Errorf("write err: %v", err)
		}
		completed = true
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !completed {
		t.Fatal("write never completed")
	}
	if dev.Writes != 1 || dev.BytesWritten != 1<<20 {
		t.Fatalf("device: %d writes, %d bytes", dev.Writes, dev.BytesWritten)
	}
}

func TestWriteZeroBytes(t *testing.T) {
	s, client, _, _ := setup(t, DefaultDeviceConfig())
	completed := false
	if err := client.Write(0, 0, func(err error) { completed = err == nil }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !completed {
		t.Fatal("zero-byte write never completed")
	}
}

func TestIOPSCap(t *testing.T) {
	cfg := DefaultDeviceConfig()
	cfg.MaxIOPS = 10000 // 100us spacing
	cfg.ReadLatency = 0
	s, client, _, _ := setup(t, cfg)
	done := 0
	for i := 0; i < 10; i++ {
		if err := client.Read(0, 512, func(err error) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if done != 10 {
		t.Fatalf("completed %d", done)
	}
	// 10 ops at 10K IOPS: at least 900us of admission spacing.
	if s.Now() < sim.Time(900*time.Microsecond) {
		t.Fatalf("finished at %v; IOPS cap not enforced", s.Now())
	}
}

func TestChannelParallelism(t *testing.T) {
	mk := func(channels int) sim.Time {
		cfg := DefaultDeviceConfig()
		cfg.Channels = channels
		cfg.ReadLatency = 100 * time.Microsecond
		s, client, _, _ := setup(t, cfg)
		done := 0
		for i := 0; i < 8; i++ {
			if err := client.Read(uint64(i*4096), 4096, func(err error) { done++ }); err != nil {
				t.Fatal(err)
			}
		}
		s.Run()
		if done != 8 {
			t.Fatalf("completed %d", done)
		}
		return s.Now()
	}
	serial := mk(1)
	parallel := mk(8)
	if parallel >= serial {
		t.Fatalf("8 channels (%v) not faster than 1 (%v)", parallel, serial)
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	s, client, _, dev := setup(t, DefaultDeviceConfig())
	done := 0
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			if err := client.Read(uint64(i)<<12, 8192, func(err error) { done++ }); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := client.Write(uint64(i)<<12, 8192, func(err error) { done++ }); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Run()
	if done != 20 {
		t.Fatalf("completed %d of 20", done)
	}
	if dev.Reads == 0 || dev.Writes == 0 {
		t.Fatal("device did not see both op types")
	}
}
