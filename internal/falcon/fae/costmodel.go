package fae

import "time"

// StateMode selects how the FAE manages per-connection algorithm state
// (§5.3): stateless offloads state to the PDL (embedded in events), stateful
// fetches it from memory on each event, and stateful-with-prefetch looks
// ahead in the event queue and prefetches the upcoming event's state so the
// fetch overlaps processing.
type StateMode int

const (
	// Stateless embeds all algorithm state in the event itself.
	Stateless StateMode = iota
	// Stateful fetches per-connection state from the memory hierarchy on
	// every event.
	Stateful
	// StatefulPrefetch is Stateful plus event-queue lookahead prefetch.
	StatefulPrefetch
)

func (m StateMode) String() string {
	switch m {
	case Stateless:
		return "stateless"
	case Stateful:
		return "stateful"
	case StatefulPrefetch:
		return "stateful+prefetch"
	}
	return "unknown"
}

// CacheModel describes the on-NIC CPU's memory hierarchy (§5.3: each FAE
// core has private L1/L2 and a shared L3). Costs are average random-access
// latencies per event for state resident at each level.
type CacheModel struct {
	L1Bytes, L2Bytes, L3Bytes int
	L1Cost, L2Cost, L3Cost    time.Duration
	DRAMCost                  time.Duration

	// BaseCost is the per-event pipeline cost excluding state access
	// (algorithm arithmetic, queue handling).
	BaseCost time.Duration

	// PrefetchHide is the maximum fetch latency the lookahead prefetch
	// can overlap with the previous event's processing.
	PrefetchHide time.Duration
}

// DefaultCacheModel models the Neoverse-N1 class core of the evaluation
// (Figure 22a: ~20M events/s sustained with prefetching).
func DefaultCacheModel() CacheModel {
	return CacheModel{
		L1Bytes:      64 << 10,
		L2Bytes:      1 << 20,
		L3Bytes:      8 << 20,
		L1Cost:       4 * time.Nanosecond,
		L2Cost:       12 * time.Nanosecond,
		L3Cost:       40 * time.Nanosecond,
		DRAMCost:     130 * time.Nanosecond,
		BaseCost:     48 * time.Nanosecond,
		PrefetchHide: 100 * time.Nanosecond,
	}
}

// FetchCost returns the expected per-event state-fetch latency when
// conns connections each hold stateBytes of algorithm state and events
// address connections uniformly at random. The expectation distributes a
// random access across the levels that the cumulative state spills into,
// assuming ideal (fully-utilized) caching of the hottest fraction.
func (c CacheModel) FetchCost(conns int, stateBytes int) time.Duration {
	total := float64(conns) * float64(stateBytes)
	if total <= 0 {
		return c.L1Cost
	}
	// Fractions of the working set resident at each level.
	resident := func(capacity int) float64 {
		f := float64(capacity) / total
		if f > 1 {
			f = 1
		}
		return f
	}
	fL1 := resident(c.L1Bytes)
	fL2 := resident(c.L2Bytes) - fL1
	if fL2 < 0 {
		fL2 = 0
	}
	fL3 := resident(c.L3Bytes) - fL1 - fL2
	if fL3 < 0 {
		fL3 = 0
	}
	fDRAM := 1 - fL1 - fL2 - fL3
	if fDRAM < 0 {
		fDRAM = 0
	}
	cost := fL1*float64(c.L1Cost) + fL2*float64(c.L2Cost) +
		fL3*float64(c.L3Cost) + fDRAM*float64(c.DRAMCost)
	return time.Duration(cost)
}

// EventCost returns the expected per-event processing time for the given
// state mode, connection count and per-connection state size.
func (c CacheModel) EventCost(mode StateMode, conns, stateBytes int) time.Duration {
	switch mode {
	case Stateless:
		// State rides in the event; the PDL bears the storage. The
		// event itself is larger but stays in cache-resident queues.
		return c.BaseCost
	case Stateful:
		return c.BaseCost + c.FetchCost(conns, stateBytes)
	case StatefulPrefetch:
		fetch := c.FetchCost(conns, stateBytes)
		hidden := c.PrefetchHide
		if hidden > fetch {
			hidden = fetch
		}
		return c.BaseCost + fetch - hidden
	}
	return c.BaseCost
}

// EventRate returns events/second for the given configuration — the metric
// of Figures 22a and 23.
func (c CacheModel) EventRate(mode StateMode, conns, stateBytes int) float64 {
	cost := c.EventCost(mode, conns, stateBytes)
	if cost <= 0 {
		return 0
	}
	return 1e9 / float64(cost.Nanoseconds())
}
