// Package fae implements the Falcon Adaptive Engine: the software half of
// the paper's mechanism/management split (Table 3). The PDL (hardware
// mechanism) measures congestion signals and enforces windows; the FAE
// (software management, running on on-NIC CPU cores) consumes per-flow
// events and computes:
//
//   - fcwnd per multipath flow and ncwnd per connection (Swift variant, §4.2)
//   - loss-recovery parameters: RTO, RACK reordering window, TLP timeout (§4.1)
//   - flow-label (re)assignment: PLB repathing on persistent congestion and
//     PRR repathing on timeout-signalled outages (§4.3)
//   - the dynamic-threshold α_c used for connection isolation (§4.6)
//
// Events and responses cross a queue pair, exactly like the shared-memory
// event/response rings of Figure 9. The engine also carries the cache-cost
// model used to reproduce the FAE scalability results (Figures 22–23):
// stateless FAE embeds algorithm state in the event, stateful FAE fetches it
// from memory (cost grows as cumulative state spills L1→L2→L3→DRAM), and
// prefetching hides most of the fetch by looking ahead in the event queue.
package fae

import (
	"time"

	"falcon/internal/falcon/cc"
	"falcon/internal/falcon/wire"
	"falcon/internal/sim"
)

// EventKind classifies PDL-to-FAE events.
type EventKind uint8

const (
	// EventAck reports a delay/occupancy sample from an arriving ACK.
	EventAck EventKind = iota
	// EventFastRetransmit reports a SACK/RACK-detected loss.
	EventFastRetransmit
	// EventRTO reports a retransmission timeout (possible outage; PRR).
	EventRTO
	// EventNack reports a NACK arrival (resource pressure at peer).
	EventNack
)

// Event is one PDL→FAE message (Figure 9).
type Event struct {
	Kind EventKind
	Conn uint32
	Flow int
	Now  sim.Time

	// Congestion signals (EventAck).
	FabricDelay    time.Duration
	RTT            time.Duration
	AckedPackets   int
	Hops           int
	RxBufOccupancy float64 // 0..1
	// ECE is the receiver's ECN echo: a CE-marked packet arrived since
	// the previous ACK.
	ECE bool
}

// Response is one FAE→PDL message carrying the recomputed transport
// parameters for (Conn, Flow).
type Response struct {
	Conn uint32
	Flow int

	// FlowCwnd is the flow's fabric congestion window.
	FlowCwnd float64
	// ConnCwnd is the connection-level fcwnd: the sum over flows.
	ConnCwnd float64
	// NCwnd is the connection's NIC congestion window.
	NCwnd float64

	// Loss-recovery parameters.
	RTO        time.Duration
	RackReoWnd time.Duration
	TLPTimeout time.Duration

	// FlowLabel is the (possibly repathed) label the flow must use.
	FlowLabel wire.FlowLabel
	// Repathed reports whether PLB/PRR changed the label.
	Repathed bool

	// Alpha is the dynamic-threshold α_c for this connection (§4.6).
	Alpha float64
}

// Config parameterizes the engine.
type Config struct {
	Swift cc.SwiftConfig
	Ncwnd cc.NcwndConfig

	// InitialCwnd seeds each flow's fcwnd.
	InitialCwnd float64

	// MinRTO/MaxRTO clamp the computed retransmission timeout.
	MinRTO, MaxRTO time.Duration

	// PLBCongestedRounds is how many consecutive congested ACK rounds
	// trigger a repath (PLB's protection threshold).
	PLBCongestedRounds int

	// BaseAlpha is the DT α scaled by the per-connection congestion
	// factor β_c.
	BaseAlpha float64

	// UseECN makes the CC also react to ECN echoes (a supplementary
	// signal per Table 3; delay remains the primary signal).
	UseECN bool

	// ResponseDelay models FAE turnaround latency (Figure 22b injects
	// artificial delays here). Zero means same-timestep response.
	ResponseDelay time.Duration
}

// DefaultConfig returns the engine configuration used in the evaluation.
func DefaultConfig() Config {
	return Config{
		Swift:              cc.DefaultSwiftConfig(),
		Ncwnd:              cc.DefaultNcwndConfig(),
		InitialCwnd:        16,
		MinRTO:             100 * time.Microsecond,
		MaxRTO:             10 * time.Millisecond,
		PLBCongestedRounds: 8,
		BaseAlpha:          2.0,
	}
}

type flowState struct {
	swift     *cc.Swift
	label     wire.FlowLabel
	congested int // consecutive congested rounds (PLB counter)
}

type connState struct {
	ncwnd  *cc.Ncwnd
	flows  []*flowState
	rttvar time.Duration
	srtt   time.Duration

	// Congestion factors for α_c (§4.6): β_c is proportional to the
	// windows and inversely proportional to delay/occupancy.
	lastDelay time.Duration
	lastOcc   float64
}

// Engine is one FAE instance. It is driven by the simulator: Post schedules
// processing after Config.ResponseDelay and delivers the Response to the
// sink registered at construction.
type Engine struct {
	sim  *sim.Simulator
	cfg  Config
	sink func(Response)

	// obs, when non-nil, observes every processed (event, response) pair
	// before the response is delivered — telemetry's window into the CC
	// loop (delay samples, cwnd evolution). One nil check when unset.
	obs func(ev Event, r Response)

	conns map[uint32]*connState

	nextPath uint32 // path discriminator allocator for repathing

	// Stats
	EventsProcessed uint64
	Repaths         uint64
}

// New creates an engine delivering responses to sink.
func New(s *sim.Simulator, cfg Config, sink func(Response)) *Engine {
	if cfg.InitialCwnd <= 0 {
		cfg.InitialCwnd = 16
	}
	if cfg.PLBCongestedRounds <= 0 {
		cfg.PLBCongestedRounds = 8
	}
	return &Engine{sim: s, cfg: cfg, sink: sink, conns: make(map[uint32]*connState), nextPath: 1}
}

// RegisterConn sets up state for a connection with numFlows multipath
// flows, returning the initial flow labels. numFlows of 1 disables
// multipathing (single-path baseline).
func (e *Engine) RegisterConn(conn uint32, numFlows int) []wire.FlowLabel {
	if numFlows < 1 {
		numFlows = 1
	}
	if numFlows > wire.MaxFlows {
		numFlows = wire.MaxFlows
	}
	cs := &connState{ncwnd: cc.NewNcwnd(e.cfg.Ncwnd, e.cfg.Ncwnd.MaxCwnd/4)}
	labels := make([]wire.FlowLabel, numFlows)
	for i := 0; i < numFlows; i++ {
		fs := &flowState{
			swift: cc.NewSwift(e.cfg.Swift, e.cfg.InitialCwnd/float64(numFlows)),
			label: wire.MakeFlowLabel(e.allocPath(), i),
		}
		cs.flows = append(cs.flows, fs)
		labels[i] = fs.label
	}
	e.conns[conn] = cs
	return labels
}

// UnregisterConn drops a connection's state.
func (e *Engine) UnregisterConn(conn uint32) { delete(e.conns, conn) }

func (e *Engine) allocPath() uint32 {
	p := e.nextPath
	e.nextPath++
	return p
}

// Post enqueues an event. The response is produced after ResponseDelay.
func (e *Engine) Post(ev Event) {
	if e.cfg.ResponseDelay <= 0 {
		e.process(ev)
		return
	}
	e.sim.After(e.cfg.ResponseDelay, func() { e.process(ev) })
}

func (e *Engine) process(ev Event) {
	cs, ok := e.conns[ev.Conn]
	if !ok {
		return
	}
	if ev.Flow < 0 || ev.Flow >= len(cs.flows) {
		ev.Flow = 0
	}
	fs := cs.flows[ev.Flow]
	e.EventsProcessed++

	repathed := false
	switch ev.Kind {
	case EventAck:
		fs.swift.OnAck(cc.Sample{
			FabricDelay:  ev.FabricDelay,
			RTT:          ev.RTT,
			AckedPackets: ev.AckedPackets,
			Hops:         ev.Hops,
			Now:          ev.Now,
		})
		if e.cfg.UseECN && ev.ECE {
			fs.swift.OnECN(ev.Now)
		}
		cs.ncwnd.OnAck(ev.RxBufOccupancy, ev.AckedPackets, ev.RTT, ev.Now)
		cs.updateRTT(ev.RTT)
		cs.lastDelay = ev.FabricDelay
		cs.lastOcc = ev.RxBufOccupancy
		// PLB: repath a flow stuck on a congested path.
		if ev.FabricDelay > fs.swift.TargetDelay(ev.Hops) {
			fs.congested++
			if fs.congested >= e.cfg.PLBCongestedRounds {
				fs.label = fs.label.WithPath(e.allocPath())
				fs.congested = 0
				repathed = true
				e.Repaths++
			}
		} else if fs.congested > 0 {
			fs.congested--
		}
	case EventFastRetransmit:
		fs.swift.OnFastRetransmit(ev.Now)
	case EventRTO:
		fs.swift.OnRetransmitTimeout()
		// PRR: a timeout suggests the path is broken; flip the flow
		// label so switches rehash onto a different path.
		fs.label = fs.label.WithPath(e.allocPath())
		repathed = true
		e.Repaths++
	case EventNack:
		fs.swift.OnFastRetransmit(ev.Now)
	}

	resp := e.buildResponse(ev.Conn, ev.Flow, cs, fs, repathed)
	if e.obs != nil {
		e.obs(ev, resp)
	}
	e.sink(resp)
}

// SetObserver attaches an event/response observer (nil detaches). It runs
// synchronously inside event processing and must not mutate engine state;
// telemetry uses it to build delay histograms and cwnd series.
func (e *Engine) SetObserver(fn func(ev Event, r Response)) { e.obs = fn }

func (cs *connState) updateRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if cs.srtt == 0 {
		cs.srtt = rtt
		cs.rttvar = rtt / 2
		return
	}
	diff := cs.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	cs.rttvar = (3*cs.rttvar + diff) / 4
	cs.srtt = (7*cs.srtt + rtt) / 8
}

func (e *Engine) buildResponse(conn uint32, flow int, cs *connState, fs *flowState, repathed bool) Response {
	sum := 0.0
	for _, f := range cs.flows {
		sum += f.swift.Cwnd()
	}
	rto := cs.srtt*2 + 4*cs.rttvar
	if rto < e.cfg.MinRTO {
		rto = e.cfg.MinRTO
	}
	if rto > e.cfg.MaxRTO {
		rto = e.cfg.MaxRTO
	}
	reoWnd := cs.srtt / 4
	tlp := 2 * cs.srtt
	if cs.srtt == 0 {
		tlp = e.cfg.MinRTO
		reoWnd = e.cfg.MinRTO / 8
	}
	if tlp < e.cfg.MinRTO/2 {
		tlp = e.cfg.MinRTO / 2
	}
	return Response{
		Conn:       conn,
		Flow:       flow,
		FlowCwnd:   fs.swift.Cwnd(),
		ConnCwnd:   sum,
		NCwnd:      cs.ncwnd.Cwnd(),
		RTO:        rto,
		RackReoWnd: reoWnd,
		TLPTimeout: tlp,
		FlowLabel:  fs.label,
		Repathed:   repathed,
		Alpha:      e.alpha(cs),
	}
}

// alpha computes α_c = β_c·α (§4.6): β_c grows with the connection's
// windows and shrinks with fabric delay and buffer occupancy, so congested,
// slow-progress connections get a smaller share of Falcon's resources.
func (e *Engine) alpha(cs *connState) float64 {
	sum := 0.0
	for _, f := range cs.flows {
		sum += f.swift.Cwnd()
	}
	wnd := sum
	if n := cs.ncwnd.Cwnd(); n < wnd {
		wnd = n
	}
	// Normalize window to [0,1] against the fcwnd cap.
	wndFrac := wnd / e.cfg.Swift.MaxCwnd
	if wndFrac > 1 {
		wndFrac = 1
	}
	delayPenalty := 1.0
	if cs.srtt > 0 && cs.lastDelay > 0 {
		target := e.cfg.Swift.BaseTargetDelay
		if cs.lastDelay > target {
			delayPenalty = float64(target) / float64(cs.lastDelay)
		}
	}
	occPenalty := 1.0 - cs.lastOcc
	if occPenalty < 0.05 {
		occPenalty = 0.05
	}
	beta := wndFrac * delayPenalty * occPenalty
	if beta < 0.01 {
		beta = 0.01
	}
	return e.cfg.BaseAlpha * beta
}

// FlowLabels returns the current labels of a connection's flows (test and
// diagnostics helper).
func (e *Engine) FlowLabels(conn uint32) []wire.FlowLabel {
	cs, ok := e.conns[conn]
	if !ok {
		return nil
	}
	out := make([]wire.FlowLabel, len(cs.flows))
	for i, f := range cs.flows {
		out[i] = f.label
	}
	return out
}
