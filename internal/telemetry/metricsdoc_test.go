package telemetry_test

// The METRICS.md honesty gate: build a real stack, attach every
// telemetry collector and tracker this package exports, and assert
// every metric name they emit is documented in METRICS.md. A new
// metric added to sinks.go without a doc row fails here, so the
// reference cannot silently rot. The inverse direction (names
// documented but never emitted) is deliberately not enforced: the doc
// also covers the perf layer cells the lake indexer synthesizes from
// falconbench/v1 reports.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"falcon/internal/chaos"
	"falcon/internal/core"
	"falcon/internal/lake"
	"falcon/internal/netsim"
	"falcon/internal/sim"
	"falcon/internal/telemetry"
)

// emittedMetricNames builds a two-node cluster, attaches every
// collector under prefix "doc" and both series trackers, and returns
// (snapshot metric names, series column names).
func emittedMetricNames(t *testing.T) ([]string, []string) {
	t.Helper()
	s := sim.New(7)
	topo, fwd := netsim.PointToPoint(s, netsim.LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond})
	cl := core.NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	epA, _ := cl.Connect(a, b, core.DefaultConnConfig())

	suite := telemetry.NewSuite()
	reg := suite.Registry()
	telemetry.CollectPDL(reg, "doc", epA.PDL())
	telemetry.CollectTL(reg, "doc", epA.TL())
	telemetry.CollectNIC(reg, "doc", a.NIC())
	telemetry.CollectPort(reg, "doc/fwd", fwd)
	telemetry.CollectUplinks(reg, "doc/tor0", []*netsim.Port{fwd, topo.Hosts[0].Uplink()})
	telemetry.CollectFAE(reg, "doc", a.Engine())
	telemetry.ObserveFAE(reg, "doc", a.Engine())
	telemetry.CollectChaos(reg, "doc", &chaos.Report{})
	telemetry.CollectShards(reg, "doc", sim.NewSharded(7, sim.DefaultScheduler(), 2, false).Group())

	sp := suite.Sampler("doc", s, time.Millisecond)
	telemetry.TrackPDL(sp, "conn", epA.PDL())
	telemetry.TrackPort(sp, "fwd", fwd)

	snap := suite.Snapshot(0)
	var names []string
	for _, m := range snap.Metrics {
		names = append(names, m.Name)
	}
	return names, sp.Names()
}

// docTokens extracts every `backtick-quoted` token from METRICS.md.
func docTokens(t *testing.T) map[string]bool {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
	data, err := os.ReadFile(filepath.Join(dir, "METRICS.md"))
	if err != nil {
		t.Fatalf("METRICS.md missing: %v", err)
	}
	tokens := make(map[string]bool)
	// Tokens cannot span lines, so ``` code fences don't desync the
	// backtick pairing.
	for _, m := range regexp.MustCompile("`([^`\n]+)`").FindAllStringSubmatch(string(data), -1) {
		tokens[m[1]] = true
	}
	return tokens
}

// TestMetricsDocComplete is the completeness gate described above.
func TestMetricsDocComplete(t *testing.T) {
	snapNames, seriesCols := emittedMetricNames(t)
	if len(snapNames) < 50 {
		t.Fatalf("only %d metrics emitted; collector wiring broken?", len(snapNames))
	}
	tokens := docTokens(t)

	var missing []string
	for _, name := range snapNames {
		rest := strings.TrimPrefix(name, "doc/")
		// Parse with the lake grammar: the documented key is
		// layer/metric, with histogram stat suffixes documented once
		// as a generic expansion rule.
		p := lake.ParsePath(rest)
		if p.Layer == "" {
			t.Errorf("metric %q has no layer token; the METRICS.md grammar cannot classify it", name)
			continue
		}
		key := p.Layer + "/" + p.Metric
		if !tokens[key] {
			missing = append(missing, key)
		}
		if p.Stat != "" && !tokens["/"+p.Stat] {
			missing = append(missing, key+" stat suffix /"+p.Stat)
		}
	}
	for _, col := range seriesCols {
		p := lake.ParsePath(col)
		if !tokens["series:"+p.Metric] {
			missing = append(missing, "series:"+p.Metric)
		}
	}
	if len(missing) > 0 {
		dedup := make(map[string]bool)
		var out []string
		for _, m := range missing {
			if !dedup[m] {
				dedup[m] = true
				out = append(out, m)
			}
		}
		t.Fatalf("METRICS.md is missing %d metric(s) the registry emits:\n  %s",
			len(out), strings.Join(out, "\n  "))
	}
}
