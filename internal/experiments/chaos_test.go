package experiments

import (
	"reflect"
	"testing"
	"time"
)

// TestStormDeterminism is the chaoscheck core: two same-seed storm
// campaigns must produce cell-identical tables — the whole chaos layer is
// exact-class, so any drift here is a behavior change.
func TestStormDeterminism(t *testing.T) {
	a := FigStorm(2 * time.Millisecond)
	b := FigStorm(2 * time.Millisecond)
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("same-seed storm campaigns diverged:\n%v\n%v", a.Rows, b.Rows)
	}
	c := FigEndpointFault(4 * time.Millisecond)
	d := FigEndpointFault(4 * time.Millisecond)
	if !reflect.DeepEqual(c.Rows, d.Rows) {
		t.Fatalf("endpoint-fault runs diverged:\n%v\n%v", c.Rows, d.Rows)
	}
}

// TestStormLedgerHolds asserts the frame-conservation ledger closes for
// every storm scenario: the last cell of every row is the ledger verdict.
func TestStormLedgerHolds(t *testing.T) {
	for _, tb := range []interface {
		rows() [][]string
		title() string
	}{tableCheck{FigStorm(2 * time.Millisecond)}, tableCheck{FigEndpointFault(4 * time.Millisecond)}} {
		for _, row := range tb.rows() {
			if row[len(row)-1] != "yes" {
				t.Errorf("%s: ledger unbalanced in row %v", tb.title(), row)
			}
		}
	}
}

type tableCheck struct{ t *Table }

func (c tableCheck) rows() [][]string { return c.t.Rows }
func (c tableCheck) title() string    { return c.t.Title }

// TestStormSeedOverride pins the -storm flag semantics: a non-zero
// override narrows the campaign to that seed; 0 restores the default trio.
func TestStormSeedOverride(t *testing.T) {
	SetStormSeed(99)
	defer SetStormSeed(0)
	if got := stormSeeds(); len(got) != 1 || got[0] != 99 {
		t.Fatalf("override seeds = %v, want [99]", got)
	}
	SetStormSeed(0)
	if got := stormSeeds(); len(got) != 3 {
		t.Fatalf("default seeds = %v, want the default trio", got)
	}
}

// TestEndpointFaultOutcomes pins each fault class's qualitative outcome:
// transient faults recover with every connection surviving; crash with
// teardown kills both ends (the peer through its RTO budget) and cannot
// recover goodput.
func TestEndpointFaultOutcomes(t *testing.T) {
	tb := FigEndpointFault(4 * time.Millisecond)
	if len(tb.Rows) != 6 {
		t.Fatalf("got %d scenarios, want 6", len(tb.Rows))
	}
	col := func(name string) int {
		for i, c := range tb.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("no column %q", name)
		return -1
	}
	recovered, ok, dead := col("recovered"), col("conns ok"), col("conns dead")
	for _, row := range tb.Rows {
		name := row[0]
		if name == "crash_teardown" {
			if row[recovered] != "no" || row[dead] != "2" {
				t.Errorf("crash_teardown: want no recovery and both conns dead, got %v", row)
			}
			continue
		}
		if row[recovered] != "yes" {
			t.Errorf("%s: transient fault did not recover: %v", name, row)
		}
		if row[ok] != "2" || row[dead] != "0" {
			t.Errorf("%s: transient fault killed a connection: %v", name, row)
		}
	}
}

// TestStormSweepShort runs a short storm per seed — the -race sweep the
// chaoscheck gate executes — asserting only the invariants, not the
// numbers: determinism is TestStormDeterminism's job.
func TestStormSweepShort(t *testing.T) {
	for _, seed := range stormSeeds() {
		seed := seed
		plan := stormPlanForTest(seed, 2*time.Millisecond)
		rep := stormFalconRun(seed, plan, 2*time.Millisecond)
		if !rep.Ledger.Balanced() {
			t.Errorf("seed %d: falcon ledger unbalanced: %s", seed, rep.Ledger)
		}
		if rep.Completed == 0 {
			t.Errorf("seed %d: no falcon ops completed", seed)
		}
		rr := stormRoceRun(seed, plan, 2*time.Millisecond)
		if !rr.Ledger.Balanced() {
			t.Errorf("seed %d: roce ledger unbalanced: %s", seed, rr.Ledger)
		}
	}
}
