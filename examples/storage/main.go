// Near Local Flash: disaggregate an NVMe SSD over Falcon (§6.3, Table 4)
// and compare against the same device attached locally.
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"time"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/nvme"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

const runFor = 50 * time.Millisecond

// remoteRun measures NVMe-over-Falcon throughput for the given op mix.
func remoteRun(opBytes int, write bool, window int) (gbps float64, iops float64, p99 time.Duration) {
	s := sim.New(7)
	link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
	topo, _ := netsim.PointToPoint(s, link)
	cl := core.NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	epA, epB := cl.Connect(a, b, core.DefaultConnConfig())
	dev := nvme.NewDevice(s, nvme.DefaultDeviceConfig())
	nvme.NewController(epB, dev, 4096)
	client := nvme.NewClient(s, epA, 4096)

	var bytesDone uint64
	var ops uint64
	var lat stats.Series
	rng := s.Rand()
	issuer := workload.NewClosedLoop(s, window, 1<<30, func(opDone func()) bool {
		lba := uint64(rng.Intn(1 << 20))
		start := s.Now()
		fn := func(err error) {
			if err == nil {
				bytesDone += uint64(opBytes)
				ops++
				lat.AddDuration(s.Now().Sub(start))
			}
			opDone()
		}
		var err error
		if write {
			err = client.Write(lba, opBytes, fn)
		} else {
			err = client.Read(lba, opBytes, fn)
		}
		return err == nil
	}, nil)
	issuer.Start()
	s.RunUntil(sim.Time(runFor))
	return stats.Gbps(bytesDone, runFor), float64(ops) / runFor.Seconds(), lat.DurationPercentile(99)
}

// localRun measures the bare device with the same access pattern.
func localRun(opBytes int, write bool, window int) (gbps float64, iops float64, p99 time.Duration) {
	s := sim.New(7)
	dev := nvme.NewDevice(s, nvme.DefaultDeviceConfig())
	var bytesDone, ops uint64
	var lat stats.Series
	issuer := workload.NewClosedLoop(s, window, 1<<30, func(opDone func()) bool {
		start := s.Now()
		fn := func() {
			bytesDone += uint64(opBytes)
			ops++
			lat.AddDuration(s.Now().Sub(start))
			opDone()
		}
		if write {
			dev.Write(opBytes, fn)
		} else {
			dev.Read(opBytes, fn)
		}
		return true
	}, nil)
	issuer.Start()
	s.RunUntil(sim.Time(runFor))
	return stats.Gbps(bytesDone, runFor), float64(ops) / runFor.Seconds(), lat.DurationPercentile(99)
}

func main() {
	fmt.Println("Near Local Flash: NVMe-over-Falcon vs locally attached SSD")
	fmt.Println()
	fmt.Printf("%-22s %12s %12s %9s\n", "workload", "NLF", "local SSD", "NLF/local")
	rows := []struct {
		name   string
		bytes  int
		write  bool
		window int
	}{
		{"4KB random read", 4 << 10, false, 64},
		{"16KB random read", 16 << 10, false, 64},
		{"1MB write", 1 << 20, true, 16},
	}
	for _, r := range rows {
		rg, _, rp99 := remoteRun(r.bytes, r.write, r.window)
		lg, _, _ := localRun(r.bytes, r.write, r.window)
		fmt.Printf("%-22s %10.1fG %10.1fG %8.1f%%  (NLF p99 %v)\n",
			r.name, rg, lg, 100*rg/lg, rp99)
	}
	fmt.Println("\nNLF bandwidth stays within ~10% of the local device (Table 4's")
	fmt.Println("result): the SSD's own service time dominates the network overhead.")
}
