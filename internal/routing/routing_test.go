package routing_test

// Policy property tests. External package on purpose: the fabric-level
// properties drive real netsim Clos topologies (netsim imports routing,
// so an internal test would cycle).

import (
	"fmt"
	"testing"
	"time"

	"falcon/internal/netsim"
	"falcon/internal/routing"
	"falcon/internal/sim"
)

// closSizes mirrors the Clos parameterizations the experiment and
// workload drivers build (internal/netsim topology tests keep the same
// list): the policy properties below must hold at every size.
var closSizes = []struct{ racks, hostsPerRack, spines int }{
	{2, 8, 4},
	{1, 1, 4},
	{1, 2, 4},
	{1, 4, 4},
	{1, 8, 4},
	{1, 16, 4},
	{2, 16, 4},
	{2, 2, 2},
}

var testLink = netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}

// lcg is a tiny deterministic generator for synthetic queue vectors —
// the global-rand audit bans math/rand's package-level functions and a
// seeded source would be overkill for a property sweep.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

// queueVec adapts a plain depth slice to routing.QueueDepths.
type queueVec []int

func (q queueVec) QueuedBytes(i int) int { return q[i] }

// TestECMPMatchesLegacyFormula pins ECMP.Select to the exact selection
// netsim's switches hard-coded before routing became pluggable:
// mix64(flowHash ^ salt ^ dst<<32 ^ src) % n. Any drift here would break
// the byte-determinism contract (the 33 sweep trace hashes and every
// committed falconbench cell assume this mapping).
func TestECMPMatchesLegacyFormula(t *testing.T) {
	legacy := func(k routing.Key, n int) int {
		x := k.FlowHash ^ k.Salt ^ k.Dst<<32 ^ k.Src
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return int(x % uint64(n))
	}
	var g lcg
	var e routing.ECMP
	for n := 2; n <= 9; n++ {
		for trial := 0; trial < 2000; trial++ {
			k := routing.Key{FlowHash: g.next(), Salt: g.next(), Src: g.next() % 64, Dst: g.next() % 64}
			if got, want := e.Select(k, n, nil, nil), legacy(k, n); got != want {
				t.Fatalf("ECMP.Select(%+v, n=%d) = %d, legacy formula gives %d", k, n, got, want)
			}
		}
	}
}

// TestSprayExactRoundRobin asserts the spray guarantee at the policy
// level for every uplink-set size the experiments build: over c*n
// selections the counter hands each candidate exactly c frames.
func TestSprayExactRoundRobin(t *testing.T) {
	var sp routing.Spray
	for _, sz := range closSizes {
		n := sz.spines
		const c = 57
		var state uint64
		counts := make([]int, n)
		for i := 0; i < c*n; i++ {
			idx := sp.Select(routing.Key{}, n, &state, nil)
			if idx < 0 || idx >= n {
				t.Fatalf("spray returned out-of-range index %d (n=%d)", idx, n)
			}
			counts[idx]++
		}
		for i, got := range counts {
			if got != c {
				t.Fatalf("n=%d: uplink %d carried %d of %d frames, want exactly %d", n, i, got, c*n, c)
			}
		}
	}
}

// TestAdaptiveNeverPicksMoreQueued asserts the adaptive invariant over
// randomized queue vectors at every experiment uplink-set size: the
// selected candidate's depth is <= every other candidate's, and ties
// break to the lowest index.
func TestAdaptiveNeverPicksMoreQueued(t *testing.T) {
	var ad routing.Adaptive
	var g lcg
	for _, sz := range closSizes {
		n := sz.spines
		for trial := 0; trial < 5000; trial++ {
			q := make(queueVec, n)
			for i := range q {
				// Small modulus so ties are common and the tie-break rule
				// is actually exercised.
				q[i] = int(g.next() % 8)
			}
			idx := ad.Select(routing.Key{}, n, nil, q)
			for i, d := range q {
				if d < q[idx] {
					t.Fatalf("n=%d q=%v: picked %d (depth %d) over strictly-less-queued %d (depth %d)",
						n, q, idx, q[idx], i, d)
				}
				if d == q[idx] && i < idx {
					t.Fatalf("n=%d q=%v: picked %d, tie must break to lowest index %d", n, q, idx, i)
				}
			}
		}
	}
}

// crossTraffic sends frames host 0 -> the first host of the last rack
// (or the last host of rack 0 when single-rack) with distinct flow
// labels, and returns the sender's ToR uplink ports toward that
// destination.
func crossTraffic(s *sim.Simulator, topo *netsim.Topology, frames int) []*netsim.Port {
	for _, h := range topo.Hosts {
		h.SetHandler(netsim.HandlerFunc(func(*netsim.Frame) {}))
	}
	src := topo.Hosts[0]
	dst := topo.Hosts[len(topo.Hosts)-1]
	for i := 0; i < frames; i++ {
		f := src.NewFrame()
		f.Dst = dst.ID
		f.FlowHash = uint64(i)*0x9e37 + 11
		f.Size = 1500
		src.Send(f)
	}
	return topo.ToRs[0].RouteTo(dst.ID)
}

// TestSprayFabricExactSpread runs the round-robin guarantee through a
// real fabric at every multi-rack size: c*spines cross-rack frames leave
// the sending ToR with exactly c frames per spine uplink.
func TestSprayFabricExactSpread(t *testing.T) {
	for _, sz := range closSizes {
		if sz.racks < 2 {
			continue // single-rack traffic never crosses an ECMP set
		}
		sz := sz
		t.Run(fmt.Sprintf("racks%d_hosts%d_spines%d", sz.racks, sz.hostsPerRack, sz.spines), func(t *testing.T) {
			s := sim.New(1)
			topo := netsim.Clos(s, sz.racks, sz.hostsPerRack, sz.spines, testLink, testLink)
			topo.SetRoutingPolicy(routing.Spray{})
			const c = 40
			uplinks := crossTraffic(s, topo, c*sz.spines)
			s.Run()
			if len(uplinks) != sz.spines {
				t.Fatalf("route set has %d uplinks, want %d", len(uplinks), sz.spines)
			}
			for i, p := range uplinks {
				if p.Stats.TxFrames != c {
					t.Fatalf("uplink %d carried %d frames, want exactly %d", i, p.Stats.TxFrames, c)
				}
			}
		})
	}
}

// TestAdaptiveFabricAvoidsSlowUplink checks the policy end to end: on a
// fabric with one uplink serialized 8x slower (its queue backs up),
// adaptive must route the slow uplink strictly less than its fair share
// and less than the busiest healthy uplink, at every multi-rack size.
// (Healthy high-index uplinks may legitimately carry little: ties break
// to the lowest index, so an uncongested fabric concentrates low.)
func TestAdaptiveFabricAvoidsSlowUplink(t *testing.T) {
	for _, sz := range closSizes {
		if sz.racks < 2 {
			continue
		}
		sz := sz
		t.Run(fmt.Sprintf("racks%d_hosts%d_spines%d", sz.racks, sz.hostsPerRack, sz.spines), func(t *testing.T) {
			s := sim.New(1)
			topo := netsim.Clos(s, sz.racks, sz.hostsPerRack, sz.spines, testLink, testLink)
			topo.SetRoutingPolicy(routing.Adaptive{})
			dst := topo.Hosts[len(topo.Hosts)-1]
			uplinks := topo.ToRs[0].RouteTo(dst.ID)
			uplinks[0].SetRateGbps(testLink.GbpsRate / 8)
			frames := 64 * sz.spines
			crossTraffic(s, topo, frames)
			s.Run()
			slow := uplinks[0].Stats.TxFrames
			var healthyMax uint64
			for _, p := range uplinks[1:] {
				if p.Stats.TxFrames > healthyMax {
					healthyMax = p.Stats.TxFrames
				}
			}
			fair := uint64(frames / sz.spines)
			if slow >= fair {
				t.Fatalf("slow uplink carried %d frames, >= fair share %d — adaptive did not avoid the backlog", slow, fair)
			}
			if slow >= healthyMax {
				t.Fatalf("slow uplink carried %d frames, busiest healthy only %d", slow, healthyMax)
			}
		})
	}
}

// TestByName pins the policy registry: every built-in resolves by its
// own name, unknown names are nil.
func TestByName(t *testing.T) {
	for _, p := range routing.Policies() {
		got := routing.ByName(p.Name())
		if got == nil || got.Name() != p.Name() {
			t.Fatalf("ByName(%q) = %v", p.Name(), got)
		}
	}
	if routing.ByName("wecmp") != nil {
		t.Fatal("ByName must return nil for unknown policies")
	}
}
