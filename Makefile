GO ?= go

.PHONY: all build test short race sweep fuzz vet bench metrics perfcheck lakecheck chaoscheck shardcheck ci

all: build vet test perfcheck lakecheck chaoscheck shardcheck

build:
	$(GO) build ./...

# Tier-1: full unit + integration suite (sweeps at default breadth).
test:
	$(GO) test ./...

# Quick iteration loop: long simulation sweeps skip or shrink.
short:
	$(GO) test -short ./...

# Race detection, including the parallel falconbench path (the worker pool
# plus a few experiments fanned across 4 goroutines). The `go test -race`
# pass includes TestSweepRaceShort: the short fault-sweep matrix at 3 seeds
# under the optimized hot path, so the batched ACK/timer path is
# race-checked against real scenario traffic, not just the bench figures.
race:
	$(GO) test -race ./...
	$(GO) run -race ./cmd/falconbench -quick -parallel 4 -run 'fig18|fig19|fig21|fig22a|fig23' >/dev/null

# Full fault-sweep matrix and determinism checks, verbose.
sweep:
	$(GO) test -v -run 'TestSweep|TestDeterminism|TestExperimentDeterminism' \
		./internal/testkit/ ./internal/experiments/

# Wire-format fuzzing plus the differential SACK-scan fuzzer (word-at-a-
# time bitmap walk vs the naive per-PSN loop, across the uint32 PSN wrap).
# Bounded; remove -fuzztime to run until interrupted.
fuzz:
	$(GO) test -fuzz FuzzUnmarshal -fuzztime 30s ./internal/falcon/wire/
	$(GO) test -fuzz FuzzSACKScan -fuzztime 30s ./internal/falcon/pdl/

vet:
	$(GO) vet ./...

# Performance baseline: scheduler microbenchmarks (wheel vs heap at 1k/32k/1M
# pending timers), then one quick figure per family with the perf report
# written to BENCH_pr2.json. See DESIGN.md §8 for how to read the numbers.
bench:
	$(GO) test -run NONE -bench 'BenchmarkScheduler' -benchmem ./internal/sim/
	$(GO) run ./cmd/falconbench -quick -json BENCH_pr2.json \
		-run 'fig1|fig10|fig13|fig18|fig20a|fig22b|fig25|table4'

# Regenerate the committed telemetry artifacts: deterministic per-figure
# metric snapshots (BENCH_pr3_metrics.json) and virtual-clock time series
# (BENCH_pr3_series/*.csv) for the loss-recovery, incast and multipath
# figures. Byte-identical across reruns — `git diff` after this target
# should be empty unless behaviour changed. See DESIGN.md §9.
metrics:
	$(GO) run ./cmd/falconbench -quick -run 'fig10|fig13|fig15' \
		-metrics BENCH_pr3_metrics.json -series BENCH_pr3_series
	$(GO) run ./cmd/falconbench -quick -run 'figRouting|figGrayFailure' \
		-metrics BENCH_pr8_metrics.json
	$(GO) run ./cmd/falconbench -quick -run 'figStorm|figEndpointFault' \
		-metrics BENCH_pr9_metrics.json

# Fast-path regression gate: the zero-alloc assertions on the fabric hot
# path (port send, switch forward with every routing policy, host
# deliver, AtAction dispatch), the end-to-end transport steady-state
# alloc gate, and the trace-hash equivalence suites — wheel-vs-heap
# schedulers, pooled-vs-legacy allocation, the PR 6 legacy-vs-optimized
# PDL/TL hot path over the full 33-scenario fault-sweep matrix (plus the
# eager-vs-lazy timer oracle), and the PR 8 routing equivalence suite
# (pluggable ECMP vs the pre-extraction inline formula, spray's exact
# round-robin and adaptive's backlog avoidance through a real fabric).
# The AST lints keep map indexing and closure-based scheduling out of
# the steady-state path so regressions fail here rather than in
# profiles. See DESIGN.md §10–11, §13.
perfcheck:
	$(GO) test -run 'ZeroAlloc' -v ./internal/netsim/ ./internal/sim/
	$(GO) test -run 'TestTransportSteadyStateAllocs' -v ./internal/core/
	$(GO) test -short -run 'TestSweepSchedulerEquivalence|TestSweepPoolEquivalence' \
		./internal/testkit/
	$(GO) test -run 'TestSweepHotPathEquivalence|TestSweepTimerEquivalence' \
		./internal/testkit/
	$(GO) test -run 'TestECMPMatchesLegacyFormula|TestSprayFabricExactSpread|TestAdaptiveFabricAvoidsSlowUplink' \
		./internal/routing/
	$(GO) test -run 'TestHotPathLint|TestNetsimClosureFree' ./internal/testkit/

# Telemetry-lake gate over the committed BENCH artifacts (see DESIGN.md
# §12, METRICS.md): two independent ingests must be byte-identical, the
# pr3/pr8 self-diffs must report zero findings, and the doc/lint tests
# keep METRICS.md complete and every internal/ package documented.
lakecheck:
	$(GO) run ./cmd/falconlake ingest -out /tmp/falconlake_a.idx \
		BENCH_pr3_metrics.json BENCH_pr3_series BENCH_pr5.json BENCH_pr6.json \
		BENCH_pr8_metrics.json BENCH_pr9_metrics.json \
		BENCH_pr10_single.json BENCH_pr10.json
	$(GO) run ./cmd/falconlake ingest -out /tmp/falconlake_b.idx \
		BENCH_pr3_metrics.json BENCH_pr3_series BENCH_pr5.json BENCH_pr6.json \
		BENCH_pr8_metrics.json BENCH_pr9_metrics.json \
		BENCH_pr10_single.json BENCH_pr10.json
	cmp /tmp/falconlake_a.idx /tmp/falconlake_b.idx
	$(GO) run ./cmd/falconlake diff -index /tmp/falconlake_a.idx pr3 pr3
	$(GO) run ./cmd/falconlake diff -index /tmp/falconlake_a.idx pr8 pr8
	$(GO) run ./cmd/falconlake diff -index /tmp/falconlake_a.idx pr9 pr9
	$(GO) run ./cmd/falconlake diff -index /tmp/falconlake_a.idx pr10 pr10
	$(GO) run ./cmd/falconlake list -index /tmp/falconlake_a.idx
	rm -f /tmp/falconlake_a.idx /tmp/falconlake_b.idx
	$(GO) test -run 'TestLake|TestDiff|TestQuerier|TestParsePath|TestPathClass|TestTrend' ./internal/lake/
	$(GO) test -run 'TestMetricsDocComplete' ./internal/telemetry/
	$(GO) test -run 'TestPackageDocLint' ./internal/testkit/

# Chaos gate (see DESIGN.md §14, EXPERIMENTS.md PR 9): storm campaigns are
# part of the deterministic event stream, so the gate is exact — two
# falconbench runs under the same -storm seed must write byte-identical
# metrics JSON (the whole chaos telemetry layer is exact-class, recovery
# gaps included), the frame-conservation ledger must close for every storm
# and endpoint-fault scenario, and the 3-seed short sweep runs under the
# race detector so fault injection is checked against real transport
# traffic, not just replayed tables.
chaoscheck:
	$(GO) run ./cmd/falconbench -quick -storm 71 \
		-metrics /tmp/falconstorm_a.json >/dev/null
	$(GO) run ./cmd/falconbench -quick -storm 71 \
		-metrics /tmp/falconstorm_b.json >/dev/null
	cmp /tmp/falconstorm_a.json /tmp/falconstorm_b.json
	rm -f /tmp/falconstorm_a.json /tmp/falconstorm_b.json
	$(GO) test ./internal/chaos/
	$(GO) test -run 'TestStormLedgerHolds|TestEndpointFaultOutcomes|TestStormSeedOverride' \
		./internal/experiments/
	$(GO) test -race -run 'TestStormSweepShort|TestStormDeterminism' ./internal/experiments/

# Sharded-simulation gate (see DESIGN.md §15, EXPERIMENTS.md PR 10). The
# partitioned event loop must be invisible in every output: the unit and
# equivalence suites check per-partition wheels against the single loop
# (33-scenario fault-sweep trace hashes and experiment tables at 1/2/4
# partitions), then the full quick falconbench table set is diffed
# byte-for-byte between -shards 1, 2 and 4 (only the wall-clock " in <t>"
# timing lines are stripped — every table cell must match). The -race pass
# covers the experimental -shardpar mode: partitions on concurrent
# goroutines with conservative lookahead must be self-deterministic and
# race-clean.
shardcheck:
	$(GO) test -run 'TestShard|TestCross|TestLookahead' ./internal/sim/
	$(GO) test -run 'TestSweepShard|TestShard' ./internal/testkit/
	$(GO) test -run 'TestShardTableEquivalence' ./internal/experiments/
	$(GO) run ./cmd/falconbench -quick | sed '/ in /d' > /tmp/falconshard_1.txt
	$(GO) run ./cmd/falconbench -quick -shards 2 | sed '/ in /d' > /tmp/falconshard_2.txt
	$(GO) run ./cmd/falconbench -quick -shards 4 | sed '/ in /d' > /tmp/falconshard_4.txt
	cmp /tmp/falconshard_1.txt /tmp/falconshard_2.txt
	cmp /tmp/falconshard_1.txt /tmp/falconshard_4.txt
	rm -f /tmp/falconshard_1.txt /tmp/falconshard_2.txt /tmp/falconshard_4.txt
	$(GO) test -race -run 'TestSweepShardParallelDeterminism' ./internal/testkit/
	$(GO) test -race -run 'TestShardParallelFigScale' ./internal/experiments/

# Regenerate every table at full measurement windows (several minutes).
bench-full:
	$(GO) run ./cmd/falconbench

.PHONY: bench-full

ci: vet build test race
