package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func cellF(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestTableFprint(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== demo ==", "a", "bb", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig22aShape(t *testing.T) {
	tb := Fig22a()
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Stateless is flat; stateful degrades with connection count;
	// prefetch stays within 30% of stateless everywhere up to 128K.
	first := cellF(t, tb, 0, 1)
	last := cellF(t, tb, len(tb.Rows)-1, 1)
	if first != last {
		t.Fatalf("stateless rate varies: %v vs %v", first, last)
	}
	if cellF(t, tb, len(tb.Rows)-1, 2) >= cellF(t, tb, 0, 2) {
		t.Fatal("stateful should degrade with connections")
	}
	if cellF(t, tb, 3, 3) < 0.7*cellF(t, tb, 3, 1) {
		t.Fatal("prefetch should stay near stateless at 128K conns")
	}
}

func TestFig23Shape(t *testing.T) {
	tb := Fig23()
	// Rate decreases monotonically with state size, and the 512B
	// prefetch rate stays within the paper's ~15M band.
	prev := 1e18
	for i := range tb.Rows {
		v := cellF(t, tb, i, 1)
		if v > prev {
			t.Fatalf("prefetch rate increased with state size at row %d", i)
		}
		prev = v
	}
	last := cellF(t, tb, len(tb.Rows)-1, 1)
	if last < 11 || last > 18 {
		t.Fatalf("512B prefetch rate = %vM, want ~15M", last)
	}
}

func TestFig12ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb := Fig12(1500 * time.Microsecond)
	// At the highest drop rate: SR > GBN > AR.
	last := len(tb.Rows) - 1
	gbn, sr, ar := cellF(t, tb, last, 1), cellF(t, tb, last, 2), cellF(t, tb, last, 3)
	if !(sr > gbn && gbn > ar) {
		t.Fatalf("mode ordering violated at 2%% drop: gbn=%v sr=%v ar=%v", gbn, sr, ar)
	}
}

func TestFig10FalconHoldsGoodputQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb := Fig10(1500 * time.Microsecond)
	// Write rows 0..4: Falcon at 2% drop stays above RoCE-GBN.
	falcon := cellF(t, tb, 4, 2)
	gbn := cellF(t, tb, 4, 4)
	if falcon <= gbn {
		t.Fatalf("Falcon (%v) should beat RoCE-GBN (%v) at 2%% drop", falcon, gbn)
	}
}

func TestIdealIncastLatency(t *testing.T) {
	// 1MB over a fair share of 200G across 5 flows: 5x the single-flow
	// serialization.
	one := idealIncastLatency(1, 1<<20, 200)
	bytes := float64(1 << 20)
	want := time.Duration(bytes * 8 / 40)
	if one != want {
		t.Fatalf("ideal 5-flow latency = %v, want %v", one, want)
	}
	if idealIncastLatency(2, 1<<20, 200) != 2*one {
		t.Fatal("ideal should scale with flow count")
	}
}

func TestFmtSize(t *testing.T) {
	cases := map[int]string{8: "8.0B", 2048: "2.0KB", 1 << 20: "1.0MB"}
	for in, want := range cases {
		if got := fmtSize(in); got != want {
			t.Fatalf("fmtSize(%d) = %q, want %q", in, got, want)
		}
	}
}
