package chaos

// The recovery-envelope verifier: sample cumulative delivered bytes on a
// fixed virtual-clock grid during a storm, then derive how long after the
// last fault cleared the workload's goodput re-entered a percentage band
// of its pre-fault baseline. Everything is integer arithmetic over
// virtual-clock samples, so envelope results are part of the same-seed
// byte-determinism contract (the chaos telemetry layer is exact-class).

import (
	"time"

	"falcon/internal/sim"
)

// Envelope samples a cumulative delivered-bytes counter every interval.
// The counter pointer is read lazily at each tick — the workload just
// increments its own uint64; no callback runs on the delivery path.
type Envelope struct {
	s         *sim.Simulator
	delivered *uint64
	interval  time.Duration
	start     sim.Time
	samples   []uint64
}

// envTick is the pooled typed action behind the sampling grid: one
// allocation per envelope, re-armed until the bound.
type envTick struct {
	e     *Envelope
	until sim.Time
}

// RunAction implements sim.Action.
func (t *envTick) RunAction() {
	e := t.e
	e.samples = append(e.samples, *e.delivered)
	next := e.s.Now().Add(e.interval)
	if next <= t.until {
		e.s.AtAction(next, t)
	}
}

// NewEnvelope starts sampling *delivered every interval from the current
// virtual time until `until` (inclusive). The first sample is taken
// immediately, so sample i covers bucket [start+i*interval, +interval).
func NewEnvelope(s *sim.Simulator, delivered *uint64, interval time.Duration, until sim.Time) *Envelope {
	e := &Envelope{s: s, delivered: delivered, interval: interval, start: s.Now()}
	e.samples = append(e.samples, *delivered)
	tick := &envTick{e: e, until: until}
	s.AtAction(e.start.Add(interval), tick)
	return e
}

// Result is the measured recovery envelope of one storm run. All values
// are integers derived from virtual-clock samples: exact-class metrics.
type Result struct {
	// BaselineMbps is the mean goodput over fully-pre-fault buckets.
	BaselineMbps uint64
	// StormMbps is the mean goodput over buckets overlapping the fault
	// window — the depth of the dip.
	StormMbps uint64
	// TailMbps is the mean goodput over buckets after the last fault
	// cleared.
	TailMbps uint64
	// Recovered reports whether the trailing-median goodput re-entered
	// the pct band of the baseline after fault clear.
	Recovered bool
	// RecoveryNs is the virtual-clock gap from fault clear to the end of
	// the first bucket whose trailing 3-bucket median goodput reached
	// pct% of baseline; 0 when Recovered is false (or when recovery was
	// instant — disambiguate with Recovered).
	RecoveryNs int64
}

// mbps converts bytes-per-bucket to megabits/s (integer arithmetic).
func (e *Envelope) mbps(bytesPerBucket uint64) uint64 {
	ns := uint64(e.interval.Nanoseconds())
	if ns == 0 {
		return 0
	}
	return bytesPerBucket * 8 * 1000 / ns
}

// median3 returns the median of the up-to-3 trailing deltas ending at i.
func median3(deltas []uint64, i int) uint64 {
	lo := i - 2
	if lo < 0 {
		lo = 0
	}
	w := append([]uint64(nil), deltas[lo:i+1]...)
	for a := 1; a < len(w); a++ { // tiny insertion sort
		for b := a; b > 0 && w[b] < w[b-1]; b-- {
			w[b], w[b-1] = w[b-1], w[b]
		}
	}
	return w[len(w)/2]
}

// Finish derives the envelope against a fault window [faultStart,
// faultClear] and a recovery threshold of pct percent of baseline.
// Call it after the run has passed the sampling bound.
func (e *Envelope) Finish(faultStart, faultClear sim.Time, pct int) Result {
	var r Result
	n := len(e.samples) - 1 // deltas
	if n <= 0 {
		return r
	}
	deltas := make([]uint64, n)
	for i := 0; i < n; i++ {
		deltas[i] = e.samples[i+1] - e.samples[i]
	}
	bucketEnd := func(i int) sim.Time {
		return e.start.Add(time.Duration(i+1) * e.interval)
	}
	var baseSum, stormSum, tailSum uint64
	var baseN, stormN, tailN int
	for i := 0; i < n; i++ {
		end := bucketEnd(i)
		begin := end.Add(-e.interval)
		switch {
		case end <= faultStart:
			baseSum += deltas[i]
			baseN++
		case begin >= faultClear:
			tailSum += deltas[i]
			tailN++
		default:
			stormSum += deltas[i]
			stormN++
		}
	}
	var baseAvg uint64
	if baseN > 0 {
		baseAvg = baseSum / uint64(baseN)
		r.BaselineMbps = e.mbps(baseAvg)
	}
	if stormN > 0 {
		r.StormMbps = e.mbps(stormSum / uint64(stormN))
	}
	if tailN > 0 {
		r.TailMbps = e.mbps(tailSum / uint64(tailN))
	}
	if baseAvg == 0 {
		return r // no pre-fault traffic: recovery is undefined
	}
	for i := 0; i < n; i++ {
		end := bucketEnd(i)
		if end < faultClear {
			continue
		}
		if median3(deltas, i)*100 >= baseAvg*uint64(pct) {
			r.Recovered = true
			r.RecoveryNs = int64(end.Sub(faultClear))
			if r.RecoveryNs < 0 {
				r.RecoveryNs = 0
			}
			return r
		}
	}
	return r
}
