package experiments

import (
	"time"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/nic"
	"falcon/internal/rdma"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/swtransport"
	"falcon/internal/workload"
)

// Fig19 reproduces "message size scaling": RDMA Write completion latency
// between two hosts on an unloaded network, p50/p99 versus the ideal
// (serialization + propagation + minimal processing).
func Fig19() *Table {
	t := &Table{
		Title:   "Figure 19: write completion latency vs message size (unloaded)",
		Columns: []string{"size", "p50", "p99", "ideal", "p50/ideal"},
	}
	const gbps = 200
	for _, size := range []int{8, 512, 4 << 10, 32 << 10, 256 << 10, 1 << 20} {
		p := newFalconP2P(19, gbps, multipathConn())
		var lat stats.Series
		var issue func(n int)
		issue = func(n int) {
			if n == 0 {
				return
			}
			start := p.sim.Now()
			p.qa.Write(0, 0, nil, size, func(c rdma.Completion) {
				lat.AddDuration(p.sim.Now().Sub(start))
				issue(n - 1)
			})
		}
		issue(200)
		p.sim.Run()
		// Ideal: one serialization of the payload at the bottleneck
		// link (store-and-forward overlaps across the two hops for
		// multi-packet messages) plus the round-trip propagation and
		// ACK return.
		ideal := time.Duration(float64(size)*8/gbps) + 4*time.Microsecond
		t.Rows = append(t.Rows, []string{
			fmtSize(size), dur(lat.DurationPercentile(50)), dur(lat.DurationPercentile(99)),
			dur(ideal), f2(lat.Percentile(50) / float64(ideal)),
		})
	}
	return t
}

func fmtSize(n int) string {
	switch {
	case n >= 1<<20:
		return f1(float64(n)/(1<<20)) + "MB"
	case n >= 1<<10:
		return f1(float64(n)/(1<<10)) + "KB"
	}
	return f1(float64(n)) + "B"
}

// Fig20a reproduces "bandwidth scaling": a 100:1 RDMA Read incast (one
// client pulling from 100 connections over five servers) at increasing
// offered bandwidth, Falcon vs an optimized software transport. The
// software stack's op latency explodes as its CPUs saturate; Falcon stays
// flat until the link itself saturates.
//
// Scaled down from the paper's 500 connections to 100.
func Fig20a(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Figure 20a: 100:1 read incast latency vs offered load",
		Columns: []string{"offered Gbps", "Falcon p50", "Falcon p99", "SW p50", "SW p99"},
	}
	const conns = 100
	const servers = 5
	const opBytes = 16 << 10
	for _, offered := range []float64{40, 80, 120, 160, 190} {
		perConnRate := offered * 1e9 / 8 / opBytes / conns
		// Falcon.
		fp50, fp99 := func() (time.Duration, time.Duration) {
			s := sim.New(20)
			link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
			topo := netsim.Star(s, servers+1, link)
			cl := core.NewCluster(s)
			client := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
			var serverNodes []*core.Node
			for i := 0; i < servers; i++ {
				serverNodes = append(serverNodes, cl.AddNode(topo.Hosts[1+i], core.DefaultNodeConfig()))
			}
			var lat stats.Series
			for c := 0; c < conns; c++ {
				epC, epS := cl.Connect(client, serverNodes[c%servers], multipathConn())
				qa := rdma.NewQP(epC, rdma.Config{})
				rdma.NewQP(epS, rdma.Config{}).RegisterMemoryLen(1 << 40)
				gen := workload.NewPoisson(s, s.Rand(), perConnRate, 1<<30, func() {
					start := s.Now()
					qa.Read(0, 0, opBytes, func(c rdma.Completion) {
						if c.Err == nil {
							lat.AddDuration(s.Now().Sub(start))
						}
					})
				})
				gen.Start()
			}
			s.RunUntil(sim.Time(runFor))
			return lat.DurationPercentile(50), lat.DurationPercentile(99)
		}()
		// Software transport.
		sp50, sp99 := func() (time.Duration, time.Duration) {
			s := sim.New(20)
			link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
			topo := netsim.Star(s, servers+1, link)
			clientNode := swtransport.NewNode(s, topo.Hosts[0], swtransport.PonyExpress())
			var serverNodes []*swtransport.Node
			for i := 0; i < servers; i++ {
				serverNodes = append(serverNodes, swtransport.NewNode(s, topo.Hosts[1+i], swtransport.PonyExpress()))
			}
			var lat stats.Series
			for c := 0; c < conns; c++ {
				conn := swtransport.Connect(clientNode, serverNodes[c%servers], uint32(c+1))
				gen := workload.NewPoisson(s, s.Rand(), perConnRate, 1<<30, func() {
					start := s.Now()
					conn.Call(64, opBytes, func() {
						lat.AddDuration(s.Now().Sub(start))
					})
				})
				gen.Start()
			}
			s.RunUntil(sim.Time(runFor))
			return lat.DurationPercentile(50), lat.DurationPercentile(99)
		}()
		t.Rows = append(t.Rows, []string{f1(offered), dur(fp50), dur(fp99), dur(sp50), dur(sp99)})
	}
	return t
}

// Fig20b reproduces "op-rate scaling": maximum 8B RDMA Write rate between
// two hosts versus QP count. A single QP is bounded by the per-connection
// pipeline (~20 Mops); the aggregate pipeline saturates around 120 Mops.
func Fig20b(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Figure 20b: 8B write op rate vs QP count",
		Columns: []string{"QPs", "Mops/s"},
	}
	for _, qps := range []int{1, 2, 4, 8, 12, 16} {
		s := sim.New(20)
		link := netsim.LinkConfig{GbpsRate: 200, PropDelay: 500 * time.Nanosecond}
		topo, _ := netsim.PointToPoint(s, link)
		cl := core.NewCluster(s)
		a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
		b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
		var ops uint64
		for q := 0; q < qps; q++ {
			cfg := multipathConn()
			cfg.TL.Ordered = false // op-rate benchmarks use unordered QPs
			epA, epB := cl.Connect(a, b, cfg)
			qa := rdma.NewQP(epA, rdma.Config{})
			rdma.NewQP(epB, rdma.Config{}).RegisterMemoryLen(1 << 40)
			// Window 128 matches the PDL sequence window: enough to
			// cover the NIC pipeline's bandwidth-delay product.
			issuer := workload.NewClosedLoop(s, 128, 1<<30, func(opDone func()) bool {
				err := qa.Write(0, 0, nil, 8, func(c rdma.Completion) {
					ops++
					opDone()
				})
				return err == nil
			}, nil)
			issuer.Start()
		}
		s.RunUntil(sim.Time(runFor))
		t.Rows = append(t.Rows, []string{f1(float64(qps)), f1(float64(ops) / runFor.Seconds() / 1e6)})
	}
	return t
}

// Fig21 reproduces "connection cliff": software-visible RTT of a
// single-outstanding 8B read ping-pong while connections are chosen
// uniformly at random from a growing pool, for Falcon's NIC (on-NIC DRAM
// backing store, two cache levels) versus a CX-7-like NIC (host-memory
// backing store). The experiment isolates the connection-state cache, so
// it drives the NIC model directly: each ping-pong costs four pipeline
// passes (TX and RX on each side) plus the wire.
func Fig21() *Table {
	t := &Table{
		Title:   "Figure 21: ping-pong RTT vs connection count (cache pressure)",
		Columns: []string{"connections", "Falcon RTT", "CX7-like RTT", "Falcon/base", "CX7/base"},
	}
	const wire = 2 * 2 * time.Microsecond // two one-way trips
	const opsPerConnSample = 200_000
	run := func(cfg nic.Config, conns int) time.Duration {
		s := sim.New(21)
		nicA := nic.New(s, cfg)
		nicB := nic.New(s, cfg)
		rng := s.Rand()
		var lat stats.Series
		var pingPong func(n int)
		pingPong = func(n int) {
			if n == 0 {
				return
			}
			conn := uint32(rng.Intn(conns))
			start := s.Now()
			// Four pipeline passes: client TX, server RX, server TX,
			// client RX; the wire in between.
			nicA.Process(conn, func() {
				s.After(wire/2, func() {
					nicB.Process(conn, func() {
						nicB.Process(conn, func() {
							s.After(wire/2, func() {
								nicA.Process(conn, func() {
									lat.AddDuration(s.Now().Sub(start))
									pingPong(n - 1)
								})
							})
						})
					})
				})
			})
		}
		pingPong(opsPerConnSample)
		s.Run()
		return lat.MeanDuration()
	}
	falconBase := run(nic.DefaultConfig(), 1)
	cx7Base := run(nic.CX7LikeConfig(), 1)
	for _, conns := range []int{1000, 10_000, 100_000, 300_000, 1_000_000} {
		f := run(nic.DefaultConfig(), conns)
		c := run(nic.CX7LikeConfig(), conns)
		t.Rows = append(t.Rows, []string{
			f1(float64(conns)), dur(f), dur(c),
			f2(float64(f) / float64(falconBase)), f2(float64(c) / float64(cx7Base)),
		})
	}
	return t
}
