package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapSetGetClear(t *testing.T) {
	var m Bitmap
	for _, i := range []int{0, 1, 63, 64, 65, 127} {
		if m.Get(i) {
			t.Fatalf("bit %d set in zero bitmap", i)
		}
		m.Set(i)
		if !m.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		m.Clear(i)
		if m.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestBitmapOutOfRange(t *testing.T) {
	var m Bitmap
	m.Set(-1)
	m.Set(128)
	m.Set(1 << 20)
	if !m.IsZero() {
		t.Fatal("out-of-range Set modified bitmap")
	}
	if m.Get(-1) || m.Get(128) {
		t.Fatal("out-of-range Get returned true")
	}
}

func TestBitmapLeadingRun(t *testing.T) {
	cases := []struct {
		set  []int
		want int
	}{
		{nil, 0},
		{[]int{0}, 1},
		{[]int{0, 1, 2}, 3},
		{[]int{1, 2}, 0},
		{[]int{0, 1, 3}, 2},
	}
	for _, c := range cases {
		var m Bitmap
		for _, i := range c.set {
			m.Set(i)
		}
		if got := m.LeadingRun(); got != c.want {
			t.Errorf("LeadingRun(%v) = %d, want %d", c.set, got, c.want)
		}
	}
	// Full bitmap.
	var m Bitmap
	for i := 0; i < BitmapBits; i++ {
		m.Set(i)
	}
	if got := m.LeadingRun(); got != BitmapBits {
		t.Errorf("LeadingRun(full) = %d, want %d", got, BitmapBits)
	}
	// Exactly the first word set.
	var w Bitmap
	for i := 0; i < 64; i++ {
		w.Set(i)
	}
	if got := w.LeadingRun(); got != 64 {
		t.Errorf("LeadingRun(first word) = %d, want 64", got)
	}
}

func TestBitmapShiftRight(t *testing.T) {
	var m Bitmap
	m.Set(0)
	m.Set(5)
	m.Set(64)
	m.Set(127)
	m.ShiftRight(5)
	for i, want := range map[int]bool{0: true, 59: true, 122: true, 5: false, 64: false, 127: false} {
		if m.Get(i) != want {
			t.Errorf("after shift 5: bit %d = %v, want %v", i, m.Get(i), want)
		}
	}
}

func TestBitmapShiftRightWordBoundary(t *testing.T) {
	var m Bitmap
	m.Set(64)
	m.Set(100)
	m.ShiftRight(64)
	if !m.Get(0) || !m.Get(36) {
		t.Fatalf("shift 64 wrong: %v", m)
	}
	if m.OnesCount() != 2 {
		t.Fatalf("shift 64 count = %d", m.OnesCount())
	}
	m.ShiftRight(128)
	if !m.IsZero() {
		t.Fatal("shift 128 should clear")
	}
}

func TestBitmapShiftZeroOrNegative(t *testing.T) {
	var m Bitmap
	m.Set(7)
	m.ShiftRight(0)
	m.ShiftRight(-3)
	if !m.Get(7) || m.OnesCount() != 1 {
		t.Fatal("shift 0/negative must not modify")
	}
}

func TestBitmapHighestSet(t *testing.T) {
	var m Bitmap
	if m.HighestSet() != -1 {
		t.Fatal("HighestSet on empty should be -1")
	}
	m.Set(3)
	if m.HighestSet() != 3 {
		t.Fatalf("HighestSet = %d", m.HighestSet())
	}
	m.Set(99)
	if m.HighestSet() != 99 {
		t.Fatalf("HighestSet = %d", m.HighestSet())
	}
	m.Set(127)
	if m.HighestSet() != 127 {
		t.Fatalf("HighestSet = %d", m.HighestSet())
	}
}

func TestBitmapString(t *testing.T) {
	var m Bitmap
	if m.String() != "[empty]" {
		t.Fatalf("empty string = %q", m.String())
	}
	m.Set(1)
	m.Set(2)
	m.Set(3)
	m.Set(9)
	if got := m.String(); got != "[1-3,9]" {
		t.Fatalf("String = %q, want [1-3,9]", got)
	}
}

// Property: ShiftRight(n) behaves like a reference bit-slice shift.
func TestQuickShiftMatchesReference(t *testing.T) {
	f := func(w0, w1 uint64, shift uint8) bool {
		n := int(shift % 140) // cover > 128 too
		m := Bitmap{w0, w1}
		ref := make([]bool, BitmapBits)
		for i := 0; i < BitmapBits; i++ {
			ref[i] = m.Get(i)
		}
		m.ShiftRight(n)
		for i := 0; i < BitmapBits; i++ {
			want := false
			if i+n < BitmapBits {
				want = ref[i+n]
			}
			if m.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: LeadingRun equals the index of the first clear bit.
func TestQuickLeadingRun(t *testing.T) {
	f := func(w0, w1 uint64) bool {
		m := Bitmap{w0, w1}
		want := BitmapBits
		for i := 0; i < BitmapBits; i++ {
			if !m.Get(i) {
				want = i
				break
			}
		}
		return m.LeadingRun() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a simulated RX window (random arrival order) always ends with
// base advanced by the count of delivered PSNs once all arrive.
func TestQuickWindowDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(BitmapBits) + 1
		order := rng.Perm(n)
		var m Bitmap
		base := 0
		for _, psn := range order {
			m.Set(psn - base)
			run := m.LeadingRun()
			m.ShiftRight(run)
			base += run
		}
		if base != n {
			t.Fatalf("trial %d: base = %d after all %d arrivals", trial, base, n)
		}
		if !m.IsZero() {
			t.Fatalf("trial %d: bitmap not empty after drain: %v", trial, m)
		}
	}
}
