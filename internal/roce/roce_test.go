package roce

import (
	"testing"
	"time"

	"falcon/internal/netsim"
	"falcon/internal/sim"
)

var testLink = netsim.LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond}

func pair(t *testing.T, cfg Config) (*sim.Simulator, *QP, *Responder, *netsim.Port) {
	t.Helper()
	s := sim.New(17)
	topo, fwd := netsim.PointToPoint(s, testLink)
	a := NewNode(s, topo.Hosts[0], nil)
	b := NewNode(s, topo.Hosts[1], nil)
	qp, r := Connect(a, b, 1, cfg)
	return s, qp, r, fwd
}

func TestWriteDelivers(t *testing.T) {
	s, qp, r, _ := pair(t, DefaultConfig())
	done := false
	qp.Write(64<<10, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("write never completed")
	}
	if r.Stats.DeliveredBytes != 64<<10 {
		t.Fatalf("delivered %d bytes", r.Stats.DeliveredBytes)
	}
}

func TestSendDelivers(t *testing.T) {
	s, qp, r, _ := pair(t, DefaultConfig())
	done := false
	qp.Send(8192, func() { done = true })
	s.Run()
	if !done || r.Stats.DeliveredBytes != 8192 {
		t.Fatalf("done=%v delivered=%d", done, r.Stats.DeliveredBytes)
	}
}

func TestReadCompletes(t *testing.T) {
	s, qp, _, _ := pair(t, DefaultConfig())
	done := false
	qp.Read(32<<10, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("read never completed")
	}
	if qp.Stats.ReadBytes != 32<<10 {
		t.Fatalf("read bytes = %d", qp.Stats.ReadBytes)
	}
}

func TestGBNRecoversLossExpensively(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = GBN
	s, qp, r, fwd := pair(t, cfg)
	fwd.SetDropProb(0.05)
	completed := 0
	for i := 0; i < 50; i++ {
		qp.Write(8192, func() { completed++ })
	}
	s.Run()
	if completed != 50 {
		t.Fatalf("completed %d of 50 under loss", completed)
	}
	if qp.Stats.Retransmits == 0 {
		t.Fatal("GBN should retransmit under loss")
	}
	if r.Stats.DroppedOOO == 0 {
		t.Fatal("GBN receiver should drop OOO packets following a loss")
	}
}

func TestSRRetransmitsPreciselyForWrites(t *testing.T) {
	retxFor := func(mode Mode) uint64 {
		cfg := DefaultConfig()
		cfg.Mode = mode
		s, qp, _, fwd := pair(t, cfg)
		fwd.SetDropProb(0.03)
		completed := 0
		for i := 0; i < 30; i++ {
			qp.Write(16384, func() { completed++ })
		}
		s.Run()
		if completed != 30 {
			t.Fatalf("%v completed %d of 30", mode, completed)
		}
		return qp.Stats.Retransmits
	}
	gbn := retxFor(GBN)
	sr := retxFor(SR)
	if sr >= gbn {
		t.Fatalf("SR retransmits (%d) should be fewer than GBN (%d) for writes", sr, gbn)
	}
}

func TestSendLossFallsBackToGBNEvenInSR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = SR
	s, qp, r, fwd := pair(t, cfg)
	fwd.SetDropProb(0.03)
	completed := 0
	for i := 0; i < 30; i++ {
		qp.Send(16384, func() { completed++ })
	}
	s.Run()
	if completed != 30 {
		t.Fatalf("completed %d of 30", completed)
	}
	// Sends are not SR-capable: OOO sends are dropped at the receiver.
	if r.Stats.DroppedOOO == 0 {
		t.Fatal("OOO sends should be dropped even in SR mode")
	}
}

func TestARRecoversOnlyByRTO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = AR
	cfg.RTO = 200 * time.Microsecond
	s, qp, r, fwd := pair(t, cfg)
	fwd.SetDropProb(0.05)
	completed := 0
	for i := 0; i < 30; i++ {
		qp.Write(16384, func() { completed++ })
	}
	s.Run()
	if completed != 30 {
		t.Fatalf("completed %d of 30", completed)
	}
	if r.Stats.NaksSent != 0 {
		t.Fatal("AR mode must not NAK")
	}
	if qp.Stats.RTOs == 0 {
		t.Fatal("AR loss recovery must come from RTO")
	}
}

func TestARToleratesReorderingWithoutRetx(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = AR
	s, qp, _, fwd := pair(t, cfg)
	fwd.SetReorder(0.2, 15*time.Microsecond)
	completed := 0
	for i := 0; i < 20; i++ {
		qp.Write(16384, func() { completed++ })
	}
	s.Run()
	if completed != 20 {
		t.Fatalf("completed %d", completed)
	}
	if qp.Stats.Retransmits > 0 && qp.Stats.RTOs == 0 {
		t.Fatal("AR should not fast-retransmit under reordering")
	}
}

func TestGBNSuffersUnderReordering(t *testing.T) {
	run := func(mode Mode) uint64 {
		cfg := DefaultConfig()
		cfg.Mode = mode
		s, qp, _, fwd := pair(t, cfg)
		fwd.SetReorder(0.15, 15*time.Microsecond)
		completed := 0
		for i := 0; i < 20; i++ {
			qp.Write(16384, func() { completed++ })
		}
		s.Run()
		if completed != 20 {
			t.Fatalf("%v completed %d", mode, completed)
		}
		return qp.Stats.Retransmits
	}
	gbn := run(GBN)
	ar := run(AR)
	if gbn <= ar {
		t.Fatalf("GBN retransmits (%d) should exceed AR (%d) under pure reordering", gbn, ar)
	}
}

func TestReadLossRecovered(t *testing.T) {
	for _, mode := range []Mode{GBN, SR, AR} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.RTO = 300 * time.Microsecond
		s, qp, _, fwd := pair(t, cfg)
		fwd.SetDropProb(0.03) // drops read requests in forward direction
		completed := 0
		for i := 0; i < 15; i++ {
			qp.Read(16384, func() { completed++ })
		}
		s.Run()
		if completed != 15 {
			t.Fatalf("%v: completed %d of 15 reads", mode, completed)
		}
	}
}

func TestRTTCCAdaptsRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CC.TargetRTT = 1 * time.Microsecond // everything is "congested"
	s, qp, _, _ := pair(t, cfg)
	before := qp.RateGbps()
	for i := 0; i < 50; i++ {
		qp.Write(64<<10, nil)
	}
	s.Run()
	if qp.RateGbps() >= before {
		t.Fatalf("rate %v did not decrease with RTT above target", qp.RateGbps())
	}
}

func TestRTTCCIncreasesWhenIdlePath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkGbps = 10 // start slow
	cfg.CC.TargetRTT = 10 * time.Millisecond
	s, qp, _, _ := pair(t, cfg)
	for i := 0; i < 50; i++ {
		qp.Write(64<<10, nil)
	}
	s.Run()
	if qp.RateGbps() <= 10 {
		t.Fatalf("rate %v did not increase below target", qp.RateGbps())
	}
}

func TestWindowBoundsOutstanding(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowSize = 8
	s, qp, _, fwd := pair(t, cfg)
	maxOut := 0
	fwd.SetDropProb(0)
	probe := func() {
		if o := qp.outstanding(); o > maxOut {
			maxOut = o
		}
	}
	for i := 0; i < 100; i++ {
		qp.Write(4096, probe)
	}
	s.Run()
	if maxOut > 8 {
		t.Fatalf("outstanding reached %d with window 8", maxOut)
	}
}

func TestModeStrings(t *testing.T) {
	if GBN.String() != "RoCE-GBN" || SR.String() != "RoCE-SR" || AR.String() != "RoCE-AR" {
		t.Fatal("mode strings")
	}
	if OpWrite.String() != "write" || OpSend.String() != "send" || OpRead.String() != "read" {
		t.Fatal("op strings")
	}
}
