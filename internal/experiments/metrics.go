package experiments

// The instrumented runner behind `falconbench -metrics` and `-series`:
// entries that define RunTel execute with a telemetry.Suite attached, and
// the run yields (a) per-figure metric snapshots embedded in the perf
// report and (b) per-figure samplers for CSV export.
//
// Determinism contract (ISSUE 3): everything exported here derives from
// virtual time and seeded simulators only — no wall clock, no process
// state — so two same-seed runs write byte-identical -metrics JSON and
// -series CSVs. Wall-time fields live exclusively in BenchReport, which
// is why MetricsReport is a separate, stripped payload.
//
// Downstream, internal/lake indexes these artifacts (the committed
// BENCH_pr3_metrics.json and BENCH_pr3_series/) for cross-run queries
// and regression diffs; METRICS.md documents every metric name emitted
// here and the per-metric diff policy.

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"falcon/internal/sim"
	"falcon/internal/telemetry"
)

// RunInstrumented executes the entries serially with telemetry attached
// wherever an entry provides RunTel, printing tables to w exactly like a
// serial Run. It returns the perf report — whose figures carry metric
// snapshots — plus one Suite per entry (index-aligned with entries) for
// time-series export. Entries without RunTel run uninstrumented and get
// an empty snapshot.
//
// Instrumented runs are always serial: telemetry adds sampler events to
// each figure's simulators, and attributing those deterministically is
// only meaningful one figure at a time.
func RunInstrumented(entries []Entry, quick bool, w io.Writer) (BenchReport, []*telemetry.Suite) {
	rep := BenchReport{
		Schema:    "falconbench/v1",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Scheduler: sim.DefaultScheduler().String(),
		Quick:     quick,
		Parallel:  1,
		Figures:   make([]FigureReport, len(entries)),
	}
	suites := make([]*telemetry.Suite, len(entries))
	start := time.Now()
	events0 := sim.TotalDelivered()
	for i, e := range entries {
		tel := telemetry.NewSuite()
		suites[i] = tel
		run := func() *Table {
			if e.RunTel != nil {
				return e.RunTel(quick, tel)
			}
			return e.Run(quick)
		}
		rep.Figures[i] = runFigure(e.Name, run, w, true)
		// Snapshots aggregate many independent simulators per figure, so
		// there is no single virtual timestamp to stamp; use zero.
		snap := tel.Snapshot(0)
		rep.Figures[i].Metrics = &snap
	}
	wall := time.Since(start)
	rep.WallMS = float64(wall.Nanoseconds()) / 1e6
	rep.Events = sim.TotalDelivered() - events0
	if s := wall.Seconds(); s > 0 {
		rep.EventsPerSec = float64(rep.Events) / s
	}
	return rep, suites
}

// FigureMetrics is one figure's entry in the -metrics payload.
type FigureMetrics struct {
	Name    string             `json:"name"`
	Metrics telemetry.Snapshot `json:"metrics"`
}

// MetricsReport is the payload of falconbench -metrics: the deterministic
// subset of an instrumented run. Figures that exported no metrics are
// omitted.
type MetricsReport struct {
	Schema  string          `json:"schema"`
	Quick   bool            `json:"quick"`
	Figures []FigureMetrics `json:"figures"`
}

// NewMetricsReport extracts the deterministic metrics from an
// instrumented run's perf report.
func NewMetricsReport(rep BenchReport) MetricsReport {
	m := MetricsReport{Schema: "falconmetrics/v1", Quick: rep.Quick}
	for _, fr := range rep.Figures {
		if fr.Metrics == nil || len(fr.Metrics.Metrics) == 0 {
			continue
		}
		m.Figures = append(m.Figures, FigureMetrics{Name: fr.Name, Metrics: *fr.Metrics})
	}
	return m
}

// WriteJSON writes the report as indented JSON with a trailing newline.
// Metric values render via encoding/json's shortest-round-trip float
// encoding, so equal runs produce equal bytes.
func (m *MetricsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
