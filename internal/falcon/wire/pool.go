package wire

// Transport packet pooling: the per-packet envelope objects the PDL and TL
// exchange with the NIC are recycled through a free list, mirroring
// internal/netsim's FramePool one layer up the stack (DESIGN.md §11). The
// ownership contract is linear:
//
//   - The TL acquires data packets, fills them in, and hands them to
//     pdl.Conn.SendPacket. From that point the PDL owns the packet — it
//     retains it across retransmissions — and releases it exactly once,
//     when the packet is acknowledged (or when the connection fails).
//   - The PDL acquires ACK/NACK packets, hands them to Callbacks.Send, and
//     releases them as soon as Send returns: Send implementations must
//     snapshot the packet synchronously (internal/core copies it into a
//     fresh pooled packet for the fabric) and must not retain the pointer.
//   - On the receive side, internal/core acquires the in-flight fabric
//     copy at transmit time and releases it after HandlePacket returns.
//     Consumers that hold packet state past return — the TL's target-side
//     reorder buffer — copy the packet by value first ("copy on hold").
//     Data payloads are never pooled, so retaining p.Data remains safe.
//
// Packets built by hand (&Packet{...}, as tests and the examples do) never
// enter a pool: Release ignores them, preserving their semantics.

// packetPoolBlock sizes the free-list refill batch; block allocation
// amortizes pool growth to zero allocations per packet in steady state.
const packetPoolBlock = 64

// PacketPool recycles Packet objects through the transport hot path. It is
// not safe for concurrent use: one pool belongs to one simulator's world
// (internal/core keeps one per Cluster).
type PacketPool struct {
	free []*Packet
	// legacy restores the pre-pooling behaviour (fresh heap packet per
	// Acquire, Release a no-op) as a verification oracle; see
	// core.Cluster.SetLegacyHotPath.
	legacy bool
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// SetLegacy switches the pool to the heap-allocating oracle mode (true) or
// back to recycling (false). Packets already handed out are unaffected:
// Release consults only the packet's own pooled mark.
func (p *PacketPool) SetLegacy(legacy bool) { p.legacy = legacy }

// Acquire returns a zeroed packet owned by the caller until it is released
// (directly or by the layer the caller hands it to; see the ownership
// contract above).
func (p *PacketPool) Acquire() *Packet {
	if p == nil || p.legacy {
		return &Packet{}
	}
	n := len(p.free)
	if n == 0 {
		blk := make([]Packet, packetPoolBlock)
		for i := range blk {
			blk[i].pooled = true
			p.free = append(p.free, &blk[i])
		}
		n = len(p.free)
	}
	pk := p.free[n-1]
	p.free = p.free[:n-1]
	return pk
}

// Release returns a pooled packet to the free list, zeroing it (a recycled
// packet must not leak the previous packet's payload reference, bitmap
// state or flags). Packets not obtained from Acquire are ignored, so
// callers may release unconditionally.
func (p *PacketPool) Release(pk *Packet) {
	if p == nil || pk == nil || !pk.pooled {
		return
	}
	*pk = Packet{pooled: true}
	p.free = append(p.free, pk)
}

// CopyFrom copies every wire field of src into p while preserving p's own
// pool membership. Plain assignment (*p = *src) would overwrite the pooled
// mark and silently remove p from its pool on release.
func (p *Packet) CopyFrom(src *Packet) {
	pooled := p.pooled
	*p = *src
	p.pooled = pooled
}
