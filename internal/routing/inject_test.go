package routing_test

// Gray-failure injector tests: determinism, drop accounting, and the
// slow-but-up contract. External package so the scenarios run on real
// netsim fabrics (see routing_test.go).

import (
	"testing"
	"time"

	"falcon/internal/netsim"
	"falcon/internal/routing"
	"falcon/internal/sim"
)

// grayRun drives one fixed scenario: a two-rack fabric under spray with
// a flapping uplink, a slowed uplink and a correlated outage of the
// remaining two, while host 0 streams paced frames to a host in the far
// rack across the whole window. Returns the delivered-frame count, the
// end-of-run virtual time, and per-uplink (TxFrames, DownDrops).
func grayRun(seed int64) (rx uint64, end sim.Time, tx, drops [4]uint64) {
	s := sim.New(seed)
	topo := netsim.TwoRack(s, 2, 4, testLink, testLink)
	topo.SetRoutingPolicy(routing.Spray{})
	for _, h := range topo.Hosts {
		h.SetHandler(netsim.HandlerFunc(func(*netsim.Frame) {}))
	}
	src, dst := topo.Hosts[0], topo.Hosts[2]
	uplinks := topo.ToRs[0].RouteTo(dst.ID)

	inj := routing.NewInjector(s)
	inj.Flap(uplinks[0], sim.Time(20*time.Microsecond), 30*time.Microsecond, 10*time.Microsecond, 3)
	inj.Slow(uplinks[1], sim.Time(40*time.Microsecond), 10, 60*time.Microsecond, testLink.GbpsRate)
	inj.RackOutage([]routing.FailPort{uplinks[2], uplinks[3]},
		sim.Time(80*time.Microsecond), 40*time.Microsecond)

	// Paced sender: one frame every 200ns for 200us, so traffic spans
	// every failure phase. Closures are fine here — test code is exempt
	// from the zero-alloc scheduling discipline.
	const frames = 1000
	for i := 0; i < frames; i++ {
		i := i
		s.At(sim.Time(i*200)*sim.Time(time.Nanosecond), func() {
			f := src.NewFrame()
			f.Dst = dst.ID
			f.FlowHash = uint64(i)
			f.Size = 1500
			src.Send(f)
		})
	}
	s.Run()
	for i, p := range uplinks {
		tx[i] = p.Stats.TxFrames
		drops[i] = p.Stats.DownDrops
	}
	return dst.RxFrames, s.Now(), tx, drops
}

// TestInjectorSameSeedDeterminism runs the full gray scenario twice with
// the same seed and requires identical delivery counts, end times and
// per-uplink counters — the injector is part of the deterministic event
// stream, not a side channel.
func TestInjectorSameSeedDeterminism(t *testing.T) {
	rx1, end1, tx1, dr1 := grayRun(7)
	rx2, end2, tx2, dr2 := grayRun(7)
	if rx1 != rx2 || end1 != end2 || tx1 != tx2 || dr1 != dr2 {
		t.Fatalf("same-seed runs diverged:\n run1 rx=%d end=%v tx=%v drops=%v\n run2 rx=%d end=%v tx=%v drops=%v",
			rx1, end1, tx1, dr1, rx2, end2, tx2, dr2)
	}
	if rx1 == 0 {
		t.Fatal("scenario delivered nothing")
	}
	if dr1[0] == 0 || dr1[2] == 0 || dr1[3] == 0 {
		t.Fatalf("flap/outage drew no down drops (%v) — injector inert?", dr1)
	}
}

// TestDownDropsAccountEveryLostFrame pins the loss ledger on a single
// path: with a flapping forward link and no other loss mechanism, every
// frame is either delivered or counted in DownDrops — none vanish.
func TestDownDropsAccountEveryLostFrame(t *testing.T) {
	s := sim.New(3)
	topo, fwd := netsim.PointToPoint(s, testLink)
	topo.Hosts[1].SetHandler(netsim.HandlerFunc(func(*netsim.Frame) {}))
	inj := routing.NewInjector(s)
	inj.Flap(fwd, sim.Time(10*time.Microsecond), 20*time.Microsecond, 15*time.Microsecond, 4)

	const frames = 600
	src := topo.Hosts[0]
	for i := 0; i < frames; i++ {
		s.At(sim.Time(i*250)*sim.Time(time.Nanosecond), func() {
			f := src.NewFrame()
			f.Dst = 1
			f.Size = 1000
			src.Send(f)
		})
	}
	s.Run()
	rx := topo.Hosts[1].RxFrames
	dd := fwd.Stats.DownDrops
	if fwd.Stats.TxFrames+dd != frames {
		t.Fatalf("forward port saw %d tx + %d down drops, want %d frames total",
			fwd.Stats.TxFrames, dd, frames)
	}
	if rx+dd != frames {
		t.Fatalf("%d delivered + %d down drops != %d sent: frames unaccounted for", rx, dd, frames)
	}
	if dd == 0 || rx == 0 {
		t.Fatalf("degenerate scenario: rx=%d down_drops=%d (flap window misses traffic?)", rx, dd)
	}
	if fwd.Stats.RandomDrops != 0 || fwd.Stats.QueueDrops != 0 {
		t.Fatalf("down drops leaked into other counters: random=%d queue=%d",
			fwd.Stats.RandomDrops, fwd.Stats.QueueDrops)
	}
}

// TestSlowPortStaysUp pins the gray-failure semantics of Slow: a
// degraded port is slow but healthy — its queue backs up and delivery
// stretches, yet it never reports a single down drop and every frame
// still arrives.
func TestSlowPortStaysUp(t *testing.T) {
	run := func(slow bool) (rx uint64, end sim.Time, fwd *netsim.Port) {
		s := sim.New(5)
		topo, fwdPort := netsim.PointToPoint(s, testLink)
		topo.Hosts[1].SetHandler(netsim.HandlerFunc(func(*netsim.Frame) {}))
		if slow {
			inj := routing.NewInjector(s)
			inj.Slow(fwdPort, 0, 2, 0, 0) // 200 -> 2 Gb/s, never restored
		}
		src := topo.Hosts[0]
		for i := 0; i < 200; i++ {
			s.At(sim.Time(i*500)*sim.Time(time.Nanosecond), func() {
				f := src.NewFrame()
				f.Dst = 1
				f.Size = 1000
				src.Send(f)
			})
		}
		s.Run()
		return topo.Hosts[1].RxFrames, s.Now(), fwdPort
	}
	fastRx, fastEnd, _ := run(false)
	slowRx, slowEnd, fwd := run(true)
	if fwd.Stats.DownDrops != 0 {
		t.Fatalf("slow-but-up port reported %d down drops, want 0", fwd.Stats.DownDrops)
	}
	if slowRx != fastRx {
		t.Fatalf("slow link delivered %d frames, healthy link %d — Slow must degrade, not drop", slowRx, fastRx)
	}
	if slowEnd <= fastEnd {
		t.Fatalf("slow run finished at %v, healthy at %v — degrade had no effect", slowEnd, fastEnd)
	}
	if fwd.Stats.MaxQueueBytes == 0 {
		t.Fatal("slow port queue never backed up — scenario too gentle to mean anything")
	}
}

// TestOverlappingFlapsCompose pins the depth-nesting contract from the
// injector's side: two Flaps on the same port with interleaved windows
// must compose — the port is down whenever either schedule holds it, and
// only the release of the LAST hold brings it back. Before depth counting
// this scenario un-failed the port early (flap A's up edge released flap
// B's hold).
func TestOverlappingFlapsCompose(t *testing.T) {
	s := sim.New(9)
	_, fwd := netsim.PointToPoint(s, testLink)
	inj := routing.NewInjector(s)
	us := func(n int) sim.Time { return sim.Time(n) * sim.Time(time.Microsecond) }
	// A: down [10,50)us. B: down [30,70)us. Overlap is [30,50)us.
	inj.Flap(fwd, us(10), 40*time.Microsecond, time.Microsecond, 1)
	inj.Flap(fwd, us(30), 40*time.Microsecond, time.Microsecond, 1)
	probe := func(at sim.Time, want bool, label string) {
		s.At(at, func() {
			if fwd.Down() != want {
				t.Errorf("at %v (%s): Down() = %v, want %v", at, label, fwd.Down(), want)
			}
		})
	}
	probe(us(5), false, "before either flap")
	probe(us(20), true, "A only")
	probe(us(40), true, "A and B overlap")
	probe(us(55), true, "A released, B still holds")
	probe(us(75), false, "both released")
	s.Run()
	if fwd.Down() {
		t.Fatal("port left down after both flaps completed")
	}
}

// TestInjectorStopDiscardsSchedules pins the Stop contract: schedule
// calls after Stop are no-ops, a flap already in its down phase is still
// restored (no port is left failed by a retired injector), no new down
// phase begins after Stop, and a stopped outage's restore edge does not
// release holds it never took (which would double-release an independent
// failure schedule on the same port).
func TestInjectorStopDiscardsSchedules(t *testing.T) {
	s := sim.New(13)
	_, fwd := netsim.PointToPoint(s, testLink)
	inj := routing.NewInjector(s)
	us := func(n int) sim.Time { return sim.Time(n) * sim.Time(time.Microsecond) }

	// 3 cycles: down [10,30), up [30,40), down [40,60), up [60,70), ...
	inj.Flap(fwd, us(10), 20*time.Microsecond, 10*time.Microsecond, 3)
	// Outage whose down edge lands after Stop: must be discarded, and its
	// restore must not release the independent hold taken at 45us.
	inj.RackOutage([]routing.FailPort{fwd}, us(50), 10*time.Microsecond)
	s.At(us(44), func() { inj.Stop() }) // during the second down phase
	s.At(us(45), func() { fwd.SetDown(true) }) // independent hold, not the injector's
	s.At(us(55), func() {
		if !fwd.Down() {
			t.Error("at 55us: independent hold released early")
		}
	})
	s.At(us(65), func() {
		// Flap's own restore (60us) ran; only the independent hold remains.
		fwd.SetDown(false)
		if fwd.Down() {
			t.Error("at 65us: port still held after flap restore + independent release")
		}
	})
	s.At(us(80), func() {
		if fwd.Down() {
			t.Error("at 80us: a discarded schedule re-failed the port")
		}
		// Schedules issued after Stop must be inert.
		inj.Flap(fwd, us(90), 5*time.Microsecond, time.Microsecond, 2)
		inj.Slow(fwd, us(90), 1, 0, 0)
		inj.RackOutage([]routing.FailPort{fwd}, us(90), 5*time.Microsecond)
	})
	s.Run()
	if !inj.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	if fwd.Down() {
		t.Fatal("post-Stop schedule failed the port")
	}
	if fwd.Stats.DownDrops != 0 {
		t.Fatalf("no traffic crossed a down window, yet DownDrops = %d", fwd.Stats.DownDrops)
	}
}
