package experiments

import (
	"fmt"
	"time"

	"falcon/internal/core"
	"falcon/internal/falcon/pdl"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/telemetry"
	"falcon/internal/workload"
)

// rackPair builds the §6.1.3 rack-level testbed: two racks of
// hostsPerRack hosts with `spines` equal paths between them, host i in
// rack 1 talking to host i in rack 2.
func rackPair(seed int64, hostsPerRack, spines int) (*sim.Simulator, *netsim.Topology, *core.Cluster) {
	s := sim.New(seed)
	host := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
	fabric := netsim.LinkConfig{GbpsRate: 200, PropDelay: 2 * time.Microsecond}
	topo := netsim.TwoRack(s, hostsPerRack, spines, host, fabric)
	return s, topo, core.NewCluster(s)
}

// mpLoadRun drives host-pair traffic at the offered load (fraction of
// fabric capacity) and returns mean/p99 op latency and achieved goodput.
// With a non-nil suite the run exports the first pair's connection state,
// node-0's FAE delay histograms and ToR-uplink-0's port counters under
// prefix; the 60%-load cell records the multipath time series.
func mpLoadRun(seed int64, connCfg core.ConnConfig, load float64, runFor time.Duration, tel *telemetry.Suite, prefix string) (p50, p99 time.Duration, achievedGbps float64) {
	const hostsPerRack = 8
	const spines = 4
	fabricGbps := float64(spines) * 200
	s, topo, cl := rackPair(seed, hostsPerRack, spines)
	var nodes []*core.Node
	for _, h := range topo.Hosts {
		nodes = append(nodes, cl.AddNode(h, core.DefaultNodeConfig()))
	}
	const opBytes = 64 << 10
	var lat stats.Series
	var delivered uint64
	var firstEp *core.Endpoint
	perPairRate := load * fabricGbps / float64(hostsPerRack) // Gbps per pair
	opsPerSec := perPairRate * 1e9 / 8 / opBytes
	for i := 0; i < hostsPerRack; i++ {
		a := nodes[i]
		b := nodes[hostsPerRack+i]
		epA, epB := cl.Connect(a, b, connCfg)
		qa := rdma.NewQP(epA, rdma.Config{})
		rdma.NewQP(epB, rdma.Config{}).RegisterMemoryLen(1 << 40)
		if firstEp == nil {
			firstEp = epA
		}
		gen := workload.NewPoisson(s, s.Rand(), opsPerSec, 1<<30, func() {
			start := s.Now()
			qa.Write(0, 0, nil, opBytes, func(c rdma.Completion) {
				if c.Err == nil {
					lat.AddDuration(s.Now().Sub(start))
					delivered += opBytes
				}
			})
		})
		gen.Start()
	}
	if tel != nil {
		// Cross-rack traffic fans over the ToR's spine uplinks; uplink 0
		// is one of the ECMP paths multipath load-balances across.
		uplink := topo.ToRs[0].RouteTo(topo.Hosts[hostsPerRack].ID)[0]
		reg := tel.Registry()
		telemetry.CollectPDL(reg, prefix+"/conn0", firstEp.PDL())
		telemetry.CollectTL(reg, prefix+"/conn0", firstEp.TL())
		telemetry.CollectPort(reg, prefix+"/tor_uplink0", uplink)
		telemetry.CollectFAE(reg, prefix+"/node0", nodes[0].Engine())
		telemetry.ObserveFAE(reg, prefix+"/node0", nodes[0].Engine())
		if load == 0.6 {
			sp := tel.Sampler("load60", s, 20*time.Microsecond)
			telemetry.TrackPDL(sp, "conn0", firstEp.PDL())
			telemetry.TrackPort(sp, "tor_uplink0", uplink)
			sp.Start(sim.Time(runFor))
		}
	}
	s.RunUntil(sim.Time(runFor))
	return lat.DurationPercentile(50), lat.DurationPercentile(99), stats.Gbps(delivered, runFor)
}

// Fig15 reproduces "multipath op latency vs offered load": single-path
// connections hit their latency wall far earlier than multipath ones.
func Fig15(runFor time.Duration) *Table { return fig15(runFor, nil) }

// Fig15Tel is the instrumented Fig15: every multipath load point exports
// connection, FAE and spine-uplink metrics, and the 60%-load point records
// the cwnd/uplink-queue time series — the multipath trace behind the
// figure. The table is identical to Fig15's.
func Fig15Tel(runFor time.Duration, tel *telemetry.Suite) *Table { return fig15(runFor, tel) }

func fig15(runFor time.Duration, tel *telemetry.Suite) *Table {
	t := &Table{
		Title:   "Figure 15/16: rack-level 8<->8 hosts, 4 spines, 64KB writes",
		Columns: []string{"load %fabric", "multi p50", "multi p99", "multi Gbps", "single p50", "single p99", "single Gbps"},
	}
	for _, load := range []float64{0.2, 0.4, 0.6, 0.75, 0.9} {
		prefix := fmt.Sprintf("fig15/load%d", int(load*100+0.5))
		mp50, mp99, mg := mpLoadRun(15, multipathConn(), load, runFor, tel, prefix)
		sp50, sp99, sg := mpLoadRun(15, singlePathConn(), load, runFor, nil, "")
		t.Rows = append(t.Rows, []string{
			f1(load * 100), dur(mp50), dur(mp99), f1(mg), dur(sp50), dur(sp99), f1(sg),
		})
	}
	return t
}

// Fig17 reproduces "multipath scheduling policy": congestion-aware path
// selection vs round-robin spraying at high offered load.
func Fig17(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Figure 17: path policy at high load (congestion-aware vs round-robin)",
		Columns: []string{"load %fabric", "aware p50", "aware p99", "rr p50", "rr p99"},
	}
	rr := multipathConn()
	rr.PDL.Policy = pdl.PolicyRoundRobin
	for _, load := range []float64{0.5, 0.7, 0.9} {
		ap50, ap99, _ := mpLoadRun(17, multipathConn(), load, runFor, nil, "")
		rp50, rp99, _ := mpLoadRun(17, rr, load, runFor, nil, "")
		t.Rows = append(t.Rows, []string{
			f1(load * 100), dur(ap50), dur(ap99), dur(rp50), dur(rp99),
		})
	}
	return t
}

// Fig3 reproduces "multipathing benefits ML workloads": transport-level
// multipathing vs the application naively striping over N single-path
// connections. The multipath transport rebalances between paths
// congestion-aware per packet; app-level striping is stuck with its
// initial (possibly colliding) ECMP placements.
func Fig3(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Figure 3: transport multipathing vs app-level N connections, 256KB ops",
		Columns: []string{"scheme", "p50", "p99", "Gbps"},
	}
	const opBytes = 256 << 10
	run := func(appConns int, connCfg core.ConnConfig) (time.Duration, time.Duration, float64) {
		s, topo, cl := rackPair(3, 8, 4)
		var nodes []*core.Node
		for _, h := range topo.Hosts {
			nodes = append(nodes, cl.AddNode(h, core.DefaultNodeConfig()))
		}
		var lat stats.Series
		var delivered uint64
		for i := 0; i < 8; i++ {
			var qps []*rdma.QP
			for cIdx := 0; cIdx < appConns; cIdx++ {
				epA, epB := cl.Connect(nodes[i], nodes[8+i], connCfg)
				qa := rdma.NewQP(epA, rdma.Config{})
				rdma.NewQP(epB, rdma.Config{}).RegisterMemoryLen(1 << 40)
				qps = append(qps, qa)
			}
			next := 0
			issuer := workload.NewClosedLoop(s, 4, 1<<30, func(opDone func()) bool {
				qp := qps[next%len(qps)]
				next++
				start := s.Now()
				err := qp.Write(0, 0, nil, opBytes, func(c rdma.Completion) {
					if c.Err == nil {
						lat.AddDuration(s.Now().Sub(start))
						delivered += opBytes
					}
					opDone()
				})
				return err == nil
			}, nil)
			issuer.Start()
		}
		s.RunUntil(sim.Time(runFor))
		return lat.DurationPercentile(50), lat.DurationPercentile(99), stats.Gbps(delivered, runFor)
	}
	mp50, mp99, mg := run(1, multipathConn())
	ap50, ap99, ag := run(4, singlePathConn())
	sp50, sp99, sg := run(1, singlePathConn())
	t.Rows = append(t.Rows, []string{"transport multipath (4 flows)", dur(mp50), dur(mp99), f1(mg)})
	t.Rows = append(t.Rows, []string{"app-level 4 connections", dur(ap50), dur(ap99), f1(ag)})
	t.Rows = append(t.Rows, []string{"single connection", dur(sp50), dur(sp99), f1(sg)})
	return t
}

// Fig18 reproduces the ASTRA-sim study: communication time of
// data-parallel training (ring AllReduce across two racks) with and
// without multipathing, sweeping model size.
//
// Scaled down: 16 nodes (paper: 64) and models up to 64MB of exchanged
// gradient per iteration.
func Fig18() *Table {
	t := &Table{
		Title:   "Figure 18: ML training comm time per iteration (16 nodes, 2 racks)",
		Columns: []string{"grad bytes/rank", "multipath", "single-path", "speedup"},
	}
	run := func(bytes int, cfg core.ConnConfig) time.Duration {
		s := sim.New(18)
		host := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
		fabric := netsim.LinkConfig{GbpsRate: 200, PropDelay: 2 * time.Microsecond}
		topo := netsim.TwoRack(s, 8, 4, host, fabric)
		cl := core.NewCluster(s)
		var nodes []*core.Node
		for _, h := range topo.Hosts {
			nodes = append(nodes, cl.AddNode(h, core.DefaultNodeConfig()))
		}
		m := workload.NewFalconMessenger(cl, nodes, 16, 1, cfg)
		var done sim.Time
		workload.AllReduce(m, bytes, func() { done = s.Now() })
		s.Run()
		return done.Duration()
	}
	for _, bytes := range []int{1 << 20, 8 << 20, 32 << 20, 64 << 20} {
		mp := run(bytes, multipathConn())
		sp := run(bytes, singlePathConn())
		t.Rows = append(t.Rows, []string{
			f1(float64(bytes) / (1 << 20)), dur(mp), dur(sp), f2(float64(sp) / float64(mp)),
		})
	}
	return t
}
