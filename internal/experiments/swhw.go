package experiments

import (
	"time"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/swtransport"
	"falcon/internal/workload"
)

// opLat records per-op completion latency through a free list of pooled
// records, each carrying its start time and a pre-bound completion
// callback: issuing an op costs no allocation in steady state, where a
// capture closure per op (the natural way to time completions) was one of
// the largest allocation sources in the op-rate figures.
type opLat struct {
	s    *sim.Simulator
	lat  *stats.Series
	done *uint64
	free *opLatRec
}

type opLatRec struct {
	p      *opLat
	start  sim.Time
	next   *opLatRec
	onRDMA func(rdma.Completion)
	onSW   func()
}

// get stamps a pooled record with the current time; pass its onRDMA or
// onSW field as the op's completion callback.
func (p *opLat) get() *opLatRec {
	r := p.free
	if r == nil {
		r = &opLatRec{p: p}
		r.onRDMA = r.rdmaDone
		r.onSW = r.swDone
	} else {
		p.free = r.next
	}
	r.start = p.s.Now()
	return r
}

func (r *opLatRec) release() {
	r.next = r.p.free
	r.p.free = r
}

func (r *opLatRec) rdmaDone(c rdma.Completion) {
	if c.Err == nil {
		p := r.p
		*p.done++
		p.lat.AddDuration(p.s.Now().Sub(r.start))
	}
	r.release()
}

func (r *opLatRec) swDone() {
	p := r.p
	*p.done++
	p.lat.AddDuration(p.s.Now().Sub(r.start))
	r.release()
}

// Fig1 reproduces "comparing the limits of SW-based stacks": op rate
// versus p99 latency for the Falcon hardware transport and a
// Pony-Express-class software transport, sweeping offered op rate. The
// software stack's rate caps at its CPU budget and its tail is an order of
// magnitude higher; Falcon reaches ~5x the op rate with a flat tail.
func Fig1(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Figure 1: offered op rate vs p99 latency (8B ops)",
		Columns: []string{"offered Mops", "Falcon p99", "Falcon achieved", "SW p99", "SW achieved"},
	}
	const opBytes = 8
	for _, mops := range []float64{1, 5, 10, 20, 40, 80, 120} {
		// Falcon: spread across 16 unordered QPs (hardware scales with
		// QPs; Figure 20b).
		fp99, fach := func() (time.Duration, float64) {
			s := sim.New(1)
			link := netsim.LinkConfig{GbpsRate: 200, PropDelay: 500 * time.Nanosecond}
			topo, _ := netsim.PointToPoint(s, link)
			cl := core.NewCluster(s)
			a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
			b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
			var lat stats.Series
			var done uint64
			tr := &opLat{s: s, lat: &lat, done: &done}
			const qps = 16
			for q := 0; q < qps; q++ {
				cfg := multipathConn()
				cfg.TL.Ordered = false
				epA, epB := cl.Connect(a, b, cfg)
				qa := rdma.NewQP(epA, rdma.Config{})
				rdma.NewQP(epB, rdma.Config{}).RegisterMemoryLen(1 << 40)
				gen := workload.NewPoisson(s, s.Rand(), mops*1e6/qps, 1<<30, func() {
					qa.Write(0, 0, nil, opBytes, tr.get().onRDMA)
				})
				gen.Start()
			}
			s.RunUntil(sim.Time(runFor))
			return lat.DurationPercentile(99), float64(done) / runFor.Seconds() / 1e6
		}()
		sp99, sach := func() (time.Duration, float64) {
			s := sim.New(1)
			link := netsim.LinkConfig{GbpsRate: 200, PropDelay: 500 * time.Nanosecond}
			topo, _ := netsim.PointToPoint(s, link)
			a := swtransport.NewNode(s, topo.Hosts[0], swtransport.PonyExpress())
			b := swtransport.NewNode(s, topo.Hosts[1], swtransport.PonyExpress())
			var lat stats.Series
			var done uint64
			tr := &opLat{s: s, lat: &lat, done: &done}
			const conns = 16
			for c := 0; c < conns; c++ {
				conn := swtransport.Connect(a, b, uint32(c+1))
				gen := workload.NewPoisson(s, s.Rand(), mops*1e6/conns, 1<<30, func() {
					conn.Send(opBytes, tr.get().onSW)
				})
				gen.Start()
			}
			s.RunUntil(sim.Time(runFor))
			return lat.DurationPercentile(99), float64(done) / runFor.Seconds() / 1e6
		}()
		t.Rows = append(t.Rows, []string{f1(mops), dur(fp99), f1(fach), dur(sp99), f1(sach)})
	}
	return t
}
