package testkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestNetsimClosureFree walks the fabric fast-path packages —
// internal/netsim, internal/routing, internal/chaos and internal/sim
// itself (which now includes the partition runtime in shard.go) — and
// fails if any non-test file
// schedules a capture closure on the simulator: a call like
// sim.At(t, func(){...}) or sim.After(d, func(){...}) with a function
// literal argument. The fabric fast path must stay allocation-free by
// construction: per-frame work is scheduled as pooled typed events through
// sim.AtAction (and across partitions via sim.CrossAction), and a closure
// literal anywhere on that path would reintroduce one heap allocation per
// hop. Test files are exempt so unit tests can still drive the simulator
// directly.
func TestNetsimClosureFree(t *testing.T) {
	var violations []string
	for _, pkgDir := range []string{"netsim", "routing", "chaos", "sim"} {
		dir := filepath.Join(moduleRoot(t), "internal", pkgDir)
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for path, f := range pkg.Files {
				if strings.HasSuffix(path, "_test.go") {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					switch sel.Sel.Name {
					case "At", "After", "AtAction", "CrossAction":
					default:
						return true
					}
					for _, arg := range call.Args {
						if _, isLit := arg.(*ast.FuncLit); isLit {
							violations = append(violations,
								fset.Position(call.Pos()).String()+": "+sel.Sel.Name+" with closure literal")
						}
					}
					return true
				})
			}
		}
	}
	if len(violations) > 0 {
		t.Fatalf("closure scheduling inside a fast-path package (use pooled typed events via sim.AtAction):\n  %s",
			strings.Join(violations, "\n  "))
	}
}
