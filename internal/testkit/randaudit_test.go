package testkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// randConstructors are the only math/rand package-level identifiers a
// deterministic simulation may touch: constructors that wrap an explicit
// Source, and types. Everything else (rand.Intn, rand.Float64, rand.Perm,
// rand.Shuffle, rand.Seed, ...) draws from the package-global generator,
// whose state is shared across goroutines and survives between runs — a
// single call anywhere would make parallel falconbench runs diverge from
// serial ones and break same-seed reproducibility.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true, // type, in signatures
	"Source":    true, // type, in signatures
	"Zipf":      true, // type, in signatures
}

// TestNoGlobalRand walks every Go file in the module and fails if any
// selects a math/rand package-level function other than the explicit-Source
// constructors. Each simulator owns its RNG (sim.New seeds one per
// instance) and each parallel falconbench worker builds its simulators
// locally, so no code path may reach for shared randomness.
func TestNoGlobalRand(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	var violations []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		// Names the file imports math/rand under (usually just "rand").
		aliases := map[string]bool{}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != "math/rand" && p != "math/rand/v2" {
				continue
			}
			switch {
			case imp.Name != nil:
				aliases[imp.Name.Name] = true
			case p == "math/rand/v2":
				aliases["rand"] = true
			default:
				aliases["rand"] = true
			}
		}
		if len(aliases) == 0 {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !aliases[id.Name] {
				return true
			}
			if !randConstructors[sel.Sel.Name] {
				violations = append(violations,
					fset.Position(sel.Pos()).String()+": "+id.Name+"."+sel.Sel.Name)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("package-level math/rand use (breaks deterministic, parallel-safe simulation):\n  %s",
			strings.Join(violations, "\n  "))
	}
}

// moduleRoot finds the directory holding go.mod by walking up from the
// test's working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}
