package testkit

import (
	"fmt"
	"testing"
)

// TestSweepHotPathEquivalence runs every fault-sweep scenario on both
// transport hot paths — the optimized one (word-level SACK scans, dense
// RSN tables, pooled packets) and the legacy oracle (per-PSN loops,
// map-backed tables, heap packets) — and requires byte-identical trace
// hashes: the data-structure rebuild must be invisible to the protocol.
// Same (time, seq) event stream, same packet contents, same window state
// after every receive, same serve/completion order. This is the transport
// counterpart of TestSweepPoolEquivalence.
func TestSweepHotPathEquivalence(t *testing.T) {
	scs := shortMatrix()
	if !testing.Short() {
		scs = Matrix()
	}
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			sc.LegacyHotPath = false
			opt := Run(sc)
			sc.LegacyHotPath = true
			legacy := Run(sc)
			if opt.TraceHash != legacy.TraceHash || opt.Records != legacy.Records {
				t.Fatalf("hot path changes the trace on %q seed %d:\n  optimized %016x (%d records)\n  legacy    %016x (%d records)",
					sc.Name, sc.Seed, opt.TraceHash, opt.Records, legacy.TraceHash, legacy.Records)
			}
			if opt.SimTime != legacy.SimTime || opt.Completed != legacy.Completed ||
				opt.Errored != legacy.Errored || opt.Served != legacy.Served ||
				opt.Retransmits != legacy.Retransmits || opt.RTOs != legacy.RTOs {
				t.Fatalf("hot path changes the outcome on %q seed %d:\n  optimized %+v\n  legacy    %+v",
					sc.Name, sc.Seed, opt, legacy)
			}
		})
	}
}

// timerTieScenarios names the fault-sweep cells where the lazy and eager
// timer disciplines are allowed to diverge on the protocol-only hash.
//
// Lazy batching guarantees every timer *body* runs at the same virtual
// time with the same state as eager re-arming — but the scheduler breaks
// exact same-nanosecond ties by event sequence number, and the two
// disciplines necessarily allocate sequence numbers at different moments
// (eager re-schedules on every ACK, lazy re-schedules inside the expired
// wrapper). When a timer body lands at the very same instant as another
// event, the within-instant order can therefore flip, and under heavy
// faults that flip cascades into a different (equally valid) execution.
// This was verified record-by-record on push/sink: both disciplines emit
// the identical set of twelve retransmit sends at t=137746ns; lazy orders
// the pending tail-probe retransmit before the RTO burst, eager after.
// Every later divergence, including differing Retransmits/RTOs totals,
// descends from that single tie.
//
// Only the three kitchen-sink cells (5% drop + 5% reorder + 5% RNR +
// tiny RX pool) produce such a collision; the other 30 scenarios must
// still match the protocol hash byte-for-byte, so a genuine timer bug —
// a body firing at the wrong time or with stale state — cannot hide
// behind this allowlist.
var timerTieScenarios = map[string]bool{
	"push/sink":  true,
	"pull/sink":  true,
	"mixed/sink": true,
}

// TestSweepTimerEquivalence compares the lazily-batched RTO/TLP/RACK
// timer discipline (the default) against eager per-ACK re-arming. The two
// wake the scheduler at different instants — so the full trace hash
// legitimately differs — but every timer body fires at the same virtual
// time with the same state, so the protocol-only hash (sends, receives,
// frames, serves, completions, with full window state folded into every
// receive) and all outcome counters must match exactly, except on the
// same-instant tie scenarios documented at timerTieScenarios, which are
// held to workload-outcome equality instead.
func TestSweepTimerEquivalence(t *testing.T) {
	scs := shortMatrix()
	if !testing.Short() {
		scs = Matrix()
	}
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			sc.EagerTimers = false
			lazy := Run(sc)
			sc.EagerTimers = true
			eager := Run(sc)
			if lazy.Violations != 0 || eager.Violations != 0 {
				t.Fatalf("invariant violations on %q seed %d: lazy %d eager %d",
					sc.Name, sc.Seed, lazy.Violations, eager.Violations)
			}
			// Workload outcome must agree on every scenario, ties or not.
			if lazy.Issued != eager.Issued || lazy.Completed != eager.Completed ||
				lazy.Errored != eager.Errored || lazy.Served != eager.Served ||
				lazy.ConnFailed != eager.ConnFailed {
				t.Fatalf("timer batching changes the outcome on %q seed %d:\n  lazy  %+v\n  eager %+v",
					sc.Name, sc.Seed, lazy, eager)
			}
			if timerTieScenarios[sc.Name] {
				return
			}
			if lazy.ProtoHash != eager.ProtoHash || lazy.ProtoRecords != eager.ProtoRecords {
				t.Fatalf("timer batching changes the protocol on %q seed %d:\n  lazy  %016x (%d records)\n  eager %016x (%d records)",
					sc.Name, sc.Seed, lazy.ProtoHash, lazy.ProtoRecords, eager.ProtoHash, eager.ProtoRecords)
			}
			if lazy.Retransmits != eager.Retransmits || lazy.RTOs != eager.RTOs ||
				lazy.RNRRetries != eager.RNRRetries {
				t.Fatalf("timer batching changes recovery counters on %q seed %d:\n  lazy  %+v\n  eager %+v",
					sc.Name, sc.Seed, lazy, eager)
			}
		})
	}
}

// TestSweepRaceShort is the short sweep `make race` drives: a handful of
// representative scenarios across seeds under the race detector. The
// simulator world is single-goroutine, so this guards against accidental
// introduction of shared mutable state (e.g. a package-level cache on the
// hot path) rather than expected concurrency.
func TestSweepRaceShort(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, sc := range shortMatrix() {
			sc := sc
			sc.Seed += seed * 7919
			t.Run(fmt.Sprintf("%s/seed%d", sc.Name, sc.Seed), func(t *testing.T) {
				res := Run(sc)
				if res.Violations != 0 {
					t.Fatalf("invariant violations: %d", res.Violations)
				}
			})
		}
	}
}
