package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", s.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: got[%d] = %d", i, v)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New(1)
	var at Time
	s.After(2*time.Microsecond, func() {
		s.After(3*time.Microsecond, func() { at = s.Now() })
	})
	s.Run()
	if want := Time(5000); at != want {
		t.Fatalf("fired at %v, want %v", at, want)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Microsecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true on a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.After(0, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	count := 0
	s.At(100, func() { count++ })
	s.At(200, func() { count++ })
	s.RunUntil(150)
	if count != 1 {
		t.Fatalf("events delivered = %d, want 1", count)
	}
	if s.Now() != 150 {
		t.Fatalf("Now() = %v, want 150", s.Now())
	}
	s.Run()
	if count != 2 {
		t.Fatalf("events delivered = %d, want 2", count)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New(1)
	fired := false
	s.At(100, func() { fired = true })
	s.RunUntil(100)
	if !fired {
		t.Fatal("event at the RunUntil boundary should fire")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := New(1)
	s.At(10, func() {
		s.After(-time.Second, func() {
			if s.Now() != 10 {
				t.Errorf("negative After fired at %v, want 10", s.Now())
			}
		})
	})
	s.Run()
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var trace []int64
		var tick func()
		tick = func() {
			trace = append(trace, int64(s.Now()))
			if len(trace) < 50 {
				s.After(time.Duration(s.Rand().Intn(1000)+1), tick)
			}
		}
		s.After(0, tick)
		s.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace[%d] = %d vs %d: runs are not deterministic", i, a[i], b[i])
		}
	}
}

func TestPendingCount(t *testing.T) {
	s := New(1)
	t1 := s.At(10, func() {})
	s.At(20, func() {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	t1.Stop()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after Stop = %d, want 1", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	base := Time(1_000_000)
	if got := base.Add(time.Microsecond); got != 1_001_000 {
		t.Fatalf("Add = %v", got)
	}
	if got := base.Sub(Time(400_000)); got != 600*time.Microsecond {
		t.Fatalf("Sub = %v", got)
	}
	if got := Time(2_500_000_000).Seconds(); got != 2.5 {
		t.Fatalf("Seconds = %v", got)
	}
}

// Property: for any sequence of (delay, cancel) decisions, events fire in
// nondecreasing time order and cancelled events never fire.
func TestQuickOrderingInvariant(t *testing.T) {
	f := func(delays []uint16, cancelMask []bool) bool {
		s := New(7)
		var fireTimes []Time
		var timers []Timer
		for _, d := range delays {
			timers = append(timers, s.After(time.Duration(d), func() {
				fireTimes = append(fireTimes, s.Now())
			}))
		}
		cancelled := 0
		for i, tm := range timers {
			if i < len(cancelMask) && cancelMask[i] {
				if tm.Stop() {
					cancelled++
				}
			}
		}
		s.Run()
		if len(fireTimes) != len(delays)-cancelled {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000), func() {})
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}
