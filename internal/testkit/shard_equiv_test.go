package testkit

import (
	"fmt"
	"testing"
	"time"

	"falcon/internal/netsim"
	"falcon/internal/sim"
)

// TestSweepShardEquivalence runs fault-sweep scenarios split into 2 and 4
// simulation partitions (merged mode) and requires byte-identical trace
// hashes against the single event loop: the deterministic group merge must
// reproduce the exact (time, seq) delivery stream — scheduler events,
// packets, frames, completions — across the full protocol stack. This is
// the end-to-end gate `make shardcheck` runs over the whole matrix.
func TestSweepShardEquivalence(t *testing.T) {
	scs := shortMatrix()
	if !testing.Short() {
		scs = Matrix()
	}
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			sc.Shards = 0
			single := Run(sc)
			for _, n := range []int{2, 4} {
				sc.Shards = n
				sharded := Run(sc)
				if single.TraceHash != sharded.TraceHash || single.Records != sharded.Records {
					t.Fatalf("shards=%d diverges from single loop on %q:\n  single  %016x (%d records)\n  sharded %016x (%d records)",
						n, sc.Name, single.TraceHash, single.Records, sharded.TraceHash, sharded.Records)
				}
				if single.SimTime != sharded.SimTime || single.Completed != sharded.Completed {
					t.Fatalf("shards=%d diverges on %q: simtime %v vs %v, completed %d vs %d",
						n, sc.Name, single.SimTime, sharded.SimTime, single.Completed, sharded.Completed)
				}
			}
		})
	}
}

// TestSweepShardSchedulerCross checks the two equivalence axes compose: a
// merged sharded run on the heap scheduler must match the single-loop
// wheel run — partitioning and the pending-set implementation are
// independent, both invisible to the event stream.
func TestSweepShardSchedulerCross(t *testing.T) {
	for _, sc := range shortMatrix()[:3] {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			sc.Scheduler = sim.SchedulerWheel
			sc.Shards = 0
			base := Run(sc)
			sc.Scheduler = sim.SchedulerHeap
			sc.Shards = 3
			cross := Run(sc)
			if base.TraceHash != cross.TraceHash {
				t.Fatalf("wheel/single %016x != heap/shards=3 %016x on %q",
					base.TraceHash, cross.TraceHash, sc.Name)
			}
		})
	}
}

// TestSweepShardParallelDeterminism runs scenarios in the experimental
// windowed-parallel mode twice per seed and requires identical combined
// hashes, counts and end times: a parallel run must be a pure function of
// (seed, shard count, topology) even though partitions execute
// concurrently. `make shardcheck` runs this under -race with several
// seeds, which is what proves the window/barrier protocol has no unsynced
// shared state.
func TestSweepShardParallelDeterminism(t *testing.T) {
	scs := shortMatrix()
	if testing.Short() {
		scs = scs[:4]
	}
	for _, sc := range scs {
		sc := sc
		sc.Shards = 4
		sc.ShardParallel = true
		t.Run(sc.Name, func(t *testing.T) {
			a := Run(sc)
			b := Run(sc)
			if a.TraceHash != b.TraceHash || a.Records != b.Records {
				t.Fatalf("parallel same-seed runs diverge on %q: %016x/%d vs %016x/%d",
					sc.Name, a.TraceHash, a.Records, b.TraceHash, b.Records)
			}
			if a.SimTime != b.SimTime || a.Completed != b.Completed || a.Issued != b.Issued {
				t.Fatalf("parallel same-seed runs diverge on %q: simtime %v vs %v, completed %d vs %d",
					sc.Name, a.SimTime, b.SimTime, a.Completed, b.Completed)
			}
			if a.Completed != a.Issued || a.Issued == 0 {
				t.Fatalf("parallel run did not drain on %q: issued=%d completed=%d", sc.Name, a.Issued, a.Completed)
			}
		})
	}
}

// TestShardPartitionCountEdges covers partition counts that don't divide
// the device count: a two-host point-to-point sweep split into 3 and 5
// partitions (some partitions own no devices and stay idle) must still be
// byte-identical to the single loop in merged mode and drain completely in
// parallel mode.
func TestShardPartitionCountEdges(t *testing.T) {
	sc := Scenario{Name: "edge", Seed: 77, Workload: WorkloadMixed, DropPct: 2}
	sc.Shards = 0
	base := Run(sc)
	for _, n := range []int{3, 5} {
		sc.Shards = n
		sc.ShardParallel = false
		got := Run(sc)
		if got.TraceHash != base.TraceHash {
			t.Fatalf("merged shards=%d (idle partitions) diverges: %016x vs %016x", n, got.TraceHash, base.TraceHash)
		}
		sc.ShardParallel = true
		par := Run(sc)
		if par.Completed != par.Issued || par.Issued == 0 {
			t.Fatalf("parallel shards=%d did not drain: issued=%d completed=%d", n, par.Issued, par.Completed)
		}
	}
}

// TestShardSameInstantCrossFrames pins the deterministic-merge tiebreak
// for simultaneous cross-partition arrivals: two hosts on different
// partitions each send to a host on a third partition at the same instant
// over identical links, so both frames arrive at exactly the same virtual
// time. The merged run must order them identically to the single loop
// (global sequence numbers), run after run.
func TestShardSameInstantCrossFrames(t *testing.T) {
	link := netsim.LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond}
	build := func(s *sim.Simulator) (*netsim.Network, []*netsim.Host) {
		n := netsim.New(s)
		sw := n.AddSwitch() // partition 0
		// Hosts round-robin onto partitions 0,1,2 (mod shard count).
		hosts := make([]*netsim.Host, 3)
		for i := range hosts {
			hosts[i] = n.AddHost()
			n.AttachHost(hosts[i], sw, link)
		}
		return n, hosts
	}
	run := func(root *sim.Simulator) []string {
		_, hosts := build(root)
		var order []string
		for i, h := range hosts {
			i := i
			h.SetHandler(netsim.HandlerFunc(func(f *netsim.Frame) {
				order = append(order, fmt.Sprintf("h%d<-h%d@%v", i, f.Src, f.SentAt))
			}))
		}
		// h1 and h2 (different partitions on a 3-way split) send to h0 at
		// the same instant with equal sizes: identical serialization and
		// propagation, so both deliveries land at the same virtual time.
		for _, src := range []*netsim.Host{hosts[1], hosts[2]} {
			src := src
			src.Sim().At(100, func() {
				f := src.NewFrame()
				f.Dst = hosts[0].ID
				f.Size = 256
				src.Send(f)
			})
		}
		root.Run()
		return order
	}
	base := run(sim.NewWithScheduler(9, sim.SchedulerWheel))
	if len(base) != 2 {
		t.Fatalf("expected 2 deliveries, got %v", base)
	}
	for _, n := range []int{2, 3} {
		got := run(sim.NewSharded(9, sim.SchedulerWheel, n, false))
		if len(got) != len(base) || got[0] != base[0] || got[1] != base[1] {
			t.Fatalf("shards=%d same-instant ordering diverged: %v vs single loop %v", n, got, base)
		}
	}
}
