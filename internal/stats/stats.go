// Package stats provides the measurement primitives the benchmark harness
// uses: latency series with percentiles, goodput accounting, time-bucketed
// rate series, and Jain's fairness index.
//
// Percentiles use the nearest-rank definition on the sorted sample set, so
// a given input always yields the same output — no interpolation and no
// randomized selection. Combined with the simulator's deterministic event
// order, this is what makes falconbench tables reproducible bit-for-bit:
// identical seeds produce identical samples, and identical samples produce
// identical table cells regardless of scheduler (wheel vs heap) or
// -parallel pool width. Aggregators hold plain slices and are not
// goroutine-safe; each experiment owns its own instances.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"

	"falcon/internal/sim"
)

// Series accumulates float64 samples.
type Series struct {
	vals   []float64
	sorted bool
}

// Add appends a sample.
func (s *Series) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// AddDuration appends a duration sample in nanoseconds.
func (s *Series) AddDuration(d time.Duration) { s.Add(float64(d)) }

// Count returns the number of samples.
func (s *Series) Count() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Min and Max return the extremes (0 for an empty series).
func (s *Series) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample.
func (s *Series) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank (see NearestRank in hist.go, shared with Histogram).
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sortFloats(s.vals)
		s.sorted = true
	}
	return s.vals[NearestRank(len(s.vals), p)]
}

// sortFloats sorts ascending with NaNs deterministically first. The
// comparator is explicit rather than sort.Float64s because the latter's
// NaN ordering was unspecified before Go 1.22; a NaN slipping into a
// series (e.g. a 0/0 rate) must not make percentile output depend on the
// toolchain or the incoming sample order.
func sortFloats(vals []float64) {
	sort.Slice(vals, func(i, j int) bool {
		a, b := vals[i], vals[j]
		if math.IsNaN(a) {
			return !math.IsNaN(b)
		}
		return a < b
	})
}

// DurationPercentile is Percentile for duration series.
func (s *Series) DurationPercentile(p float64) time.Duration {
	return time.Duration(s.Percentile(p))
}

// MeanDuration is Mean for duration series.
func (s *Series) MeanDuration() time.Duration { return time.Duration(s.Mean()) }

// Jain computes Jain's fairness index over allocations: 1.0 is perfectly
// fair, 1/n is maximally unfair.
func Jain(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum, sumSq := 0.0, 0.0
	for _, v := range vals {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(vals)) * sumSq)
}

// Gbps converts a byte count over a duration to gigabits per second.
func Gbps(bytes uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / float64(d.Nanoseconds())
}

// RateSeries buckets byte counts over time, producing a goodput-vs-time
// curve (Figure 14a style).
type RateSeries struct {
	bucket  time.Duration
	buckets []uint64
}

// NewRateSeries creates a series with the given bucket width.
func NewRateSeries(bucket time.Duration) *RateSeries {
	if bucket <= 0 {
		bucket = time.Millisecond
	}
	return &RateSeries{bucket: bucket}
}

// Record adds bytes delivered at time t.
func (r *RateSeries) Record(t sim.Time, bytes int) {
	idx := int(t / sim.Time(r.bucket))
	for len(r.buckets) <= idx {
		r.buckets = append(r.buckets, 0)
	}
	r.buckets[idx] += uint64(bytes)
}

// GbpsAt returns the rate in bucket i.
func (r *RateSeries) GbpsAt(i int) float64 {
	if i < 0 || i >= len(r.buckets) {
		return 0
	}
	return Gbps(r.buckets[i], r.bucket)
}

// Len returns the number of buckets recorded.
func (r *RateSeries) Len() int { return len(r.buckets) }

// String renders the curve compactly.
func (r *RateSeries) String() string {
	out := ""
	for i := range r.buckets {
		out += fmt.Sprintf("%.1f ", r.GbpsAt(i))
	}
	return out
}
