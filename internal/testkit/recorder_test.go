package testkit

import (
	"fmt"
	"strings"
	"testing"
)

// The flight recorder must be invisible to the determinism contract: it
// schedules no events and draws no randomness, so a run with it attached
// (the default) hashes identically to one without it.
func TestRecorderHashInvariance(t *testing.T) {
	scenarios := []Scenario{
		{Name: "rec-clean", Seed: 42, Workload: WorkloadMixed, Ops: 100},
		{Name: "rec-faulty", Seed: 43, Workload: WorkloadPush, Ops: 100, DropPct: 5, RNRPct: 5},
	}
	for _, sc := range scenarios {
		t.Run(sc.Name, func(t *testing.T) {
			withRec := Run(sc)
			sc.DisableRecorder = true
			without := Run(sc)
			if withRec.TraceHash != without.TraceHash || withRec.Records != without.Records {
				t.Fatalf("flight recorder changed the trace: with=fnv1a:%016x/%d without=fnv1a:%016x/%d",
					withRec.TraceHash, withRec.Records, without.TraceHash, without.Records)
			}
		})
	}
}

// An invariant violation must print the recent event history, not only
// the failing assertion (ISSUE 3 satellite: flight recorder in sweep.go).
func TestViolationDumpsFlightRecorder(t *testing.T) {
	var msgs []string
	sc := Scenario{
		Name:              "rec-dump",
		Seed:              42,
		Workload:          WorkloadPush,
		Ops:               50,
		StrictOutstanding: 2, // below the real window: must trip
		FailFunc: func(format string, args ...any) {
			msgs = append(msgs, fmt.Sprintf(format, args...))
		},
	}
	Run(sc)
	if len(msgs) == 0 {
		t.Fatal("seeded violation not detected")
	}
	if !strings.Contains(msgs[0], "flight recorder") {
		t.Fatalf("violation message lacks the flight-recorder dump:\n%s", msgs[0])
	}
	// The dump must contain actual records (sends at minimum).
	if !strings.Contains(msgs[0], "psn=") {
		t.Fatalf("flight-recorder dump carries no records:\n%s", msgs[0])
	}
}

// Without a FailFunc the wrapped failure path must still panic — a
// violated invariant can never be silently ignored — and the panic text
// must carry the recorder dump.
func TestViolationPanicCarriesDump(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("violation did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "invariant violation") || !strings.Contains(msg, "flight recorder") {
			t.Fatalf("panic lacks violation context or recorder dump: %s", msg)
		}
	}()
	Run(Scenario{
		Name:              "rec-panic",
		Seed:              42,
		Workload:          WorkloadPush,
		Ops:               50,
		StrictOutstanding: 2,
	})
}
