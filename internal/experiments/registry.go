package experiments

import (
	"time"

	"falcon/internal/telemetry"
)

// Entry is one runnable experiment: a paper table or figure plus the
// ablations. cmd/falconbench selects entries by name regex; the runner in
// runner.go executes them serially or across a worker pool.
//
// RunTel, when non-nil, is the instrumented variant: it must produce the
// exact same table as Run (telemetry is passive — collectors read state
// lazily and samplers only observe), while additionally registering
// metrics and time series on the suite. RunInstrumented prefers it;
// entries without one still run, they just export an empty snapshot.
type Entry struct {
	Name   string
	Desc   string
	Run    func(quick bool) *Table
	RunTel func(quick bool, tel *telemetry.Suite) *Table
}

// windows returns the measurement duration for normal vs quick runs.
func windows(full, quick time.Duration) func(bool) time.Duration {
	return func(q bool) time.Duration {
		if q {
			return quick
		}
		return full
	}
}

// registry lists every experiment in presentation order. Each entry builds
// its simulators from scratch on every call (fresh *sim.Simulator and RNG
// per run), which is what makes the set embarrassingly parallel: entries
// share no mutable state, so the worker pool may run any subset
// concurrently without changing a single table cell.
var registry = []Entry{
	{Name: "fig1", Desc: "HW vs SW op rate and tail latency", Run: func(q bool) *Table {
		return Fig1(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{Name: "fig3", Desc: "transport multipath vs app-level connections", Run: func(q bool) *Table {
		return Fig3(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{Name: "fig10", Desc: "goodput under losses per op type", Run: func(q bool) *Table {
		return Fig10(windows(8*time.Millisecond, 3*time.Millisecond)(q))
	}, RunTel: func(q bool, tel *telemetry.Suite) *Table {
		return Fig10Tel(windows(8*time.Millisecond, 3*time.Millisecond)(q), tel)
	}},
	{Name: "fig11a", Desc: "goodput under reordering", Run: func(q bool) *Table {
		return Fig11a(windows(8*time.Millisecond, 3*time.Millisecond)(q))
	}},
	{Name: "fig11b", Desc: "RACK-TLP vs OOO-distance", Run: func(q bool) *Table {
		return Fig11b(windows(10*time.Millisecond, 4*time.Millisecond)(q))
	}},
	{Name: "fig12", Desc: "RoCE modes under losses", Run: func(q bool) *Table {
		return Fig12(windows(8*time.Millisecond, 3*time.Millisecond)(q))
	}},
	{Name: "fig13", Desc: "incast congestion control", Run: func(q bool) *Table {
		return Fig13(windows(8*time.Millisecond, 4*time.Millisecond)(q))
	}, RunTel: func(q bool, tel *telemetry.Suite) *Table {
		return Fig13Tel(windows(8*time.Millisecond, 4*time.Millisecond)(q), tel)
	}},
	{Name: "fig14", Desc: "end-host congestion (PCIe downgrade)", Run: func(q bool) *Table {
		return Fig14(windows(3*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{Name: "fig15", Desc: "multipath latency/goodput vs load (fig16 series included)", Run: func(q bool) *Table {
		return Fig15(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}, RunTel: func(q bool, tel *telemetry.Suite) *Table {
		return Fig15Tel(windows(4*time.Millisecond, 2*time.Millisecond)(q), tel)
	}},
	{Name: "fig17", Desc: "path scheduling policy", Run: func(q bool) *Table {
		return Fig17(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{Name: "figRouting", Desc: "fabric routing policy head-to-head (ECMP/spray/adaptive)", Run: func(q bool) *Table {
		return FigRouting(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}, RunTel: func(q bool, tel *telemetry.Suite) *Table {
		return FigRoutingTel(windows(4*time.Millisecond, 2*time.Millisecond)(q), tel)
	}},
	{Name: "figGrayFailure", Desc: "routing policies under flapping links and correlated outages", Run: func(q bool) *Table {
		return FigGrayFailure(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}, RunTel: func(q bool, tel *telemetry.Suite) *Table {
		return FigGrayFailureTel(windows(4*time.Millisecond, 2*time.Millisecond)(q), tel)
	}},
	{Name: "figStorm", Desc: "Falcon vs RoCE under identical seeded fault storms", Run: func(q bool) *Table {
		return FigStorm(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}, RunTel: func(q bool, tel *telemetry.Suite) *Table {
		return FigStormTel(windows(4*time.Millisecond, 2*time.Millisecond)(q), tel)
	}},
	{Name: "figEndpointFault", Desc: "endpoint fault classes: pause/crash/blackhole/corrupt/RNR", Run: func(q bool) *Table {
		return FigEndpointFault(windows(8*time.Millisecond, 4*time.Millisecond)(q))
	}, RunTel: func(q bool, tel *telemetry.Suite) *Table {
		return FigEndpointFaultTel(windows(8*time.Millisecond, 4*time.Millisecond)(q), tel)
	}},
	{Name: "fig18", Desc: "ML training comm time (multipath)", Run: func(q bool) *Table {
		return Fig18()
	}},
	{Name: "fig19", Desc: "message size scaling", Run: func(q bool) *Table {
		return Fig19()
	}},
	{Name: "fig20a", Desc: "read-incast bandwidth scaling vs SW", Run: func(q bool) *Table {
		return Fig20a(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{Name: "fig20b", Desc: "op-rate scaling vs QP count", Run: func(q bool) *Table {
		return Fig20b(windows(3*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{Name: "fig21", Desc: "connection-count RTT cliff", Run: func(q bool) *Table {
		return Fig21()
	}},
	{Name: "figScale", Desc: "fabric scaling: events/sec vs host count on a k=16-class Clos (single loop vs -shards)", Run: func(q bool) *Table {
		return FigScale(windows(400*time.Microsecond, 150*time.Microsecond)(q), q)
	}, RunTel: func(q bool, tel *telemetry.Suite) *Table {
		return FigScaleTel(windows(400*time.Microsecond, 150*time.Microsecond)(q), q, tel)
	}},
	{Name: "fig22a", Desc: "FAE event rate vs connections", Run: func(q bool) *Table {
		return Fig22a()
	}},
	{Name: "fig22b", Desc: "impact of slow FAE", Run: func(q bool) *Table {
		return Fig22b(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{Name: "fig23", Desc: "FAE state-size sensitivity", Run: func(q bool) *Table {
		return Fig23()
	}},
	{Name: "fig24", Desc: "isolation via backpressure", Run: func(q bool) *Table {
		return Fig24(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{Name: "fig25", Desc: "MPI AllReduce vs TCP", Run: func(q bool) *Table {
		return Fig25()
	}},
	{Name: "fig26", Desc: "MPI AllToAll vs TCP", Run: func(q bool) *Table {
		return Fig26()
	}},
	{Name: "fig27", Desc: "GROMACS-like scaling", Run: func(q bool) *Table {
		return Fig27()
	}},
	{Name: "fig28", Desc: "WRF-like scaling", Run: func(q bool) *Table {
		return Fig28()
	}},
	{Name: "fig29", Desc: "VM live migration vs Pony Express", Run: func(q bool) *Table {
		return Fig29()
	}},
	{Name: "fig30", Desc: "MPI AllGather vs TCP", Run: func(q bool) *Table {
		return Fig30()
	}},
	{Name: "fig31", Desc: "MPI MultiPingPong vs TCP", Run: func(q bool) *Table {
		return Fig31()
	}},
	{Name: "table4", Desc: "Near Local Flash vs local SSD", Run: func(q bool) *Table {
		return Table4(windows(20*time.Millisecond, 8*time.Millisecond)(q))
	}},
	{Name: "ecn", Desc: "ablation: ECN as a supplementary CC signal", Run: func(q bool) *Table {
		return AblationECN(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
	{Name: "psp", Desc: "ablation: PSP inline-encryption overhead", Run: func(q bool) *Table {
		return AblationPSP(windows(4*time.Millisecond, 2*time.Millisecond)(q))
	}},
}

// Registry returns every experiment in presentation order.
func Registry() []Entry { return registry }
