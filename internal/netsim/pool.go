package netsim

// Fabric fast-path pooling: the per-frame, per-hop objects — Frames and
// the typed port events that move them — are recycled through free lists
// owned by the Network, so the steady-state packet path performs no heap
// allocation. This file pairs with the pooled scheduler events in
// internal/sim (which recycle the (time, seq) entries themselves); together
// they make a fabric hop allocation-free end to end. DESIGN.md §10
// describes the ownership rules and the verification oracle.

// framePoolBlock and eventPoolBlock size the free-list refill batches;
// block allocation amortizes pool growth to zero allocations per frame in
// steady state (mirroring internal/sim's event allocator).
const (
	framePoolBlock = 128
	eventPoolBlock = 128
)

// FramePool recycles Frame objects crossing the fabric. The ownership
// contract is linear:
//
//   - A sender acquires a frame (Host.NewFrame or FramePool.Acquire),
//     fills it in, and hands it to Host.Send. From that point the fabric
//     owns it.
//   - The fabric releases it exactly once: at the port that drops it
//     (down link, random drop, queue overflow), or after the destination
//     host's tap and handler have returned.
//   - Frame handlers and taps must not retain the *Frame past return.
//     Anything needed longer — e.g. frames a consumer holds back for
//     delayed processing — must be copied out first ("copy on hold").
//     Payloads are not pooled, so retaining the Payload pointer itself
//     remains safe; it is only the Frame envelope that is recycled.
//
// Frames built by hand (&Frame{...}, as tests and examples do) never enter
// the pool: Release leaves them to the garbage collector, so existing
// callers keep their semantics, including reading a delivered frame after
// the run ends.
type FramePool struct {
	free []*Frame
	// legacy restores the pre-pooling behaviour (fresh heap frame per
	// Acquire, Release a no-op) as a verification oracle; see
	// Network.SetLegacyAlloc.
	legacy bool
}

// Acquire returns a zeroed frame owned by the caller until it is handed to
// Host.Send (or returned with Release).
func (p *FramePool) Acquire() *Frame {
	if p.legacy {
		return &Frame{}
	}
	n := len(p.free)
	if n == 0 {
		blk := make([]Frame, framePoolBlock)
		for i := range blk {
			blk[i].pooled = true
			p.free = append(p.free, &blk[i])
		}
		n = len(p.free)
	}
	f := p.free[n-1]
	p.free = p.free[:n-1]
	return f
}

// Release returns a pooled frame to the free list, zeroing it (a recycled
// frame must not leak the previous packet's CE mark, hop count or payload
// reference). Frames not obtained from Acquire are ignored.
func (p *FramePool) Release(f *Frame) {
	if f == nil || !f.pooled {
		return
	}
	*f = Frame{pooled: true}
	p.free = append(p.free, f)
}

// fabricPool groups the free lists of one simulation partition: the frame
// pool and the port-event free list. A single-loop network owns exactly
// one; a sharded network owns one per partition so that, in the
// experimental parallel mode, every free list is touched only by the
// goroutine executing that partition's events. The migration rule keeps
// that invariant without locks: objects are acquired from the pool of the
// partition doing the acquiring and released into the pool of the
// partition executing the release, so a frame crossing a partition
// boundary simply changes pools (free lists are fungible; capacity drifts
// toward receivers, which is exactly where the next Acquire happens for
// request/response traffic).
type fabricPool struct {
	frames FramePool
	evFree []*portEvent
	legacy bool
}

// portEvent is the pooled, typed continuation the fast path schedules
// instead of capture closures. One frame commitment arms two events:
//
//   - evDrain fires at the frame's departure instant and folds the
//     serializer's queuedBytes decrement into the port's self-clocked
//     drain: each committed frame carries its own drain tick, so the
//     decrement needs neither a closure nor a dedicated dispatcher.
//   - evDeliver fires after propagation and hands the frame to the next
//     device (switch or host).
//
// Each event is scheduled at the same instant, in the same order, as the
// closure pair it replaced, so the simulator's (time, seq) stream — and
// with it every trace hash — is unchanged.
//
// pool is the fabricPool the event returns to when it fires — the pool of
// the partition that executes it (the port's own partition for drains, the
// destination device's for deliveries). nil for legacy heap events.
type portEvent struct {
	pool  *fabricPool
	port  *Port  // evDrain: the port whose queue drains
	dst   device // evDeliver: the receiving device
	frame *Frame // evDeliver: the frame in flight
	size  int    // evDrain: bytes leaving the queue
	kind  uint8
}

const (
	evDrain uint8 = iota
	evDeliver
)

// RunAction implements sim.Action. The event is returned to its pool
// before the delivery handler runs, so a handler that immediately sends
// (switch forwarding, request/response turnaround) reuses the hot object.
func (e *portEvent) RunAction() {
	switch e.kind {
	case evDrain:
		e.port.queuedBytes -= e.size
		e.release()
	default: // evDeliver
		dst, f := e.dst, e.frame
		e.release()
		dst.receive(f)
	}
}

// getEvent draws a port event from this partition's free list, refilling
// in blocks.
func (fp *fabricPool) getEvent() *portEvent {
	if fp.legacy {
		return &portEvent{}
	}
	k := len(fp.evFree)
	if k == 0 {
		blk := make([]portEvent, eventPoolBlock)
		for i := range blk {
			blk[i].pool = fp
			fp.evFree = append(fp.evFree, &blk[i])
		}
		k = len(fp.evFree)
	}
	e := fp.evFree[k-1]
	fp.evFree = fp.evFree[:k-1]
	return e
}

// release recycles a fired port event into its destination pool, clearing
// its references so pooled frames and ports are not pinned. Legacy events
// (nil pool) are left to the garbage collector.
func (e *portEvent) release() {
	fp := e.pool
	if fp == nil {
		return
	}
	e.port = nil
	e.dst = nil
	e.frame = nil
	fp.evFree = append(fp.evFree, e)
}
