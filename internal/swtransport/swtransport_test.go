package swtransport

import (
	"testing"
	"time"

	"falcon/internal/netsim"
	"falcon/internal/sim"
)

var testLink = netsim.LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond}

func pairNodes(t *testing.T, p Profile) (*sim.Simulator, *Conn, *Node, *Node) {
	t.Helper()
	s := sim.New(23)
	topo, _ := netsim.PointToPoint(s, testLink)
	a := NewNode(s, topo.Hosts[0], p)
	b := NewNode(s, topo.Hosts[1], p)
	return s, Connect(a, b, 1), a, b
}

func TestSendDelivers(t *testing.T) {
	s, c, _, _ := pairNodes(t, PonyExpress())
	var at sim.Time
	c.Send(8192, func() { at = s.Now() })
	s.Run()
	if at == 0 {
		t.Fatal("message never delivered")
	}
	// Must include two stack latencies plus wire time.
	if at < sim.Time(2*3*time.Microsecond) {
		t.Fatalf("delivered at %v, faster than the stack allows", at)
	}
}

func TestCallRoundTrip(t *testing.T) {
	s, c, _, _ := pairNodes(t, PonyExpress())
	var at sim.Time
	c.Call(64, 64, func() { at = s.Now() })
	s.Run()
	if at == 0 {
		t.Fatal("call never completed")
	}
	oneWay := sim.Time(0)
	_ = oneWay
	// Round trip: >= 4 stack latencies.
	if at < sim.Time(4*3*time.Microsecond) {
		t.Fatalf("round trip %v too fast", at)
	}
}

func TestOpRateBoundedByCPU(t *testing.T) {
	p := PonyExpress()
	s, c, a, _ := pairNodes(t, p)
	const n = 10000
	done := 0
	for i := 0; i < n; i++ {
		c.Send(8, func() { done++ })
	}
	s.Run()
	if done != n {
		t.Fatalf("delivered %d", done)
	}
	// Sender-side CPU: n ops over Cores cores at PerOpCost each.
	minDuration := time.Duration(n/p.Cores) * p.PerOpCost
	if got := s.Now().Duration(); got < minDuration {
		t.Fatalf("finished in %v; CPU bound is %v", got, minDuration)
	}
	if a.Ops != n {
		t.Fatalf("sender ops = %d", a.Ops)
	}
}

func TestJitterCreatesTail(t *testing.T) {
	p := PonyExpress()
	s, c, _, _ := pairNodes(t, p)
	var latencies []time.Duration
	issued := 0
	var issue func()
	issue = func() {
		if issued >= 2000 {
			return
		}
		issued++
		start := s.Now()
		c.Call(64, 64, func() {
			latencies = append(latencies, s.Now().Sub(start))
			issue()
		})
	}
	issue()
	s.Run()
	if len(latencies) != 2000 {
		t.Fatalf("completed %d", len(latencies))
	}
	var max, min time.Duration
	min = time.Hour
	for _, l := range latencies {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	if max < min*3 {
		t.Fatalf("tail %v not much above floor %v; jitter missing", max, min)
	}
}

func TestThroughputCap(t *testing.T) {
	p := PonyExpress()
	p.MaxGbps = 10
	s, c, _, _ := pairNodes(t, p)
	var doneAt sim.Time
	c.Send(10_000_000, func() { doneAt = s.Now() }) // 80 Mbit at 10G = 8ms
	s.Run()
	if doneAt < sim.Time(7*time.Millisecond) {
		t.Fatalf("10MB at 10Gbps done in %v; cap not enforced", doneAt)
	}
}

func TestTCPProfileSlowerThanPony(t *testing.T) {
	latency := func(p Profile) sim.Time {
		s, c, _, _ := pairNodes(t, p)
		var at sim.Time
		c.Call(64, 64, func() { at = s.Now() })
		s.Run()
		return at
	}
	if latency(TCP()) <= latency(PonyExpress()) {
		t.Fatal("TCP round trip should be slower than Pony Express")
	}
}

func TestCPUBacklogSignal(t *testing.T) {
	s, c, a, _ := pairNodes(t, PonyExpress())
	for i := 0; i < 1000; i++ {
		c.Send(8, nil)
	}
	if a.CPUBacklog() == 0 {
		t.Fatal("burst should create CPU backlog")
	}
	s.Run()
	if a.CPUBacklog() != 0 {
		t.Fatal("backlog should drain")
	}
}
