package netsim

import (
	"fmt"
	"testing"
	"time"

	"falcon/internal/sim"
)

// closSizes lists every Clos parameterization the experiment and workload
// drivers build: the §6.1.3 rack pair (experiments/multipath.go), the
// messenger jobs for 1–16 nodes in one rack and 32 nodes across two
// (workload/messenger.go), and the small fabrics the workload tests use.
var closSizes = []struct{ racks, hostsPerRack, spines int }{
	{2, 8, 4},  // multipath rack pair (TwoRack(8, 4))
	{1, 1, 4},  // single-node job
	{1, 2, 4},  // 2-node job
	{1, 4, 4},  // 4-node job
	{1, 8, 4},  // 8-node job
	{1, 16, 4}, // 16-node job
	{2, 16, 4}, // 32-node job, two racks
	{2, 2, 2},  // minimal multi-rack, minimal ECMP
}

// TestClosProperties asserts, for every Clos size the experiments build:
// every host pair is reachable, hop counts match the 3-stage expectation
// (1 switch intra-rack, 3 inter-rack), and ECMP spreads distinct flow
// labels across more than one ToR uplink.
func TestClosProperties(t *testing.T) {
	link := LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
	for _, sz := range closSizes {
		sz := sz
		t.Run(fmt.Sprintf("racks%d_hosts%d_spines%d", sz.racks, sz.hostsPerRack, sz.spines), func(t *testing.T) {
			s := sim.New(1)
			topo := Clos(s, sz.racks, sz.hostsPerRack, sz.spines, link, link)
			nHosts := sz.racks * sz.hostsPerRack
			if len(topo.Hosts) != nHosts {
				t.Fatalf("built %d hosts, want %d", len(topo.Hosts), nHosts)
			}

			// Record (src -> hops) for every delivery at every host.
			type arrival struct {
				src  NodeID
				hops int
			}
			got := make(map[NodeID][]arrival)
			for _, h := range topo.Hosts {
				h := h
				h.SetHandler(HandlerFunc(func(f *Frame) {
					got[h.ID] = append(got[h.ID], arrival{f.Src, f.Hops})
				}))
			}

			// Reachability + hop counts: one frame per ordered pair.
			for _, src := range topo.Hosts {
				for _, dst := range topo.Hosts {
					if src == dst {
						continue
					}
					f := src.NewFrame()
					f.Dst = dst.ID
					f.FlowHash = uint64(src.ID)<<16 | uint64(dst.ID)
					f.Size = 100
					src.Send(f)
				}
			}
			s.Run()
			rack := func(id NodeID) int { return int(id) / sz.hostsPerRack }
			for _, dst := range topo.Hosts {
				arrivals := got[dst.ID]
				if len(arrivals) != nHosts-1 {
					t.Fatalf("host %d received %d frames, want %d (unreachable pair)",
						dst.ID, len(arrivals), nHosts-1)
				}
				seen := make(map[NodeID]bool)
				for _, a := range arrivals {
					seen[a.src] = true
					want := 1 // host -> ToR -> host
					if rack(a.src) != rack(dst.ID) {
						want = 3 // host -> ToR -> spine -> ToR -> host
					}
					if a.hops != want {
						t.Fatalf("frame %d->%d took %d switch hops, want %d",
							a.src, dst.ID, a.hops, want)
					}
				}
				if len(seen) != nHosts-1 {
					t.Fatalf("host %d heard from %d distinct sources, want %d",
						dst.ID, len(seen), nHosts-1)
				}
			}

			// ECMP spread: with >1 rack and >1 spine, distinct flow labels
			// from one inter-rack pair must use more than one ToR uplink.
			if sz.racks > 1 && sz.spines > 1 {
				src, dst := topo.Hosts[0], topo.Hosts[sz.hostsPerRack]
				uplinks := topo.ToRs[0].RouteTo(dst.ID)
				if len(uplinks) != sz.spines {
					t.Fatalf("ToR 0 has %d uplinks toward host %d, want %d",
						len(uplinks), dst.ID, sz.spines)
				}
				before := make([]uint64, len(uplinks))
				for i, p := range uplinks {
					before[i] = p.Stats.TxFrames
				}
				for label := 0; label < 64; label++ {
					f := src.NewFrame()
					f.Dst = dst.ID
					f.FlowHash = uint64(label) * 0x9e3779b97f4a7c15
					f.Size = 100
					src.Send(f)
				}
				s.Run()
				used := 0
				for i, p := range uplinks {
					if p.Stats.TxFrames > before[i] {
						used++
					}
				}
				if used <= 1 {
					t.Fatalf("64 distinct flow labels used only %d of %d uplinks", used, len(uplinks))
				}
			}
		})
	}
}
