// udptunnel demonstrates that the Falcon wire format is a real,
// serializable protocol: it runs a miniature Push exchange over actual UDP
// sockets on localhost — requester and responder marshal and unmarshal
// wire.Packet bytes, maintain an RX bitmap, and compute the
// four-timestamp fabric delay of §4.2, exactly as the simulated stack
// does.
//
//	go run ./examples/udptunnel
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"falcon/internal/falcon/wire"
	"falcon/internal/psp"
)

// The tunnel runs PSP inline encryption end to end: packets are sealed
// with a per-connection AES-GCM key derived from the responder's device
// master key, exactly as the inline-crypto block of §5.1 would.
var masterKey = []byte("udptunnel-device-master-key-demo")

const connID = 7

func main() {
	responderAddr := startResponder()
	conn, err := net.Dial("udp", responderAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	txSA, err := psp.NewSA(masterKey, connID)
	if err != nil {
		log.Fatal(err)
	}
	rxSA, err := psp.NewSA(masterKey, connID)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("falcon-over-UDP with PSP: %dB falcon header + %dB crypto overhead\n\n",
		wire.HeaderLen(), psp.Overhead)
	buf := make([]byte, 64<<10)
	for psn := uint32(0); psn < 5; psn++ {
		t1 := time.Now().UnixNano()
		pkt := &wire.Packet{
			Type:      wire.TypePushData,
			ConnID:    connID,
			FlowLabel: wire.MakeFlowLabel(0x42, int(psn)%wire.MaxFlows),
			PSN:       psn,
			RSN:       uint64(psn),
			Flags:     wire.FlagAckReq,
			T1:        t1,
			Length:    uint32(len("hello over the real wire")),
			Data:      []byte("hello over the real wire"),
		}
		// Seal: first 16 bytes cleartext-but-authenticated (flow label
		// for switch hashing), the timestamp in the IV.
		sealed, err := txSA.Seal(pkt.Marshal(nil), 16, uint64(t1))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := conn.Write(sealed); err != nil {
			log.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			log.Fatal(err)
		}
		plain, _, err := rxSA.Open(buf[:n])
		if err != nil {
			log.Fatal(err)
		}
		var ack wire.Packet
		if _, err := ack.Unmarshal(plain); err != nil {
			log.Fatal(err)
		}
		t4 := time.Now().UnixNano()
		// (t4-t1)-(t3-t2): wire delay without synchronized clocks.
		fabric := time.Duration((t4 - ack.T1Echo) - (ack.T3 - ack.T2))
		fmt.Printf("PSN %d acked (encrypted round trip): base=%d bitmap=%v fabric-delay=%v\n",
			psn, ack.Req.Base, ack.Req.Bitmap, fabric)
	}
}

// startResponder runs a minimal Falcon receiver on a UDP socket: it opens
// each PSP-sealed packet, tracks the RX window bitmap, and answers every
// AR-flagged packet with a sealed ACK carrying the timestamp echoes.
func startResponder() string {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	rxSA, err := psp.NewSA(masterKey, connID)
	if err != nil {
		log.Fatal(err)
	}
	txSA, err := psp.NewSA(masterKey, connID)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		defer pc.Close()
		var base uint32
		var bitmap wire.Bitmap
		buf := make([]byte, 64<<10)
		for {
			n, addr, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			t2 := time.Now().UnixNano()
			plain, _, err := rxSA.Open(buf[:n])
			if err != nil {
				continue // unauthenticated datagram
			}
			var pkt wire.Packet
			if _, err := pkt.Unmarshal(plain); err != nil {
				continue
			}
			if diff := int(pkt.PSN - base); diff >= 0 && diff < wire.BitmapBits {
				bitmap.Set(diff)
				if run := bitmap.LeadingRun(); run > 0 {
					bitmap.ShiftRight(run)
					base += uint32(run)
				}
			}
			if pkt.Flags&wire.FlagAckReq == 0 {
				continue
			}
			ack := &wire.Packet{
				Type:         wire.TypeAck,
				ConnID:       pkt.ConnID,
				AckFlowIndex: uint8(pkt.FlowLabel.FlowIndex()),
				T1Echo:       pkt.T1,
				T2:           t2,
				T3:           time.Now().UnixNano(),
				Req:          wire.AckInfo{Base: base, Bitmap: bitmap},
			}
			sealed, err := txSA.Seal(ack.Marshal(nil), 16, uint64(ack.T3))
			if err != nil {
				continue
			}
			if _, err := pc.WriteTo(sealed, addr); err != nil {
				return
			}
		}
	}()
	return pc.LocalAddr().String()
}
