// Package rdma is the RDMA ULP mapping layer of Figure 2: it exposes an IB
// Verbs-flavoured API (RC queue pairs with WRITE, SEND/RECV, READ and
// ATOMIC operations) and maps each operation onto Falcon transactions per
// Table 2 — WRITE and SEND become Push transactions, READ and ATOMICs
// become Pulls. Operations larger than one MTU are segmented into multiple
// MTU-sized transactions (§4.4 "MTU Granularity"); ordered Falcon
// connections provide the IB Verbs ordering the completions rely on.
package rdma

import (
	"encoding/binary"
	"errors"
	"time"

	"falcon/internal/core"
	"falcon/internal/falcon/tl"
	"falcon/internal/falcon/wire"
)

// ULP op codes carried in wire.Packet.UlpOp.
const (
	opWrite uint8 = iota + 1
	opSend
	opRead
	opCompSwap
	opFetchAdd
)

// ErrAccess reports a memory access outside the registered region; the
// target completes the transaction in error (CIE, §4.4 "Enhanced Error
// Notifications") and the initiator's completion carries this error.
var ErrAccess = errors.New("rdma: remote memory access out of bounds")

// Completion is one work completion.
type Completion struct {
	// WRID is the caller-supplied work request ID.
	WRID uint64
	// Err is nil on success. Remote memory errors surface as tl.ErrCIE.
	Err error
	// Data holds READ results and prior values of ATOMICs (when the
	// target registered backing bytes).
	Data []byte
}

// Config parameterizes a QP.
type Config struct {
	// MTU bounds a single transaction (defaults to 4096).
	MTU int
	// RNRRetryDelay is advertised to senders when a SEND finds no
	// posted receive.
	RNRRetryDelay time.Duration
	// WeaklyOrdered selects the iWARP model (§4.4): run over an
	// *unordered* Falcon connection (out-of-order data placement) while
	// the QP releases completions in work-request order. The underlying
	// tl.Config should have Ordered=false; the QP provides the
	// completion ordering itself.
	WeaklyOrdered bool
}

// QP is a Reliable Connected queue pair bound to one Falcon endpoint.
type QP struct {
	ep  *core.Endpoint
	cfg Config

	// Registered memory region: remote WRITE/READ/ATOMIC target. mem may
	// be nil for size-only simulations; bounds are checked against
	// memLen either way.
	mem    []byte
	memLen uint64

	// Posted receives for SEND messages.
	recvQ []*recvBuffer
	// cur is the receive consumed by the in-progress multi-segment SEND.
	cur *recvBuffer

	completions []Completion
	onComplete  func(Completion)

	// Weakly-ordered completion sequencing: ops are released to the
	// application in post order even when they finish out of order.
	nextSeq    uint64
	releaseSeq uint64
	held       map[uint64]heldCompletion

	// pushFree recycles per-op Push state (WRITE/SEND): each op needs a
	// segment-completion callback and a retry continuation, and allocating
	// those closures per op is the largest steady-state allocation in the
	// op-rate figures. The callbacks are bound once per pooled object.
	pushFree []*pushOp

	// Stats
	RNRs uint64
}

// pushOpPoolCap bounds the per-QP free list; beyond it ops are dropped to
// the GC (a QP rarely has more than a send queue's worth outstanding).
const pushOpPoolCap = 64

// pushOp is the in-flight state of one WRITE or SEND work request: the
// identity of the op, its segmentation cursor, and the two callbacks
// (segment completion, backpressure retry) pre-bound to this object so the
// issue loop allocates nothing.
type pushOp struct {
	qp   *QP
	op   uint8
	wrid uint64
	seq  uint64
	addr uint64
	data []byte
	size int

	nseg      int
	remaining int
	firstErr  error
	done      func(Completion)

	// Backpressure-retry cursor: the next segment index/offset to issue.
	nextIdx, nextOff int

	segDoneFn func([]byte, error)
	retryFn   func()
}

func (qp *QP) getPushOp() *pushOp {
	if n := len(qp.pushFree); n > 0 {
		o := qp.pushFree[n-1]
		qp.pushFree = qp.pushFree[:n-1]
		return o
	}
	o := &pushOp{qp: qp}
	o.segDoneFn = o.segDone
	o.retryFn = o.retry
	return o
}

// release returns the op to the pool. Callers must copy out any state they
// still need first: a completion callback may post a new op and reuse this
// object immediately.
func (o *pushOp) release() {
	o.data = nil
	o.done = nil
	o.firstErr = nil
	qp := o.qp
	if len(qp.pushFree) < pushOpPoolCap {
		qp.pushFree = append(qp.pushFree, o)
	}
}

func (o *pushOp) segDone(_ []byte, err error) {
	if err != nil && o.firstErr == nil {
		o.firstErr = err
	}
	o.remaining--
	if o.remaining == 0 {
		qp, seq, done := o.qp, o.seq, o.done
		c := Completion{WRID: o.wrid, Err: o.firstErr}
		o.release()
		qp.deliver(seq, c, done)
	}
}

func (o *pushOp) retry() { o.issueFrom(o.nextIdx, o.nextOff) }

// issueFrom issues segments [i, nseg) starting at byte offset off. It reads
// the op's immutable fields into locals up front: the final segment's
// completion can release (and a nested post can reuse) the object while the
// loop epilogue still runs.
func (o *pushOp) issueFrom(i, off int) {
	qp, op, data, size, addr, nseg := o.qp, o.op, o.data, o.size, o.addr, o.nseg
	mtu := qp.cfg.MTU
	segDone := o.segDoneFn
	for ; i < nseg; i++ {
		seg := size - off
		if seg > mtu {
			seg = mtu
		}
		if seg < 0 {
			seg = 0
		}
		var chunk []byte
		if data != nil {
			chunk = data[off : off+seg]
		}
		var a uint64
		if op == opSend {
			a = sendMeta(size, off)
		} else {
			a = addr + uint64(off)
		}
		if _, err := qp.ep.TL().PushOp(op, a, chunk, uint32(seg), segDone); err != nil {
			if qp.ep.TL().Dead() != nil {
				failSegments(nseg-i, err, segDone)
				return
			}
			o.nextIdx, o.nextOff = i, off
			qp.ep.Sim().After(retryDelay, o.retryFn)
			return
		}
		off += seg
	}
}

// postPush starts a pooled WRITE/SEND work request.
func (qp *QP) postPush(op uint8, wrid, addr uint64, data []byte, size int, done func(Completion)) {
	o := qp.getPushOp()
	o.op, o.wrid, o.addr, o.data, o.size, o.done = op, wrid, addr, data, size, done
	o.seq = qp.allocSeq()
	o.nseg = (size + qp.cfg.MTU - 1) / qp.cfg.MTU
	if o.nseg < 1 {
		o.nseg = 1
	}
	o.remaining = o.nseg
	o.issueFrom(0, 0)
}

type heldCompletion struct {
	c    Completion
	done func(Completion)
}

type recvBuffer struct {
	buf  []byte
	size int
	got  int
	done func(n int, err error)
}

// NewQP wraps a Falcon endpoint as an RC queue pair and installs the RDMA
// target handler on it.
func NewQP(ep *core.Endpoint, cfg Config) *QP {
	if cfg.MTU <= 0 {
		cfg.MTU = 4096
	}
	if cfg.RNRRetryDelay <= 0 {
		cfg.RNRRetryDelay = 50 * time.Microsecond
	}
	qp := &QP{ep: ep, cfg: cfg}
	if cfg.WeaklyOrdered {
		qp.held = make(map[uint64]heldCompletion)
	}
	ep.SetTarget((*target)(qp))
	return qp
}

// Endpoint returns the underlying Falcon endpoint (stats access).
func (qp *QP) Endpoint() *core.Endpoint { return qp.ep }

// Target returns the QP's TL target handler — the same value NewQP
// installed on the endpoint. Fault-injection harnesses use it to
// interpose a wrapper (e.g. a receiver-not-ready stall that answers RNR
// while stalled and delegates here otherwise) via Endpoint.SetTarget.
func (qp *QP) Target() tl.TargetHandler { return (*target)(qp) }

// RegisterMemory registers buf as the QP's remotely accessible region.
func (qp *QP) RegisterMemory(buf []byte) {
	qp.mem = buf
	qp.memLen = uint64(len(buf))
}

// RegisterMemoryLen registers an n-byte region without backing bytes
// (size-only simulation: bounds checked, no data movement).
func (qp *QP) RegisterMemoryLen(n uint64) {
	qp.mem = nil
	qp.memLen = n
}

// OnCompletion installs a completion callback; when unset, completions
// accumulate for PollCQ.
func (qp *QP) OnCompletion(fn func(Completion)) { qp.onComplete = fn }

// PollCQ drains accumulated completions.
func (qp *QP) PollCQ() []Completion {
	out := qp.completions
	qp.completions = nil
	return out
}

// allocSeq assigns the op's position in the completion order.
func (qp *QP) allocSeq() uint64 {
	s := qp.nextSeq
	qp.nextSeq++
	return s
}

// deliver routes a completion to the application. In weakly-ordered mode
// completions are buffered and released in post order.
func (qp *QP) deliver(seq uint64, c Completion, done func(Completion)) {
	if !qp.cfg.WeaklyOrdered {
		qp.emit(c, done)
		return
	}
	qp.held[seq] = heldCompletion{c: c, done: done}
	for {
		h, ok := qp.held[qp.releaseSeq]
		if !ok {
			return
		}
		delete(qp.held, qp.releaseSeq)
		qp.releaseSeq++
		qp.emit(h.c, h.done)
	}
}

func (qp *QP) emit(c Completion, done func(Completion)) {
	switch {
	case done != nil:
		done(c)
	case qp.onComplete != nil:
		qp.onComplete(c)
	default:
		qp.completions = append(qp.completions, c)
	}
}

// segments splits n bytes into MTU-sized chunks (at least one).
func (qp *QP) segments(n int) []int {
	if n <= 0 {
		return []int{0}
	}
	var out []int
	for n > 0 {
		c := n
		if c > qp.cfg.MTU {
			c = qp.cfg.MTU
		}
		out = append(out, c)
		n -= c
	}
	return out
}

// retryDelay paces re-issuance of segments refused by TL backpressure.
const retryDelay = 20 * time.Microsecond

// failSegments completes n never-issued segments of an op in error. The
// issue loops call it when the connection died mid-op (crash teardown,
// RTO-budget exhaustion): retrying would spin forever — the conn can
// never accept the segment — so the op must surface the failure instead.
func failSegments(n int, err error, segDone func([]byte, error)) {
	for j := 0; j < n; j++ {
		segDone(nil, err)
	}
}

// Write posts an RDMA WRITE of data (or size bytes when data is nil) to
// remote address addr: one Push per MTU segment, one completion for the
// op. Segments refused by transaction-layer backpressure are re-issued as
// resources free (the work request stays queued, like a real send queue),
// so Write never fails mid-op.
func (qp *QP) Write(wrid uint64, addr uint64, data []byte, size int, done func(Completion)) error {
	if data != nil {
		size = len(data)
	}
	qp.postPush(opWrite, wrid, addr, data, size, done)
	return nil
}

// Send posts an RDMA SEND of data/size bytes; the peer must have posted a
// receive for the message. Multi-segment sends encode (total, offset) so
// the target consumes exactly one receive per message.
func (qp *QP) Send(wrid uint64, data []byte, size int, done func(Completion)) error {
	if data != nil {
		size = len(data)
	}
	qp.postPush(opSend, wrid, 0, data, size, done)
	return nil
}

// sendMeta packs a SEND's total message size and segment offset into the
// opaque Addr field (the ULP header a real stack would carry in-payload).
func sendMeta(total, off int) uint64 { return uint64(total)<<32 | uint64(uint32(off)) }

func splitSendMeta(meta uint64) (total, off int) {
	return int(meta >> 32), int(uint32(meta))
}

// PostRecv posts a receive for one incoming SEND message of up to size
// bytes. done fires when the full message has landed.
func (qp *QP) PostRecv(buf []byte, size int, done func(n int, err error)) {
	if buf != nil {
		size = len(buf)
	}
	qp.recvQ = append(qp.recvQ, &recvBuffer{buf: buf, size: size, done: done})
}

// Read posts an RDMA READ of size bytes from remote addr: one Pull per MTU
// segment; the completion carries the concatenated data when the peer has
// backing memory.
func (qp *QP) Read(wrid uint64, addr uint64, size int, done func(Completion)) error {
	segs := qp.segments(size)
	seq := qp.allocSeq()
	chunks := make([][]byte, len(segs))
	remaining := len(segs)
	var firstErr error
	haveData := true
	segDone := func(i int) func([]byte, error) {
		return func(data []byte, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if data == nil {
				haveData = false
			}
			chunks[i] = data
			remaining--
			if remaining == 0 {
				var full []byte
				if haveData && firstErr == nil {
					for _, c := range chunks {
						full = append(full, c...)
					}
				}
				qp.deliver(seq, Completion{WRID: wrid, Err: firstErr, Data: full}, done)
			}
		}
	}
	var issue func(i, off int)
	issue = func(i, off int) {
		for ; i < len(segs); i++ {
			seg := segs[i]
			if _, err := qp.ep.TL().PullOp(opRead, addr+uint64(off), uint32(seg), segDone(i)); err != nil {
				if qp.ep.TL().Dead() != nil {
					for j := i; j < len(segs); j++ {
						segDone(j)(nil, err)
					}
					return
				}
				ri, ro := i, off
				qp.ep.Sim().After(retryDelay, func() { issue(ri, ro) })
				return
			}
			off += seg
		}
	}
	issue(0, 0)
	return nil
}

// CompareSwap posts an 8-byte atomic compare-and-swap on remote addr. The
// completion's Data holds the prior value when the peer has backing bytes.
func (qp *QP) CompareSwap(wrid uint64, addr, compare, swap uint64, done func(Completion)) error {
	operands := make([]byte, 16)
	binary.BigEndian.PutUint64(operands, compare)
	binary.BigEndian.PutUint64(operands[8:], swap)
	return qp.atomic(wrid, opCompSwap, addr, operands, done)
}

// FetchAdd posts an 8-byte atomic fetch-and-add on remote addr.
func (qp *QP) FetchAdd(wrid uint64, addr, add uint64, done func(Completion)) error {
	operands := make([]byte, 8)
	binary.BigEndian.PutUint64(operands, add)
	return qp.atomic(wrid, opFetchAdd, addr, operands, done)
}

func (qp *QP) atomic(wrid uint64, op uint8, addr uint64, operands []byte, done func(Completion)) error {
	// ATOMICs map to Pulls (Table 2); operands ride the request payload.
	seq := qp.allocSeq()
	_, err := qp.ep.TL().PullOpData(op, addr, operands, 8, func(data []byte, err error) {
		qp.deliver(seq, Completion{WRID: wrid, Err: err, Data: data}, done)
	})
	return err
}

// target is the TL-facing receive side of the QP.
type target QP

var _ tl.TargetHandler = (*target)(nil)

// HandlePush executes arriving WRITE and SEND transactions.
func (t *target) HandlePush(rsn uint64, p *wire.Packet) tl.TargetVerdict {
	qp := (*QP)(t)
	switch p.UlpOp {
	case opSend:
		return qp.handleSend(p)
	case opWrite, 0:
		if p.Addr+uint64(p.Length) > qp.memLen {
			return tl.TargetVerdict{Kind: tl.TargetError}
		}
		if qp.mem != nil && p.Data != nil {
			copy(qp.mem[p.Addr:], p.Data)
		}
		return tl.TargetVerdict{}
	default:
		return tl.TargetVerdict{Kind: tl.TargetError}
	}
}

func (qp *QP) handleSend(p *wire.Packet) tl.TargetVerdict {
	total, off := splitSendMeta(p.Addr)
	if off == 0 {
		// New message: consume one posted receive.
		if len(qp.recvQ) == 0 {
			qp.RNRs++
			return tl.TargetVerdict{Kind: tl.TargetRNR, RetryDelay: qp.cfg.RNRRetryDelay}
		}
		qp.cur = qp.recvQ[0]
		qp.recvQ = qp.recvQ[1:]
		qp.cur.got = 0
	}
	rb := qp.cur
	if rb == nil {
		// Mid-message segment with no active receive (duplicate RNR
		// retry tail): drop benignly.
		return tl.TargetVerdict{}
	}
	if off+int(p.Length) > rb.size {
		return tl.TargetVerdict{Kind: tl.TargetError}
	}
	if rb.buf != nil && p.Data != nil {
		copy(rb.buf[off:], p.Data)
	}
	rb.got += int(p.Length)
	if rb.got >= total {
		qp.cur = nil
		if rb.done != nil {
			rb.done(rb.got, nil)
		}
	}
	return tl.TargetVerdict{}
}

// HandlePull serves READ and ATOMIC transactions.
func (t *target) HandlePull(rsn uint64, p *wire.Packet) ([]byte, uint32, tl.TargetVerdict) {
	qp := (*QP)(t)
	switch p.UlpOp {
	case opRead, 0:
		if p.Addr+uint64(p.PullLength) > qp.memLen {
			return nil, 0, tl.TargetVerdict{Kind: tl.TargetError}
		}
		var data []byte
		if qp.mem != nil {
			data = append([]byte(nil), qp.mem[p.Addr:p.Addr+uint64(p.PullLength)]...)
		}
		return data, p.PullLength, tl.TargetVerdict{}
	case opCompSwap, opFetchAdd:
		return qp.handleAtomic(p)
	default:
		return nil, 0, tl.TargetVerdict{Kind: tl.TargetError}
	}
}

func (qp *QP) handleAtomic(p *wire.Packet) ([]byte, uint32, tl.TargetVerdict) {
	if p.Addr+8 > qp.memLen {
		return nil, 0, tl.TargetVerdict{Kind: tl.TargetError}
	}
	if qp.mem == nil || p.Data == nil {
		// Size-only simulation: 8-byte response, no value semantics.
		return nil, 8, tl.TargetVerdict{}
	}
	old := binary.BigEndian.Uint64(qp.mem[p.Addr:])
	switch p.UlpOp {
	case opCompSwap:
		compare := binary.BigEndian.Uint64(p.Data)
		swap := binary.BigEndian.Uint64(p.Data[8:])
		if old == compare {
			binary.BigEndian.PutUint64(qp.mem[p.Addr:], swap)
		}
	case opFetchAdd:
		add := binary.BigEndian.Uint64(p.Data)
		binary.BigEndian.PutUint64(qp.mem[p.Addr:], old+add)
	}
	resp := make([]byte, 8)
	binary.BigEndian.PutUint64(resp, old)
	return resp, 8, tl.TargetVerdict{}
}
