// Package experiments implements the paper's evaluation (§6, Appendix B):
// one function per table or figure, each returning typed rows that the
// cmd/falconbench binary prints and the repository-root benchmarks wrap.
// Parameters are scaled down from the paper's testbed where noted (the
// simulator runs on one core, the testbed had 32 machines); DESIGN.md and
// EXPERIMENTS.md record each scaling decision.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"falcon/internal/core"
	"falcon/internal/falcon/pdl"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/roce"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	for _, r := range t.Rows {
		sb.Reset()
		for i, c := range r {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", w, c)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	fmt.Fprintln(w)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func dur(d time.Duration) string {
	return d.Round(10 * time.Nanosecond).String()
}

// --- Shared setups -------------------------------------------------------

// falconP2P builds a two-host Falcon testbed, returning the initiator QP,
// the forward port (switch→server, where forward-direction impairments are
// injected) and the reverse port (switch→client).
type falconP2P struct {
	sim      *sim.Simulator
	qa, qb   *rdma.QP
	epA, epB *core.Endpoint
	forward  *netsim.Port
	reverse  *netsim.Port
	topo     *netsim.Topology
}

func newFalconP2P(seed int64, gbps float64, connCfg core.ConnConfig) *falconP2P {
	s := sim.New(seed)
	link := netsim.LinkConfig{GbpsRate: gbps, PropDelay: time.Microsecond}
	topo, fwd := netsim.PointToPoint(s, link)
	rev := topo.ToRs[0].RouteTo(topo.Hosts[0].ID)[0]
	cl := core.NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	epA, epB := cl.Connect(a, b, connCfg)
	qa := rdma.NewQP(epA, rdma.Config{})
	qb := rdma.NewQP(epB, rdma.Config{})
	qa.RegisterMemoryLen(1 << 40)
	qb.RegisterMemoryLen(1 << 40)
	return &falconP2P{sim: s, qa: qa, qb: qb, epA: epA, epB: epB, forward: fwd, reverse: rev, topo: topo}
}

// opKind selects the IB Verbs op for goodput experiments.
type opKind int

const (
	opWrite opKind = iota
	opSend
	opRead
)

func (k opKind) String() string {
	switch k {
	case opWrite:
		return "Write"
	case opSend:
		return "Send"
	}
	return "Read"
}

// falconGoodput drives closed-loop ops for runFor and returns delivered
// goodput in Gbps.
func (p *falconP2P) goodput(kind opKind, opBytes, window int, runFor time.Duration) float64 {
	var delivered uint64
	if kind == opSend {
		// Pre-post a window's worth of receives.
		for i := 0; i < 2*window; i++ {
			p.qb.PostRecv(nil, opBytes, nil)
		}
	}
	issuer := workload.NewClosedLoop(p.sim, window, 1<<30, func(opDone func()) bool {
		if kind == opSend {
			// Replenish one receive per issued send so the queue
			// never drains (the app-level recv loop).
			p.qb.PostRecv(nil, opBytes, nil)
		}
		cb := func(c rdma.Completion) {
			if c.Err == nil {
				delivered += uint64(opBytes)
			}
			opDone()
		}
		var err error
		switch kind {
		case opWrite:
			err = p.qa.Write(0, 0, nil, opBytes, cb)
		case opSend:
			err = p.qa.Send(0, nil, opBytes, cb)
		case opRead:
			err = p.qa.Read(0, 0, opBytes, cb)
		}
		return err == nil
	}, nil)
	issuer.Start()
	p.sim.RunUntil(sim.Time(runFor))
	return stats.Gbps(delivered, runFor)
}

// roceP2P builds the equivalent RoCE testbed.
type roceP2P struct {
	sim     *sim.Simulator
	qp      *roce.QP
	resp    *roce.Responder
	forward *netsim.Port
	reverse *netsim.Port
}

func newRoceP2P(seed int64, gbps float64, cfg roce.Config) *roceP2P {
	s := sim.New(seed)
	link := netsim.LinkConfig{GbpsRate: gbps, PropDelay: time.Microsecond}
	topo, fwd := netsim.PointToPoint(s, link)
	rev := topo.ToRs[0].RouteTo(topo.Hosts[0].ID)[0]
	a := roce.NewNode(s, topo.Hosts[0], nil)
	b := roce.NewNode(s, topo.Hosts[1], nil)
	cfg.LinkGbps = gbps
	qp, resp := roce.Connect(a, b, 1, cfg)
	return &roceP2P{sim: s, qp: qp, resp: resp, forward: fwd, reverse: rev}
}

func (p *roceP2P) goodput(kind opKind, opBytes, window int, runFor time.Duration) float64 {
	var delivered uint64
	issuer := workload.NewClosedLoop(p.sim, window, 1<<30, func(opDone func()) bool {
		cb := func() {
			delivered += uint64(opBytes)
			opDone()
		}
		switch kind {
		case opWrite:
			p.qp.Write(opBytes, cb)
		case opSend:
			p.qp.Send(opBytes, cb)
		case opRead:
			p.qp.Read(opBytes, cb)
		}
		return true
	}, nil)
	issuer.Start()
	p.sim.RunUntil(sim.Time(runFor))
	return stats.Gbps(delivered, runFor)
}

// defaultPDLConfigSinglePath returns a single-path Falcon connection
// config (the multipath-off baseline).
func singlePathConn() core.ConnConfig {
	cfg := core.DefaultConnConfig()
	cfg.PDL.NumFlows = 1
	return cfg
}

// multipathConn returns the default 4-flow connection config.
func multipathConn() core.ConnConfig { return core.DefaultConnConfig() }

var _ = pdl.DefaultConfig // keep import shape stable across files
