// Package nic models the Falcon hardware pipeline constraints of §5: the
// packet-processing pipeline that bounds op rate (per-connection and
// aggregate), the connection-state cache whose misses dominate latency at
// high connection counts (Figure 21), and the host interface (PCIe) whose
// bandwidth bounds delivery to host memory and backs up the RX packet
// buffer (Figure 14).
//
// The model is deliberately simple: each packet pass through the NIC incurs
// a start time constrained by per-connection and global pipeline
// availability plus a connection-cache lookup cost. The same model serves
// the RoCE baseline with different constants (host-memory connection state
// instead of on-NIC DRAM).
package nic

import (
	"container/list"
	"time"

	"falcon/internal/sim"
)

// Config parameterizes the NIC model.
type Config struct {
	// PerConnPacketInterval is the pipeline's per-connection
	// serialization: one connection cannot process packets faster than
	// one per interval (25ns ≈ 20M 2-packet ops/s on one QP).
	PerConnPacketInterval time.Duration
	// GlobalPacketInterval is the aggregate pipeline limit across all
	// connections (~4.2ns ≈ 120M 2-packet ops/s).
	GlobalPacketInterval time.Duration

	// Connection-state cache hierarchy (§5.2 "Connection State Caching").
	CacheSize   int           // on-chip first-level entries
	L2CacheSize int           // shared second-level entries
	HitCost     time.Duration // first-level hit
	L2HitCost   time.Duration // second-level hit
	MissCost    time.Duration // backing store (on-NIC DRAM or host memory)

	// HostGbps is the host interface (PCIe) bandwidth for payload
	// delivery to memory.
	HostGbps float64
	// RxBufferBytes is the on-chip RX packet buffer (O(BDP), §5.2);
	// payload awaiting host delivery occupies it. Overflow spills to
	// on-NIC DRAM (allowed, with extra latency) rather than dropping.
	RxBufferBytes int
	// DRAMSpillLatency is added to host delivery for bytes that spilled.
	DRAMSpillLatency time.Duration
}

// DefaultConfig models the 200G Falcon IPU.
func DefaultConfig() Config {
	return Config{
		PerConnPacketInterval: 25 * time.Nanosecond,
		GlobalPacketInterval:  4 * time.Nanosecond,
		CacheSize:             16 << 10,
		L2CacheSize:           128 << 10,
		HitCost:               5 * time.Nanosecond,
		L2HitCost:             40 * time.Nanosecond,
		MissCost:              250 * time.Nanosecond, // on-NIC DRAM
		HostGbps:              200,
		RxBufferBytes:         1280 << 10, // 1.25MB ≈ BDP at 200G, 50us
		DRAMSpillLatency:      500 * time.Nanosecond,
	}
}

// CX7LikeConfig models a conventional RNIC whose connection state lives in
// host memory: far costlier misses (Figure 21's ~3x RTT cliff).
func CX7LikeConfig() Config {
	cfg := DefaultConfig()
	cfg.CacheSize = 8 << 10
	cfg.L2CacheSize = 0
	cfg.MissCost = 1200 * time.Nanosecond // host memory over PCIe
	return cfg
}

// Stats counts NIC-level activity.
type Stats struct {
	PacketsProcessed uint64
	CacheHits        uint64
	L2Hits           uint64
	CacheMisses      uint64
	HostBytes        uint64
	SpilledBytes     uint64
	MaxRxOccupancy   float64
	// GlobalWait and ConnWait attribute pipeline admission delay to the
	// aggregate pipe vs per-connection serialization (diagnostics).
	GlobalWait time.Duration
	ConnWait   time.Duration
}

// NIC is one NIC instance's pipeline model.
type NIC struct {
	sim *sim.Simulator
	cfg Config

	globalFree sim.Time
	connFree   map[uint32]sim.Time
	// connDone enforces in-order completion per connection: a cheap
	// lookup must not let a later packet finish before an earlier one.
	connDone map[uint32]sim.Time

	cache   *connCache
	l2cache *connCache

	// Host interface state.
	hostFree  sim.Time
	rxQueued  int // bytes awaiting host delivery
	rxSpilled int // bytes currently spilled to DRAM

	Stats Stats
}

// New creates a NIC bound to the simulator.
func New(s *sim.Simulator, cfg Config) *NIC {
	n := &NIC{sim: s, cfg: cfg, connFree: make(map[uint32]sim.Time), connDone: make(map[uint32]sim.Time)}
	if cfg.CacheSize > 0 {
		n.cache = newConnCache(cfg.CacheSize)
	}
	if cfg.L2CacheSize > 0 {
		n.l2cache = newConnCache(cfg.L2CacheSize)
	}
	return n
}

// lookupCost models the connection-state fetch for one packet.
func (n *NIC) lookupCost(conn uint32) time.Duration {
	if n.cache == nil {
		return n.cfg.HitCost
	}
	if n.cache.touch(conn) {
		n.Stats.CacheHits++
		return n.cfg.HitCost
	}
	if n.l2cache != nil && n.l2cache.touch(conn) {
		n.Stats.L2Hits++
		n.cache.insert(conn)
		return n.cfg.L2HitCost
	}
	n.Stats.CacheMisses++
	n.cache.insert(conn)
	if n.l2cache != nil {
		n.l2cache.insert(conn)
	}
	return n.cfg.MissCost
}

// Process schedules fn after the NIC pipeline has processed one packet for
// conn: per-connection and global serialization plus the connection-state
// lookup. Used for both TX and RX passes.
func (n *NIC) Process(conn uint32, fn func()) {
	now := n.sim.Now()
	// The global pipe admits packets at its own cadence; a connection
	// whose private pipeline is busy must not hold the global cursor
	// back (or, worse, drag it forward to its own future readiness).
	gStart := now
	if n.globalFree > gStart {
		n.Stats.GlobalWait += n.globalFree.Sub(gStart)
		gStart = n.globalFree
	}
	n.globalFree = gStart.Add(n.cfg.GlobalPacketInterval)
	// Per-connection serialization applies after global admission.
	start := gStart
	if cf := n.connFree[conn]; cf > start {
		n.Stats.ConnWait += cf.Sub(start)
		start = cf
	}
	cost := n.lookupCost(conn)
	done := start.Add(cost)
	if prev := n.connDone[conn]; done < prev {
		done = prev
	}
	n.connDone[conn] = done
	n.connFree[conn] = start.Add(n.cfg.PerConnPacketInterval)
	n.Stats.PacketsProcessed++
	n.sim.At(done, fn)
}

// DeliverToHost models payload DMA to host memory at HostGbps. The bytes
// occupy the RX packet buffer until drained; occupancy beyond the SRAM
// capacity spills to DRAM with extra latency but is never dropped (§5.2
// "Falcon HW also allows packet buffers to overflow ... to external on-NIC
// DRAM"). done fires when the payload has landed in host memory.
func (n *NIC) DeliverToHost(bytes int, done func()) {
	if bytes <= 0 {
		if done != nil {
			done()
		}
		return
	}
	now := n.sim.Now()
	n.rxQueued += bytes
	spilled := false
	if n.rxQueued > n.cfg.RxBufferBytes {
		spilled = true
		n.rxSpilled += bytes
		n.Stats.SpilledBytes += uint64(bytes)
	}
	if occ := n.RxOccupancy(); occ > n.Stats.MaxRxOccupancy {
		n.Stats.MaxRxOccupancy = occ
	}
	start := now
	if n.hostFree > start {
		start = n.hostFree
	}
	drain := time.Duration(float64(bytes) * 8 / n.cfg.HostGbps) // ns
	finish := start.Add(drain)
	if spilled {
		finish = finish.Add(n.cfg.DRAMSpillLatency)
	}
	n.hostFree = finish
	n.Stats.HostBytes += uint64(bytes)
	n.sim.At(finish, func() {
		n.rxQueued -= bytes
		if spilled {
			n.rxSpilled -= bytes
		}
		if done != nil {
			done()
		}
	})
}

// RxOccupancy returns the RX packet-buffer occupancy as a fraction of SRAM
// capacity, clamped to 1 (spilled bytes keep it pinned at 1). This is the
// ncwnd congestion signal.
func (n *NIC) RxOccupancy() float64 {
	if n.cfg.RxBufferBytes <= 0 {
		return 0
	}
	occ := float64(n.rxQueued) / float64(n.cfg.RxBufferBytes)
	if occ > 1 {
		occ = 1
	}
	return occ
}

// SetHostGbps changes host-interface bandwidth at runtime (the PCIe
// downgrade of Figure 14).
func (n *NIC) SetHostGbps(gbps float64) {
	if gbps <= 0 {
		panic("nic: host bandwidth must be positive")
	}
	n.cfg.HostGbps = gbps
}

// HostGbps returns the current host-interface bandwidth.
func (n *NIC) HostGbps() float64 { return n.cfg.HostGbps }

// connCache is an LRU set of connection IDs.
type connCache struct {
	capacity int
	ll       *list.List
	items    map[uint32]*list.Element
}

func newConnCache(capacity int) *connCache {
	return &connCache{capacity: capacity, ll: list.New(), items: make(map[uint32]*list.Element)}
}

// touch reports whether conn is cached, refreshing recency.
func (c *connCache) touch(conn uint32) bool {
	if el, ok := c.items[conn]; ok {
		c.ll.MoveToFront(el)
		return true
	}
	return false
}

// insert adds conn, evicting the LRU entry if needed.
func (c *connCache) insert(conn uint32) {
	if el, ok := c.items[conn]; ok {
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		back := c.ll.Back()
		if back != nil {
			c.ll.Remove(back)
			delete(c.items, back.Value.(uint32))
		}
	}
	c.items[conn] = c.ll.PushFront(conn)
}
