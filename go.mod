module falcon

go 1.22
