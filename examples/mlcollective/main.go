// ML collective demo: AllReduce and AllToAll completion times over
// RDMA-Falcon versus the legacy TCP stack, across message sizes — the
// comparison behind the paper's Figures 25 and 26.
//
//	go run ./examples/mlcollective
package main

import (
	"fmt"
	"time"

	"falcon/internal/sim"
	"falcon/internal/swtransport"
	"falcon/internal/workload"
)

const (
	nodes        = 8
	ranksPerNode = 4
	ranks        = nodes * ranksPerNode
)

func falconTime(coll func(workload.Messenger, int, func()), bytes int) time.Duration {
	s := sim.New(5)
	m, _ := workload.BuildFalconJob(s, nodes, ranksPerNode, ranks)
	var done sim.Time
	coll(m, bytes, func() { done = s.Now() })
	s.Run()
	return done.Duration()
}

func tcpTime(coll func(workload.Messenger, int, func()), bytes int) time.Duration {
	s := sim.New(5)
	m, _ := workload.BuildSWJob(s, nodes, ranksPerNode, ranks, swtransport.TCP())
	var done sim.Time
	coll(m, bytes, func() { done = s.Now() })
	s.Run()
	return done.Duration()
}

func table(name string, coll func(workload.Messenger, int, func())) {
	fmt.Printf("%s (%d ranks on %d nodes)\n", name, ranks, nodes)
	fmt.Printf("  %-10s %14s %14s %9s\n", "msg size", "RDMA-Falcon", "TCP", "speedup")
	for _, bytes := range []int{4, 64, 1024, 16 << 10, 64 << 10, 256 << 10} {
		f := falconTime(coll, bytes)
		t := tcpTime(coll, bytes)
		fmt.Printf("  %-10s %14v %14v %8.1fx\n", fmtBytes(bytes), f, t, float64(t)/float64(f))
	}
	fmt.Println()
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

func main() {
	table("AllReduce", workload.AllReduce)
	table("AllToAll", workload.AllToAll)
	fmt.Println("Small messages gain the most: the hardware transport removes the")
	fmt.Println("software stack's per-message CPU cost and latency floor.")
}
