// Package workload implements the application workloads of §6.3 and the
// traffic generators the benchmark harness drives: MPI collectives
// (AllReduce, AllToAll, AllGather, MultiPingPong), the compute-communicate
// iteration model standing in for GROMACS and WRF, the VM live-migration
// model of Figure 29, and generic closed-loop/Poisson issuers.
//
// Workloads are written against the Messenger interface so the same
// collective code runs over RDMA-Falcon and over the TCP software stack —
// the comparison the paper's Figures 25–31 make.
//
// Every generator is deterministic and self-contained: randomness (Poisson
// gaps, jittered compute times) comes exclusively from the owning
// simulator's seeded RNG via sim.Rand(), never from package-level
// math/rand (enforced by internal/testkit's TestNoGlobalRand). Because a
// workload touches no state outside its simulator, whole experiments are
// embarrassingly parallel — falconbench -parallel runs one experiment per
// goroutine, each with its own simulators, and produces bit-identical
// tables at any pool width.
package workload

import (
	"fmt"
	"time"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/sim"
	"falcon/internal/swtransport"
)

// Messenger moves messages between ranks of a parallel job.
type Messenger interface {
	// Send moves n bytes from rank `from` to rank `to`; done fires when
	// the message is delivered.
	Send(from, to, n int, done func())
	// Ranks returns the job size.
	Ranks() int
}

// localCopyDelay models an intra-node (shared-memory) message.
const localCopyDelay = time.Microsecond

// FalconMessenger runs ranks over RDMA-Falcon: one QP per communicating
// rank pair, created lazily. Messages are RDMA Writes (delivery = write
// completion).
type FalconMessenger struct {
	sim          *sim.Simulator
	cluster      *core.Cluster
	nodes        []*core.Node
	ranks        int
	ranksPerNode int
	connCfg      core.ConnConfig

	qps map[[2]int]*rdma.QP
}

// NewFalconMessenger builds the messenger over an existing Falcon cluster.
// ranks are assigned round-robin blocks of ranksPerNode to nodes.
func NewFalconMessenger(cl *core.Cluster, nodes []*core.Node, ranks, ranksPerNode int, connCfg core.ConnConfig) *FalconMessenger {
	if ranksPerNode <= 0 {
		ranksPerNode = 1
	}
	need := (ranks + ranksPerNode - 1) / ranksPerNode
	if need > len(nodes) {
		panic(fmt.Sprintf("workload: %d ranks at %d/node need %d nodes, have %d", ranks, ranksPerNode, need, len(nodes)))
	}
	return &FalconMessenger{
		sim:          cl.Sim(),
		cluster:      cl,
		nodes:        nodes,
		ranks:        ranks,
		ranksPerNode: ranksPerNode,
		connCfg:      connCfg,
		qps:          make(map[[2]int]*rdma.QP),
	}
}

// Ranks implements Messenger.
func (m *FalconMessenger) Ranks() int { return m.ranks }

func (m *FalconMessenger) nodeOf(rank int) *core.Node {
	return m.nodes[rank/m.ranksPerNode]
}

func (m *FalconMessenger) qp(from, to int) *rdma.QP {
	key := [2]int{from, to}
	if qp, ok := m.qps[key]; ok {
		return qp
	}
	epA, epB := m.cluster.Connect(m.nodeOf(from), m.nodeOf(to), m.connCfg)
	qa := rdma.NewQP(epA, rdma.Config{})
	qb := rdma.NewQP(epB, rdma.Config{})
	qa.RegisterMemoryLen(1 << 40)
	qb.RegisterMemoryLen(1 << 40)
	m.qps[key] = qa
	return qa
}

// Send implements Messenger.
func (m *FalconMessenger) Send(from, to, n int, done func()) {
	if m.nodeOf(from) == m.nodeOf(to) {
		m.sim.After(localCopyDelay, done)
		return
	}
	qp := m.qp(from, to)
	if err := qp.Write(0, 0, nil, n, func(c rdma.Completion) {
		if done != nil {
			done()
		}
	}); err != nil {
		// Backpressured: retry shortly (the collective keeps going).
		m.sim.After(20*time.Microsecond, func() { m.Send(from, to, n, done) })
	}
}

// SWMessenger runs ranks over a software transport (Pony Express or TCP).
type SWMessenger struct {
	sim          *sim.Simulator
	nodes        []*swtransport.Node
	ranks        int
	ranksPerNode int

	conns  map[[2]int]*swtransport.Conn
	nextID uint32
}

// NewSWMessenger builds the messenger over software-transport nodes.
func NewSWMessenger(s *sim.Simulator, nodes []*swtransport.Node, ranks, ranksPerNode int) *SWMessenger {
	if ranksPerNode <= 0 {
		ranksPerNode = 1
	}
	need := (ranks + ranksPerNode - 1) / ranksPerNode
	if need > len(nodes) {
		panic(fmt.Sprintf("workload: %d ranks at %d/node need %d nodes, have %d", ranks, ranksPerNode, need, len(nodes)))
	}
	return &SWMessenger{sim: s, nodes: nodes, ranks: ranks, ranksPerNode: ranksPerNode,
		conns: make(map[[2]int]*swtransport.Conn), nextID: 1}
}

// Ranks implements Messenger.
func (m *SWMessenger) Ranks() int { return m.ranks }

func (m *SWMessenger) node(rank int) *swtransport.Node { return m.nodes[rank/m.ranksPerNode] }

// Send implements Messenger.
func (m *SWMessenger) Send(from, to, n int, done func()) {
	if m.node(from) == m.node(to) {
		m.sim.After(localCopyDelay, done)
		return
	}
	key := [2]int{from, to}
	c, ok := m.conns[key]
	if !ok {
		c = swtransport.Connect(m.node(from), m.node(to), m.nextID)
		m.nextID++
		m.conns[key] = c
	}
	c.Send(n, done)
}

// BuildFalconJob provisions a Clos fabric, a Falcon cluster and a
// messenger for an n-node job — the common setup for the MPI and HPC
// benchmarks.
func BuildFalconJob(s *sim.Simulator, nodesCount, ranksPerNode int, ranks int) (*FalconMessenger, *netsim.Topology) {
	hostsPerRack := nodesCount
	racks := 1
	if nodesCount > 16 {
		racks = 2
		hostsPerRack = (nodesCount + 1) / 2
	}
	link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
	fabric := netsim.LinkConfig{GbpsRate: 200, PropDelay: 2 * time.Microsecond}
	topo := netsim.Clos(s, racks, hostsPerRack, 4, link, fabric)
	cl := core.NewCluster(s)
	var nodes []*core.Node
	for i := 0; i < nodesCount; i++ {
		nodes = append(nodes, cl.AddNode(topo.Hosts[i], core.DefaultNodeConfig()))
	}
	return NewFalconMessenger(cl, nodes, ranks, ranksPerNode, core.DefaultConnConfig()), topo
}

// BuildSWJob provisions the same fabric with a software transport.
func BuildSWJob(s *sim.Simulator, nodesCount, ranksPerNode, ranks int, profile swtransport.Profile) (*SWMessenger, *netsim.Topology) {
	hostsPerRack := nodesCount
	racks := 1
	if nodesCount > 16 {
		racks = 2
		hostsPerRack = (nodesCount + 1) / 2
	}
	link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
	fabric := netsim.LinkConfig{GbpsRate: 200, PropDelay: 2 * time.Microsecond}
	topo := netsim.Clos(s, racks, hostsPerRack, 4, link, fabric)
	var nodes []*swtransport.Node
	for i := 0; i < nodesCount; i++ {
		nodes = append(nodes, swtransport.NewNode(s, topo.Hosts[i], profile))
	}
	return NewSWMessenger(s, nodes, ranks, ranksPerNode), topo
}
