package experiments

import (
	"reflect"
	"testing"
	"time"
)

// TestExperimentDeterminism runs one experiment from each family twice and
// requires bit-identical tables: every source of randomness must flow from
// the simulator's seeded RNG, so a rerun reproduces each figure exactly.
// A regression here means some experiment picked up nondeterminism (map
// iteration ordering, wall-clock time, global rand) that would make the
// paper's figures unreproducible run to run.
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	families := []struct {
		name string
		run  func() *Table
	}{
		{"swhw/Fig1", func() *Table { return Fig1(500 * time.Microsecond) }},
		{"loss/Fig10", func() *Table { return Fig10(500 * time.Microsecond) }},
		{"congestion/Fig13", func() *Table { return Fig13(500 * time.Microsecond) }},
		{"multipath/Fig3", func() *Table { return Fig3(500 * time.Microsecond) }},
		{"isolation/Fig24", func() *Table { return Fig24(500 * time.Microsecond) }},
		{"faeexp/Fig22b", func() *Table { return Fig22b(500 * time.Microsecond) }},
		{"hwscale/Fig20a", func() *Table { return Fig20a(500 * time.Microsecond) }},
		{"ablations/AblationECN", func() *Table { return AblationECN(500 * time.Microsecond) }},
		{"apps/Table4", func() *Table { return Table4(500 * time.Microsecond) }},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			a, b := fam.run(), fam.run()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("two same-seed runs differ:\nfirst: %+v\nsecond: %+v", a, b)
			}
		})
	}
}
