package telemetry

import (
	"strconv"

	"falcon/internal/chaos"
	"falcon/internal/falcon/fae"
	"falcon/internal/falcon/pdl"
	"falcon/internal/falcon/tl"
	"falcon/internal/falcon/wire"
	"falcon/internal/netsim"
	"falcon/internal/nic"
	"falcon/internal/sim"
)

// This file adapts each layer's stats and accessors to the registry and
// sampler. All collectors are lazy — they read layer state at snapshot or
// tick time, so attaching them costs nothing on packet paths. Metric
// names follow "<prefix>/<layer>/<metric>"; DESIGN.md §9 lists the full
// catalogue.

// CollectPDL registers a snapshot collector for one PDL connection:
// counters from pdl.Stats (retransmit causes, ACK coalescing, NACK codes)
// plus window-occupancy gauges.
func CollectPDL(r *Registry, prefix string, c *pdl.Conn) {
	r.OnSnapshot(func(emit func(string, float64)) {
		s := c.Stats
		emit(prefix+"/pdl/data_sent", float64(s.DataSent))
		emit(prefix+"/pdl/data_retransmits", float64(s.DataRetransmits))
		emit(prefix+"/pdl/retx_rack", float64(s.RetxRACK))
		emit(prefix+"/pdl/retx_ooo", float64(s.RetxOOO))
		emit(prefix+"/pdl/retx_tlp", float64(s.RetxTLP))
		emit(prefix+"/pdl/retx_rto", float64(s.RetxRTO))
		emit(prefix+"/pdl/retx_nack_backoff", float64(s.RetxNackBackoff))
		emit(prefix+"/pdl/tlp_probes", float64(s.TLPProbes))
		emit(prefix+"/pdl/rtos", float64(s.RTOs))
		emit(prefix+"/pdl/acks_sent", float64(s.AcksSent))
		emit(prefix+"/pdl/acks_immediate", float64(s.AcksImmediate))
		emit(prefix+"/pdl/acks_coalesced", float64(s.AcksCoalesced))
		emit(prefix+"/pdl/acks_received", float64(s.AcksReceived))
		emit(prefix+"/pdl/duplicates", float64(s.Duplicates))
		emit(prefix+"/pdl/nacks_sent", float64(s.NacksSent))
		emit(prefix+"/pdl/nacks_received", float64(s.NacksReceived))
		emit(prefix+"/pdl/nacks_rnr", float64(s.NacksRnr))
		emit(prefix+"/pdl/nacks_resource", float64(s.NacksResource))
		emit(prefix+"/pdl/nacks_cie", float64(s.NacksCie))
		emit(prefix+"/pdl/delivered_to_tl", float64(s.DeliveredToTL))
		emit(prefix+"/pdl/rx_window_drops", float64(s.RxWindowDrops))
		emit(prefix+"/pdl/tx_unacked_req", float64(c.TxUnacked(wire.SpaceRequest)))
		emit(prefix+"/pdl/tx_unacked_resp", float64(c.TxUnacked(wire.SpaceResponse)))
		emit(prefix+"/pdl/rx_window_req", float64(rxOccupancy(c, wire.SpaceRequest)))
		emit(prefix+"/pdl/rx_window_resp", float64(rxOccupancy(c, wire.SpaceResponse)))
		emit(prefix+"/pdl/queued_packets", float64(c.QueuedPackets()))
		emit(prefix+"/pdl/outstanding", float64(c.Outstanding()))
		emit(prefix+"/pdl/parked", float64(c.Parked()))
		emit(prefix+"/pdl/fcwnd", c.Fcwnd())
		emit(prefix+"/pdl/ncwnd", c.Ncwnd())
		emit(prefix+"/pdl/srtt_ns", float64(c.SRTT()))
	})
}

// rxOccupancy counts out-of-order packets held in the RX bitmap of one
// space.
func rxOccupancy(c *pdl.Conn, space wire.Space) int {
	_, bm := c.RxState(space)
	return bm.OnesCount()
}

// TrackPDL registers the per-connection congestion time series on a
// sampler: fcwnd, ncwnd, in-flight occupancy and the TL send queue — the
// cwnd-vs-time traces behind the paper's §6 congestion figures.
func TrackPDL(sp *Sampler, prefix string, c *pdl.Conn) {
	sp.Track(prefix+"/fcwnd", c.Fcwnd)
	sp.Track(prefix+"/ncwnd", c.Ncwnd)
	sp.Track(prefix+"/outstanding", func() float64 { return float64(c.Outstanding()) })
	sp.Track(prefix+"/queued_packets", func() float64 { return float64(c.QueuedPackets()) })
	sp.Track(prefix+"/srtt_ns", func() float64 { return float64(c.SRTT()) })
	sp.Track(prefix+"/retransmits", func() float64 { return float64(c.Stats.DataRetransmits) })
}

// CollectTL registers a snapshot collector for one TL connection.
func CollectTL(r *Registry, prefix string, c *tl.Conn) {
	r.OnSnapshot(func(emit func(string, float64)) {
		s := c.Stats
		emit(prefix+"/tl/pushes", float64(s.Pushes))
		emit(prefix+"/tl/pulls", float64(s.Pulls))
		emit(prefix+"/tl/completed_ok", float64(s.CompletedOK))
		emit(prefix+"/tl/completed_error", float64(s.CompletedError))
		emit(prefix+"/tl/rnr_retries", float64(s.RNRRetries))
		emit(prefix+"/tl/backpressured", float64(s.Backpressured))
		emit(prefix+"/tl/requests_served", float64(s.RequestsServed))
		emit(prefix+"/tl/outstanding_txns", float64(c.OutstandingTxns()))
		emit(prefix+"/tl/pending_responses", float64(c.PendingResponses()))
		emit(prefix+"/tl/reorder_backlog", float64(c.ReorderBacklog()))
		emit(prefix+"/tl/alpha", c.Alpha())
	})
}

// CollectNIC registers a snapshot collector for one NIC pipeline model.
func CollectNIC(r *Registry, prefix string, n *nic.NIC) {
	r.OnSnapshot(func(emit func(string, float64)) {
		s := n.Stats
		emit(prefix+"/nic/packets_processed", float64(s.PacketsProcessed))
		emit(prefix+"/nic/cache_hits", float64(s.CacheHits))
		emit(prefix+"/nic/l2_hits", float64(s.L2Hits))
		emit(prefix+"/nic/cache_misses", float64(s.CacheMisses))
		emit(prefix+"/nic/host_bytes", float64(s.HostBytes))
		emit(prefix+"/nic/spilled_bytes", float64(s.SpilledBytes))
		emit(prefix+"/nic/max_rx_occupancy", s.MaxRxOccupancy)
		emit(prefix+"/nic/rx_occupancy", n.RxOccupancy())
		emit(prefix+"/nic/global_wait_ns", float64(s.GlobalWait))
		emit(prefix+"/nic/conn_wait_ns", float64(s.ConnWait))
	})
}

// CollectPort registers a snapshot collector for one directed netsim
// port: traffic, drops, ECN marks and queue extremes.
func CollectPort(r *Registry, prefix string, p *netsim.Port) {
	r.OnSnapshot(func(emit func(string, float64)) {
		s := p.Stats
		emit(prefix+"/port/tx_frames", float64(s.TxFrames))
		emit(prefix+"/port/tx_bytes", float64(s.TxBytes))
		emit(prefix+"/port/queue_drops", float64(s.QueueDrops))
		emit(prefix+"/port/random_drops", float64(s.RandomDrops))
		emit(prefix+"/port/down_drops", float64(s.DownDrops))
		emit(prefix+"/port/reordered", float64(s.Reordered))
		emit(prefix+"/port/ecn_marks", float64(s.ECNMarks))
		emit(prefix+"/port/max_queue_bytes", float64(s.MaxQueueBytes))
		emit(prefix+"/port/queued_bytes", float64(p.QueuedBytes()))
	})
}

// CollectUplinks registers a snapshot collector over one equal-cost
// uplink group (a switch's RouteTo port set): per-uplink frame/byte
// counters plus the spread summary that makes routing-policy balance
// measurable — min/max/total frames and bytes, the relative imbalance,
// and the group's cumulative down-link drops (gray-failure loss). Names
// land under the "routing" layer: "<prefix>/upN/routing/<metric>" per
// uplink and "<prefix>/routing/<metric>" for the aggregates.
func CollectUplinks(r *Registry, prefix string, ports []*netsim.Port) {
	r.OnSnapshot(func(emit func(string, float64)) {
		var minF, maxF, totF uint64
		var minB, maxB, totB uint64
		var downDrops uint64
		for i, p := range ports {
			s := p.Stats
			up := prefix + "/up" + strconv.Itoa(i)
			emit(up+"/routing/tx_frames", float64(s.TxFrames))
			emit(up+"/routing/tx_bytes", float64(s.TxBytes))
			if i == 0 || s.TxFrames < minF {
				minF = s.TxFrames
			}
			if s.TxFrames > maxF {
				maxF = s.TxFrames
			}
			if i == 0 || s.TxBytes < minB {
				minB = s.TxBytes
			}
			if s.TxBytes > maxB {
				maxB = s.TxBytes
			}
			totF += s.TxFrames
			totB += s.TxBytes
			downDrops += s.DownDrops
		}
		emit(prefix+"/routing/uplinks", float64(len(ports)))
		emit(prefix+"/routing/frames_total", float64(totF))
		emit(prefix+"/routing/frames_min", float64(minF))
		emit(prefix+"/routing/frames_max", float64(maxF))
		emit(prefix+"/routing/bytes_total", float64(totB))
		emit(prefix+"/routing/bytes_min", float64(minB))
		emit(prefix+"/routing/bytes_max", float64(maxB))
		spread := 0.0
		if maxF > 0 {
			spread = float64(maxF-minF) * 100 / float64(maxF)
		}
		emit(prefix+"/routing/spread_pct", spread)
		emit(prefix+"/routing/down_drops_total", float64(downDrops))
	})
}

// TrackPort registers the queue-depth time series of one port — the
// queue-occupancy-vs-time traces behind the incast figures.
func TrackPort(sp *Sampler, prefix string, p *netsim.Port) {
	sp.Track(prefix+"/queued_bytes", func() float64 { return float64(p.QueuedBytes()) })
	sp.Track(prefix+"/queue_delay_ns", func() float64 { return float64(p.QueueDelay()) })
	sp.Track(prefix+"/tx_bytes", func() float64 { return float64(p.Stats.TxBytes) })
	sp.Track(prefix+"/queue_drops", func() float64 { return float64(p.Stats.QueueDrops) })
}

// CollectFAE registers a snapshot collector for one adaptive engine.
func CollectFAE(r *Registry, prefix string, e *fae.Engine) {
	r.OnSnapshot(func(emit func(string, float64)) {
		emit(prefix+"/fae/events_processed", float64(e.EventsProcessed))
		emit(prefix+"/fae/repaths", float64(e.Repaths))
	})
}

// ObserveFAE attaches an engine observer feeding delay histograms and CC
// counters: fabric-delay and RTT distributions (ns), packets acked under
// CC, ECN echoes and repath decisions. The observer writes only into
// preallocated registry instruments, so it adds no allocations to event
// processing.
func ObserveFAE(r *Registry, prefix string, e *fae.Engine) {
	fabric := r.Histogram(prefix + "/fae/fabric_delay_ns")
	rtt := r.Histogram(prefix + "/fae/rtt_ns")
	acked := r.Counter(prefix + "/fae/acked_packets")
	ece := r.Counter(prefix + "/fae/ece_echoes")
	repaths := r.Counter(prefix + "/fae/repath_responses")
	e.SetObserver(func(ev fae.Event, resp fae.Response) {
		if ev.Kind == fae.EventAck {
			fabric.RecordDuration(ev.FabricDelay)
			rtt.RecordDuration(ev.RTT)
			acked.Add(uint64(ev.AckedPackets))
			if ev.ECE {
				ece.Inc()
			}
		}
		if resp.Repathed {
			repaths.Inc()
		}
	})
}

// CollectChaos registers a snapshot collector for one storm run's report.
// The pointer is registered before the run and filled after it drains
// (RunInstrumented snapshots after RunTel returns), so the collector reads
// the completed report lazily. Every chaos metric is an integer derived
// from virtual-clock state — the lake classifies the whole layer exact, so
// same-seed storms must reproduce these values byte-identically.
func CollectChaos(r *Registry, prefix string, rep *chaos.Report) {
	r.OnSnapshot(func(emit func(string, float64)) {
		emit(prefix+"/chaos/events", float64(rep.Events))
		emit(prefix+"/chaos/baseline_goodput_mbps", float64(rep.Envelope.BaselineMbps))
		emit(prefix+"/chaos/storm_goodput_mbps", float64(rep.Envelope.StormMbps))
		emit(prefix+"/chaos/tail_goodput_mbps", float64(rep.Envelope.TailMbps))
		emit(prefix+"/chaos/recovered", boolMetric(rep.Envelope.Recovered))
		emit(prefix+"/chaos/recovery_gap_ns", float64(rep.Envelope.RecoveryNs))
		emit(prefix+"/chaos/retransmits", float64(rep.Retransmits))
		emit(prefix+"/chaos/baseline_retransmits", float64(rep.BaselineRetransmits))
		emit(prefix+"/chaos/rto_depth", float64(rep.RTODepth))
		emit(prefix+"/chaos/conns_total", float64(rep.ConnsTotal))
		emit(prefix+"/chaos/conns_survived", float64(rep.ConnsSurvived))
		emit(prefix+"/chaos/conns_failed", float64(rep.ConnsFailed))
		emit(prefix+"/chaos/completed_ops", float64(rep.Completed))
		emit(prefix+"/chaos/frames_sent", float64(rep.Ledger.Sent))
		emit(prefix+"/chaos/frames_delivered", float64(rep.Ledger.Delivered))
		emit(prefix+"/chaos/frames_dropped", float64(rep.Ledger.Dropped()))
		emit(prefix+"/chaos/down_drops", float64(rep.Ledger.DownDrops))
		emit(prefix+"/chaos/corrupt_drops", float64(rep.Ledger.CorruptDrops))
		emit(prefix+"/chaos/pause_rx_drops", float64(rep.Ledger.PauseRxDrops))
		emit(prefix+"/chaos/ledger_balanced", boolMetric(rep.Ledger.Balanced()))
	})
}

// CollectShards registers a snapshot collector for one sharded simulator
// group: per-partition delivery/cross-boundary counters plus the group's
// window/stall aggregates. Names land under the "shard" layer
// ("<prefix>/pN/shard/<metric>" per partition, "<prefix>/shard/<metric>"
// for group totals), which the lake classifies exact: in merged mode
// every value is determined by the event stream, so same-seed runs at
// the same shard count must reproduce them byte-identically. Window
// counters are only advanced by the experimental parallel mode and stay
// zero under the merged coordinator.
func CollectShards(r *Registry, prefix string, g *sim.Sharded) {
	r.OnSnapshot(func(emit func(string, float64)) {
		var delivered, cross, windows, idle uint64
		for i, st := range g.Stats() {
			p := prefix + "/p" + strconv.Itoa(i)
			emit(p+"/shard/delivered", float64(st.Delivered))
			emit(p+"/shard/cross", float64(st.Cross))
			emit(p+"/shard/windows", float64(st.Windows))
			emit(p+"/shard/idle_windows", float64(st.IdleWindows))
			delivered += st.Delivered
			cross += st.Cross
			windows += st.Windows
			idle += st.IdleWindows
		}
		emit(prefix+"/shard/partitions", float64(g.Shards()))
		emit(prefix+"/shard/parallel", boolMetric(g.Parallel()))
		emit(prefix+"/shard/lookahead_ns", float64(g.Lookahead()))
		emit(prefix+"/shard/delivered_total", float64(delivered))
		emit(prefix+"/shard/cross_total", float64(cross))
		emit(prefix+"/shard/windows_total", float64(windows))
		emit(prefix+"/shard/idle_windows_total", float64(idle))
	})
}

// boolMetric encodes a verdict as 0/1 for the exact-class chaos layer.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
