package routing

// Gray-failure injection: scheduled fabric impairments that are harder
// than clean link-down — flapping links, slow-but-up ports, correlated
// rack outages. Every schedule is driven off the simulation clock with
// typed actions (no capture closures, matching the netsim fast-path
// discipline), so an injected failure is part of the same deterministic
// event stream as the traffic it disturbs: two same-seed runs flap, slow
// and recover at identical (time, seq) points and produce byte-identical
// traces.
//
// The injector manipulates ports only through the narrow FailPort
// control surface, which netsim.Port satisfies; routing therefore stays
// import-free of netsim and the two packages compose without a cycle.

import (
	"time"

	"falcon/internal/sim"
)

// FailPort is the control surface the injector drives. netsim.Port
// implements it: SetDown drops every frame while down (counted in the
// port's DownDrops, never in RandomDrops), and SetRateGbps re-rates the
// link for frames enqueued after the change without re-timing committed
// bytes.
type FailPort interface {
	SetDown(down bool)
	SetRateGbps(gbps float64)
}

// Injector schedules gray failures on fabric ports of one simulator.
// All methods may be called before or during a run; schedules in the
// past panic (the simulator refuses to rewrite history).
//
// Stop ends the campaign early (typically because the simulation's
// measurement window closed before every schedule played out): pending
// impairments are discarded instead of firing into a dead simulation,
// pending restores still apply so no port is stranded down or
// degraded, and every later schedule call becomes a no-op — it can no
// longer panic on a start time the simulator has already passed.
type Injector struct {
	s       *sim.Simulator
	stopped bool
}

// NewInjector returns an injector scheduling on s.
func NewInjector(s *sim.Simulator) *Injector { return &Injector{s: s} }

// Stop retires the injector. Schedules already in the event queue are
// not unscheduled (the wheel has no random-access delete on the typed
// fast path); instead every injector event checks the stopped flag when
// it fires: impairment phases (a flap's down phase, an outage's down
// edge, a Slow degrade) become no-ops and re-arming chains end, while
// restore phases (flap up, outage clear, Slow recovery) still run so a
// port impaired before Stop is always handed back healthy. The events
// then fall out of the queue normally — nothing pooled leaks, nothing
// fires into a torn-down topology, and nothing panics.
func (in *Injector) Stop() { in.stopped = true }

// Stopped reports whether Stop has retired this injector.
func (in *Injector) Stopped() bool { return in.stopped }

// flapEvent is the typed action behind Flap: each firing toggles the
// port and re-arms itself until the configured down/up cycles are spent.
type flapEvent struct {
	in      *Injector
	p       FailPort
	downFor time.Duration
	upFor   time.Duration
	cycles  int  // down/up pairs still to run, including the current one
	down    bool // true while the port is held down
}

// RunAction implements sim.Action.
func (e *flapEvent) RunAction() {
	s := e.in.s
	if !e.down {
		if e.in.stopped {
			return // discarded: never start a new down phase after Stop
		}
		e.p.SetDown(true)
		e.down = true
		s.AtAction(s.Now().Add(e.downFor), e)
		return
	}
	// The up edge always applies, Stop or not: a port downed before the
	// injector was retired must come back.
	e.p.SetDown(false)
	e.down = false
	e.cycles--
	if e.cycles > 0 && !e.in.stopped {
		s.AtAction(s.Now().Add(e.upFor), e)
	}
}

// Flap schedules cycles down/up cycles on p: starting at start the port
// goes down for downFor, comes back up for upFor, and repeats. The port
// is guaranteed up again after the last cycle. cycles <= 0 is a no-op.
func (in *Injector) Flap(p FailPort, start sim.Time, downFor, upFor time.Duration, cycles int) {
	if cycles <= 0 || in.stopped {
		return
	}
	in.s.AtAction(start, &flapEvent{in: in, p: p, downFor: downFor, upFor: upFor, cycles: cycles})
}

// rateEvent is the typed action behind Slow: one firing applies one
// rate. restore marks the recovery edge, which applies even after Stop.
type rateEvent struct {
	in      *Injector
	p       FailPort
	gbps    float64
	restore bool
}

// RunAction implements sim.Action.
func (e *rateEvent) RunAction() {
	if e.in.stopped && !e.restore {
		return
	}
	e.p.SetRateGbps(e.gbps)
}

// Slow degrades p to slowGbps at time at without downing it — the
// classic gray failure: the link stays "healthy" (no down_drops) while
// serialization stretches and its queue backs up. If recoverAfter > 0
// the port is restored to restoreGbps that long after the degrade.
func (in *Injector) Slow(p FailPort, at sim.Time, slowGbps float64, recoverAfter time.Duration, restoreGbps float64) {
	if in.stopped {
		return
	}
	in.s.AtAction(at, &rateEvent{in: in, p: p, gbps: slowGbps})
	if recoverAfter > 0 {
		in.s.AtAction(at.Add(recoverAfter), &rateEvent{in: in, p: p, gbps: restoreGbps, restore: true})
	}
}

// outageEvent is the typed action behind RackOutage: one firing moves
// every port of the group to one administrative state. The down edge
// records which ports it actually downed so the restore edge releases
// exactly those holds — a down edge discarded by Stop must not be
// "restored", or the port's down depth would underflow another
// schedule's hold.
type outageEvent struct {
	in      *Injector
	ports   []FailPort
	down    bool
	applied *bool // shared with the paired restore event
}

// RunAction implements sim.Action.
func (e *outageEvent) RunAction() {
	if e.down {
		if e.in.stopped {
			return // discarded; the paired restore sees applied=false
		}
		*e.applied = true
		for _, p := range e.ports {
			p.SetDown(true)
		}
		return
	}
	if !*e.applied {
		return
	}
	for _, p := range e.ports {
		p.SetDown(false)
	}
}

// RackOutage downs every port in the group at time at and restores all
// of them outageFor later — the correlated failure a ToR power event
// causes, as opposed to the independent single-link failures Flap
// models. Both transitions happen at a single instant each, so every
// port in the group fails (and recovers) atomically in virtual time.
func (in *Injector) RackOutage(ports []FailPort, at sim.Time, outageFor time.Duration) {
	if len(ports) == 0 || in.stopped {
		return
	}
	applied := new(bool)
	in.s.AtAction(at, &outageEvent{in: in, ports: ports, down: true, applied: applied})
	in.s.AtAction(at.Add(outageFor), &outageEvent{in: in, ports: ports, down: false, applied: applied})
}
