// Package roce implements the RoCE (RDMA over Converged Ethernet) baseline
// the paper evaluates Falcon against (§2, §6.1). The model captures the
// behaviours the paper attributes to CX-7-class NICs:
//
//   - Go-Back-N loss recovery (Mode GBN): the receiver accepts only
//     in-sequence packets, drops everything out of order, and NAKs the
//     expected PSN; the sender rewinds and retransmits the whole window.
//   - Selective Repeat (Mode SR): available only for RDMA Writes and Read
//     Responses — the receiver buffers those out of order and emits one NAK
//     per out-of-order arrival naming the missing PSN; Sends and Read
//     Requests still get GBN treatment ("RoCE-SR is not available to these
//     IB Verbs ops", §6.1.1).
//   - Adaptive Routing mode (Mode AR): tolerates reordering (no NAKs at
//     all), so losses are recovered only by retransmission timeout —
//     "packet capture traces show no signal from the target for immediate
//     retransmission" (§6.1.1).
//   - RTTCC congestion control: probe-based rate control (out-of-band RTT
//     probes rather than per-packet timestamps), giving the sluggish
//     congestion response the paper describes (§2: "its congestion
//     response [is] sluggish").
//
// Like Falcon, RoCE rides the shared internal/netsim fabric; a QP uses a
// single network path (no multipath protocol support).
package roce

import (
	"time"

	"falcon/internal/netsim"
	"falcon/internal/nic"
	"falcon/internal/sim"
)

// Mode selects the loss-recovery scheme.
type Mode int

const (
	// GBN is go-back-N: in-order-only receiver, full-window rewinds.
	GBN Mode = iota
	// SR is selective repeat for Writes/Read Responses only.
	SR
	// AR is adaptive-routing mode: reorder-tolerant, timeout-only
	// recovery.
	AR
)

func (m Mode) String() string {
	switch m {
	case GBN:
		return "RoCE-GBN"
	case SR:
		return "RoCE-SR"
	case AR:
		return "RoCE-AR"
	}
	return "RoCE-?"
}

// OpKind is the IB Verbs operation class.
type OpKind int

const (
	// OpWrite is RDMA WRITE.
	OpWrite OpKind = iota
	// OpSend is RDMA SEND.
	OpSend
	// OpRead is RDMA READ.
	OpRead
)

func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpSend:
		return "send"
	}
	return "read"
}

// packet types on the wire.
type pktType int

const (
	ptWrite pktType = iota
	ptSend
	ptReadReq
	ptReadResp
	ptAck
	ptNak
	ptProbe
	ptProbeResp
)

// packet is one RoCE wire packet (modeled).
type packet struct {
	Type pktType
	QP   uint32
	PSN  uint32
	// Size is payload bytes (data packets).
	Size int
	// RespPSNs is, on read requests, how many response packets the
	// request solicits.
	RespPSNs uint32
	// RespBytes is the per-response-packet size for this read.
	RespBytes int
	// AckPSN is the cumulative acknowledgment (all PSNs below received).
	AckPSN uint32
	// NakPSN is the PSN the receiver wants (expected/missing).
	NakPSN uint32
	// Stream distinguishes the request stream (client→server) from the
	// response stream (server→client).
	Stream int
	// T1 is the probe transmit timestamp.
	T1 int64
}

const headerBytes = 58 // IB BTH+ETH+IP overhead, modeled

// streams
const (
	streamReq = iota
	streamResp
)

// RTTCCConfig parameterizes the probe-based congestion control.
type RTTCCConfig struct {
	// ProbeInterval is how often an RTT probe is sent while data is in
	// flight. Rate only adapts when probe responses return — the source
	// of RTTCC's slower reaction compared to per-packet delay CC.
	ProbeInterval time.Duration
	// TargetRTT is the probe-RTT threshold separating increase from
	// decrease.
	TargetRTT time.Duration
	// MinRateGbps/MaxRateGbps bound the sending rate.
	MinRateGbps, MaxRateGbps float64
	// AIGbps is the additive increase per probe below target.
	AIGbps float64
	// MD is the multiplicative decrease factor per probe above target.
	MD float64
}

// DefaultRTTCC returns RTTCC settings for a 200G NIC in a shallow fabric.
func DefaultRTTCC() RTTCCConfig {
	return RTTCCConfig{
		ProbeInterval: 50 * time.Microsecond,
		TargetRTT:     40 * time.Microsecond,
		MinRateGbps:   0.5,
		MaxRateGbps:   200,
		AIGbps:        4,
		MD:            0.85,
	}
}

// Config parameterizes a QP pair.
type Config struct {
	Mode       Mode
	MTU        int
	WindowSize int // max outstanding packets per stream
	RTO        time.Duration
	CC         RTTCCConfig
	// LinkGbps seeds the initial rate.
	LinkGbps float64
}

// DefaultConfig returns the evaluation's RoCE settings.
func DefaultConfig() Config {
	return Config{
		Mode:       GBN,
		MTU:        4096,
		WindowSize: 128,
		RTO:        500 * time.Microsecond,
		CC:         DefaultRTTCC(),
		LinkGbps:   200,
	}
}

// Node hosts RoCE QPs on one fabric host.
type Node struct {
	sim  *sim.Simulator
	host *netsim.Host
	nic  *nic.NIC
	qps  map[uint32]endpoint

	// sendFree/handleFree recycle the NIC-pipeline continuations (one per
	// packet TX and RX pass). They are pooled sim.Actions scheduled via
	// nic.ProcessAction, keeping the per-packet path allocation-free — the
	// capture closures they replace were the largest allocation source in
	// the RoCE incast figures.
	sendFree   *sendReq
	handleFree *handleReq
}

// NewNode attaches a RoCE node to a host. nicModel may be nil (no pipeline
// or cache modeling).
func NewNode(s *sim.Simulator, host *netsim.Host, nicModel *nic.NIC) *Node {
	n := &Node{sim: s, host: host, nic: nicModel, qps: make(map[uint32]endpoint)}
	host.SetHandler(n)
	return n
}

// NIC returns the node's NIC model (may be nil).
func (n *Node) NIC() *nic.NIC { return n.nic }

// HandleFrame implements netsim.Handler.
func (n *Node) HandleFrame(f *netsim.Frame) {
	p, ok := f.Payload.(*packet)
	if !ok {
		return
	}
	ep, ok := n.qps[p.QP]
	if !ok {
		return
	}
	if n.nic != nil {
		r := n.handleFree
		if r == nil {
			r = &handleReq{n: n}
		} else {
			n.handleFree = r.next
		}
		r.ep, r.p = ep, p
		n.nic.ProcessAction(p.QP, r)
		return
	}
	ep.handle(p)
}

func (n *Node) send(dst netsim.NodeID, p *packet, hash uint64) {
	size := headerBytes + p.Size
	if n.nic == nil {
		n.emitFrame(dst, p, hash, size)
		return
	}
	r := n.sendFree
	if r == nil {
		r = &sendReq{n: n}
	} else {
		n.sendFree = r.next
	}
	r.dst, r.p, r.hash, r.size = dst, p, hash, size
	n.nic.ProcessAction(p.QP, r)
}

func (n *Node) emitFrame(dst netsim.NodeID, p *packet, hash uint64, size int) {
	f := n.host.NewFrame()
	f.Dst = dst
	f.FlowHash = hash
	f.Size = size
	f.Payload = p
	n.host.Send(f)
}

// sendReq is the pooled TX pipeline pass: emit one frame once the NIC has
// processed the packet.
type sendReq struct {
	n    *Node
	dst  netsim.NodeID
	hash uint64
	size int
	p    *packet
	next *sendReq
}

func (r *sendReq) RunAction() {
	n, dst, p, hash, size := r.n, r.dst, r.p, r.hash, r.size
	r.p = nil
	r.next = n.sendFree
	n.sendFree = r
	n.emitFrame(dst, p, hash, size)
}

// handleReq is the pooled RX pipeline pass: deliver one packet to its QP
// endpoint once the NIC has processed it. The request is released before
// the handler runs — handling may send, and sends may need the pool.
type handleReq struct {
	n    *Node
	ep   endpoint
	p    *packet
	next *handleReq
}

func (r *handleReq) RunAction() {
	n, ep, p := r.n, r.ep, r.p
	r.ep, r.p = nil, nil
	r.next = n.handleFree
	n.handleFree = r
	ep.handle(p)
}
