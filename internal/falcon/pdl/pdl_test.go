package pdl

import (
	"testing"
	"time"

	"falcon/internal/falcon/fae"
	"falcon/internal/falcon/wire"
	"falcon/internal/sim"
)

// pair wires two connection PDLs back-to-back through a configurable
// channel, each with its own FAE engine — a minimal two-NIC testbed.
type pair struct {
	s    *sim.Simulator
	a, b *Conn

	latency time.Duration
	// dropAB/dropBA decide per-packet drops; nil means no drops.
	dropAB func(p *wire.Packet) bool
	dropBA func(p *wire.Packet) bool
	// delayAB adds extra one-way delay per packet (reordering injection).
	delayAB func(p *wire.Packet) time.Duration

	deliveredAtB []*wire.Packet
	deliveredAtA []*wire.Packet
	ackedAtA     int
	completedAtA []uint64
	nacksAtA     []*wire.Packet

	verdictAtB func(p *wire.Packet) DeliverVerdict

	occupancyB float64
	rsnB       uint64
}

func newPair(t *testing.T, cfg Config) *pair {
	t.Helper()
	p := &pair{s: sim.New(5), latency: 5 * time.Microsecond}

	engCfg := fae.DefaultConfig()
	var engA, engB *fae.Engine

	clone := func(pkt *wire.Packet) *wire.Packet {
		cp := *pkt
		return &cp
	}

	p.a = NewConn(p.s, 1, cfg, Callbacks{
		Send: func(pkt *wire.Packet) {
			cp := clone(pkt)
			d := p.latency
			if p.delayAB != nil {
				d += p.delayAB(cp)
			}
			if p.dropAB != nil && p.dropAB(cp) {
				return
			}
			p.s.After(d, func() { p.b.HandlePacket(cp, 1) })
		},
		Deliver: func(pkt *wire.Packet) DeliverVerdict {
			p.deliveredAtA = append(p.deliveredAtA, pkt)
			return DeliverVerdict{}
		},
		PacketAcked: func(space wire.Space, psn uint32, rsn uint64, typ wire.Type) { p.ackedAtA++ },
		Completed:   func(rsn uint64) { p.completedAtA = append(p.completedAtA, rsn) },
		NackReceived: func(pkt *wire.Packet) {
			p.nacksAtA = append(p.nacksAtA, pkt)
		},
		PostEvent:      func(ev fae.Event) { engA.Post(ev) },
		RxBufOccupancy: func() float64 { return 0 },
		CompletedRSN:   func() uint64 { return 0 },
	})
	p.b = NewConn(p.s, 1, cfg, Callbacks{
		Send: func(pkt *wire.Packet) {
			cp := clone(pkt)
			if p.dropBA != nil && p.dropBA(cp) {
				return
			}
			p.s.After(p.latency, func() { p.a.HandlePacket(cp, 1) })
		},
		Deliver: func(pkt *wire.Packet) DeliverVerdict {
			if p.verdictAtB != nil {
				v := p.verdictAtB(pkt)
				if v.Kind == DeliverAccept {
					p.deliveredAtB = append(p.deliveredAtB, pkt)
				}
				return v
			}
			p.deliveredAtB = append(p.deliveredAtB, pkt)
			return DeliverVerdict{}
		},
		PostEvent:      func(ev fae.Event) { engB.Post(ev) },
		RxBufOccupancy: func() float64 { return p.occupancyB },
		CompletedRSN:   func() uint64 { return p.rsnB },
	})

	engA = fae.New(p.s, engCfg, func(r fae.Response) { p.a.ApplyResponse(r) })
	engB = fae.New(p.s, engCfg, func(r fae.Response) { p.b.ApplyResponse(r) })
	p.a.SetFlowLabels(engA.RegisterConn(1, cfg.NumFlows))
	p.b.SetFlowLabels(engB.RegisterConn(1, cfg.NumFlows))
	return p
}

func dataPacket(rsn uint64, typ wire.Type, size uint32) *wire.Packet {
	return &wire.Packet{Type: typ, RSN: rsn, Length: size}
}

func TestBasicReliableDelivery(t *testing.T) {
	p := newPair(t, DefaultConfig())
	const n = 50
	for i := 0; i < n; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(p.deliveredAtB) != n {
		t.Fatalf("delivered %d of %d", len(p.deliveredAtB), n)
	}
	if p.a.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain", p.a.Outstanding())
	}
	if p.ackedAtA != n {
		t.Fatalf("acked %d of %d", p.ackedAtA, n)
	}
	if p.a.Stats.DataRetransmits != 0 {
		t.Fatalf("unexpected retransmits: %d", p.a.Stats.DataRetransmits)
	}
}

func TestAckCoalescingReducesAcks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AckCoalesceCount = 4
	cfg.ARInterval = 0
	p := newPair(t, cfg)
	const n = 64
	for i := 0; i < n; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(p.deliveredAtB) != n {
		t.Fatalf("delivered %d", len(p.deliveredAtB))
	}
	if p.b.Stats.AcksSent >= n {
		t.Fatalf("acks %d not coalesced for %d packets", p.b.Stats.AcksSent, n)
	}
}

func TestLossRecoveryWithRack(t *testing.T) {
	p := newPair(t, DefaultConfig())
	// Drop every 7th first-transmission data packet.
	sent := 0
	p.dropAB = func(pkt *wire.Packet) bool {
		if !pkt.Type.IsData() || pkt.Flags&wire.FlagRetransmit != 0 {
			return false
		}
		sent++
		return sent%7 == 0
	}
	const n = 100
	for i := 0; i < n; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(p.deliveredAtB) != n {
		t.Fatalf("delivered %d of %d despite retransmission", len(p.deliveredAtB), n)
	}
	if p.a.Stats.DataRetransmits == 0 {
		t.Fatal("expected retransmissions")
	}
	if p.a.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", p.a.Outstanding())
	}
}

func TestTailLossProbeRecoversFinalPacket(t *testing.T) {
	p := newPair(t, DefaultConfig())
	dropped := false
	p.dropAB = func(pkt *wire.Packet) bool {
		// Drop the very last data packet's first transmission.
		if pkt.Type.IsData() && pkt.RSN == 9 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	for i := 0; i < 10; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(p.deliveredAtB) != 10 {
		t.Fatalf("delivered %d of 10", len(p.deliveredAtB))
	}
	if p.a.Stats.TLPProbes == 0 {
		t.Fatal("tail loss should be recovered by a TLP probe")
	}
	if p.a.Stats.RTOs != 0 {
		t.Fatalf("tail loss fell back to RTO (%d), TLP should fire first", p.a.Stats.RTOs)
	}
}

func TestReorderingDoesNotCauseSpuriousRetx(t *testing.T) {
	cfg := DefaultConfig()
	p := newPair(t, cfg)
	// Delay every 5th packet by 8us: reordering within the RACK window.
	i := 0
	p.delayAB = func(pkt *wire.Packet) time.Duration {
		if !pkt.Type.IsData() {
			return 0
		}
		i++
		if i%5 == 0 {
			return 8 * time.Microsecond
		}
		return 0
	}
	const n = 100
	for k := 0; k < n; k++ {
		p.a.SendPacket(dataPacket(uint64(k), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(p.deliveredAtB) != n {
		t.Fatalf("delivered %d", len(p.deliveredAtB))
	}
	// RACK's reo-window adaptation needs to observe a few spurious
	// retransmissions before it widens past the injected delay; after
	// that, reordering must cause no further retransmissions. 20 packets
	// are delayed, so anything close to 20 means no adaptation.
	if p.a.Stats.DataRetransmits > 5 {
		t.Fatalf("RACK should tolerate mild reordering; retransmits = %d", p.a.Stats.DataRetransmits)
	}
}

func TestOOODistanceSpuriousUnderReordering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Recovery = RecoveryOOODistance
	cfg.OOODistance = 3
	p := newPair(t, cfg)
	i := 0
	p.delayAB = func(pkt *wire.Packet) time.Duration {
		if !pkt.Type.IsData() {
			return 0
		}
		i++
		if i%5 == 0 {
			return 25 * time.Microsecond
		}
		return 0
	}
	const n = 100
	for k := 0; k < n; k++ {
		p.a.SendPacket(dataPacket(uint64(k), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(p.deliveredAtB) != n {
		t.Fatalf("delivered %d", len(p.deliveredAtB))
	}
	if p.a.Stats.DataRetransmits == 0 {
		t.Fatal("OOO-distance should retransmit spuriously under reordering (the Fig 11b contrast)")
	}
}

func TestSequenceWindowNeverExceeded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowSize = 16
	p := newPair(t, cfg)
	maxOut := 0
	p.dropAB = func(pkt *wire.Packet) bool {
		if out := p.a.Outstanding(); out > maxOut {
			maxOut = out
		}
		return false
	}
	for i := 0; i < 200; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if maxOut > 16 {
		t.Fatalf("outstanding reached %d with window 16", maxOut)
	}
	if len(p.deliveredAtB) != 200 {
		t.Fatalf("delivered %d", len(p.deliveredAtB))
	}
}

func TestMultipathSpreadsAcrossFlows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumFlows = 4
	p := newPair(t, cfg)
	flowsSeen := map[int]int{}
	p.dropAB = func(pkt *wire.Packet) bool {
		if pkt.Type.IsData() {
			flowsSeen[pkt.FlowLabel.FlowIndex()]++
		}
		return false
	}
	for i := 0; i < 200; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(flowsSeen) < 3 {
		t.Fatalf("packets used %d flows, want spread over ~4: %v", len(flowsSeen), flowsSeen)
	}
}

func TestRoundRobinPolicyUsesAllFlows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumFlows = 4
	cfg.Policy = PolicyRoundRobin
	p := newPair(t, cfg)
	flowsSeen := map[int]int{}
	p.dropAB = func(pkt *wire.Packet) bool {
		if pkt.Type.IsData() {
			flowsSeen[pkt.FlowLabel.FlowIndex()]++
		}
		return false
	}
	for i := 0; i < 100; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(flowsSeen) != 4 {
		t.Fatalf("round robin used %d flows: %v", len(flowsSeen), flowsSeen)
	}
}

func TestPullResponseUsesResponseSpace(t *testing.T) {
	p := newPair(t, DefaultConfig())
	seen := map[wire.Space]int{}
	p.dropAB = func(pkt *wire.Packet) bool {
		if pkt.Type.IsData() {
			seen[pkt.Space]++
		}
		return false
	}
	p.a.SendPacket(dataPacket(1, wire.TypePullRequest, 64))
	p.a.SendPacket(dataPacket(2, wire.TypePullResponse, 4096))
	p.s.Run()
	if seen[wire.SpaceRequest] != 1 || seen[wire.SpaceResponse] != 1 {
		t.Fatalf("space usage: %v", seen)
	}
	if len(p.deliveredAtB) != 2 {
		t.Fatalf("delivered %d", len(p.deliveredAtB))
	}
}

func TestResourceNackTriggersDelayedRetransmit(t *testing.T) {
	p := newPair(t, DefaultConfig())
	refusals := 0
	p.verdictAtB = func(pkt *wire.Packet) DeliverVerdict {
		if refusals < 3 {
			refusals++
			return DeliverVerdict{Kind: DeliverNoResources}
		}
		return DeliverVerdict{Kind: DeliverAccept}
	}
	p.a.SendPacket(dataPacket(1, wire.TypePushData, 4096))
	p.s.Run()
	if len(p.deliveredAtB) != 1 {
		t.Fatalf("delivered %d after resource NACKs", len(p.deliveredAtB))
	}
	if p.b.Stats.NacksSent == 0 || p.a.Stats.NacksReceived == 0 {
		t.Fatal("resource NACKs not exchanged")
	}
	if p.a.Outstanding() != 0 {
		t.Fatal("packet still outstanding")
	}
}

func TestRNRNackReachesTL(t *testing.T) {
	p := newPair(t, DefaultConfig())
	p.verdictAtB = func(pkt *wire.Packet) DeliverVerdict {
		return DeliverVerdict{Kind: DeliverRNR, RetryDelay: 100 * time.Microsecond}
	}
	p.a.SendPacket(dataPacket(7, wire.TypePushData, 4096))
	p.s.Run()
	if len(p.nacksAtA) != 1 {
		t.Fatalf("TL received %d NACKs, want 1", len(p.nacksAtA))
	}
	n := p.nacksAtA[0]
	if n.NackCode != wire.NackRNR || n.RSN != 7 {
		t.Fatalf("NACK = %+v", n)
	}
	if n.RetryDelayNs != uint32(100*time.Microsecond) {
		t.Fatalf("retry delay = %d", n.RetryDelayNs)
	}
	// The PDL context is freed: nothing outstanding, no RTO spin.
	if p.a.Outstanding() != 0 {
		t.Fatal("RNR-nacked packet still outstanding")
	}
}

func TestCIENackReachesTL(t *testing.T) {
	p := newPair(t, DefaultConfig())
	p.verdictAtB = func(pkt *wire.Packet) DeliverVerdict {
		return DeliverVerdict{Kind: DeliverCIE}
	}
	p.a.SendPacket(dataPacket(9, wire.TypePushData, 4096))
	p.s.Run()
	if len(p.nacksAtA) != 1 || p.nacksAtA[0].NackCode != wire.NackCIE {
		t.Fatalf("CIE NACK not delivered: %+v", p.nacksAtA)
	}
	if p.a.Outstanding() != 0 {
		t.Fatal("CIE-nacked packet still outstanding")
	}
}

func TestCompletedRSNPropagates(t *testing.T) {
	p := newPair(t, DefaultConfig())
	p.rsnB = 42
	p.a.SendPacket(dataPacket(1, wire.TypePushData, 4096))
	p.s.Run()
	if len(p.completedAtA) == 0 {
		t.Fatal("CompletedRSN never delivered")
	}
	if p.completedAtA[len(p.completedAtA)-1] != 42 {
		t.Fatalf("completed = %v", p.completedAtA)
	}
}

func TestDuplicateDeliveryIsAckedNotRedelivered(t *testing.T) {
	p := newPair(t, DefaultConfig())
	// Duplicate every data packet.
	p.delayAB = func(pkt *wire.Packet) time.Duration { return 0 }
	origSend := p.a.cb.Send
	p.a.cb.Send = func(pkt *wire.Packet) {
		origSend(pkt)
		if pkt.Type.IsData() {
			origSend(pkt)
		}
	}
	for i := 0; i < 20; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(p.deliveredAtB) != 20 {
		t.Fatalf("TL saw %d deliveries, want 20 (no duplicates)", len(p.deliveredAtB))
	}
	if p.b.Stats.Duplicates != 20 {
		t.Fatalf("duplicates detected = %d, want 20", p.b.Stats.Duplicates)
	}
}

func TestHeavyLossEventuallyDelivers(t *testing.T) {
	p := newPair(t, DefaultConfig())
	n := 0
	p.dropAB = func(pkt *wire.Packet) bool {
		if !pkt.Type.IsData() {
			return false
		}
		n++
		return n%3 == 0 // 33% loss, including retransmissions
	}
	const total = 60
	for i := 0; i < total; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(p.deliveredAtB) != total {
		t.Fatalf("delivered %d of %d under 33%% loss", len(p.deliveredAtB), total)
	}
}

func TestLostAcksRecoveredByTLP(t *testing.T) {
	p := newPair(t, DefaultConfig())
	acks := 0
	p.dropBA = func(pkt *wire.Packet) bool {
		if pkt.Type == wire.TypeAck {
			acks++
			return acks <= 3 // drop the first 3 ACKs
		}
		return false
	}
	for i := 0; i < 10; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if len(p.deliveredAtB) != 10 || p.a.Outstanding() != 0 {
		t.Fatalf("delivered %d, outstanding %d", len(p.deliveredAtB), p.a.Outstanding())
	}
}

func TestCongestionShrinksEffectiveWindow(t *testing.T) {
	p := newPair(t, DefaultConfig())
	before := p.a.EffectiveWindow()
	// Inflate the path latency to 10x the Swift target.
	p.latency = 300 * time.Microsecond
	for i := 0; i < 64; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if p.a.EffectiveWindow() >= before {
		t.Fatalf("window %v did not shrink under congestion (was %v)", p.a.EffectiveWindow(), before)
	}
}

func TestNcwndRespondsToOccupancy(t *testing.T) {
	p := newPair(t, DefaultConfig())
	p.occupancyB = 0.95
	for i := 0; i < 64; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if p.a.Ncwnd() >= float64(DefaultConfig().WindowSize) {
		t.Fatalf("ncwnd %v did not shrink under RX occupancy", p.a.Ncwnd())
	}
}

func TestStatsAccounting(t *testing.T) {
	p := newPair(t, DefaultConfig())
	for i := 0; i < 25; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if p.a.Stats.DataSent != 25 {
		t.Fatalf("DataSent = %d", p.a.Stats.DataSent)
	}
	if p.b.Stats.DeliveredToTL != 25 {
		t.Fatalf("DeliveredToTL = %d", p.b.Stats.DeliveredToTL)
	}
	if p.b.Stats.AcksSent == 0 || p.a.Stats.AcksReceived == 0 {
		t.Fatal("no ACK accounting")
	}
}

func TestSendPacketPanicsOnNonData(t *testing.T) {
	p := newPair(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ACK through SendPacket")
		}
	}()
	p.a.SendPacket(&wire.Packet{Type: wire.TypeAck})
}

func TestConnectionFailsAfterRTOBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConsecutiveRTOs = 4
	p := newPair(t, cfg)
	p.dropAB = func(pkt *wire.Packet) bool { return true } // black hole
	var failedErr error
	p.a.cb.Failed = func(err error) { failedErr = err }
	p.a.SendPacket(dataPacket(1, wire.TypePushData, 4096))
	p.s.Run()
	if failedErr == nil {
		t.Fatal("connection never failed against a black hole")
	}
	if !p.a.Failed() {
		t.Fatal("Failed() should report true")
	}
	if p.a.Stats.RTOs < 4 {
		t.Fatalf("RTOs = %d, want >= budget", p.a.Stats.RTOs)
	}
	// Subsequent sends and arrivals are ignored without panic.
	p.a.SendPacket(dataPacket(2, wire.TypePushData, 4096))
	p.a.HandlePacket(&wire.Packet{Type: wire.TypeAck}, 1)
	p.s.Run()
}

func TestRTOBudgetResetsOnProgress(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConsecutiveRTOs = 4
	p := newPair(t, cfg)
	// Drop the first 3 transmissions of each packet, then let through:
	// RTOs occur but progress resets the budget, so no failure.
	attempts := map[uint64]int{}
	p.dropAB = func(pkt *wire.Packet) bool {
		if !pkt.Type.IsData() {
			return false
		}
		attempts[pkt.RSN]++
		return attempts[pkt.RSN] <= 3
	}
	failed := false
	p.a.cb.Failed = func(error) { failed = true }
	for i := 0; i < 5; i++ {
		p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
	}
	p.s.Run()
	if failed {
		t.Fatal("connection failed despite eventual progress")
	}
	if len(p.deliveredAtB) != 5 {
		t.Fatalf("delivered %d of 5", len(p.deliveredAtB))
	}
}

// TestPropertyExactlyOnceUnderChaos drives the connection through a hostile
// channel — random drops, reordering and duplication in both directions —
// and asserts the end-to-end invariants: every transaction is delivered to
// the receiving TL exactly once, and the sender's scoreboard drains.
func TestPropertyExactlyOnceUnderChaos(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		cfg := DefaultConfig()
		cfg.MaxConsecutiveRTOs = 0 // never give up; the channel is lossy but alive
		p := newPair(t, cfg)
		rng := p.s.Rand()
		chaos := func(orig func(*wire.Packet) bool) func(*wire.Packet) bool {
			return func(pkt *wire.Packet) bool {
				return rng.Float64() < 0.15 // 15% loss each way
			}
		}
		p.dropAB = chaos(nil)
		p.dropBA = chaos(nil)
		p.delayAB = func(pkt *wire.Packet) time.Duration {
			if rng.Float64() < 0.2 {
				return time.Duration(rng.Intn(30000)) // up to 30us extra
			}
			return 0
		}
		// Duplicate some transmissions.
		origSend := p.a.cb.Send
		p.a.cb.Send = func(pkt *wire.Packet) {
			origSend(pkt)
			if pkt.Type.IsData() && rng.Float64() < 0.1 {
				origSend(pkt)
			}
		}
		const n = 120
		for i := 0; i < n; i++ {
			p.a.SendPacket(dataPacket(uint64(i), wire.TypePushData, 4096))
		}
		p.s.Run()
		if p.a.Outstanding() != 0 {
			t.Fatalf("seed %d: outstanding = %d after drain", seed, p.a.Outstanding())
		}
		seen := map[uint64]int{}
		for _, pkt := range p.deliveredAtB {
			seen[pkt.RSN]++
		}
		if len(seen) != n {
			t.Fatalf("seed %d: delivered %d distinct RSNs of %d", seed, len(seen), n)
		}
		for rsn, count := range seen {
			if count != 1 {
				t.Fatalf("seed %d: RSN %d delivered %d times", seed, rsn, count)
			}
		}
	}
}
