// Package tl implements Falcon's Transaction Layer (§4.4–§4.6): the
// request-response transaction interface offered to ULPs, on-NIC resource
// admission with deadlock-free carving, RSN-based ordering, RNR/CIE error
// semantics, and dynamic-threshold connection isolation.
package tl

import (
	"errors"
	"fmt"
)

// PoolKind identifies one of the four resource sub-pools of Figure 6. The
// carving principles (§4.5): TX and RX are split so either direction can
// always progress, and requests and responses are split so responses are
// never starved by outstanding requests.
type PoolKind int

const (
	// PoolTxReq holds contexts/buffers for requests this NIC transmits.
	PoolTxReq PoolKind = iota
	// PoolTxResp holds resources for responses this NIC transmits.
	PoolTxResp
	// PoolRxReq holds resources for requests arriving from the network.
	PoolRxReq
	// PoolRxResp holds resources for responses arriving from the
	// network; reserved at request-initiation time so head-of-line
	// responses always land (§4.5 "Resource Lifecycle").
	PoolRxResp
	numPools
)

func (k PoolKind) String() string {
	switch k {
	case PoolTxReq:
		return "tx-req"
	case PoolTxResp:
		return "tx-resp"
	case PoolRxReq:
		return "rx-req"
	case PoolRxResp:
		return "rx-resp"
	}
	return fmt.Sprintf("PoolKind(%d)", int(k))
}

// PoolConfig sizes one sub-pool.
type PoolConfig struct {
	Contexts int // fixed-size per-packet metadata slots
	Bytes    int // buffer bytes for payloads / SGLs
}

// ResourceConfig sizes all four sub-pools.
type ResourceConfig struct {
	Pools [numPools]PoolConfig
	// HoLAdmissionThreshold is the RxReq occupancy fraction beyond which
	// only head-of-line requests are admitted (§4.5).
	HoLAdmissionThreshold float64
}

// DefaultResourceConfig sizes pools for a 200G NIC with ~50us RTTs. The RX
// pools hold O(BDP) = 1.25MB of on-chip buffering (§5.2); the TX pools are
// larger in bytes because transmit payloads stay in host memory (the pool
// bounds scatter-gather state, not packet data).
func DefaultResourceConfig() ResourceConfig {
	tx := PoolConfig{Contexts: 4096, Bytes: 8 << 20}
	rx := PoolConfig{Contexts: 4096, Bytes: 1280 << 10}
	return ResourceConfig{
		Pools: [numPools]PoolConfig{
			PoolTxReq:  tx,
			PoolTxResp: tx,
			PoolRxReq:  rx,
			PoolRxResp: rx,
		},
		HoLAdmissionThreshold: 0.5,
	}
}

// ErrNoResources reports pool exhaustion at admission.
var ErrNoResources = errors.New("tl: resource pool exhausted")

type pool struct {
	cfg          PoolConfig
	usedContexts int
	usedBytes    int
	// Per-connection holdings within this pool (DT isolation inputs).
	connCtx   map[uint32]int
	connBytes map[uint32]int
}

func (p *pool) tryReserve(bytes int) bool {
	if p.usedContexts+1 > p.cfg.Contexts || p.usedBytes+bytes > p.cfg.Bytes {
		return false
	}
	p.usedContexts++
	p.usedBytes += bytes
	return true
}

func (p *pool) release(bytes int) {
	p.usedContexts--
	p.usedBytes -= bytes
	if p.usedContexts < 0 || p.usedBytes < 0 {
		panic(fmt.Sprintf("tl: pool released below zero (ctx=%d bytes=%d)", p.usedContexts, p.usedBytes))
	}
}

func (p *pool) occupancy() float64 {
	if p.cfg.Contexts == 0 {
		return 1
	}
	ctxFrac := float64(p.usedContexts) / float64(p.cfg.Contexts)
	byteFrac := 0.0
	if p.cfg.Bytes > 0 {
		byteFrac = float64(p.usedBytes) / float64(p.cfg.Bytes)
	}
	if byteFrac > ctxFrac {
		return byteFrac
	}
	return ctxFrac
}

// Resources is the NIC-wide resource manager shared by all connections on
// one Falcon instance.
type Resources struct {
	cfg   ResourceConfig
	pools [numPools]*pool

	// perConn and perConnBytes track contexts and buffer bytes held per
	// connection, the inputs to dynamic-threshold isolation (§4.6).
	perConn      map[uint32]int
	perConnBytes map[uint32]int

	// onRelease subscribers are notified when resources free up
	// (the Xon edge for backpressured ULPs).
	onRelease []func()
}

// NewResources builds the resource manager.
func NewResources(cfg ResourceConfig) *Resources {
	r := &Resources{cfg: cfg, perConn: make(map[uint32]int), perConnBytes: make(map[uint32]int)}
	for i := range r.pools {
		r.pools[i] = &pool{
			cfg:       cfg.Pools[i],
			connCtx:   make(map[uint32]int),
			connBytes: make(map[uint32]int),
		}
	}
	return r
}

// Reserve takes one context plus bytes from the pool on behalf of conn.
func (r *Resources) Reserve(k PoolKind, conn uint32, bytes int) error {
	p := r.pools[k]
	if !p.tryReserve(bytes) {
		return fmt.Errorf("%w: %v", ErrNoResources, k)
	}
	p.connCtx[conn]++
	p.connBytes[conn] += bytes
	r.perConn[conn]++
	r.perConnBytes[conn] += bytes
	return nil
}

// Release returns one context plus bytes to the pool.
func (r *Resources) Release(k PoolKind, conn uint32, bytes int) {
	p := r.pools[k]
	p.release(bytes)
	if n := p.connCtx[conn]; n > 1 {
		p.connCtx[conn] = n - 1
	} else {
		delete(p.connCtx, conn)
	}
	if b := p.connBytes[conn]; b > bytes {
		p.connBytes[conn] = b - bytes
	} else {
		delete(p.connBytes, conn)
	}
	if n := r.perConn[conn]; n > 1 {
		r.perConn[conn] = n - 1
	} else {
		delete(r.perConn, conn)
	}
	if b := r.perConnBytes[conn]; b > bytes {
		r.perConnBytes[conn] = b - bytes
	} else {
		delete(r.perConnBytes, conn)
	}
	for _, fn := range r.onRelease {
		fn()
	}
}

// Occupancy returns the pool's max(context, byte) occupancy fraction.
func (r *Resources) Occupancy(k PoolKind) float64 { return r.pools[k].occupancy() }

// RxOccupancy is the NIC congestion signal carried in ACKs: occupancy of
// the receive-side pools.
func (r *Resources) RxOccupancy() float64 {
	rq := r.pools[PoolRxReq].occupancy()
	rr := r.pools[PoolRxResp].occupancy()
	if rr > rq {
		return rr
	}
	return rq
}

// FreeContexts returns the total free contexts across all pools, the
// denominator of the DT threshold.
func (r *Resources) FreeContexts() int {
	free := 0
	for _, p := range r.pools {
		free += p.cfg.Contexts - p.usedContexts
	}
	return free
}

// ConnUsage returns the contexts currently held by conn.
func (r *Resources) ConnUsage(conn uint32) int { return r.perConn[conn] }

// ConnBytes returns the buffer bytes currently held by conn.
func (r *Resources) ConnBytes(conn uint32) int { return r.perConnBytes[conn] }

// OverDTThreshold applies the dynamic-threshold rule per pool (§4.6): the
// connection is over-threshold if in ANY pool its holdings exceed
// α·(free resources of that pool), in contexts or bytes. Per-pool
// evaluation matters: one exhausted pool must not be masked by slack in
// the others.
func (r *Resources) OverDTThreshold(conn uint32, alpha float64) bool {
	for _, p := range r.pools {
		freeCtx := float64(p.cfg.Contexts - p.usedContexts)
		if float64(p.connCtx[conn]) > alpha*freeCtx {
			return true
		}
		freeBytes := float64(p.cfg.Bytes - p.usedBytes)
		if float64(p.connBytes[conn]) > alpha*freeBytes {
			return true
		}
	}
	return false
}

// AdmitRxRequest applies the RxReq admission rule: below the occupancy
// threshold, all requests are admitted; beyond it, only head-of-line
// requests (§4.5), preventing non-HoL requests from occupying everything
// and deadlocking ordered connections.
func (r *Resources) AdmitRxRequest(conn uint32, bytes int, headOfLine bool) error {
	if r.pools[PoolRxReq].occupancy() >= r.cfg.HoLAdmissionThreshold && !headOfLine {
		return fmt.Errorf("%w: rx-req beyond HoL threshold", ErrNoResources)
	}
	return r.Reserve(PoolRxReq, conn, bytes)
}

// Subscribe registers a callback invoked whenever resources are released.
func (r *Resources) Subscribe(fn func()) { r.onRelease = append(r.onRelease, fn) }
