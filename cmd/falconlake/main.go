// falconlake is the CLI over the telemetry lake (internal/lake): it
// ingests the deterministic artifacts falconbench emits into a compact
// columnar index, serves queries over it, and diffs runs cell-by-cell
// to flag behavior and performance regressions.
//
// Usage:
//
//	falconlake ingest -out lake.idx [run=]path...
//	    Ingest artifacts into a new index file. Each argument is a
//	    falconmetrics/v1 JSON, a falconbench/v1 JSON, a series CSV, or
//	    a directory of series CSVs; an optional "run=" prefix names
//	    the run (default: derived from the file name, so
//	    BENCH_pr3_metrics.json lands in run "pr3"). Repeating a run
//	    name merges artifacts into one run. Ingestion is
//	    deterministic: the same artifacts produce a byte-identical
//	    index file.
//
//	falconlake list -index lake.idx
//	    Show the ingested runs with their schemas, cell and series
//	    counts.
//
//	falconlake query -index lake.idx -run pr3 [-summary] pattern
//	    Print cells matching a segment-glob pattern ("*" = one
//	    segment, "**" = any number), sorted by path; -summary prints
//	    count/mean/min/max/p50/p99 over the selection instead.
//
//	falconlake query -index lake.idx -run pr3 -serie fig10_write_drop1 \
//	    -col conn/fcwnd [-from ns] [-to ns] [-summary]
//	    Print (t_ns, value) rows of one time-series column, or its
//	    summary.
//
//	falconlake watch [-tol 0.05] [-perftol 0.25] [-json] [-keep path] \
//	    baseline.json
//	    Regenerate the baseline's figures in-process (same figure set,
//	    same quick flag, serial instrumented run) and diff the fresh
//	    artifact against the committed baseline. Exits 1 when findings
//	    exist — the one-command drift check for a working tree:
//	    `falconlake watch BENCH_pr8_metrics.json` answers "did my edit
//	    change any committed metric?" without leaving temp files
//	    around. -keep writes the regenerated artifact to a path for
//	    inspection (or for promoting it to the new baseline).
//
//	falconlake trend -index lake.idx [-tol 0.05] [-perftol 0.10] \
//	    [-json] run1 run2 run3...
//	    Scan three or more runs (oldest first) for metrics drifting
//	    monotonically across the whole sequence. Pairwise diffing
//	    forgives a slow creep — a perf metric regressing 8% per run
//	    never trips the 25% band — so the trend scan flags monotonic
//	    chains whose cumulative first-to-last drift exceeds the (much
//	    tighter) trend tolerances: timing-class beyond -tol, perf-class
//	    beyond -perftol in the metric's worse direction. Exact-class
//	    cells are skipped (any change there is already a diff finding).
//	    The arguments may also all be artifact paths, ingested in order
//	    as r1, r2, ... Exits 1 when drifts exist.
//
//	falconlake diff -index lake.idx [-tol 0.05] [-perftol 0.25] \
//	    [-json] runA runB
//	    Compare runB against baseline runA. Exact-class metrics must
//	    match bit-for-bit; timing-class metrics get the -tol band;
//	    perf metrics are flagged only for regressions beyond
//	    -perftol. Exits 1 when findings exist, so the diff gates CI
//	    directly (`make lakecheck` asserts a self-diff is empty).
//	    The two arguments may also be artifact paths, which are
//	    ingested into an ephemeral index ("a" and "b") and compared
//	    without touching -index.
//
// See METRICS.md for the metric-name grammar and the per-metric
// determinism classes the differ applies, and EXPERIMENTS.md (PR7
// appendix) for the regression-check workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"falcon/internal/lake"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "ingest":
		cmdIngest(os.Args[2:])
	case "list":
		cmdList(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "trend":
		cmdTrend(os.Args[2:])
	case "watch":
		cmdWatch(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "falconlake: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `falconlake — telemetry lake over falconbench artifacts

  falconlake ingest -out lake.idx [run=]path...
  falconlake list   -index lake.idx
  falconlake query  -index lake.idx -run NAME [-summary] PATTERN
  falconlake query  -index lake.idx -run NAME -serie NAME -col COL [-from NS] [-to NS] [-summary]
  falconlake diff   -index lake.idx [-tol F] [-perftol F] [-json] RUN_A RUN_B
  falconlake diff   [-tol F] [-perftol F] [-json] ARTIFACT_A ARTIFACT_B
  falconlake trend  -index lake.idx [-tol F] [-perftol F] [-json] RUN1 RUN2 RUN3...
  falconlake trend  [-tol F] [-perftol F] [-json] ARTIFACT1 ARTIFACT2 ARTIFACT3...
  falconlake watch  [-tol F] [-perftol F] [-json] [-keep PATH] BASELINE.json

See 'go doc falcon/cmd/falconlake' and METRICS.md for details.
`)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "falconlake: %v\n", err)
	os.Exit(1)
}

func cmdIngest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	out := fs.String("out", "", "output index file (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "falconlake ingest: need -out and at least one artifact path")
		os.Exit(2)
	}
	b := lake.NewBuilder()
	for _, arg := range fs.Args() {
		run, path := splitRunArg(arg)
		if err := b.IngestFile(run, path); err != nil {
			fatal(err)
		}
	}
	ix, err := b.Seal()
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	werr := ix.Encode(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fatal(werr)
	}
	for _, r := range ix.Runs() {
		fmt.Printf("run %s: %s\n", r.Name, strings.Join(r.Sources, ", "))
	}
	fmt.Printf("wrote %s: %d runs, %d cells\n", *out, len(ix.Runs()), ix.NumCells())
}

// splitRunArg splits an optional "run=" prefix off an artifact path.
// Anything containing a path separator or a dot before the '=' is
// treated as a bare path (so "dir=x/file.json" names a run while
// "./weird=name.json" does not).
func splitRunArg(arg string) (run, path string) {
	if i := strings.IndexByte(arg, '='); i > 0 {
		prefix := arg[:i]
		if !strings.ContainsAny(prefix, "/\\.") {
			return prefix, arg[i+1:]
		}
	}
	return lake.DeriveRunName(arg), arg
}

func cmdList(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	index := fs.String("index", "", "lake index file (required)")
	fs.Parse(args)
	if *index == "" {
		fmt.Fprintln(os.Stderr, "falconlake list: need -index")
		os.Exit(2)
	}
	ix, err := lake.ReadFile(*index)
	if err != nil {
		fatal(err)
	}
	for _, r := range ix.Runs() {
		cells := 0
		ix.EachCell(r.Name, func(string, float64) { cells++ })
		series := ix.SeriesNames(r.Name)
		quick := ""
		if r.Quick {
			quick = " quick"
		}
		fmt.Printf("%-8s %6d cells  %d series%s  [%s]  %s\n",
			r.Name, cells, len(series), quick,
			strings.Join(r.Schemas, " "), strings.Join(r.Sources, ", "))
	}
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	index := fs.String("index", "", "lake index file (required)")
	run := fs.String("run", "", "run to query (required; see 'falconlake list')")
	summary := fs.Bool("summary", false, "print count/mean/min/max/p50/p99 over the selection")
	serie := fs.String("serie", "", "query a time series of this name instead of metric cells")
	col := fs.String("col", "", "series column (with -serie)")
	from := fs.Int64("from", 0, "series slice start, virtual ns (with -serie)")
	to := fs.Int64("to", -1, "series slice end, virtual ns, -1 = end (with -serie)")
	fs.Parse(args)
	if *index == "" || *run == "" {
		fmt.Fprintln(os.Stderr, "falconlake query: need -index and -run")
		os.Exit(2)
	}
	ix, err := lake.ReadFile(*index)
	if err != nil {
		fatal(err)
	}
	q := lake.NewQuerier(ix)

	if *serie != "" {
		if *col == "" {
			// No column: list the series' columns.
			sv, ok := ix.FindSeries(*run, *serie)
			if !ok {
				fatal(fmt.Errorf("series %q not in run %q (have: %s)",
					*serie, *run, strings.Join(ix.SeriesNames(*run), ", ")))
			}
			fmt.Printf("series %s: %d rows, columns: %s\n",
				*serie, sv.Rows(), strings.Join(sv.Columns(), ", "))
			return
		}
		if *summary {
			s, ok := q.SeriesSummary(*run, *serie, *col)
			if !ok {
				fatal(fmt.Errorf("series %q column %q not in run %q", *serie, *col, *run))
			}
			printSummary(s)
			return
		}
		ts, vs, ok := q.SeriesSlice(*run, *serie, *col, *from, *to)
		if !ok {
			fatal(fmt.Errorf("series %q column %q not in run %q", *serie, *col, *run))
		}
		fmt.Printf("t_ns,%s\n", *col)
		for i, t := range ts {
			fmt.Printf("%d,%s\n", t, formatVal(vs[i]))
		}
		return
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "falconlake query: need exactly one PATTERN (or -serie)")
		os.Exit(2)
	}
	pattern := fs.Arg(0)
	if *summary {
		printSummary(q.Summary(*run, pattern))
		return
	}
	cells := q.Select(*run, pattern)
	for _, c := range cells {
		fmt.Printf("%s %s\n", c.Path, formatVal(c.Value))
	}
	if len(cells) == 0 {
		fmt.Fprintf(os.Stderr, "no cells match %q in run %q\n", pattern, *run)
		os.Exit(1)
	}
}

func printSummary(s lake.Summary) {
	fmt.Printf("count %d\nmean %s\nmin %s\nmax %s\np50 %s\np99 %s\n",
		s.Count, formatVal(s.Mean), formatVal(s.Min), formatVal(s.Max),
		formatVal(s.P50), formatVal(s.P99))
}

// formatVal matches the artifacts' shortest-round-trip float form.
func formatVal(v float64) string {
	return fmt.Sprintf("%v", v)
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	index := fs.String("index", "", "lake index file (omit when diffing two artifact paths)")
	tol := fs.Float64("tol", 0, "relative tolerance for timing-class metrics (default 0.05)")
	perftol := fs.Float64("perftol", 0, "regression tolerance for perf-class metrics (default 0.25)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "falconlake diff: need exactly two runs (or two artifact paths)")
		os.Exit(2)
	}
	a, b := fs.Arg(0), fs.Arg(1)

	var ix *lake.Index
	var err error
	runA, runB := a, b
	if isPath(a) && isPath(b) {
		// Ad-hoc mode: ingest the two artifacts as runs "a" and "b".
		bld := lake.NewBuilder()
		if err := bld.IngestFile("a", a); err != nil {
			fatal(err)
		}
		if err := bld.IngestFile("b", b); err != nil {
			fatal(err)
		}
		if ix, err = bld.Seal(); err != nil {
			fatal(err)
		}
		runA, runB = "a", "b"
	} else {
		if *index == "" {
			fmt.Fprintln(os.Stderr, "falconlake diff: need -index (or two artifact paths)")
			os.Exit(2)
		}
		if ix, err = lake.ReadFile(*index); err != nil {
			fatal(err)
		}
	}

	rep, err := lake.Diff(ix, runA, runB, lake.Options{RelTol: *tol, PerfTol: *perftol})
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	if !rep.Empty() {
		os.Exit(1)
	}
}

func cmdTrend(args []string) {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	index := fs.String("index", "", "lake index file (omit when scanning artifact paths)")
	tol := fs.Float64("tol", 0, "cumulative drift tolerance for timing-class metrics (default 0.05)")
	perftol := fs.Float64("perftol", 0, "cumulative regression tolerance for perf-class metrics (default 0.10)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	fs.Parse(args)
	if fs.NArg() < 3 {
		fmt.Fprintln(os.Stderr, "falconlake trend: need at least three runs, oldest first (or three artifact paths)")
		os.Exit(2)
	}
	runs := fs.Args()

	allPaths := true
	for _, a := range runs {
		if !isPath(a) {
			allPaths = false
			break
		}
	}
	var ix *lake.Index
	var err error
	if allPaths {
		// Ad-hoc mode: ingest the artifacts in order as runs r1, r2, ...
		bld := lake.NewBuilder()
		names := make([]string, len(runs))
		for i, p := range runs {
			names[i] = fmt.Sprintf("r%d", i+1)
			if err := bld.IngestFile(names[i], p); err != nil {
				fatal(err)
			}
		}
		if ix, err = bld.Seal(); err != nil {
			fatal(err)
		}
		runs = names
	} else {
		if *index == "" {
			fmt.Fprintln(os.Stderr, "falconlake trend: need -index (or artifact paths only)")
			os.Exit(2)
		}
		if ix, err = lake.ReadFile(*index); err != nil {
			fatal(err)
		}
	}

	rep, err := lake.Trend(ix, runs, lake.TrendOptions{RelTol: *tol, PerfTol: *perftol})
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	if !rep.Empty() {
		os.Exit(1)
	}
}

// isPath reports whether s names an existing file or directory.
func isPath(s string) bool {
	_, err := os.Stat(s)
	return err == nil
}
