package fae

import (
	"testing"
	"time"

	"falcon/internal/falcon/wire"
	"falcon/internal/sim"
)

func newEngine(t *testing.T, cfg Config) (*sim.Simulator, *Engine, *[]Response) {
	t.Helper()
	s := sim.New(1)
	var responses []Response
	e := New(s, cfg, func(r Response) { responses = append(responses, r) })
	return s, e, &responses
}

func ackEvent(conn uint32, flow int, delay time.Duration, now sim.Time) Event {
	return Event{
		Kind:           EventAck,
		Conn:           conn,
		Flow:           flow,
		Now:            now,
		FabricDelay:    delay,
		RTT:            delay + 10*time.Microsecond,
		AckedPackets:   1,
		Hops:           2,
		RxBufOccupancy: 0.1,
	}
}

func TestRegisterConnAssignsDistinctLabels(t *testing.T) {
	_, e, _ := newEngine(t, DefaultConfig())
	labels := e.RegisterConn(1, 4)
	if len(labels) != 4 {
		t.Fatalf("labels = %d, want 4", len(labels))
	}
	seen := map[wire.FlowLabel]bool{}
	for i, l := range labels {
		if l.FlowIndex() != i {
			t.Errorf("label %d has flow index %d", i, l.FlowIndex())
		}
		if seen[l] {
			t.Errorf("duplicate label %v", l)
		}
		seen[l] = true
	}
}

func TestRegisterConnClampsFlows(t *testing.T) {
	_, e, _ := newEngine(t, DefaultConfig())
	if got := len(e.RegisterConn(1, 0)); got != 1 {
		t.Fatalf("0 flows -> %d, want 1", got)
	}
	if got := len(e.RegisterConn(2, 100)); got != wire.MaxFlows {
		t.Fatalf("100 flows -> %d, want %d", got, wire.MaxFlows)
	}
}

func TestAckEventProducesResponse(t *testing.T) {
	s, e, resp := newEngine(t, DefaultConfig())
	e.RegisterConn(1, 2)
	e.Post(ackEvent(1, 0, 5*time.Microsecond, s.Now()))
	s.Run()
	if len(*resp) != 1 {
		t.Fatalf("responses = %d", len(*resp))
	}
	r := (*resp)[0]
	if r.Conn != 1 || r.Flow != 0 {
		t.Fatalf("response addressed to %d/%d", r.Conn, r.Flow)
	}
	if r.FlowCwnd <= 0 || r.ConnCwnd < r.FlowCwnd || r.NCwnd <= 0 {
		t.Fatalf("bad windows: %+v", r)
	}
	if r.RTO < 100*time.Microsecond {
		t.Fatalf("RTO = %v below MinRTO", r.RTO)
	}
}

func TestUnknownConnIgnored(t *testing.T) {
	s, e, resp := newEngine(t, DefaultConfig())
	e.Post(ackEvent(99, 0, time.Microsecond, s.Now()))
	s.Run()
	if len(*resp) != 0 {
		t.Fatal("event for unknown connection produced a response")
	}
}

func TestResponseDelay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseDelay = 32 * time.Microsecond
	s, e, resp := newEngine(t, cfg)
	e.RegisterConn(1, 1)
	var when sim.Time
	e.Post(ackEvent(1, 0, time.Microsecond, s.Now()))
	s.At(1, func() {}) // keep sim alive trivially
	s.Run()
	if len(*resp) != 1 {
		t.Fatalf("responses = %d", len(*resp))
	}
	when = s.Now()
	if when < sim.Time(32*1000) {
		t.Fatalf("response arrived at %v, want >= 32us", when)
	}
}

func TestCongestionDecreasesFlowCwnd(t *testing.T) {
	s, e, resp := newEngine(t, DefaultConfig())
	e.RegisterConn(1, 1)
	e.Post(ackEvent(1, 0, time.Microsecond, 0))
	s.Run()
	low := (*resp)[0].FlowCwnd
	e.Post(ackEvent(1, 0, 500*time.Microsecond, sim.Time(time.Millisecond)))
	s.Run()
	high := (*resp)[1].FlowCwnd
	if high >= low {
		t.Fatalf("congested sample did not shrink cwnd: %v -> %v", low, high)
	}
}

func TestPLBRepathsAfterPersistentCongestion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PLBCongestedRounds = 4
	s, e, resp := newEngine(t, cfg)
	labels := e.RegisterConn(1, 1)
	orig := labels[0]
	now := sim.Time(0)
	for i := 0; i < 4; i++ {
		now = now.Add(100 * time.Microsecond)
		e.Post(ackEvent(1, 0, time.Millisecond, now))
	}
	s.Run()
	last := (*resp)[len(*resp)-1]
	if !last.Repathed {
		t.Fatal("PLB did not repath after persistent congestion")
	}
	if last.FlowLabel == orig {
		t.Fatal("flow label unchanged after repath")
	}
	if last.FlowLabel.FlowIndex() != orig.FlowIndex() {
		t.Fatal("repath changed the flow index")
	}
	if e.Repaths != 1 {
		t.Fatalf("Repaths = %d", e.Repaths)
	}
}

func TestPLBCounterDecaysOnGoodRounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PLBCongestedRounds = 3
	s, e, resp := newEngine(t, cfg)
	e.RegisterConn(1, 1)
	now := sim.Time(0)
	// Alternate congested/uncongested: should never reach the threshold.
	for i := 0; i < 20; i++ {
		now = now.Add(100 * time.Microsecond)
		d := time.Microsecond
		if i%2 == 0 {
			d = time.Millisecond
		}
		e.Post(ackEvent(1, 0, d, now))
	}
	s.Run()
	for _, r := range *resp {
		if r.Repathed {
			t.Fatal("repathed despite alternating congestion")
		}
	}
}

func TestPRRRepathsOnRTO(t *testing.T) {
	s, e, resp := newEngine(t, DefaultConfig())
	labels := e.RegisterConn(1, 2)
	e.Post(Event{Kind: EventRTO, Conn: 1, Flow: 1, Now: 0})
	s.Run()
	r := (*resp)[0]
	if !r.Repathed || r.FlowLabel == labels[1] {
		t.Fatalf("RTO should repath: %+v", r)
	}
	if r.FlowCwnd != DefaultConfig().Swift.RTOCwnd {
		t.Fatalf("RTO cwnd = %v", r.FlowCwnd)
	}
}

func TestFastRetransmitShrinksWindow(t *testing.T) {
	s, e, resp := newEngine(t, DefaultConfig())
	e.RegisterConn(1, 1)
	e.Post(ackEvent(1, 0, time.Microsecond, 0)) // grow + establish srtt
	e.Post(Event{Kind: EventFastRetransmit, Conn: 1, Flow: 0, Now: sim.Time(time.Millisecond)})
	s.Run()
	if len(*resp) != 2 {
		t.Fatalf("responses = %d", len(*resp))
	}
	if (*resp)[1].FlowCwnd >= (*resp)[0].FlowCwnd {
		t.Fatal("fast retransmit did not shrink cwnd")
	}
}

func TestConnCwndSumsFlows(t *testing.T) {
	s, e, resp := newEngine(t, DefaultConfig())
	e.RegisterConn(1, 4)
	e.Post(ackEvent(1, 0, time.Microsecond, 0))
	s.Run()
	r := (*resp)[0]
	if r.ConnCwnd < 4*r.FlowCwnd*0.9 {
		// All four flows start equal; sum should be ~4x one flow
		// (flow 0 just grew slightly).
		t.Fatalf("ConnCwnd %v vs FlowCwnd %v", r.ConnCwnd, r.FlowCwnd)
	}
}

func TestAlphaShrinksUnderCongestion(t *testing.T) {
	s, e, resp := newEngine(t, DefaultConfig())
	e.RegisterConn(1, 1)
	e.RegisterConn(2, 1)
	// Connection 1: healthy. Connection 2: congested and occupied.
	e.Post(ackEvent(1, 0, time.Microsecond, 0))
	ev := ackEvent(2, 0, time.Millisecond, 0)
	ev.RxBufOccupancy = 0.9
	e.Post(ev)
	s.Run()
	healthy, congested := (*resp)[0].Alpha, (*resp)[1].Alpha
	if congested >= healthy {
		t.Fatalf("α_c congested %v >= healthy %v", congested, healthy)
	}
}

func TestOutOfRangeFlowClamped(t *testing.T) {
	s, e, resp := newEngine(t, DefaultConfig())
	e.RegisterConn(1, 1)
	e.Post(ackEvent(1, 7, time.Microsecond, 0))
	s.Run()
	if len(*resp) != 1 || (*resp)[0].Flow != 0 {
		t.Fatalf("out-of-range flow not clamped: %+v", *resp)
	}
}

func TestUnregisterConn(t *testing.T) {
	s, e, resp := newEngine(t, DefaultConfig())
	e.RegisterConn(1, 1)
	e.UnregisterConn(1)
	e.Post(ackEvent(1, 0, time.Microsecond, 0))
	s.Run()
	if len(*resp) != 0 {
		t.Fatal("unregistered connection still processed")
	}
	if e.FlowLabels(1) != nil {
		t.Fatal("labels survive unregister")
	}
}

func TestECNSupplementarySignal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseECN = true
	s, e, resp := newEngine(t, cfg)
	e.RegisterConn(1, 1)
	// Delay below target but ECE set: the window must still decrease.
	ev := ackEvent(1, 0, time.Microsecond, 0)
	e.Post(ev)
	s.Run()
	grew := (*resp)[0].FlowCwnd
	ev2 := ackEvent(1, 0, time.Microsecond, sim.Time(time.Millisecond))
	ev2.ECE = true
	e.Post(ev2)
	s.Run()
	after := (*resp)[1].FlowCwnd
	if after >= grew {
		t.Fatalf("ECE did not shrink cwnd: %v -> %v", grew, after)
	}
	// With UseECN off, ECE is ignored.
	cfg2 := DefaultConfig()
	s2, e2, resp2 := newEngine(t, cfg2)
	e2.RegisterConn(1, 1)
	ev3 := ackEvent(1, 0, time.Microsecond, 0)
	ev3.ECE = true
	e2.Post(ev3)
	s2.Run()
	if (*resp2)[0].FlowCwnd <= 16.0/1 {
		// initial 16, one below-target ack grows it
		t.Fatalf("ECE should be ignored when disabled: %v", (*resp2)[0].FlowCwnd)
	}
}
