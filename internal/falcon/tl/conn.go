package tl

import (
	"errors"
	"time"

	"falcon/internal/falcon/pdl"
	"falcon/internal/falcon/wire"
	"falcon/internal/sim"
)

// ErrBackpressured reports that the connection is Xoff'd: its resource
// usage exceeds the (dynamic-threshold) share it is allowed (§4.6). The ULP
// should retry when notified via the Xon callback.
var ErrBackpressured = errors.New("tl: connection backpressured (xoff)")

// ErrCIE reports a transaction completed-in-error by the target ULP (§4.4).
var ErrCIE = errors.New("tl: transaction completed in error (CIE)")

// ErrConnDead reports operations on (or pending in) a connection whose
// packet-delivery layer declared a terminal failure.
var ErrConnDead = errors.New("tl: connection failed")

// BackpressureMode selects the isolation policy of Figure 24.
type BackpressureMode int

const (
	// BackpressureNone disables per-connection thresholds: connections
	// compete for pools unchecked.
	BackpressureNone BackpressureMode = iota
	// BackpressureStatic uses a fixed α for every connection.
	BackpressureStatic
	// BackpressureDynamic scales α by the FAE's congestion-aware β_c.
	BackpressureDynamic
)

func (m BackpressureMode) String() string {
	switch m {
	case BackpressureStatic:
		return "static"
	case BackpressureDynamic:
		return "dynamic"
	}
	return "none"
}

// TargetVerdictKind is the target ULP's decision about a delivered request.
type TargetVerdictKind int

const (
	// TargetOK: request processed successfully.
	TargetOK TargetVerdictKind = iota
	// TargetRNR: receiver not ready; retry after RetryDelay.
	TargetRNR
	// TargetError: request failed; complete in error and continue (CIE).
	TargetError
	// TargetAsync (pulls only): the ULP will produce the response later
	// via CompletePull — e.g. an NVMe read waiting on the device. The
	// transaction still completes in RSN order at delivery.
	TargetAsync
)

// TargetVerdict is returned by TargetHandler methods.
type TargetVerdict struct {
	Kind       TargetVerdictKind
	RetryDelay time.Duration
}

// TargetHandler is the ULP-side interface invoked at the target NIC. On
// ordered connections, handlers run in RSN order. The packet pointer is
// only valid for the duration of the call (the TL may recycle its storage
// afterwards); p.Data may be retained — payload slices are never pooled.
type TargetHandler interface {
	// HandlePush processes arriving push data (e.g. executes an RDMA
	// Write to host memory).
	HandlePush(rsn uint64, p *wire.Packet) TargetVerdict
	// HandlePull produces the response for a pull request (e.g. an RDMA
	// Read of p.PullLength bytes). data may be nil in simulation mode.
	HandlePull(rsn uint64, p *wire.Packet) (data []byte, length uint32, v TargetVerdict)
}

// Control is the downward interface to the PDL. *pdl.Conn satisfies it.
type Control interface {
	SendPacket(p *wire.Packet)
	SendExceptionNack(space wire.Space, psn uint32, rsn uint64, code wire.NackCode, retry time.Duration)
}

var _ Control = (*pdl.Conn)(nil)

// Config parameterizes a TL connection.
type Config struct {
	// Ordered selects IB Verbs ordering: in-order delivery to the target
	// ULP and in-order completions at the initiator. Unordered delivers
	// and completes as packets arrive (§4.4).
	Ordered bool
	// MTU bounds a single transaction's payload (§4.4: transactions are
	// at most one MTU; ULPs segment larger ops).
	MTU int
	// Backpressure selects the isolation policy.
	Backpressure BackpressureMode
	// StaticAlpha is the DT α for BackpressureStatic.
	StaticAlpha float64

	// LegacyHotPath backs the per-RSN tables with Go maps and restores
	// the map-iteration scans (completion horizon, unordered release),
	// as the byte-identical-trace oracle for the dense structures —
	// the TL side of pdl.Config.LegacyHotPath.
	LegacyHotPath bool
}

// DefaultConfig returns an ordered connection with 4KB MTU and dynamic
// backpressure.
func DefaultConfig() Config {
	return Config{Ordered: true, MTU: 4096, Backpressure: BackpressureDynamic, StaticAlpha: 2}
}

type txnKind int

const (
	txnPush txnKind = iota
	txnPull
)

// txn is one initiator-side transaction (at most one MTU, so exactly one
// request packet and at most one response packet). Completed transactions
// recycle through the connection's free list.
type txn struct {
	kind     txnKind
	rsn      uint64
	length   uint32 // push payload length / pull solicited length
	ulpOp    uint8
	addr     uint64
	data     []byte
	done     func(data []byte, err error)
	pktAcked bool
	finished bool // target outcome known (completion/pull-data/CIE)
	retrying bool // RNR received, retry scheduled: acks must not complete it
	released bool
	err      error
	respData []byte
	nextFree *txn
}

// pendingReq is a target-side request awaiting in-order delivery. The
// packet is held by value: the inbound wire packet belongs to the
// receive path and is recycled as soon as delivery returns, so the
// reorder buffer snapshots it (Data is safe to alias — payload slices
// are never pooled).
type pendingReq struct {
	pkt   wire.Packet
	bytes int
}

// Probe observes a TL connection's transaction-level activity. It is the
// TL's verification hook (internal/testkit registers invariant checkers
// through it): OnRequestServed fires at the target when a request reaches
// terminal processing (exactly once per RSN, in RSN order on ordered
// connections), and OnCompletion fires at the initiator when a completion
// is released to the ULP (exactly once per RSN). Costs one nil check when
// unset.
type Probe interface {
	OnRequestServed(c *Conn, rsn uint64)
	OnCompletion(c *Conn, rsn uint64, err error)
}

// Stats counts TL activity on one connection.
type Stats struct {
	Pushes         uint64
	Pulls          uint64
	CompletedOK    uint64
	CompletedError uint64
	RNRRetries     uint64
	Backpressured  uint64
	RequestsServed uint64
}

// respQueue is a head-indexed FIFO of deferred pull responses.
type respQueue struct {
	buf  []*wire.Packet
	head int
}

func (q *respQueue) len() int { return len(q.buf) - q.head }

func (q *respQueue) push(p *wire.Packet) { q.buf = append(q.buf, p) }

func (q *respQueue) peek() *wire.Packet { return q.buf[q.head] }

func (q *respQueue) pop() *wire.Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return p
}

// Conn is one Falcon connection's transaction layer.
type Conn struct {
	sim    *sim.Simulator
	cfg    Config
	id     uint32
	res    *Resources
	ctrl   Control
	target TargetHandler

	alpha float64 // α_c from the FAE (dynamic backpressure)

	// pool recycles the request/response packets this connection builds
	// (nil = heap packets; see wire.PacketPool).
	pool *wire.PacketPool

	// Initiator state.
	nextRSN     uint64
	txns        rsnTable[*txn]
	releaseRSN  uint64 // next RSN to release to the ULP (ordered)
	xonCallback func()
	wasXoff     bool

	// Target state.
	expectedRSN  uint64
	reorderBuf   rsnTable[pendingReq]
	completedRSN uint64

	// Deferred pull responses awaiting TxResp resources.
	pendingResponses respQueue
	// sentRespBytes records TxResp byte reservations per RSN so acks
	// release the exact amount.
	sentRespBytes rsnTable[int]
	// reqReservations records TxReq byte reservations per RSN. Releases
	// are driven by packet ACKs, which can arrive after the transaction
	// itself has completed (the completion horizon can outrun
	// per-packet ACKs), so this table outlives the txns entry.
	reqReservations rsnTable[int]

	// completedApplied is the highest completion horizon already folded
	// into the txns table; Completed only walks [applied, new horizon)
	// instead of every live transaction (new transactions always get
	// RSNs at or above any applied horizon, so nothing below it can be
	// an unflagged push).
	completedApplied uint64

	// isNeedy mirrors "this connection's onResourcesFreed would do
	// something" into the shared Resources needy count, letting Release
	// skip the whole subscriber fan-out when nobody is waiting.
	isNeedy bool

	// dead is non-nil once the PDL declared the connection failed.
	dead error

	// probe, when non-nil, observes serves and completions (verification).
	probe Probe

	// Free lists and scratch (steady-state allocation avoidance).
	txnFree      *txn
	rnrEvents    *rnrRetryEvent
	readyScratch []uint64
	reqScratch   pendingReq // processRequest's dequeue slot (see there)

	Stats Stats
}

// NewConn creates a TL connection bound to shared resources and a PDL
// control. target may be nil for a pure-initiator endpoint.
func NewConn(s *sim.Simulator, id uint32, cfg Config, res *Resources, ctrl Control, target TargetHandler) *Conn {
	if cfg.MTU <= 0 {
		cfg.MTU = 4096
	}
	if cfg.StaticAlpha <= 0 {
		cfg.StaticAlpha = 2
	}
	c := &Conn{
		sim:             s,
		cfg:             cfg,
		id:              id,
		res:             res,
		ctrl:            ctrl,
		target:          target,
		alpha:           cfg.StaticAlpha,
		txns:            newRSNTable[*txn](cfg.LegacyHotPath),
		reorderBuf:      newRSNTable[pendingReq](cfg.LegacyHotPath),
		sentRespBytes:   newRSNTable[int](cfg.LegacyHotPath),
		reqReservations: newRSNTable[int](cfg.LegacyHotPath),
	}
	res.subscribeConn(c.onResourcesFreed)
	return c
}

// SetPacketPool attaches a packet pool (nil keeps heap packets). Must be
// called before traffic flows; internal/core wires one pool per cluster.
func (c *Conn) SetPacketPool(p *wire.PacketPool) { c.pool = p }

// ID returns the connection ID.
func (c *Conn) ID() uint32 { return c.id }

// SetTarget installs the target-side ULP handler (it may be attached after
// construction, before traffic arrives).
func (c *Conn) SetTarget(h TargetHandler) { c.target = h }

// SetProbe attaches a verification probe (nil detaches).
func (c *Conn) SetProbe(p Probe) { c.probe = p }

// multiProbe fans the probe callbacks out to several probes in order.
type multiProbe []Probe

func (ps multiProbe) OnRequestServed(c *Conn, rsn uint64) {
	for _, pr := range ps {
		pr.OnRequestServed(c, rsn)
	}
}

func (ps multiProbe) OnCompletion(c *Conn, rsn uint64, err error) {
	for _, pr := range ps {
		pr.OnCompletion(c, rsn, err)
	}
}

// MultiProbe combines several probes into one, since SetProbe holds a
// single slot. Probes run in argument order; nil entries are dropped, and
// zero or one survivors collapse to nil or the probe itself so the
// fan-out indirection is only paid when multiple observers are attached.
func MultiProbe(ps ...Probe) Probe {
	out := make(multiProbe, 0, len(ps))
	for _, p := range ps {
		if p != nil {
			out = append(out, p)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// allocTxn takes a transaction context from the free list.
func (c *Conn) allocTxn() *txn {
	t := c.txnFree
	if t == nil {
		return &txn{}
	}
	c.txnFree = t.nextFree
	*t = txn{}
	return t
}

// freeTxn recycles a released transaction context, dropping its payload
// and callback references.
func (c *Conn) freeTxn(t *txn) {
	*t = txn{}
	t.nextFree = c.txnFree
	c.txnFree = t
}

// OutstandingTxns reports the initiator-side transactions that have been
// issued but not yet completed (telemetry gauge).
func (c *Conn) OutstandingTxns() int { return c.txns.len() }

// PendingResponses reports pull responses deferred on TxResp resource
// exhaustion (solicitation backlog; telemetry gauge).
func (c *Conn) PendingResponses() int { return c.pendingResponses.len() }

// ReorderBacklog reports target-side requests buffered awaiting in-order
// delivery (telemetry gauge).
func (c *Conn) ReorderBacklog() int { return c.reorderBuf.len() }

// Ordered reports whether the connection delivers and completes in RSN
// order.
func (c *Conn) Ordered() bool { return c.cfg.Ordered }

// Alpha returns the connection's current DT α_c (diagnostics).
func (c *Conn) Alpha() float64 { return c.effAlpha() }

// SetAlpha installs the FAE-computed α_c (BackpressureDynamic).
func (c *Conn) SetAlpha(a float64) {
	if a > 0 {
		c.alpha = a
	}
}

// SetXonCallback registers the ULP's resume hook, invoked when a
// backpressured connection regains resource headroom.
func (c *Conn) SetXonCallback(fn func()) { c.xonCallback = fn }

// CompletedRSN is sampled by the PDL when building ACKs: the cumulative
// in-order completion horizon at this target (zero for unordered).
func (c *Conn) CompletedRSN() uint64 {
	if !c.cfg.Ordered {
		return 0
	}
	return c.completedRSN
}

// RxOccupancy is forwarded to the PDL's ACK builder.
func (c *Conn) RxOccupancy() float64 { return c.res.RxOccupancy() }

// ExpectedRSN returns the next request RSN the target will process in
// order (diagnostics/verification).
func (c *Conn) ExpectedRSN() uint64 { return c.expectedRSN }

// BufferedRSNs returns the RSNs held in the target reorder buffer, sorted
// (diagnostics/verification).
func (c *Conn) BufferedRSNs() []uint64 { return c.reorderBuf.sorted() }

// PendingRSNs returns the initiator-side RSNs not yet released to the
// ULP, sorted (diagnostics/verification).
func (c *Conn) PendingRSNs() []uint64 { return c.txns.sorted() }

// effAlpha returns the connection's DT α under the configured policy.
func (c *Conn) effAlpha() float64 {
	if c.cfg.Backpressure == BackpressureStatic {
		return c.cfg.StaticAlpha
	}
	return c.alpha
}

// xoffed applies the DT rule T_c = α_c·Free per pool, on contexts and
// buffer bytes (§4.6). A connection exceeding its share of any pool is
// backpressured.
func (c *Conn) xoffed() bool {
	if c.cfg.Backpressure == BackpressureNone {
		return false
	}
	return c.res.OverDTThreshold(c.id, c.effAlpha())
}

// updateNeedy folds this connection's wakeup interest into the shared
// Resources needy count. A connection with no deferred responses and no
// Xoff'd ULP does nothing in onResourcesFreed, so Release may skip it.
func (c *Conn) updateNeedy() {
	needy := c.dead == nil && (c.wasXoff || c.pendingResponses.len() > 0)
	if needy != c.isNeedy {
		c.isNeedy = needy
		if needy {
			c.res.needyDelta(1)
		} else {
			c.res.needyDelta(-1)
		}
	}
}

// noteXoff records a backpressure refusal (stats plus Xon-edge arming).
func (c *Conn) noteXoff() {
	c.Stats.Backpressured++
	c.wasXoff = true
	c.updateNeedy()
}

// Push initiates a push transaction of length bytes (≤ MTU). done fires at
// completion; its data argument is always nil for pushes. Returns the RSN.
func (c *Conn) Push(data []byte, length uint32, done func(data []byte, err error)) (uint64, error) {
	return c.PushOp(0, 0, data, length, done)
}

// PushOp is Push with ULP metadata: op identifies the ULP operation and
// addr the remote address it targets (carried opaquely by Falcon).
func (c *Conn) PushOp(op uint8, addr uint64, data []byte, length uint32, done func(data []byte, err error)) (uint64, error) {
	if c.dead != nil {
		return 0, c.dead
	}
	if int(length) > c.cfg.MTU {
		return 0, errors.New("tl: push exceeds MTU; ULP must segment")
	}
	if c.xoffed() {
		c.noteXoff()
		return 0, ErrBackpressured
	}
	// Reserve the request's TX resources and the completion's RX slot up
	// front (§4.5: responses must always be able to land).
	if err := c.res.Reserve(PoolTxReq, c.id, int(length)); err != nil {
		c.noteXoff()
		return 0, err
	}
	if err := c.res.Reserve(PoolRxResp, c.id, 0); err != nil {
		c.res.Release(PoolTxReq, c.id, int(length))
		c.noteXoff()
		return 0, err
	}
	rsn := c.nextRSN
	c.nextRSN++
	t := c.allocTxn()
	t.kind, t.rsn, t.length, t.ulpOp, t.addr, t.data, t.done = txnPush, rsn, length, op, addr, data, done
	c.txns.put(rsn, t)
	c.Stats.Pushes++
	c.sendRequest(t)
	return rsn, nil
}

// Pull initiates a pull transaction soliciting length bytes (≤ MTU). done
// receives the pulled data.
func (c *Conn) Pull(length uint32, done func(data []byte, err error)) (uint64, error) {
	return c.PullOp(0, 0, length, done)
}

// PullOp is Pull with ULP metadata (op code and remote address).
func (c *Conn) PullOp(op uint8, addr uint64, length uint32, done func(data []byte, err error)) (uint64, error) {
	return c.PullOpData(op, addr, nil, length, done)
}

// PullOpData is PullOp with request payload bytes (e.g. atomic operands):
// the request carries reqData on the wire while soliciting respLen bytes
// back.
func (c *Conn) PullOpData(op uint8, addr uint64, reqData []byte, respLen uint32, done func(data []byte, err error)) (uint64, error) {
	if c.dead != nil {
		return 0, c.dead
	}
	length := respLen
	if int(length) > c.cfg.MTU {
		return 0, errors.New("tl: pull exceeds MTU; ULP must segment")
	}
	if c.xoffed() {
		c.noteXoff()
		return 0, ErrBackpressured
	}
	if err := c.res.Reserve(PoolTxReq, c.id, len(reqData)); err != nil {
		c.noteXoff()
		return 0, err
	}
	if err := c.res.Reserve(PoolRxResp, c.id, int(length)); err != nil {
		c.res.Release(PoolTxReq, c.id, len(reqData))
		c.noteXoff()
		return 0, err
	}
	rsn := c.nextRSN
	c.nextRSN++
	t := c.allocTxn()
	t.kind, t.rsn, t.length, t.ulpOp, t.addr, t.data, t.done = txnPull, rsn, length, op, addr, reqData, done
	c.txns.put(rsn, t)
	c.Stats.Pulls++
	c.sendRequest(t)
	return rsn, nil
}

func (c *Conn) sendRequest(t *txn) {
	p := c.pool.Acquire()
	p.RSN, p.UlpOp, p.Addr = t.rsn, t.ulpOp, t.addr
	if c.cfg.Ordered {
		p.Flags |= wire.FlagOrdered
	}
	switch t.kind {
	case txnPush:
		p.Type = wire.TypePushData
		p.Length = t.length
		p.Data = t.data
		c.reqReservations.put(t.rsn, int(t.length))
	case txnPull:
		p.Type = wire.TypePullRequest
		p.PullLength = t.length
		p.Data = t.data
		p.Length = uint32(len(t.data))
		c.reqReservations.put(t.rsn, len(t.data))
	}
	c.ctrl.SendPacket(p)
}

// onResourcesFreed drains deferred responses and signals Xon to the ULP.
func (c *Conn) onResourcesFreed() {
	if c.dead != nil {
		return
	}
	c.drainPendingResponses()
	if c.wasXoff && !c.xoffed() && c.xonCallback != nil {
		c.wasXoff = false
		c.updateNeedy()
		c.xonCallback()
	}
}
