package experiments

import (
	"time"

	"falcon/internal/core"
	"falcon/internal/falcon/pdl"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/roce"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/telemetry"
	"falcon/internal/workload"
)

// Fig10 reproduces "Falcon and RoCE goodput under losses for different
// ops" (§6.1.1): a 1:1 experiment with 8KB ops and random drops of the
// named packet class, sweeping the drop percentage. Falcon holds goodput;
// RoCE-SR helps only Writes and Read Responses; RoCE-GBN collapses.
func Fig10(runFor time.Duration) *Table { return fig10(runFor, nil) }

// Fig10Tel is the instrumented Fig10: every Falcon cell exports its PDL
// loss-recovery counters (retransmit causes, ACK coalescing, NACK codes)
// and the representative Write/1%-drop cell additionally records a
// cwnd-and-retransmit time series — the loss-recovery trace behind the
// figure. The table is identical to Fig10's: telemetry only observes.
func Fig10Tel(runFor time.Duration, tel *telemetry.Suite) *Table { return fig10(runFor, tel) }

func fig10(runFor time.Duration, tel *telemetry.Suite) *Table {
	t := &Table{
		Title:   "Figure 10: goodput (Gbps) under random drops, 8KB ops, 200G link",
		Columns: []string{"op", "drop%", "Falcon", "RoCE-SR", "RoCE-GBN"},
	}
	const gbps = 200
	drops := []float64{0, 0.1, 0.5, 1, 2}
	type sub struct {
		name string
		kind opKind
	}
	subs := []sub{
		{"Write", opWrite},
		{"Send", opSend},
		{"ReadResp", opRead}, // responses dropped on the reverse path
		{"ReadReq", opRead},  // requests dropped on the forward path
	}
	for _, sb := range subs {
		for _, drop := range drops {
			falcon := func() float64 {
				p := newFalconP2P(1, gbps, multipathConn())
				applyDrop(sb.name, p.forward, p.reverse, drop)
				if tel != nil {
					prefix := "fig10/" + sb.name + "/drop" + f1(drop)
					reg := tel.Registry()
					telemetry.CollectPDL(reg, prefix, p.epA.PDL())
					telemetry.CollectTL(reg, prefix, p.epA.TL())
					telemetry.CollectPort(reg, prefix+"/fwd", p.forward)
					if sb.name == "Write" && drop == 1 {
						sp := tel.Sampler("write_drop1", p.sim, 20*time.Microsecond)
						telemetry.TrackPDL(sp, "conn", p.epA.PDL())
						telemetry.TrackPort(sp, "fwd", p.forward)
						sp.Start(sim.Time(runFor))
					}
				}
				return p.goodput(sb.kind, 8192, 48, runFor)
			}()
			sr := func() float64 {
				cfg := roce.DefaultConfig()
				cfg.Mode = roce.SR
				p := newRoceP2P(1, gbps, cfg)
				applyDrop(sb.name, p.forward, p.reverse, drop)
				return p.goodput(sb.kind, 8192, 48, runFor)
			}()
			gbn := func() float64 {
				cfg := roce.DefaultConfig()
				cfg.Mode = roce.GBN
				p := newRoceP2P(1, gbps, cfg)
				applyDrop(sb.name, p.forward, p.reverse, drop)
				return p.goodput(sb.kind, 8192, 48, runFor)
			}()
			t.Rows = append(t.Rows, []string{sb.name, f1(drop), f1(falcon), f1(sr), f1(gbn)})
		}
	}
	return t
}

// applyDrop impairs the right direction for the packet class under test.
// Writes, Sends and Read Requests travel client→server (forward port);
// Read Responses travel server→client (reverse port). Note the fig 10
// convention: "ReadResp" drops the responses of a read workload,
// "ReadReq" drops its requests.
func applyDrop(name string, fwd, rev *netsim.Port, pct float64) {
	if name == "ReadResp" {
		rev.SetDropProb(pct / 100)
		return
	}
	fwd.SetDropProb(pct / 100)
}

// Fig11a reproduces "Falcon and RoCE goodput when writes are reordered":
// the same 1:1 experiment with the switch delaying a fraction of packets
// instead of dropping them.
func Fig11a(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Figure 11a: goodput (Gbps) under reordering, 8KB writes, 200G link",
		Columns: []string{"reorder extent (us)", "Falcon", "RoCE-SR", "RoCE-GBN"},
	}
	const gbps = 200
	for _, extent := range []time.Duration{0, 5 * time.Microsecond, 10 * time.Microsecond, 20 * time.Microsecond, 40 * time.Microsecond} {
		falcon := func() float64 {
			p := newFalconP2P(1, gbps, multipathConn())
			p.forward.SetReorder(0.1, extent)
			return p.goodput(opWrite, 8192, 48, runFor)
		}()
		sr := func() float64 {
			cfg := roce.DefaultConfig()
			cfg.Mode = roce.SR
			p := newRoceP2P(1, gbps, cfg)
			p.forward.SetReorder(0.1, extent)
			return p.goodput(opWrite, 8192, 48, runFor)
		}()
		gbn := func() float64 {
			cfg := roce.DefaultConfig()
			cfg.Mode = roce.GBN
			p := newRoceP2P(1, gbps, cfg)
			p.forward.SetReorder(0.1, extent)
			return p.goodput(opWrite, 8192, 48, runFor)
		}()
		t.Rows = append(t.Rows, []string{f1(extent.Seconds() * 1e6), f1(falcon), f1(sr), f1(gbn)})
	}
	return t
}

// Fig11b reproduces "role of RACK-TLP under losses": 128KB writes with
// Poisson arrivals, comparing RACK-TLP against the OOO-distance heuristic
// that shipped in 200G Falcon.
func Fig11b(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Figure 11b: RACK-TLP vs OOO-distance goodput (Gbps), 128KB Poisson writes",
		Columns: []string{"drop%", "RACK-TLP", "OOO-D"},
	}
	run := func(recovery pdl.RecoveryMode, drop float64) float64 {
		cfg := multipathConn()
		cfg.PDL.Recovery = recovery
		p := newFalconP2P(3, 200, cfg)
		p.forward.SetDropProb(drop / 100)
		var delivered uint64
		const opBytes = 128 << 10
		// Poisson at ~60% of line rate.
		rate := 0.6 * 200e9 / 8 / opBytes
		gen := workload.NewPoisson(p.sim, p.sim.Rand(), rate, 1<<30, func() {
			p.qa.Write(0, 0, nil, opBytes, func(c rdma.Completion) {
				if c.Err == nil {
					delivered += opBytes
				}
			})
		})
		gen.Start()
		p.sim.RunUntil(sim.Time(runFor))
		return stats.Gbps(delivered, runFor)
	}
	for _, drop := range []float64{0.1, 0.5, 1, 2, 4} {
		t.Rows = append(t.Rows, []string{
			f1(drop),
			f1(run(pdl.RecoveryRackTLP, drop)),
			f1(run(pdl.RecoveryOOODistance, drop)),
		})
	}
	return t
}

// Fig12 reproduces "RoCE goodput under losses, in three different modes":
// 16KB writes, GBN vs SR vs AR. AR recovers only by timeout and performs
// worst.
func Fig12(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Figure 12: RoCE modes goodput (Gbps) under drops, 16KB writes",
		Columns: []string{"drop%", "RoCE-GBN", "RoCE-SR", "RoCE-AR"},
	}
	run := func(mode roce.Mode, drop float64) float64 {
		cfg := roce.DefaultConfig()
		cfg.Mode = mode
		p := newRoceP2P(5, 200, cfg)
		p.forward.SetDropProb(drop / 100)
		return p.goodput(opWrite, 16<<10, 48, runFor)
	}
	for _, drop := range []float64{0, 0.1, 0.5, 1, 2} {
		t.Rows = append(t.Rows, []string{
			f1(drop),
			f1(run(roce.GBN, drop)),
			f1(run(roce.SR, drop)),
			f1(run(roce.AR, drop)),
		})
	}
	return t
}

var _ = core.DefaultNodeConfig
