package sim

// Scheduler microbenchmarks: schedule/cancel/fire mixes at 1k-1M pending
// timers, run against both the timing wheel and the reference heap. These
// produce the headline numbers in DESIGN.md §8 and EXPERIMENTS.md's PR2
// appendix; `make bench` runs them.
//
// The steady-state mix models the simulator's real load (measured from
// falconbench): ~90% of timers land within ~100us (packet serialization,
// ACK coalescing, pacing) and ~10% reach into the milliseconds (RTOs,
// probe timers), so the wheel's level-0/level-1 split and the far-heap
// cascade are all on the hot path.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// delayRing precomputes a deterministic delay mixture so the benchmark
// loop does no RNG work.
func delayRing(shortFrac int) []time.Duration {
	rng := rand.New(rand.NewSource(42))
	ring := make([]time.Duration, 8192)
	for i := range ring {
		if rng.Intn(100) < shortFrac {
			ring[i] = time.Duration(1 + rng.Intn(100_000)) // <= 100us
		} else {
			ring[i] = time.Duration(1 + rng.Intn(10_000_000)) // <= 10ms
		}
	}
	return ring
}

// benchSteadyFire keeps `pending` self-rescheduling timers live and
// measures the cost of one schedule+fire cycle.
func benchSteadyFire(b *testing.B, k Scheduler, pending int) {
	s := NewWithScheduler(1, k)
	ring := delayRing(90)
	di := 0
	next := func() time.Duration {
		d := ring[di]
		di++
		if di == len(ring) {
			di = 0
		}
		return d
	}
	var tick func()
	tick = func() { s.After(next(), tick) }
	for i := 0; i < pending; i++ {
		s.After(next(), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
}

// benchCancelMix measures a schedule-2/cancel-1/fire-1 cycle, the pattern
// retransmission timers follow (armed per packet, almost always cancelled
// by the ACK before firing).
func benchCancelMix(b *testing.B, k Scheduler, pending int) {
	s := NewWithScheduler(1, k)
	ring := delayRing(90)
	di := 0
	next := func() time.Duration {
		d := ring[di]
		di++
		if di == len(ring) {
			di = 0
		}
		return d
	}
	noop := func() {}
	timers := make([]Timer, pending)
	for i := range timers {
		timers[i] = s.After(next(), noop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % pending
		timers[j].Stop()
		s.After(next(), noop)
		timers[j] = s.After(next(), noop)
		s.step()
	}
}

func schedulerSizes() []int { return []int{1_000, 32_000, 1_000_000} }

func BenchmarkSchedulerSteadyState(b *testing.B) {
	for _, k := range []Scheduler{SchedulerWheel, SchedulerHeap} {
		for _, n := range schedulerSizes() {
			b.Run(fmt.Sprintf("%s/pending=%d", k, n), func(b *testing.B) {
				benchSteadyFire(b, k, n)
			})
		}
	}
}

func BenchmarkSchedulerCancelMix(b *testing.B) {
	for _, k := range []Scheduler{SchedulerWheel, SchedulerHeap} {
		for _, n := range schedulerSizes() {
			b.Run(fmt.Sprintf("%s/pending=%d", k, n), func(b *testing.B) {
				benchCancelMix(b, k, n)
			})
		}
	}
}
