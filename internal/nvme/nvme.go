// Package nvme is the NVMe ULP mapping layer of Figure 2 and the basis of
// Near Local Flash (§6.3, Table 4): it disaggregates SSDs over Falcon.
//
// The transaction mapping follows Table 2:
//
//   - NVMe Read  → Pull: the client pulls data; the controller answers
//     asynchronously once the device completes (tl.TargetAsync).
//   - NVMe Write → Push and Pull: the client pushes the command, the
//     controller pulls the data from the client (requests flowing
//     controller→client on the same bidirectional Falcon connection), and
//     a completion push closes the command — the NVMe CQE.
//
// The Device type is the SSD substitute (the paper used real SSDs):
// per-channel parallelism, per-op base latency, bandwidth caps and an
// optional IOPS limit, enough to reproduce Table 4's relative numbers.
package nvme

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"falcon/internal/core"
	"falcon/internal/falcon/tl"
	"falcon/internal/falcon/wire"
	"falcon/internal/sim"
)

// ULP op codes.
const (
	opRead uint8 = iota + 0x20
	opWriteCmd
	opWriteData
	opCompletion
)

// DeviceConfig models one SSD.
type DeviceConfig struct {
	// ReadLatency/WriteLatency are per-command base service times.
	ReadLatency, WriteLatency time.Duration
	// ReadGbps/WriteGbps cap data movement per channel.
	ReadGbps, WriteGbps float64
	// Channels is the number of independent flash channels.
	Channels int
	// MaxIOPS caps command admission (0 = uncapped).
	MaxIOPS float64
}

// DefaultDeviceConfig models a datacenter NVMe SSD (~80us read, ~20us
// cached write; 7 Gbps read and 4 Gbps write per channel × 8 channels ≈
// 7 GB/s read, 4 GB/s write aggregate).
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{
		ReadLatency:  80 * time.Microsecond,
		WriteLatency: 20 * time.Microsecond,
		ReadGbps:     7,
		WriteGbps:    4,
		Channels:     8,
	}
}

// Device is the SSD service-time model.
type Device struct {
	sim      *sim.Simulator
	cfg      DeviceConfig
	chanFree []sim.Time
	iopsFree sim.Time

	// Stats
	Reads, Writes uint64
	BytesRead     uint64
	BytesWritten  uint64
}

// NewDevice creates a device bound to the simulator.
func NewDevice(s *sim.Simulator, cfg DeviceConfig) *Device {
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	return &Device{sim: s, cfg: cfg, chanFree: make([]sim.Time, cfg.Channels)}
}

func (d *Device) admit() sim.Time {
	now := d.sim.Now()
	start := now
	if d.cfg.MaxIOPS > 0 {
		if d.iopsFree > start {
			start = d.iopsFree
		}
		d.iopsFree = start.Add(time.Duration(1e9 / d.cfg.MaxIOPS))
	}
	return start
}

func (d *Device) schedule(start sim.Time, base time.Duration, bytes int, gbps float64, done func()) {
	// Earliest-free channel.
	best := 0
	for i, f := range d.chanFree {
		if f < d.chanFree[best] {
			best = i
		}
	}
	if d.chanFree[best] > start {
		start = d.chanFree[best]
	}
	service := base + time.Duration(float64(bytes)*8/gbps)
	finish := start.Add(service)
	d.chanFree[best] = finish
	d.sim.At(finish, done)
}

// Read services an n-byte device read, invoking done at completion.
func (d *Device) Read(n int, done func()) {
	d.Reads++
	d.BytesRead += uint64(n)
	d.schedule(d.admit(), d.cfg.ReadLatency, n, d.cfg.ReadGbps, done)
}

// Write services an n-byte device write.
func (d *Device) Write(n int, done func()) {
	d.Writes++
	d.BytesWritten += uint64(n)
	d.schedule(d.admit(), d.cfg.WriteLatency, n, d.cfg.WriteGbps, done)
}

// Controller is the target-side NVMe-over-Falcon endpoint: it owns the
// device and serves the client's commands.
type Controller struct {
	sim *sim.Simulator
	ep  *core.Endpoint
	dev *Device
	mtu int

	// Pending write commands being gathered from the client.
	writes map[uint64]*writeState
	// Pending read commands: one device operation serves every pull
	// chunk of the command.
	reads map[uint64]*readState
}

type readState struct {
	devDone  bool
	expected int // chunks this command will serve in total
	served   int
	waiting  []pendingChunk
}

type pendingChunk struct {
	rsn uint64
	n   uint32
}

type writeState struct {
	id        uint64
	total     int
	pulled    int
	remaining int
}

// NewController attaches a controller (and its device) to a Falcon
// endpoint.
func NewController(ep *core.Endpoint, dev *Device, mtu int) *Controller {
	if mtu <= 0 {
		mtu = 4096
	}
	c := &Controller{
		sim: dev.sim, ep: ep, dev: dev, mtu: mtu,
		writes: make(map[uint64]*writeState),
		reads:  make(map[uint64]*readState),
	}
	ep.SetTarget((*ctrlTarget)(c))
	return c
}

// ctrlTarget is the controller's TL handler.
type ctrlTarget Controller

var _ tl.TargetHandler = (*ctrlTarget)(nil)

// HandlePush receives write commands (and nothing else at the controller).
func (t *ctrlTarget) HandlePush(rsn uint64, p *wire.Packet) tl.TargetVerdict {
	c := (*Controller)(t)
	if p.UlpOp != opWriteCmd {
		return tl.TargetVerdict{Kind: tl.TargetError}
	}
	id := p.Addr
	total := int(binary.BigEndian.Uint32(p.Data[:4]))
	c.writes[id] = &writeState{id: id, total: total, remaining: total}
	c.pullWriteData(c.writes[id], 0)
	return tl.TargetVerdict{}
}

// pullWriteData issues the data pulls for a write command starting at
// offset off (Table 2: NVMe Write is Push and Pull). Backpressure pauses
// issuance and resumes from the current offset.
func (c *Controller) pullWriteData(ws *writeState, off int) {
	if ws.total == 0 {
		c.dev.Write(0, func() { c.finishWrite(ws, nil) })
		return
	}
	for off < ws.total {
		seg := ws.total - off
		if seg > c.mtu {
			seg = c.mtu
		}
		segLen := seg
		if _, err := c.ep.TL().PullOp(opWriteData, ws.id<<32|uint64(off), uint32(seg), func(_ []byte, err error) {
			if err != nil {
				c.finishWrite(ws, err)
				return
			}
			ws.pulled += segLen
			if ws.pulled >= ws.total {
				// All data landed: commit to the device, then
				// complete the command.
				c.dev.Write(ws.total, func() { c.finishWrite(ws, nil) })
			}
		}); err != nil {
			resume := off
			c.sim.After(20*time.Microsecond, func() { c.pullWriteData(ws, resume) })
			return
		}
		off += seg
	}
}

// finishWrite pushes the completion (the CQE) back to the client.
func (c *Controller) finishWrite(ws *writeState, err error) {
	delete(c.writes, ws.id)
	status := make([]byte, 1)
	if err != nil {
		status[0] = 1
	}
	for {
		if _, e := c.ep.TL().PushOp(opCompletion, ws.id, status, 1, nil); e == nil {
			return
		}
		// Resource pressure on completions is transient; retry.
		c.sim.After(20*time.Microsecond, func() { c.finishWrite(ws, err) })
		return
	}
}

// HandlePull serves read commands, answering asynchronously after the
// device's service time. The MTU-sized pull chunks of one client Read all
// carry the same read ID: the first chunk starts a single device command
// for the whole read, and every chunk's response is released when that
// command completes (an NVMe read is one device operation regardless of
// how the transport segments the data).
func (t *ctrlTarget) HandlePull(rsn uint64, p *wire.Packet) ([]byte, uint32, tl.TargetVerdict) {
	c := (*Controller)(t)
	if p.UlpOp != opRead {
		return nil, 0, tl.TargetVerdict{Kind: tl.TargetError}
	}
	id := p.Addr >> 32
	total := int(uint32(p.Addr))
	rs, ok := c.reads[id]
	if !ok {
		expected := 1
		if total > c.mtu {
			expected = (total + c.mtu - 1) / c.mtu
		}
		rs = &readState{expected: expected}
		c.reads[id] = rs
		c.dev.Read(total, func() {
			rs.devDone = true
			for _, ch := range rs.waiting {
				c.ep.TL().CompletePull(ch.rsn, nil, ch.n)
			}
			rs.served += len(rs.waiting)
			rs.waiting = nil
			if rs.served >= rs.expected {
				delete(c.reads, id)
			}
		})
	}
	if rs.devDone {
		// A chunk arriving after the device completed (the client's
		// pulls can be spread out by backpressure) is served from the
		// already-read data.
		rs.served++
		if rs.served >= rs.expected {
			delete(c.reads, id)
		}
		return nil, p.PullLength, tl.TargetVerdict{}
	}
	rs.waiting = append(rs.waiting, pendingChunk{rsn: rsn, n: p.PullLength})
	return nil, 0, tl.TargetVerdict{Kind: tl.TargetAsync}
}

// Client is the initiator-side NVMe-over-Falcon API.
type Client struct {
	sim *sim.Simulator
	ep  *core.Endpoint
	mtu int

	nextWriteID uint64
	nextReadID  uint64
	// Outstanding writes awaiting their completion push.
	writes map[uint64]*clientWrite
}

type clientWrite struct {
	total int
	done  func(error)
}

// ErrDevice reports a failed command.
var ErrDevice = errors.New("nvme: device error")

// NewClient attaches a client to a Falcon endpoint; its TL handler serves
// the controller's data pulls and completion pushes.
func NewClient(s *sim.Simulator, ep *core.Endpoint, mtu int) *Client {
	if mtu <= 0 {
		mtu = 4096
	}
	c := &Client{sim: s, ep: ep, mtu: mtu, nextWriteID: 1, writes: make(map[uint64]*clientWrite)}
	ep.SetTarget((*clientTarget)(c))
	return c
}

// Read issues an n-byte read at the logical block address; done fires when
// all data has arrived. The read is one device command; the transport
// segments the data into MTU pulls sharing a read ID. Chunks refused by
// transaction-layer backpressure are re-issued as resources free, so Read
// never fails mid-command.
func (c *Client) Read(lba uint64, n int, done func(error)) error {
	id := c.nextReadID
	c.nextReadID++
	segs := 1
	if n > c.mtu {
		segs = (n + c.mtu - 1) / c.mtu
	}
	remaining := segs
	var firstErr error
	chunkDone := func(_ []byte, err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 && done != nil {
			done(firstErr)
		}
	}
	addr := id<<32 | uint64(uint32(n))
	var issue func(i, off int)
	issue = func(i, off int) {
		for ; i < segs; i++ {
			seg := n - off
			if seg > c.mtu {
				seg = c.mtu
			}
			if _, err := c.ep.TL().PullOp(opRead, addr, uint32(seg), chunkDone); err != nil {
				ri, ro := i, off
				c.sim.After(20*time.Microsecond, func() { issue(ri, ro) })
				return
			}
			off += seg
		}
	}
	issue(0, 0)
	return nil
}

// Write issues an n-byte write; the command is pushed, the controller
// pulls the data, and done fires on the completion push.
func (c *Client) Write(lba uint64, n int, done func(error)) error {
	id := c.nextWriteID
	c.nextWriteID++
	cmd := make([]byte, 8)
	binary.BigEndian.PutUint32(cmd, uint32(n))
	binary.BigEndian.PutUint32(cmd[4:], uint32(lba))
	c.writes[id] = &clientWrite{total: n, done: done}
	if _, err := c.ep.TL().PushOp(opWriteCmd, id, cmd, uint32(len(cmd)), nil); err != nil {
		delete(c.writes, id)
		return fmt.Errorf("nvme write cmd: %w", err)
	}
	return nil
}

// clientTarget serves the controller-initiated transactions at the client.
type clientTarget Client

var _ tl.TargetHandler = (*clientTarget)(nil)

// HandlePush receives write completions (CQEs).
func (t *clientTarget) HandlePush(rsn uint64, p *wire.Packet) tl.TargetVerdict {
	c := (*Client)(t)
	if p.UlpOp != opCompletion {
		return tl.TargetVerdict{Kind: tl.TargetError}
	}
	id := p.Addr
	w, ok := c.writes[id]
	if !ok {
		return tl.TargetVerdict{}
	}
	delete(c.writes, id)
	var err error
	if p.Data != nil && len(p.Data) > 0 && p.Data[0] != 0 {
		err = ErrDevice
	}
	if w.done != nil {
		w.done(err)
	}
	return tl.TargetVerdict{}
}

// HandlePull serves the controller's write-data pulls from the client's
// buffers (size-only).
func (t *clientTarget) HandlePull(rsn uint64, p *wire.Packet) ([]byte, uint32, tl.TargetVerdict) {
	if p.UlpOp != opWriteData {
		return nil, 0, tl.TargetVerdict{Kind: tl.TargetError}
	}
	return nil, p.PullLength, tl.TargetVerdict{}
}
