package experiments

import (
	"time"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/nvme"
	"falcon/internal/rdma"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/swtransport"
	"falcon/internal/workload"
)

// collectiveTable runs one MPI collective over RDMA-Falcon and TCP across
// message sizes (the §6.3 Intel-MPI-Benchmark comparisons).
//
// Scaled down: ranks per node reduced from the paper's 192 to 4 (the
// collective algorithms and per-message transport costs set the shape;
// rank count scales both columns alike).
func collectiveTable(title string, nodes, ranksPerNode int,
	coll func(workload.Messenger, int, func()), sizes []int) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"msg size", "RDMA-Falcon", "TCP", "speedup"},
	}
	ranks := nodes * ranksPerNode
	run := func(falcon bool, bytes int) time.Duration {
		s := sim.New(25)
		var m workload.Messenger
		if falcon {
			m, _ = workload.BuildFalconJob(s, nodes, ranksPerNode, ranks)
		} else {
			m, _ = workload.BuildSWJob(s, nodes, ranksPerNode, ranks, swtransport.TCP())
		}
		var done sim.Time
		coll(m, bytes, func() { done = s.Now() })
		s.Run()
		return done.Duration()
	}
	for _, bytes := range sizes {
		f := run(true, bytes)
		tc := run(false, bytes)
		t.Rows = append(t.Rows, []string{fmtSize(bytes), dur(f), dur(tc), f1(float64(tc) / float64(f))})
	}
	return t
}

// Fig25 reproduces the AllReduce comparison (32 nodes in the paper).
func Fig25() *Table {
	return collectiveTable("Figure 25: MPI AllReduce completion time (16 nodes x 4 ranks)",
		16, 4, workload.AllReduce, []int{4, 64, 1 << 10, 16 << 10, 64 << 10, 256 << 10})
}

// Fig26 reproduces the AllToAll comparison.
func Fig26() *Table {
	return collectiveTable("Figure 26: MPI AllToAll completion time (16 nodes x 4 ranks)",
		16, 4, workload.AllToAll, []int{4, 64, 1 << 10, 16 << 10, 64 << 10})
}

// Fig30 reproduces the AllGather comparison (8 nodes in the paper).
func Fig30() *Table {
	return collectiveTable("Figure 30: MPI AllGather completion time (8 nodes x 4 ranks)",
		8, 4, workload.AllGather, []int{4, 64, 1 << 10, 16 << 10, 64 << 10})
}

// Fig31 reproduces the MultiPingPong comparison (2 nodes in the paper).
func Fig31() *Table {
	t := &Table{
		Title:   "Figure 31: MPI MultiPingPong completion time (2 nodes x 8 ranks, 50 iters)",
		Columns: []string{"msg size", "RDMA-Falcon", "TCP", "speedup"},
	}
	run := func(falcon bool, bytes int) time.Duration {
		s := sim.New(31)
		var m workload.Messenger
		if falcon {
			m, _ = workload.BuildFalconJob(s, 2, 8, 16)
		} else {
			m, _ = workload.BuildSWJob(s, 2, 8, 16, swtransport.TCP())
		}
		var done sim.Time
		workload.MultiPingPong(m, bytes, 50, func() { done = s.Now() })
		s.Run()
		return done.Duration()
	}
	for _, bytes := range []int{4, 64, 1 << 10, 16 << 10, 64 << 10} {
		f := run(true, bytes)
		tc := run(false, bytes)
		t.Rows = append(t.Rows, []string{fmtSize(bytes), dur(f), dur(tc), f1(float64(tc) / float64(f))})
	}
	return t
}

// Fig27 reproduces the GROMACS scaling study: steps/s vs node count over
// Falcon and TCP. TCP stops scaling once per-step communication dominates.
func Fig27() *Table {
	return hpcTable("Figure 27: GROMACS-like scaling (steps/s)", workload.DefaultGromacs)
}

// Fig28 reproduces the WRF scaling study.
func Fig28() *Table {
	return hpcTable("Figure 28: WRF-like scaling (steps/s)", workload.DefaultWRF)
}

func hpcTable(title string, cfgFor func(int) workload.HPCConfig) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"nodes", "RDMA-Falcon", "TCP", "speedup"},
	}
	for _, nodes := range []int{1, 2, 4, 8, 16, 32} {
		falcon := func() float64 {
			s := sim.New(27)
			m, _ := workload.BuildFalconJob(s, nodes, 1, nodes)
			return workload.RunHPC(s, m, cfgFor(nodes))
		}()
		tcp := func() float64 {
			s := sim.New(27)
			m, _ := workload.BuildSWJob(s, nodes, 1, nodes, swtransport.TCP())
			return workload.RunHPC(s, m, cfgFor(nodes))
		}()
		t.Rows = append(t.Rows, []string{f1(float64(nodes)), f1(falcon), f1(tcp), f2(falcon / tcp)})
	}
	return t
}

// Fig29 reproduces the live-migration comparison: phase durations, guest
// access rate and vCPU wait over RDMA-Falcon vs Pony Express.
func Fig29() *Table {
	t := &Table{
		Title:   "Figure 29: live migration (4GB guest, dirtying under load)",
		Columns: []string{"transport", "pre-copy", "post-copy", "guest pages/s", "vCPU wait"},
	}
	cfg := workload.DefaultMigration()
	cfg.MemoryBytes = 4 << 30
	// Falcon pipe.
	{
		s := sim.New(29)
		link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
		topo, _ := netsim.PointToPoint(s, link)
		cl := core.NewCluster(s)
		a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
		b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
		epA, epB := cl.Connect(a, b, multipathConn())
		qa := rdma.NewQP(epA, rdma.Config{})
		rdma.NewQP(epB, rdma.Config{}).RegisterMemoryLen(1 << 40)
		res := workload.RunMigration(s, workload.NewFalconPipe(s, qa), cfg)
		t.Rows = append(t.Rows, []string{"RDMA-Falcon",
			res.PreCopy.Round(time.Millisecond).String(),
			res.PostCopy.Round(time.Millisecond).String(),
			f1(res.GuestAccessRate), res.VCPUWait.Round(time.Millisecond).String()})
	}
	// Pony Express pipe.
	{
		s := sim.New(29)
		link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
		topo, _ := netsim.PointToPoint(s, link)
		a := swtransport.NewNode(s, topo.Hosts[0], swtransport.PonyExpress())
		b := swtransport.NewNode(s, topo.Hosts[1], swtransport.PonyExpress())
		conn := swtransport.Connect(a, b, 1)
		res := workload.RunMigration(s, workload.NewSWPipe(conn), cfg)
		t.Rows = append(t.Rows, []string{"Pony Express",
			res.PreCopy.Round(time.Millisecond).String(),
			res.PostCopy.Round(time.Millisecond).String(),
			f1(res.GuestAccessRate), res.VCPUWait.Round(time.Millisecond).String()})
	}
	return t
}

// Table4 reproduces the Near Local Flash comparison: NVMe-over-Falcon
// bandwidth/IOPS as a fraction of the locally attached SSD.
func Table4(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Table 4: NLF (NVMe-over-Falcon) relative to local SSD",
		Columns: []string{"metric", "NLF Gbps", "local Gbps", "NLF/local %"},
	}
	remote := func(opBytes int, write bool, window int) float64 {
		s := sim.New(4)
		link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
		topo, _ := netsim.PointToPoint(s, link)
		cl := core.NewCluster(s)
		a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
		b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
		epA, epB := cl.Connect(a, b, multipathConn())
		dev := nvme.NewDevice(s, nvme.DefaultDeviceConfig())
		nvme.NewController(epB, dev, 4096)
		client := nvme.NewClient(s, epA, 4096)
		var bytesDone uint64
		issuer := workload.NewClosedLoop(s, window, 1<<30, func(opDone func()) bool {
			fn := func(err error) {
				if err == nil {
					bytesDone += uint64(opBytes)
				}
				opDone()
			}
			var err error
			if write {
				err = client.Write(0, opBytes, fn)
			} else {
				err = client.Read(0, opBytes, fn)
			}
			return err == nil
		}, nil)
		issuer.Start()
		s.RunUntil(sim.Time(runFor))
		return stats.Gbps(bytesDone, runFor)
	}
	local := func(opBytes int, write bool, window int) float64 {
		s := sim.New(4)
		dev := nvme.NewDevice(s, nvme.DefaultDeviceConfig())
		var bytesDone uint64
		issuer := workload.NewClosedLoop(s, window, 1<<30, func(opDone func()) bool {
			fn := func() {
				bytesDone += uint64(opBytes)
				opDone()
			}
			if write {
				dev.Write(opBytes, fn)
			} else {
				dev.Read(opBytes, fn)
			}
			return true
		}, nil)
		issuer.Start()
		s.RunUntil(sim.Time(runFor))
		return stats.Gbps(bytesDone, runFor)
	}
	rows := []struct {
		name   string
		bytes  int
		write  bool
		window int
	}{
		{"read bandwidth (16KB)", 16 << 10, false, 64},
		{"write bandwidth (1MB)", 1 << 20, true, 16},
		{"IOPS proxy (4KB reads)", 4 << 10, false, 64},
	}
	for _, r := range rows {
		rg := remote(r.bytes, r.write, r.window)
		lg := local(r.bytes, r.write, r.window)
		t.Rows = append(t.Rows, []string{r.name, f1(rg), f1(lg), f1(100 * rg / lg)})
	}
	return t
}
