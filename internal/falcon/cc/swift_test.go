package cc

import (
	"testing"
	"testing/quick"
	"time"

	"falcon/internal/sim"
)

func swiftAt(cwnd float64) *Swift {
	return NewSwift(DefaultSwiftConfig(), cwnd)
}

func TestSwiftIncreasesBelowTarget(t *testing.T) {
	s := swiftAt(10)
	before := s.Cwnd()
	s.OnAck(Sample{FabricDelay: 5 * time.Microsecond, RTT: 30 * time.Microsecond, AckedPackets: 1, Now: 1000})
	if s.Cwnd() <= before {
		t.Fatalf("cwnd %v did not increase below target", s.Cwnd())
	}
}

func TestSwiftDecreasesAboveTarget(t *testing.T) {
	s := swiftAt(10)
	before := s.Cwnd()
	s.OnAck(Sample{FabricDelay: 200 * time.Microsecond, RTT: 250 * time.Microsecond, AckedPackets: 1, Now: 1000})
	if s.Cwnd() >= before {
		t.Fatalf("cwnd %v did not decrease above target", s.Cwnd())
	}
}

func TestSwiftDecreaseOncePerRTT(t *testing.T) {
	s := swiftAt(100)
	overload := Sample{FabricDelay: 500 * time.Microsecond, RTT: 50 * time.Microsecond, AckedPackets: 1, Now: 0}
	s.OnAck(overload)
	after1 := s.Cwnd()
	// Immediately after (within one SRTT): no further decrease.
	overload.Now = 1000 // 1us later << 50us SRTT
	s.OnAck(overload)
	if s.Cwnd() != after1 {
		t.Fatalf("second decrease within an RTT: %v -> %v", after1, s.Cwnd())
	}
	// After an SRTT has passed, decrease applies again.
	overload.Now = sim.Time(60 * 1000)
	s.OnAck(overload)
	if s.Cwnd() >= after1 {
		t.Fatalf("no decrease after an RTT: %v", s.Cwnd())
	}
}

func TestSwiftMaxMDFCapsDecrease(t *testing.T) {
	cfg := DefaultSwiftConfig()
	s := NewSwift(cfg, 100)
	// Enormous overshoot: decrease must be capped at MaxMDF.
	s.OnAck(Sample{FabricDelay: time.Second, RTT: time.Second, AckedPackets: 1, Now: 0})
	want := 100 * (1 - cfg.MaxMDF)
	if s.Cwnd() < want-0.001 {
		t.Fatalf("cwnd %v below MaxMDF floor %v", s.Cwnd(), want)
	}
}

func TestSwiftBounds(t *testing.T) {
	cfg := DefaultSwiftConfig()
	s := NewSwift(cfg, cfg.MaxCwnd)
	for i := 0; i < 1000; i++ {
		s.OnAck(Sample{FabricDelay: time.Microsecond, RTT: 20 * time.Microsecond, AckedPackets: 10, Now: sim.Time(i) * 100000})
	}
	if s.Cwnd() > cfg.MaxCwnd {
		t.Fatalf("cwnd %v exceeded max %v", s.Cwnd(), cfg.MaxCwnd)
	}
	for i := 0; i < 1000; i++ {
		s.OnAck(Sample{FabricDelay: time.Second, RTT: 20 * time.Microsecond, AckedPackets: 1, Now: sim.Time(i) * 100_000_000})
	}
	if s.Cwnd() < cfg.MinCwnd {
		t.Fatalf("cwnd %v below min %v", s.Cwnd(), cfg.MinCwnd)
	}
}

func TestSwiftRTOCollapse(t *testing.T) {
	cfg := DefaultSwiftConfig()
	s := NewSwift(cfg, 100)
	if got := s.OnRetransmitTimeout(); got != cfg.RTOCwnd {
		t.Fatalf("post-RTO cwnd = %v, want %v", got, cfg.RTOCwnd)
	}
}

func TestSwiftFastRetransmitDecrease(t *testing.T) {
	s := swiftAt(64)
	got := s.OnFastRetransmit(1000)
	if got >= 64 {
		t.Fatalf("fast retransmit did not decrease cwnd: %v", got)
	}
	// Second within the same RTT window is a no-op (tLast gate). SRTT is
	// zero here so decreases are ungated; seed an RTT first.
	s2 := swiftAt(64)
	s2.OnAck(Sample{FabricDelay: time.Microsecond, RTT: 50 * time.Microsecond, AckedPackets: 1, Now: 0})
	a := s2.OnFastRetransmit(1000)
	b := s2.OnFastRetransmit(2000)
	if b != a {
		t.Fatalf("second fast-retransmit decrease within RTT: %v -> %v", a, b)
	}
}

func TestSwiftTargetScalesWithHops(t *testing.T) {
	s := swiftAt(10)
	if s.TargetDelay(5) <= s.TargetDelay(1) {
		t.Fatal("target delay should grow with hop count")
	}
}

func TestSwiftConvergesTowardTargetDelay(t *testing.T) {
	// Closed-loop toy model: delay grows linearly with cwnd beyond a
	// knee. Swift should stabilize near the cwnd where delay ≈ target.
	cfg := DefaultSwiftConfig()
	s := NewSwift(cfg, 1)
	rtt := 30 * time.Microsecond
	now := sim.Time(0)
	model := func(cwnd float64) time.Duration {
		// 16 packets fit the pipe; beyond that each packet adds 3us.
		if cwnd <= 16 {
			return 10 * time.Microsecond
		}
		return 10*time.Microsecond + time.Duration((cwnd-16)*3000)
	}
	for i := 0; i < 3000; i++ {
		now = now.Add(rtt)
		s.OnAck(Sample{FabricDelay: model(s.Cwnd()), RTT: rtt, AckedPackets: int(s.Cwnd() + 1), Now: now})
	}
	// Equilibrium: delay(cwnd) == 25us -> cwnd == 21.
	if s.Cwnd() < 14 || s.Cwnd() > 30 {
		t.Fatalf("cwnd %v did not converge near 21", s.Cwnd())
	}
}

func TestSwiftFractionalWindowPacing(t *testing.T) {
	cfg := DefaultSwiftConfig()
	s := NewSwift(cfg, 0.5)
	if s.PacingDelay() != 0 {
		t.Fatal("pacing delay needs an SRTT")
	}
	s.OnAck(Sample{FabricDelay: time.Second, RTT: 40 * time.Microsecond, AckedPackets: 1, Now: 0})
	if s.Cwnd() >= 1 {
		t.Skip("window rose above 1; pacing not applicable")
	}
	if d := s.PacingDelay(); d < 40*time.Microsecond {
		t.Fatalf("pacing delay %v should exceed srtt for cwnd < 1", d)
	}
}

func TestNcwndConvergesToOccupancyTarget(t *testing.T) {
	cfg := DefaultNcwndConfig()
	n := NewNcwnd(cfg, 8)
	rtt := 20 * time.Microsecond
	now := sim.Time(0)
	// Occupancy model: proportional to cwnd; occ = cwnd/100.
	for i := 0; i < 5000; i++ {
		now = now.Add(rtt)
		occ := n.Cwnd() / 100
		n.OnAck(occ, int(n.Cwnd()+1), rtt, now)
	}
	// Equilibrium: occ == 0.25 -> cwnd == 25.
	if n.Cwnd() < 15 || n.Cwnd() > 40 {
		t.Fatalf("ncwnd %v did not converge near 25", n.Cwnd())
	}
}

func TestNcwndDropsUnderFullBuffer(t *testing.T) {
	n := NewNcwnd(DefaultNcwndConfig(), 100)
	before := n.Cwnd()
	n.OnAck(1.0, 1, 20*time.Microsecond, 0)
	if n.Cwnd() >= before {
		t.Fatalf("ncwnd %v did not decrease with full buffer", n.Cwnd())
	}
}

func TestNcwndBounds(t *testing.T) {
	cfg := DefaultNcwndConfig()
	n := NewNcwnd(cfg, cfg.MaxCwnd)
	for i := 0; i < 100; i++ {
		n.OnAck(0, 100, 20*time.Microsecond, sim.Time(i)*1_000_000)
	}
	if n.Cwnd() > cfg.MaxCwnd {
		t.Fatalf("ncwnd above max: %v", n.Cwnd())
	}
	for i := 0; i < 1000; i++ {
		n.OnAck(1, 1, 20*time.Microsecond, sim.Time(i)*100_000_000)
	}
	if n.Cwnd() < cfg.MinCwnd {
		t.Fatalf("ncwnd below min: %v", n.Cwnd())
	}
}

// Property: cwnd stays within [MinCwnd, MaxCwnd] for arbitrary sample
// sequences.
func TestQuickSwiftBounded(t *testing.T) {
	cfg := DefaultSwiftConfig()
	f := func(delaysUs []uint16, acked []uint8) bool {
		s := NewSwift(cfg, 10)
		now := sim.Time(0)
		for i, d := range delaysUs {
			a := 1
			if i < len(acked) {
				a = int(acked[i])
			}
			now = now.Add(10 * time.Microsecond)
			s.OnAck(Sample{
				FabricDelay:  time.Duration(d) * time.Microsecond,
				RTT:          time.Duration(d+10) * time.Microsecond,
				AckedPackets: a,
				Now:          now,
			})
			if s.Cwnd() < cfg.MinCwnd || s.Cwnd() > cfg.MaxCwnd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNewWithZeroInitial(t *testing.T) {
	cfg := DefaultSwiftConfig()
	s := NewSwift(cfg, 0)
	if s.Cwnd() <= 0 {
		t.Fatal("zero initial should default to a positive window")
	}
	n := NewNcwnd(DefaultNcwndConfig(), 0)
	if n.Cwnd() <= 0 {
		t.Fatal("zero initial ncwnd should default positive")
	}
}

func TestOnECNDecreasesGently(t *testing.T) {
	cfg := DefaultSwiftConfig()
	s := NewSwift(cfg, 100)
	after := s.OnECN(0)
	wantFloor := 100 * (1 - cfg.MaxMDF/2)
	if after < wantFloor-0.001 || after >= 100 {
		t.Fatalf("OnECN cwnd = %v, want one gentle decrease to ~%v", after, wantFloor)
	}
	// Gated once per RTT.
	s.OnAck(Sample{FabricDelay: time.Microsecond, RTT: 50 * time.Microsecond, AckedPackets: 1, Now: 0})
	a := s.OnECN(1000)
	b := s.OnECN(2000)
	if b != a {
		t.Fatalf("second ECN decrease within an RTT: %v -> %v", a, b)
	}
}
