package psp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

var master = []byte("falcon-device-master-key-0123456")

func newTestSA(t *testing.T, spi uint32) *SA {
	t.Helper()
	sa, err := NewSA(master, spi)
	if err != nil {
		t.Fatal(err)
	}
	return sa
}

// pair returns matched transmit/receive SAs (same key material).
func pair(t *testing.T, spi uint32) (*SA, *SA) {
	return newTestSA(t, spi), newTestSA(t, spi)
}

func TestSealOpenRoundTrip(t *testing.T) {
	tx, rx := pair(t, 7)
	pt := []byte("transport header|secret payload bytes")
	sealed, err := tx.Seal(pt, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != len(pt)+Overhead {
		t.Fatalf("sealed length %d, want %d", len(sealed), len(pt)+Overhead)
	}
	got, _, err := rx.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestCleartextRegionVisibleCiphertextNot(t *testing.T) {
	tx, _ := pair(t, 7)
	pt := []byte("HEADERHEADERHDR!secret-secret-secret")
	sealed, err := tx.Seal(pt, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sealed[16:32], pt[:16]) {
		t.Fatal("crypt-offset region should remain cleartext on the wire")
	}
	if bytes.Contains(sealed, []byte("secret")) {
		t.Fatal("payload appears in cleartext")
	}
}

func TestTamperDetected(t *testing.T) {
	tx, rx := pair(t, 7)
	sealed, _ := tx.Seal([]byte("some payload"), 4, 0)
	for _, idx := range []int{0, 5, headerLen + 1, len(sealed) - 1} {
		mutated := append([]byte{}, sealed...)
		mutated[idx] ^= 0x40
		if _, _, err := rx.Open(mutated); err == nil {
			t.Fatalf("tamper at byte %d not detected", idx)
		}
	}
	if rx.AuthFails == 0 {
		t.Fatal("auth failures not counted")
	}
}

func TestTamperedCleartextRejected(t *testing.T) {
	// The cleartext region is authenticated as associated data.
	tx, rx := pair(t, 7)
	sealed, _ := tx.Seal([]byte("HDRHDRHDRHDRpayl"), 12, 0)
	sealed[headerLen] ^= 1 // flip a cleartext header byte
	if _, _, err := rx.Open(sealed); !errors.Is(err, ErrAuth) {
		t.Fatalf("tampered cleartext: err = %v, want ErrAuth", err)
	}
}

func TestWrongKeyFails(t *testing.T) {
	tx := newTestSA(t, 7)
	other, err := NewSA([]byte("a-completely-different-master-ke"), 7)
	if err != nil {
		t.Fatal(err)
	}
	sealed, _ := tx.Seal([]byte("payload"), 0, 0)
	if _, _, err := other.Open(sealed); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong key: err = %v, want ErrAuth", err)
	}
}

func TestWrongSPIRejected(t *testing.T) {
	tx := newTestSA(t, 7)
	rx := newTestSA(t, 8)
	sealed, _ := tx.Seal([]byte("payload"), 0, 0)
	if _, _, err := rx.Open(sealed); err == nil {
		t.Fatal("SPI mismatch accepted")
	}
}

func TestIVCarriesTimestamp(t *testing.T) {
	tx, rx := pair(t, 9)
	const stamp = uint64(123456789012)
	sealed, err := tx.Seal([]byte("data"), 0, stamp)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := IV(sealed)
	if err != nil || iv != stamp {
		t.Fatalf("IV = %d, %v; want %d", iv, err, stamp)
	}
	_, openedIV, err := rx.Open(sealed)
	if err != nil || openedIV != stamp {
		t.Fatalf("opened IV = %d, %v", openedIV, err)
	}
	if spi, _ := SPIOf(sealed); spi != 9 {
		t.Fatalf("SPIOf = %d", spi)
	}
}

func TestMonotonicIVEnforced(t *testing.T) {
	tx := newTestSA(t, 7)
	if _, err := tx.Seal([]byte("a"), 0, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Seal([]byte("b"), 0, 100); err == nil {
		t.Fatal("reused transmit IV accepted")
	}
	if _, err := tx.Seal([]byte("c"), 0, 101); err != nil {
		t.Fatalf("next IV rejected: %v", err)
	}
}

func TestReplayRejected(t *testing.T) {
	tx, rx := pair(t, 7)
	s1, _ := tx.Seal([]byte("one"), 0, 0)
	if _, _, err := rx.Open(s1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rx.Open(s1); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay: err = %v, want ErrReplay", err)
	}
	if rx.Replays != 1 {
		t.Fatalf("replay count = %d", rx.Replays)
	}
}

func TestReplayWindowDisabledForReorderingBearers(t *testing.T) {
	tx, rx := pair(t, 7)
	rx.ReplayWindowDisabled = true
	s1, _ := tx.Seal([]byte("one"), 0, 10)
	s2, _ := tx.Seal([]byte("two"), 0, 20)
	if _, _, err := rx.Open(s2); err != nil {
		t.Fatal(err)
	}
	// Out-of-order arrival must still open when the window is off.
	if _, _, err := rx.Open(s1); err != nil {
		t.Fatalf("reordered packet rejected: %v", err)
	}
}

func TestShortPacketErrors(t *testing.T) {
	rx := newTestSA(t, 7)
	if _, _, err := rx.Open(make([]byte, headerLen)); !errors.Is(err, ErrShort) {
		t.Fatalf("short packet: %v", err)
	}
	if _, err := IV(make([]byte, 3)); !errors.Is(err, ErrShort) {
		t.Fatalf("short IV: %v", err)
	}
	// Crypt offset pointing past the packet.
	tx := newTestSA(t, 7)
	sealed, _ := tx.Seal([]byte("abcd"), 2, 0)
	sealed[13] = 0xFF // corrupt crypt offset to a huge value
	if _, _, err := rx.Open(sealed); err == nil {
		t.Fatal("oversized crypt offset accepted")
	}
}

func TestCryptOffsetBounds(t *testing.T) {
	tx := newTestSA(t, 7)
	if _, err := tx.Seal([]byte("abc"), -1, 0); err == nil {
		t.Fatal("negative crypt offset accepted")
	}
	if _, err := tx.Seal([]byte("abc"), 4, 0); err == nil {
		t.Fatal("crypt offset past end accepted")
	}
	// Whole-packet cleartext (offset == len) is legal: authenticate only.
	sealed, err := tx.Seal([]byte("abc"), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rx := newTestSA(t, 7)
	got, _, err := rx.Open(sealed)
	if err != nil || !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("authenticate-only packet: %q, %v", got, err)
	}
}

func TestKeyDerivationDistinctPerSPI(t *testing.T) {
	k1 := DeriveKey(master, 1)
	k2 := DeriveKey(master, 2)
	if k1 == k2 {
		t.Fatal("different SPIs derived the same key")
	}
	if DeriveKey(master, 1) != k1 {
		t.Fatal("derivation not deterministic")
	}
}

// Property: seal/open round-trips arbitrary payloads at arbitrary valid
// crypt offsets.
func TestQuickRoundTrip(t *testing.T) {
	tx, rx := pair(t, 3)
	rx.ReplayWindowDisabled = true
	f := func(payload []byte, off uint8) bool {
		cryptOffset := 0
		if len(payload) > 0 {
			cryptOffset = int(off) % (len(payload) + 1)
		}
		sealed, err := tx.Seal(payload, cryptOffset, 0)
		if err != nil {
			return false
		}
		got, _, err := rx.Open(sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeal4KB(b *testing.B) {
	sa, _ := NewSA(master, 1)
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sa.Seal(payload, 64, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen4KB(b *testing.B) {
	tx, _ := NewSA(master, 1)
	rx, _ := NewSA(master, 1)
	rx.ReplayWindowDisabled = true
	payload := make([]byte, 4096)
	sealed, _ := tx.Seal(payload, 64, 0)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := rx.Open(sealed); err != nil {
			b.Fatal(err)
		}
	}
}
