package tl

import (
	"math/rand"
	"testing"
)

// TestRSNTableProperty drives both rsnTable backends — the dense
// power-of-two ring and the legacy map — through the same randomized
// transaction-lifecycle workload alongside a plain map model, checking
// after every operation batch that len, membership, lookups, deletions,
// and sorted key iteration all agree. The workload mirrors how the TL
// uses the table: keys are assigned sequentially (nextRSN++), deleted in
// roughly arrival order with random skips (acks, cancellations, RNR
// retries completing out of order), and occasionally drained wholesale
// (connection failure).
func TestRSNTableProperty(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		name := "dense"
		if legacy {
			name = "legacy"
		}
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				rng := rand.New(rand.NewSource(seed))
				tab := newRSNTable[int](legacy)
				model := map[uint64]int{}
				var live []uint64 // model keys, insertion order
				next := uint64(0)
				if seed%2 == 0 {
					// Half the seeds start near a high RSN so large
					// absolute keys (and low/high bound handling far from
					// zero) are exercised too.
					next = uint64(1)<<40 + uint64(rng.Intn(1000))
				}

				checkSorted := func() {
					got := tab.sorted()
					want := append([]uint64(nil), live...)
					sortRSNs(want)
					if len(got) != len(want) {
						t.Fatalf("seed %d: sorted len %d, model %d", seed, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("seed %d: sorted[%d] = %d, model %d", seed, i, got[i], want[i])
						}
					}
				}

				for step := 0; step < 4000; step++ {
					switch op := rng.Intn(10); {
					case op < 4: // insert the next sequential RSN
						v := rng.Int()
						tab.put(next, v)
						model[next] = v
						live = append(live, next)
						next++
					case op < 6 && len(live) > 0: // delete near the front (in-order ack)
						i := rng.Intn(minv(len(live), 4))
						rsn := live[i]
						live = append(live[:i], live[i+1:]...)
						wantV := model[rsn]
						delete(model, rsn)
						gotV, ok := tab.del(rsn)
						if !ok || gotV != wantV {
							t.Fatalf("seed %d step %d: del(%d) = %d,%v want %d,true", seed, step, rsn, gotV, ok, wantV)
						}
					case op < 7 && len(live) > 0: // delete anywhere (unordered completion)
						i := rng.Intn(len(live))
						rsn := live[i]
						live = append(live[:i], live[i+1:]...)
						delete(model, rsn)
						if _, ok := tab.del(rsn); !ok {
							t.Fatalf("seed %d step %d: del(%d) missed", seed, step, rsn)
						}
					case op < 8: // overwrite a live key (retry state update)
						if len(live) == 0 {
							continue
						}
						rsn := live[rng.Intn(len(live))]
						v := rng.Int()
						tab.put(rsn, v)
						model[rsn] = v
					case op < 9: // probe a key that may or may not be live
						rsn := uint64(0)
						if len(live) > 0 && rng.Intn(2) == 0 {
							rsn = live[rng.Intn(len(live))]
						} else if next > 0 {
							rsn = next - uint64(rng.Intn(int(minv(uint64(200), next))+1))
						}
						wantV, wantOK := model[rsn]
						gotV, gotOK := tab.get(rsn)
						if gotOK != wantOK || (gotOK && gotV != wantV) {
							t.Fatalf("seed %d step %d: get(%d) = %d,%v want %d,%v", seed, step, rsn, gotV, gotOK, wantV, wantOK)
						}
						if tab.has(rsn) != wantOK {
							t.Fatalf("seed %d step %d: has(%d) = %v want %v", seed, step, rsn, !wantOK, wantOK)
						}
					default: // missing-key delete must be a no-op miss
						rsn := next + uint64(rng.Intn(100)) + 1
						if _, ok := tab.del(rsn); ok {
							t.Fatalf("seed %d step %d: del(%d) hit a never-inserted key", seed, step, rsn)
						}
					}
					if tab.len() != len(model) {
						t.Fatalf("seed %d step %d: len %d, model %d", seed, step, tab.len(), len(model))
					}
					if step%97 == 0 {
						checkSorted()
					}
					if step%1511 == 1510 { // wholesale drain (connection failure)
						for _, rsn := range tab.sorted() {
							if _, ok := tab.del(rsn); !ok {
								t.Fatalf("seed %d step %d: drain del(%d) missed", seed, step, rsn)
							}
						}
						model = map[uint64]int{}
						live = live[:0]
					}
				}
				checkSorted()
				// Drain everything and verify emptiness semantics.
				for _, rsn := range tab.sorted() {
					tab.del(rsn)
				}
				if tab.len() != 0 || len(tab.sorted()) != 0 {
					t.Fatalf("seed %d: table not empty after drain", seed)
				}
			}
		})
	}
}

func minv[T int | uint64](a, b T) T {
	if a < b {
		return a
	}
	return b
}
