package tl

// Map-backed rsnTable operations plus the map-iteration scans the legacy
// hot path uses. This file is the only one in the TL allowed to index or
// range over per-RSN maps (the AST lint in internal/testkit exempts it):
// the legacy backend exists as the verification oracle for the dense
// tables, mirroring pdl's LegacyHotPath scan loops.

func (t *rsnTable[T]) getMap(rsn uint64) (T, bool) {
	v, ok := t.m[rsn]
	return v, ok
}

func (t *rsnTable[T]) hasMap(rsn uint64) bool {
	_, ok := t.m[rsn]
	return ok
}

func (t *rsnTable[T]) putMap(rsn uint64, v T) { t.m[rsn] = v }

func (t *rsnTable[T]) delMap(rsn uint64) (T, bool) {
	v, ok := t.m[rsn]
	if ok {
		delete(t.m, rsn)
	}
	return v, ok
}

// completedScanLegacy is the original Completed walk: range the whole
// transaction map and flag pushes below the horizon. Iteration order is
// irrelevant (flag stores only), which is what makes the dense path's
// bounded horizon walk trace-equivalent.
func (c *Conn) completedScanLegacy(completedRSN uint64) {
	for rsn, t := range c.txns.m {
		if rsn < completedRSN && t.kind == txnPush && !t.finished {
			t.finished = true
		}
	}
}

// collectReadyLegacy is the original unordered-completion collection:
// range the map for finished transactions, then sort (the sort re-imposes
// the determinism map order lacks).
func (c *Conn) collectReadyLegacy(ready []uint64) []uint64 {
	for rsn, t := range c.txns.m {
		if t.finished && !t.released {
			ready = append(ready, rsn)
		}
	}
	sortRSNs(ready)
	return ready
}

// sortedKeys returns the map's keys in ascending order, for deterministic
// iteration where side effects (callbacks) escape the loop.
func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortRSNs(keys)
	return keys
}
