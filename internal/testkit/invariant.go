package testkit

import (
	"fmt"
	"math"
	"strings"

	"falcon/internal/falcon/pdl"
	"falcon/internal/falcon/tl"
	"falcon/internal/falcon/wire"
)

// Checker is the protocol invariant checker. Attached as a pdl.Probe and
// tl.Probe, it re-validates the state machines after every observable
// event:
//
//   - cwnd enforcement: a newly transmitted packet never pushes the
//     connection's in-flight count (outstanding minus resource-NACK
//     parked) past min(Σ fcwnd, ncwnd) for request-space packets, or
//     Σ fcwnd for response-space packets (fractional windows admit
//     exactly one in-flight packet).
//   - TX window bounds: base ≤ next, next−base ≤ WindowSize, and the
//     incrementally maintained outstanding counter always equals a fresh
//     scan of the scoreboard.
//   - RX bitmap/base consistency: bit 0 of the RX bitmap is always clear
//     after event processing — a set bit 0 means the cumulative base
//     failed to advance over a received packet.
//   - Monotone cumulative ACK: neither the RX base nor the TX base of
//     either sequence space ever moves backwards.
//   - Exactly-once ULP interaction: a target serves each RSN terminally
//     at most once (and in RSN order on ordered connections); an
//     initiator releases each RSN's completion at most once (in RSN
//     order on ordered connections).
//
// A violation calls FailFunc with a full context dump; the default
// FailFunc panics, so a violated invariant can never be silently ignored.
// The zero value is not usable; construct with NewChecker.
type Checker struct {
	// FailFunc handles invariant violations. nil panics. Sweep tests
	// that expect violations (the harness self-test) install a recorder.
	FailFunc func(format string, args ...any)

	// StrictOutstanding, when positive, additionally bounds the total
	// outstanding packet count of every connection. It exists to prove
	// the harness detects violations: setting it below the real window
	// makes any healthy run trip the checker (see the self-test).
	StrictOutstanding int

	// Checks counts individual invariant evaluations (diagnostics).
	Checks uint64
	// Violations counts violations observed (only visible when FailFunc
	// does not panic).
	Violations uint64

	pdlConns map[*pdl.Conn]*pdlTrack
	tlConns  map[*tl.Conn]*tlTrack
}

// pdlTrack is the checker's shadow state for one PDL connection.
type pdlTrack struct {
	rxBase [wire.NumSpaces]uint32
	txBase [wire.NumSpaces]uint32
}

// tlTrack is the checker's shadow state for one TL connection.
type tlTrack struct {
	served     map[uint64]bool
	servedSeq  uint64 // next RSN expected to be served (ordered conns)
	completed  map[uint64]bool
	releaseSeq uint64 // next RSN expected to complete (ordered conns)
}

// NewChecker returns a checker whose FailFunc panics.
func NewChecker() *Checker {
	return &Checker{
		pdlConns: make(map[*pdl.Conn]*pdlTrack),
		tlConns:  make(map[*tl.Conn]*tlTrack),
	}
}

// Failf reports an externally detected violation (e.g. the sweep runner's
// post-run quiescence checks) through the checker's failure path, so tests
// that install a FailFunc capture it the same way as probe violations.
func (k *Checker) Failf(format string, args ...any) { k.fail(format, args...) }

func (k *Checker) fail(format string, args ...any) {
	k.Violations++
	if k.FailFunc != nil {
		k.FailFunc(format, args...)
		return
	}
	panic(fmt.Sprintf("testkit: invariant violation: "+format, args...))
}

func (k *Checker) pdlTrackFor(c *pdl.Conn) *pdlTrack {
	t, ok := k.pdlConns[c]
	if !ok {
		t = &pdlTrack{}
		k.pdlConns[c] = t
	}
	return t
}

func (k *Checker) tlTrackFor(c *tl.Conn) *tlTrack {
	t, ok := k.tlConns[c]
	if !ok {
		t = &tlTrack{served: make(map[uint64]bool), completed: make(map[uint64]bool)}
		k.tlConns[c] = t
	}
	return t
}

// OnSend implements pdl.Probe: after every data transmission the TX
// windows must be self-consistent, and a *new* transmission must respect
// the congestion windows the scheduler claims to enforce.
func (k *Checker) OnSend(c *pdl.Conn, p *wire.Packet, retransmit bool) {
	k.Checks++
	k.checkTxWindows(c, "send")

	if retransmit {
		return // retransmissions reuse their slot; no window admission
	}
	_, _, outReq := c.TxState(wire.SpaceRequest)
	_, _, outResp := c.TxState(wire.SpaceResponse)
	// The scheduler's window counts in-flight packets: outstanding minus
	// those parked on a resource-NACK backoff (explicitly refused by the
	// peer, so known off the network).
	total := outReq + outResp - c.Parked()
	limit := c.Fcwnd()
	if p.Space == wire.SpaceRequest && c.Ncwnd() < limit {
		limit = c.Ncwnd()
	}
	// canSendData admitted the packet with total-1 < limit; post-increment
	// the bound is ceil(limit), with a floor of one packet for fractional
	// (paced) windows.
	allowed := int(math.Ceil(limit))
	if allowed < 1 {
		allowed = 1
	}
	if total > allowed {
		k.fail("cwnd violation on %v send: outstanding %d > allowed %d (fcwnd=%.3f ncwnd=%.3f)\n%s",
			p.Space, total, allowed, c.Fcwnd(), c.Ncwnd(), DumpConn(c))
	}
	if k.StrictOutstanding > 0 && total > k.StrictOutstanding {
		k.fail("strict outstanding bound: %d > %d\n%s", total, k.StrictOutstanding, DumpConn(c))
	}
}

// OnReceive implements pdl.Probe: after every arriving packet is
// processed, windows must be in bounds, bases monotone, and the RX bitmap
// consistent with its base.
func (k *Checker) OnReceive(c *pdl.Conn, p *wire.Packet) {
	k.Checks++
	t := k.pdlTrackFor(c)
	k.checkTxWindows(c, "receive")
	for _, space := range []wire.Space{wire.SpaceRequest, wire.SpaceResponse} {
		base, bitmap := c.RxState(space)
		if bitmap.Get(0) {
			k.fail("rx bitmap/base inconsistency in %v space: bit 0 set at base %d (base must advance over received packets)\n%s",
				space, base, DumpConn(c))
		}
		if int32(base-t.rxBase[space]) < 0 {
			k.fail("rx base moved backwards in %v space: %d -> %d\n%s",
				space, t.rxBase[space], base, DumpConn(c))
		}
		t.rxBase[space] = base

		txBase, _, _ := c.TxState(space)
		if int32(txBase-t.txBase[space]) < 0 {
			k.fail("tx base moved backwards in %v space: %d -> %d (cumulative ACK must be monotone)\n%s",
				space, t.txBase[space], txBase, DumpConn(c))
		}
		t.txBase[space] = txBase
	}
}

// checkTxWindows validates both TX sequence spaces' structural invariants.
func (k *Checker) checkTxWindows(c *pdl.Conn, when string) {
	winSize := uint32(c.Config().WindowSize)
	for _, space := range []wire.Space{wire.SpaceRequest, wire.SpaceResponse} {
		base, next, outstanding := c.TxState(space)
		if span := next - base; span > winSize {
			k.fail("tx window overflow on %s in %v space: next-base = %d > %d\n%s",
				when, space, span, winSize, DumpConn(c))
		}
		if outstanding < 0 {
			k.fail("negative outstanding count on %s in %v space: %d\n%s",
				when, space, outstanding, DumpConn(c))
		}
		if scan := c.TxUnacked(space); scan != outstanding {
			k.fail("tx scoreboard drift on %s in %v space: counter %d != scan %d\n%s",
				when, space, outstanding, scan, DumpConn(c))
		}
	}
}

// OnRequestServed implements tl.Probe: exactly-once (and, on ordered
// connections, in-order) terminal processing of each request RSN.
func (k *Checker) OnRequestServed(c *tl.Conn, rsn uint64) {
	k.Checks++
	t := k.tlTrackFor(c)
	if t.served[rsn] {
		k.fail("target served RSN %d twice on conn %d", rsn, c.ID())
		return
	}
	t.served[rsn] = true
	if c.Ordered() {
		if rsn != t.servedSeq {
			k.fail("ordered target served RSN %d out of order on conn %d (expected %d)",
				rsn, c.ID(), t.servedSeq)
		}
		t.servedSeq = rsn + 1
	}
}

// OnCompletion implements tl.Probe: exactly-once (and, on ordered
// connections, in-order) completion release per RSN.
func (k *Checker) OnCompletion(c *tl.Conn, rsn uint64, err error) {
	k.Checks++
	t := k.tlTrackFor(c)
	if t.completed[rsn] {
		k.fail("duplicate ULP completion for RSN %d on conn %d", rsn, c.ID())
		return
	}
	t.completed[rsn] = true
	if c.Ordered() {
		if rsn != t.releaseSeq {
			k.fail("ordered completion for RSN %d out of order on conn %d (expected %d)",
				rsn, c.ID(), t.releaseSeq)
		}
		t.releaseSeq = rsn + 1
	}
}

// ServedCount returns how many distinct RSNs the checker has seen served
// on the connection.
func (k *Checker) ServedCount(c *tl.Conn) int {
	if t, ok := k.tlConns[c]; ok {
		return len(t.served)
	}
	return 0
}

// CompletedCount returns how many distinct RSNs have completed on the
// connection.
func (k *Checker) CompletedCount(c *tl.Conn) int {
	if t, ok := k.tlConns[c]; ok {
		return len(t.completed)
	}
	return 0
}

// DumpConn renders a PDL connection's full observable state — the context
// dump attached to every invariant violation.
func DumpConn(c *pdl.Conn) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "conn %d: fcwnd=%.3f ncwnd=%.3f effective=%.3f srtt=%v queued=%d parked=%d\n",
		c.ID(), c.Fcwnd(), c.Ncwnd(), c.EffectiveWindow(), c.SRTT(), c.QueuedPackets(), c.Parked())
	for _, space := range []wire.Space{wire.SpaceRequest, wire.SpaceResponse} {
		txBase, txNext, out := c.TxState(space)
		rxBase, bitmap := c.RxState(space)
		fmt.Fprintf(&sb, "  %v tx: base=%d next=%d outstanding=%d scan=%d | rx: base=%d bitmap=%v\n",
			space, txBase, txNext, out, c.TxUnacked(space), rxBase, bitmap)
	}
	st := c.Stats
	fmt.Fprintf(&sb, "  stats: sent=%d retx=%d tlp=%d rto=%d acksTx=%d acksRx=%d dup=%d nacksTx=%d nacksRx=%d delivered=%d windowDrops=%d",
		st.DataSent, st.DataRetransmits, st.TLPProbes, st.RTOs, st.AcksSent, st.AcksReceived,
		st.Duplicates, st.NacksSent, st.NacksReceived, st.DeliveredToTL, st.RxWindowDrops)
	return sb.String()
}
