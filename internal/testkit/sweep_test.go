package testkit

import (
	"fmt"
	"strings"
	"testing"
)

// shortMatrix is the subset of the fault matrix that runs under -short
// (tier-1): one scenario per fault family, push+pull mixed.
func shortMatrix() []Scenario {
	var out []Scenario
	keep := map[string]bool{
		"mixed/clean":              true,
		"mixed/drop5":              true,
		"mixed/reorder":            true,
		"mixed/degrade":            true,
		"mixed/rnr":                true,
		"mixed/tinyrx":             true,
		"unordered/sink":           true,
		"mixed/drop+reorder-bidir": true,
	}
	for _, sc := range Matrix() {
		if keep[sc.Name] {
			out = append(out, sc)
		}
	}
	return out
}

func scenarios(t *testing.T) []Scenario {
	t.Helper()
	m := Matrix()
	if testing.Short() {
		m = shortMatrix()
	}
	for i := range m {
		m[i] = m[i].withDefaults()
	}
	return m
}

// TestSweepExactlyOnce runs the fault matrix with the invariant checker
// armed (its default FailFunc panics, so any protocol violation fails the
// run) and asserts every scenario reaches exactly-once delivery: all issued
// transactions complete without error, the target served each RSN exactly
// once, and the fabric genuinely exercised the intended fault (clean runs
// have no retransmits; faulty runs do).
func TestSweepExactlyOnce(t *testing.T) {
	for _, sc := range scenarios(t) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := Run(sc)
			if res.ConnFailed {
				t.Fatalf("connection declared dead under %q (retransmits=%d rtos=%d)",
					sc.Name, res.Retransmits, res.RTOs)
			}
			if res.Issued != sc.Ops || res.Completed != sc.Ops {
				t.Fatalf("issued %d completed %d, want %d", res.Issued, res.Completed, sc.Ops)
			}
			if res.Errored != 0 {
				t.Fatalf("%d transactions completed with error", res.Errored)
			}
			if res.Served != sc.Ops {
				t.Fatalf("target served %d distinct RSNs, want %d", res.Served, sc.Ops)
			}
			if res.Checks == 0 {
				t.Fatal("invariant checker never ran")
			}
			hasFault := sc.DropPct > 0 || sc.ReorderPct > 0 || sc.RNRPct > 0 ||
				sc.TinyRxPool || sc.DegradeGbps > 0
			if !hasFault && res.Retransmits != 0 {
				t.Errorf("clean run retransmitted %d packets", res.Retransmits)
			}
			if sc.DropPct >= 5 && res.Retransmits == 0 {
				t.Errorf("%.0f%% drop produced no retransmits — fault not exercised", sc.DropPct)
			}
			if sc.RNRPct > 0 && res.RNRRetries == 0 {
				t.Errorf("RNR scenario produced no RNR retries — fault not exercised")
			}
		})
	}
}

// TestSweepDeterminism asserts the repository's central reproducibility
// claim at full trace granularity: running a scenario twice with the same
// seed yields a byte-identical event trace (equal FNV digests over equal
// record counts), while a different seed diverges.
func TestSweepDeterminism(t *testing.T) {
	for _, sc := range scenarios(t) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a := Run(sc)
			b := Run(sc)
			if a.TraceHash != b.TraceHash || a.Records != b.Records {
				t.Fatalf("same seed diverged: fnv1a:%016x/%d vs fnv1a:%016x/%d",
					a.TraceHash, a.Records, b.TraceHash, b.Records)
			}
			// Only scenarios that draw from the RNG (randomized drop,
			// reorder, RNR) can diverge under a different seed; fully
			// deterministic scenarios are identical for every seed, which
			// is itself correct.
			if sc.DropPct > 0 || sc.ReorderPct > 0 || sc.RNRPct > 0 {
				reseeded := sc
				reseeded.Seed += 1000
				c := Run(reseeded)
				if c.TraceHash == a.TraceHash {
					t.Fatalf("different seeds produced identical trace hash fnv1a:%016x", a.TraceHash)
				}
			}
		})
	}
}

// TestCheckerSelfTest proves the harness actually detects violations: a
// deliberately over-strict outstanding bound must make an otherwise healthy
// run trip the checker. A verification net that cannot fail verifies
// nothing.
func TestCheckerSelfTest(t *testing.T) {
	var violations []string
	sc := Scenario{
		Name:              "selftest",
		Seed:              42,
		Workload:          WorkloadPush,
		Ops:               50,
		Window:            16,
		StrictOutstanding: 2, // far below the real window: must trip
		FailFunc: func(format string, args ...any) {
			violations = append(violations, fmt.Sprintf(format, args...))
		},
	}
	res := Run(sc)
	if res.Violations == 0 || len(violations) == 0 {
		t.Fatal("seeded violation not detected: checker passed a run that exceeds StrictOutstanding=2")
	}
	if !strings.Contains(violations[0], "strict outstanding bound") {
		t.Fatalf("unexpected violation: %s", violations[0])
	}
	// The dump must carry enough context to debug from: window state and
	// connection stats.
	if !strings.Contains(violations[0], "tx: base=") || !strings.Contains(violations[0], "stats:") {
		t.Fatalf("violation lacks the connection context dump:\n%s", violations[0])
	}
}

// TestSweepQuiescenceChecked makes sure the post-run leak checks are in the
// path: with an impossible StrictOutstanding the recorded violations include
// probe-time failures, and a healthy run records none.
func TestSweepQuiescenceChecked(t *testing.T) {
	var n int
	sc := Scenario{Name: "quiesce", Seed: 7, Workload: WorkloadMixed,
		FailFunc: func(string, ...any) { n++ }}
	res := Run(sc)
	if n != 0 || res.Violations != 0 {
		t.Fatalf("healthy run recorded %d violations", res.Violations)
	}
}
