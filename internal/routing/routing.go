// Package routing is the pluggable fabric routing subsystem of netsim:
// the per-frame uplink-selection policies a switch applies across
// equal-cost next hops, and the gray-failure injector that degrades the
// fabric those policies route over.
//
// A Policy picks one egress out of an equal-cost candidate set from three
// deterministic inputs: the frame's flow-label hash (what ECMP hashes),
// a per-(switch, destination) packet counter (what per-packet spray
// advances), and the candidates' live queue depths (what adaptive routing
// compares). Three implementations cover the classic design space the
// ultra-ethernet literature evaluates against Falcon's transport-level
// multipath + PLB repathing:
//
//   - ECMP — hash the flow label; every packet of a flow label pins to
//     one path. This is the default and reproduces the selection netsim
//     hard-coded before this package existed, bit for bit.
//   - Spray — per-packet round-robin over the candidate set, oblivious
//     to both flows and congestion. Perfect spread, maximal reordering.
//   - Adaptive — least queued bytes, ties broken by the lowest port
//     index. Congestion-aware in the switch, the fabric-side analogue of
//     what Falcon's PLB does end-to-end.
//
// Policies are stateless values: all mutable selection state (the spray
// counter) lives in dense per-switch arrays indexed by destination
// NodeID, owned by netsim.Switch, so a single policy value can be shared
// by every switch in a network — and by networks running in parallel
// falconbench workers. Select is on the fabric's per-frame fast path and
// must not allocate; the interface is shaped so implementations never
// need to (inputs arrive by value, queue depths through a reused
// pointer-backed view).
//
// The gray-failure injector (inject.go) lives here too: Flap, Slow and
// RackOutage schedule link impairments off the simulation clock through
// pooled typed events, so a failure scenario is part of the same
// deterministic schedule as the traffic it degrades — same-seed runs are
// byte-identical, injector included.
package routing

// QueueDepths exposes the live egress queue occupancy of an equal-cost
// candidate set to a Policy. netsim passes a view backed by the switch's
// port slice; index i corresponds to candidate i of the same Select
// call. Implementations must treat it as read-only and must not retain
// it past return (the view is reused per frame).
type QueueDepths interface {
	// QueuedBytes returns the bytes awaiting serialization on candidate i.
	QueuedBytes(i int) int
}

// Key carries the per-frame, per-switch inputs a policy may hash on.
// All fields are plain integers so a Key travels by value with no
// allocation.
type Key struct {
	// FlowHash is the frame's flow-label hash — the transport derives it
	// from the 4-tuple plus the IPv6 flow label, so a PLB repath changes
	// it and (under ECMP) moves the flow to a different path.
	FlowHash uint64
	// Salt is the per-switch decorrelation salt: distinct switches must
	// not send the same flow to the same relative uplink index.
	Salt uint64
	// Src and Dst are the frame's endpoint NodeIDs, widened.
	Src, Dst uint64
}

// Policy selects an uplink from an equal-cost candidate set. Implementations
// must be deterministic pure functions of (k, n, *state, q): no global
// state, no randomness, no allocation. n is always >= 2 (a single-port
// route needs no policy) and the returned index must be in [0, n).
//
// state points at the per-(switch, destination) policy word the owning
// switch keeps in a dense NodeID-indexed array; it is zero until a policy
// first writes it. ECMP and Adaptive ignore it, Spray uses it as its
// round-robin packet counter.
type Policy interface {
	// Name is the stable identifier used by falconbench -routing and in
	// telemetry prefixes: "ecmp", "spray", "adaptive".
	Name() string
	// Select returns the chosen candidate index in [0, n).
	Select(k Key, n int, state *uint64, q QueueDepths) int
}

// Mix64 is a splitmix64 finalizer: a cheap avalanche so per-switch salts
// decorrelate ECMP choices. It is the exact mixer netsim's switches have
// always used (moved here when selection became pluggable), so default
// routes are byte-identical to the pre-extraction fabric.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ECMP pins each flow label to one path: the candidate index is the
// mixed hash of (flow hash, switch salt, src, dst) modulo the set size.
// This is the selection netsim hard-coded before routing was pluggable,
// preserved bit for bit — the default policy's trace hashes match the
// pre-package fabric exactly.
type ECMP struct{}

// Name returns "ecmp".
func (ECMP) Name() string { return "ecmp" }

// Select implements Policy.
func (ECMP) Select(k Key, n int, _ *uint64, _ QueueDepths) int {
	h := Mix64(k.FlowHash ^ k.Salt ^ k.Dst<<32 ^ k.Src)
	return int(h % uint64(n))
}

// Spray is per-packet round-robin: each frame toward a destination takes
// the next candidate in turn, regardless of flow. The counter lives in
// the switch's per-destination state word, so spray is exact — over any
// window of c*n frames toward one destination every candidate carries
// exactly c of them.
type Spray struct{}

// Name returns "spray".
func (Spray) Name() string { return "spray" }

// Select implements Policy.
func (Spray) Select(_ Key, n int, state *uint64, _ QueueDepths) int {
	i := int(*state % uint64(n))
	*state++
	return i
}

// Adaptive picks the candidate with the fewest queued bytes, breaking
// ties by the lowest port index. It reads the live queue depths at
// selection time, so it chases transient congestion the way adaptive
// fabrics do — and, like them, it can reorder a flow whenever queue
// rankings shift.
type Adaptive struct{}

// Name returns "adaptive".
func (Adaptive) Name() string { return "adaptive" }

// Select implements Policy.
func (Adaptive) Select(_ Key, n int, _ *uint64, q QueueDepths) int {
	best := 0
	bestQ := q.QueuedBytes(0)
	for i := 1; i < n; i++ {
		if d := q.QueuedBytes(i); d < bestQ {
			best, bestQ = i, d
		}
	}
	return best
}

// Policies returns one instance of every built-in policy, in the stable
// order ECMP, Spray, Adaptive — the sweep order figRouting and
// figGrayFailure report in.
func Policies() []Policy { return []Policy{ECMP{}, Spray{}, Adaptive{}} }

// ByName resolves a policy by its Name (as accepted by falconbench
// -routing). Unknown names return nil.
func ByName(name string) Policy {
	for _, p := range Policies() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}
