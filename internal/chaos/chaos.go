// Package chaos turns the single-knob fault injection of internal/routing
// into campaign-grade robustness evidence: deterministic storm campaigns
// that compose fabric gray failures (flap / slow / correlated outage, via
// the routing injector) with endpoint-level faults the transport has never
// been exercised under — host pause and crash-restart (connection state
// surviving or torn down per plan), NIC-port blackhole and
// packet-corruption windows, and receiver-not-ready stalls that drive
// sustained RNR retry.
//
// Determinism contract: a storm is a Plan — a pure value generated from a
// seed by its own rand source, independent of simulator state — and Apply
// schedules every fault as a pooled typed sim.Action on the virtual clock
// (no capture closures; the package is covered by the TestNetsimClosureFree
// lint). Two same-seed campaigns therefore fail, corrupt, stall and
// recover at byte-identical (time, seq) points: replaying a storm is
// re-running its seed.
//
// On top of the injectors sit the measurement pieces: Envelope samples
// cumulative delivered bytes on a fixed virtual-clock grid and derives the
// recovery envelope (time from fault clear until trailing-median goodput
// re-enters a percentage band of the pre-fault baseline), and Audit closes
// the frame-conservation ledger over the whole fabric — every frame a host
// sent is delivered or attributed to a named drop counter, so no storm can
// leak frames. DESIGN.md §14 describes the subsystem; the figStorm /
// figEndpointFault experiments and `falconbench -storm` drive it.
package chaos

import (
	"math/rand"
	"time"

	"falcon/internal/routing"
	"falcon/internal/sim"
)

// FabricPort is the port control surface storm faults drive. netsim.Port
// implements it; the interface is a superset of routing.FailPort, so the
// same target list feeds both the routing injector (flap/slow/outage) and
// the chaos-specific blackhole and corruption windows.
type FabricPort interface {
	SetDown(down bool)
	SetRateGbps(gbps float64)
	SetCorruptProb(prob float64)
}

// Host is the endpoint-freeze surface (netsim.Host): while paused the
// machine neither transmits nor receives, with drops counted at the edge.
type Host interface {
	SetPaused(paused bool)
}

// Crasher tears down the connection state of one machine (core.Node for
// Falcon). A nil / absent Crasher list disables crash-teardown faults —
// the transport-agnostic storms (RoCE head-to-heads) run without them.
type Crasher interface {
	Crash() int
}

// Staller is a receiver-not-ready valve: while stalled the target answers
// every transaction with an RNR NACK, driving the initiator's RNR retry
// loop until the valve reopens.
type Staller interface {
	SetStalled(stalled bool)
}

// Kind enumerates the fault types a storm composes.
type Kind int

const (
	// KindFlap bounces one uplink through down/up cycles (routing.Injector.Flap).
	KindFlap Kind = iota
	// KindSlow degrades one uplink's rate without downing it (Injector.Slow).
	KindSlow
	// KindOutage downs two adjacent uplinks at once (Injector.RackOutage).
	KindOutage
	// KindBlackhole downs one host's access uplink: the NIC port silently
	// eats every egress frame for the window.
	KindBlackhole
	// KindCorrupt opens a packet-corruption window on one uplink.
	KindCorrupt
	// KindPause freezes one host (no tx, no rx) for the window.
	KindPause
	// KindCrash freezes one host and, when the plan says the crash does
	// not preserve connection state, tears its connections down at the
	// crash instant; the host restarts (unpauses) when the window closes.
	KindCrash
	// KindRNRStall closes one receiver's RNR valve for the window.
	KindRNRStall
	numKinds
)

// String names the kind as the experiment tables print it.
func (k Kind) String() string {
	switch k {
	case KindFlap:
		return "flap"
	case KindSlow:
		return "slow"
	case KindOutage:
		return "outage"
	case KindBlackhole:
		return "blackhole"
	case KindCorrupt:
		return "corrupt"
	case KindPause:
		return "pause"
	case KindCrash:
		return "crash"
	case KindRNRStall:
		return "rnr_stall"
	}
	return "unknown"
}

// Event is one scheduled fault of a storm plan: Kind applied to the
// Target'th entry of its kind's target list at At, cleared For later.
type Event struct {
	Kind   Kind
	Target int
	At     sim.Time
	For    time.Duration
	// Prob is the corruption probability (KindCorrupt).
	Prob float64
	// Gbps is the degraded rate (KindSlow); the restore rate is the
	// plan's RestoreGbps.
	Gbps float64
	// Cycles is the down/up cycle count (KindFlap).
	Cycles int
	// Teardown marks a crash that does not preserve connection state.
	Teardown bool
}

// Clear returns the virtual time the fault is restored.
func (e Event) Clear() sim.Time { return e.At.Add(e.For) }

// Spec bounds a storm: how many fault events to draw, the window inside
// which every fault begins and clears, and the size of each target class
// (a zero count disables that class's kinds, so the same generator serves
// transport-agnostic storms — no crashers, no stallers — and the
// Falcon-only endpoint-fault campaigns).
type Spec struct {
	Events     int
	Start, End sim.Time
	// Uplinks is the size of the equal-cost uplink group fabric faults
	// (flap/slow/outage/corrupt) target.
	Uplinks int
	// HostPorts is the number of host access uplinks blackholes target.
	HostPorts int
	// Hosts is the number of pausable hosts.
	Hosts int
	// Crashers is the number of crashable nodes (index-aligned with the
	// first Crashers hosts); 0 disables KindCrash.
	Crashers int
	// Stallers is the number of RNR valves; 0 disables KindRNRStall.
	Stallers int
	// Teardown makes crashes tear down connection state.
	Teardown bool
	// RestoreGbps is the healthy uplink rate KindSlow restores.
	RestoreGbps float64
}

// Plan is a fully materialized storm: a pure value derived from its seed,
// independent of any simulator. Applying the same plan to two same-seed
// simulations reproduces the storm byte-identically.
type Plan struct {
	Seed int64
	// RestoreGbps is the healthy rate Slow events recover to (from the
	// generating spec).
	RestoreGbps float64
	Events      []Event
}

// kindTargets returns how many targets the spec offers kind, 0 = disabled.
func (sp Spec) kindTargets(k Kind) int {
	switch k {
	case KindFlap, KindSlow, KindCorrupt:
		return sp.Uplinks
	case KindOutage:
		if sp.Uplinks < 2 {
			return 0
		}
		return sp.Uplinks - 1 // outage downs uplinks [t, t+1]
	case KindBlackhole:
		return sp.HostPorts
	case KindPause:
		return sp.Hosts
	case KindCrash:
		return sp.Crashers
	case KindRNRStall:
		return sp.Stallers
	}
	return 0
}

// Generate draws a storm plan from the seed. The generator owns its rand
// source — simulator state never leaks into the plan — so a (seed, spec)
// pair always yields the identical event list. Fault windows are drawn
// inside [Start, End]: each fault lasts between 1/16 and 1/8 of the spec
// window and both edges land inside it, so the post-storm tail of the run
// is guaranteed fault-free for recovery measurement.
func Generate(seed int64, sp Spec) Plan {
	rng := rand.New(rand.NewSource(seed))
	var kinds []Kind
	for k := Kind(0); k < numKinds; k++ {
		if sp.kindTargets(k) > 0 {
			kinds = append(kinds, k)
		}
	}
	p := Plan{Seed: seed, RestoreGbps: sp.RestoreGbps}
	if len(kinds) == 0 || sp.Events <= 0 || sp.End <= sp.Start {
		return p
	}
	window := sp.End.Sub(sp.Start)
	for i := 0; i < sp.Events; i++ {
		k := kinds[rng.Intn(len(kinds))]
		dur := window/16 + time.Duration(rng.Int63n(int64(window/16)+1))
		at := sp.Start.Add(time.Duration(rng.Int63n(int64(window - dur) + 1)))
		ev := Event{
			Kind:   k,
			Target: rng.Intn(sp.kindTargets(k)),
			At:     at,
			For:    dur,
		}
		switch k {
		case KindFlap:
			ev.Cycles = 1 + rng.Intn(2)
		case KindSlow:
			ev.Gbps = sp.RestoreGbps / float64(4+rng.Intn(4)) // 1/4 .. 1/7 of healthy
		case KindCorrupt:
			ev.Prob = 0.05 + rng.Float64()*0.20
		case KindCrash:
			ev.Teardown = sp.Teardown
		}
		p.Events = append(p.Events, ev)
	}
	return p
}

// FaultStart returns the earliest fault edge, or 0 for an empty plan.
func (p Plan) FaultStart() sim.Time {
	var first sim.Time
	for i, e := range p.Events {
		if i == 0 || e.At < first {
			first = e.At
		}
	}
	return first
}

// FaultClear returns the latest restore edge, or 0 for an empty plan.
func (p Plan) FaultClear() sim.Time {
	var last sim.Time
	for _, e := range p.Events {
		if c := e.Clear(); c > last {
			last = c
		}
	}
	return last
}

// Targets binds a plan's target indices to one simulation's objects.
// Slices may be shorter than the generating spec's counts only if the
// plan was generated against matching counts — Apply panics on an
// out-of-range index rather than silently skewing the storm. Crashers is
// index-aligned with Hosts (crasher i owns host i); Stallers with the
// receiver they gate.
type Targets struct {
	Uplinks   []FabricPort
	HostPorts []FabricPort
	Hosts     []Host
	Crashers  []Crasher
	Stallers  []Staller
}

// endpointEvent is the pooled typed action behind every endpoint-level
// fault edge: one allocation per (event, edge) at Apply time, zero at
// fire time. clear distinguishes the restore edge.
type endpointEvent struct {
	kind     Kind
	clear    bool
	host     Host
	crash    Crasher
	port     FabricPort
	stall    Staller
	prob     float64
	teardown bool
}

// RunAction implements sim.Action.
func (e *endpointEvent) RunAction() {
	switch e.kind {
	case KindBlackhole:
		e.port.SetDown(!e.clear)
	case KindCorrupt:
		if e.clear {
			e.port.SetCorruptProb(0)
		} else {
			e.port.SetCorruptProb(e.prob)
		}
	case KindPause:
		e.host.SetPaused(!e.clear)
	case KindCrash:
		if e.clear {
			// Restart: the machine thaws. Torn-down connections stay
			// gone — stale in-flight packets are dropped at the edge.
			e.host.SetPaused(false)
			return
		}
		e.host.SetPaused(true)
		if e.teardown && e.crash != nil {
			e.crash.Crash()
		}
	case KindRNRStall:
		e.stall.SetStalled(!e.clear)
	}
}

// Apply schedules the plan onto one simulation: fabric faults go through
// the routing injector (composing with any impairments already scheduled
// on it), endpoint faults are scheduled directly as typed actions. Apply
// must be called before the simulator passes the plan's first edge.
func Apply(s *sim.Simulator, inj *routing.Injector, t Targets, p Plan) {
	for _, ev := range p.Events {
		switch ev.Kind {
		case KindFlap:
			phase := ev.For / time.Duration(2*ev.Cycles)
			inj.Flap(t.Uplinks[ev.Target], ev.At, phase, phase, ev.Cycles)
		case KindSlow:
			inj.Slow(t.Uplinks[ev.Target], ev.At, ev.Gbps, ev.For, p.RestoreGbps)
		case KindOutage:
			group := []routing.FailPort{t.Uplinks[ev.Target], t.Uplinks[ev.Target+1]}
			inj.RackOutage(group, ev.At, ev.For)
		case KindBlackhole, KindCorrupt, KindPause, KindCrash, KindRNRStall:
			apply := &endpointEvent{kind: ev.Kind, prob: ev.Prob, teardown: ev.Teardown}
			switch ev.Kind {
			case KindBlackhole:
				apply.port = t.HostPorts[ev.Target]
			case KindCorrupt:
				apply.port = t.Uplinks[ev.Target]
			case KindPause:
				apply.host = t.Hosts[ev.Target]
			case KindCrash:
				apply.host = t.Hosts[ev.Target]
				apply.crash = t.Crashers[ev.Target]
			case KindRNRStall:
				apply.stall = t.Stallers[ev.Target]
			}
			clear := &endpointEvent{}
			*clear = *apply
			clear.clear = true
			s.AtAction(ev.At, apply)
			s.AtAction(ev.Clear(), clear)
		}
	}
}
