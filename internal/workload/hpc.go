package workload

import (
	"time"

	"falcon/internal/sim"
)

// HPCConfig models a strong-scaled iterative HPC application (the role
// GROMACS benchpep and WRF CONUS 2.5km play in §6.3): each step divides a
// fixed compute workload across nodes, exchanges halos with ring
// neighbors, and closes with a small global reduction. As nodes grow,
// compute shrinks but communication doesn't, so scaling stalls when the
// transport's latency floor dominates — earlier on a slow stack.
type HPCConfig struct {
	// SerialComputePerStep is the single-node compute time per step.
	SerialComputePerStep time.Duration
	// Steps is how many iterations to run.
	Steps int
	// HaloBytes is exchanged with each ring neighbor every step.
	HaloBytes int
	// PMEBytes, when nonzero, adds a per-step AllToAll of this size
	// (GROMACS's PME grid redistribution): the p^2 small-message pattern
	// that stops kernel-TCP scaling cold.
	PMEBytes int
	// ReduceBytes is the per-step global reduction payload.
	ReduceBytes int
	// Ranks used for communication (typically one per node in the
	// model; intra-node parallelism is inside SerialComputePerStep).
	Nodes int
}

// DefaultGromacs approximates the benchpep-scale workload.
func DefaultGromacs(nodes int) HPCConfig {
	return HPCConfig{
		SerialComputePerStep: 12 * time.Millisecond,
		Steps:                20,
		HaloBytes:            512 << 10,
		PMEBytes:             2 << 10,
		ReduceBytes:          256,
		Nodes:                nodes,
	}
}

// DefaultWRF approximates the CONUS 2.5km workload: heavier halos, heavier
// compute.
func DefaultWRF(nodes int) HPCConfig {
	return HPCConfig{
		SerialComputePerStep: 60 * time.Millisecond,
		Steps:                10,
		HaloBytes:            2 << 20,
		ReduceBytes:          512,
		Nodes:                nodes,
	}
}

// RunHPC executes the iteration model over the messenger and returns the
// achieved steps/second (the "performance" axis of Figures 27–28). The
// messenger must have cfg.Nodes ranks.
func RunHPC(s *sim.Simulator, m Messenger, cfg HPCConfig) float64 {
	if m.Ranks() != cfg.Nodes {
		panic("workload: messenger ranks must equal cfg.Nodes")
	}
	start := s.Now()
	var finished sim.Time

	compute := cfg.SerialComputePerStep / time.Duration(cfg.Nodes)
	var step func(k int)
	step = func(k int) {
		if k >= cfg.Steps {
			finished = s.Now()
			return
		}
		// Compute phase (perfectly parallel model).
		s.After(compute, func() {
			// Halo exchange: each rank sends to both ring
			// neighbors.
			var sends [][3]int
			for r := 0; r < cfg.Nodes; r++ {
				sends = append(sends, [3]int{r, (r + 1) % cfg.Nodes, cfg.HaloBytes})
				sends = append(sends, [3]int{r, (r + cfg.Nodes - 1) % cfg.Nodes, cfg.HaloBytes})
			}
			runPhase(m, sends, func() {
				afterPME := func() {
					AllReduce(m, cfg.ReduceBytes, func() { step(k + 1) })
				}
				if cfg.PMEBytes > 0 {
					AllToAll(m, cfg.PMEBytes, afterPME)
				} else {
					afterPME()
				}
			})
		})
	}
	step(0)
	s.Run()
	if finished == 0 {
		return 0
	}
	elapsed := finished.Sub(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(cfg.Steps) / elapsed.Seconds()
}
