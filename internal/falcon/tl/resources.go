// Package tl implements Falcon's Transaction Layer (§4.4–§4.6): the
// request-response transaction interface offered to ULPs, on-NIC resource
// admission with deadlock-free carving, RSN-based ordering, RNR/CIE error
// semantics, and dynamic-threshold connection isolation.
package tl

import (
	"errors"
	"fmt"
)

// PoolKind identifies one of the four resource sub-pools of Figure 6. The
// carving principles (§4.5): TX and RX are split so either direction can
// always progress, and requests and responses are split so responses are
// never starved by outstanding requests.
type PoolKind int

const (
	// PoolTxReq holds contexts/buffers for requests this NIC transmits.
	PoolTxReq PoolKind = iota
	// PoolTxResp holds resources for responses this NIC transmits.
	PoolTxResp
	// PoolRxReq holds resources for requests arriving from the network.
	PoolRxReq
	// PoolRxResp holds resources for responses arriving from the
	// network; reserved at request-initiation time so head-of-line
	// responses always land (§4.5 "Resource Lifecycle").
	PoolRxResp
	numPools
)

func (k PoolKind) String() string {
	switch k {
	case PoolTxReq:
		return "tx-req"
	case PoolTxResp:
		return "tx-resp"
	case PoolRxReq:
		return "rx-req"
	case PoolRxResp:
		return "rx-resp"
	}
	return fmt.Sprintf("PoolKind(%d)", int(k))
}

// PoolConfig sizes one sub-pool.
type PoolConfig struct {
	Contexts int // fixed-size per-packet metadata slots
	Bytes    int // buffer bytes for payloads / SGLs
}

// ResourceConfig sizes all four sub-pools.
type ResourceConfig struct {
	Pools [numPools]PoolConfig
	// HoLAdmissionThreshold is the RxReq occupancy fraction beyond which
	// only head-of-line requests are admitted (§4.5).
	HoLAdmissionThreshold float64
}

// DefaultResourceConfig sizes pools for a 200G NIC with ~50us RTTs. The RX
// pools hold O(BDP) = 1.25MB of on-chip buffering (§5.2); the TX pools are
// larger in bytes because transmit payloads stay in host memory (the pool
// bounds scatter-gather state, not packet data).
func DefaultResourceConfig() ResourceConfig {
	tx := PoolConfig{Contexts: 4096, Bytes: 8 << 20}
	rx := PoolConfig{Contexts: 4096, Bytes: 1280 << 10}
	return ResourceConfig{
		Pools: [numPools]PoolConfig{
			PoolTxReq:  tx,
			PoolTxResp: tx,
			PoolRxReq:  rx,
			PoolRxResp: rx,
		},
		HoLAdmissionThreshold: 0.5,
	}
}

// ErrNoResources reports pool exhaustion at admission.
var ErrNoResources = errors.New("tl: resource pool exhausted")

// connInts is a per-connection counter table indexed directly by
// connection ID (IDs are small and dense — the NIC assigns them
// sequentially), replacing the map[uint32]int lookups that dominated
// Reserve/Release profiles. Absent IDs read as zero, matching the map's
// delete-at-zero behavior.
type connInts []int

func (s *connInts) at(conn uint32) int {
	if int(conn) >= len(*s) {
		return 0
	}
	return (*s)[conn]
}

func (s *connInts) add(conn uint32, d int) {
	for int(conn) >= len(*s) {
		n := len(*s) * 2
		if n < 64 {
			n = 64
		}
		grown := make([]int, n)
		copy(grown, *s)
		*s = grown
	}
	(*s)[conn] += d
}

type pool struct {
	cfg          PoolConfig
	usedContexts int
	usedBytes    int
	// Per-connection holdings within this pool (DT isolation inputs).
	connCtx   connInts
	connBytes connInts
}

func (p *pool) tryReserve(bytes int) bool {
	if p.usedContexts+1 > p.cfg.Contexts || p.usedBytes+bytes > p.cfg.Bytes {
		return false
	}
	p.usedContexts++
	p.usedBytes += bytes
	return true
}

func (p *pool) release(bytes int) {
	p.usedContexts--
	p.usedBytes -= bytes
	if p.usedContexts < 0 || p.usedBytes < 0 {
		panic(fmt.Sprintf("tl: pool released below zero (ctx=%d bytes=%d)", p.usedContexts, p.usedBytes))
	}
}

func (p *pool) occupancy() float64 {
	if p.cfg.Contexts == 0 {
		return 1
	}
	ctxFrac := float64(p.usedContexts) / float64(p.cfg.Contexts)
	byteFrac := 0.0
	if p.cfg.Bytes > 0 {
		byteFrac = float64(p.usedBytes) / float64(p.cfg.Bytes)
	}
	if byteFrac > ctxFrac {
		return byteFrac
	}
	return ctxFrac
}

// Resources is the NIC-wide resource manager shared by all connections on
// one Falcon instance.
type Resources struct {
	cfg   ResourceConfig
	pools [numPools]*pool

	// perConn and perConnBytes track contexts and buffer bytes held per
	// connection, the inputs to dynamic-threshold isolation (§4.6).
	perConn      connInts
	perConnBytes connInts

	// onRelease subscribers are notified when resources free up
	// (the Xon edge for backpressured ULPs).
	onRelease []releaseSub
	// alwaysRun counts subscribers registered through the public
	// Subscribe: their neediness is unknown, so they fire on every
	// release.
	alwaysRun int

	// needy counts subscribed connections whose callback would currently
	// do real work (a deferred response to drain or an Xoff'd ULP to
	// wake). When zero, Release skips the connection fan-out entirely —
	// the common case on the hot path, where every packet ack used to
	// pay a call per connection in the cluster. When non-zero, ALL
	// subscribers still run in subscription order (the needy set is not
	// tracked per-callback), so observable callback order is unchanged.
	needy int

	// legacy disables the needy skip, restoring the unconditional
	// fan-out as the verification oracle.
	legacy bool
}

// NewResources builds the resource manager.
func NewResources(cfg ResourceConfig) *Resources {
	r := &Resources{cfg: cfg}
	for i := range r.pools {
		r.pools[i] = &pool{cfg: cfg.Pools[i]}
	}
	return r
}

// SetLegacy restores the unconditional Release fan-out (the pre-dense
// behavior); used by the equivalence oracle.
func (r *Resources) SetLegacy(v bool) { r.legacy = v }

// needyDelta adjusts the count of connections awaiting a release
// notification (see Conn.updateNeedy).
func (r *Resources) needyDelta(d int) { r.needy += d }

// Reserve takes one context plus bytes from the pool on behalf of conn.
func (r *Resources) Reserve(k PoolKind, conn uint32, bytes int) error {
	p := r.pools[k]
	if !p.tryReserve(bytes) {
		return fmt.Errorf("%w: %v", ErrNoResources, k)
	}
	p.connCtx.add(conn, 1)
	p.connBytes.add(conn, bytes)
	r.perConn.add(conn, 1)
	r.perConnBytes.add(conn, bytes)
	return nil
}

// Release returns one context plus bytes to the pool.
func (r *Resources) Release(k PoolKind, conn uint32, bytes int) {
	p := r.pools[k]
	p.release(bytes)
	p.connCtx.add(conn, -1)
	p.connBytes.add(conn, -bytes)
	r.perConn.add(conn, -1)
	r.perConnBytes.add(conn, -bytes)
	if r.legacy || r.needy > 0 {
		for _, s := range r.onRelease {
			s.fn()
		}
	} else if r.alwaysRun > 0 {
		for _, s := range r.onRelease {
			if !s.skippable {
				s.fn()
			}
		}
	}
}

// Occupancy returns the pool's max(context, byte) occupancy fraction.
func (r *Resources) Occupancy(k PoolKind) float64 { return r.pools[k].occupancy() }

// RxOccupancy is the NIC congestion signal carried in ACKs: occupancy of
// the receive-side pools.
func (r *Resources) RxOccupancy() float64 {
	rq := r.pools[PoolRxReq].occupancy()
	rr := r.pools[PoolRxResp].occupancy()
	if rr > rq {
		return rr
	}
	return rq
}

// FreeContexts returns the total free contexts across all pools, the
// denominator of the DT threshold.
func (r *Resources) FreeContexts() int {
	free := 0
	for _, p := range r.pools {
		free += p.cfg.Contexts - p.usedContexts
	}
	return free
}

// ConnUsage returns the contexts currently held by conn.
func (r *Resources) ConnUsage(conn uint32) int { return r.perConn.at(conn) }

// ConnBytes returns the buffer bytes currently held by conn.
func (r *Resources) ConnBytes(conn uint32) int { return r.perConnBytes.at(conn) }

// OverDTThreshold applies the dynamic-threshold rule per pool (§4.6): the
// connection is over-threshold if in ANY pool its holdings exceed
// α·(free resources of that pool), in contexts or bytes. Per-pool
// evaluation matters: one exhausted pool must not be masked by slack in
// the others.
func (r *Resources) OverDTThreshold(conn uint32, alpha float64) bool {
	for _, p := range r.pools {
		freeCtx := float64(p.cfg.Contexts - p.usedContexts)
		if float64(p.connCtx.at(conn)) > alpha*freeCtx {
			return true
		}
		freeBytes := float64(p.cfg.Bytes - p.usedBytes)
		if float64(p.connBytes.at(conn)) > alpha*freeBytes {
			return true
		}
	}
	return false
}

// AdmitRxRequest applies the RxReq admission rule: below the occupancy
// threshold, all requests are admitted; beyond it, only head-of-line
// requests (§4.5), preventing non-HoL requests from occupying everything
// and deadlocking ordered connections.
func (r *Resources) AdmitRxRequest(conn uint32, bytes int, headOfLine bool) error {
	if r.pools[PoolRxReq].occupancy() >= r.cfg.HoLAdmissionThreshold && !headOfLine {
		return fmt.Errorf("%w: rx-req beyond HoL threshold", ErrNoResources)
	}
	return r.Reserve(PoolRxReq, conn, bytes)
}

// releaseSub is one release subscriber. Skippable subscribers (TL
// connections) keep the shared needy count accurate and may be skipped
// when it is zero; others always run.
type releaseSub struct {
	fn        func()
	skippable bool
}

// Subscribe registers a callback invoked whenever resources are released.
func (r *Resources) Subscribe(fn func()) {
	r.onRelease = append(r.onRelease, releaseSub{fn: fn})
	r.alwaysRun++
}

// subscribeConn registers a connection's release callback; the connection
// maintains the needy count that lets Release skip it when idle.
func (r *Resources) subscribeConn(fn func()) {
	r.onRelease = append(r.onRelease, releaseSub{fn: fn, skippable: true})
}
