// Package falcon is a from-scratch Go reproduction of "Falcon: A Reliable,
// Low Latency Hardware Transport" (SIGCOMM 2025): the Falcon transport
// protocol (transaction layer, packet delivery layer, adaptive engine),
// the RDMA and NVMe ULPs above it, the RoCE and software-transport
// baselines beside it, and the discrete-event datacenter fabric beneath.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results. The libraries live under internal/; the
// benchmark harness at the repository root (bench_test.go) and the
// cmd/falconbench binary regenerate every table and figure of the paper's
// evaluation.
package falcon
