package chaos

import (
	"time"

	"falcon/internal/falcon/tl"
	"falcon/internal/falcon/wire"
)

// RNRValve interposes on a Falcon target ULP handler to model a receiver
// that stops being ready (application stalled, receive buffers exhausted):
// while stalled every arriving transaction is answered with an RNR verdict
// — the TL turns it into an RNR NACK with the valve's retry delay — and
// the initiator's RNR retry loop carries the transaction until the valve
// reopens. Install it with Endpoint.SetTarget, wrapping the QP's own
// handler (rdma.QP.Target); it implements Staller, so storm plans drive
// it like any other fault.
type RNRValve struct {
	inner   tl.TargetHandler
	delay   time.Duration
	stalled bool
	// Stalls counts transactions turned away while the valve was closed.
	Stalls uint64
}

// NewRNRValve wraps inner; delay is the RetryDelay carried in each RNR
// NACK while stalled.
func NewRNRValve(inner tl.TargetHandler, delay time.Duration) *RNRValve {
	return &RNRValve{inner: inner, delay: delay}
}

// SetStalled implements Staller.
func (v *RNRValve) SetStalled(stalled bool) { v.stalled = stalled }

// Stalled reports whether the valve is currently closed.
func (v *RNRValve) Stalled() bool { return v.stalled }

// HandlePush implements tl.TargetHandler.
func (v *RNRValve) HandlePush(rsn uint64, p *wire.Packet) tl.TargetVerdict {
	if v.stalled {
		v.Stalls++
		return tl.TargetVerdict{Kind: tl.TargetRNR, RetryDelay: v.delay}
	}
	return v.inner.HandlePush(rsn, p)
}

// HandlePull implements tl.TargetHandler.
func (v *RNRValve) HandlePull(rsn uint64, p *wire.Packet) ([]byte, uint32, tl.TargetVerdict) {
	if v.stalled {
		v.Stalls++
		return nil, 0, tl.TargetVerdict{Kind: tl.TargetRNR, RetryDelay: v.delay}
	}
	return v.inner.HandlePull(rsn, p)
}
