package lake

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// seqIndex builds n runs ("r1".."rN") from per-run metric maps.
func seqIndex(t *testing.T, runs []map[string]float64) *Index {
	t.Helper()
	b := NewBuilder()
	for i, m := range runs {
		run := fmt.Sprintf("r%d", i+1)
		var sb strings.Builder
		sb.WriteString(`{"schema":"falconmetrics/v1","figures":[{"name":"f","metrics":{"at_ns":0,"metrics":[`)
		first := true
		for _, k := range sortedKeys(m) {
			if !first {
				sb.WriteString(",")
			}
			first = false
			fmt.Fprintf(&sb, `{"name":"%s","value":%v}`, k, m[k])
		}
		sb.WriteString(`]}}]}`)
		if err := b.IngestMetricsJSON(run, strings.NewReader(sb.String()), run+".json"); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func mustTrend(t *testing.T, ix *Index, runs []string, opt TrendOptions) *TrendReport {
	t.Helper()
	rep, err := Trend(ix, runs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTrendCatchesSlowCreep is the motivating case: a timing metric
// drifting +3% per run for four runs. Every pairwise diff stays inside
// the 5% band — Diff finds nothing between any adjacent pair — yet the
// cumulative drift is ~9% and the trend scan must flag it.
func TestTrendCatchesSlowCreep(t *testing.T) {
	mk := func(srtt float64) map[string]float64 {
		return map[string]float64{"f/conn/pdl/srtt_ns": srtt, "f/conn/pdl/data_sent": 100}
	}
	ix := seqIndex(t, []map[string]float64{mk(1000), mk(1030), mk(1061), mk(1093)})
	runs := []string{"r1", "r2", "r3", "r4"}

	for i := 1; i < len(runs); i++ {
		pair := mustDiff(t, ix, runs[i-1], runs[i], Options{})
		if !pair.Empty() {
			t.Fatalf("pairwise diff %s->%s should be inside tolerance, got %+v", runs[i-1], runs[i], pair.Findings)
		}
	}

	rep := mustTrend(t, ix, runs, TrendOptions{})
	if len(rep.Findings) != 1 {
		t.Fatalf("want exactly the srtt drift flagged, got %+v", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Path != "f/conn/pdl/srtt_ns" || f.Direction != "up" || f.Class != "timing" {
		t.Fatalf("bad finding: %+v", f)
	}
	if f.MaxStepRelErr > 0.05 {
		t.Fatalf("max step %v should be under the pairwise band — that's the point", f.MaxStepRelErr)
	}
	if f.RelErr < 0.05 {
		t.Fatalf("cumulative drift %v should exceed the band", f.RelErr)
	}
}

// TestTrendPerfDirectional checks perf-class chains: a monotonic
// events/sec decline beyond the cumulative tolerance is flagged, while
// the same-shaped improvement is not (perf trends are one-sided, like
// perf diffs).
func TestTrendPerfDirectional(t *testing.T) {
	mk := func(eps, wall float64) map[string]float64 {
		return map[string]float64{"f/perf/events_per_sec": eps, "f/perf/wall_ms": wall}
	}
	// events_per_sec decays 8%/run (pairwise-invisible at 25%), wall_ms
	// improves monotonically.
	ix := seqIndex(t, []map[string]float64{mk(1000, 90), mk(920, 80), mk(846, 70), mk(779, 60)})
	rep := mustTrend(t, ix, []string{"r1", "r2", "r3", "r4"}, TrendOptions{})
	if len(rep.Findings) != 1 {
		t.Fatalf("want only the throughput decay flagged, got %+v", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Path != "f/perf/events_per_sec" || f.Direction != "down" || f.Class != "perf" {
		t.Fatalf("bad finding: %+v", f)
	}
}

// TestTrendIgnoresNonMonotone: a metric that wobbles (up then down)
// is not a trend even when first-to-last drift is large; and exact
// metrics never produce trend findings (the pairwise differ owns them).
func TestTrendIgnoresNonMonotone(t *testing.T) {
	ix := seqIndex(t, []map[string]float64{
		{"f/conn/pdl/srtt_ns": 1000, "f/conn/pdl/data_sent": 100},
		{"f/conn/pdl/srtt_ns": 1500, "f/conn/pdl/data_sent": 150},
		{"f/conn/pdl/srtt_ns": 1400, "f/conn/pdl/data_sent": 200},
	})
	rep := mustTrend(t, ix, []string{"r1", "r2", "r3"}, TrendOptions{})
	if !rep.Empty() {
		t.Fatalf("wobble and exact drift must not be trends, got %+v", rep.Findings)
	}
}

// TestTrendSkipsIncompleteChains: cells absent from any run in the
// sequence are skipped (missing cells are Diff findings).
func TestTrendSkipsIncompleteChains(t *testing.T) {
	ix := seqIndex(t, []map[string]float64{
		{"f/conn/pdl/srtt_ns": 1000},
		{"f/conn/pdl/srtt_ns": 1100, "f/conn/tl/alpha": 0.5},
		{"f/conn/pdl/srtt_ns": 1210, "f/conn/tl/alpha": 0.6},
	})
	rep := mustTrend(t, ix, []string{"r1", "r2", "r3"}, TrendOptions{})
	if rep.CellsCompared != 1 {
		t.Fatalf("only the complete srtt chain should be compared, got %d", rep.CellsCompared)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Path != "f/conn/pdl/srtt_ns" {
		t.Fatalf("want the complete chain flagged, got %+v", rep.Findings)
	}
}

// TestTrendErrors: fewer than three runs and unknown runs are errors.
func TestTrendErrors(t *testing.T) {
	ix := seqIndex(t, []map[string]float64{{"f/pdl/srtt_ns": 1}, {"f/pdl/srtt_ns": 1}, {"f/pdl/srtt_ns": 1}})
	if _, err := Trend(ix, []string{"r1", "r2"}, TrendOptions{}); err == nil {
		t.Fatal("want error for 2 runs")
	}
	if _, err := Trend(ix, []string{"r1", "r2", "nope"}, TrendOptions{}); err == nil {
		t.Fatal("want error for unknown run")
	}
}

// TestTrendReportDeterminism: same index, same runs, byte-identical
// text and JSON reports.
func TestTrendReportDeterminism(t *testing.T) {
	mk := func(v float64) map[string]float64 {
		return map[string]float64{"f/conn/pdl/srtt_ns": v, "f/conn/fae/rtt_ns": v * 2}
	}
	ix := seqIndex(t, []map[string]float64{mk(1000), mk(1040), mk(1082), mk(1125)})
	runs := []string{"r1", "r2", "r3", "r4"}
	var a, b bytes.Buffer
	if err := mustTrend(t, ix, runs, TrendOptions{}).WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := mustTrend(t, ix, runs, TrendOptions{}).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("text reports differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "2 monotonic drifts") {
		t.Fatalf("unexpected report:\n%s", a.String())
	}
}
