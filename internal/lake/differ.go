package lake

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// The differ half of the lake: cell-by-cell comparison of two runs,
// with each metric compared under its determinism class (path.go):
//
//   - exact   — determinism-contract metrics; any difference is a
//     behavior change and is flagged.
//   - timing  — timing-derived metrics; flagged beyond a relative
//     tolerance band (Options.RelTol).
//   - perf    — falconbench/v1 wall-clock metrics; flagged only when
//     they move in the metric's "worse" direction by more than the
//     loose Options.PerfTol.
//
// Findings, and the rendered report, are deterministic: comparison
// walks both runs' sorted cell columns merge-style, so the same pair
// of runs always produces byte-identical output. Diffing a run
// against itself reports zero findings by construction — the property
// `make lakecheck` asserts over the committed artifacts.

// Options configures diff tolerances. The zero value uses defaults.
type Options struct {
	// RelTol is the relative-error band for ClassTiming metrics
	// (default 0.05, i.e. ±5%).
	RelTol float64
	// PerfTol is the regression band for ClassPerf metrics (default
	// 0.25): a perf metric is flagged only when it is worse than the
	// baseline by more than this fraction.
	PerfTol float64
}

func (o Options) withDefaults() Options {
	if o.RelTol == 0 {
		o.RelTol = 0.05
	}
	if o.PerfTol == 0 {
		o.PerfTol = 0.25
	}
	return o
}

// Finding kinds.
const (
	FindingMissing = "missing"      // present in A, absent in B
	FindingExtra   = "extra"        // absent in A, present in B
	FindingDrift   = "value-drift"  // exact/timing metric moved
	FindingPerf    = "perf-regress" // perf metric moved in the worse direction
	FindingSeries  = "series-drift" // time-series column differs
	FindingShape   = "series-shape" // series/column/row structure differs
)

// Finding is one flagged difference between two runs.
type Finding struct {
	// Kind is one of the Finding* constants.
	Kind string `json:"kind"`
	// Path is the metric path, or "series:<name>/<column>" for series
	// findings.
	Path string `json:"path"`
	// Class is the determinism class the comparison used.
	Class string `json:"class"`
	// A and B are the two values (first differing row for series).
	A float64 `json:"a"`
	B float64 `json:"b"`
	// RelErr is |a-b| / max(|a|,|b|).
	RelErr float64 `json:"rel_err"`
	// Detail carries series context: differing-row count and first
	// differing timestamp.
	Detail string `json:"detail,omitempty"`
}

// Report is the outcome of diffing two runs.
type Report struct {
	Schema         string    `json:"schema"`
	RunA           string    `json:"run_a"`
	RunB           string    `json:"run_b"`
	CellsCompared  int       `json:"cells_compared"`
	SeriesCompared int       `json:"series_compared"`
	Findings       []Finding `json:"findings"`
}

// Empty reports whether the diff found nothing.
func (r *Report) Empty() bool { return len(r.Findings) == 0 }

// relErr is the symmetric relative error between a and b.
func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// perfWorse reports whether moving from a to b is the regression
// direction for the named perf metric. Throughput-like metrics regress
// downward; cost-like metrics regress upward.
func perfWorse(metric string, a, b float64) bool {
	switch metric {
	case "events_per_sec", "events":
		return b < a
	default: // wall_ms, ns_per_event, allocs_per_event
		return b > a
	}
}

// Diff compares runB against baseline runA cell-by-cell and
// series-by-series.
func Diff(ix *Index, runA, runB string, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	ra, rb := ix.runIndex(runA), ix.runIndex(runB)
	if ra < 0 {
		return nil, fmt.Errorf("lake: run %q not in index", runA)
	}
	if rb < 0 {
		return nil, fmt.Errorf("lake: run %q not in index", runB)
	}
	rep := &Report{Schema: "falconlakediff/v1", RunA: runA, RunB: runB}

	// Merge-walk the two sorted cell ranges.
	ia, ea := int(ix.runCellOff[ra]), int(ix.runCellOff[ra+1])
	ib, eb := int(ix.runCellOff[rb]), int(ix.runCellOff[rb+1])
	for ia < ea || ib < eb {
		switch {
		case ib >= eb || (ia < ea && ix.strs[ix.cellPath[ia]] < ix.strs[ix.cellPath[ib]]):
			p := ix.strs[ix.cellPath[ia]]
			rep.Findings = append(rep.Findings, Finding{
				Kind: FindingMissing, Path: p, Class: ParsePath(p).Class().String(),
				A: ix.cellVal[ia],
			})
			ia++
		case ia >= ea || ix.strs[ix.cellPath[ib]] < ix.strs[ix.cellPath[ia]]:
			p := ix.strs[ix.cellPath[ib]]
			rep.Findings = append(rep.Findings, Finding{
				Kind: FindingExtra, Path: p, Class: ParsePath(p).Class().String(),
				B: ix.cellVal[ib],
			})
			ib++
		default:
			p := ix.strs[ix.cellPath[ia]]
			a, b := ix.cellVal[ia], ix.cellVal[ib]
			rep.CellsCompared++
			if f, flagged := compareCell(p, a, b, opt); flagged {
				rep.Findings = append(rep.Findings, f)
			}
			ia++
			ib++
		}
	}

	diffSeries(ix, ra, rb, opt, rep)
	return rep, nil
}

// compareCell applies the class rule to one shared cell.
func compareCell(path string, a, b float64, opt Options) (Finding, bool) {
	cls := ParsePath(path).Class()
	re := relErr(a, b)
	f := Finding{Path: path, Class: cls.String(), A: a, B: b, RelErr: re}
	switch cls {
	case ClassExact:
		// NaN != NaN would flag identical snapshots; compare bits.
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			f.Kind = FindingDrift
			return f, true
		}
	case ClassTiming:
		if re > opt.RelTol {
			f.Kind = FindingDrift
			return f, true
		}
	case ClassPerf:
		if perfWorse(ParsePath(path).Metric, a, b) && re > opt.PerfTol {
			f.Kind = FindingPerf
			return f, true
		}
	}
	return Finding{}, false
}

// diffSeries compares the two runs' time series. Structural
// differences (missing series, differing columns or row counts) are
// shape findings; shared columns are compared row-by-row under the
// column metric's class, aggregated into at most one finding per
// column.
func diffSeries(ix *Index, ra, rb int, opt Options, rep *Report) {
	namesOf := func(r int) map[string]*Series {
		m := make(map[string]*Series)
		for i := range ix.series {
			if int(ix.series[i].run) == r {
				m[ix.strs[ix.series[i].name]] = &ix.series[i]
			}
		}
		return m
	}
	sa, sb := namesOf(ra), namesOf(rb)
	for _, name := range sortedKeys(sa) {
		a := sa[name]
		b, ok := sb[name]
		if !ok {
			rep.Findings = append(rep.Findings, Finding{
				Kind: FindingShape, Path: "series:" + name, Class: "exact",
				Detail: "series missing in " + rep.RunB,
			})
			continue
		}
		rep.SeriesCompared++
		diffOneSeries(ix, name, a, b, opt, rep)
	}
	for _, name := range sortedKeys(sb) {
		if _, ok := sa[name]; !ok {
			rep.Findings = append(rep.Findings, Finding{
				Kind: FindingShape, Path: "series:" + name, Class: "exact",
				Detail: "series missing in " + rep.RunA,
			})
		}
	}
}

func diffOneSeries(ix *Index, name string, a, b *Series, opt Options, rep *Report) {
	colsA, colsB := seriesColNames(ix, a), seriesColNames(ix, b)
	if strings.Join(colsA, ",") != strings.Join(colsB, ",") {
		rep.Findings = append(rep.Findings, Finding{
			Kind: FindingShape, Path: "series:" + name, Class: "exact",
			Detail: fmt.Sprintf("columns differ: %v vs %v", colsA, colsB),
		})
		return
	}
	rows := len(a.times)
	if len(b.times) != rows {
		rep.Findings = append(rep.Findings, Finding{
			Kind: FindingShape, Path: "series:" + name, Class: "exact",
			A: float64(rows), B: float64(len(b.times)),
			Detail: "row counts differ",
		})
		return
	}
	for i := 0; i < rows; i++ {
		if a.times[i] != b.times[i] {
			rep.Findings = append(rep.Findings, Finding{
				Kind: FindingShape, Path: "series:" + name + "/t_ns", Class: "exact",
				A: float64(a.times[i]), B: float64(b.times[i]),
				Detail: fmt.Sprintf("timestamps diverge at row %d", i),
			})
			return
		}
	}
	for c, col := range colsA {
		cls := ParsePath(col).Class()
		var bad, firstRow int
		var firstA, firstB, maxRE float64
		for i := 0; i < rows; i++ {
			va, vb := a.vals[c][i], b.vals[c][i]
			re := relErr(va, vb)
			flag := false
			switch cls {
			case ClassTiming:
				flag = re > opt.RelTol
			default:
				flag = va != vb && !(math.IsNaN(va) && math.IsNaN(vb))
			}
			if flag {
				if bad == 0 {
					firstRow, firstA, firstB = i, va, vb
				}
				if re > maxRE {
					maxRE = re
				}
				bad++
			}
		}
		if bad > 0 {
			rep.Findings = append(rep.Findings, Finding{
				Kind: FindingSeries, Path: "series:" + name + "/" + col,
				Class: cls.String(), A: firstA, B: firstB, RelErr: maxRE,
				Detail: fmt.Sprintf("%d/%d rows differ, first at t_ns=%d", bad, rows, a.times[firstRow]),
			})
		}
	}
}

func seriesColNames(ix *Index, s *Series) []string {
	out := make([]string, len(s.cols))
	for i, id := range s.cols {
		out[i] = ix.strs[id]
	}
	return out
}

// WriteText renders the report for humans, findings in deterministic
// order. An empty report renders a single "no findings" line.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "diff %s -> %s: %d cells, %d series compared\n",
		r.RunA, r.RunB, r.CellsCompared, r.SeriesCompared); err != nil {
		return err
	}
	if r.Empty() {
		_, err := fmt.Fprintf(w, "no findings\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "%d findings:\n", len(r.Findings)); err != nil {
		return err
	}
	for _, f := range r.Findings {
		var err error
		switch f.Kind {
		case FindingMissing:
			_, err = fmt.Fprintf(w, "  %-13s %s (a=%s)\n", f.Kind, f.Path, fmtVal(f.A))
		case FindingExtra:
			_, err = fmt.Fprintf(w, "  %-13s %s (b=%s)\n", f.Kind, f.Path, fmtVal(f.B))
		case FindingShape:
			_, err = fmt.Fprintf(w, "  %-13s %s: %s\n", f.Kind, f.Path, f.Detail)
		default:
			detail := ""
			if f.Detail != "" {
				detail = " (" + f.Detail + ")"
			}
			_, err = fmt.Fprintf(w, "  %-13s [%s] %s: %s -> %s (rel %.4f)%s\n",
				f.Kind, f.Class, f.Path, fmtVal(f.A), fmtVal(f.B), f.RelErr, detail)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON, byte-deterministic
// for equal reports.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// fmtVal renders a value in shortest round-trip form, matching the
// artifact encoding.
func fmtVal(v float64) string {
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}
