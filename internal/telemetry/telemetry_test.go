package telemetry

import (
	"bytes"
	"testing"
	"time"

	"falcon/internal/falcon/wire"
	"falcon/internal/netsim"
	"falcon/internal/sim"
)

func TestRegistrySnapshotSortedAndDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("z/count").Add(3)
		r.Counter("a/count").Inc()
		r.Gauge("m/gauge", func() float64 { return 2.5 })
		h := r.Histogram("lat")
		h.Record(100)
		h.Record(200)
		r.OnSnapshot(func(emit func(string, float64)) {
			emit("lazy/metric", 7)
		})
		return r.Snapshot(sim.Time(1234))
	}
	s1, s2 := build(), build()

	for i := 1; i < len(s1.Metrics); i++ {
		if s1.Metrics[i-1].Name >= s1.Metrics[i].Name {
			t.Fatalf("metrics not sorted: %q >= %q", s1.Metrics[i-1].Name, s1.Metrics[i].Name)
		}
	}
	if v, ok := s1.Get("a/count"); !ok || v != 1 {
		t.Fatalf("Get(a/count) = %v, %v", v, ok)
	}
	if v, ok := s1.Get("lat/count"); !ok || v != 2 {
		t.Fatalf("Get(lat/count) = %v, %v", v, ok)
	}
	if _, ok := s1.Get("missing"); ok {
		t.Fatal("Get(missing) should report absence")
	}

	var j1, j2, c1, c2 bytes.Buffer
	if err := s1.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("same registry state produced different JSON")
	}
	if err := s1.WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("same registry state produced different CSV")
	}
}

func TestCounterIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counters should share state")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name should return the same histogram")
	}
}

func TestSamplerTicksOnVirtualClock(t *testing.T) {
	s := sim.New(1)
	sp := NewSampler(s, 10*time.Microsecond)
	v := 0.0
	sp.Track("v", func() float64 { v++; return v })
	sp.Start(sim.Time(100 * 1000)) // 100µs horizon
	s.Run()
	// Ticks at t=0,10µs,...,100µs inclusive.
	if sp.Len() != 11 {
		t.Fatalf("rows = %d, want 11", sp.Len())
	}
	at, row := sp.Row(10)
	if at != sim.Time(100*1000) || row[0] != 11 {
		t.Fatalf("last row = %v %v", at, row)
	}

	var b1 bytes.Buffer
	if err := sp.WriteCSV(&b1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b1.Bytes(), []byte("t_ns,v\n0,1\n")) {
		t.Fatalf("unexpected CSV head: %q", b1.String()[:40])
	}
}

func TestSamplerStop(t *testing.T) {
	s := sim.New(1)
	sp := NewSampler(s, 10*time.Microsecond)
	sp.Track("x", func() float64 { return 0 })
	sp.Start(sim.Time(1_000_000))
	s.RunFor(25 * time.Microsecond)
	sp.Stop()
	s.Run()
	if sp.Len() != 3 { // t=0, 10µs, 20µs
		t.Fatalf("rows after stop = %d, want 3", sp.Len())
	}
}

func TestRecorderRingWrap(t *testing.T) {
	s := sim.New(1)
	r := NewRecorder(s, 4)
	for i := 0; i < 10; i++ {
		r.Record(TagSend, 0, 1, uint32(i), uint64(i), 0)
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	recs := r.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("retained = %d, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.PSN != uint32(6+i) {
			t.Fatalf("rec[%d].PSN = %d, want %d (oldest-first)", i, rec.PSN, 6+i)
		}
	}
	if r.DumpString() == "" {
		t.Fatal("dump should render")
	}
}

func TestRecorderEmptyDump(t *testing.T) {
	r := NewRecorder(sim.New(1), 8)
	if got := r.DumpString(); got != "flight recorder: empty\n" {
		t.Fatalf("empty dump = %q", got)
	}
}

func TestRecorderTapFrame(t *testing.T) {
	r := NewRecorder(sim.New(1), 8)
	p := &wire.Packet{Type: wire.TypeAck, ConnID: 9, PSN: 42, RSN: 7}
	r.TapFrame(&netsim.Frame{Payload: p, Size: 64})
	r.TapFrame(&netsim.Frame{Payload: "opaque", Size: 128})
	recs := r.Snapshot()
	if recs[0].Conn != 9 || recs[0].PSN != 42 || recs[0].Aux != 64 {
		t.Fatalf("packet frame record = %+v", recs[0])
	}
	if recs[1].Conn != 0 || recs[1].Aux != 128 {
		t.Fatalf("opaque frame record = %+v", recs[1])
	}
}

// The zero-allocation contract: armed instruments must not allocate on
// the hot path, so they can shadow every packet without perturbing the
// simulator's allocation profile (ISSUE 3 acceptance criterion).
func TestTelemetryZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	rec := NewRecorder(sim.New(1), DefaultRecorderDepth)
	p := &wire.Packet{Type: wire.TypeAck, ConnID: 1, PSN: 2, RSN: 3}
	f := &netsim.Frame{Payload: p, Size: 64}

	if a := testing.AllocsPerRun(1000, c.Inc); a != 0 {
		t.Errorf("Counter.Inc: %.1f allocs/op", a)
	}
	if a := testing.AllocsPerRun(1000, func() {
		rec.Record(TagSend, 1, 2, 3, 4, 5)
	}); a != 0 {
		t.Errorf("Recorder.Record: %.1f allocs/op", a)
	}
	if a := testing.AllocsPerRun(1000, func() { rec.TapFrame(f) }); a != 0 {
		t.Errorf("Recorder.TapFrame: %.1f allocs/op", a)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkRecorderRecord(b *testing.B) {
	rec := NewRecorder(sim.New(1), DefaultRecorderDepth)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Record(TagSend, 1, uint32(i), uint32(i), uint64(i), 0)
	}
}
