package tl

// rsnTable is a dense open-addressed table keyed by RSN. RSNs are
// assigned sequentially and live entries span a bounded window (resource
// contexts bound outstanding transactions), so direct modulo indexing
// into a power-of-two ring almost never collides: two live keys can only
// share a slot when the window is wider than the table, and growing the
// table to exceed the window restores injectivity (keys within a window
// narrower than the table size never differ by a multiple of it). The
// result is map semantics with array-indexing cost and zero steady-state
// allocation — this is what replaces the four per-connection maps on the
// TL hot path.
//
// Keys are stored as rsn+1 so the zero value means "empty"; low/high
// bracket the live keys for ordered iteration. When constructed with
// legacy=true the table is backed by a plain Go map instead (the
// verification oracle; see table_legacy.go).
type rsnTable[T any] struct {
	keys []uint64 // rsn+1; 0 = empty
	vals []T
	n    int
	low  uint64 // lower bound on live keys (advanced lazily)
	high uint64 // strict upper bound on live keys
	m    map[uint64]T // non-nil selects the map backend
}

func newRSNTable[T any](legacy bool) rsnTable[T] {
	if legacy {
		return rsnTable[T]{m: make(map[uint64]T)}
	}
	return rsnTable[T]{keys: make([]uint64, 32), vals: make([]T, 32)}
}

func (t *rsnTable[T]) len() int {
	if t.m != nil {
		return len(t.m)
	}
	return t.n
}

func (t *rsnTable[T]) idx(rsn uint64) int { return int(rsn & uint64(len(t.keys)-1)) }

func (t *rsnTable[T]) get(rsn uint64) (T, bool) {
	if t.m != nil {
		return t.getMap(rsn)
	}
	if i := t.idx(rsn); t.keys[i] == rsn+1 {
		return t.vals[i], true
	}
	var zero T
	return zero, false
}

func (t *rsnTable[T]) has(rsn uint64) bool {
	if t.m != nil {
		return t.hasMap(rsn)
	}
	return t.keys[t.idx(rsn)] == rsn+1
}

func (t *rsnTable[T]) put(rsn uint64, v T) {
	if t.m != nil {
		t.putMap(rsn, v)
		return
	}
	i := t.idx(rsn)
	if t.keys[i] == rsn+1 {
		t.vals[i] = v
		return
	}
	for t.keys[i] != 0 {
		t.grow()
		i = t.idx(rsn)
	}
	t.keys[i] = rsn + 1
	t.vals[i] = v
	if t.n == 0 || rsn < t.low {
		t.low = rsn
	}
	if rsn+1 > t.high {
		t.high = rsn + 1
	}
	t.n++
}

// del removes rsn, returning the stored value.
func (t *rsnTable[T]) del(rsn uint64) (T, bool) {
	if t.m != nil {
		return t.delMap(rsn)
	}
	var zero T
	i := t.idx(rsn)
	if t.keys[i] != rsn+1 {
		return zero, false
	}
	v := t.vals[i]
	t.keys[i] = 0
	t.vals[i] = zero
	t.n--
	if t.n == 0 {
		t.low, t.high = 0, 0
	}
	return v, true
}

// grow resizes the ring to exceed the live key span and reinserts. Keys
// whose span is narrower than the table size never differ by a multiple
// of it, so the reinsert pass cannot collide (and put's retry loop covers
// the new key still colliding — it just grows again).
func (t *rsnTable[T]) grow() {
	oldKeys, oldVals := t.keys, t.vals
	var lo, hi uint64
	first := true
	for _, k := range oldKeys {
		if k == 0 {
			continue
		}
		if first {
			lo, hi, first = k, k, false
			continue
		}
		if k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
	}
	size := len(oldKeys) * 2
	for uint64(size) <= hi-lo {
		size *= 2
	}
	t.keys = make([]uint64, size)
	t.vals = make([]T, size)
	for i, k := range oldKeys {
		if k != 0 {
			j := t.idx(k - 1)
			t.keys[j] = k
			t.vals[j] = oldVals[i]
		}
	}
}

// lowBound returns the smallest live key (advancing the cached bound past
// deleted entries); callers iterate rsn from lowBound() to high.
func (t *rsnTable[T]) lowBound() uint64 {
	for t.low < t.high && t.keys[t.idx(t.low)] != t.low+1 {
		t.low++
	}
	return t.low
}

// sorted returns the live keys in ascending order (diagnostics).
func (t *rsnTable[T]) sorted() []uint64 {
	if t.m != nil {
		return sortedKeys(t.m)
	}
	out := make([]uint64, 0, t.n)
	for rsn := t.lowBound(); rsn < t.high; rsn++ {
		if t.has(rsn) {
			out = append(out, rsn)
		}
	}
	return out
}
