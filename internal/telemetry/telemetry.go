// Package telemetry is the deterministic observability subsystem for the
// Falcon reproduction: typed metric registries, log-linear histograms
// (internal/stats), virtual-clock time-series samplers, and a fixed-size
// flight recorder of recent protocol activity.
//
// Two properties shape every API here:
//
//   - Zero allocation when armed. Counters bump a plain uint64, histograms
//     write into a fixed array, and the flight recorder overwrites a
//     preallocated ring. Protocol hot paths can leave instrumentation
//     attached permanently without perturbing the allocation benchmarks
//     (see TestTelemetryZeroAlloc).
//
//   - Determinism. Nothing in this package reads the wall clock: samples
//     are stamped with sim.Time, snapshots walk registrations in sorted
//     name order, and floats are formatted with strconv's shortest
//     round-trip form. Two same-seed runs therefore export byte-identical
//     JSON and CSV — the property the acceptance test in
//     internal/experiments/telemetry_test.go locks in.
//
// The package observes the stack through the same nil-checked single-slot
// hooks verification uses (pdl.Probe, tl.Probe, sim.Observer,
// netsim.Host.SetTap, fae observer); layer stats structs are read lazily
// at snapshot or sampler-tick time, never on the packet path. DESIGN.md §9
// documents the metric catalogue and the determinism contract; METRICS.md
// is the authoritative per-metric reference (kind, unit, determinism
// class), enforced complete by TestMetricsDocComplete, and internal/lake
// indexes exported snapshots and series for cross-run regression diffs.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"falcon/internal/sim"
	"falcon/internal/stats"
)

// Counter is a monotonically increasing metric. Incrementing is a plain
// integer add — no atomics (simulators are single-threaded) and no
// allocation.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Registry is a named collection of metrics. Registration happens at
// setup time (it allocates); reading registered instruments at snapshot
// time walks them in sorted name order so exports are deterministic.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]func() float64
	hists    map[string]*stats.Histogram
	lazy     []func(emit func(name string, value float64))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() float64),
		hists:    make(map[string]*stats.Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge registers a polled gauge: fn is evaluated at snapshot and
// sampler-tick time, never on a hot path. Re-registering a name replaces
// the previous function.
func (r *Registry) Gauge(name string, fn func() float64) { r.gauges[name] = fn }

// Histogram returns the named histogram, creating it on first use.
// Histograms expand into <name>/count, /mean, /p50, /p99 and /max metrics
// in snapshots.
func (r *Registry) Histogram(name string) *stats.Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &stats.Histogram{}
	r.hists[name] = h
	return h
}

// OnSnapshot registers a lazy collector invoked at snapshot time with an
// emit callback. Sinks use this to publish whole layer Stats structs
// without per-event cost (see sinks.go).
func (r *Registry) OnSnapshot(fn func(emit func(name string, value float64))) {
	r.lazy = append(r.lazy, fn)
}

// Metric is one named value in a snapshot.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is the registry's state at one virtual instant. Metrics are
// sorted by name; marshaling a snapshot with encoding/json is
// byte-deterministic for identical metric values.
type Snapshot struct {
	// AtNs is the virtual timestamp of the snapshot in nanoseconds.
	AtNs int64 `json:"at_ns"`
	// Metrics lists every metric sorted by name.
	Metrics []Metric `json:"metrics"`
}

// Snapshot captures every registered metric at virtual time at.
func (r *Registry) Snapshot(at sim.Time) Snapshot {
	var ms []Metric
	emit := func(name string, value float64) {
		ms = append(ms, Metric{Name: name, Value: value})
	}
	for name, c := range r.counters {
		emit(name, float64(c.n))
	}
	for name, fn := range r.gauges {
		emit(name, fn())
	}
	for name, h := range r.hists {
		emit(name+"/count", float64(h.Count()))
		emit(name+"/mean", h.Mean())
		emit(name+"/p50", float64(h.Quantile(50)))
		emit(name+"/p99", float64(h.Quantile(99)))
		emit(name+"/max", float64(h.Max()))
	}
	for _, fn := range r.lazy {
		fn(emit)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return Snapshot{AtNs: int64(at), Metrics: ms}
}

// Get returns the value of the named metric in the snapshot (0, false
// when absent).
func (s Snapshot) Get(name string) (float64, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i].Value, true
	}
	return 0, false
}

// WriteJSON writes the snapshot as indented JSON. Output is
// byte-deterministic for identical snapshots.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as "name,value" rows with a header. Floats
// use strconv's shortest round-trip formatting, so identical values always
// produce identical bytes.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "name,value\n"); err != nil {
		return err
	}
	for _, m := range s.Metrics {
		if _, err := fmt.Fprintf(w, "%s,%s\n", m.Name, formatFloat(m.Value)); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders v in the shortest form that round-trips, the same
// rule encoding/json uses; identical bit patterns produce identical bytes.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
