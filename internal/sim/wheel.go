package sim

// Two-level hashed timing wheel backing SchedulerWheel, the hierarchical
// sibling of the standalone pacing wheel in internal/timingwheel (which
// models Falcon's Carousel block and is driven *by* the simulator; this one
// *is* the simulator's pending-event set, so it lives here and stores
// events intrusively).
//
// Layout (see DESIGN.md §8 for the crossover analysis):
//
//	level 0:  1024 slots x 128ns   = one 131.072us granule
//	level 1:   256 slots x 131us   = one ~33.55ms epoch
//	beyond:   binary heap ("far"), cascaded inward as the clock advances
//
// Slots hash by absolute time (at>>shift & mask), so an event is placed
// with two shifts and a compare. Each level keeps an occupancy bitmap, so
// finding the next non-empty slot is a TrailingZeros scan rather than a
// ring walk. Events inside one level-0 slot are unordered until the slot
// becomes due, at which point the slot is drained into `cur` and sorted by
// (time, seq) — restoring the exact global delivery order the heap
// produces. Events scheduled into the granule currently being drained merge
// into `cur` by binary insertion, which keeps same-instant FIFO exact even
// for zero-delay self-scheduling callbacks.
//
// Cancellation is lazy (events are flagged dead and reclaimed when they
// surface), and all slot slices, the sort buffer and the events themselves
// are recycled, so steady-state scheduling performs no allocations.

import (
	"container/heap"
	"math/bits"
)

const (
	l0Shift = 7                // 128ns level-0 slot width
	l0Bits  = 10               // 1024 level-0 slots
	l1Shift = l0Shift + l0Bits // level-1 slot width = one level-0 granule
	l1Bits  = 8                // 256 level-1 slots
	l2Shift = l1Shift + l1Bits // epoch width = one full level-1 revolution

	l0Slots = 1 << l0Bits
	l1Slots = 1 << l1Bits
	l0Mask  = l0Slots - 1
	l1Mask  = l1Slots - 1
)

// wheelState is embedded in Simulator. All times are absolute, so slot
// indices are pure hashes of the timestamp; l0Gran and epoch record which
// granule/epoch each level currently covers, and l0Next/l1Next bound the
// occupancy scan to slots not yet drained.
type wheelState struct {
	// cur holds the events of the level-0 slot being drained, sorted by
	// (time, seq); curPos is the next undelivered index. curEnd is the
	// exclusive time bound below which newly scheduled events must merge
	// into cur to keep delivery order exact.
	cur    []*event
	curPos int
	curEnd Time

	l0      [l0Slots][]*event
	l0bits  [l0Slots / 64]uint64
	l0Count int    // events in level-0 slots (including cancelled ones)
	l0Next  int    // first level-0 slot not yet drained this granule
	l0Gran  uint64 // absolute granule number (at >> l1Shift) level 0 covers

	l1      [l1Slots][]*event
	l1bits  [l1Slots / 64]uint64
	l1Count int
	l1Next  int
	epoch   uint64 // absolute epoch number (at >> l2Shift) level 1 covers
}

// nextBit returns the index of the first set bit at or after from, or -1.
func nextBit(words []uint64, from int) int {
	w := from >> 6
	if w >= len(words) {
		return -1
	}
	word := words[w] & (^uint64(0) << uint(from&63))
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(words) {
			return -1
		}
		word = words[w]
	}
}

// wheelInsert places e in cur, a wheel level or the far heap. Placement
// depends only on e.at and state that pop keeps consistent with the clock,
// so an insert is two shifts and an append in the common case.
func (s *Simulator) wheelInsert(e *event) {
	w := &s.wheel
	if e.at < w.curEnd {
		w.curInsert(e)
		return
	}
	at := uint64(e.at)
	if at>>l1Shift == w.l0Gran {
		k := int(at>>l0Shift) & l0Mask
		if len(w.l0[k]) == 0 {
			w.l0bits[k>>6] |= 1 << uint(k&63)
		}
		w.l0[k] = append(w.l0[k], e)
		w.l0Count++
		return
	}
	if at>>l2Shift == w.epoch {
		m := int(at>>l1Shift) & l1Mask
		if len(w.l1[m]) == 0 {
			w.l1bits[m>>6] |= 1 << uint(m&63)
		}
		w.l1[m] = append(w.l1[m], e)
		w.l1Count++
		return
	}
	heap.Push(&s.far, e)
}

// curInsert merges e into the sorted cur buffer (binary insertion). The
// overwhelmingly common case — a callback scheduling at the current instant
// — lands at the tail, because its seq is the largest yet issued.
func (w *wheelState) curInsert(e *event) {
	lo, hi := w.curPos, len(w.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(w.cur[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.cur = append(w.cur, nil)
	copy(w.cur[lo+1:], w.cur[lo:])
	w.cur[lo] = e
}

// wheelPop removes and returns the live event with the smallest
// (time, seq), cascading level-1 slots and far-heap epochs inward as the
// schedule drains. Invariant: every event in cur precedes every level-0
// event, which precedes every level-1 event, which precedes every far
// event — so scanning the regions in order always finds the global
// minimum.
func (s *Simulator) wheelPop() *event {
	w := &s.wheel
	for {
		// Region 1: the sorted drain buffer.
		for w.curPos < len(w.cur) {
			e := w.cur[w.curPos]
			w.cur[w.curPos] = nil
			w.curPos++
			if e.dead {
				s.recycle(e)
				continue
			}
			return e
		}
		if len(w.cur) > 0 {
			w.cur = w.cur[:0]
			w.curPos = 0
		}
		// Region 2: drain the next occupied level-0 slot into cur.
		if w.l0Count > 0 {
			k := nextBit(w.l0bits[:], w.l0Next)
			items := w.l0[k]
			w.l0[k] = items[:0]
			w.l0bits[k>>6] &^= 1 << uint(k&63)
			w.l0Count -= len(items)
			w.l0Next = k + 1
			// Addition, not OR: k+1 == l0Slots (the granule's last
			// slot) must carry into the granule bits.
			w.curEnd = Time(w.l0Gran<<l1Shift + uint64(k+1)<<l0Shift)
			for _, e := range items {
				if e.dead {
					s.recycle(e)
					continue
				}
				w.cur = append(w.cur, e)
			}
			sortEvents(w.cur)
			continue
		}
		// Region 3: cascade the next occupied level-1 slot into level 0.
		if w.l1Count > 0 {
			m := nextBit(w.l1bits[:], w.l1Next)
			items := w.l1[m]
			w.l1[m] = items[:0]
			w.l1bits[m>>6] &^= 1 << uint(m&63)
			w.l1Count -= len(items)
			live := false
			for _, e := range items {
				if !e.dead {
					live = true
					break
				}
			}
			if !live {
				// A slot holding nothing but cancelled timers must not
				// re-anchor level 0: advancing l0Gran past granules the
				// clock has not reached would let a later Run() strand
				// fresh events behind the l1Next scan point (they hash
				// to level-1 slots nextBit never revisits). Reclaim the
				// slot and keep the anchor where the clock is.
				for _, e := range items {
					s.recycle(e)
				}
				continue
			}
			w.l1Next = m + 1
			w.l0Gran = w.epoch<<l1Bits | uint64(m)
			w.l0Next = 0
			for _, e := range items {
				if e.dead {
					s.recycle(e)
					continue
				}
				s.wheelInsert(e)
			}
			continue
		}
		// Region 4: refill level 1 with the far heap's next epoch.
		for len(s.far) > 0 && s.far[0].dead {
			s.recycle(heap.Pop(&s.far).(*event))
		}
		if len(s.far) == 0 {
			return nil
		}
		newEpoch := uint64(s.far[0].at) >> l2Shift
		w.epoch = newEpoch
		w.l1Next = 0
		w.l0Gran = newEpoch << l1Bits
		w.l0Next = 0
		for len(s.far) > 0 {
			e := s.far[0]
			if uint64(e.at)>>l2Shift != newEpoch {
				break
			}
			heap.Pop(&s.far)
			if e.dead {
				s.recycle(e)
				continue
			}
			s.wheelInsert(e)
		}
	}
}

// wheelPeek reports the exact timestamp of the next live event without
// advancing the wheel: RunUntil needs the precise value to decide whether
// the event falls inside its bound, even mid-slot. Fully cancelled slots
// encountered along the way are reclaimed, but no live event moves.
func (s *Simulator) wheelPeek() (Time, bool) {
	w := &s.wheel
	for w.curPos < len(w.cur) {
		e := w.cur[w.curPos]
		if !e.dead {
			return e.at, true
		}
		w.cur[w.curPos] = nil
		w.curPos++
		s.recycle(e)
	}
	if len(w.cur) > 0 {
		w.cur = w.cur[:0]
		w.curPos = 0
	}
	if at, ok := peekLevel(s, w.l0[:], w.l0bits[:], &w.l0Count, w.l0Next); ok {
		return at, true
	}
	if at, ok := peekLevel(s, w.l1[:], w.l1bits[:], &w.l1Count, w.l1Next); ok {
		return at, true
	}
	for len(s.far) > 0 {
		e := s.far[0]
		if !e.dead {
			return e.at, true
		}
		heap.Pop(&s.far)
		s.recycle(e)
	}
	return 0, false
}

// peekLevel finds the earliest live timestamp in a wheel level, clearing
// slots that hold only cancelled events.
func peekLevel(s *Simulator, slots [][]*event, bitmap []uint64, count *int, from int) (Time, bool) {
	for *count > 0 {
		k := nextBit(bitmap, from)
		if k < 0 {
			return 0, false
		}
		var min Time
		live := 0
		for _, e := range slots[k] {
			if e.dead {
				continue
			}
			if live == 0 || e.at < min {
				min = e.at
			}
			live++
		}
		if live > 0 {
			return min, true
		}
		for _, e := range slots[k] {
			s.recycle(e)
		}
		*count -= len(slots[k])
		slots[k] = slots[k][:0]
		bitmap[k>>6] &^= 1 << uint(k&63)
		from = k + 1
	}
	return 0, false
}

// sortEvents sorts by (time, seq) in place without allocating: quicksort
// with median-of-three pivots, finishing small runs by insertion sort.
// seq values are unique, so the order is total and stability is moot.
func sortEvents(a []*event) {
	for len(a) > 12 {
		lo, mid, hi := 0, len(a)/2, len(a)-1
		if eventLess(a[mid], a[lo]) {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if eventLess(a[hi], a[lo]) {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if eventLess(a[hi], a[mid]) {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for eventLess(a[i], pivot) {
				i++
			}
			for eventLess(pivot, a[j]) {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if j-lo < hi-i {
			sortEvents(a[lo : j+1])
			a = a[i:]
		} else {
			sortEvents(a[i:])
			a = a[:j+1]
		}
	}
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && eventLess(e, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}
