package experiments

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// stripTimings removes the wall-time annotations, the only part of the
// output allowed to differ between runs.
func stripTimings(s string) string {
	return regexp.MustCompile(`\(\S+ in [^)]+\)`).ReplaceAllString(s, "")
}

// pickEntries returns a small fast subset spanning simulator-backed and
// analytic experiments.
func pickEntries(t *testing.T, names ...string) []Entry {
	t.Helper()
	byName := map[string]Entry{}
	for _, e := range Registry() {
		byName[e.Name] = e
	}
	var out []Entry
	for _, n := range names {
		e, ok := byName[n]
		if !ok {
			t.Fatalf("registry has no entry %q", n)
		}
		out = append(out, e)
	}
	return out
}

// TestParallelRunnerMatchesSerial fans a subset of the registry across a
// worker pool and requires output identical to the serial run, modulo
// timing annotations: experiments must not share any mutable state. Run
// under -race (make race) this also proves the pool itself is clean.
func TestParallelRunnerMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	entries := pickEntries(t, "fig18", "fig19", "fig21", "fig22a", "fig23")
	var serial, par bytes.Buffer
	repS := Run(entries, true, 1, &serial)
	repP := Run(entries, true, 4, &par)
	got, want := stripTimings(par.String()), stripTimings(serial.String())
	if got != want {
		t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if repS.Parallel != 1 || repP.Parallel != 4 {
		t.Fatalf("reported pool widths = %d, %d", repS.Parallel, repP.Parallel)
	}
	if len(repP.Figures) != len(entries) {
		t.Fatalf("parallel report has %d figures, want %d", len(repP.Figures), len(entries))
	}
	for i, fr := range repP.Figures {
		if fr.Name != entries[i].Name {
			t.Fatalf("figure %d = %q, want %q (registry order)", i, fr.Name, entries[i].Name)
		}
	}
}

// TestSerialRunnerAttributesEvents checks that a serial run attributes
// simulator events to the figure that delivered them.
func TestSerialRunnerAttributesEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	entries := pickEntries(t, "fig22b") // simulator-backed, fast
	var out bytes.Buffer
	rep := Run(entries, true, 1, &out)
	if rep.Figures[0].Events == 0 || rep.Events == 0 {
		t.Fatalf("serial run attributed no events: %+v", rep)
	}
	if rep.Figures[0].EventsPerSec <= 0 || rep.Figures[0].NsPerEvent <= 0 {
		t.Fatalf("derived rates missing: %+v", rep.Figures[0])
	}
	if !strings.Contains(out.String(), "(fig22b in ") {
		t.Fatalf("missing timing annotation:\n%s", out.String())
	}
}
