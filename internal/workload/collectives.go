package workload

// MPI collectives over a Messenger, structured as lockstep phases: every
// phase issues its messages, and the next phase begins when all of them
// have been delivered. This reproduces the completion-time behaviour of
// barrier-synchronized collective implementations (Intel MPI Benchmarks
// measure exactly this), while letting the transport underneath determine
// per-message latency and bandwidth.

// phase delivers all sends of one step, then calls next.
type phase struct {
	m       Messenger
	pending int
	next    func()
}

func runPhase(m Messenger, sends [][3]int, next func()) {
	if len(sends) == 0 {
		next()
		return
	}
	p := &phase{m: m, pending: len(sends), next: next}
	for _, s := range sends {
		from, to, n := s[0], s[1], s[2]
		m.Send(from, to, n, p.done)
	}
}

func (p *phase) done() {
	p.pending--
	if p.pending == 0 {
		p.next()
	}
}

// AllReduce reduces `bytes` across all ranks and leaves the result
// everywhere. Small messages use recursive doubling (log2(p) exchanges of
// the full buffer); large messages use the ring algorithm (2(p-1) steps of
// bytes/p chunks). done fires when every rank holds the result.
func AllReduce(m Messenger, bytes int, done func()) {
	p := m.Ranks()
	if p <= 1 {
		done()
		return
	}
	if bytes <= 8192 && isPow2(p) {
		recursiveDoubling(m, bytes, done)
		return
	}
	ringAllReduce(m, bytes, done)
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// recursiveDoubling: log2(p) phases; in phase k, rank r exchanges the full
// buffer with rank r XOR 2^k.
func recursiveDoubling(m Messenger, bytes int, done func()) {
	p := m.Ranks()
	var step func(k int)
	step = func(k int) {
		if 1<<k >= p {
			done()
			return
		}
		var sends [][3]int
		for r := 0; r < p; r++ {
			sends = append(sends, [3]int{r, r ^ (1 << k), bytes})
		}
		runPhase(m, sends, func() { step(k + 1) })
	}
	step(0)
}

// ringAllReduce: reduce-scatter then allgather, 2(p-1) phases of
// ceil(bytes/p) chunk sends to the right neighbor.
func ringAllReduce(m Messenger, bytes int, done func()) {
	p := m.Ranks()
	chunk := (bytes + p - 1) / p
	if chunk < 1 {
		chunk = 1
	}
	total := 2 * (p - 1)
	var step func(k int)
	step = func(k int) {
		if k >= total {
			done()
			return
		}
		var sends [][3]int
		for r := 0; r < p; r++ {
			sends = append(sends, [3]int{r, (r + 1) % p, chunk})
		}
		runPhase(m, sends, func() { step(k + 1) })
	}
	step(0)
}

// AllToAll exchanges `bytes` between every pair of ranks: p-1 phases, in
// phase k rank r sends its block to (r+k) mod p.
func AllToAll(m Messenger, bytes int, done func()) {
	p := m.Ranks()
	if p <= 1 {
		done()
		return
	}
	var step func(k int)
	step = func(k int) {
		if k >= p {
			done()
			return
		}
		var sends [][3]int
		for r := 0; r < p; r++ {
			sends = append(sends, [3]int{r, (r + k) % p, bytes})
		}
		runPhase(m, sends, func() { step(k + 1) })
	}
	step(1)
}

// AllGather gathers each rank's `bytes` everywhere: ring with p-1 phases
// of full-block sends.
func AllGather(m Messenger, bytes int, done func()) {
	p := m.Ranks()
	if p <= 1 {
		done()
		return
	}
	var step func(k int)
	step = func(k int) {
		if k >= p-1 {
			done()
			return
		}
		var sends [][3]int
		for r := 0; r < p; r++ {
			sends = append(sends, [3]int{r, (r + 1) % p, bytes})
		}
		runPhase(m, sends, func() { step(k + 1) })
	}
	step(0)
}

// MultiPingPong pairs rank r with rank r+p/2 and runs `iters` ping-pongs
// of `bytes` per pair concurrently. done fires when every pair finishes.
func MultiPingPong(m Messenger, bytes, iters int, done func()) {
	p := m.Ranks()
	pairs := p / 2
	if pairs == 0 {
		done()
		return
	}
	remaining := pairs
	finish := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
	for i := 0; i < pairs; i++ {
		a, b := i, i+pairs
		var ping func(k int)
		ping = func(k int) {
			if k >= iters {
				finish()
				return
			}
			m.Send(a, b, bytes, func() {
				m.Send(b, a, bytes, func() { ping(k + 1) })
			})
		}
		ping(0)
	}
}
