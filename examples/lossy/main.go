// Lossy-fabric shootout: Falcon vs RoCE-GBN vs RoCE-SR goodput while a
// switch randomly drops packets — a miniature of the paper's Figure 10a.
//
//	go run ./examples/lossy
package main

import (
	"fmt"
	"time"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/roce"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

const (
	opSize   = 8 << 10 // 8KB writes
	runFor   = 10 * time.Millisecond
	window   = 32
	linkGbps = 100
)

func falconGoodput(dropPct float64) float64 {
	s := sim.New(1)
	link := netsim.LinkConfig{GbpsRate: linkGbps, PropDelay: time.Microsecond}
	topo, fwd := netsim.PointToPoint(s, link)
	fwd.SetDropProb(dropPct / 100)
	cl := core.NewCluster(s)
	a := cl.AddNode(topo.Hosts[0], core.DefaultNodeConfig())
	b := cl.AddNode(topo.Hosts[1], core.DefaultNodeConfig())
	epA, epB := cl.Connect(a, b, core.DefaultConnConfig())
	qa := rdma.NewQP(epA, rdma.Config{})
	rdma.NewQP(epB, rdma.Config{}).RegisterMemoryLen(1 << 40)
	_ = qa

	delivered := uint64(0)
	issuer := workload.NewClosedLoop(s, window, 1<<30, func(opDone func()) bool {
		err := qa.Write(0, 0, nil, opSize, func(c rdma.Completion) {
			if c.Err == nil {
				delivered += opSize
			}
			opDone()
		})
		return err == nil
	}, nil)
	issuer.Start()
	s.RunUntil(sim.Time(runFor))
	return stats.Gbps(delivered, runFor)
}

func roceGoodput(mode roce.Mode, dropPct float64) float64 {
	s := sim.New(1)
	link := netsim.LinkConfig{GbpsRate: linkGbps, PropDelay: time.Microsecond}
	topo, fwd := netsim.PointToPoint(s, link)
	fwd.SetDropProb(dropPct / 100)
	a := roce.NewNode(s, topo.Hosts[0], nil)
	b := roce.NewNode(s, topo.Hosts[1], nil)
	cfg := roce.DefaultConfig()
	cfg.Mode = mode
	cfg.LinkGbps = linkGbps
	qp, _ := roce.Connect(a, b, 1, cfg)

	delivered := uint64(0)
	issuer := workload.NewClosedLoop(s, window, 1<<30, func(opDone func()) bool {
		qp.Write(opSize, func() {
			delivered += opSize
			opDone()
		})
		return true
	}, nil)
	issuer.Start()
	s.RunUntil(sim.Time(runFor))
	return stats.Gbps(delivered, runFor)
}

func main() {
	fmt.Printf("8KB RDMA Writes over a %dG link, random forward-path drops\n\n", linkGbps)
	fmt.Printf("%-8s %10s %12s %12s\n", "drop%", "Falcon", "RoCE-SR", "RoCE-GBN")
	for _, drop := range []float64{0, 0.1, 0.5, 1, 2} {
		fmt.Printf("%-8.1f %9.1fG %11.1fG %11.1fG\n",
			drop,
			falconGoodput(drop),
			roceGoodput(roce.SR, drop),
			roceGoodput(roce.GBN, drop))
	}
	fmt.Println("\nFalcon holds goodput under loss (bitmap SACK + RACK-TLP);")
	fmt.Println("RoCE-SR degrades; RoCE-GBN collapses (full-window rewinds).")
}
