package experiments

import (
	"reflect"
	"testing"
	"time"

	"falcon/internal/sim"
)

// TestShardTableEquivalence reruns one experiment from each family with
// every simulator split into 2 and 4 merged partitions (the falconbench
// -shards mode) and requires bit-identical tables against the single
// event loop. This is the figure-level face of the trace-hash gate in
// internal/testkit: partitioning must never move a cell, because the
// deterministic merge replays the exact (time, seq) delivery order. The
// full-registry version of this check is `make shardcheck`, which diffs
// complete falconbench runs at -shards 1, 2 and 4.
//
// The test mutates the process-wide default shard count, so it must not
// run in parallel with other tests in this package (it doesn't call
// t.Parallel, and Go runs same-package tests sequentially otherwise).
func TestShardTableEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	defer sim.SetDefaultShards(1)
	families := []struct {
		name string
		run  func() *Table
	}{
		{"scale/FigScale", func() *Table { return FigScale(150*time.Microsecond, true) }},
		{"loss/Fig10", func() *Table { return Fig10(500 * time.Microsecond) }},
		{"congestion/Fig13", func() *Table { return Fig13(500 * time.Microsecond) }},
		{"hwscale/Fig19", Fig19},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			sim.SetDefaultShards(1)
			base := fam.run()
			for _, n := range []int{2, 4} {
				sim.SetDefaultShards(n)
				got := fam.run()
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("shards=%d table differs from single loop:\nsingle: %+v\nsharded: %+v", n, base, got)
				}
			}
		})
	}
}

// TestShardParallelFigScale runs figScale — the one figure designed with
// partition-local accumulation — in the experimental windowed-parallel
// mode twice and requires bit-identical tables: concurrency may change
// wall time, never a cell between same-seed parallel runs. (Parallel
// tables are self-deterministic but not byte-comparable to merged mode:
// partition-local timers and RNG streams legitimately shift internal
// event counts.)
func TestShardParallelFigScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	defer func() {
		sim.SetDefaultShards(1)
		sim.SetDefaultShardParallel(false)
	}()
	sim.SetDefaultShards(4)
	sim.SetDefaultShardParallel(true)
	a := FigScale(150*time.Microsecond, true)
	b := FigScale(150*time.Microsecond, true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed parallel figScale runs differ:\nfirst: %+v\nsecond: %+v", a, b)
	}
}
