package wire

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitmapBits is the width of the RX window bitmap carried in ACKs. The
// paper: "128-bit bitmaps worked well for our use cases" (§4.1).
const BitmapBits = 128

// Bitmap is the 128-bit receive window bitmap piggybacked on ACKs. Bit i
// describes PSN Base+i: 1 = received, 0 = missing. Bit 0 is the LSB of
// word 0.
type Bitmap [2]uint64

// Set marks bit i. Out-of-range indices are ignored (the caller clamps to
// the window).
func (m *Bitmap) Set(i int) {
	if i < 0 || i >= BitmapBits {
		return
	}
	m[i/64] |= 1 << (i % 64)
}

// Clear clears bit i.
func (m *Bitmap) Clear(i int) {
	if i < 0 || i >= BitmapBits {
		return
	}
	m[i/64] &^= 1 << (i % 64)
}

// Get reports bit i. Out-of-range indices report false.
func (m Bitmap) Get(i int) bool {
	if i < 0 || i >= BitmapBits {
		return false
	}
	return m[i/64]&(1<<(i%64)) != 0
}

// ShiftRight shifts the window down by n bits (discarding the low n bits),
// used when the RX window base advances by n.
func (m *Bitmap) ShiftRight(n int) {
	if n <= 0 {
		return
	}
	if n >= BitmapBits {
		m[0], m[1] = 0, 0
		return
	}
	if n >= 64 {
		m[0] = m[1] >> (n - 64)
		m[1] = 0
		return
	}
	m[0] = m[0]>>n | m[1]<<(64-n)
	m[1] >>= n
}

// OnesCount returns the number of set bits.
func (m Bitmap) OnesCount() int {
	return bits.OnesCount64(m[0]) + bits.OnesCount64(m[1])
}

// LeadingRun returns the length of the run of consecutive set bits starting
// at bit 0. This is how many PSNs the base can cumulatively advance.
func (m Bitmap) LeadingRun() int {
	inv0 := ^m[0]
	if inv0 != 0 {
		return bits.TrailingZeros64(inv0)
	}
	inv1 := ^m[1]
	if inv1 != 0 {
		return 64 + bits.TrailingZeros64(inv1)
	}
	return BitmapBits
}

// HighestSet returns the index of the highest set bit, or -1 if empty.
func (m Bitmap) HighestSet() int {
	if m[1] != 0 {
		return 127 - bits.LeadingZeros64(m[1])
	}
	if m[0] != 0 {
		return 63 - bits.LeadingZeros64(m[0])
	}
	return -1
}

// IsZero reports whether no bits are set.
func (m Bitmap) IsZero() bool { return m[0] == 0 && m[1] == 0 }

// LowMask returns a bitmap with bits 0..n-1 set. n is clamped to
// [0, BitmapBits]. Scoreboard scans use it to bound word-at-a-time
// iteration to the live [base, next) window.
func LowMask(n int) Bitmap {
	switch {
	case n <= 0:
		return Bitmap{}
	case n < 64:
		return Bitmap{1<<uint(n) - 1, 0}
	case n == 64:
		return Bitmap{^uint64(0), 0}
	case n < BitmapBits:
		return Bitmap{^uint64(0), 1<<uint(n-64) - 1}
	}
	return Bitmap{^uint64(0), ^uint64(0)}
}

// AndNot returns m &^ o: the bits set in m and clear in o.
func (m Bitmap) AndNot(o Bitmap) Bitmap {
	return Bitmap{m[0] &^ o[0], m[1] &^ o[1]}
}

func (m Bitmap) String() string {
	if m.IsZero() {
		return "[empty]"
	}
	var sb strings.Builder
	sb.WriteByte('[')
	first := true
	runStart := -1
	flush := func(end int) {
		if runStart < 0 {
			return
		}
		if !first {
			sb.WriteByte(',')
		}
		first = false
		if end-1 == runStart {
			fmt.Fprintf(&sb, "%d", runStart)
		} else {
			fmt.Fprintf(&sb, "%d-%d", runStart, end-1)
		}
		runStart = -1
	}
	for i := 0; i < BitmapBits; i++ {
		if m.Get(i) {
			if runStart < 0 {
				runStart = i
			}
		} else {
			flush(i)
		}
	}
	flush(BitmapBits)
	sb.WriteByte(']')
	return sb.String()
}
