package experiments

import (
	"time"

	"falcon/internal/core"
	"falcon/internal/netsim"
	"falcon/internal/rdma"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

// AblationECN measures the supplementary ECN signal (Table 3). With a
// well-tuned delay target the echo is redundant (delay reacts first —
// which is the paper's position: delay is the primary signal). The
// interesting case is a *mis-tuned* target: here the Swift target is set
// far above the bottleneck queue's marking threshold, so delay-only CC
// lets the queue run to the port limit while the ECN echo holds it near
// the threshold.
func AblationECN(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Ablation: ECN backstopping a mis-tuned delay target (5x8 QP incast, 64KB writes)",
		Columns: []string{"cc signals", "p50", "p99", "goodput Gbps", "max queue KB"},
	}
	run := func(useECN bool) []string {
		s := sim.New(61)
		link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
		topo := netsim.Star(s, 6, link)
		down := topo.ToRs[0].RouteTo(topo.Hosts[0].ID)[0]
		down.SetECNThreshold(128 << 10)
		cl := core.NewCluster(s)
		ncfg := core.DefaultNodeConfig()
		ncfg.FAE.UseECN = useECN
		// Mis-tuned: the delay target tolerates ~4x the queue the ECN
		// threshold flags.
		ncfg.FAE.Swift.BaseTargetDelay = 160 * time.Microsecond
		server := cl.AddNode(topo.Hosts[0], ncfg)
		var lat stats.Series
		var delivered uint64
		for h := 1; h <= 5; h++ {
			client := cl.AddNode(topo.Hosts[h], ncfg)
			for q := 0; q < 8; q++ {
				epC, epS := cl.Connect(client, server, multipathConn())
				qa := rdma.NewQP(epC, rdma.Config{})
				rdma.NewQP(epS, rdma.Config{}).RegisterMemoryLen(1 << 40)
				issuer := workload.NewClosedLoop(s, 2, 1<<30, func(opDone func()) bool {
					start := s.Now()
					err := qa.Write(0, 0, nil, 64<<10, func(c rdma.Completion) {
						if c.Err == nil {
							lat.AddDuration(s.Now().Sub(start))
							delivered += 64 << 10
						}
						opDone()
					})
					return err == nil
				}, nil)
				issuer.Start()
			}
		}
		s.RunUntil(sim.Time(runFor))
		label := "delay only"
		if useECN {
			label = "delay + ECN"
		}
		return []string{
			label, dur(lat.DurationPercentile(50)), dur(lat.DurationPercentile(99)),
			f1(stats.Gbps(delivered, runFor)), f1(float64(down.Stats.MaxQueueBytes) / 1024),
		}
	}
	t.Rows = append(t.Rows, run(false), run(true))
	return t
}

// AblationPSP measures inline encryption's cost in the simulator: the
// per-packet PSP overhead bytes (header + AES-GCM tag) against plaintext,
// on a saturated point-to-point write stream.
func AblationPSP(runFor time.Duration) *Table {
	t := &Table{
		Title:   "Ablation: PSP inline encryption overhead (4KB writes, 200G link)",
		Columns: []string{"mode", "goodput Gbps", "p99"},
	}
	run := func(encrypt bool) []string {
		s := sim.New(62)
		link := netsim.LinkConfig{GbpsRate: 200, PropDelay: time.Microsecond}
		topo, _ := netsim.PointToPoint(s, link)
		cl := core.NewCluster(s)
		ncfgA, ncfgB := core.DefaultNodeConfig(), core.DefaultNodeConfig()
		if encrypt {
			ncfgA.PSPMasterKey = []byte("ablation-node-a-master-key-0000!")
			ncfgB.PSPMasterKey = []byte("ablation-node-b-master-key-1111!")
		}
		a := cl.AddNode(topo.Hosts[0], ncfgA)
		b := cl.AddNode(topo.Hosts[1], ncfgB)
		epA, epB := cl.Connect(a, b, multipathConn())
		qa := rdma.NewQP(epA, rdma.Config{})
		rdma.NewQP(epB, rdma.Config{}).RegisterMemoryLen(1 << 40)
		var lat stats.Series
		var delivered uint64
		issuer := workload.NewClosedLoop(s, 48, 1<<30, func(opDone func()) bool {
			start := s.Now()
			err := qa.Write(0, 0, nil, 4096, func(c rdma.Completion) {
				if c.Err == nil {
					lat.AddDuration(s.Now().Sub(start))
					delivered += 4096
				}
				opDone()
			})
			return err == nil
		}, nil)
		issuer.Start()
		s.RunUntil(sim.Time(runFor))
		label := "plaintext"
		if encrypt {
			label = "psp-encrypted"
		}
		return []string{label, f1(stats.Gbps(delivered, runFor)), dur(lat.DurationPercentile(99))}
	}
	t.Rows = append(t.Rows, run(false), run(true))
	return t
}
