package netsim

import (
	"testing"
	"time"

	"falcon/internal/routing"
	"falcon/internal/sim"
)

// benchSink is a minimal device that recycles every frame it receives,
// standing in for a host at the end of a port under test.
type benchSink struct {
	net *Network
	got int
}

func (bs *benchSink) receive(f *Frame) {
	bs.got++
	bs.net.Frames().Release(f)
}

func (bs *benchSink) nodeSim() *sim.Simulator { return bs.net.sim }

var benchLink = LinkConfig{GbpsRate: 100, PropDelay: time.Microsecond}

// warm runs fn enough times to fill every pool (frame pool, port-event
// pool, simulator event pool, timing-wheel slots) so the measured region
// sees only steady-state recycling.
func warm(fn func()) {
	for i := 0; i < 512; i++ {
		fn()
	}
}

func BenchmarkPortSend(b *testing.B) {
	s := sim.New(1)
	n := New(s)
	sink := &benchSink{net: n}
	p := newPort(n, "bench", benchLink, n.sim, sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := n.Frames().Acquire()
		f.Size = 1500
		p.send(f)
		s.Run()
	}
}

func BenchmarkClosTraversal(b *testing.B) {
	s := sim.New(1)
	topo := TwoRack(s, 8, 4, benchLink, benchLink)
	for _, h := range topo.Hosts {
		h.SetHandler(HandlerFunc(func(*Frame) {}))
	}
	src, dst := topo.Hosts[0], topo.Hosts[8] // inter-rack: 3 switch hops
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := src.NewFrame()
		f.Dst = dst.ID
		f.FlowHash = uint64(i)
		f.Size = 1500
		src.Send(f)
		s.Run()
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	s := sim.New(1)
	topo, _ := PointToPoint(s, benchLink)
	h0, h1 := topo.Hosts[0], topo.Hosts[1]
	h0.SetHandler(HandlerFunc(func(*Frame) {}))
	h1.SetHandler(HandlerFunc(func(f *Frame) {
		r := h1.NewFrame()
		r.Dst = f.Src
		r.Size = 64
		h1.Send(r)
	}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := h0.NewFrame()
		f.Dst = h1.ID
		f.Size = 1500
		h0.Send(f)
		s.Run()
	}
}

// TestPortSendZeroAlloc asserts the innermost hot function — commit a frame
// to a port, fire its drain and delivery events — allocates nothing in
// steady state.
func TestPortSendZeroAlloc(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	sink := &benchSink{net: n}
	p := newPort(n, "alloc", benchLink, n.sim, sink)
	op := func() {
		f := n.Frames().Acquire()
		f.Size = 1500
		p.send(f)
		s.Run()
	}
	warm(op)
	if a := testing.AllocsPerRun(1000, op); a != 0 {
		t.Fatalf("port send path: %.2f allocs/op, want 0", a)
	}
	if sink.got == 0 {
		t.Fatal("sink received nothing")
	}
}

// TestSwitchForwardZeroAlloc asserts the switch hop — receive, ECMP hash,
// dense route lookup, egress enqueue — allocates nothing in steady state.
func TestSwitchForwardZeroAlloc(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	sw := n.AddSwitch()
	sink := &benchSink{net: n}
	// Two equal-cost ports so the ECMP arm is exercised too.
	sw.addRoute(0, newPort(n, "a", benchLink, n.sim, sink), newPort(n, "b", benchLink, n.sim, sink))
	var i uint64
	op := func() {
		f := n.Frames().Acquire()
		f.Dst = 0
		f.FlowHash = i
		f.Size = 1500
		i++
		sw.receive(f)
		s.Run()
	}
	warm(op)
	if a := testing.AllocsPerRun(1000, op); a != 0 {
		t.Fatalf("switch forward path: %.2f allocs/op, want 0", a)
	}
}

// TestSwitchPolicyZeroAlloc asserts the pluggable routing decision —
// building the selection Key, the policy dispatch, the queue-depth view
// for adaptive and the spray counter update — adds no allocation to the
// switch hop for any built-in policy.
func TestSwitchPolicyZeroAlloc(t *testing.T) {
	for _, pol := range routing.Policies() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			s := sim.New(1)
			n := New(s)
			sw := n.AddSwitch()
			sw.SetPolicy(pol)
			sink := &benchSink{net: n}
			sw.addRoute(0,
				newPort(n, "a", benchLink, n.sim, sink),
				newPort(n, "b", benchLink, n.sim, sink),
				newPort(n, "c", benchLink, n.sim, sink),
				newPort(n, "d", benchLink, n.sim, sink))
			var i uint64
			op := func() {
				f := n.Frames().Acquire()
				f.Dst = 0
				f.FlowHash = i
				f.Size = 1500
				i++
				sw.receive(f)
				s.Run()
			}
			warm(op)
			if a := testing.AllocsPerRun(1000, op); a != 0 {
				t.Fatalf("%s policy path: %.2f allocs/op, want 0", pol.Name(), a)
			}
			if sink.got == 0 {
				t.Fatal("sink received nothing")
			}
		})
	}
}

// TestHostDeliverZeroAlloc asserts final delivery — tap, handler dispatch,
// frame release — allocates nothing in steady state.
func TestHostDeliverZeroAlloc(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	h := n.AddHost()
	var seen int
	h.SetHandler(HandlerFunc(func(*Frame) { seen++ }))
	h.SetTap(func(*Frame) {})
	op := func() {
		f := n.Frames().Acquire()
		f.Size = 64
		h.receive(f)
	}
	warm(op)
	if a := testing.AllocsPerRun(1000, op); a != 0 {
		t.Fatalf("host deliver path: %.2f allocs/op, want 0", a)
	}
	if seen == 0 {
		t.Fatal("handler never ran")
	}
}

// TestFramePoolRecycles checks the linear ownership contract end to end:
// frames released after delivery come back from Acquire zeroed, and
// hand-built frames pass through Release untouched.
func TestFramePoolRecycles(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	sink := &benchSink{net: n}
	p := newPort(n, "recycle", benchLink, n.sim, sink)

	f := n.Frames().Acquire()
	if !f.pooled {
		t.Fatal("Acquire returned an unpooled frame")
	}
	f.Size = 1000
	f.CE = true
	f.Hops = 3
	f.Payload = "stale"
	p.send(f)
	s.Run()
	g := n.Frames().Acquire()
	if g.Size != 0 || g.CE || g.Hops != 0 || g.Payload != nil {
		t.Fatalf("recycled frame not zeroed: %+v", g)
	}
	if !g.pooled {
		t.Fatal("recycled frame lost its pooled mark")
	}
	n.Frames().Release(g)

	// Hand-built frames bypass the pool entirely.
	hand := &Frame{Size: 5}
	n.Frames().Release(hand)
	if hand.Size != 5 {
		t.Fatal("Release mutated a hand-built frame")
	}
}

// TestDownDropsSeparateCounter checks that administrative SetDown drops
// land in Stats.DownDrops, not Stats.RandomDrops — outage experiments must
// not inflate the random-loss line.
func TestDownDropsSeparateCounter(t *testing.T) {
	s := sim.New(1)
	topo, fwd := PointToPoint(s, benchLink)
	topo.Hosts[1].SetHandler(HandlerFunc(func(*Frame) {}))
	fwd.SetDown(true)
	for i := 0; i < 3; i++ {
		f := topo.Hosts[0].NewFrame()
		f.Dst = 1
		f.Size = 64
		topo.Hosts[0].Send(f)
	}
	s.Run()
	up := topo.Hosts[0].Uplink()
	if up.Stats.TxFrames != 3 {
		t.Fatalf("uplink forwarded %d frames, want 3", up.Stats.TxFrames)
	}
	if fwd.Stats.DownDrops != 3 {
		t.Fatalf("DownDrops = %d, want 3", fwd.Stats.DownDrops)
	}
	if fwd.Stats.RandomDrops != 0 {
		t.Fatalf("RandomDrops = %d, want 0 (down drops must not count as random)", fwd.Stats.RandomDrops)
	}
}

// TestSetRateGbpsKeepsCommittedBytes pins the documented SetRateGbps
// semantics: departure times are committed at enqueue, so a rate change
// never re-times bytes already accepted by the serializer — it applies
// from the next enqueued frame.
func TestSetRateGbpsKeepsCommittedBytes(t *testing.T) {
	s := sim.New(1)
	topo, _ := PointToPoint(s, LinkConfig{GbpsRate: 10, PropDelay: 0})
	var arrivals []sim.Time
	topo.Hosts[1].SetHandler(HandlerFunc(func(*Frame) { arrivals = append(arrivals, s.Now()) }))
	send := func() {
		f := topo.Hosts[0].NewFrame()
		f.Dst = 1
		f.Size = 1000 // 800ns at 10G, 80ns at 100G
		topo.Hosts[0].Send(f)
	}
	up := topo.Hosts[0].Uplink()
	send() // committed: departs at 800ns
	send() // committed: departs at 1600ns
	up.SetRateGbps(100)
	send() // new rate: departs at 1600+80 = 1680ns
	s.Run()
	// The switch hop repeats each serialization at the (unchanged) switch
	// port rate of 10 Gb/s, so host arrivals are uplink departure + 800ns.
	want := []sim.Time{1600, 2400, 3200}
	if len(arrivals) != 3 || arrivals[0] != want[0] || arrivals[1] != want[1] || arrivals[2] != want[2] {
		t.Fatalf("arrivals = %v, want %v (committed bytes re-timed?)", arrivals, want)
	}
}

// TestLegacyAllocEquivalent drives identical traffic through the pooled and
// legacy-allocation fabrics and requires identical delivery counts and end
// times — pooling must be invisible at the packet level. (The testkit
// sweep asserts the same over the full protocol stack.)
func TestLegacyAllocEquivalent(t *testing.T) {
	run := func(legacy bool) (rx uint64, end sim.Time) {
		s := sim.New(42)
		topo := TwoRack(s, 2, 2, benchLink, benchLink)
		topo.Net.SetLegacyAlloc(legacy)
		for _, h := range topo.Hosts {
			h.SetHandler(HandlerFunc(func(*Frame) {}))
		}
		src, dst := topo.Hosts[0], topo.Hosts[2]
		fwd := topo.ToRs[0].RouteTo(dst.ID)
		for _, port := range fwd {
			port.SetDropProb(0.1)
		}
		for i := 0; i < 500; i++ {
			f := src.NewFrame()
			f.Dst = dst.ID
			f.FlowHash = uint64(i) * 7
			f.Size = 1000
			src.Send(f)
		}
		s.Run()
		return dst.RxFrames, s.Now()
	}
	prx, pend := run(false)
	lrx, lend := run(true)
	if prx != lrx || pend != lend {
		t.Fatalf("pooled (%d frames, end %v) != legacy (%d frames, end %v)", prx, pend, lrx, lend)
	}
	if prx == 0 || prx == 500 {
		t.Fatalf("drop injection inert: %d/500 delivered", prx)
	}
}
