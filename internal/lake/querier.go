package lake

import (
	"strings"

	"falcon/internal/stats"
)

// The querier half of the lake: point lookups, segment-glob selection
// over metric paths, percentile summaries and time-series slices, all
// read-only over a sealed Index.

// Cell is one selected (path, value) pair.
type Cell struct {
	Path  string
	Value float64
}

// Querier serves read queries over a sealed index.
type Querier struct {
	ix *Index
}

// NewQuerier returns a querier over ix.
func NewQuerier(ix *Index) *Querier { return &Querier{ix: ix} }

// Lookup returns the value of one exact metric path in one run.
func (q *Querier) Lookup(run, path string) (float64, bool) {
	return q.ix.Lookup(run, path)
}

// Select returns every cell of the run whose path matches the pattern,
// in sorted path order. Patterns are segment globs over the metric
// path: "*" matches exactly one segment, "**" matches any number
// (including zero), and any other segment matches literally. Examples:
//
//	fig10/*/drop1.0/pdl/retx_rack     one sub-experiment dimension
//	fig10/**/port/tx_bytes            any dims, the port layer's tx_bytes
//	**/srtt_ns                        every smoothed-RTT cell
func (q *Querier) Select(run, pattern string) []Cell {
	pat := strings.Split(pattern, "/")
	var out []Cell
	q.ix.EachCell(run, func(path string, v float64) {
		if matchSegments(pat, strings.Split(path, "/")) {
			out = append(out, Cell{Path: path, Value: v})
		}
	})
	return out
}

// matchSegments reports whether the glob pattern matches the path
// segments.
func matchSegments(pat, segs []string) bool {
	// Walk greedily; "**" branches.
	for len(pat) > 0 {
		switch pat[0] {
		case "**":
			if len(pat) == 1 {
				return true
			}
			for skip := 0; skip <= len(segs); skip++ {
				if matchSegments(pat[1:], segs[skip:]) {
					return true
				}
			}
			return false
		case "*":
			if len(segs) == 0 {
				return false
			}
		default:
			if len(segs) == 0 || segs[0] != pat[0] {
				return false
			}
		}
		pat, segs = pat[1:], segs[1:]
	}
	return len(segs) == 0
}

// Summary is an aggregate over a set of selected values. Count, Mean,
// Min and Max are exact; P50 and P99 come from an internal/stats
// log-linear histogram over the values rounded to non-negative
// integers, so they carry that histogram's ≤1/16 relative error —
// appropriate for the ns- and byte-valued metrics percentiles are
// asked of.
type Summary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// summarize aggregates values into a Summary.
func summarize(vals []float64) Summary {
	var s Summary
	if len(vals) == 0 {
		return s
	}
	var h stats.Histogram
	s.Min, s.Max = vals[0], vals[0]
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		hv := v
		if hv < 0 {
			hv = 0
		}
		h.Record(uint64(hv + 0.5))
	}
	s.Count = len(vals)
	s.Mean = sum / float64(len(vals))
	s.P50 = float64(h.Quantile(50))
	s.P99 = float64(h.Quantile(99))
	return s
}

// Summary aggregates every cell matching the pattern (see Select).
func (q *Querier) Summary(run, pattern string) Summary {
	cells := q.Select(run, pattern)
	vals := make([]float64, len(cells))
	for i, c := range cells {
		vals[i] = c.Value
	}
	return summarize(vals)
}

// SeriesNames lists the run's time series, sorted.
func (q *Querier) SeriesNames(run string) []string { return q.ix.SeriesNames(run) }

// SeriesSlice returns the (t_ns, value) rows of one series column with
// from <= t_ns <= to (use from=0, to=-1 for all rows). The second
// return is false when the series or column does not exist.
func (q *Querier) SeriesSlice(run, series, col string, from, to int64) ([]int64, []float64, bool) {
	sv, ok := q.ix.FindSeries(run, series)
	if !ok {
		return nil, nil, false
	}
	vals := sv.Column(col)
	if vals == nil {
		return nil, nil, false
	}
	times := sv.Times()
	var ts []int64
	var vs []float64
	for i, t := range times {
		if t < from || (to >= 0 && t > to) {
			continue
		}
		ts = append(ts, t)
		vs = append(vs, vals[i])
	}
	return ts, vs, true
}

// SeriesSummary aggregates one series column over the full run.
func (q *Querier) SeriesSummary(run, series, col string) (Summary, bool) {
	sv, ok := q.ix.FindSeries(run, series)
	if !ok {
		return Summary{}, false
	}
	vals := sv.Column(col)
	if vals == nil {
		return Summary{}, false
	}
	return summarize(vals), true
}
