package falcon

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6 and Appendix B). Each benchmark regenerates its experiment with a
// bench-sized measurement window and reports one headline metric from the
// result table via b.ReportMetric, so `go test -bench=BenchmarkFig13`
// reproduces an individual result and `go test -bench=. -benchmem` sweeps
// the full evaluation. cmd/falconbench prints the complete tables.

import (
	"strconv"
	"testing"
	"time"

	"falcon/internal/experiments"
	"falcon/internal/sim"
)

// cell parses table cell (row, col) as a float.
func cell(b *testing.B, t *experiments.Table, row, col int) float64 {
	b.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		b.Fatalf("table %q has no cell (%d,%d)", t.Title, row, col)
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

// report emits a named headline metric from the table.
func report(b *testing.B, t *experiments.Table, name string, row, col int) {
	b.ReportMetric(cell(b, t, row, col), name)
}

const benchWindow = 3 * time.Millisecond

func BenchmarkFig01SwHwLimits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig1(2 * time.Millisecond)
		report(b, t, "falcon_mops_at_120", 6, 2)
		report(b, t, "sw_mops_at_120", 6, 4)
	}
}

func BenchmarkFig03MultipathML(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig3(2 * time.Millisecond)
		report(b, t, "multipath_gbps", 0, 3)
		report(b, t, "single_gbps", 2, 3)
	}
}

func BenchmarkFig10LossGoodput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig10(benchWindow)
		// Write rows are 0..4; row 4 is 2% drop.
		report(b, t, "falcon_write_gbps_2pct", 4, 2)
		report(b, t, "roce_gbn_write_gbps_2pct", 4, 4)
	}
}

func BenchmarkFig11aReordering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig11a(benchWindow)
		report(b, t, "falcon_gbps_worst", len(t.Rows)-1, 1)
		report(b, t, "roce_gbn_gbps_worst", len(t.Rows)-1, 3)
	}
}

func BenchmarkFig11bRackTlp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig11b(4 * time.Millisecond)
		report(b, t, "racktlp_gbps_2pct", 3, 1)
		report(b, t, "ooodist_gbps_2pct", 3, 2)
	}
}

func BenchmarkFig12RoceModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig12(benchWindow)
		report(b, t, "gbn_gbps_2pct", 4, 1)
		report(b, t, "sr_gbps_2pct", 4, 2)
		report(b, t, "ar_gbps_2pct", 4, 3)
	}
}

func BenchmarkFig13Incast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig13(4 * time.Millisecond)
		// Row 1: 4 QPs/host — enough whole-op completions even in the
		// bench-sized window.
		report(b, t, "falcon_p99_over_ideal_4qp", 1, 4)
		report(b, t, "falcon_goodput_gbps_100qp", 3, 5)
		report(b, t, "roce_goodput_gbps_100qp", 7, 5)
	}
}

func BenchmarkFig14HostCongestion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig14(2 * time.Millisecond)
		report(b, t, "falcon_degraded_gbps", 1, 2)
		report(b, t, "roce_degraded_gbps", 4, 2)
	}
}

func BenchmarkFig15MultipathLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig15(2 * time.Millisecond)
		report(b, t, "multi_gbps_90load", len(t.Rows)-1, 3)
		report(b, t, "single_gbps_90load", len(t.Rows)-1, 6)
	}
}

func BenchmarkFig17SchedulingPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig17(2 * time.Millisecond)
	}
}

func BenchmarkFig18MLTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig18()
		report(b, t, "speedup_64mb", len(t.Rows)-1, 3)
	}
}

func BenchmarkFig19MessageScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig19()
		report(b, t, "p50_over_ideal_1mb", len(t.Rows)-1, 4)
	}
}

func BenchmarkFig20aBwScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig20a(2 * time.Millisecond)
	}
}

func BenchmarkFig20bOpRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig20b(2 * time.Millisecond)
		report(b, t, "mops_1qp", 0, 1)
		report(b, t, "mops_12qp", 4, 1)
	}
}

func BenchmarkFig21ConnectionCliff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig21()
		report(b, t, "falcon_rtt_ratio_1m_conns", len(t.Rows)-1, 3)
		report(b, t, "cx7_rtt_ratio_1m_conns", len(t.Rows)-1, 4)
	}
}

func BenchmarkFig22aFaeScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig22a()
		report(b, t, "prefetch_mevents_128k", 3, 3)
		report(b, t, "stateful_mevents_128k", 3, 2)
	}
}

func BenchmarkFig22bSlowFae(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig22b(2 * time.Millisecond)
		report(b, t, "rtt_ratio_128us_delay", len(t.Rows)-1, 3)
	}
}

func BenchmarkFig23FaeState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig23()
		report(b, t, "prefetch_mevents_512B", len(t.Rows)-1, 1)
	}
}

func BenchmarkFig24Isolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig24(2 * time.Millisecond)
		report(b, t, "slowdown_none_100flows", 1, 1)
		report(b, t, "slowdown_dynamic_100flows", 1, 3)
	}
}

func BenchmarkFig25MpiAllReduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig25()
		report(b, t, "speedup_64kb", 4, 3)
	}
}

func BenchmarkFig26MpiAllToAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig26()
		report(b, t, "speedup_4b", 0, 3)
	}
}

func BenchmarkFig27Gromacs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig27()
		report(b, t, "speedup_32nodes", len(t.Rows)-1, 3)
	}
}

func BenchmarkFig28Wrf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig28()
		report(b, t, "speedup_32nodes", len(t.Rows)-1, 3)
	}
}

func BenchmarkFig29LiveMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig29()
		report(b, t, "falcon_guest_pages_per_s", 0, 3)
		report(b, t, "pony_guest_pages_per_s", 1, 3)
	}
}

func BenchmarkFig30MpiAllGather(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig30()
		report(b, t, "speedup_4b", 0, 3)
	}
}

func BenchmarkFig31MpiPingPong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig31()
		report(b, t, "speedup_4b", 0, 3)
	}
}

// BenchmarkSchedulerAB runs one representative timer-heavy experiment
// under each event-scheduler backend. The tables are identical (that's
// tested elsewhere); what differs is wall time per regeneration, the
// end-to-end view of the microbenchmarks in internal/sim.
func BenchmarkSchedulerAB(b *testing.B) {
	prev := sim.DefaultScheduler()
	defer sim.SetDefaultScheduler(prev)
	for _, sched := range []sim.Scheduler{sim.SchedulerWheel, sim.SchedulerHeap} {
		b.Run(sched.String(), func(b *testing.B) {
			sim.SetDefaultScheduler(sched)
			for i := 0; i < b.N; i++ {
				t := experiments.Fig10(benchWindow)
				report(b, t, "falcon_write_gbps_2pct", 4, 2)
			}
		})
	}
}

func BenchmarkTable4Nlf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table4(8 * time.Millisecond)
		report(b, t, "read_bw_pct_of_local", 0, 3)
		report(b, t, "write_bw_pct_of_local", 1, 3)
	}
}
